// Quickstart: drive the Adore model through the paper's core workflow —
// election (pull), method invocation, commit (push), and a certified hot
// reconfiguration — and watch the cache tree evolve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/invariant"
	"adore/internal/types"
)

func main() {
	// A three-replica system under Raft's single-node reconfiguration
	// scheme, with all of the paper's guards (R1⁺, R2, R3) enabled.
	st := core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
	fmt.Println("initial cache tree (the root is the implicitly committed empty state):")
	fmt.Print(st.Tree.Render())

	// S1 campaigns with S2's vote at logical time 1. The supporters and
	// timestamp play the role of the paper's pull oracle outcome.
	res, err := st.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nS1 elected (quorum=%v); an ECache records the election:\n", res.Quorum)
	fmt.Print(st.Tree.Render())

	// The leader invokes two methods; they are speculative (uncommitted).
	m1, err := st.Invoke(1, 100)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := st.Invoke(1, 101); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nS1 invokes M100 and M101 (uncommitted MCaches):")
	fmt.Print(st.Tree.Render())

	// Push commits a prefix — here only M100: the oracle "lost" the rest.
	pres, err := st.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2), CM: m1.ID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npush commits the prefix up to M100 (CCache %d); M101 stays pending:\n", pres.CCache.ID)
	fmt.Print(st.Tree.Render())
	fmt.Printf("committed log: %v\n", st.CommittedMethods())

	// Reconfiguration: R3 demands a committed entry at the current term —
	// we have one — and R1⁺ permits adding a single node.
	bigger := config.NewMajorityConfig(types.Range(1, 4))
	if err := st.CanReconf(1, bigger); err != nil {
		log.Fatalf("reconfig rejected: %v", err)
	}
	rc, err := st.Reconfig(1, bigger)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nS1 grows the cluster to %s (RCache %d, effective immediately):\n", bigger, rc.ID)
	fmt.Print(st.Tree.Render())

	// Committing the RCache requires a quorum of the NEW configuration.
	pres, err = st.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2, 3), CM: rc.ID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconfiguration committed (CCache %d); current config: %s\n",
		pres.CCache.ID, st.CurrentConfig())

	// Every invariant from the paper's safety proof holds.
	if vs := invariant.CheckAll(st); len(vs) != 0 {
		log.Fatalf("invariant violations: %v", vs)
	}
	fmt.Println("\nall safety invariants hold ✔")
}
