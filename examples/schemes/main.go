// Schemes: demonstrate Adore's parameterized reconfiguration (§6). The
// same model, checker, and safety argument work unchanged across all six
// shipped quorum/configuration families — the paper's "safety for free"
// generality — and the checker rejects a scheme that breaks OVERLAP.
//
//	go run ./examples/schemes
package main

import (
	"fmt"
	"log"
	"time"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/explore"
	"adore/internal/types"
)

func main() {
	members := types.Range(1, 3)
	universe := types.Range(1, 5)

	fmt.Println("Checking REFLEXIVE and OVERLAP for every shipped scheme (the §6 proof obligations):")
	for _, s := range config.AllSchemes() {
		depth := 3
		if s.Name() == "dynamic-quorum" || s.Name() == "unanimous" || s.Name() == "primary-backup" {
			depth = 2
		}
		cases, err := config.CheckAssumptions(s, members, universe, depth)
		if err != nil {
			log.Fatalf("scheme %s: %v", s.Name(), err)
		}
		fmt.Printf("  %-15s OK (%6d quorum-pair cases)\n", s.Name(), cases)
	}

	fmt.Println("\nRunning the model under each scheme (random walks, all invariants):")
	for _, s := range config.AllSchemes() {
		st := core.NewState(s, members, core.DefaultRules())
		start := time.Now()
		res := explore.RandomWalk(st, 42, 30, 20, explore.Options{})
		if res.Violation != nil {
			log.Fatalf("scheme %s: %v\ntrace: %v", s.Name(), res.Violation, res.Trace)
		}
		fmt.Printf("  %-15s safe across %4d transitions (%s)\n",
			s.Name(), res.Transitions, time.Since(start).Round(time.Millisecond))
	}

	// A worked example: joint consensus swapping out two replicas at once
	// (single-node reconfiguration would need two separate rounds). The
	// leader S1 stays in the new set: Adore's validSupp rule forbids a
	// leader committing a configuration that excludes itself — a departing
	// leader must hand over first.
	fmt.Println("\nJoint consensus walkthrough: {S1,S2,S3} → {S1,S4,S5} via a joint state")
	st := core.NewState(config.RaftJoint, members, core.DefaultRules())
	must := func(desc string, err error) {
		if err != nil {
			log.Fatalf("%s: %v", desc, err)
		}
		fmt.Printf("  %s ✔\n", desc)
	}
	_, err := st.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1})
	must("S1 elected", err)
	m, err := st.Invoke(1, 1)
	must("S1 invokes M1", err)
	_, err = st.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2), CM: m.ID})
	must("M1 committed (satisfies R3)", err)

	joint := config.NewJointTransition(members, types.NewNodeSet(1, 4, 5))
	rc, err := st.Reconfig(1, joint)
	must(fmt.Sprintf("enter joint state %s", joint), err)
	// Committing under the joint config needs majorities of BOTH sets.
	_, err = st.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2, 3, 4), CM: rc.ID})
	must("joint config committed (majorities of both sets)", err)

	m2, err := st.Invoke(1, 2)
	must("S1 invokes M2 under the joint config", err)
	_, err = st.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2, 3, 4), CM: m2.ID})
	must("M2 committed (satisfies R3 at the same term)", err)

	settled := config.NewJointConfig(types.NewNodeSet(1, 4, 5))
	rc2, err := st.Reconfig(1, settled)
	must(fmt.Sprintf("settle into %s", settled), err)
	_, err = st.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 4, 5), CM: rc2.ID})
	must("new configuration committed", err)

	fmt.Printf("\nfinal committed configuration: %s\n", st.CurrentConfig())
	fmt.Print("final cache tree:\n" + st.Tree.Render())
}
