// Reconfig-bug: reproduce the published Raft single-server membership bug
// (paper Figs. 4 and 12) three ways:
//
//  1. replay the paper's exact schedule with R3 disabled and watch two
//     leaders commit on divergent branches;
//
//  2. replay the same schedule with R3 enabled and watch the dangerous
//     reconfiguration get rejected;
//
//  3. let the model checker rediscover the violation from scratch.
//
//     go run ./examples/reconfig-bug
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/explore"
	"adore/internal/types"
)

func main() {
	fmt.Println("=== 1. The paper's schedule without R3 (the published algorithm) ===")
	tr, err := explore.Fig4Bug().Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tr.Output)
	fmt.Println("S1 and S2 committed on divergent branches — replicated state safety is violated,")
	fmt.Println("exactly the scenario that went unnoticed in Raft for over a year.")

	fmt.Println("\n=== 2. The same schedule with R3 (Ongaro's fix, certified by Adore) ===")
	tr, err = explore.Fig4Fixed().Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tr.Output)
	fmt.Println("R3 forces a commit in the leader's own term before any reconfiguration,")
	fmt.Println("so the interleaving that created disjoint quorums is impossible.")

	fmt.Println("\n=== 3. Letting the model checker find the bug on its own ===")
	st := core.NewState(config.RaftSingleNode, types.Range(1, 4), core.WithoutR3())
	start := time.Now()
	res := explore.BFS(st, explore.Options{
		MaxDepth:     6,
		MaxStates:    500000,
		MinimalTimes: true,
		Actors:       types.NewNodeSet(1, 2),
		Invariants:   explore.BugHuntCheckers(),
	})
	if res.Violation == nil {
		log.Fatal("checker failed to find the violation")
	}
	fmt.Printf("found after %d states in %s:\n  %s\ncounterexample:\n  %s\n",
		res.States, time.Since(start).Round(time.Millisecond),
		res.Violation.Error(), strings.Join(res.Trace, "\n  "))
	fmt.Print("\nstate:\n" + res.ViolationState)
}
