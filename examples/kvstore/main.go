// KVStore: run the replicated key-value store (the paper's §2 motivating
// application) on an in-process Raft cluster, exercise it through a leader
// failure and a live membership change, and verify all replicas converge.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

const timeout = 15 * time.Second

func main() {
	// Three replicas over a simulated network with ~0.5 ms latency.
	store := kvstore.NewReplicated(cluster.Options{
		N:       3,
		Latency: 300 * time.Microsecond,
		Jitter:  400 * time.Microsecond,
		Seed:    2026,
	})
	defer store.Stop()

	leader, err := store.Cluster.WaitForLeader(timeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader elected: %s\n", leader)

	// Basic operations, all linearizable (they go through the log).
	must(store.Put("lang", "go", timeout))
	must(store.Put("paper", "adore", timeout))
	v, ok, err := store.Get("paper", timeout)
	must(err)
	fmt.Printf("get paper → %q (found=%v)\n", v, ok)

	swapped, err := store.CAS("lang", "go", "Go", timeout)
	must(err)
	fmt.Printf("cas lang go→Go → swapped=%v\n", swapped)

	// Kill the leader mid-stream: the client retries transparently.
	fmt.Printf("isolating leader %s...\n", leader)
	store.Cluster.Net.Isolate(leader)
	must(store.Put("survived", "yes", timeout))
	v, _, err = store.Get("survived", timeout)
	must(err)
	fmt.Printf("after failover: get survived → %q\n", v)
	store.Cluster.Net.Heal()

	// Hot reconfiguration under load: grow to four replicas while writing.
	fmt.Println("growing the cluster to 4 nodes while serving writes...")
	store.Cluster.StartNode(4, []types.NodeID{1, 2, 3, 4})
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 25; i++ {
			if err := store.Put(fmt.Sprintf("load-%d", i), "x", timeout); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if _, err := store.Cluster.Reconfigure(types.Range(1, 4), timeout); err != nil {
		log.Fatal(err)
	}
	must(<-done)
	fmt.Printf("membership now: %v\n", store.Cluster.Leader().Members())

	// A linearizable read, then wait for replica convergence.
	if _, _, err := store.Get("load-24", timeout); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if store.Store(4).Len() == store.Store(1).Len() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("replica key counts: S1=%d S2=%d S3=%d S4=%d\n",
		store.Store(1).Len(), store.Store(2).Len(), store.Store(3).Len(), store.Store(4).Len())
	fmt.Println("done ✔")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
