// Command adore-verify regenerates the paper's effort-comparison tables
// (§7) in this repository's executable-checking world:
//
//	adore-verify           # E2: CADO vs Adore model-checking effort
//	adore-verify -schemes  # E4: per-scheme assumption checks
//	adore-verify -refine   # E3: refinement checking effort
//	adore-verify -all
//
// The paper reports lines of Coq and person-weeks; the executable analog
// reports states explored, invariants checked, cases discharged, and wall
// time, with the same headline comparison: reconfiguration multiplies the
// verification work, and the protocol-level abstraction keeps it feasible.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"adore/internal/bench"
	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/explore"
	"adore/internal/refine"
	"adore/internal/types"
)

func main() {
	var (
		model   = flag.Bool("model", false, "run the E2 model-checking comparison")
		schemes = flag.Bool("schemes", false, "run the E4 scheme assumption checks")
		ref     = flag.Bool("refine", false, "run the E3 refinement checking report")
		all     = flag.Bool("all", false, "run everything")
		depth   = flag.Int("depth", 4, "BFS depth bound for the model comparison")
	)
	flag.Parse()
	if !*model && !*schemes && !*ref {
		*all = true
	}
	if *all || *model {
		modelReport(*depth)
	}
	if *all || *schemes {
		schemeReport()
	}
	if *all || *ref {
		refineReport()
	}
}

// modelReport is E2: the CADO vs Adore comparison mirroring the paper's
// "1.3k lines / 2 weeks vs 4.5k lines / +3 weeks".
func modelReport(depth int) {
	fmt.Println("E2 — model-checking effort: CADO (static config) vs Adore (hot reconfiguration)")
	fmt.Println("paper: CADO safety 1.3k LoC Coq / 2 person-weeks; Adore 4.5k LoC / +3 weeks")
	fmt.Println()
	t := &bench.Table{Header: []string{"model", "nodes", "depth", "states", "reconfig states", "transitions", "wall time", "violations"}}
	for _, row := range []struct {
		name  string
		rules core.Rules
		spare bool
	}{
		{"CADO", core.StaticRules(), false},
		{"Adore", core.DefaultRules(), false},
		// With a spare node the configuration can both shrink and grow,
		// which is where reconfiguration genuinely multiplies the space.
		{"Adore+spare", core.DefaultRules(), true},
	} {
		st := core.NewState(config.RaftSingleNode, types.Range(1, 3), row.rules)
		nodes := "3"
		if row.spare {
			st.Times[4] = 0 // S4 exists but is outside conf₀
			nodes = "3+1"
		}
		start := time.Now()
		reconfStates := 0
		res := explore.BFS(st, explore.Options{
			MaxDepth:  depth,
			MaxStates: 2_000_000,
			OnState: func(s *core.State) {
				if len(s.Tree.RCaches()) > 0 {
					reconfStates++
				}
			},
		})
		viol := "none"
		if res.Violation != nil {
			viol = res.Violation.Error()
		}
		t.Add(row.name, nodes, fmt.Sprint(depth), fmt.Sprint(res.States), fmt.Sprint(reconfStates),
			fmt.Sprint(res.Transitions), time.Since(start).Round(time.Millisecond).String(), viol)
	}
	t.Print(os.Stdout)
	fmt.Println()
}

// schemeReport is E4: the six scheme instantiations and their assumption
// checks, mirroring the paper's "about 200 lines in total".
func schemeReport() {
	fmt.Println("E4 — reconfiguration scheme instantiations (paper: six examples, ~200 LoC + 100 shared)")
	fmt.Println()
	t := &bench.Table{Header: []string{"scheme", "configs", "quorum-pair cases", "wall time", "REFLEXIVE+OVERLAP"}}
	universe := types.Range(1, 5)
	start3 := types.Range(1, 3)
	for _, s := range config.AllSchemes() {
		depth := 3
		if s.Name() == "dynamic-quorum" || s.Name() == "unanimous" || s.Name() == "primary-backup" {
			depth = 2
		}
		start := time.Now()
		configs := config.ReachableConfigs(s, start3, universe, depth)
		cases, err := config.CheckAssumptions(s, start3, universe, depth)
		status := "OK"
		if err != nil {
			status = "VIOLATED: " + err.Error()
		}
		t.Add(s.Name(), fmt.Sprint(len(configs)), fmt.Sprint(cases),
			time.Since(start).Round(time.Millisecond).String(), status)
	}
	t.Print(os.Stdout)
	fmt.Println()
}

// refineReport is E3: refinement checking effort, mirroring the paper's
// "13.8k lines, of which 2.5k SRaft↔Adore".
func refineReport() {
	fmt.Println("E3 — refinement checking (paper: 13.8k LoC total, 2.5k SRaft↔Adore)")
	fmt.Println()
	t := &bench.Table{Header: []string{"scheme", "traces", "atomic steps", "logMatch checks", "wall time", "result"}}
	for _, s := range config.AllSchemes() {
		start := time.Now()
		steps, checks := 0, 0
		status := "OK"
		for seed := int64(0); seed < 20; seed++ {
			c := refine.New(s, types.Range(1, 4), core.DefaultRules())
			if err := drive(c, seed, 40); err != nil {
				status = "FAILED: " + err.Error()
				break
			}
			steps += c.Steps
			checks += c.Checks
		}
		t.Add(s.Name(), "20", fmt.Sprint(steps), fmt.Sprint(checks),
			time.Since(start).Round(time.Millisecond).String(), status)
	}
	t.Print(os.Stdout)
	fmt.Println()
}

// drive issues a random SRaft schedule through the refinement checker
// (mirrors the lockstep driver in the refine tests).
func drive(c *refine.Checker, seed int64, steps int) error {
	r := rand.New(rand.NewSource(seed))
	method := types.MethodID(1)
	for i := 0; i < steps; i++ {
		nodes := c.Net.St.Nodes
		ids := make([]types.NodeID, 0, len(nodes))
		for id := range nodes {
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil
		}
		// Deterministic order before random pick.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		nid := ids[r.Intn(len(ids))]
		s := nodes[nid]
		switch r.Intn(4) {
		case 0:
			if len(s.Log) == 0 && !c.Net.St.Conf0.Members().Contains(nid) {
				continue
			}
			voters := types.NewNodeSet(nid)
			for _, id := range s.CurrentConfig().Members().Slice() {
				if r.Intn(2) == 0 {
					voters = voters.Add(id)
				}
			}
			if _, err := c.Elect(nid, voters); err != nil {
				continue
			}
		case 1:
			if s.IsLeader {
				if err := c.Invoke(nid, method); err != nil {
					return err
				}
				method++
			}
		case 2:
			if s.IsLeader {
				succs := c.Net.St.Scheme.Successors(s.CurrentConfig(), types.Range(1, 5))
				if len(succs) > 0 {
					if err := c.Reconfig(nid, succs[r.Intn(len(succs))]); err != nil {
						return err
					}
				}
			}
		case 3:
			if !s.IsLeader {
				continue
			}
			anchor := c.Model.Tree.Get(c.Anchor(nid))
			last := c.Model.Tree.LastCommit(nid)
			fresh := anchor != nil && anchor.IsCommand() && anchor.Caller == nid &&
				anchor.Time == s.Time && (last == nil || anchor.Greater(last))
			ackers := types.NewNodeSet(nid)
			for _, id := range s.CurrentConfig().Members().Slice() {
				if other, ok := nodes[id]; !ok ||
					(fresh && other.Time <= s.Time) || (!fresh && other.Time == s.Time) {
					ackers = ackers.Add(id)
				}
			}
			if !s.CurrentConfig().IsQuorum(ackers) {
				continue
			}
			if err := c.Commit(nid, ackers); err != nil {
				return err
			}
		}
	}
	return nil
}
