// Command adore-sim replays the paper's behavioural figures as scripted
// executions of the Adore model, printing the cache tree after every step.
//
//	adore-sim -list
//	adore-sim fig5
//	adore-sim fig4-bug fig4-fixed
package main

import (
	"flag"
	"fmt"
	"os"

	"adore/internal/explore"
)

func main() {
	list := flag.Bool("list", false, "list available scenarios")
	flag.Parse()

	if *list {
		for _, sc := range explore.Scenarios() {
			fmt.Printf("%-12s %s\n", sc.Name, sc.About)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		for _, sc := range explore.Scenarios() {
			names = append(names, sc.Name)
		}
	}
	exit := 0
	for _, name := range names {
		sc, ok := explore.ScenarioByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (try -list)\n", name)
			exit = 2
			continue
		}
		tr, err := sc.Run()
		if tr != nil {
			fmt.Print(tr.Output)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %s FAILED: %v\n", name, err)
			exit = 1
		} else if sc.ExpectViolation != "" {
			fmt.Printf("scenario %s: violated %s as the paper predicts ✔\n\n", name, sc.ExpectViolation)
		} else {
			fmt.Printf("scenario %s: all invariants hold ✔\n\n", name)
		}
	}
	os.Exit(exit)
}
