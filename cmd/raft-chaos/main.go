// Command raft-chaos runs seeded chaos schedules against live clusters and
// checks the paper's safety oracles on every run: linearizability of the
// concurrent client history, committed-prefix agreement across replicas,
// at most one leader per term, and monotone terms.
//
// Every run's fault plan is a pure function of its seed, so a failing seed
// replays the identical nemesis timeline and workload:
//
//	raft-chaos -seeds 200 -duration 2s      # sweep seeds 0..199
//	raft-chaos -seed 1337 -v                # replay one seed, print its plan
//	raft-chaos -seeds 50 -disable-r2        # teeth check: must find violations
//	raft-chaos -sim -seeds 500              # deterministic simulation sweep
//	raft-chaos -sim -teeth                  # sim teeth: must exit non-zero
//	raft-chaos -teeth -disable-prevote      # election teeth: the rejoin-disruption schedule must be caught
//	raft-chaos -teeth -disable-checkquorum  # election teeth: the immortal stale leader must be caught
//	raft-chaos -sim -groups 3 -seeds 500    # multi-group sweep: per-group oracles over a sharded keyspace
//	raft-chaos -teeth -groups 2             # cross-group wipe teeth: group 1's corruption caught, group 0 clean
//	raft-chaos -teeth -disable-lease-guard  # lease teeth: the stale-lease oracle must fire (exit 1)
//
// With -sim each seed runs in the deterministic simulator instead of a live
// cluster: single-threaded on a logical clock, the entire execution (not
// just the fault plan) a pure function of the seed, with the executable
// refinement checker (replica logs vs the Adore cache tree) added to the
// oracle set. A bare -teeth implies -disable-r2 but keeps violations as the
// failing exit status, so `raft-chaos [-sim] -teeth` exits 1 exactly when
// the harness still has teeth.
//
// Exit status is non-zero if any seed produced a safety violation (or, with
// -disable-r2/-disable-r3, if none did: a harness that cannot catch a
// reintroduced bug is broken).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/chaos"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 20, "number of seeds to sweep (0..n-1), ignored when -seed is set")
		seed      = flag.Int64("seed", -1, "run exactly this seed (replay mode)")
		duration  = flag.Duration("duration", 2*time.Second, "nemesis horizon per run")
		nodes     = flag.Int("nodes", 5, "cluster size")
		clients   = flag.Int("clients", 4, "concurrent workload clients")
		ops       = flag.Int("ops", 32, "operations per client")
		keys      = flag.Int("keys", 8, "distinct keys (bounds per-key history size)")
		mem       = flag.Bool("mem", false, "in-memory WALs instead of file-backed")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel seed runners")
		disableR2 = flag.Bool("disable-r2", false, "reintroduce the R2 bug (expect violations)")
		disableR3 = flag.Bool("disable-r3", false, "reintroduce the R3 bug (expect violations)")
		disPV     = flag.Bool("disable-prevote", false, "turn off Pre-Vote (with -teeth: run the rejoin-disruption schedule)")
		disCQ     = flag.Bool("disable-checkquorum", false, "turn off CheckQuorum step-down (with -teeth: run the stale-leader schedule)")
		disLG     = flag.Bool("disable-lease-guard", false, "turn off the transfer/reconfig lease invalidation (with -teeth: run the lease-violation schedule; the stale-lease oracle must fire)")
		teeth     = flag.Bool("teeth", false, "run the crafted violation schedule for the disabled guard instead of generated ones")
		sim       = flag.Bool("sim", false, "deterministic simulation instead of a live cluster (adds the refinement oracle)")
		groups    = flag.Int("groups", 1, "raft groups sharing the keyspace (>1 implies -sim; every oracle runs per group)")
		snapThr   = flag.Int("snapshot-threshold", 0, "applied entries between state-machine snapshots (0 = default 64, negative = no compaction)")
		verbose   = flag.Bool("v", false, "print each run's plan and report")
	)
	flag.Parse()

	// -teeth runs the crafted violation schedule for the disabled guard
	// (default: R2). A bare -teeth keeps violations as the failing exit
	// status, so it exits non-zero exactly when the oracles still bite; an
	// explicit -disable-* (with or without -teeth) flips to
	// expect-violations mode — exit 0 on a catch, exit 1 if no seed caught
	// anything (a harness with no teeth).
	// Multi-group runs replay in the deterministic simulator: the groups
	// share nothing there, so per-group oracle attribution is exact.
	if *groups > 1 {
		*sim = true
	}
	// -teeth -groups N (no -disable-*) runs the cross-group storage-wipe
	// schedule: group 1 loses its WAL while group 0's survives, modeling the
	// flat-storage-layout bug the per-group subdirectories prevent. It is
	// always expect-violations mode, and every violation must be attributed
	// to the wiped group — a control-group catch fails the run.
	wipeTeeth := *teeth && *groups > 1 && !*disableR2 && !*disableR3 && !*disPV && !*disCQ && !*disLG
	expectViolations := *disableR2 || *disableR3 || *disPV || *disCQ || wipeTeeth
	// -teeth -disable-lease-guard runs the crafted lease-violation schedule
	// with the guard off and keeps violations as the FAILING exit status
	// (like a bare -teeth): the command exits 1 exactly when the stale-lease
	// oracle still bites, and the Makefile target negates it.
	leaseTeeth := *teeth && *disLG
	if *teeth && !wipeTeeth {
		if !expectViolations && !leaseTeeth {
			*disableR2 = true
		}
		// The election and lease oracles (disruption, stale leader, stale
		// lease) live in the deterministic simulator, which can see the
		// link state.
		if *disPV || *disCQ || leaseTeeth {
			*sim = true
		}
	}

	opt := chaos.Options{
		Nodes:              *nodes,
		Clients:            *clients,
		OpsPerClient:       *ops,
		Keys:               *keys,
		Duration:           *duration,
		MemWAL:             *mem,
		DisableR2:          *disableR2,
		DisableR3:          *disableR3,
		DisablePreVote:     *disPV,
		DisableCheckQuorum: *disCQ,
		DisableLeaseGuard:  *disLG,
		SnapshotThreshold:  *snapThr,
		Groups:             *groups,
	}

	var list []int64
	if *seed >= 0 {
		list = []int64{*seed}
	} else {
		for s := int64(0); s < int64(*seeds); s++ {
			list = append(list, s)
		}
	}

	var (
		mu      sync.Mutex
		failing []int64
		caught  atomic.Int64
		ran     atomic.Int64
	)
	jobs := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < max(1, *workers); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				sched := chaos.Generate(s, opt)
				if *teeth {
					switch {
					case wipeTeeth:
						sched = chaos.CrossGroupWipeSchedule(opt)
					case leaseTeeth:
						sched = chaos.LeaseViolationSchedule(opt)
					case *disPV:
						sched = chaos.DisruptionSchedule(opt)
					case *disCQ:
						sched = chaos.StaleLeaderSchedule(opt)
					default:
						sched = chaos.R2ViolationSchedule(opt)
					}
					sched.Seed = s
				}
				run := chaos.Run
				if *sim {
					run = chaos.RunSim
				}
				rep, err := run(sched, opt)
				if err != nil {
					fmt.Fprintf(os.Stderr, "seed %d: harness error: %v\n", s, err)
					mu.Lock()
					failing = append(failing, s)
					mu.Unlock()
					continue
				}
				ran.Add(1)
				if *verbose {
					mu.Lock()
					fmt.Printf("--- seed %d plan ---\n%s%s\n", s, sched, rep)
					mu.Unlock()
				}
				if !rep.Ok() {
					caught.Add(1)
					if expectViolations {
						if wipeTeeth {
							misattributed := false
							for _, v := range rep.Violations {
								if !strings.HasPrefix(v, "g1: ") {
									misattributed = true
									fmt.Fprintf(os.Stderr, "seed %d: violation outside the wiped group: %s\n", s, v)
								}
							}
							if misattributed {
								mu.Lock()
								failing = append(failing, s)
								mu.Unlock()
								continue
							}
						}
						fmt.Printf("seed %d: caught (as expected with guards off): %s\n", s, rep.Violations[0])
						continue
					}
					mu.Lock()
					failing = append(failing, s)
					mu.Unlock()
					fmt.Fprintf(os.Stderr, "seed %d: SAFETY VIOLATION (replay: raft-chaos%s -seed %d -duration %s%s)\n",
						s, simFlag(*sim), s, *duration, memFlag(*mem))
					for _, v := range rep.Violations {
						fmt.Fprintf(os.Stderr, "  %s\n", v)
					}
				}
			}
		}()
	}
	start := time.Now()
	for _, s := range list {
		jobs <- s
	}
	close(jobs)
	wg.Wait()

	if expectViolations {
		fmt.Printf("%d/%d seeds caught the reintroduced bug in %s\n", caught.Load(), ran.Load(), time.Since(start).Round(time.Millisecond))
		if caught.Load() == 0 {
			fmt.Fprintln(os.Stderr, "guards disabled but no seed found a violation: the harness has no teeth")
			os.Exit(1)
		}
		return
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d seeds failed: %v\n", len(failing), len(list), failing)
		os.Exit(1)
	}
	fmt.Printf("%d seeds clean in %s\n", len(list), time.Since(start).Round(time.Millisecond))
}

func memFlag(mem bool) string {
	if mem {
		return " -mem"
	}
	return ""
}

func simFlag(sim bool) string {
	if sim {
		return " -sim"
	}
	return ""
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
