// Command adore-check model-checks the Adore model: it explores the
// reachable state space under a chosen reconfiguration scheme and rule set,
// checking every safety invariant from the paper on every state.
//
// Examples:
//
//	adore-check -scheme raft-single -nodes 3 -depth 4
//	adore-check -rules noR3 -nodes 4 -depth 6 -hunt     # rediscovers Fig. 4
//	adore-check -walks 500 -steps 40 -seed 7            # random walks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/explore"
	"adore/internal/types"
)

func main() {
	var (
		schemeName = flag.String("scheme", "raft-single", "reconfiguration scheme: "+schemeNames())
		nodes      = flag.Int("nodes", 3, "initial cluster size")
		depth      = flag.Int("depth", 4, "BFS depth bound")
		maxStates  = flag.Int("max-states", 500000, "BFS state cap (0 = unlimited)")
		walks      = flag.Int("walks", 0, "random walks to run instead of BFS")
		steps      = flag.Int("steps", 30, "steps per random walk")
		seed       = flag.Int64("seed", 1, "random seed")
		rules      = flag.String("rules", "full", "rule set: full | noR1 | noR2 | noR3 | static | stop-the-world")
		hunt       = flag.Bool("hunt", false, "violation hunt: restrict to two acting leaders, minimal timestamps, safety checkers only")
		failures   = flag.Bool("failures", false, "include non-quorum pulls/pushes in the transition relation")
	)
	flag.Parse()

	scheme := config.SchemeByName(*schemeName)
	if scheme == nil {
		fmt.Fprintf(os.Stderr, "unknown scheme %q (have: %s)\n", *schemeName, schemeNames())
		os.Exit(2)
	}
	r, err := parseRules(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	st := core.NewState(scheme, types.Range(1, types.NodeID(*nodes)), r)
	opts := explore.Options{
		MaxDepth:     *depth,
		MaxStates:    *maxStates,
		WithFailures: *failures,
	}
	if *hunt {
		opts.MinimalTimes = true
		opts.Actors = types.NewNodeSet(1, 2)
		opts.Invariants = explore.BugHuntCheckers()
	}

	start := time.Now()
	var res explore.Result
	if *walks > 0 {
		res = explore.RandomWalk(st, *seed, *walks, *steps, opts)
		fmt.Printf("random walks: %d × %d steps under scheme %s, rules %s\n", *walks, *steps, scheme.Name(), *rules)
	} else {
		res = explore.BFS(st, opts)
		fmt.Printf("BFS: depth ≤ %d under scheme %s, rules %s\n", *depth, scheme.Name(), *rules)
	}
	fmt.Printf("states: %d  transitions: %d  depth reached: %d  truncated: %v  elapsed: %s\n",
		res.States, res.Transitions, res.DepthReached, res.Truncated, time.Since(start).Round(time.Millisecond))

	if res.Violation != nil {
		fmt.Printf("\nVIOLATION: %s\n", res.Violation.Error())
		fmt.Printf("trace:\n  %s\n", strings.Join(res.Trace, "\n  "))
		fmt.Printf("state:\n%s", res.ViolationState)
		os.Exit(1)
	}
	fmt.Println("no violations found")
}

func schemeNames() string {
	var names []string
	for _, s := range config.AllSchemes() {
		names = append(names, s.Name())
	}
	return strings.Join(names, ", ")
}

func parseRules(s string) (core.Rules, error) {
	switch s {
	case "full":
		return core.DefaultRules(), nil
	case "noR1":
		return core.WithoutR1(), nil
	case "noR2":
		return core.WithoutR2(), nil
	case "noR3":
		return core.WithoutR3(), nil
	case "static":
		return core.StaticRules(), nil
	case "stop-the-world":
		r := core.DefaultRules()
		r.StopTheWorld = true
		return r, nil
	default:
		return core.Rules{}, fmt.Errorf("unknown rule set %q", s)
	}
}
