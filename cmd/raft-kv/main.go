// Command raft-kv runs one replica of the replicated key-value store over
// real TCP — the deployment path corresponding to the paper's extracted
// OCaml protocol plus network wrapper.
//
// Start a 3-node cluster in three shells:
//
//	raft-kv -id 1 -listen 127.0.0.1:7001 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//	raft-kv -id 2 -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//	raft-kv -id 3 -listen 127.0.0.1:7003 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//
// Each replica also serves a line-oriented client protocol on -client-listen
// (default: raft port + 1000):
//
//	printf 'put name adore\nget name\n' | nc 127.0.0.1 8001
//
// Commands: get K | put K V | delete K | cas K OLD NEW | members | status |
// addserver ID | removeserver ID | transfer [ID]. Writes must be sent to
// the leader (responses include a redirect hint otherwise); transfer hands
// leadership to ID, or to the most caught-up voter when omitted.
//
// With -wal DIR the replica persists its log (and, with
// -snapshot-threshold N, periodic state-machine snapshots that truncate
// it) and recovers both across restarts.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

func main() {
	var (
		idFlag       = flag.Uint("id", 1, "this node's ID")
		listen       = flag.String("listen", "127.0.0.1:7001", "raft listen address")
		clientListen = flag.String("client-listen", "", "client listen address (default: raft port + 1000)")
		peersFlag    = flag.String("peers", "", "comma-separated id=addr pairs for every cluster member")
		timeoutMin   = flag.Duration("election-timeout", 150*time.Millisecond, "minimum election timeout")
		walDir       = flag.String("wal", "", "directory for the file-backed WAL (default: in-memory storage)")
		snapThr      = flag.Int("snapshot-threshold", 0, "applied entries between state-machine snapshots (0 = no local compaction)")
		disPV        = flag.Bool("disable-prevote", false, "campaign without the Pre-Vote round (rejoining nodes may disrupt a healthy leader)")
		disCQ        = flag.Bool("disable-checkquorum", false, "leaders keep leading without quorum contact (stale leaders linger after partitions)")
	)
	flag.Parse()

	id := types.NodeID(*idFlag)
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, ok := peers[id]; !ok {
		fmt.Fprintf(os.Stderr, "node %d missing from -peers\n", id)
		os.Exit(2)
	}
	members := make([]types.NodeID, 0, len(peers))
	for pid := range peers {
		members = append(members, pid)
	}

	var storage raft.Storage
	if *walDir != "" {
		fs, err := raft.OpenFileStorage(*walDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		storage = fs
	}
	store := kvstore.NewStore()

	inbox := make(chan raft.Message, 4096)
	tr, err := transport.NewTCPTransport(id, *listen, peers, inbox)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	node := raft.StartNode(raft.Options{
		ID:                 id,
		Members:            members,
		Transport:          tr,
		Storage:            storage,
		StateMachine:       store,
		SnapshotThreshold:  *snapThr,
		ElectionTimeoutMin: *timeoutMin,
		DisablePreVote:     *disPV,
		DisableCheckQuorum: *disCQ,
		Seed:               int64(id),
	})
	go func() {
		for m := range inbox {
			select {
			case node.Inbox() <- m:
			case <-node.Done():
				return
			}
		}
	}()

	go func() {
		for batch := range node.ApplyCh() {
			for _, msg := range batch {
				store.Apply(msg)
			}
		}
	}()

	caddr := *clientListen
	if caddr == "" {
		caddr = bumpPort(*listen, 1000)
	}
	ln, err := net.Listen("tcp", caddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("raft-kv node %s: raft on %s, clients on %s, members %v\n", id, *listen, caddr, members)
	go serveClients(ln, node, store)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	ln.Close()
	node.Stop()
}

func parsePeers(s string) (map[types.NodeID]string, error) {
	out := make(map[types.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		out[types.NodeID(id)] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no peers given (-peers id=addr,...)")
	}
	return out, nil
}

func bumpPort(addr string, by int) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return addr
	}
	return net.JoinHostPort(host, strconv.Itoa(p+by))
}

func serveClients(ln net.Listener, node *raft.Node, store *kvstore.Store) {
	var seq atomic.Uint64 // shared by all connection goroutines
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			w := bufio.NewWriter(conn)
			defer w.Flush()
			for sc.Scan() {
				reply := handleCommand(node, store, strings.Fields(sc.Text()), seq.Add(1))
				fmt.Fprintln(w, reply)
				w.Flush()
			}
		}(conn)
	}
}

func handleCommand(node *raft.Node, store *kvstore.Store, fields []string, seq uint64) string {
	if len(fields) == 0 {
		return "ERR empty command"
	}
	propose := func(cmd kvstore.Command) string {
		cmd.Client = uint64(node.ID())
		cmd.Seq = seq
		_, _, err := node.Propose(cmd.Encode())
		if err != nil {
			_, _, leader := node.Status()
			return fmt.Sprintf("ERR not leader (try %s)", leader)
		}
		// Poll the local store for the applied result.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if v, ok := store.LocalGet(cmd.Key); ok && cmd.Op == kvstore.OpPut && v == cmd.Value {
				return "OK"
			}
			if cmd.Op != kvstore.OpPut {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if cmd.Op == kvstore.OpPut {
			return "ERR timeout"
		}
		return "OK (proposed)"
	}
	switch strings.ToLower(fields[0]) {
	case "get":
		if len(fields) != 2 {
			return "ERR usage: get K"
		}
		if v, ok := store.LocalGet(fields[1]); ok {
			return "VALUE " + v
		}
		return "NOTFOUND"
	case "put":
		if len(fields) != 3 {
			return "ERR usage: put K V"
		}
		return propose(kvstore.Command{Op: kvstore.OpPut, Key: fields[1], Value: fields[2]})
	case "delete":
		if len(fields) != 2 {
			return "ERR usage: delete K"
		}
		return propose(kvstore.Command{Op: kvstore.OpDelete, Key: fields[1]})
	case "cas":
		if len(fields) != 4 {
			return "ERR usage: cas K OLD NEW"
		}
		return propose(kvstore.Command{Op: kvstore.OpCAS, Key: fields[1], Old: fields[2], Value: fields[3]})
	case "members":
		return "MEMBERS " + node.Members().String()
	case "status":
		term, role, leader := node.Status()
		return fmt.Sprintf("STATUS term=%d role=%s leader=%s commit=%d", term, role, leader, node.CommitIndex())
	case "addserver":
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return "ERR bad id"
		}
		if _, _, err := node.AddServer(types.NodeID(id)); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "removeserver":
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return "ERR bad id"
		}
		if _, _, err := node.RemoveServer(types.NodeID(id)); err != nil {
			return "ERR " + err.Error()
		}
		return "OK"
	case "transfer":
		// transfer [ID]: hand leadership to ID, or to the most caught-up
		// voter when no ID is given. Must be sent to the leader.
		to := types.NoNode
		if len(fields) > 1 {
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return "ERR bad id"
			}
			to = types.NodeID(id)
		}
		if err := node.TransferLeader(to); err != nil {
			return "ERR " + err.Error()
		}
		return "OK (transferring)"
	default:
		return "ERR unknown command"
	}
}
