// Command raft-kv runs one replica of the replicated key-value store over
// real TCP — the deployment path corresponding to the paper's extracted
// OCaml protocol plus network wrapper.
//
// Start a 3-node cluster in three shells:
//
//	raft-kv -id 1 -listen 127.0.0.1:7001 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//	raft-kv -id 2 -listen 127.0.0.1:7002 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//	raft-kv -id 3 -listen 127.0.0.1:7003 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003
//
// With -shards N each replica hosts N independent raft groups multiplexed
// over the same TCP connections (a multiraft.Host), the keyspace hash-
// partitioned across them: every command routes to its key's group, each
// group elects its own leader and compacts its own WAL. All replicas must
// agree on -shards.
//
// Each replica also serves a line-oriented client protocol on -client-listen
// (default: raft port + 1000):
//
//	printf 'put name adore\nget name\n' | nc 127.0.0.1 8001
//
// Commands: get K | put K V | delete K | cas K OLD NEW | members | status |
// addserver ID | removeserver ID | transfer [ID]. Writes must be sent to
// the key's shard leader (responses include a redirect hint otherwise);
// membership and transfer commands apply to every group the host runs.
//
// Reads are linearizable by default: -read-mode selects the barrier get
// runs before serving. follower (the default) forwards a ReadIndex barrier
// to the key's shard leader so ANY replica serves reads from its own state
// machine; leader-readindex and leader-lease serve only at the leader (the
// quorum barrier vs the logical-tick lease fast path, the latter falling
// back to the barrier when no lease is held); local skips the barrier
// entirely and may return stale values.
//
// With -wal DIR the replica persists its log (and, with
// -snapshot-threshold N, periodic state-machine snapshots that truncate
// it) and recovers both across restarts. With -shards > 1 each group lives
// in its own DIR/group-NNNN subdirectory, so one group's compaction can
// never unlink another's segments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"adore/internal/kvstore"
	"adore/internal/multiraft"
	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

func main() {
	var (
		idFlag       = flag.Uint("id", 1, "this node's ID")
		listen       = flag.String("listen", "127.0.0.1:7001", "raft listen address")
		clientListen = flag.String("client-listen", "", "client listen address (default: raft port + 1000)")
		peersFlag    = flag.String("peers", "", "comma-separated id=addr pairs for every cluster member")
		timeoutMin   = flag.Duration("election-timeout", 150*time.Millisecond, "minimum election timeout")
		walDir       = flag.String("wal", "", "directory for the file-backed WAL (default: in-memory storage)")
		snapThr      = flag.Int("snapshot-threshold", 0, "applied entries between state-machine snapshots (0 = no local compaction)")
		shardsFlag   = flag.Int("shards", 1, "raft groups hosted by every replica; keys hash across them (all replicas must agree)")
		disPV        = flag.Bool("disable-prevote", false, "campaign without the Pre-Vote round (rejoining nodes may disrupt a healthy leader)")
		disCQ        = flag.Bool("disable-checkquorum", false, "leaders keep leading without quorum contact (stale leaders linger after partitions)")
		readModeFlag = flag.String("read-mode", "follower", "how get is served: follower (linearizable from any replica), leader-readindex or leader-lease (this replica must lead the key's group), or local (no barrier, may be stale)")
		disLease     = flag.Bool("disable-lease-read", false, "turn off the leader-lease fast path; leader-lease gets fall back to the quorum barrier")
	)
	flag.Parse()

	readLocal := *readModeFlag == "local"
	var readMode kvstore.ReadMode
	if !readLocal {
		var err error
		if readMode, err = kvstore.ParseReadMode(*readModeFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	id := types.NodeID(*idFlag)
	shards := *shardsFlag
	if shards < 1 {
		shards = 1
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, ok := peers[id]; !ok {
		fmt.Fprintf(os.Stderr, "node %d missing from -peers\n", id)
		os.Exit(2)
	}
	members := make([]types.NodeID, 0, len(peers))
	for pid := range peers {
		members = append(members, pid)
	}

	stores := make([]*kvstore.Store, shards)
	for g := range stores {
		stores[g] = kvstore.NewStore()
	}

	tr, err := transport.NewTCPTransport(id, *listen, peers, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	hostOpts := multiraft.Options{
		ID:                 id,
		Members:            members,
		Groups:             shards,
		Transport:          tr,
		ElectionTimeoutMin: *timeoutMin,
		SnapshotThreshold:  *snapThr,
		DisablePreVote:     *disPV,
		DisableCheckQuorum: *disCQ,
		DisableLeaseRead:   *disLease,
		Seed:               int64(id),
		StateMachineFor:    func(g raft.GroupID) raft.StateMachine { return stores[g] },
		OnApply: func(g raft.GroupID, batch []raft.ApplyMsg) {
			for _, msg := range batch {
				stores[g].Apply(msg)
			}
		},
	}
	if *walDir != "" {
		if shards == 1 {
			// Single-group deployments keep the flat pre-shards layout, so
			// existing WAL directories recover unchanged.
			fs, err := raft.OpenFileStorage(*walDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			hostOpts.StorageFor = func(raft.GroupID) raft.Storage { return fs }
		} else {
			hostOpts.StorageRoot = *walDir
		}
	}
	host, err := multiraft.Start(hostOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	caddr := *clientListen
	if caddr == "" {
		caddr = bumpPort(*listen, 1000)
	}
	ln, err := net.Listen("tcp", caddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("raft-kv node %s: raft on %s, clients on %s, %d shard(s), members %v\n",
		id, *listen, caddr, shards, members)
	srv := &server{shards: shards, host: host, stores: stores, readLocal: readLocal, readMode: readMode}
	go srv.serve(ln)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	ln.Close()
	host.Stop()
	tr.Close()
}

func parsePeers(s string) (map[types.NodeID]string, error) {
	out := make(map[types.NodeID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=addr)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		out[types.NodeID(id)] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no peers given (-peers id=addr,...)")
	}
	return out, nil
}

func bumpPort(addr string, by int) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return addr
	}
	return net.JoinHostPort(host, strconv.Itoa(p+by))
}

// server routes client commands to their key's shard.
type server struct {
	shards    int
	host      *multiraft.Host
	stores    []*kvstore.Store
	readLocal bool             // -read-mode local: serve gets with no barrier
	readMode  kvstore.ReadMode // barrier used by get when !readLocal
	seq       atomic.Uint64    // shared by all connection goroutines
}

// route returns the raft node and state machine responsible for key.
func (s *server) route(key string) (*raft.Node, *kvstore.Store) {
	g := kvstore.ShardOf(key, s.shards)
	return s.host.Node(g), s.stores[g]
}

func (s *server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			w := bufio.NewWriter(conn)
			defer w.Flush()
			for sc.Scan() {
				reply := s.handleCommand(strings.Fields(sc.Text()))
				fmt.Fprintln(w, reply)
				w.Flush()
			}
		}(conn)
	}
}

// eachGroup runs f on every group's node, collecting per-group errors into
// one reply ("OK" when all groups succeed).
func (s *server) eachGroup(f func(*raft.Node) error) string {
	var errs []string
	for g := 0; g < s.shards; g++ {
		if err := f(s.host.Node(raft.GroupID(g))); err != nil {
			errs = append(errs, fmt.Sprintf("g%d: %s", g, err))
		}
	}
	if len(errs) > 0 {
		return "ERR " + strings.Join(errs, "; ")
	}
	return "OK"
}

// get serves a read at the configured -read-mode. Every mode except local
// runs a linearizability barrier first — a quorum ReadIndex round at the
// leader, a lease check (falling back to the quorum round when no lease is
// held), or a barrier forwarded from this follower — then waits for the
// local state machine to apply up to the barrier index before serving.
func (s *server) get(key string) string {
	node, store := s.route(key)
	if s.readLocal {
		if v, ok := store.LocalGet(key); ok {
			return "VALUE " + v
		}
		return "NOTFOUND"
	}
	const timeout = 5 * time.Second
	var idx int
	var err error
	switch s.readMode {
	case kvstore.ReadModeLease:
		var ok bool
		if idx, ok = node.LeaseRead(); !ok {
			// No valid lease (not leader, acks stale, transfer or reconfig
			// in flight): degrade to the full quorum barrier.
			idx, err = node.ReadIndex(timeout)
		}
	case kvstore.ReadModeFollower:
		idx, err = node.FollowerReadIndex(timeout)
	default: // ReadModeReadIndex
		idx, err = node.ReadIndex(timeout)
	}
	if err != nil {
		_, _, leader := node.Status()
		return fmt.Sprintf("ERR read barrier: %s (try %s)", err, leader)
	}
	deadline := time.Now().Add(timeout)
	for store.AppliedIndex() < idx {
		if !time.Now().Before(deadline) {
			return "ERR timeout waiting for apply"
		}
		time.Sleep(500 * time.Microsecond)
	}
	if v, ok := store.LocalGet(key); ok {
		return "VALUE " + v
	}
	return "NOTFOUND"
}

func (s *server) handleCommand(fields []string) string {
	if len(fields) == 0 {
		return "ERR empty command"
	}
	propose := func(cmd kvstore.Command) string {
		node, store := s.route(cmd.Key)
		cmd.Client = uint64(s.host.ID())
		cmd.Seq = s.seq.Add(1)
		_, _, err := node.Propose(cmd.Encode())
		if err != nil {
			_, _, leader := node.Status()
			return fmt.Sprintf("ERR not leader (try %s)", leader)
		}
		// Poll the local store for the applied result.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if v, ok := store.LocalGet(cmd.Key); ok && cmd.Op == kvstore.OpPut && v == cmd.Value {
				return "OK"
			}
			if cmd.Op != kvstore.OpPut {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if cmd.Op == kvstore.OpPut {
			return "ERR timeout"
		}
		return "OK (proposed)"
	}
	switch strings.ToLower(fields[0]) {
	case "get":
		if len(fields) != 2 {
			return "ERR usage: get K"
		}
		return s.get(fields[1])
	case "put":
		if len(fields) != 3 {
			return "ERR usage: put K V"
		}
		return propose(kvstore.Command{Op: kvstore.OpPut, Key: fields[1], Value: fields[2]})
	case "delete":
		if len(fields) != 2 {
			return "ERR usage: delete K"
		}
		return propose(kvstore.Command{Op: kvstore.OpDelete, Key: fields[1]})
	case "cas":
		if len(fields) != 4 {
			return "ERR usage: cas K OLD NEW"
		}
		return propose(kvstore.Command{Op: kvstore.OpCAS, Key: fields[1], Old: fields[2], Value: fields[3]})
	case "members":
		// Groups reconfigure independently; report each group's view.
		if s.shards == 1 {
			return "MEMBERS " + s.host.Node(0).Members().String()
		}
		parts := make([]string, s.shards)
		for g := 0; g < s.shards; g++ {
			parts[g] = fmt.Sprintf("g%d=%s", g, s.host.Node(raft.GroupID(g)).Members())
		}
		return "MEMBERS " + strings.Join(parts, " ")
	case "status":
		if s.shards == 1 {
			node := s.host.Node(0)
			term, role, leader := node.Status()
			return fmt.Sprintf("STATUS term=%d role=%s leader=%s commit=%d", term, role, leader, node.CommitIndex())
		}
		parts := make([]string, s.shards)
		for g := 0; g < s.shards; g++ {
			node := s.host.Node(raft.GroupID(g))
			term, role, leader := node.Status()
			parts[g] = fmt.Sprintf("g%d[term=%d role=%s leader=%s commit=%d]", g, term, role, leader, node.CommitIndex())
		}
		return "STATUS " + strings.Join(parts, " ")
	case "addserver":
		if len(fields) != 2 {
			return "ERR usage: addserver ID"
		}
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return "ERR bad id"
		}
		return s.eachGroup(func(n *raft.Node) error {
			_, _, err := n.AddServer(types.NodeID(id))
			return err
		})
	case "removeserver":
		if len(fields) != 2 {
			return "ERR usage: removeserver ID"
		}
		id, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return "ERR bad id"
		}
		return s.eachGroup(func(n *raft.Node) error {
			_, _, err := n.RemoveServer(types.NodeID(id))
			return err
		})
	case "transfer":
		// transfer [ID]: hand every group's leadership to ID, or to the most
		// caught-up voter when no ID is given. Each group must see this on
		// its leader; groups led elsewhere report errors individually.
		to := types.NoNode
		if len(fields) > 1 {
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return "ERR bad id"
			}
			to = types.NodeID(id)
		}
		if reply := s.eachGroup(func(n *raft.Node) error {
			return n.TransferLeader(to)
		}); reply != "OK" {
			return reply
		}
		return "OK (transferring)"
	}
	return "ERR unknown command"
}
