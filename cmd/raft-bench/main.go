// Command raft-bench regenerates Fig. 16: client-request latency of the
// executable Raft runtime under hot reconfiguration, following the paper's
// schedule (5 nodes → 3 → 5, reconfiguring every 1000 requests).
//
//	raft-bench                      # the paper's parameters
//	raft-bench -requests 2000 -reconfig-every 400 -window 50
//	raft-bench -runs 8              # the paper aggregates 8 runs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adore/internal/bench"
)

func main() {
	opts := bench.Fig16Defaults()
	flag.IntVar(&opts.Requests, "requests", opts.Requests, "total client requests")
	flag.IntVar(&opts.ReconfigEvery, "reconfig-every", opts.ReconfigEvery, "requests between membership changes")
	flag.IntVar(&opts.StartNodes, "nodes", opts.StartNodes, "initial cluster size")
	flag.DurationVar(&opts.NetLatency, "latency", opts.NetLatency, "simulated one-way network latency")
	flag.DurationVar(&opts.NetJitter, "jitter", opts.NetJitter, "simulated latency jitter")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "random seed")
	window := flag.Int("window", 100, "requests per report window")
	runs := flag.Int("runs", 1, "independent runs (the paper reports 8)")
	availability := flag.Bool("availability", false, "run the liveness/availability probe instead of Fig. 16")
	flag.Parse()

	if *availability {
		res, err := bench.RunAvailability(bench.AvailabilityDefaults())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		return
	}

	for run := 0; run < *runs; run++ {
		o := opts
		o.Seed = opts.Seed + int64(run)
		if *runs > 1 {
			fmt.Printf("===== run %d/%d (seed %d) =====\n", run+1, *runs, o.Seed)
		}
		res, err := bench.RunFig16(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "run %d: %v\n", run+1, err)
			os.Exit(1)
		}
		res.Print(os.Stdout, *window)
		fmt.Println()
		time.Sleep(50 * time.Millisecond) // let goroutines drain between runs
	}
}
