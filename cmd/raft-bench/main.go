// Command raft-bench regenerates Fig. 16: client-request latency of the
// executable Raft runtime under hot reconfiguration, following the paper's
// schedule (5 nodes → 3 → 5, reconfiguring every 1000 requests).
//
//	raft-bench                      # the paper's parameters
//	raft-bench -requests 2000 -reconfig-every 400 -window 50
//	raft-bench -runs 8              # the paper aggregates 8 runs
//	raft-bench -clients 16          # concurrent closed-loop clients
//	raft-bench -ab -json BENCH.json # batched vs unbatched, JSON evidence
//	raft-bench -reads -json BENCH_10.json # read-path modes + follower scaling
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"adore/internal/bench"
)

func main() {
	opts := bench.Fig16Defaults()
	flag.IntVar(&opts.Requests, "requests", opts.Requests, "total client requests")
	flag.IntVar(&opts.ReconfigEvery, "reconfig-every", opts.ReconfigEvery, "requests between membership changes")
	flag.IntVar(&opts.StartNodes, "nodes", opts.StartNodes, "initial cluster size")
	flag.DurationVar(&opts.NetLatency, "latency", opts.NetLatency, "simulated one-way network latency")
	flag.DurationVar(&opts.NetJitter, "jitter", opts.NetJitter, "simulated latency jitter")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "random seed")
	flag.IntVar(&opts.Clients, "clients", 1, "concurrent closed-loop clients")
	flag.BoolVar(&opts.Unbatched, "unbatched", false, "bypass group commit (one fsync per command)")
	flag.BoolVar(&opts.Durable, "durable", false, "back each node with a file WAL (fsync on the critical path)")
	flag.BoolVar(&opts.DisablePreVote, "disable-prevote", false, "turn off Pre-Vote (measure reconfiguration without election robustness)")
	flag.BoolVar(&opts.DisableCheckQuorum, "disable-checkquorum", false, "turn off CheckQuorum step-down")
	window := flag.Int("window", 100, "requests per report window")
	runs := flag.Int("runs", 1, "independent runs (the paper reports 8)")
	ab := flag.Bool("ab", false, "run the batching ablation: the same workload batched AND unbatched")
	jsonPath := flag.String("json", "", "also write the runs as JSON to this file (BENCH_*.json evidence)")
	availability := flag.Bool("availability", false, "run the liveness/availability probe instead of Fig. 16")
	recovery := flag.Bool("recovery", false, "run the restart-recovery/catch-up grid (compacted vs full WAL) instead of Fig. 16")
	recoveryHist := flag.String("recovery-histories", "", "comma-separated history sizes for -recovery (default 5000,20000,50000)")
	shards := flag.String("shards", "", "run the multi-raft shard-scaling sweep over these comma-separated group counts (e.g. 1,2,4,8) instead of Fig. 16")
	shardReqs := flag.Int("shard-requests", 0, "operations per shard-sweep point (default 3000)")
	reads := flag.Bool("reads", false, "run the read-path mode grid (ReadIndex / lease / follower) and the follower-scaling sweep instead of Fig. 16")
	readClients := flag.String("read-clients", "", "comma-separated closed-loop client counts for the -reads mode grid (default 4,16,32)")
	readReqs := flag.Int("read-requests", 0, "operations per -reads point (default 4000)")
	flag.Parse()

	if *reads {
		opts := bench.ReadsDefaults()
		if *readClients != "" {
			opts.ClientCounts = opts.ClientCounts[:0]
			for _, f := range strings.Split(*readClients, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "bad -read-clients entry %q (must be a positive int)\n", f)
					os.Exit(1)
				}
				opts.ClientCounts = append(opts.ClientCounts, n)
			}
		}
		if *readReqs > 0 {
			opts.Requests = *readReqs
		}
		res, err := bench.RunReads(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		if *jsonPath != "" {
			if err := bench.WriteJSON(*jsonPath, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote read sweep to %s\n", *jsonPath)
		}
		return
	}

	if *shards != "" {
		opts := bench.ShardsDefaults()
		opts.ShardCounts = opts.ShardCounts[:0]
		for _, f := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -shards entry %q (must be a positive int)\n", f)
				os.Exit(1)
			}
			opts.ShardCounts = append(opts.ShardCounts, n)
		}
		if *shardReqs > 0 {
			opts.Requests = *shardReqs
		}
		res, err := bench.RunShards(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		if *jsonPath != "" {
			if err := bench.WriteJSON(*jsonPath, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote shard sweep to %s\n", *jsonPath)
		}
		return
	}

	if *recovery {
		opts := bench.RecoveryDefaults()
		if *recoveryHist != "" {
			opts.Histories = opts.Histories[:0]
			for _, f := range strings.Split(*recoveryHist, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || n <= opts.RetainTail {
					fmt.Fprintf(os.Stderr, "bad -recovery-histories entry %q (must be an int > %d)\n", f, opts.RetainTail)
					os.Exit(1)
				}
				opts.Histories = append(opts.Histories, n)
			}
		}
		res, err := bench.RunRecovery(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		if *jsonPath != "" {
			if err := bench.WriteJSON(*jsonPath, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote recovery grid to %s\n", *jsonPath)
		}
		return
	}

	if *availability {
		res, err := bench.RunAvailability(bench.AvailabilityDefaults())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		return
	}

	var results []bench.Fig16JSON
	execute := func(o bench.Fig16Options, name string) {
		res, err := bench.RunFig16(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("===== %s (seed %d, %d clients) =====\n", name, o.Seed, max(1, o.Clients))
		res.Print(os.Stdout, *window)
		fmt.Println()
		results = append(results, res.JSON(name, o, *window))
		time.Sleep(50 * time.Millisecond) // let goroutines drain between runs
	}

	for run := 0; run < *runs; run++ {
		o := opts
		o.Seed = opts.Seed + int64(run)
		if *ab {
			o.Unbatched = false
			execute(o, fmt.Sprintf("batched-run%d", run+1))
			o.Unbatched = true
			execute(o, fmt.Sprintf("unbatched-run%d", run+1))
		} else {
			name := "fig16"
			if o.Unbatched {
				name = "fig16-unbatched"
			}
			execute(o, fmt.Sprintf("%s-run%d", name, run+1))
		}
	}

	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d runs to %s\n", len(results), *jsonPath)
	}
}
