// Command adore-lint runs the repo-specific static checks over the adore
// module: immutable-cache, deterministic-model, guarded-field, and
// exhaustive-switch. It exits nonzero when any diagnostic is produced, so
// it slots directly into CI next to go vet.
//
// Usage:
//
//	go run ./cmd/adore-lint ./...
//
// The package pattern argument is accepted for familiarity; the tool
// always analyzes the whole module containing the working directory.
package main

import (
	"fmt"
	"os"

	"adore/internal/lint"
)

func main() {
	dir := "."
	for _, arg := range os.Args[1:] {
		switch arg {
		case "./...", "...":
			// whole-module run, the default
		case "-h", "--help":
			fmt.Println("usage: adore-lint [./...]")
			return
		default:
			dir = arg
		}
	}

	root, modPath, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adore-lint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(root, modPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adore-lint:", err)
		os.Exit(2)
	}
	diags := lint.RunAll(prog, lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "adore-lint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}
