// Command adore-lint runs the repo-specific static checks over the adore
// module: immutable-cache, deterministic-model, lockset, exhaustive-switch,
// transitive-purity, and effect-order. It exits nonzero when any diagnostic
// is produced, so it slots directly into CI next to go vet.
//
// Usage:
//
//	go run ./cmd/adore-lint [-json] [-pass name[,name...]] [./...]
//
// Flags:
//
//	-json   emit diagnostics as a JSON array (one object per finding)
//	-pass   run only the named passes (comma-separated); default all
//
// The package pattern argument is accepted for familiarity; the tool
// always analyzes the whole module containing the working directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"adore/internal/lint"
)

// jsonDiagnostic is the stable wire shape of one finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it returns the process exit code
// instead of calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("adore-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	passes := fs.String("pass", "", "comma-separated pass names to run (default: all: "+
		strings.Join(lint.PassNames(), ", ")+")")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: adore-lint [-json] [-pass name[,name...]] [./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := "."
	for _, arg := range fs.Args() {
		switch arg {
		case "./...", "...":
			// whole-module run, the default
		default:
			dir = arg
		}
	}

	var names []string
	if *passes != "" {
		for _, n := range strings.Split(*passes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	root, modPath, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "adore-lint:", err)
		return 2
	}
	prog, err := lint.Load(root, modPath)
	if err != nil {
		fmt.Fprintln(stderr, "adore-lint:", err)
		return 2
	}
	diags, err := lint.RunPasses(prog, lint.DefaultConfig(), names)
	if err != nil {
		fmt.Fprintln(stderr, "adore-lint:", err)
		return 2
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Pass:    d.Pass,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "adore-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "adore-lint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}
