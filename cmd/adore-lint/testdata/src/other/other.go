// Package other swallows unknown kinds with an empty default — the second
// finding, in a second file, pins cross-file diagnostic ordering.
package other

import "fixcli/kind"

// Class maps kinds to display classes.
func Class(k kind.Kind) string {
	switch k {
	case kind.KLeaf:
		return "leaf"
	default:
	}
	return ""
}
