module fixcli

go 1.22
