// Package kind declares a protocol enum and switches over it without
// covering every value — the CLI golden test pins the resulting
// diagnostic and its ordering.
package kind

// Kind tags tree nodes.
type Kind int

// The Kind values.
const (
	KLeaf Kind = iota
	KNode
	KRoot
)

// Describe misses KRoot and has no default.
func Describe(k Kind) string {
	switch k {
	case KLeaf:
		return "leaf"
	case KNode:
		return "node"
	}
	return ""
}
