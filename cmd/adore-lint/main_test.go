package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureDir is the self-contained module the CLI runs over in tests.
var fixtureDir = filepath.Join("testdata", "src")

// runCLI invokes the CLI entry point with captured output.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// normalize strips the absolute fixture-module prefix so goldens are
// machine-independent.
func normalize(t *testing.T, s string) string {
	t.Helper()
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	s = strings.ReplaceAll(s, abs+string(filepath.Separator), "")
	return filepath.ToSlash(s)
}

// checkGolden compares got against the named golden file (regenerate with
// `go test ./cmd/adore-lint -update`).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Errorf("output differs from %s:\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

func TestCLIPlainOutput(t *testing.T) {
	code, out, errOut := runCLI(t, fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	checkGolden(t, "plain.golden", normalize(t, out))
	if !strings.Contains(errOut, "2 issue(s)") {
		t.Errorf("stderr = %q, want issue count", errOut)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	code, out, errOut := runCLI(t, "-json", fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	checkGolden(t, "json.golden", normalize(t, out))
}

func TestCLIPassFilter(t *testing.T) {
	// A pass with nothing to say about the fixture module: clean exit.
	code, out, errOut := runCLI(t, "-pass", "deterministic-model", fixtureDir)
	if code != 0 || out != "" {
		t.Fatalf("filtered run: exit=%d stdout=%q stderr=%q, want clean", code, out, errOut)
	}
	// Selecting exactly the firing pass reproduces the full plain output.
	code, out, _ = runCLI(t, "-pass", "exhaustive-switch", fixtureDir)
	if code != 1 {
		t.Fatalf("exhaustive-only run: exit = %d, want 1", code)
	}
	checkGolden(t, "plain.golden", normalize(t, out))
}

func TestCLIUnknownPass(t *testing.T) {
	code, _, errOut := runCLI(t, "-pass", "no-such-pass", fixtureDir)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown pass") {
		t.Errorf("stderr = %q, want unknown-pass error", errOut)
	}
}
