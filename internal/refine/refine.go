// Package refine is the executable counterpart of the paper's refinement
// proof (§5, Appendix C.1): it runs the SRaft network specification and the
// Adore model in lockstep and checks the simulation relation ℝ after every
// atomic step.
//
// The heart of ℝ is logMatch (Fig. 17): every replica's local log must
// equal the MCaches and RCaches along that replica's active branch of the
// cache tree. The checker realizes the active branch with an explicit
// anchor map — for each replica, the cache corresponding to its last log
// entry — updated exactly as Lemma C.1's proof prescribes:
//
//   - elect / pull:       no log changes, anchors unchanged (toLog ignores
//     the new ECache);
//   - invoke / reconfig:  the leader's anchor advances to the new cache;
//   - commit / push:      every acker adopts the leader's log, so its
//     anchor moves to the push target C_M.
//
// As in the paper's SRaft, commit rounds are atomic: the chosen ackers
// receive and acknowledge the request in one step, and the checker requires
// them to form a quorum (partial replication is modeled as message loss —
// the round simply doesn't happen). Failed elections (non-quorum or refused
// votes) are exercised in full.
package refine

import (
	"fmt"
	"sort"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/raftnet"
	"adore/internal/sraft"
	"adore/internal/types"
)

// Checker holds the two lockstepped systems.
type Checker struct {
	// Net is the SRaft side; Model the Adore side.
	Net   *sraft.Scheduler
	Model *core.State

	// anchors maps each replica to the cache of its last log entry.
	anchors map[types.NodeID]types.CID

	// Steps counts atomic steps executed; Checks counts logMatch
	// evaluations (one per replica per step).
	Steps  int
	Checks int
}

// New builds a lockstep checker over the scheme's initial configuration.
func New(scheme config.Scheme, members types.NodeSet, rules core.Rules) *Checker {
	c := &Checker{
		Net:     sraft.NewScheduler(raftnet.New(scheme, members, rules)),
		Model:   core.NewState(scheme, members, rules),
		anchors: make(map[types.NodeID]types.CID),
	}
	for _, id := range members.Slice() {
		c.anchors[id] = c.Model.Tree.Root().ID
	}
	return c
}

// Elect runs one SRaft election round and the corresponding Adore pull,
// then checks ℝ. The returned flag reports whether nid won.
func (c *Checker) Elect(nid types.NodeID, voters types.NodeSet) (bool, error) {
	before := c.Net.St.Nodes[nid]
	if before == nil {
		return false, fmt.Errorf("refine: unknown candidate %s", nid)
	}
	term := before.Time + 1
	timesBefore := make(map[types.NodeID]types.Time, voters.Len())
	for _, v := range voters.Slice() {
		if s := c.Net.St.Nodes[v]; s != nil {
			timesBefore[v] = s.Time
		}
	}
	won, err := c.Net.AtomicElect(nid, voters)
	if err != nil {
		return false, err
	}
	// Q is the set of voters that GRANTED (advanced their term for this
	// candidacy) — a superset of the counted acks: a vote whose ack
	// arrives after the candidate already won never lands in Votes, but
	// the voter's time moved, which is what the pull oracle records.
	granted := types.NewNodeSet(nid)
	for _, v := range voters.Slice() {
		if s := c.Net.St.Nodes[v]; s != nil && timesBefore[v] < term && s.Time == term {
			granted = granted.Add(v)
		}
	}
	if _, err := c.Model.Pull(nid, core.PullChoice{Q: granted, T: term}); err != nil {
		return false, fmt.Errorf("refine: model rejects pull mirroring election (Q=%s T=%d): %w", granted, term, err)
	}
	return won, c.check()
}

// Invoke appends a method at the leader on both sides and checks ℝ.
func (c *Checker) Invoke(nid types.NodeID, m types.MethodID) error {
	if err := c.Net.Invoke(nid, m); err != nil {
		return err
	}
	cache, err := c.Model.Invoke(nid, m)
	if err != nil {
		return fmt.Errorf("refine: model rejects invoke mirrored from the network: %w", err)
	}
	c.anchors[nid] = cache.ID
	return c.check()
}

// Reconfig appends a configuration change at the leader on both sides and
// checks ℝ. A guard rejection must occur on both sides or neither.
func (c *Checker) Reconfig(nid types.NodeID, ncf config.Config) error {
	netErr := c.Net.Reconfig(nid, ncf)
	cache, modelErr := c.Model.Reconfig(nid, ncf)
	if (netErr == nil) != (modelErr == nil) {
		return fmt.Errorf("refine: guard divergence: net=%v model=%v", netErr, modelErr)
	}
	if netErr != nil {
		return nil // both rejected: a stutter step
	}
	c.anchors[nid] = cache.ID
	return c.check()
}

// Commit runs one atomic commit round to the given ackers (which must form
// a quorum of the leader's current configuration and be willing to accept)
// and the corresponding Adore push, then checks ℝ.
func (c *Checker) Commit(nid types.NodeID, ackers types.NodeSet) error {
	leader := c.Net.St.Nodes[nid]
	if leader == nil || !leader.IsLeader {
		return fmt.Errorf("refine: %s is not a leader", nid)
	}
	target := c.anchors[nid] // the leader's log tip cache = C_M
	cm := c.Model.Tree.Get(target)
	if cm == nil {
		return fmt.Errorf("refine: leader anchor %d missing from the tree", target)
	}
	// The round commits new entries iff C_M is an uncommitted command of
	// this leader; otherwise it is a heartbeat (re-replication) and the
	// model stutters.
	last := c.Model.Tree.LastCommit(nid)
	freshCommit := cm.IsCommand() && cm.Caller == nid && cm.Time == leader.Time &&
		(last == nil || cm.Greater(last))
	upTo := len(leader.Log)
	if _, err := c.Net.AtomicCommit(nid, ackers); err != nil {
		return err
	}
	// Use the acks that actually arrived: unwilling recipients (e.g. at a
	// higher term) silently dropped the request.
	actual := c.Net.St.Nodes[nid].Acks[upTo]
	if !c.Net.St.Nodes[nid].CurrentConfig().IsQuorum(actual) {
		return fmt.Errorf("refine: commit round acks %s are not a quorum; SRaft commit rounds must complete (choose willing ackers)", actual)
	}
	if freshCommit {
		res, err := c.Model.Push(nid, core.PushChoice{Q: actual, CM: target})
		if err != nil {
			return fmt.Errorf("refine: model rejects push mirroring commit (Q=%s CM=%d): %w", actual, target, err)
		}
		if !res.Quorum {
			return fmt.Errorf("refine: commit round ackers %s are not a model quorum", actual)
		}
	} else {
		// Heartbeat: the model stutters, so it cannot record a time bump.
		// Only ackers already at the leader's term are representable
		// (lagging followers catch up through fresh commits or votes).
		for _, id := range actual.Slice() {
			if c.Model.TimeOf(id) != leader.Time {
				return fmt.Errorf("refine: heartbeat to lagging follower %s is not representable as a stutter", id)
			}
		}
	}
	// Every acker adopted the leader's log: anchors move to C_M.
	for _, id := range actual.Slice() {
		c.anchors[id] = target
	}
	return c.check()
}

// check evaluates the refinement relation ℝ: logMatch plus timestamp
// agreement for every replica.
func (c *Checker) check() error {
	c.Steps++
	ids := make([]types.NodeID, 0, len(c.Net.St.Nodes))
	for id := range c.Net.St.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		server := c.Net.St.Nodes[id]
		c.Checks++
		if mt := c.Model.TimeOf(id); mt != server.Time {
			return fmt.Errorf("refine: ℝ broken at %s: model time %d ≠ network term %d", id, mt, server.Time)
		}
		if err := c.logMatch(id, server); err != nil {
			return err
		}
	}
	return nil
}

// logMatch compares a replica's local log with toLog(tree, nid): the
// MCaches and RCaches on the branch from the root to the replica's anchor.
func (c *Checker) logMatch(id types.NodeID, server *raftnet.Server) error {
	anchor, ok := c.anchors[id]
	if !ok {
		anchor = c.Model.Tree.Root().ID
	}
	log := make([]entryView, len(server.Log))
	for i, e := range server.Log {
		v := entryView{
			stamp:  types.Stamp{Time: e.Time, Vrsn: e.Vrsn},
			kind:   core.KindM,
			method: e.Method,
			conf:   e.Conf,
		}
		if e.Kind == raftnet.EntryConfig {
			v.kind = core.KindR
		}
		log[i] = v
	}
	return logMatchEntries(c.Model.Tree, id, anchor, log)
}

// entryView is one replica-log slot abstracted over its source — the SRaft
// network specification (raftnet.Entry) or the executable core's log
// (raftcore.LogEntry, translated by ExecChecker) — so both checkers run
// the same logMatch comparison.
type entryView struct {
	stamp  types.Stamp
	kind   core.Kind // KindM or KindR
	method types.MethodID
	conf   config.Config
}

// matches reports whether a cache realizes this log slot.
func (v entryView) matches(cache *core.Cache) bool {
	if cache.Stamp() != v.stamp || cache.Kind != v.kind {
		return false
	}
	if v.kind == core.KindR {
		return cache.Conf.Equal(v.conf)
	}
	return cache.Method == v.method
}

// branchCommands returns toLog(tree, anchor): the MCaches and RCaches on
// the branch from the root to anchor, root-first.
func branchCommands(tree *core.Tree, anchor types.CID) []*core.Cache {
	path := tree.PathToRoot(anchor)
	// PathToRoot is leaf-first; walk backwards for root-first order.
	var branch []*core.Cache
	for i := len(path) - 1; i >= 0; i-- {
		if path[i].IsCommand() {
			branch = append(branch, path[i])
		}
	}
	return branch
}

// logMatchEntries is the heart of ℝ shared by both checkers: the replica's
// log must equal the command caches along its active branch, slot by slot.
func logMatchEntries(tree *core.Tree, id types.NodeID, anchor types.CID, log []entryView) error {
	branch := branchCommands(tree, anchor)
	if len(branch) != len(log) {
		return fmt.Errorf("refine: logMatch broken at %s: branch has %d commands, log has %d\nbranch tip: %v",
			id, len(branch), len(log), tree.Get(anchor))
	}
	for i, cache := range branch {
		if !log[i].matches(cache) {
			return fmt.Errorf("refine: logMatch broken at %s[%d]: cache %v vs entry stamped %v", id, i, cache, log[i].stamp)
		}
	}
	return nil
}

// Anchor exposes a replica's current anchor (for tests).
func (c *Checker) Anchor(id types.NodeID) types.CID { return c.anchors[id] }
