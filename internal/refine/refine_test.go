package refine

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/invariant"
	"adore/internal/raftnet"
	"adore/internal/types"
)

func newChecker(n types.NodeID) *Checker {
	return New(config.RaftSingleNode, types.Range(1, n), core.DefaultRules())
}

func TestLockstepBasics(t *testing.T) {
	c := newChecker(3)
	won, err := c.Elect(1, types.NewNodeSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("election lost")
	}
	if err := c.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(1, 11); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1, types.NewNodeSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	// Committed views agree across the two systems.
	modelLog := c.Model.CommittedMethods()
	netLog := c.Net.St.CommittedMethods(1)
	if len(modelLog) != 2 || len(netLog) != 2 {
		t.Fatalf("model=%v net=%v", modelLog, netLog)
	}
}

func TestLockstepFailedElection(t *testing.T) {
	c := newChecker(3)
	won, err := c.Elect(1, types.NewNodeSet(1))
	if err != nil {
		t.Fatal(err)
	}
	if won {
		t.Fatal("minority election won")
	}
	// The candidate bumped its term on both sides.
	if c.Model.TimeOf(1) != 1 || c.Net.St.Nodes[1].Time != 1 {
		t.Error("times diverged after failed election")
	}
}

func TestLockstepCompetingLeaders(t *testing.T) {
	c := newChecker(3)
	if _, err := c.Elect(1, types.NewNodeSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	// S2 wins the next term; S1's uncommitted method is abandoned.
	if _, err := c.Elect(2, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(2, types.NewNodeSet(2, 3)); err != nil {
		t.Fatal(err)
	}
	got := c.Model.CommittedMethods()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("committed = %v, want [M2]", got)
	}
}

func TestLockstepReconfigAndGuards(t *testing.T) {
	c := newChecker(3)
	if _, err := c.Elect(1, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	// Guard divergence check: R3 must reject on both sides.
	if err := c.Reconfig(1, config.NewMajorityConfig(types.Range(1, 4))); err != nil {
		t.Fatal(err) // both reject → nil (stutter)
	}
	if len(c.Model.Tree.RCaches()) != 0 {
		t.Fatal("model accepted a reconfig the network rejected")
	}
	if err := c.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfig(1, config.NewMajorityConfig(types.Range(1, 4))); err != nil {
		t.Fatal(err)
	}
	if len(c.Model.Tree.RCaches()) != 1 {
		t.Fatal("reconfig not mirrored")
	}
	if err := c.Commit(1, types.NewNodeSet(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// The fresh member catches up via a fresh commit.
	if err := c.Invoke(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1, types.NewNodeSet(1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Net.St.Nodes[4].Log); got != 3 {
		t.Errorf("S4 log length = %d, want 3", got)
	}
}

func TestLockstepHeartbeat(t *testing.T) {
	c := newChecker(3)
	if _, err := c.Elect(1, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	// Commit with {1,2}; S3 is behind in log but at the leader's term
	// (it voted), so a heartbeat round may include it.
	if err := c.Commit(1, types.NewNodeSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(1, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Net.St.Nodes[3].Log); got != 1 {
		t.Errorf("heartbeat did not replicate to S3: log=%d", got)
	}
}

// TestLemmaC1RandomLockstep is the executable Lemma C.1: random SRaft
// schedules, with ℝ checked after every atomic step, across all shipped
// schemes.
func TestLemmaC1RandomLockstep(t *testing.T) {
	for _, scheme := range config.AllSchemes() {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 12; seed++ {
				c := New(scheme, types.Range(1, 4), core.DefaultRules())
				if err := driveRandom(c, seed, 50); err != nil {
					t.Fatalf("seed %d: %v\nmodel tree:\n%s\nnet:\n%s",
						seed, err, c.Model.Tree.Render(), c.Net.St)
				}
				// The mirrored model state must satisfy all invariants.
				if vs := invariant.CheckAll(c.Model); len(vs) != 0 {
					t.Fatalf("seed %d: model invariant violations: %v", seed, vs)
				}
			}
		})
	}
}

// driveRandom issues random elections, invokes, reconfigs, and quorum
// commits through the checker. It returns the first refinement failure.
func driveRandom(c *Checker, seed int64, steps int) error {
	r := rand.New(rand.NewSource(seed))
	method := types.MethodID(1)
	for i := 0; i < steps; i++ {
		// Pick a random node; decide what it attempts.
		ids := nodeIDs(c)
		nid := ids[r.Intn(len(ids))]
		s := c.Net.St.Nodes[nid]
		switch r.Intn(4) {
		case 0: // election with a random voter set
			if len(s.Log) == 0 && !c.Net.St.Conf0.Members().Contains(nid) {
				continue // a knowledge-free candidate has no model image
			}
			voters := randomSubsetWith(r, c.Net.St.Nodes[nid].CurrentConfig().Members(), nid)
			if _, err := c.Elect(nid, voters); err != nil {
				if strings.Contains(err.Error(), "model rejects") || strings.Contains(err.Error(), "ℝ broken") ||
					strings.Contains(err.Error(), "logMatch") {
					return err
				}
				continue // network-side rejection (not a leader, etc.)
			}
		case 1: // invoke
			if !s.IsLeader {
				continue
			}
			if err := c.Invoke(nid, method); err != nil {
				return err
			}
			method++
		case 2: // reconfig
			if !s.IsLeader {
				continue
			}
			succs := c.Net.St.Scheme.Successors(s.CurrentConfig(), types.Range(1, 5))
			if len(succs) == 0 {
				continue
			}
			if err := c.Reconfig(nid, succs[r.Intn(len(succs))]); err != nil {
				return err
			}
		case 3: // quorum commit with willing ackers
			if !s.IsLeader {
				continue
			}
			ackers := willingAckers(c, s)
			if ackers.IsEmpty() || !s.CurrentConfig().IsQuorum(ackers) {
				continue
			}
			// Heartbeats to lagging followers are not representable;
			// only commit fresh entries (see package doc).
			anchor := c.Model.Tree.Get(c.Anchor(nid))
			last := c.Model.Tree.LastCommit(nid)
			fresh := anchor != nil && anchor.IsCommand() && anchor.Caller == nid &&
				anchor.Time == s.Time && (last == nil || anchor.Greater(last))
			if !fresh {
				// Heartbeat: restrict to same-term ackers.
				ackers = sameTermAckers(c, s)
				if !s.CurrentConfig().IsQuorum(ackers) {
					continue
				}
			}
			if err := c.Commit(nid, ackers); err != nil {
				return err
			}
		}
	}
	return nil
}

func nodeIDs(c *Checker) []types.NodeID {
	var ids []types.NodeID
	for id := range c.Net.St.Nodes {
		ids = append(ids, id)
	}
	// Deterministic order for reproducibility.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func randomSubsetWith(r *rand.Rand, members types.NodeSet, must types.NodeID) types.NodeSet {
	out := types.NewNodeSet(must)
	for _, id := range members.Slice() {
		if r.Intn(2) == 0 {
			out = out.Add(id)
		}
	}
	return out
}

// willingAckers returns the members of the leader's configuration whose
// term does not exceed the leader's (they would accept a commit request).
func willingAckers(c *Checker, s *raftnet.Server) types.NodeSet {
	out := types.NewNodeSet(s.ID)
	for _, id := range s.CurrentConfig().Members().Slice() {
		if other, ok := c.Net.St.Nodes[id]; !ok || other.Time <= s.Time {
			out = out.Add(id)
		}
	}
	return out
}

// sameTermAckers returns the configuration members already at the leader's
// term (safe recipients for heartbeat rounds).
func sameTermAckers(c *Checker, s *raftnet.Server) types.NodeSet {
	out := types.NewNodeSet(s.ID)
	for _, id := range s.CurrentConfig().Members().Slice() {
		if other, ok := c.Net.St.Nodes[id]; ok && other.Time == s.Time {
			out = out.Add(id)
		}
	}
	return out
}
