package refine

import (
	"strings"
	"testing"

	"adore/internal/raft/raftcore"
	"adore/internal/types"
)

func cmd(term types.Time, payload string) raftcore.LogEntry {
	return raftcore.LogEntry{Term: term, Kind: raftcore.EntryCommand, Command: []byte(payload)}
}

func noop(term types.Time) raftcore.LogEntry {
	return raftcore.LogEntry{Term: term, Kind: raftcore.EntryNoOp}
}

func cfg(term types.Time, members ...types.NodeID) raftcore.LogEntry {
	return raftcore.LogEntry{Term: term, Kind: raftcore.EntryConfig, Members: members}
}

func TestExecCheckerSharedPrefixSharesBranch(t *testing.T) {
	e := NewExec(types.NewNodeSet(1, 2, 3))
	common := []raftcore.LogEntry{noop(1), cmd(1, "a"), cfg(1, 1, 2, 3, 4)}
	if err := e.ObserveNode(1, append(common[:3:3], cmd(2, "b")), 3); err != nil {
		t.Fatalf("observe S1: %v", err)
	}
	if err := e.ObserveNode(2, common, 3); err != nil {
		t.Fatalf("observe S2: %v", err)
	}
	// S2's log is a prefix of S1's: its anchor must be an ancestor.
	if !e.Tree.OnSameBranch(e.ExecAnchor(1), e.ExecAnchor(2)) {
		t.Fatal("shared log prefix mapped to different branches")
	}
	// Root + 4 distinct entries: dedup collapsed the common prefix.
	if e.Tree.Len() != 5 {
		t.Fatalf("tree has %d caches, want 5\n%s", e.Tree.Len(), e.Tree.Render())
	}
}

func TestExecCheckerTruncatedSuffixBecomesDeadBranch(t *testing.T) {
	e := NewExec(types.NewNodeSet(1, 2, 3))
	// First observation: an uncommitted tail from a deposed leader.
	if err := e.ObserveNode(1, []raftcore.LogEntry{noop(1), cmd(1, "lost")}, 1); err != nil {
		t.Fatalf("observe before truncation: %v", err)
	}
	// The new leader overwrote index 2; the old cache stays as a sibling.
	if err := e.ObserveNode(1, []raftcore.LogEntry{noop(1), noop(2), cmd(2, "kept")}, 3); err != nil {
		t.Fatalf("observe after truncation: %v", err)
	}
	if err := e.ObserveNode(2, []raftcore.LogEntry{noop(1), noop(2), cmd(2, "kept")}, 3); err != nil {
		t.Fatalf("observe follower: %v", err)
	}
	if got := e.CommittedTip(); got.Stamp() != (types.Stamp{Time: 2, Vrsn: 3}) {
		t.Fatalf("committed tip %v, want stamp 2.3", got)
	}
}

func TestExecCheckerCatchesCommittedDivergence(t *testing.T) {
	e := NewExec(types.NewNodeSet(1, 2, 3))
	if err := e.ObserveNode(1, []raftcore.LogEntry{cmd(1, "a")}, 1); err != nil {
		t.Fatalf("observe S1: %v", err)
	}
	err := e.ObserveNode(2, []raftcore.LogEntry{cmd(2, "b")}, 1)
	if err == nil {
		t.Fatalf("divergent committed entries accepted\n%s", e.Tree.Render())
	}
	if !strings.Contains(err.Error(), "committed branches diverge") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestExecCheckerCatchesTermRegression(t *testing.T) {
	e := NewExec(types.NewNodeSet(1, 2, 3))
	err := e.ObserveNode(1, []raftcore.LogEntry{noop(2), cmd(1, "x")}, 0)
	if err == nil || !strings.Contains(err.Error(), "term regresses") {
		t.Fatalf("term regression not caught: %v", err)
	}
}

func TestExecCheckerConfigEntriesCompareByMembership(t *testing.T) {
	e := NewExec(types.NewNodeSet(1, 2, 3))
	if err := e.ObserveNode(1, []raftcore.LogEntry{cfg(1, 1, 2)}, 1); err != nil {
		t.Fatalf("observe S1: %v", err)
	}
	// Same stamp, different membership: a different cache, hence a fork of
	// the committed branch.
	if err := e.ObserveNode(2, []raftcore.LogEntry{cfg(1, 2, 3)}, 1); err == nil {
		t.Fatal("conflicting config entries at one stamp accepted")
	}
}
