package refine

// This file is the executable half of the refinement story: where
// Checker locksteps the SRaft *specification* against the Adore model,
// ExecChecker checks the *implementation* — the sans-IO raftcore driven by
// the deterministic simulator — against the same cache-tree abstraction.
//
// The mapping is the one Appendix C.1 induces on states: a log entry at
// index i of term t is the command cache stamped (Time=t, Vrsn=i); a
// replica's whole log is the branch from the root to its last entry's
// cache. ExecChecker rebuilds the cache tree from the logs it is shown —
// entries with equal stamps and payloads are the same cache, so replicas
// sharing a prefix share a branch, and a truncated-away suffix survives as
// a dead sibling branch, exactly as uncommitted caches do in the model.
// Against that tree it checks the two halves of ℝ that are meaningful for
// observed executions:
//
//   - logMatch: each replica's log equals toLog(tree, anchor) along its
//     branch (term-monotone, version = index);
//   - committed-branch agreement: every replica's committed prefix lies on
//     ONE branch of the tree — the global committed tip only ever extends.
//     This is the paper's Theorem 4.1 as seen through logMatch: with R2
//     disabled, the Fig. 4 schedule makes two leaders commit different
//     caches at the same stamp depth on sibling branches, and the check
//     fails.

import (
	"fmt"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/raft/raftcore"
	"adore/internal/types"
)

// ExecChecker maps executable raftcore logs onto an Adore cache tree and
// checks the observable refinement relation after every observation.
type ExecChecker struct {
	// Tree is the reconstructed cache tree (exported for rendering in
	// violation reports).
	Tree *core.Tree

	// anchors maps each replica to the cache of its last observed log
	// entry; commits to the cache at its observed commit index.
	anchors map[types.NodeID]types.CID
	commits map[types.NodeID]types.CID

	// committedTip is the deepest committed cache seen across all
	// replicas and all observations; tipOwner reported it.
	committedTip types.CID
	tipOwner     types.NodeID

	// methods interns command payloads as model MethodIDs.
	methods map[string]types.MethodID

	// Checks counts ObserveNode calls (logMatch evaluations).
	Checks int
}

// NewExec builds an executable-refinement checker for a cluster whose
// initial configuration is a majority quorum over members.
func NewExec(members types.NodeSet) *ExecChecker {
	t := core.NewTree(config.NewMajorityConfig(members))
	return &ExecChecker{
		Tree:         t,
		anchors:      make(map[types.NodeID]types.CID),
		commits:      make(map[types.NodeID]types.CID),
		committedTip: t.Root().ID,
		tipOwner:     types.NoNode,
		methods:      make(map[string]types.MethodID),
	}
}

// intern returns a stable MethodID for a command payload.
func (e *ExecChecker) intern(key string) types.MethodID {
	if m, ok := e.methods[key]; ok {
		return m
	}
	m := types.MethodID(len(e.methods) + 1)
	e.methods[key] = m
	return m
}

// view translates one raftcore log entry (at 1-based index idx) into the
// abstract log slot the shared logMatch comparison consumes.
func (e *ExecChecker) view(le raftcore.LogEntry, idx int) entryView {
	v := entryView{stamp: types.Stamp{Time: le.Term, Vrsn: types.Vrsn(idx)}}
	switch le.Kind {
	case raftcore.EntryConfig:
		v.kind = core.KindR
		v.conf = config.NewMajorityConfig(types.NewNodeSet(le.Members...))
	case raftcore.EntryNoOp:
		v.kind = core.KindM
		v.method = e.intern("\x00noop")
	default:
		v.kind = core.KindM
		v.method = e.intern(string(le.Command))
	}
	return v
}

// ObserveNode ingests one replica's current log (entries 1..len(log), no
// sentinel) and commit index, extends the cache tree with any new
// branches, and checks ℝ. It returns the first violation found:
// non-monotone terms within the log, a logMatch mismatch against the
// reconstructed branch, or a committed prefix that leaves the committed
// branch. Call it for every replica after each round of a simulated run;
// a nil error means the observed execution still refines Adore.
func (e *ExecChecker) ObserveNode(id types.NodeID, log []raftcore.LogEntry, commitIndex int) error {
	return e.ObserveNodeAt(id, 0, 0, log, commitIndex)
}

// ObserveNodeAt is ObserveNode for a compacted replica: log holds only the
// retained suffix (absolute indices base+1..base+len(log)) and the prefix
// [1, base] is summarized by the snapshot fingerprint (base, baseTerm).
//
// The refinement obligation restated over a compacted base: a snapshot is
// only ever taken of a COMMITTED prefix, so its fingerprint must name the
// cache at depth base on the committed branch of the reconstructed tree —
// the stamp (Time=baseTerm, Vrsn=base) identifies that cache exactly. The
// suffix then has to satisfy logMatch against the branch below it, and
// commitment agreement is checked as before (Theorem 4.1 survives
// compaction because the discarded prefix is pinned by the fingerprint).
//
// Limitation: if no observation ever showed the committed prefix down to
// depth base (the checker joined after compaction), the base cannot be
// anchored and the observation is skipped rather than failed.
func (e *ExecChecker) ObserveNodeAt(id types.NodeID, base int, baseTerm types.Time, log []raftcore.LogEntry, commitIndex int) error {
	e.Checks++
	if commitIndex < base || commitIndex > base+len(log) {
		return fmt.Errorf("refine: exec %s: commit index %d outside [%d, %d]", id, commitIndex, base, base+len(log))
	}

	// Anchor the snapshot base on the committed branch. Every snapshot
	// summarizes a committed prefix, and committed caches all lie on one
	// branch, so the cache at depth base on the committed tip's path IS
	// the base — if its stamp disagrees with the snapshot fingerprint,
	// the compaction broke refinement.
	baseCID := e.Tree.Root().ID
	if base > 0 {
		tip := e.Tree.Get(e.committedTip)
		if e.Tree.Depth(e.committedTip) < base {
			return nil // prefix never observed: nothing to anchor against
		}
		cur := e.committedTip
		for e.Tree.Depth(cur) > base {
			cur = e.Tree.Get(cur).Parent
		}
		bc := e.Tree.Get(cur)
		if bc.Time != baseTerm || bc.Vrsn != types.Vrsn(base) {
			return fmt.Errorf(
				"refine: exec %s: snapshot base (idx=%d term=%d) does not name the committed cache %v (tip %v)",
				id, base, baseTerm, bc, tip)
		}
		baseCID = cur
	}

	// Walk the suffix down from the base cache, reusing matching children
	// (shared prefixes collapse onto one branch) and adding leaves for new
	// entries.
	views := make([]entryView, len(log))
	cids := make([]types.CID, len(log))
	parent := baseCID
	curConf := e.Tree.Get(baseCID).Conf // the branch's config, inherited by MCaches
	prevTerm := baseTerm
	for i, le := range log {
		if le.Term < prevTerm {
			return fmt.Errorf("refine: exec %s: term regresses %d -> %d at index %d", id, prevTerm, le.Term, base+i+1)
		}
		prevTerm = le.Term
		v := e.view(le, base+i+1)
		views[i] = v
		cid := types.NoCID
		for _, child := range e.Tree.Children(parent) {
			if v.matches(e.Tree.Get(child)) {
				cid = child
				break
			}
		}
		if cid == types.NoCID {
			conf := v.conf // RCaches carry their NEW config
			if v.kind == core.KindM {
				conf = curConf
			}
			added := e.Tree.AddLeaf(parent, core.Cache{
				Kind:   v.kind,
				Caller: types.NoNode,
				Time:   v.stamp.Time,
				Vrsn:   v.stamp.Vrsn,
				Method: v.method,
				Conf:   conf,
			})
			cid = added.ID
		}
		cids[i] = cid
		parent = cid
		curConf = e.Tree.Get(cid).Conf
	}
	anchor := baseCID
	if len(cids) > 0 {
		anchor = cids[len(cids)-1]
	}
	e.anchors[id] = anchor

	// logMatch over the suffix: the replica's retained log must equal
	// toLog(tree, anchor) below the snapshot base.
	if err := logMatchSuffix(e.Tree, id, anchor, base, views); err != nil {
		return err
	}

	// Committed-branch agreement: this replica's committed cache must sit
	// on the same branch as the deepest committed cache any replica has
	// shown us — committed histories never fork.
	cc := baseCID
	if commitIndex > base {
		cc = cids[commitIndex-base-1]
	}
	e.commits[id] = cc
	if !e.Tree.OnSameBranch(cc, e.committedTip) {
		return fmt.Errorf(
			"refine: committed branches diverge: %s committed %v but %s had committed %v on a different branch",
			id, e.Tree.Get(cc), e.tipOwner, e.Tree.Get(e.committedTip))
	}
	if e.Tree.Depth(cc) > e.Tree.Depth(e.committedTip) {
		e.committedTip, e.tipOwner = cc, id
	}
	return nil
}

// logMatchSuffix checks logMatch for the retained suffix of a compacted
// log: the branch from the root to anchor must be exactly base commands
// longer than the suffix, and the part below the base must match it
// entry for entry. With base 0 this is plain logMatch.
func logMatchSuffix(tree *core.Tree, id types.NodeID, anchor types.CID, base int, log []entryView) error {
	branch := branchCommands(tree, anchor)
	if len(branch) != base+len(log) {
		return fmt.Errorf("refine: logMatch broken at %s: branch has %d commands, snapshot base %d + suffix %d\nbranch tip: %v",
			id, len(branch), base, len(log), tree.Get(anchor))
	}
	for i, cache := range branch[base:] {
		if !log[i].matches(cache) {
			return fmt.Errorf("refine: logMatch broken at %s[%d]: cache %v vs entry stamped %v", id, base+i, cache, log[i].stamp)
		}
	}
	return nil
}

// CommittedTip returns the deepest committed cache observed so far.
func (e *ExecChecker) CommittedTip() *core.Cache { return e.Tree.Get(e.committedTip) }

// ExecAnchor exposes a replica's current anchor (for tests).
func (e *ExecChecker) ExecAnchor(id types.NodeID) types.CID { return e.anchors[id] }
