package core

import (
	"math/rand"

	"adore/internal/config"
	"adore/internal/types"
)

// Oracle draws random valid oracle outcomes for simulation. It plays the
// role of the paper's nondeterministic 𝕆 = (𝕆_pull, 𝕆_push): given a state
// it either produces a choice some valid oracle could return, or reports
// failure (the Fail outcome / NoOp rules).
//
// The oracle is deterministic for a fixed seed; it never touches global
// randomness.
type Oracle struct {
	rng *rand.Rand
}

// NewOracle builds an oracle seeded with seed.
func NewOracle(seed int64) *Oracle {
	return &Oracle{rng: rand.New(rand.NewSource(seed))}
}

// PullChoice draws a random valid pull choice for nid, or ok=false if none
// exists (or the oracle "decides" to fail, with probability failP).
func (o *Oracle) PullChoice(s *State, nid types.NodeID, failP float64) (PullChoice, bool) {
	if o.rng.Float64() < failP {
		return PullChoice{}, false
	}
	choices := EnumeratePulls(s, nid, false)
	if len(choices) == 0 {
		return PullChoice{}, false
	}
	return choices[o.rng.Intn(len(choices))], true
}

// PushChoice draws a random valid push choice for nid, or ok=false.
func (o *Oracle) PushChoice(s *State, nid types.NodeID, failP float64) (PushChoice, bool) {
	if o.rng.Float64() < failP {
		return PushChoice{}, false
	}
	choices := EnumeratePushes(s, nid, false)
	if len(choices) == 0 {
		return PushChoice{}, false
	}
	return choices[o.rng.Intn(len(choices))], true
}

// ReconfigTarget draws a random configuration the scheme permits from nid's
// active configuration, or ok=false.
func (o *Oracle) ReconfigTarget(s *State, nid types.NodeID) (config.Config, bool) {
	ca := s.Tree.ActiveCache(nid)
	if ca == nil {
		return nil, false
	}
	succs := s.Scheme.Successors(s.ConfAt(ca), s.Universe())
	if len(succs) == 0 {
		return nil, false
	}
	return succs[o.rng.Intn(len(succs))], true
}

// Intn exposes the oracle's random stream for callers scripting mixed
// workloads.
func (o *Oracle) Intn(n int) int { return o.rng.Intn(n) }

// EnumeratePulls lists every valid pull choice for nid in state s. When
// quorumOnly is true, choices whose supporter set is not a quorum (which
// only advance the time map) are omitted.
//
// Timestamps are canonicalized: for each supporter set the enumeration
// offers max(times over Q)+1 and, if different, MaxTime+1. Larger gaps
// produce states that differ only in unused timestamp slack, so this
// preserves the reachable tree shapes the safety analysis cares about.
func EnumeratePulls(s *State, nid types.NodeID, quorumOnly bool) []PullChoice {
	return EnumeratePullsOpt(s, nid, quorumOnly, false)
}

// EnumeratePullsOpt is EnumeratePulls with an additional reduction: when
// minimalTimes is true only the smallest admissible timestamp is offered
// per supporter set, shrinking the search frontier (a sound reduction for
// violation hunting, where known counterexample schedules use minimal
// timestamps).
func EnumeratePullsOpt(s *State, nid types.NodeID, quorumOnly, minimalTimes bool) []PullChoice {
	var out []PullChoice
	universe := s.Universe()
	globalNext := s.MaxTime() + 1
	universe.SubsetsContaining(nid, func(q types.NodeSet) bool {
		cmax := s.Tree.MostRecent(q)
		if cmax == nil {
			return true
		}
		conf := s.ConfAt(cmax)
		if !validSupp(nid, q, conf) {
			return true
		}
		var localMax types.Time
		for _, id := range q.Slice() {
			if s.Times[id] > localMax {
				localMax = s.Times[id]
			}
		}
		if quorumOnly && !conf.IsQuorum(q) {
			return true
		}
		out = append(out, PullChoice{Q: q, T: localMax + 1})
		if !minimalTimes && globalNext > localMax+1 {
			out = append(out, PullChoice{Q: q, T: globalNext})
		}
		return true
	})
	return out
}

// EnumeratePushes lists every valid push choice for nid in state s. When
// quorumOnly is true, non-quorum choices are omitted.
func EnumeratePushes(s *State, nid types.NodeID, quorumOnly bool) []PushChoice {
	var out []PushChoice
	last := s.Tree.LastCommit(nid)
	for _, cm := range s.Tree.All() {
		if !cm.IsCommand() || cm.Caller != nid {
			continue
		}
		if !s.IsLeader(nid, cm.Time) {
			continue
		}
		if last != nil && !cm.Greater(last) {
			continue
		}
		conf := s.ConfAt(cm)
		conf.Members().Subsets(func(q types.NodeSet) bool {
			if !q.Contains(nid) {
				return true
			}
			for _, id := range q.Slice() {
				if s.Times[id] > cm.Time {
					return true
				}
			}
			if quorumOnly && !conf.IsQuorum(q) {
				return true
			}
			out = append(out, PushChoice{Q: q, CM: cm.ID})
			return true
		})
	}
	return out
}

// EnumerateReconfigs lists every configuration reconfig would accept for
// nid under the enabled rules, drawing candidates from the scheme's
// Successors over the state's universe.
func EnumerateReconfigs(s *State, nid types.NodeID) []config.Config {
	if !s.Rules.AllowReconfig {
		return nil
	}
	ca := s.Tree.ActiveCache(nid)
	if ca == nil {
		return nil
	}
	var out []config.Config
	for _, ncf := range s.Scheme.Successors(s.ConfAt(ca), s.Universe()) {
		if s.CanReconf(nid, ncf) == nil {
			out = append(out, ncf)
		}
	}
	return out
}
