package core

import (
	"errors"

	"adore/internal/config"
	"adore/internal/types"
)

// This file implements the §8 "Alternative Reconfiguration Algorithms"
// extension the paper sketches: Lamport et al.'s reconfiguration-by-
// committed-command, where — unlike the hot algorithms Adore targets —
//
//  1. a new configuration takes effect only once its RCache is COMMITTED
//     (descendants keep using the previous committed configuration until
//     then), and
//  2. a leader may not extend an active branch that already carries α
//     uncommitted caches (the pipeline bound that lets instance i+α
//     proceed while i commits).
//
// The paper: "The first required change is to wait until a configuration
// is committed to begin using it... The other is to block new methods from
// being invoked on an active branch that has α uncommitted caches."
//
// Enable with Rules.DeferredConfig / Rules.Alpha (see DeferredRules).

// ErrAlphaBlocked rejects invoke/reconfig on a branch whose uncommitted
// suffix has reached the α bound.
var ErrAlphaBlocked = errors.New("core: active branch has α uncommitted caches; commit first")

// DeferredRules configures the Lamport-style algorithm: configurations
// activate on commit and the uncommitted pipeline is bounded by alpha
// (alpha ≤ 0 means unbounded). R3 is unnecessary in this mode — the
// circularity it breaks cannot arise when uncommitted configurations are
// inert — but R1⁺ and R2 are kept.
func DeferredRules(alpha int) Rules {
	return Rules{
		AllowReconfig:  true,
		R1:             true,
		R2:             true,
		DeferredConfig: true,
		Alpha:          alpha,
	}
}

// ConfAt returns the configuration in effect at cache c. In the default
// (hot) mode this is simply c.Conf — an RCache's new configuration applies
// the moment it enters the tree and is inherited by its descendants. In
// deferred mode it is the configuration of the deepest COMMITTED RCache on
// the branch from the root to c (an RCache is committed here when a CCache
// lies below it on this same branch), falling back to conf₀.
func (s *State) ConfAt(c *Cache) config.Config {
	if !s.Rules.DeferredConfig {
		return c.Conf
	}
	// PathToRoot is leaf-first: remember whether we have already passed a
	// CCache on the way up; the first RCache encountered after that is
	// the deepest committed one.
	sawCommit := false
	for _, anc := range s.Tree.PathToRoot(c.ID) {
		switch anc.Kind {
		case KindC:
			sawCommit = true
		case KindR:
			if sawCommit {
				return anc.Conf
			}
		case KindE, KindM:
			// Neither commits nor carries a configuration change.
		}
	}
	return s.Tree.Root().Conf
}

// uncommittedSuffixLen counts the caches on the branch from the root to c
// that come after the last CCache (the "uncommitted caches" of the α rule).
// ECaches do not count: they are metadata, not pipeline slots.
func (s *State) uncommittedSuffixLen(c *Cache) int {
	n := 0
	for _, anc := range s.Tree.PathToRoot(c.ID) {
		if anc.Kind == KindC {
			break
		}
		if anc.IsCommand() {
			n++
		}
	}
	return n
}

// alphaAllows reports whether the α bound permits extending the branch at
// the active cache ca.
func (s *State) alphaAllows(ca *Cache) bool {
	if s.Rules.Alpha <= 0 {
		return true
	}
	return s.uncommittedSuffixLen(ca) < s.Rules.Alpha
}

// CanInvoke reports whether an Invoke by nid would currently succeed
// (leadership and, in deferred mode, the α bound). The model explorer uses
// it to enumerate enabled transitions.
func (s *State) CanInvoke(nid types.NodeID) error {
	ca, err := s.requireActiveLeader(nid)
	if err != nil {
		return err
	}
	if !s.alphaAllows(ca) {
		return ErrAlphaBlocked
	}
	return nil
}
