package core

import (
	"fmt"
	"sort"
	"strings"

	"adore/internal/config"
	"adore/internal/types"
)

// Rules selects which of the reconfiguration guards R1⁺/R2/R3 (§2.3, §3) an
// instance of the model enforces. The paper's safe model uses all three;
// disabling R3 reproduces the published Raft single-server bug (Fig. 4),
// and disabling reconfiguration entirely yields the CADO model.
type Rules struct {
	// AllowReconfig enables the reconfig operation at all. False gives
	// the CADO model (Adore with the blue boxes removed).
	AllowReconfig bool

	// R1 enforces R1⁺(conf(C_A), ncf): the scheme's compatibility
	// relation between consecutive configurations.
	R1 bool

	// R2 enforces that the active branch contains no uncommitted
	// RCaches.
	R2 bool

	// R3 enforces that the active branch contains a CCache with the
	// leader's current timestamp (Ongaro's fix).
	R3 bool

	// StopTheWorld enables the §8 variant: committing an RCache prunes
	// every branch not on the committed path, modeling a log copy to a
	// fresh cluster.
	StopTheWorld bool

	// DeferredConfig enables the §8 Lamport-style variant: a new
	// configuration takes effect only once committed (see ConfAt).
	DeferredConfig bool

	// Alpha bounds the uncommitted command pipeline per branch in
	// deferred mode (≤ 0 = unbounded). See DeferredRules.
	Alpha int
}

// DefaultRules is the paper's safe configuration: hot reconfiguration with
// all three guards.
func DefaultRules() Rules {
	return Rules{AllowReconfig: true, R1: true, R2: true, R3: true}
}

// StaticRules disables reconfiguration (the CADO model).
func StaticRules() Rules { return Rules{} }

// WithoutR3 is DefaultRules minus R3 — the published buggy algorithm.
func WithoutR3() Rules {
	r := DefaultRules()
	r.R3 = false
	return r
}

// WithoutR2 is DefaultRules minus R2.
func WithoutR2() Rules {
	r := DefaultRules()
	r.R2 = false
	return r
}

// WithoutR1 is DefaultRules minus R1⁺ (any configuration may follow any
// other).
func WithoutR1() Rules {
	r := DefaultRules()
	r.R1 = false
	return r
}

// State is Σ_Adore (Fig. 6): the cache tree plus the largest timestamp each
// replica has observed. Scheme and Rules are the constant parameters of the
// instance; they travel with the state for convenience but never change
// across transitions.
type State struct {
	Tree   *Tree
	Times  map[types.NodeID]types.Time
	Scheme config.Scheme
	Rules  Rules
}

// NewState builds the initial state: a root-only tree under the scheme's
// initial configuration over members, with all observed times at zero.
func NewState(scheme config.Scheme, members types.NodeSet, rules Rules) *State {
	return &State{
		Tree:   NewTree(scheme.Initial(members)),
		Times:  make(map[types.NodeID]types.Time),
		Scheme: scheme,
		Rules:  rules,
	}
}

// TimeOf returns times(st)[nid] (zero if the replica has observed nothing).
func (s *State) TimeOf(nid types.NodeID) types.Time { return s.Times[nid] }

// IsLeader reports isLeader(st, nid, t): nid's observed time equals t, i.e.
// nid has not been preempted by a newer election.
func (s *State) IsLeader(nid types.NodeID, t types.Time) bool { return s.Times[nid] == t }

// setTimes applies setTimes(st, Q, t): records that every member of Q has
// observed t.
func (s *State) setTimes(q types.NodeSet, t types.Time) {
	for _, id := range q.Slice() {
		s.Times[id] = t
	}
}

// Clone returns a deep copy sharing only immutable values.
func (s *State) Clone() *State {
	times := make(map[types.NodeID]types.Time, len(s.Times))
	for k, v := range s.Times {
		times[k] = v
	}
	return &State{Tree: s.Tree.Clone(), Times: times, Scheme: s.Scheme, Rules: s.Rules}
}

// Key returns a canonical signature of the state (tree key plus sorted
// non-zero observed times) for explorer deduplication.
func (s *State) Key() string {
	ids := make([]types.NodeID, 0, len(s.Times))
	for id, t := range s.Times {
		if t != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	b.WriteString(s.Tree.Key())
	b.WriteByte('|')
	for _, id := range ids {
		fmt.Fprintf(&b, "%d=%d;", id, s.Times[id])
	}
	return b.String()
}

// Universe returns every node ID mentioned by any configuration or
// supporter set in the tree plus any node with a recorded time. It bounds
// the explorer's quorum enumeration.
func (s *State) Universe() types.NodeSet {
	u := types.NodeSet{}
	for _, c := range s.Tree.All() {
		u = u.Union(c.Conf.Members()).Union(c.Supporters())
	}
	for id := range s.Times {
		u = u.Add(id)
	}
	return u
}

// MaxTime returns the largest timestamp appearing anywhere in the state.
func (s *State) MaxTime() types.Time {
	var max types.Time
	for _, t := range s.Times {
		if t > max {
			max = t
		}
	}
	for _, c := range s.Tree.All() {
		if c.Time > max {
			max = c.Time
		}
	}
	return max
}
