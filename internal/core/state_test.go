package core

import (
	"testing"

	"adore/internal/config"
	"adore/internal/types"
)

func TestStateCloneIndependence(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	c := s.Clone()
	mustInvoke(t, s, 1, 1)
	if c.Tree.Len() == s.Tree.Len() {
		t.Error("clone tree shares storage with original")
	}
	c.Times[3] = 9
	if s.Times[3] == 9 {
		t.Error("clone times share storage with original")
	}
	if c.Key() == s.Key() {
		t.Error("diverged states share a key")
	}
}

func TestStateKeyIgnoresZeroTimes(t *testing.T) {
	a := newTestState(DefaultRules())
	b := newTestState(DefaultRules())
	b.Times[2] = 0 // explicitly recorded zero must not perturb the key
	if a.Key() != b.Key() {
		t.Error("zero-valued time entry changed the state key")
	}
}

func TestUniverseGrowsWithConfigs(t *testing.T) {
	s := newTestState(DefaultRules())
	if !s.Universe().Equal(types.Range(1, 3)) {
		t.Errorf("initial universe = %v", s.Universe())
	}
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 1)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
	if _, err := s.Reconfig(1, config.NewMajorityConfig(types.Range(1, 4))); err != nil {
		t.Fatal(err)
	}
	if !s.Universe().Contains(4) {
		t.Error("universe must include nodes from proposed configurations")
	}
}

func TestMaxTime(t *testing.T) {
	s := newTestState(DefaultRules())
	if s.MaxTime() != 0 {
		t.Errorf("initial MaxTime = %d", s.MaxTime())
	}
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 7)
	if s.MaxTime() != 7 {
		t.Errorf("MaxTime = %d, want 7", s.MaxTime())
	}
}

func TestOracleDeterministicBySeed(t *testing.T) {
	run := func(seed int64) string {
		s := newTestState(DefaultRules())
		o := NewOracle(seed)
		for i := 0; i < 30; i++ {
			nid := types.NodeID(o.Intn(3) + 1)
			switch o.Intn(3) {
			case 0:
				if ch, ok := o.PullChoice(s, nid, 0); ok {
					if _, err := s.Pull(nid, ch); err != nil {
						t.Fatalf("oracle produced invalid pull: %v", err)
					}
				}
			case 1:
				if _, err := s.Invoke(nid, types.MethodID(i)); err != nil {
					continue // not a leader; fine
				}
			case 2:
				if ch, ok := o.PushChoice(s, nid, 0); ok {
					if _, err := s.Push(nid, ch); err != nil {
						t.Fatalf("oracle produced invalid push: %v", err)
					}
				}
			}
		}
		return s.Key()
	}
	if run(42) != run(42) {
		t.Error("same seed produced different states")
	}
	if run(42) == run(43) {
		t.Error("different seeds produced identical states (suspicious)")
	}
}

func TestEnumeratePullsAllValid(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	mustInvoke(t, s, 1, 1)
	for _, nid := range []types.NodeID{1, 2, 3} {
		for _, ch := range EnumeratePulls(s, nid, false) {
			c := s.Clone()
			if _, err := c.Pull(nid, ch); err != nil {
				t.Errorf("EnumeratePulls produced invalid choice %+v for %s: %v", ch, nid, err)
			}
		}
	}
}

func TestEnumeratePushesAllValid(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	mustInvoke(t, s, 1, 1)
	mustInvoke(t, s, 1, 2)
	choices := EnumeratePushes(s, 1, false)
	if len(choices) == 0 {
		t.Fatal("no push choices for a leader with pending methods")
	}
	for _, ch := range choices {
		c := s.Clone()
		if _, err := c.Push(1, ch); err != nil {
			t.Errorf("EnumeratePushes produced invalid choice %+v: %v", ch, err)
		}
	}
	if got := EnumeratePushes(s, 2, false); len(got) != 0 {
		t.Errorf("non-leader should have no push choices, got %v", got)
	}
}

func TestEnumerateQuorumOnly(t *testing.T) {
	s := newTestState(DefaultRules())
	for _, ch := range EnumeratePulls(s, 1, true) {
		c := s.Clone()
		res, err := c.Pull(1, ch)
		if err != nil {
			t.Fatalf("invalid choice: %v", err)
		}
		if !res.Quorum {
			t.Errorf("quorumOnly enumeration returned non-quorum choice %+v", ch)
		}
	}
}

func TestEnumerateReconfigsHonorsRules(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	// R3 unsatisfied: no reconfigs available.
	if got := EnumerateReconfigs(s, 1); len(got) != 0 {
		t.Errorf("reconfigs available before commit: %v", got)
	}
	m := mustInvoke(t, s, 1, 1)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
	got := EnumerateReconfigs(s, 1)
	if len(got) == 0 {
		t.Fatal("no reconfigs after commit")
	}
	for _, ncf := range got {
		c := s.Clone()
		if _, err := c.Reconfig(1, ncf); err != nil {
			t.Errorf("enumerated reconfig %s rejected: %v", ncf, err)
		}
	}
}

func TestRulesPresets(t *testing.T) {
	if r := DefaultRules(); !(r.AllowReconfig && r.R1 && r.R2 && r.R3 && !r.StopTheWorld) {
		t.Errorf("DefaultRules = %+v", r)
	}
	if r := WithoutR3(); r.R3 || !r.R1 || !r.R2 {
		t.Errorf("WithoutR3 = %+v", r)
	}
	if r := WithoutR2(); r.R2 || !r.R1 || !r.R3 {
		t.Errorf("WithoutR2 = %+v", r)
	}
	if r := WithoutR1(); r.R1 || !r.R2 || !r.R3 {
		t.Errorf("WithoutR1 = %+v", r)
	}
	if r := StaticRules(); r.AllowReconfig {
		t.Errorf("StaticRules = %+v", r)
	}
}
