package core

import (
	"fmt"
	"sort"
	"strings"

	"adore/internal/config"
	"adore/internal/types"
)

// Tree is the cache tree (Fig. 6): a map from cache ID to cache plus parent
// pointer, with an explicit child index. The root is a CCache at time 0,
// version 0, with supporters mbrs(conf₀) — the implicitly committed initial
// state.
//
// The tree is append-only: AddLeaf and InsertBtw are the only mutators
// (matching the paper's addLeaf/insertBtw), plus the optional stop-the-world
// PruneOffBranch extension discussed in §8.
type Tree struct {
	nodes    map[types.CID]*Cache
	children map[types.CID][]types.CID
	root     types.CID
	next     types.CID
}

// NewTree builds a tree containing only the root cache under conf0.
func NewTree(conf0 config.Config) *Tree {
	t := &Tree{
		nodes:    make(map[types.CID]*Cache),
		children: make(map[types.CID][]types.CID),
		root:     1,
		next:     2,
	}
	t.nodes[t.root] = &Cache{
		ID:     t.root,
		Parent: types.NoCID,
		Kind:   KindC,
		Caller: types.NoNode,
		Time:   0,
		Vrsn:   0,
		Supp:   conf0.Members(),
		Conf:   conf0,
	}
	return t
}

// Root returns the root cache.
func (t *Tree) Root() *Cache { return t.nodes[t.root] }

// Get returns the cache with the given ID, or nil.
func (t *Tree) Get(cid types.CID) *Cache { return t.nodes[cid] }

// Len returns the number of caches, including the root.
func (t *Tree) Len() int { return len(t.nodes) }

// All returns every cache ordered by ID (insertion order).
func (t *Tree) All() []*Cache {
	out := make([]*Cache, 0, len(t.nodes))
	for _, c := range t.nodes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Children returns the IDs of cid's children in insertion order. The caller
// must not mutate the returned slice.
func (t *Tree) Children(cid types.CID) []types.CID { return t.children[cid] }

// AddLeaf inserts c as a new leaf child of parent and returns the stored
// cache with its assigned ID (the paper's addLeaf).
func (t *Tree) AddLeaf(parent types.CID, c Cache) *Cache {
	if t.nodes[parent] == nil {
		panic(fmt.Sprintf("core: AddLeaf under unknown parent %d", parent))
	}
	c.ID = t.next
	c.Parent = parent
	t.next++
	t.nodes[c.ID] = &c
	t.children[parent] = append(t.children[parent], c.ID)
	return &c
}

// InsertBtw inserts c between parent and parent's current children: the
// children are re-parented under c and c becomes parent's only new child
// (the paper's insertBtw, used by push so that uncommitted suffixes survive
// as descendants of the new CCache).
func (t *Tree) InsertBtw(parent types.CID, c Cache) *Cache {
	if t.nodes[parent] == nil {
		panic(fmt.Sprintf("core: InsertBtw under unknown parent %d", parent))
	}
	c.ID = t.next
	c.Parent = parent
	t.next++
	moved := t.children[parent]
	t.nodes[c.ID] = &c
	t.children[c.ID] = moved
	for _, child := range moved {
		t.nodes[child].Parent = c.ID
	}
	t.children[parent] = []types.CID{c.ID}
	return &c
}

// IsAncestor reports a ↑ b: a is a strict ancestor of b.
func (t *Tree) IsAncestor(a, b types.CID) bool {
	for cur := t.nodes[b]; cur != nil && cur.Parent != types.NoCID; {
		if cur.Parent == a {
			return true
		}
		cur = t.nodes[cur.Parent]
	}
	return false
}

// OnSameBranch reports whether a and b are equal or one is an ancestor of
// the other.
func (t *Tree) OnSameBranch(a, b types.CID) bool {
	return a == b || t.IsAncestor(a, b) || t.IsAncestor(b, a)
}

// PathToRoot returns the caches from cid (inclusive) up to the root
// (inclusive).
func (t *Tree) PathToRoot(cid types.CID) []*Cache {
	var out []*Cache
	for cur := t.nodes[cid]; cur != nil; cur = t.nodes[cur.Parent] {
		out = append(out, cur)
		if cur.Parent == types.NoCID {
			break
		}
	}
	return out
}

// Depth returns the number of edges between cid and the root.
func (t *Tree) Depth(cid types.CID) int {
	d := 0
	for cur := t.nodes[cid]; cur != nil && cur.Parent != types.NoCID; cur = t.nodes[cur.Parent] {
		d++
	}
	return d
}

// NCA returns the nearest common ancestor of a and b (possibly a or b
// itself).
func (t *Tree) NCA(a, b types.CID) types.CID {
	seen := make(map[types.CID]bool)
	for cur := t.nodes[a]; cur != nil; cur = t.nodes[cur.Parent] {
		seen[cur.ID] = true
		if cur.Parent == types.NoCID {
			break
		}
	}
	for cur := t.nodes[b]; cur != nil; cur = t.nodes[cur.Parent] {
		if seen[cur.ID] {
			return cur.ID
		}
		if cur.Parent == types.NoCID {
			break
		}
	}
	return t.root
}

// RDist computes rdist(a, b) (Def. 4.2): the number of RCaches strictly
// between a and b on the path through their nearest common ancestor, not
// counting the endpoints (the NCA itself is counted when it is a distinct
// interior RCache).
func (t *Tree) RDist(a, b types.CID) int {
	if a == b {
		return 0
	}
	nca := t.NCA(a, b)
	count := 0
	// countUp counts RCaches strictly between from and the NCA.
	countUp := func(from types.CID) {
		cur := t.nodes[from]
		if cur == nil || cur.ID == nca {
			return
		}
		for cur.Parent != types.NoCID {
			cur = t.nodes[cur.Parent]
			if cur.ID == nca {
				return
			}
			if cur.Kind == KindR {
				count++
			}
		}
	}
	countUp(a)
	countUp(b)
	// The NCA itself lies on the path when it is not an endpoint.
	if nca != a && nca != b && t.nodes[nca].Kind == KindR {
		count++
	}
	return count
}

// TreeRDist returns rdist(tr): the maximum rdist between any two caches.
func (t *Tree) TreeRDist() int {
	all := t.All()
	max := 0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if d := t.RDist(all[i].ID, all[j].ID); d > max {
				max = d
			}
		}
	}
	return max
}

// Clone returns a deep copy of the tree. Cache values are copied; NodeSets
// and Configs are immutable and shared.
func (t *Tree) Clone() *Tree {
	nt := &Tree{
		nodes:    make(map[types.CID]*Cache, len(t.nodes)),
		children: make(map[types.CID][]types.CID, len(t.children)),
		root:     t.root,
		next:     t.next,
	}
	for cid, c := range t.nodes {
		cc := *c
		nt.nodes[cid] = &cc
	}
	for cid, kids := range t.children {
		nt.children[cid] = append([]types.CID(nil), kids...)
	}
	return nt
}

// PruneOffBranch removes every cache that is neither an ancestor nor a
// descendant of cid (nor cid itself). It implements the stop-the-world
// reconfiguration variant sketched in §8: when an RCache commits, sibling
// branches are deleted, simulating a log copy to a fresh cluster.
func (t *Tree) PruneOffBranch(cid types.CID) int {
	keep := make(map[types.CID]bool)
	for _, c := range t.PathToRoot(cid) {
		keep[c.ID] = true
	}
	var markDesc func(types.CID)
	markDesc = func(id types.CID) {
		keep[id] = true
		for _, child := range t.children[id] {
			markDesc(child)
		}
	}
	markDesc(cid)
	removed := 0
	for id := range t.nodes {
		if !keep[id] {
			delete(t.nodes, id)
			delete(t.children, id)
			removed++
		}
	}
	if removed > 0 {
		for id, kids := range t.children {
			filtered := kids[:0]
			for _, k := range kids {
				if keep[k] {
					filtered = append(filtered, k)
				}
			}
			t.children[id] = filtered
		}
	}
	return removed
}

// Key returns a canonical signature of the tree: a Merkle-style hash string
// in which sibling subtrees are sorted by content, so isomorphic trees that
// differ only in cache IDs or sibling order share a key. The model explorer
// uses it to deduplicate states.
func (t *Tree) Key() string {
	var sig func(types.CID) string
	sig = func(cid types.CID) string {
		kids := t.children[cid]
		parts := make([]string, len(kids))
		for i, k := range kids {
			parts[i] = sig(k)
		}
		sort.Strings(parts)
		return t.nodes[cid].contentSig() + "(" + strings.Join(parts, ",") + ")"
	}
	return sig(t.root)
}

// MostRecent returns mostRecent(tr, Q): the greatest cache (by >) observed
// by at least one member of Q, or nil if no cache qualifies.
//
// Observation is knowledge transfer: acking a commit (CCache supporters)
// means the replica stored the log prefix, and calling an operation means
// the caller knows its result. Granting an election vote, however, transfers
// no log knowledge — a Raft voter only advances its term — so an ECache is
// observed only by its caller, not by its voters. This distinction is what
// lets the published Fig. 4 schedule proceed: S3 votes in S2's election yet
// S1's later election (supported by S3) still lands on S1's own RCache,
// "using its own configuration on a different branch from the CCache"
// (§4.2). Treating votes as observations would block the bug the paper
// proves R3 is needed for.
func (t *Tree) MostRecent(q types.NodeSet) *Cache {
	var best *Cache
	for _, c := range t.All() {
		if !observers(c).Intersects(q) {
			continue
		}
		if best == nil || c.Greater(best) {
			best = c
		}
	}
	return best
}

// observers returns the replicas whose local log reflects c. ECaches have
// none: an election is metadata, not a log entry — not even the winner's
// log changes (the winner's knowledge is already captured by the M/R/C
// caches on the branch its ECache was inserted under).
func observers(c *Cache) types.NodeSet {
	if c.Kind == KindE {
		return types.NodeSet{}
	}
	return c.Supporters()
}

// ActiveCache returns activeCache(tr, nid): the greatest cache called by
// nid, or nil if nid has never completed an operation.
func (t *Tree) ActiveCache(nid types.NodeID) *Cache {
	var best *Cache
	for _, c := range t.All() {
		if c.Caller != nid {
			continue
		}
		if best == nil || c.Greater(best) {
			best = c
		}
	}
	return best
}

// LastCommit returns lastCommit(tr, nid): the greatest CCache whose
// supporters include nid (the root qualifies for members of conf₀), or nil.
func (t *Tree) LastCommit(nid types.NodeID) *Cache {
	var best *Cache
	for _, c := range t.All() {
		if c.Kind != KindC || !c.Supporters().Contains(nid) {
			continue
		}
		if best == nil || c.Greater(best) {
			best = c
		}
	}
	return best
}

// CCaches returns every CCache in the tree (including the root), ordered by
// ID.
func (t *Tree) CCaches() []*Cache {
	var out []*Cache
	for _, c := range t.All() {
		if c.Kind == KindC {
			out = append(out, c)
		}
	}
	return out
}

// RCaches returns every RCache in the tree, ordered by ID.
func (t *Tree) RCaches() []*Cache {
	var out []*Cache
	for _, c := range t.All() {
		if c.Kind == KindR {
			out = append(out, c)
		}
	}
	return out
}

// Render draws the tree as indented ASCII, one cache per line, for the
// scenario CLI and golden tests.
func (t *Tree) Render() string {
	var b strings.Builder
	var walk func(cid types.CID, depth int)
	walk = func(cid types.CID, depth int) {
		c := t.nodes[cid]
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(c.String())
		b.WriteByte('\n')
		kids := append([]types.CID(nil), t.children[cid]...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}
