package core

import (
	"errors"
	"testing"

	"adore/internal/config"
	"adore/internal/types"
)

func newDeferredState(alpha int) *State {
	return NewState(config.RaftSingleNode, types.Range(1, 3), DeferredRules(alpha))
}

func TestDeferredRulesPreset(t *testing.T) {
	r := DeferredRules(4)
	if !r.AllowReconfig || !r.R1 || !r.R2 || r.R3 || !r.DeferredConfig || r.Alpha != 4 {
		t.Errorf("DeferredRules = %+v", r)
	}
}

// TestDeferredConfigActivatesOnCommit is the heart of the variant: an
// uncommitted RCache is inert — elections and commits keep using the old
// configuration — and activates the moment it commits.
func TestDeferredConfigActivatesOnCommit(t *testing.T) {
	s := newDeferredState(0)
	old := config.NewMajorityConfig(types.Range(1, 3))
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	// No R3 in deferred mode: reconfig is legal immediately.
	bigger := config.NewMajorityConfig(types.Range(1, 4))
	rc, err := s.Reconfig(1, bigger)
	if err != nil {
		t.Fatal(err)
	}
	// The effective config at the RCache is STILL the old one.
	if got := s.ConfAt(rc); !got.Equal(old) {
		t.Fatalf("effective config at uncommitted RCache = %s, want %s", got, old)
	}
	// Methods invoked after it also run under the old config.
	m, err := s.Invoke(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Conf.Equal(old) {
		t.Fatalf("MCache conf = %s, want old config", m.Conf)
	}
	// A push targeting the method needs a quorum of the OLD config and
	// may not include S4.
	if _, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 4), CM: m.ID}); !errors.Is(err, ErrBadSupporters) {
		t.Fatalf("S4 accepted as supporter before the config committed: %v", err)
	}
	res, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 2), CM: m.ID})
	if err != nil || !res.Quorum {
		t.Fatalf("push under old config: %v %+v", err, res)
	}
	// The CCache (below the RCache) activates the new configuration for
	// everything after it.
	m2, err := s.Invoke(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Conf.Equal(bigger) {
		t.Fatalf("post-commit MCache conf = %s, want %s", m2.Conf, bigger)
	}
	// And pushes now require (and accept) quorums of the new config.
	res, err = s.Push(1, PushChoice{Q: types.NewNodeSet(1, 2, 4), CM: m2.ID})
	if err != nil || !res.Quorum {
		t.Fatalf("push under new config: %v %+v", err, res)
	}
}

func TestDeferredElectionUsesCommittedConfig(t *testing.T) {
	s := newDeferredState(0)
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	if _, err := s.Reconfig(1, config.NewMajorityConfig(types.NewNodeSet(1, 2))); err != nil {
		t.Fatal(err)
	}
	// The uncommitted shrink is inert: a new election still needs a
	// majority of {S1,S2,S3}; {S1,S2} after the reconfig proposal still
	// counts 2-of-3 (fine), but {S1} alone must not become a quorum even
	// though the proposed config has 2 members.
	res, err := s.Pull(1, PullChoice{Q: types.NewNodeSet(1), T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum {
		t.Fatal("single vote formed a quorum from an uncommitted shrink")
	}
}

func TestAlphaBoundsPipeline(t *testing.T) {
	s := newDeferredState(2)
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	if _, err := s.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	m2, err := s.Invoke(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two uncommitted commands: the α=2 bound blocks a third.
	if _, err := s.Invoke(1, 3); !errors.Is(err, ErrAlphaBlocked) {
		t.Fatalf("want ErrAlphaBlocked, got %v", err)
	}
	if err := s.CanReconf(1, config.NewMajorityConfig(types.Range(1, 4))); !errors.Is(err, ErrAlphaBlocked) {
		t.Fatalf("reconfig not α-blocked: %v", err)
	}
	// Committing the prefix reopens the pipeline.
	if _, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 2), CM: m2.ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(1, 3); err != nil {
		t.Fatalf("invoke after commit: %v", err)
	}
}

func TestAlphaZeroIsUnbounded(t *testing.T) {
	s := newDeferredState(0)
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	for i := 0; i < 10; i++ {
		if _, err := s.Invoke(1, types.MethodID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfAtHotModeIsStoredConf(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 1)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
	ncf := config.NewMajorityConfig(types.Range(1, 4))
	rc, err := s.Reconfig(1, ncf)
	if err != nil {
		t.Fatal(err)
	}
	// Hot mode: the RCache's config is effective immediately.
	if got := s.ConfAt(rc); !got.Equal(ncf) {
		t.Errorf("hot ConfAt(RCache) = %s, want %s", got, ncf)
	}
}

func TestUncommittedSuffixCountsCommandsOnly(t *testing.T) {
	s := newDeferredState(3)
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	// The ECache does not count toward α.
	if got := s.uncommittedSuffixLen(s.Tree.ActiveCache(1)); got != 0 {
		t.Errorf("suffix after election = %d, want 0", got)
	}
	m := mustInvoke(t, s, 1, 1)
	if got := s.uncommittedSuffixLen(m); got != 1 {
		t.Errorf("suffix after one invoke = %d, want 1", got)
	}
}
