package core

import (
	"errors"
	"testing"

	"adore/internal/config"
	"adore/internal/types"
)

// newTestState builds a 3-node majority-quorum state with the given rules.
func newTestState(rules Rules) *State {
	return NewState(config.RaftSingleNode, types.Range(1, 3), rules)
}

// mustPull runs a quorum pull and fails the test on any error.
func mustPull(t *testing.T, s *State, nid types.NodeID, q types.NodeSet, tm types.Time) *Cache {
	t.Helper()
	res, err := s.Pull(nid, PullChoice{Q: q, T: tm})
	if err != nil {
		t.Fatalf("Pull(%s, Q=%s, T=%d): %v", nid, q, tm, err)
	}
	if !res.Quorum {
		t.Fatalf("Pull(%s, Q=%s) was not a quorum", nid, q)
	}
	return res.ECache
}

func mustInvoke(t *testing.T, s *State, nid types.NodeID, m types.MethodID) *Cache {
	t.Helper()
	c, err := s.Invoke(nid, m)
	if err != nil {
		t.Fatalf("Invoke(%s, %s): %v", nid, m, err)
	}
	return c
}

func mustPush(t *testing.T, s *State, nid types.NodeID, q types.NodeSet, cm types.CID) *Cache {
	t.Helper()
	res, err := s.Push(nid, PushChoice{Q: q, CM: cm})
	if err != nil {
		t.Fatalf("Push(%s, Q=%s, CM=%d): %v", nid, q, cm, err)
	}
	if !res.Quorum {
		t.Fatalf("Push(%s, Q=%s) was not a quorum", nid, q)
	}
	return res.CCache
}

func TestPullCreatesECache(t *testing.T) {
	s := newTestState(DefaultRules())
	e := mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	if e.Kind != KindE || e.Time != 1 || e.Vrsn != 0 {
		t.Errorf("ECache = %v", e)
	}
	if e.Parent != s.Tree.Root().ID {
		t.Errorf("ECache parent = %d, want root", e.Parent)
	}
	if s.TimeOf(1) != 1 || s.TimeOf(2) != 1 {
		t.Errorf("supporter times not updated: %v", s.Times)
	}
	if s.TimeOf(3) != 0 {
		t.Errorf("non-supporter time changed: %v", s.Times)
	}
}

func TestPullNonQuorumOnlyBlocks(t *testing.T) {
	s := newTestState(DefaultRules())
	res, err := s.Pull(1, PullChoice{Q: types.NewNodeSet(1), T: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum || res.ECache != nil {
		t.Errorf("singleton supporter set must not form a quorum: %+v", res)
	}
	if s.TimeOf(1) != 5 {
		t.Errorf("failed election must still advance supporter times")
	}
	// The blocked node now refuses a smaller-timestamp election.
	if _, err := s.Pull(2, PullChoice{Q: types.Range(1, 3), T: 3}); !errors.Is(err, ErrStaleTime) {
		t.Errorf("expected ErrStaleTime, got %v", err)
	}
	// But a larger timestamp succeeds.
	mustPull(t, s, 2, types.Range(1, 3), 6)
}

func TestPullRejectsStaleTime(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 2)
	if _, err := s.Pull(2, PullChoice{Q: types.NewNodeSet(1, 2), T: 2}); !errors.Is(err, ErrStaleTime) {
		t.Errorf("equal timestamp must be rejected (strict <), got %v", err)
	}
}

func TestPullRejectsCallerOutsideQ(t *testing.T) {
	s := newTestState(DefaultRules())
	if _, err := s.Pull(1, PullChoice{Q: types.NewNodeSet(2, 3), T: 1}); !errors.Is(err, ErrBadSupporters) {
		t.Errorf("caller must vote for itself, got %v", err)
	}
}

func TestPullRejectsNonMembers(t *testing.T) {
	s := newTestState(DefaultRules())
	if _, err := s.Pull(1, PullChoice{Q: types.NewNodeSet(1, 9), T: 1}); !errors.Is(err, ErrBadSupporters) {
		t.Errorf("supporters outside conf must be rejected, got %v", err)
	}
}

func TestPullNoSupportedCache(t *testing.T) {
	s := newTestState(DefaultRules())
	if _, err := s.Pull(9, PullChoice{Q: types.NewNodeSet(9), T: 1}); !errors.Is(err, ErrNoSupportedCache) {
		t.Errorf("want ErrNoSupportedCache, got %v", err)
	}
}

func TestPullParentIsMostRecent(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 100)
	// S2 and S3 have empty logs (votes transfer no knowledge), so their
	// most recent observed cache is the root: S2's election forks there.
	e2 := mustPull(t, s, 2, types.NewNodeSet(2, 3), 2)
	if e2.Parent != s.Tree.Root().ID {
		t.Errorf("S2's ECache parent = %d, want the root", e2.Parent)
	}
	// S1's re-election keeps its own log: S1 observed its MCache, which
	// outranks anything S2 has observed, so the new ECache lands on it.
	e1 := mustPull(t, s, 1, types.NewNodeSet(1, 2), 3)
	if e1.Parent != m.ID {
		t.Errorf("S1's ECache parent = %d, want the MCache %d", e1.Parent, m.ID)
	}
}

func TestInvokeRequiresPull(t *testing.T) {
	s := newTestState(DefaultRules())
	if _, err := s.Invoke(1, 1); !errors.Is(err, ErrNoActiveCache) {
		t.Errorf("want ErrNoActiveCache, got %v", err)
	}
}

func TestInvokeExtendsActiveBranch(t *testing.T) {
	s := newTestState(DefaultRules())
	e := mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m1 := mustInvoke(t, s, 1, 10)
	m2 := mustInvoke(t, s, 1, 11)
	if m1.Parent != e.ID || m2.Parent != m1.ID {
		t.Error("MCaches must chain under the active cache")
	}
	if m1.Vrsn != 1 || m2.Vrsn != 2 {
		t.Errorf("version numbers %d,%d, want 1,2", m1.Vrsn, m2.Vrsn)
	}
	if m1.Time != 1 || m2.Time != 1 {
		t.Error("MCaches must inherit the leader's timestamp")
	}
}

func TestInvokePreemptedLeaderFails(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	// S2's election includes S1, bumping S1's observed time.
	mustPull(t, s, 2, types.NewNodeSet(1, 2), 2)
	if _, err := s.Invoke(1, 1); !errors.Is(err, ErrNotLeader) {
		t.Errorf("preempted leader must fail, got %v", err)
	}
	// S1 can still invoke after re-election.
	mustPull(t, s, 1, types.Range(1, 3), 3)
	mustInvoke(t, s, 1, 2)
}

func TestPushCommitsPrefix(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m1 := mustInvoke(t, s, 1, 10)
	m2 := mustInvoke(t, s, 1, 11)
	// Commit only the prefix ending at m1; m2 stays uncommitted below the CCache.
	cc := mustPush(t, s, 1, types.NewNodeSet(1, 3), m1.ID)
	if cc.Parent != m1.ID {
		t.Errorf("CCache parent = %d, want %d", cc.Parent, m1.ID)
	}
	if got := s.Tree.Get(m2.ID).Parent; got != cc.ID {
		t.Errorf("uncommitted suffix parent = %d, want the CCache %d", got, cc.ID)
	}
	if cc.Time != m1.Time || cc.Vrsn != m1.Vrsn {
		t.Error("CCache must copy the target's stamp")
	}
	methods := s.CommittedMethods()
	if len(methods) != 1 || methods[0] != 10 {
		t.Errorf("committed methods = %v, want [M10]", methods)
	}
}

func TestPushRejectsForeignTarget(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 10)
	if _, err := s.Push(2, PushChoice{Q: types.NewNodeSet(1, 2), CM: m.ID}); !errors.Is(err, ErrBadPushTarget) {
		t.Errorf("pushing another caller's cache must fail, got %v", err)
	}
}

func TestPushRejectsPreemptedLeader(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 10)
	mustPull(t, s, 2, types.Range(1, 3), 2)
	if _, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 2), CM: m.ID}); !errors.Is(err, ErrNotLeader) {
		t.Errorf("want ErrNotLeader, got %v", err)
	}
}

func TestPushRejectsSupporterWithNewerTime(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 10)
	// S3 observes a failed higher election.
	if _, err := s.Pull(3, PullChoice{Q: types.NewNodeSet(3), T: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 3), CM: m.ID}); !errors.Is(err, ErrStaleTime) {
		t.Errorf("supporter with newer time must be rejected, got %v", err)
	}
	// Without S3 the push is fine (supporter times may equal time(C_M)).
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
}

func TestPushRejectsBelowLastCommit(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m1 := mustInvoke(t, s, 1, 10)
	m2 := mustInvoke(t, s, 1, 11)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m2.ID)
	// m1 is now behind S1's last commit.
	if _, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 2), CM: m1.ID}); !errors.Is(err, ErrBadPushTarget) {
		t.Errorf("pushing below lastCommit must fail, got %v", err)
	}
}

func TestPushNonQuorumOnlyUpdatesTimes(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 10)
	res, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1), CM: m.ID})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quorum || res.CCache != nil {
		t.Errorf("singleton ack set must not commit: %+v", res)
	}
	if len(s.Tree.CCaches()) != 1 {
		t.Error("non-quorum push must not add a CCache")
	}
}

func TestReconfigGuards(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	ncf := config.NewMajorityConfig(types.Range(1, 4))

	// R3: no commit in the current term yet.
	if _, err := s.Reconfig(1, ncf); !errors.Is(err, ErrR3) {
		t.Fatalf("want ErrR3 before any commit at the current time, got %v", err)
	}

	// Commit a no-op method at the current term; R3 is now satisfied.
	m := mustInvoke(t, s, 1, 99)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
	r1, err := s.Reconfig(1, ncf)
	if err != nil {
		t.Fatalf("Reconfig after commit: %v", err)
	}
	if r1.Kind != KindR || !r1.Conf.Equal(ncf) {
		t.Errorf("RCache = %v", r1)
	}

	// R2: a second reconfig with the first still uncommitted must fail.
	ncf2 := config.NewMajorityConfig(types.Range(1, 5))
	if _, err := s.Reconfig(1, ncf2); !errors.Is(err, ErrR2) {
		t.Errorf("want ErrR2 with an uncommitted RCache on the branch, got %v", err)
	}

	// Commit the RCache (its own new 4-node config governs the quorum);
	// now R2 passes but R1⁺ still constrains the target.
	mustPush(t, s, 1, types.NewNodeSet(1, 2, 3), r1.ID)
	bad := config.NewMajorityConfig(types.NewNodeSet(1, 2, 5, 6))
	if _, err := s.Reconfig(1, bad); !errors.Is(err, ErrR1) {
		t.Errorf("want ErrR1 for a two-node change, got %v", err)
	}
	if _, err := s.Reconfig(1, ncf2); err != nil {
		t.Errorf("single-node growth after commit should succeed: %v", err)
	}
}

func TestReconfigInheritsNewConfig(t *testing.T) {
	s := newTestState(DefaultRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 1)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
	ncf := config.NewMajorityConfig(types.NewNodeSet(1, 2)) // remove S3
	r, err := s.Reconfig(1, ncf)
	if err != nil {
		t.Fatal(err)
	}
	// Children inherit the RCache's new configuration.
	m2 := mustInvoke(t, s, 1, 2)
	if !m2.Conf.Equal(ncf) {
		t.Errorf("child conf = %s, want %s", m2.Conf, ncf)
	}
	// The RCache itself is committed under the NEW configuration
	// (hot reconfiguration: it takes effect immediately).
	res, err := s.Push(1, PushChoice{Q: types.NewNodeSet(1, 2), CM: r.ID})
	if err != nil || !res.Quorum {
		t.Fatalf("push under new config: %v %+v", err, res)
	}
}

func TestReconfigDisabled(t *testing.T) {
	s := newTestState(StaticRules())
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	if _, err := s.Reconfig(1, config.NewMajorityConfig(types.Range(1, 4))); !errors.Is(err, ErrReconfigDisabled) {
		t.Errorf("want ErrReconfigDisabled, got %v", err)
	}
}

func TestStopTheWorldPrunes(t *testing.T) {
	rules := DefaultRules()
	rules.StopTheWorld = true
	s := newTestState(rules)
	// S1 is elected and invokes a method nobody else sees.
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	stale := mustInvoke(t, s, 1, 1)
	// S2 is elected (its supporters' most recent cache is S1's ECache),
	// forking the tree: S1's MCache and S2's ECache are siblings.
	mustPull(t, s, 2, types.NewNodeSet(2, 3), 2)
	m := mustInvoke(t, s, 2, 2)
	mustPush(t, s, 2, types.NewNodeSet(2, 3), m.ID)
	// S2 removes S1 and commits the RCache: stop-the-world kicks in.
	r, err := s.Reconfig(2, config.NewMajorityConfig(types.NewNodeSet(2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Push(2, PushChoice{Q: types.NewNodeSet(2, 3), CM: r.ID})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quorum {
		t.Fatal("expected quorum push")
	}
	if res.Pruned == 0 {
		t.Error("stop-the-world push of an RCache should prune off-branch caches")
	}
	if s.Tree.Get(stale.ID) != nil {
		t.Error("stale sibling branch survived stop-the-world commit")
	}
	if s.Tree.Get(m.ID) == nil {
		t.Error("committed branch was pruned")
	}
}

func TestCommittedBranchAndCurrentConfig(t *testing.T) {
	s := newTestState(DefaultRules())
	if got := s.CurrentConfig(); !got.Equal(config.NewMajorityConfig(types.Range(1, 3))) {
		t.Errorf("initial CurrentConfig = %s", got)
	}
	mustPull(t, s, 1, types.NewNodeSet(1, 2), 1)
	m := mustInvoke(t, s, 1, 7)
	mustPush(t, s, 1, types.NewNodeSet(1, 2), m.ID)
	ncf := config.NewMajorityConfig(types.NewNodeSet(1, 2))
	r, err := s.Reconfig(1, ncf)
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, s, 1, types.NewNodeSet(1, 2), r.ID)
	if got := s.CurrentConfig(); !got.Equal(ncf) {
		t.Errorf("CurrentConfig after committed reconfig = %s, want %s", got, ncf)
	}
	branch := s.CommittedBranch()
	if len(branch) == 0 || branch[0].ID != s.Tree.Root().ID {
		t.Error("committed branch must start at the root")
	}
}
