package core
