package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adore/internal/config"
	"adore/internal/types"
)

// randomReachableState drives a seeded random mix of valid operations and
// returns the resulting state — every property below is quantified over
// reachable states only, like the paper's theorems.
func randomReachableState(seed int64, steps int, rules Rules) *State {
	s := NewState(config.RaftSingleNode, types.Range(1, 3), rules)
	o := NewOracle(seed)
	for i := 0; i < steps; i++ {
		nid := types.NodeID(o.Intn(3) + 1)
		switch o.Intn(4) {
		case 0:
			if ch, ok := o.PullChoice(s, nid, 0.1); ok {
				_, _ = s.Pull(nid, ch)
			}
		case 1:
			_, _ = s.Invoke(nid, types.MethodID(i+1))
		case 2:
			if ncf, ok := o.ReconfigTarget(s, nid); ok {
				_, _ = s.Reconfig(nid, ncf)
			}
		case 3:
			if ch, ok := o.PushChoice(s, nid, 0.1); ok {
				_, _ = s.Push(nid, ch)
			}
		}
	}
	return s
}

// TestQuickRDistProperties checks metric-like facts of Def. 4.2 on random
// reachable trees: symmetry, zero on identical caches, endpoint exclusion
// (rdist to a direct child never counts the endpoints), and the subtree
// bound (tree rdist dominates all pairs).
func TestQuickRDistProperties(t *testing.T) {
	f := func(seed int64) bool {
		s := randomReachableState(seed%1000, 25, DefaultRules())
		tr := s.Tree
		all := tr.All()
		r := rand.New(rand.NewSource(seed))
		max := tr.TreeRDist()
		for k := 0; k < 10; k++ {
			a := all[r.Intn(len(all))]
			b := all[r.Intn(len(all))]
			d := tr.RDist(a.ID, b.ID)
			if d != tr.RDist(b.ID, a.ID) {
				return false // symmetry
			}
			if a.ID == b.ID && d != 0 {
				return false // identity
			}
			if d > max {
				return false // tree bound
			}
			// Endpoints never count: rdist from a cache to its parent is
			// independent of whether either endpoint is an RCache.
			if b.Parent != types.NoCID && tr.RDist(b.ID, b.Parent) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreaterIsStrictOrder checks irreflexivity, asymmetry, and
// transitivity of > on the caches of random reachable states.
func TestQuickGreaterIsStrictOrder(t *testing.T) {
	f := func(seed int64) bool {
		s := randomReachableState(seed%1000, 25, DefaultRules())
		all := s.Tree.All()
		for _, a := range all {
			if a.Greater(a) {
				return false
			}
			for _, b := range all {
				if a.Greater(b) && b.Greater(a) {
					return false
				}
				for _, c := range all {
					if a.Greater(b) && b.Greater(c) && !a.Greater(c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickCommittedLogMonotone is the SMR contract on the model: across
// random valid operations, the committed method log only grows by
// appending.
func TestQuickCommittedLogMonotone(t *testing.T) {
	f := func(seed int64) bool {
		s := NewState(config.RaftSingleNode, types.Range(1, 3), DefaultRules())
		o := NewOracle(seed % 1000)
		var prev []types.MethodID
		for i := 0; i < 40; i++ {
			nid := types.NodeID(o.Intn(3) + 1)
			switch o.Intn(4) {
			case 0:
				if ch, ok := o.PullChoice(s, nid, 0); ok {
					_, _ = s.Pull(nid, ch)
				}
			case 1:
				_, _ = s.Invoke(nid, types.MethodID(i+1))
			case 2:
				if ncf, ok := o.ReconfigTarget(s, nid); ok {
					_, _ = s.Reconfig(nid, ncf)
				}
			case 3:
				if ch, ok := o.PushChoice(s, nid, 0); ok {
					_, _ = s.Push(nid, ch)
				}
			}
			cur := s.CommittedMethods()
			if len(cur) < len(prev) {
				return false
			}
			for j := range prev {
				if cur[j] != prev[j] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneKeyStable: cloning preserves the canonical key, and
// applying the same op to state and clone keeps them identical.
func TestQuickCloneKeyStable(t *testing.T) {
	f := func(seed int64) bool {
		s := randomReachableState(seed%1000, 15, DefaultRules())
		c := s.Clone()
		if s.Key() != c.Key() {
			return false
		}
		o := NewOracle(seed)
		nid := types.NodeID(o.Intn(3) + 1)
		if ch, ok := o.PullChoice(s, nid, 0); ok {
			if _, err := s.Pull(nid, ch); err != nil {
				return false
			}
			if _, err := c.Pull(nid, ch); err != nil {
				return false
			}
		}
		return s.Key() == c.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
