// Package core implements the Adore model (paper §3): a protocol-level
// abstraction of reconfigurable consensus whose state is a single cache tree
// plus a map of per-replica logical times, and whose interface is four
// atomic operations — pull, invoke, reconfig, and push.
//
// The nondeterministic oracles 𝕆_pull and 𝕆_push of the paper become
// explicit choice arguments (PullChoice, PushChoice) that each operation
// validates against the paper's valid-oracle rules (Fig. 27). A rejected
// choice corresponds to an oracle that could never return it; a choice whose
// quorum test fails corresponds to the oracle's non-quorum outcome (state
// changes only in the time map). Random simulation draws choices from
// Oracle; the model explorer enumerates every valid choice.
//
// Removing reconfiguration (Rules.AllowReconfig = false) yields the CADO
// model; see package cado.
package core

import (
	"fmt"

	"adore/internal/config"
	"adore/internal/types"
)

// Kind distinguishes the four cache variants of Fig. 6.
type Kind uint8

const (
	// KindE marks an ECache: a successful election (pull).
	KindE Kind = iota
	// KindM marks an MCache: an invoked, possibly uncommitted method.
	KindM
	// KindR marks an RCache: a proposed configuration change. Its Conf
	// field holds the NEW configuration, which descendants inherit.
	KindR
	// KindC marks a CCache: a successful commit (push). Everything above
	// a CCache on its branch is committed.
	KindC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindE:
		return "E"
	case KindM:
		return "M"
	case KindR:
		return "R"
	case KindC:
		return "C"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Cache is one node of the cache tree (Fig. 6). Caches are immutable once
// inserted; the tree only ever grows (push re-parents children but never
// rewrites cache contents).
type Cache struct {
	// ID is the cache's unique identifier; Parent is its parent's ID
	// (types.NoCID for the root).
	ID     types.CID
	Parent types.CID

	// Kind selects the variant.
	Kind Kind

	// Caller is the replica whose operation created the cache (caller).
	// The root has Caller == types.NoNode.
	Caller types.NodeID

	// Time and Vrsn are the logical timestamp (ballot/term) and the
	// per-term version number.
	Time types.Time
	Vrsn types.Vrsn

	// Supp is the supporter set for ECaches and CCaches (the replicas
	// that voted/acked). For MCaches and RCaches use Supporters(), which
	// returns the singleton caller set.
	Supp types.NodeSet

	// Method is the invoked method for MCaches.
	Method types.MethodID

	// Conf is the configuration under which the cache was created; for
	// RCaches it is the NEW configuration (which descendants inherit).
	Conf config.Config
}

// Stamp returns the cache's (time, version) pair.
func (c *Cache) Stamp() types.Stamp { return types.Stamp{Time: c.Time, Vrsn: c.Vrsn} }

// Supporters returns supporters(C): the voter set for ECaches/CCaches and
// the singleton caller for MCaches/RCaches (Fig. 9's convention).
func (c *Cache) Supporters() types.NodeSet {
	switch c.Kind {
	case KindE, KindC:
		return c.Supp
	default:
		return types.NewNodeSet(c.Caller)
	}
}

// Greater implements the strict order > on caches (Fig. 9): lexicographic
// on (time, vrsn), except that a CCache with the same stamp as a non-CCache
// is considered greater (this makes > total on the caches of any reachable
// state).
func (c *Cache) Greater(d *Cache) bool {
	switch c.Stamp().Compare(d.Stamp()) {
	case 1:
		return true
	case -1:
		return false
	default:
		return c.Kind == KindC && d.Kind != KindC
	}
}

// GreaterEq reports c > d ∨ c ≈ d (same stamp and same CCache-ness).
func (c *Cache) GreaterEq(d *Cache) bool { return !d.Greater(c) }

// IsCommand reports whether the cache is an MCache or RCache — the variants
// that correspond to log entries and that push may target.
func (c *Cache) IsCommand() bool { return c.Kind == KindM || c.Kind == KindR }

// String renders the cache for diagnostics, e.g. "M3⟨S1@2.1 cfg={S1,S2,S3}⟩".
func (c *Cache) String() string {
	var payload string
	switch c.Kind {
	case KindM:
		payload = c.Method.String()
	case KindE, KindC:
		payload = c.Supp.String()
	case KindR:
		payload = "→" + c.Conf.String()
	}
	return fmt.Sprintf("%s%d⟨%s %s@%s cfg=%s⟩", c.Kind, c.ID, payload, c.Caller, c.Stamp(), c.Conf)
}

// contentSig is the cache's content signature, excluding identity (ID,
// Parent). It feeds the canonical tree key used for state deduplication.
func (c *Cache) contentSig() string {
	return fmt.Sprintf("%s|%d|%d.%d|%s|%d|%s",
		c.Kind, c.Caller, c.Time, c.Vrsn, c.Supp.Key(), c.Method, c.Conf.Key())
}
