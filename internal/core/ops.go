package core

import (
	"errors"
	"fmt"

	"adore/internal/config"
	"adore/internal/types"
)

// The operations below implement Fig. 28 (PullOk, InvokeOk, ReconfigOk,
// PushOk) with the valid-oracle side conditions of Fig. 27 checked
// explicitly. Each returns an error when the supplied choice could not have
// been produced by any valid oracle; the NoOp rules correspond to simply not
// calling the operation.

// Errors returned by the operations when a choice violates the valid-oracle
// rules or an enabling condition fails.
var (
	// ErrNotLeader: the caller's observed time differs from its active
	// cache's time — it has been preempted (invoke/reconfig), or the
	// push target is not from the caller's current term.
	ErrNotLeader = errors.New("core: caller is not the leader at the required timestamp")

	// ErrNoActiveCache: the caller has never completed an operation, so
	// activeCache is undefined (it must pull first).
	ErrNoActiveCache = errors.New("core: caller has no active cache; pull first")

	// ErrBadSupporters: validSupp failed — the caller is not in Q or Q
	// contains non-members of the relevant configuration.
	ErrBadSupporters = errors.New("core: invalid supporter set")

	// ErrStaleTime: a supporter has already observed a timestamp that
	// forbids this choice (≥ t for pull, > time(C_M) for push).
	ErrStaleTime = errors.New("core: supporter has observed a newer timestamp")

	// ErrNoSupportedCache: no cache in the tree is supported by any
	// member of Q, so mostRecent is undefined.
	ErrNoSupportedCache = errors.New("core: no cache supported by any chosen supporter")

	// ErrReconfigDisabled: the Rules disable the reconfig operation
	// (CADO).
	ErrReconfigDisabled = errors.New("core: reconfiguration is disabled in this model instance")

	// ErrR1 / ErrR2 / ErrR3: the corresponding reconfiguration guard
	// rejected the proposal.
	ErrR1 = errors.New("core: R1⁺ rejects the proposed configuration")
	ErrR2 = errors.New("core: R2 rejects reconfig: uncommitted RCache on the active branch")
	ErrR3 = errors.New("core: R3 rejects reconfig: no committed entry with the current timestamp")

	// ErrBadPushTarget: the push target is not an MCache/RCache of the
	// caller, or does not exceed the caller's last commit.
	ErrBadPushTarget = errors.New("core: invalid push target")
)

// PullChoice is a pull oracle outcome 𝕆_pull = Ok(Q, _, _, T): the supporter
// set that answered the election request and the proposed timestamp. The
// quorum flag and C_max of the paper's oracle are derived, not chosen.
type PullChoice struct {
	Q types.NodeSet
	T types.Time
}

// PullResult reports the outcome of a successful (non-error) pull.
type PullResult struct {
	// Quorum is Q_ok: whether the supporters formed a quorum of
	// conf(C_max). When false, only the time map changed.
	Quorum bool
	// MostRecent is C_max, the parent chosen for the new ECache.
	MostRecent *Cache
	// ECache is the inserted election cache (nil when Quorum is false).
	ECache *Cache
}

// Pull performs the election phase (PullOk / Fig. 28). The choice must
// satisfy the valid pull oracle rule:
//
//	∀s ∈ Q. times[s] < T
//	C_max = mostRecent(tree, Q)
//	validSupp(nid, Q, C_max):  nid ∈ Q ∧ Q ⊆ mbrs(conf(C_max))
//
// On success the supporters' times are set to T and, if Q is a quorum of
// conf(C_max), a new ECache(nid, T, 0, Q, conf(C_max)) is added as a leaf
// under C_max.
func (s *State) Pull(nid types.NodeID, ch PullChoice) (PullResult, error) {
	for _, id := range ch.Q.Slice() {
		if s.Times[id] >= ch.T {
			return PullResult{}, fmt.Errorf("%w: %s has seen %d ≥ %d", ErrStaleTime, id, s.Times[id], ch.T)
		}
	}
	cmax := s.Tree.MostRecent(ch.Q)
	if cmax == nil {
		return PullResult{}, ErrNoSupportedCache
	}
	conf := s.ConfAt(cmax)
	if !validSupp(nid, ch.Q, conf) {
		return PullResult{}, fmt.Errorf("%w: nid=%s Q=%s conf(C_max)=%s", ErrBadSupporters, nid, ch.Q, conf)
	}
	s.setTimes(ch.Q, ch.T)
	res := PullResult{MostRecent: cmax, Quorum: conf.IsQuorum(ch.Q)}
	if res.Quorum {
		res.ECache = s.Tree.AddLeaf(cmax.ID, Cache{
			Kind:   KindE,
			Caller: nid,
			Time:   ch.T,
			Vrsn:   0,
			Supp:   ch.Q,
			Conf:   conf,
		})
	}
	return res, nil
}

// Invoke performs method invocation (InvokeOk / Fig. 28): it appends a new
// MCache after the caller's active cache, provided the caller is still the
// leader at that cache's timestamp.
func (s *State) Invoke(nid types.NodeID, m types.MethodID) (*Cache, error) {
	ca, err := s.requireActiveLeader(nid)
	if err != nil {
		return nil, err
	}
	if !s.alphaAllows(ca) {
		return nil, ErrAlphaBlocked
	}
	return s.Tree.AddLeaf(ca.ID, Cache{
		Kind:   KindM,
		Caller: nid,
		Time:   ca.Time,
		Vrsn:   ca.Vrsn + 1,
		Method: m,
		Conf:   s.ConfAt(ca),
	}), nil
}

// Reconfig performs configuration change (ReconfigOk / Fig. 28): like
// Invoke, but the new RCache carries ncf and the canReconf guard (Fig. 25)
// must hold:
//
//	canReconf(tr, C_A, ncf) ≜ R1⁺(conf(C_A), ncf) ∧ R2(tr, C_A) ∧ R3(tr, C_A)
//
// Individual guards are enforced only when enabled in s.Rules so that the
// published buggy algorithms remain expressible as baselines.
func (s *State) Reconfig(nid types.NodeID, ncf config.Config) (*Cache, error) {
	if !s.Rules.AllowReconfig {
		return nil, ErrReconfigDisabled
	}
	ca, err := s.requireActiveLeader(nid)
	if err != nil {
		return nil, err
	}
	if !s.alphaAllows(ca) {
		return nil, ErrAlphaBlocked
	}
	if s.Rules.R1 && !s.Scheme.R1Plus(s.ConfAt(ca), ncf) {
		return nil, fmt.Errorf("%w: %s → %s", ErrR1, s.ConfAt(ca), ncf)
	}
	if s.Rules.R2 && !s.R2Holds(ca) {
		return nil, ErrR2
	}
	if s.Rules.R3 && !s.R3Holds(ca) {
		return nil, ErrR3
	}
	return s.Tree.AddLeaf(ca.ID, Cache{
		Kind:   KindR,
		Caller: nid,
		Time:   ca.Time,
		Vrsn:   ca.Vrsn + 1,
		Conf:   ncf,
	}), nil
}

// R2Holds checks R2(tr, C): every RCache on the branch from the root to C
// (inclusive) has a committing CCache between it and C. In other words,
// there are no uncommitted RCaches on the active branch.
func (s *State) R2Holds(c *Cache) bool {
	committed := false // whether a CCache lies between the current node and C
	for _, anc := range s.Tree.PathToRoot(c.ID) {
		switch anc.Kind {
		case KindC:
			committed = true
		case KindR:
			if !committed {
				return false
			}
		case KindE, KindM:
			// Neither commits nor reconfigures; irrelevant to R2.
		}
	}
	return true
}

// R3Holds checks R3(tr, C): the branch from the root to C (inclusive)
// contains a CCache with time(C') = time(C).
func (s *State) R3Holds(c *Cache) bool {
	for _, anc := range s.Tree.PathToRoot(c.ID) {
		if anc.Kind == KindC && anc.Time == c.Time {
			return true
		}
	}
	return false
}

// CanReconf reports canReconf(tree, activeCache(nid), ncf) without mutating
// the state, honoring the enabled rules. It returns nil when a Reconfig
// with the same arguments would succeed.
func (s *State) CanReconf(nid types.NodeID, ncf config.Config) error {
	if !s.Rules.AllowReconfig {
		return ErrReconfigDisabled
	}
	ca, err := s.requireActiveLeader(nid)
	if err != nil {
		return err
	}
	if !s.alphaAllows(ca) {
		return ErrAlphaBlocked
	}
	if s.Rules.R1 && !s.Scheme.R1Plus(s.ConfAt(ca), ncf) {
		return ErrR1
	}
	if s.Rules.R2 && !s.R2Holds(ca) {
		return ErrR2
	}
	if s.Rules.R3 && !s.R3Holds(ca) {
		return ErrR3
	}
	return nil
}

// requireActiveLeader returns the caller's active cache after checking
// isLeader(st, nid, time(C_A)).
func (s *State) requireActiveLeader(nid types.NodeID) (*Cache, error) {
	ca := s.Tree.ActiveCache(nid)
	if ca == nil {
		return nil, ErrNoActiveCache
	}
	if !s.IsLeader(nid, ca.Time) {
		return nil, fmt.Errorf("%w: %s at %d, observed %d", ErrNotLeader, nid, ca.Time, s.Times[nid])
	}
	return ca, nil
}

// PushChoice is a push oracle outcome 𝕆_push = Ok(Q, _, C_M): the supporter
// set that acknowledged the commit and the target cache (the last command
// of the prefix being committed).
type PushChoice struct {
	Q  types.NodeSet
	CM types.CID
}

// PushResult reports the outcome of a successful (non-error) push.
type PushResult struct {
	// Quorum is Q_ok; when false only the time map changed.
	Quorum bool
	// Target is C_M.
	Target *Cache
	// CCache is the inserted commit cache (nil when Quorum is false).
	CCache *Cache
	// Pruned counts caches removed by the stop-the-world variant.
	Pruned int
}

// Push performs the commit phase (PushOk / Fig. 28). The choice must
// satisfy the valid push oracle rule:
//
//	validSupp(nid, Q, C_M)
//	∀s ∈ Q. times[s] ≤ time(C_M)
//	canCommit(C_M, nid, st):
//	    C_M is an MCache or RCache ∧ caller(C_M) = nid
//	    ∧ isLeader(st, nid, time(C_M)) ∧ C_M > lastCommit(tree, nid)
//
// On success the supporters' times are set to time(C_M) and, if Q is a
// quorum of conf(C_M), a CCache is inserted between C_M and its children.
func (s *State) Push(nid types.NodeID, ch PushChoice) (PushResult, error) {
	cm := s.Tree.Get(ch.CM)
	if cm == nil || !cm.IsCommand() || cm.Caller != nid {
		return PushResult{}, fmt.Errorf("%w: C_M=%v", ErrBadPushTarget, cm)
	}
	if !s.IsLeader(nid, cm.Time) {
		return PushResult{}, fmt.Errorf("%w: push by %s at %d, observed %d", ErrNotLeader, nid, cm.Time, s.Times[nid])
	}
	if last := s.Tree.LastCommit(nid); last != nil && !cm.Greater(last) {
		return PushResult{}, fmt.Errorf("%w: target %s does not exceed last commit %s", ErrBadPushTarget, cm, last)
	}
	conf := s.ConfAt(cm)
	if !validSupp(nid, ch.Q, conf) {
		return PushResult{}, fmt.Errorf("%w: nid=%s Q=%s conf(C_M)=%s", ErrBadSupporters, nid, ch.Q, conf)
	}
	for _, id := range ch.Q.Slice() {
		if s.Times[id] > cm.Time {
			return PushResult{}, fmt.Errorf("%w: %s has seen %d > %d", ErrStaleTime, id, s.Times[id], cm.Time)
		}
	}
	s.setTimes(ch.Q, cm.Time)
	res := PushResult{Target: cm, Quorum: conf.IsQuorum(ch.Q)}
	if res.Quorum {
		res.CCache = s.Tree.InsertBtw(cm.ID, Cache{
			Kind:   KindC,
			Caller: nid,
			Time:   cm.Time,
			Vrsn:   cm.Vrsn,
			Supp:   ch.Q,
			Conf:   conf,
		})
		if s.Rules.StopTheWorld && committedRCacheOnPath(s.Tree, res.CCache) {
			res.Pruned = s.Tree.PruneOffBranch(res.CCache.ID)
		}
	}
	return res, nil
}

// committedRCacheOnPath reports whether the newly committed prefix ending at
// cc contains an RCache that this CCache is the first to commit.
func committedRCacheOnPath(t *Tree, cc *Cache) bool {
	for _, anc := range t.PathToRoot(cc.ID) {
		if anc.ID == cc.ID {
			continue
		}
		switch anc.Kind {
		case KindC:
			return false // earlier commits already covered everything above
		case KindR:
			return true
		case KindE, KindM:
			// Plain log entries; keep scanning toward the root.
		}
	}
	return false
}

// validSupp implements validSupp(nid, Q, C) from Fig. 26: the caller votes
// for itself and every supporter belongs to the effective configuration.
func validSupp(nid types.NodeID, q types.NodeSet, conf config.Config) bool {
	return q.Contains(nid) && q.SubsetOf(conf.Members())
}

// CommittedBranch returns the committed prefix of the tree: the caches on
// the path from the root to the greatest CCache, in root-first order. Under
// replicated state safety this is well defined; if two incomparable CCaches
// exist (safety violated) it returns the branch of the greater one.
func (s *State) CommittedBranch() []*Cache {
	var top *Cache
	for _, c := range s.Tree.CCaches() {
		if top == nil || c.Greater(top) {
			top = c
		}
	}
	if top == nil {
		return nil
	}
	path := s.Tree.PathToRoot(top.ID)
	// PathToRoot is leaf-first; reverse to root-first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// CommittedMethods returns the method IDs committed so far, in log order —
// the client-visible replicated log of the SMR abstraction.
func (s *State) CommittedMethods() []types.MethodID {
	var out []types.MethodID
	for _, c := range s.CommittedBranch() {
		if c.Kind == KindM {
			out = append(out, c.Method)
		}
	}
	return out
}

// CurrentConfig returns the configuration in effect on the committed
// branch: the configuration of the greatest CCache (conf₀ if none).
func (s *State) CurrentConfig() config.Config {
	branch := s.CommittedBranch()
	if len(branch) == 0 {
		return s.Tree.Root().Conf
	}
	return branch[len(branch)-1].Conf
}
