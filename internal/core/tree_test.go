package core

import (
	"strings"
	"testing"

	"adore/internal/config"
	"adore/internal/types"
)

func majority3() config.Config {
	return config.NewMajorityConfig(types.Range(1, 3))
}

func TestNewTreeRoot(t *testing.T) {
	tr := NewTree(majority3())
	root := tr.Root()
	if root == nil {
		t.Fatal("no root")
	}
	if root.Kind != KindC {
		t.Errorf("root kind = %v, want CCache", root.Kind)
	}
	if root.Time != 0 || root.Vrsn != 0 {
		t.Errorf("root stamp = %v, want 0.0", root.Stamp())
	}
	if !root.Supp.Equal(types.Range(1, 3)) {
		t.Errorf("root supporters = %v, want conf₀ members", root.Supp)
	}
	if tr.Len() != 1 {
		t.Errorf("tree size = %d, want 1", tr.Len())
	}
}

func TestAddLeaf(t *testing.T) {
	tr := NewTree(majority3())
	c := tr.AddLeaf(tr.Root().ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Method: 7, Conf: majority3()})
	if c.Parent != tr.Root().ID {
		t.Errorf("leaf parent = %d", c.Parent)
	}
	if got := tr.Children(tr.Root().ID); len(got) != 1 || got[0] != c.ID {
		t.Errorf("root children = %v", got)
	}
	if !tr.IsAncestor(tr.Root().ID, c.ID) {
		t.Error("root should be ancestor of leaf")
	}
	if tr.IsAncestor(c.ID, tr.Root().ID) {
		t.Error("leaf must not be ancestor of root")
	}
}

func TestInsertBtwReparentsChildren(t *testing.T) {
	tr := NewTree(majority3())
	root := tr.Root().ID
	m1 := tr.AddLeaf(root, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Method: 1, Conf: majority3()})
	m2 := tr.AddLeaf(m1.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 2, Method: 2, Conf: majority3()})
	m3 := tr.AddLeaf(m1.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 3, Method: 3, Conf: majority3()})
	cc := tr.InsertBtw(m1.ID, Cache{Kind: KindC, Caller: 1, Time: 1, Vrsn: 1, Supp: types.Range(1, 2), Conf: majority3()})

	if cc.Parent != m1.ID {
		t.Errorf("CCache parent = %d, want %d", cc.Parent, m1.ID)
	}
	if kids := tr.Children(m1.ID); len(kids) != 1 || kids[0] != cc.ID {
		t.Errorf("m1 children = %v, want only the CCache", kids)
	}
	kids := tr.Children(cc.ID)
	if len(kids) != 2 {
		t.Fatalf("CCache children = %v, want m2 and m3", kids)
	}
	if tr.Get(m2.ID).Parent != cc.ID || tr.Get(m3.ID).Parent != cc.ID {
		t.Error("children not re-parented under the CCache")
	}
	if !tr.IsAncestor(cc.ID, m2.ID) || !tr.IsAncestor(m1.ID, cc.ID) {
		t.Error("ancestry broken after InsertBtw")
	}
}

func TestNCA(t *testing.T) {
	tr := NewTree(majority3())
	root := tr.Root().ID
	a := tr.AddLeaf(root, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: majority3()})
	b1 := tr.AddLeaf(a.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 2, Conf: majority3()})
	b2 := tr.AddLeaf(a.ID, Cache{Kind: KindM, Caller: 2, Time: 2, Vrsn: 1, Conf: majority3()})
	if got := tr.NCA(b1.ID, b2.ID); got != a.ID {
		t.Errorf("NCA(b1,b2) = %d, want %d", got, a.ID)
	}
	if got := tr.NCA(a.ID, b1.ID); got != a.ID {
		t.Errorf("NCA(ancestor,descendant) = %d, want the ancestor", got)
	}
	if got := tr.NCA(root, b2.ID); got != root {
		t.Errorf("NCA(root,x) = %d, want root", got)
	}
}

func TestRDist(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	root := tr.Root().ID
	// Branch 1: root → R1 → M → C1; Branch 2: root → R2.
	r1 := tr.AddLeaf(root, Cache{Kind: KindR, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	m := tr.AddLeaf(r1.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 2, Conf: cf})
	c1 := tr.AddLeaf(m.ID, Cache{Kind: KindC, Caller: 1, Time: 1, Vrsn: 2, Supp: types.Range(1, 2), Conf: cf})
	r2 := tr.AddLeaf(root, Cache{Kind: KindR, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})

	cases := []struct {
		a, b types.CID
		want int
	}{
		{root, root, 0},
		{root, r1.ID, 0}, // endpoint RCaches don't count
		{root, m.ID, 1},  // R1 strictly between
		{root, c1.ID, 1},
		{r1.ID, c1.ID, 0}, // R1 is an endpoint
		{r2.ID, c1.ID, 1}, // path r2→root→r1→m→c1 contains R1 only (r2 endpoint)
		{m.ID, r2.ID, 1},  // R1 interior on one side, R2 endpoint
		{c1.ID, r2.ID, 1},
	}
	for _, c := range cases {
		if got := tr.RDist(c.a, c.b); got != c.want {
			t.Errorf("RDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := tr.RDist(c.b, c.a); got != c.want {
			t.Errorf("RDist(%d,%d) not symmetric", c.b, c.a)
		}
	}
	if got := tr.TreeRDist(); got != 1 {
		t.Errorf("TreeRDist = %d, want 1", got)
	}
}

func TestRDistNCAIsInteriorRCache(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	r := tr.AddLeaf(tr.Root().ID, Cache{Kind: KindR, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	a := tr.AddLeaf(r.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 2, Conf: cf})
	b := tr.AddLeaf(r.ID, Cache{Kind: KindM, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})
	// NCA(a,b) is the RCache itself: it lies on the path and must count.
	if got := tr.RDist(a.ID, b.ID); got != 1 {
		t.Errorf("RDist with RCache NCA = %d, want 1", got)
	}
}

func TestGreaterTotalOrder(t *testing.T) {
	cf := majority3()
	m := &Cache{Kind: KindM, Time: 2, Vrsn: 1, Conf: cf}
	c := &Cache{Kind: KindC, Time: 2, Vrsn: 1, Conf: cf}
	e := &Cache{Kind: KindE, Time: 3, Vrsn: 0, Conf: cf}
	if !c.Greater(m) {
		t.Error("CCache must exceed same-stamp MCache")
	}
	if m.Greater(c) {
		t.Error("MCache must not exceed same-stamp CCache")
	}
	if !e.Greater(c) {
		t.Error("later time must dominate kind tie-break")
	}
	if m.Greater(m) {
		t.Error("> must be irreflexive")
	}
}

func TestMostRecentAndActiveCache(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	e := tr.AddLeaf(tr.Root().ID, Cache{Kind: KindE, Caller: 1, Time: 1, Vrsn: 0, Supp: types.Range(1, 2), Conf: cf})
	m := tr.AddLeaf(e.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Method: 5, Conf: cf})

	// S2 only voted for the ECache; votes transfer no log knowledge, so
	// S2's most recent observed cache is still the root.
	if got := tr.MostRecent(types.NewNodeSet(2)); got == nil || got.ID != tr.Root().ID {
		t.Errorf("MostRecent({S2}) = %v, want the root", got)
	}
	// The caller itself has observed its own ECache (superseded here by
	// its MCache, checked below).
	if got := tr.MostRecent(types.NewNodeSet(1)); got == nil || got.ID != m.ID {
		t.Errorf("MostRecent({S1}) = %v, want the MCache", got)
	}
	// S1 called the MCache, so it has seen further.
	if got := tr.MostRecent(types.NewNodeSet(1)); got == nil || got.ID != m.ID {
		t.Errorf("MostRecent({S1}) = %v, want the MCache", got)
	}
	// S3 only supports the root.
	if got := tr.MostRecent(types.NewNodeSet(3)); got == nil || got.ID != tr.Root().ID {
		t.Errorf("MostRecent({S3}) = %v, want the root", got)
	}
	// Nobody in Q supports anything.
	if got := tr.MostRecent(types.NewNodeSet(9)); got != nil {
		t.Errorf("MostRecent({S9}) = %v, want nil", got)
	}
	if got := tr.ActiveCache(1); got == nil || got.ID != m.ID {
		t.Errorf("ActiveCache(S1) = %v, want the MCache", got)
	}
	if got := tr.ActiveCache(2); got != nil {
		t.Errorf("ActiveCache(S2) = %v, want nil (S2 never called)", got)
	}
}

func TestLastCommit(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	if got := tr.LastCommit(1); got == nil || got.ID != tr.Root().ID {
		t.Errorf("LastCommit(S1) = %v, want root", got)
	}
	if got := tr.LastCommit(9); got != nil {
		t.Errorf("LastCommit(S9) = %v, want nil", got)
	}
	m := tr.AddLeaf(tr.Root().ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	cc := tr.InsertBtw(m.ID, Cache{Kind: KindC, Caller: 1, Time: 1, Vrsn: 1, Supp: types.NewNodeSet(1, 2), Conf: cf})
	if got := tr.LastCommit(2); got == nil || got.ID != cc.ID {
		t.Errorf("LastCommit(S2) = %v, want new CCache", got)
	}
	if got := tr.LastCommit(3); got == nil || got.ID != tr.Root().ID {
		t.Errorf("LastCommit(S3) = %v, want root (did not support the commit)", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	tr.AddLeaf(tr.Root().ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	clone := tr.Clone()
	clone.AddLeaf(clone.Root().ID, Cache{Kind: KindM, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})
	if tr.Len() == clone.Len() {
		t.Error("mutating the clone changed the original's size")
	}
	if tr.Key() == clone.Key() {
		t.Error("diverged trees share a key")
	}
}

func TestKeyCanonicalAcrossSiblingOrder(t *testing.T) {
	cf := majority3()
	build := func(order []types.MethodID) *Tree {
		tr := NewTree(cf)
		for i, m := range order {
			tr.AddLeaf(tr.Root().ID, Cache{Kind: KindM, Caller: types.NodeID(i + 1), Time: types.Time(i + 1), Vrsn: 1, Method: m, Conf: cf})
		}
		return tr
	}
	a := build([]types.MethodID{1, 2})
	b := NewTree(cf)
	b.AddLeaf(b.Root().ID, Cache{Kind: KindM, Caller: 2, Time: 2, Vrsn: 1, Method: 2, Conf: cf})
	b.AddLeaf(b.Root().ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Method: 1, Conf: cf})
	if a.Key() != b.Key() {
		t.Error("isomorphic trees (different insertion order) must share a key")
	}
}

func TestPruneOffBranch(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	root := tr.Root().ID
	keep := tr.AddLeaf(root, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	keepChild := tr.AddLeaf(keep.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 2, Conf: cf})
	lose := tr.AddLeaf(root, Cache{Kind: KindM, Caller: 2, Time: 2, Vrsn: 1, Conf: cf})
	loseChild := tr.AddLeaf(lose.ID, Cache{Kind: KindM, Caller: 2, Time: 2, Vrsn: 2, Conf: cf})

	removed := tr.PruneOffBranch(keep.ID)
	if removed != 2 {
		t.Errorf("pruned %d caches, want 2", removed)
	}
	if tr.Get(lose.ID) != nil || tr.Get(loseChild.ID) != nil {
		t.Error("off-branch caches survived pruning")
	}
	if tr.Get(keep.ID) == nil || tr.Get(keepChild.ID) == nil || tr.Get(root) == nil {
		t.Error("on-branch caches were pruned")
	}
	if kids := tr.Children(root); len(kids) != 1 || kids[0] != keep.ID {
		t.Errorf("root children after prune = %v", kids)
	}
}

func TestRenderContainsAllCaches(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	tr.AddLeaf(tr.Root().ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Method: 42, Conf: cf})
	out := tr.Render()
	if !strings.Contains(out, "M42") || !strings.Contains(out, "C1⟨") {
		t.Errorf("render missing caches:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != tr.Len() {
		t.Errorf("render has %d lines, want %d", got, tr.Len())
	}
}

func TestDepth(t *testing.T) {
	cf := majority3()
	tr := NewTree(cf)
	if tr.Depth(tr.Root().ID) != 0 {
		t.Error("root depth must be 0")
	}
	a := tr.AddLeaf(tr.Root().ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 1, Conf: cf})
	b := tr.AddLeaf(a.ID, Cache{Kind: KindM, Caller: 1, Time: 1, Vrsn: 2, Conf: cf})
	if tr.Depth(b.ID) != 2 {
		t.Errorf("depth = %d, want 2", tr.Depth(b.ID))
	}
}
