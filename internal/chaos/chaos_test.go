package chaos

import (
	"strings"
	"testing"
	"time"

	"adore/internal/types"
)

// TestScheduleDeterminism is the reproducibility contract: the entire
// injected fault plan is a pure function of (seed, options), so two
// generations hash identically and a failing seed printed by CI replays
// the same plan locally.
func TestScheduleDeterminism(t *testing.T) {
	opt := Options{}
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed, opt), Generate(seed, opt)
		if a.Hash() != b.Hash() {
			t.Fatalf("seed %d: two generations differ:\n%s\n--- vs ---\n%s", seed, a, b)
		}
	}
	if Generate(1, opt).Hash() == Generate(2, opt).Hash() {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

// TestScheduleEventsAreExecutable validates the generator's bookkeeping
// over many seeds: every event must be executable when its turn comes —
// restarts target crashed nodes, at most a minority is ever down, partition
// sides are disjoint, heal only fires while partitioned.
func TestScheduleEventsAreExecutable(t *testing.T) {
	opt := Options{Duration: 10 * time.Second} // long horizon = many events
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed, opt)
		crashed := map[types.NodeID]bool{}
		partitioned := false
		last := time.Duration(-1)
		for _, e := range s.Events {
			if e.At < last {
				t.Fatalf("seed %d: events out of order at %s", seed, e)
			}
			last = e.At
			switch e.Kind {
			case EvPartition:
				if partitioned {
					t.Fatalf("seed %d: stacked partition: %s", seed, e)
				}
				seen := map[types.NodeID]bool{}
				for _, id := range append(append([]types.NodeID{}, e.A...), e.B...) {
					if seen[id] {
						t.Fatalf("seed %d: node S%d on both sides: %s", seed, id, e)
					}
					seen[id] = true
				}
				partitioned = true
			case EvPartitionLeader, EvIsolate, EvIsolateLeader, EvIsolateFollower:
				if partitioned {
					t.Fatalf("seed %d: stacked partition: %s", seed, e)
				}
				partitioned = true
			case EvPartialPartition:
				if partitioned {
					t.Fatalf("seed %d: stacked partition: %s", seed, e)
				}
				if len(e.A) != 1 || len(e.B) != 1 || e.A[0] == e.B[0] {
					t.Fatalf("seed %d: malformed partial partition: %s", seed, e)
				}
				partitioned = true
			case EvHeal:
				if !partitioned {
					t.Fatalf("seed %d: heal without a partition", seed)
				}
				partitioned = false
			case EvCrash:
				if crashed[e.Node] {
					t.Fatalf("seed %d: double crash of S%d", seed, e.Node)
				}
				crashed[e.Node] = true
				if len(crashed) > maxCrashed(s.Nodes) {
					t.Fatalf("seed %d: %d nodes down at once", seed, len(crashed))
				}
			case EvRestart:
				if !crashed[e.Node] {
					t.Fatalf("seed %d: restart of running S%d", seed, e.Node)
				}
				delete(crashed, e.Node)
			case EvDropRate, EvReconfigRemove, EvReconfigAdd, EvReconfigShed,
				EvTransferLeader, EvReconfigDropLeader:
				// Always executable.
			default:
				t.Fatalf("seed %d: unknown event kind %v", seed, e.Kind)
			}
		}
	}
}

// TestRunSmoke executes one short seed end to end over in-memory WALs and
// expects a clean report with real work done.
func TestRunSmoke(t *testing.T) {
	rep, err := RunSeed(7, Options{Duration: 700 * time.Millisecond, MemWAL: true, SettleTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations on a healthy model:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Ops == 0 {
		t.Fatal("no client operations ran")
	}
	t.Log(rep)
}

// TestRunFileWAL is the honest-durability smoke: file-backed WALs with
// torn-write and write-error crash modes in the mix (seed 38's plan
// contains both, plus restarts).
func TestRunFileWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("file-backed chaos run in -short mode")
	}
	rep, err := RunSeed(38, Options{Duration: 1200 * time.Millisecond, SettleTimeout: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations on a healthy model:\n%s", strings.Join(rep.Violations, "\n"))
	}
	t.Log(rep)
}

// TestRunReplaysIdenticalPlan runs the same seed twice and compares the
// schedule fingerprints embedded in the reports: the fault plan a seed
// injects is identical run over run (the cluster's internal interleavings
// are not, which is exactly the point — one plan, many schedules, same
// oracles).
func TestRunReplaysIdenticalPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("double chaos run in -short mode")
	}
	opt := Options{Duration: 500 * time.Millisecond, MemWAL: true, SettleTimeout: 15 * time.Second}
	a, err := RunSeed(23, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(23, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same seed produced different plans: %s vs %s", a.Hash, b.Hash)
	}
	if a.Events != b.Events {
		t.Fatalf("same seed executed different event counts: %d vs %d", a.Events, b.Events)
	}
}

// TestTeethR2 reintroduces the R2 bug (accepting a reconfiguration while an
// earlier one is uncommitted) and checks the harness catches it: a stale
// minority leader asked to shrink the cluster twice ends up with a config
// whose quorum fits inside its partition, commits on a branch the majority
// never saw, and the committed-prefix oracle flags the divergence. The
// control run — same schedule, guards on — must stay clean.
func TestTeethR2(t *testing.T) {
	if testing.Short() {
		t.Skip("teeth run in -short mode")
	}
	opt := Options{Duration: 1200 * time.Millisecond, MemWAL: true, SettleTimeout: 15 * time.Second}
	sched := R2ViolationSchedule(opt)

	broken := opt
	broken.DisableR2 = true
	rep, err := Run(sched, broken)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("R2 disabled and the double-shed schedule executed, but no violation was detected — the harness has no teeth")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "divergence") || strings.Contains(v, "re-applied") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a committed-prefix violation, got:\n%s", strings.Join(rep.Violations, "\n"))
	}
	t.Logf("caught: %s", rep.Violations[0])

	control, err := Run(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !control.Ok() {
		t.Fatalf("guards on, same schedule: unexpected violations:\n%s", strings.Join(control.Violations, "\n"))
	}
}
