package chaos

import (
	"fmt"
	"sort"
	"time"

	"adore/internal/kvstore"
	"adore/internal/linear"
	"adore/internal/raft"
	"adore/internal/raft/sim"
	"adore/internal/refine"
	"adore/internal/types"
)

// This file replays chaos schedules deterministically: the same Schedule
// that Run executes against live goroutines is driven here through
// internal/raft/sim — single-threaded, on a logical clock, every random
// draw from the schedule's seed. One schedule millisecond is one sim tick,
// so the generated timelines (events in [10%, 80%] of the horizon, clients
// paced across it) keep their shape.
//
// On top of the live runner's oracles (election safety, term and commit
// monotonicity, applied-prefix agreement, per-key linearizability), the
// deterministic run checks executable refinement: every few ticks each
// replica's raw log and commit index are fed through
// refine.ExecChecker.ObserveNode, which rebuilds the Adore cache tree and
// requires logMatch plus one committed branch. A run of the R2-disabled
// schedule fails this oracle at the exact tick the histories fork.

// simTick is the schedule-time quantum: one simulator tick per millisecond
// of scheduled time.
const simTick = time.Millisecond

// refineEvery is how many ticks pass between executable-refinement sweeps.
const refineEvery = 25

// crashGraceTicks bounds how long an armed torn/wound fault may wait for a
// write before the hard crash lands (the live executor waits 50ms).
const crashGraceTicks = 50

// ticksOf converts a schedule offset to sim ticks (at least 1).
func ticksOf(d time.Duration) int64 {
	t := int64(d / simTick)
	if t < 1 {
		t = 1
	}
	return t
}

// RunSimSeed generates the schedule for seed and replays it in the
// deterministic simulator.
func RunSimSeed(seed int64, opt Options) (*Report, error) {
	return RunSim(Generate(seed, opt), opt)
}

// groupSeedStride decorrelates the groups' random draws (election jitter,
// latency, loss) while keeping each group's run a pure function of
// (schedule seed, group). Same stride the multiraft host uses.
const groupSeedStride = 1000003

// RunSim executes a schedule in the deterministic simulator and returns
// the same Report shape as Run, plus the replayable journal. Two calls
// with equal schedule and options produce byte-identical journals.
//
// With opt.Groups > 1 the schedule is replayed once per raft group — the
// sharded deployment's verification story. Groups share nothing in the
// simulator (as in the real host, consensus state is fully per-group; the
// shared transport and tick loop have their own tests), so the replay keeps
// each group an independent deterministic run: node-level nemesis events
// apply to every group, exactly as one dead process takes down all the
// groups it hosts, while group-targeted events (EvWALWipe) apply only to
// their group. Each client's script is routed by kvstore.ShardOf, each
// group checks every oracle over its own shard of the workload, and
// violations come back prefixed "gN:" — a cross-group storage bug shows up
// as one group's violations against the other groups' clean runs.
func RunSim(sched *Schedule, opt Options) (*Report, error) {
	opt.defaults()
	if sched.Nodes > 0 {
		opt.Nodes = sched.Nodes
	}
	if opt.Groups <= 1 {
		return runSimGroup(sched, opt, 0, 1)
	}
	rep := &Report{Seed: sched.Seed, Hash: sched.Hash(), Events: len(sched.Events)}
	for g := 0; g < opt.Groups; g++ {
		sub, err := runSimGroup(sched, opt, raft.GroupID(g), opt.Groups)
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", g, err)
		}
		rep.Ops += sub.Ops
		rep.Timeouts += sub.Timeouts
		rep.Faults += sub.Faults
		rep.addStats(sub.Stats)
		for _, v := range sub.Violations {
			rep.Violations = append(rep.Violations, fmt.Sprintf("g%d: %s", g, v))
		}
		for _, w := range sub.Warnings {
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("g%d: %s", g, w))
		}
		rep.Journal = append(rep.Journal, []byte(fmt.Sprintf("=== group %d ===\n", g))...)
		rep.Journal = append(rep.Journal, sub.Journal...)
	}
	return rep, nil
}

// runSimGroup replays one group's view of the schedule: its shard of every
// client's script, all node-level events, and only its own group-targeted
// events.
func runSimGroup(sched *Schedule, opt Options, g raft.GroupID, groups int) (*Report, error) {
	scripts := sched.Scripts
	if groups > 1 {
		scripts = make([][]ClientOp, len(sched.Scripts))
		for ci, script := range sched.Scripts {
			for _, op := range script {
				if kvstore.ShardOf(op.Key, groups) == g {
					scripts[ci] = append(scripts[ci], op)
				}
			}
		}
	}
	perKey := map[string]int{}
	for _, script := range scripts {
		for _, op := range script {
			perKey[op.Key]++
		}
	}
	for k, cnt := range perKey {
		if cnt > 62 {
			return nil, fmt.Errorf("chaos: key %q would see %d ops, beyond the checker's 62-event bound; raise Keys or lower the workload", k, cnt)
		}
	}
	rep := &Report{Seed: sched.Seed, Hash: sched.Hash(), Events: len(sched.Events)}

	et := int(ticksOf(opt.ElectionTimeoutMin))
	r := &simRun{
		s: sim.New(sim.Options{
			Nodes:              opt.Nodes,
			Seed:               sched.Seed + groupSeedStride*int64(g),
			ElectionTicks:      et,
			JitterTicks:        et,
			HeartbeatTicks:     max(1, et/3),
			DisableR2:          opt.DisableR2,
			DisableR3:          opt.DisableR3,
			DisablePreVote:     opt.DisablePreVote,
			DisableCheckQuorum: opt.DisableCheckQuorum,
			DisableLeaseGuard:  opt.DisableLeaseGuard,
			SnapshotThreshold:  opt.snapThreshold(),
		}),
		opt:        opt,
		group:      g,
		et:         int64(et),
		horizon:    ticksOf(opt.Duration),
		opTimeout:  ticksOf(opt.OpTimeout),
		stores:     make(map[types.NodeID]*kvstore.Store, opt.Nodes),
		applied:    make(map[types.NodeID][]raft.ApplyMsg, opt.Nodes),
		incarn:     make(map[types.NodeID]int, opt.Nodes),
		leaders:    make(map[types.Time]types.NodeID),
		lastTerm:   make(map[incKey]types.Time),
		lastCommit: make(map[incKey]int),
		violations: make(map[string]bool),
		staleFor:   make(map[types.NodeID]int64),
		curLeader:  types.NoNode,
		members:    append([]types.NodeID(nil), types.Range(1, types.NodeID(opt.Nodes)).Slice()...),
	}
	for _, id := range r.s.IDs() {
		r.stores[id] = kvstore.NewStore()
	}
	r.s.OnApply(func(id types.NodeID, batch []raft.ApplyMsg) {
		r.applied[id] = append(r.applied[id], batch...)
		for _, msg := range batch {
			r.stores[id].Apply(msg)
		}
	})
	// The sim's apply hook runs synchronously inside the same ready drain
	// that raises TakeSnapshot, so by the time the capture hook fires the
	// store has applied exactly the requested prefix — any mismatch is a
	// harness bug, not a race.
	r.s.OnSnapshot(func(id types.NodeID, index int) []byte {
		data, applied, err := r.stores[id].SaveSnapshot()
		if err != nil {
			return nil // abort this snapshot; the policy re-fires later
		}
		if applied != index {
			panic(fmt.Sprintf("chaos: snapshot capture on S%d saw applied index %d, policy requested %d", id, applied, index))
		}
		return data
	})
	r.exec = refine.NewExec(types.NewNodeSet(r.members...))

	for ci, script := range scripts {
		r.clients = append(r.clients, newSimClient(ci, script, r.horizon))
	}

	// Main phase: tick the cluster, fire due nemesis events, drive clients,
	// sample the safety monitors.
	nextEvent := 0
	for now := int64(0); now < r.horizon; now++ {
		r.s.Step()
		for nextEvent < len(sched.Events) && ticksOf(sched.Events[nextEvent].At) <= r.s.Now() {
			r.apply(sched.Events[nextEvent])
			nextEvent++
		}
		r.driveReconfig()
		r.tickClients()
		r.sampleMonitor()
		if r.s.Now()%refineEvery == 0 {
			r.checkRefinement()
		}
	}

	// Epilogue: heal everything, restart the fallen, let in-flight client
	// ops resolve or time out, and wait for commit indexes to agree.
	r.s.Heal()
	r.s.SetDropRate(0)
	for _, id := range r.s.IDs() {
		r.s.ClearFaults(id)
		r.restart(id)
	}
	settle := r.s.Now() + ticksOf(opt.SettleTimeout)
	stable := 0
	converged := false
	for r.s.Now() < settle {
		r.s.Step()
		r.driveReconfig()
		r.tickClients()
		r.sampleMonitor()
		if r.s.Now()%refineEvery == 0 {
			r.checkRefinement()
		}
		if r.converged() && !r.clientsPending() {
			stable++
			if stable >= 3 {
				converged = true
				break
			}
		} else {
			stable = 0
		}
	}
	if !converged {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf("cluster did not converge within %s of the run ending", opt.SettleTimeout))
	}
	r.checkRefinement()

	for _, cl := range r.clients {
		rep.Ops += cl.ops
		rep.Timeouts += cl.timeouts
	}
	rep.Faults = r.s.Faults()
	for _, id := range r.s.IDs() {
		rep.addStats(r.s.Counters(id))
	}
	rep.Violations = append(rep.Violations, r.monitorReport()...)
	rep.Violations = append(rep.Violations, checkAppliedStreams(r.applied, opt.Nodes)...)
	rep.Violations = append(rep.Violations, checkLinearizable(r.history)...)
	rep.Violations = append(rep.Violations, r.refineViolations...)
	rep.Journal = append([]byte(nil), r.s.Journal()...)
	return rep, nil
}

// incKey identifies one incarnation of one node for the monotonicity
// oracles (a restart legitimately resets the volatile commit index).
type incKey struct {
	id  types.NodeID
	inc int
}

// simRun is the deterministic counterpart of Run's goroutine soup: one
// struct, stepped synchronously.
type simRun struct {
	s         *sim.Cluster
	opt       Options
	group     raft.GroupID // which group's view this replay is (0 = single-group)
	et        int64        // election interval in ticks
	horizon   int64
	opTimeout int64

	stores  map[types.NodeID]*kvstore.Store
	applied map[types.NodeID][]raft.ApplyMsg
	incarn  map[types.NodeID]int
	clients []*simClient
	history linear.History

	// nemesis state (mirrors executor)
	members    []types.NodeID
	near, far  []types.NodeID
	partLeader types.NodeID // NoNode when no leader partition is active

	// drop-leader reconfiguration in flight: the target membership a
	// leader must transfer out of before the change is proposed (mirrors
	// cluster.Reconfigure's retry loop, one attempt per tick).
	dropPending  bool
	dropTarget   types.NodeSet
	dropDeadline int64 // give up on the pending drop after this tick

	// monitor state
	leaders    map[types.Time]types.NodeID
	lastTerm   map[incKey]types.Time
	lastCommit map[incKey]int
	violations map[string]bool

	// election-disruption oracle state
	curLeader        types.NodeID // established-leader candidate (NoNode = none)
	curLeaderTerm    types.Time
	curLeaderMembers types.NodeSet          // configuration healthyFor was accumulated under
	healthyFor       int64                  // consecutive ticks curLeader has been healthy
	suppressUntil    int64                  // disruption oracle muted through this tick (transfers)
	staleFor         map[types.NodeID]int64 // consecutive ticks leading without a linked quorum

	// executable refinement
	exec             *refine.ExecChecker
	refineBroken     bool
	refineViolations []string
}

// restart boots a fallen node (no-op when healthy) with a fresh store; the
// replayed apply stream rebuilds it, and the accumulated stream keeps both
// incarnations for checkAppliedStreams.
func (r *simRun) restart(id types.NodeID) {
	if r.s.Alive(id) {
		return
	}
	r.incarn[id]++
	r.stores[id] = kvstore.NewStore()
	r.s.Restart(id)
}

// sampleMonitor is the monitor.sample of the deterministic run: election
// safety plus per-incarnation term and commit monotonicity.
func (r *simRun) sampleMonitor() {
	for _, id := range r.s.IDs() {
		term, role, _ := r.s.Status(id)
		key := incKey{id, r.incarn[id]}
		if last, ok := r.lastTerm[key]; ok && term < last {
			r.violations[fmt.Sprintf("term went backwards on S%d: %d after %d", id, term, last)] = true
		}
		r.lastTerm[key] = term
		ci := r.s.CommitIndex(id)
		if last, ok := r.lastCommit[key]; ok && ci < last {
			r.violations[fmt.Sprintf("commit index went backwards on S%d: %d after %d", id, ci, last)] = true
		}
		r.lastCommit[key] = ci
		if role == raft.Leader {
			if prev, ok := r.leaders[term]; ok && prev != id {
				r.violations[fmt.Sprintf("two leaders in term %d: S%d and S%d", term, prev, id)] = true
			} else {
				r.leaders[term] = id
			}
		}
	}
	r.checkElections()
	r.checkLeases()
}

// checkLeases is the stale-lease oracle, probed every tick: any node that
// would answer a lease read right now must grant an index at or beyond
// every alive replica's commit index. A valid lease means no newer leader
// can have been elected (every election path that could outrun the lease
// window — transfer, reconfig — invalidates it first), so nothing can have
// committed past the holder's read floor; a grant below the global commit
// frontier is a stale read waiting to be served. LeaseProbe is
// side-effect-free, so probing does not perturb the run.
func (r *simRun) checkLeases() {
	maxCommit := 0
	for _, id := range r.s.IDs() {
		if r.s.Alive(id) {
			if ci := r.s.CommitIndex(id); ci > maxCommit {
				maxCommit = ci
			}
		}
	}
	for _, id := range r.s.IDs() {
		if !r.s.Alive(id) {
			continue
		}
		if _, role, _ := r.s.Status(id); role != raft.Leader {
			continue
		}
		if idx, ok := r.s.LeaseProbe(id); ok && idx < maxCommit {
			r.violations[fmt.Sprintf("stale lease on S%d: would serve reads at index %d while index %d is committed elsewhere", id, idx, maxCommit)] = true
			r.s.Journalf("stale-lease violation: S%d idx=%d commit=%d", id, idx, maxCommit)
		}
	}
}

// checkElections runs the two election-robustness oracles every tick.
//
// Stale-leader oracle (CheckQuorum's contract): an alive node still
// claiming leadership long after its last linked quorum disappeared should
// have stepped down within an election interval; tolerating several
// intervals of slack, a persistent minority reign is a violation.
//
// Disruption oracle (Pre-Vote + sticky leadership's contract): a leader
// that has been continuously healthy — alive, no probabilistic loss, a
// quorum of its configuration alive and bidirectionally linked — for two
// full election intervals is "established": its quorum hears heartbeats,
// so every member of it denies (pre-)votes, and no rejoining node can
// assemble a majority. If such a leader is deposed anyway outside a
// leadership-transfer window, election robustness is broken.
func (r *simRun) checkElections() {
	estThreshold := 4 * r.et // 2 × (ElectionTicks + JitterTicks)
	staleThreshold := 6 * r.et
	now := r.s.Now()

	for _, id := range r.s.IDs() {
		_, role, _ := r.s.Status(id)
		if !r.s.Alive(id) || role != raft.Leader || !r.s.Members(id).Contains(id) || r.quorumLinked(id) {
			delete(r.staleFor, id)
			continue
		}
		r.staleFor[id]++
		if r.staleFor[id] == staleThreshold {
			r.violations[fmt.Sprintf("stale leader S%d kept leading %d ticks after losing quorum contact (CheckQuorum should step it down)", id, staleThreshold)] = true
			r.s.Journalf("stale-leader violation: S%d", id)
		}
	}

	if r.curLeader != types.NoNode {
		term, role, _ := r.s.Status(r.curLeader)
		if !r.s.Alive(r.curLeader) {
			r.curLeader, r.healthyFor = types.NoNode, 0
		} else if role != raft.Leader || term != r.curLeaderTerm {
			if r.healthyFor >= estThreshold && now >= r.suppressUntil {
				r.violations[fmt.Sprintf("healthy leader S%d (term %d) deposed by election disruption", r.curLeader, r.curLeaderTerm)] = true
				r.s.Journalf("disruption violation: S%d term %d", r.curLeader, r.curLeaderTerm)
			}
			r.curLeader, r.healthyFor = types.NoNode, 0
		}
	}
	if r.curLeader == types.NoNode {
		if lid, ok := r.s.Leader(); ok && r.s.Alive(lid) {
			term, _, _ := r.s.Status(lid)
			r.curLeader, r.curLeaderTerm, r.healthyFor = lid, term, 0
			r.curLeaderMembers = r.s.Members(lid)
		}
	}
	if r.curLeader != types.NoNode {
		// "Established" is relative to a configuration: the guarantee rests
		// on the leader's quorum having heard heartbeats for two election
		// intervals, and a membership change swaps in a quorum that hasn't.
		// (A voter added one tick ago counts as linked here, but CheckQuorum
		// rightly won't count it until it actually acks — deposing the
		// leader then is correct behavior, not disruption.) Restart the
		// clock whenever the configuration changes.
		if m := r.s.Members(r.curLeader); !m.Equal(r.curLeaderMembers) {
			r.curLeaderMembers = m
			r.healthyFor = 0
		}
		if r.healthy(r.curLeader) {
			r.healthyFor++
		} else {
			r.healthyFor = 0
		}
	}
}

// healthy reports whether id is a leader the disruption oracle would
// protect: alive, a voter in its own configuration, no probabilistic
// message loss, and a quorum of that configuration alive and linked.
func (r *simRun) healthy(id types.NodeID) bool {
	if !r.s.Alive(id) || r.s.DropRate() > 0 {
		return false
	}
	if !r.s.Members(id).Contains(id) {
		return false
	}
	return r.quorumLinked(id)
}

// quorumLinked reports whether a majority of id's configuration (counting
// itself) is alive with a clean bidirectional link to id.
func (r *simRun) quorumLinked(id types.NodeID) bool {
	members := r.s.Members(id)
	contact := 0
	for _, m := range members.Slice() {
		if m == id || (r.s.Alive(m) && r.s.Linked(id, m)) {
			contact++
		}
	}
	return contact >= members.Len()/2+1
}

// suppress mutes the disruption oracle for a transfer window: a graceful
// handoff deposes a perfectly healthy leader on purpose.
func (r *simRun) suppress() {
	r.suppressUntil = r.s.Now() + 10*r.et
}

// driveReconfig advances a pending drop-leader reconfiguration one step:
// transfer leadership into the surviving set if the sitting leader is being
// shed, then propose the change at a leader that will survive it.
func (r *simRun) driveReconfig() {
	if !r.dropPending {
		return
	}
	if r.s.Now() > r.dropDeadline {
		r.dropPending = false // the run moved on (stacked reconfigs); give up
		return
	}
	lid, ok := r.s.Leader()
	if !ok || !r.s.Alive(lid) {
		return
	}
	if !r.dropTarget.Contains(lid) {
		if to := r.s.PickTransferTarget(lid, r.dropTarget); to != types.NoNode {
			r.s.TransferLeader(lid, to) // ErrTransferInProgress etc.: retried next tick
			r.suppress()
		}
		return
	}
	if r.s.Members(lid).Equal(r.dropTarget) {
		r.dropPending = false
		return
	}
	if _, _, err := r.s.ProposeConfig(lid, r.dropTarget); err == nil {
		r.dropPending = false
	}
}

func (r *simRun) monitorReport() []string {
	out := make([]string, 0, len(r.violations))
	for v := range r.violations {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// checkRefinement feeds every replica's retained log suffix and commit
// index through the executable-refinement checker. Compacted replicas are
// observed from their snapshot base: the fingerprint (index, term) must
// name the committed cache at that depth before the suffix is matched.
// The first violation is recorded and further sweeps stop (a forked tree
// keeps failing).
func (r *simRun) checkRefinement() {
	if r.refineBroken {
		return
	}
	for _, id := range r.s.IDs() {
		first, last := r.s.FirstIndex(id), r.s.LastIndex(id)
		log := make([]raft.LogEntry, 0, last-first+1)
		for i := first; i <= last; i++ {
			log = append(log, r.s.Entry(id, i))
		}
		err := r.exec.ObserveNodeAt(id, r.s.SnapshotIndex(id), r.s.SnapshotTerm(id), log, r.s.CommitIndex(id))
		if err != nil {
			r.refineViolations = append(r.refineViolations, err.Error())
			r.refineBroken = true
			r.s.Journalf("refinement violation: %v", err)
			return
		}
	}
}

// converged reports whether every member of the leader's configuration
// agrees on the commit index.
func (r *simRun) converged() bool {
	lid, ok := r.s.Leader()
	if !ok {
		return false
	}
	want := r.s.CommitIndex(lid)
	for _, id := range r.s.Members(lid).Slice() {
		if !r.s.Alive(id) || r.s.CommitIndex(id) != want {
			return false
		}
	}
	return true
}

func (r *simRun) clientsPending() bool {
	for _, cl := range r.clients {
		if cl.pend != nil {
			return true
		}
	}
	return false
}

// apply executes one nemesis event (the executor.apply of the sim world).
func (r *simRun) apply(e Event) {
	switch e.Kind {
	case EvPartition:
		r.clearPartition()
		r.s.Partition(e.A, e.B)
	case EvPartitionLeader:
		r.partitionLeader(e.Keep)
	case EvHeal:
		r.clearPartition()
		r.s.Heal()
	case EvIsolate:
		r.clearPartition()
		r.s.Isolate(e.Node)
	case EvDropRate:
		r.s.SetDropRate(e.Rate)
	case EvCrash:
		switch e.Mode {
		case CrashClean:
			r.s.Crash(e.Node)
		case CrashTorn:
			r.s.CrashTorn(e.Node, crashGraceTicks)
		case CrashWound:
			r.s.CrashWound(e.Node, crashGraceTicks)
		default:
			panic(fmt.Sprintf("chaos: unknown crash mode %v", e.Mode))
		}
	case EvRestart:
		r.s.ClearFaults(e.Node)
		r.restart(e.Node)
	case EvReconfigRemove, EvReconfigAdd:
		lid, ok := r.s.Leader()
		if !ok {
			return
		}
		target := r.s.Members(lid)
		if e.Kind == EvReconfigRemove {
			target = target.Remove(e.Node)
		} else {
			target = target.Add(e.Node)
		}
		if target.Len() == r.s.Members(lid).Len() {
			return
		}
		if !target.Contains(lid) {
			// The change sheds the sitting leader: hand off first, as
			// cluster.Reconfigure does live.
			r.startDropLeader(target)
			return
		}
		// Best effort, as in the live executor: R2/R3 rejections and
		// never-committing changes are outcomes the oracles observe.
		r.s.ProposeConfig(lid, target)
	case EvReconfigShed:
		r.shed()
	case EvPartialPartition:
		r.s.BlockOneWay(e.A[0], e.B[0])
	case EvIsolateLeader:
		r.clearPartition()
		if lid, ok := r.s.Leader(); ok {
			r.s.Isolate(lid)
		}
	case EvIsolateFollower:
		r.clearPartition()
		lid, ok := r.s.Leader()
		for _, id := range r.members {
			if r.s.Alive(id) && (!ok || id != lid) {
				r.s.Isolate(id)
				return
			}
		}
	case EvTransferLeader:
		if lid, ok := r.s.Leader(); ok {
			r.suppress()
			r.s.TransferLeader(lid, types.NoNode) // best effort; no-op on errors
		}
	case EvReconfigDropLeader:
		lid, ok := r.s.Leader()
		if !ok {
			return
		}
		members := r.s.Members(lid)
		if !members.Contains(lid) || members.Len() <= 3 {
			return
		}
		r.startDropLeader(members.Remove(lid))
	case EvWALWipe:
		// Group-targeted: only the named group's replay executes the wipe;
		// every other group runs the identical nemesis without it and acts
		// as the control arm.
		if e.Group == r.group {
			r.s.WipeStorage(e.Node)
		}
	case EvDeafenLeader:
		// Cut every inbound link to the current leader, leaving its
		// outbound side intact: it keeps heartbeating but hears no acks,
		// so its lease freshness is frozen at whatever was banked before
		// the cut (the lease teeth's setup move).
		if lid, ok := r.s.Leader(); ok {
			for _, id := range r.members {
				if id != lid {
					r.s.BlockOneWay(id, lid)
				}
			}
		}
	default:
		panic(fmt.Sprintf("chaos: sim executor saw unknown event kind %v", e.Kind))
	}
}

// startDropLeader arms the drop-leader reconfiguration that driveReconfig
// advances each tick until the change is proposed at a surviving leader.
func (r *simRun) startDropLeader(target types.NodeSet) {
	r.dropPending = true
	r.dropTarget = target
	r.dropDeadline = r.s.Now() + 40*r.et
	r.suppress()
}

func (r *simRun) clearPartition() {
	r.near, r.far, r.partLeader = nil, nil, types.NoNode
}

func (r *simRun) partitionLeader(keep int) {
	r.clearPartition()
	lid, ok := r.s.Leader()
	if !ok {
		lid = r.members[0]
	}
	near := []types.NodeID{lid}
	var far []types.NodeID
	for _, id := range r.members {
		if id == lid {
			continue
		}
		if len(near) < 1+keep {
			near = append(near, id)
		} else {
			far = append(far, id)
		}
	}
	r.s.Partition(near, far)
	r.near, r.far = near, far
	if ok {
		r.partLeader = lid
	}
}

// shed asks the partitioned stale leader to drop one far-side member — the
// move R2/R3 must police (see executor.shed).
func (r *simRun) shed() {
	if r.partLeader == types.NoNode || !r.s.Alive(r.partLeader) {
		return
	}
	members := r.s.Members(r.partLeader)
	for _, id := range r.far {
		if members.Contains(id) {
			r.s.ProposeConfig(r.partLeader, members.Remove(id))
			return
		}
	}
}

// tickClients advances every client's state machine one tick, in client
// order (determinism requires a fixed order, and clients are independent).
func (r *simRun) tickClients() {
	for _, cl := range r.clients {
		cl.tick(r)
	}
}

// simClient is one scripted client as an explicit state machine: at most
// one outstanding operation, retried against the current leader until the
// dedup table shows it applied (the live client's transparent retry), then
// recorded in the shared history with sim-tick call/return times.
type simClient struct {
	idx      int
	clientID uint64
	script   []ClientOp
	startAt  []int64
	next     int
	pend     *simPending
	ops      int
	timeouts int
}

// simPending is the in-flight operation.
type simPending struct {
	op       ClientOp
	seq      uint64
	call     int64
	deadline int64
	lastTry  int64 // last proposal attempt (writes) — retry pacing

	// fast-read barrier state
	readNode types.NodeID
	readReq  uint64
	readIdx  int // -1 until the barrier resolves
}

func newSimClient(idx int, script []ClientOp, horizon int64) *simClient {
	interval := horizon / int64(len(script)+1)
	starts := make([]int64, len(script))
	for i := range script {
		starts[i] = int64(i) * interval
	}
	return &simClient{idx: idx, clientID: uint64(idx) + 1, script: script, startAt: starts}
}

// retryInterval paces proposal retransmissions (in ticks): long enough for
// a round trip, short enough to land several tries inside one op timeout.
const retryInterval = 20

func (cl *simClient) tick(r *simRun) {
	now := r.s.Now()
	if cl.pend == nil {
		if cl.next >= len(cl.script) || now < cl.startAt[cl.next] || now >= r.horizon {
			return
		}
		op := cl.script[cl.next]
		cl.next++
		cl.pend = &simPending{
			op:       op,
			seq:      uint64(cl.next), // 1-based, strictly increasing
			call:     now,
			deadline: now + r.opTimeout,
			lastTry:  -retryInterval,
			readIdx:  -1,
		}
	}
	p := cl.pend
	if p.op.FastRead {
		cl.tickFastRead(r, p)
	} else {
		cl.tickLogged(r, p)
	}
	if cl.pend != nil && now >= cl.pend.deadline {
		cl.finish(r, nil, true)
	}
}

// tickLogged drives a through-the-log operation: propose (and re-propose)
// the command at whoever currently leads, and complete once any replica's
// dedup table shows the sequence number applied.
func (cl *simClient) tickLogged(r *simRun, p *simPending) {
	for _, id := range r.s.IDs() {
		if seq, res := r.stores[id].LastApplied(cl.clientID); seq >= p.seq {
			cl.finish(r, &res, false)
			return
		}
	}
	if r.s.Now()-p.lastTry < retryInterval {
		return
	}
	if lid, ok := r.s.Leader(); ok {
		p.lastTry = r.s.Now()
		cmd := kvstore.Command{
			Op: p.op.Op, Key: p.op.Key, Value: p.op.Value, Old: p.op.Old,
			Client: cl.clientID, Seq: p.seq,
		}
		r.s.Propose(lid, cmd.Encode()) // rejection or fail-stop: retried next interval
	}
}

// tickFastRead drives one fast read through the op's read path: obtain a
// confirmed read index (leader barrier, leader lease, or a barrier
// forwarded from a follower), wait for the serving node's local apply to
// pass it, then read from that node's state machine. An aborted barrier
// (leadership lost, forward refused) restarts the sequence.
func (cl *simClient) tickFastRead(r *simRun, p *simPending) {
	if p.readReq != 0 && p.readIdx < 0 {
		if idx, done := r.s.ReadResult(p.readNode, p.readReq); done {
			if idx >= 0 {
				p.readIdx = idx
			} else {
				p.readReq = 0 // aborted: retry from scratch
			}
		}
	}
	if p.readReq == 0 && p.readIdx < 0 {
		if r.s.Now()-p.lastTry < retryInterval {
			return
		}
		switch p.op.Via {
		case kvstore.ReadModeFollower:
			// Forward a barrier from a follower; the read serves from that
			// follower's own store once its apply passes the index.
			fid, ok := cl.pickFollower(r)
			if !ok {
				return
			}
			p.lastTry = r.s.Now()
			req, err := r.s.ForwardRead(fid)
			if err != nil {
				return // no known leader yet: retry next interval
			}
			p.readNode, p.readReq = fid, req
		case kvstore.ReadModeLease:
			lid, ok := r.s.Leader()
			if !ok {
				return
			}
			p.lastTry = r.s.Now()
			if idx, held := r.s.LeaseRead(lid); held {
				p.readNode, p.readIdx = lid, idx
				return
			}
			// No valid lease: fall back to a full barrier, like the live
			// client.
			cl.startBarrier(r, p, lid)
		default:
			lid, ok := r.s.Leader()
			if !ok {
				return
			}
			p.lastTry = r.s.Now()
			cl.startBarrier(r, p, lid)
		}
	}
	if p.readIdx >= 0 {
		if !r.s.Alive(p.readNode) || r.stores[p.readNode].AppliedIndex() < p.readIdx {
			if !r.s.Alive(p.readNode) {
				p.readReq, p.readIdx = 0, -1 // barrier node died: start over
			}
			return
		}
		v, found := r.stores[p.readNode].LocalGet(p.op.Key)
		cl.finish(r, &kvstore.Result{Value: v, Found: found}, false)
	}
}

// startBarrier opens a leader ReadIndex barrier for the pending read.
func (cl *simClient) startBarrier(r *simRun, p *simPending, lid types.NodeID) {
	req, idx, confirmed, err := r.s.ReadIndex(lid)
	if err != nil {
		return
	}
	p.readNode, p.readReq = lid, req
	if confirmed {
		p.readIdx = idx
	}
}

// pickFollower deterministically picks an alive non-leader to serve a
// forwarded read, spreading clients across the replica set (any alive node
// when no follower exists).
func (cl *simClient) pickFollower(r *simRun) (types.NodeID, bool) {
	lid, hasLeader := r.s.Leader()
	var cands []types.NodeID
	for _, id := range r.s.IDs() {
		if r.s.Alive(id) && (!hasLeader || id != lid) {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return types.NoNode, false
	}
	return cands[(cl.idx+cl.next)%len(cands)], true
}

// finish resolves the pending op: res != nil records a completed event;
// timeouts record Maybe events for writes (the op may still commit) and
// drop reads, mirroring runClient.
func (cl *simClient) finish(r *simRun, res *kvstore.Result, timedOut bool) {
	p := cl.pend
	cl.pend = nil
	cl.ops++
	if timedOut {
		cl.timeouts++
		r.s.Journalf("client %d op %d %s(%q) timeout", cl.idx, p.seq, p.op.Op, p.op.Key)
		if p.op.FastRead || p.op.Op == kvstore.OpGet {
			return
		}
		r.history = append(r.history, linear.Event{
			Client: cl.idx, Op: p.op.Op, Key: p.op.Key, Value: p.op.Value, Old: p.op.Old,
			Call: p.call, Maybe: true,
		})
		return
	}
	op := p.op.Op
	if p.op.FastRead {
		op = kvstore.OpGet
	}
	r.s.Journalf("client %d op %d %s(%q) ok", cl.idx, p.seq, op, p.op.Key)
	r.history = append(r.history, linear.Event{
		Client: cl.idx, Op: op, Key: p.op.Key, Value: p.op.Value, Old: p.op.Old,
		Out: *res, Call: p.call, Return: r.s.Now(),
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
