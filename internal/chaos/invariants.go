package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"adore/internal/linear"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// maxViolationDetail caps how many instances of one violation family a
// report carries (a genuinely broken run can produce hundreds).
const maxViolationDetail = 8

// monitor samples every node's status throughout the run and checks the
// paper's leader-election oracles online:
//
//   - election safety: at most one leader per term, globally — across
//     crashes and restarts (a restarted node must win a fresh election at a
//     higher term before leading again, so one term never has two leaders
//     unless quorum intersection was broken);
//   - term monotonicity: one node incarnation's term never decreases;
//   - commit monotonicity: one incarnation's commit index never decreases.
//
// Each sample is one Node.Snapshot() call, so the fields checked against
// each other (term/role, term/commit) come from a single consistent view
// of the node — a torn read across separate accessors cannot fabricate a
// violation.
type monitor struct {
	c      *cluster.Cluster
	stopCh chan struct{}
	doneCh chan struct{}

	mu         sync.Mutex
	leaders    map[types.Time]types.NodeID  // term → leader seen; guarded by mu
	lastTerm   map[*raft.Node]types.Time    // per incarnation; guarded by mu
	lastCommit map[*raft.Node]int           // per incarnation; guarded by mu
	counters   map[*raft.Node]raft.Counters // last sampled, per incarnation; guarded by mu
	violations map[string]bool              // deduplicated; guarded by mu
	stopped    bool                         // guarded by mu
}

func startMonitor(c *cluster.Cluster) *monitor {
	m := &monitor{
		c:          c,
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
		leaders:    make(map[types.Time]types.NodeID),
		lastTerm:   make(map[*raft.Node]types.Time),
		lastCommit: make(map[*raft.Node]int),
		counters:   make(map[*raft.Node]raft.Counters),
		violations: make(map[string]bool),
	}
	go m.loop()
	return m
}

func (m *monitor) loop() {
	defer close(m.doneCh)
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
			m.sample()
		}
	}
}

func (m *monitor) sample() {
	nodes := m.c.Nodes()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range nodes {
		s := n.Snapshot()
		if last, ok := m.lastTerm[n]; ok && s.Term < last {
			m.violations[fmt.Sprintf("term went backwards on S%d: %d after %d", n.ID(), s.Term, last)] = true
		}
		m.lastTerm[n] = s.Term
		if last, ok := m.lastCommit[n]; ok && s.CommitIndex < last {
			m.violations[fmt.Sprintf("commit index went backwards on S%d: %d after %d", n.ID(), s.CommitIndex, last)] = true
		}
		m.lastCommit[n] = s.CommitIndex
		m.counters[n] = s.Counters
		if s.Role == raft.Leader {
			if prev, ok := m.leaders[s.Term]; ok && prev != n.ID() {
				m.violations[fmt.Sprintf("two leaders in term %d: S%d and S%d", s.Term, prev, n.ID())] = true
			} else {
				m.leaders[s.Term] = n.ID()
			}
		}
	}
}

// stop halts sampling (idempotent) and waits for the loop to exit.
func (m *monitor) stop() {
	m.mu.Lock()
	if !m.stopped {
		m.stopped = true
		close(m.stopCh)
	}
	m.mu.Unlock()
	<-m.doneCh
}

// stats sums the last-sampled election counters across every node
// incarnation the monitor observed.
func (m *monitor) stats() raft.Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rep Report
	for _, c := range m.counters {
		rep.addStats(c)
	}
	return rep.Stats
}

// report returns the deduplicated violations in a stable order.
func (m *monitor) report() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.violations))
	for v := range m.violations {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// entryFP fingerprints one applied entry for agreement checking.
type entryFP struct {
	term    types.Time
	kind    raft.EntryKind
	command string
	members string
}

func fingerprint(msg raft.ApplyMsg) entryFP {
	return entryFP{term: msg.Term, kind: msg.Kind, command: string(msg.Command), members: fmt.Sprint(msg.Members)}
}

func (f entryFP) String() string {
	switch f.kind {
	case raft.EntryNoOp:
		return fmt.Sprintf("noop@t%d", f.term)
	case raft.EntryConfig:
		return fmt.Sprintf("config%s@t%d", f.members, f.term)
	case raft.EntryCommand:
		return fmt.Sprintf("cmd(%s)@t%d", f.command, f.term)
	default:
		return fmt.Sprintf("kind%d@t%d", f.kind, f.term)
	}
}

// checkApplied validates the committed-prefix oracles over the recorded
// apply streams: every replica must have applied the same entry at every
// index (the paper's "all CCaches lie on one branch" invariant), one
// replica must never re-apply a different entry at an index it already
// applied (restarted nodes replay their log from the start, so the streams
// legitimately contain duplicates — but only identical ones), and log terms
// must be nondecreasing in the index.
func checkApplied(c *cluster.Cluster, nodes int) []string {
	streams := make(map[types.NodeID][]raft.ApplyMsg, nodes)
	for i := 1; i <= nodes; i++ {
		id := types.NodeID(i)
		streams[id] = c.Applied(id)
	}
	return checkAppliedStreams(streams, nodes)
}

// checkAppliedStreams is checkApplied over raw apply streams, shared by the
// live runner (cluster-recorded streams) and the deterministic simulation.
//
// Snapshot restores (EntrySnapshot) are not regular entries: the image is
// a gob encoding whose map ordering is not canonical, so byte-comparing
// two images of the same state would be a false oracle. Restores are
// instead checked by their base fingerprint — every restore at index i
// must carry the same term, across replicas and against any regular entry
// applied at i (a snapshot summarizes a committed prefix, so its base
// must name the committed entry there).
func checkAppliedStreams(streams map[types.NodeID][]raft.ApplyMsg, nodes int) []string {
	var out []string
	perNode := make(map[types.NodeID]map[int]entryFP, nodes)
	snapTerms := make(map[int]types.Time)   // snapshot base index → term
	snapOwner := make(map[int]types.NodeID) // who reported it first
	snapConflicts := 0
	for i := 1; i <= nodes; i++ {
		id := types.NodeID(i)
		byIndex := make(map[int]entryFP)
		selfConflicts := 0
		for _, msg := range streams[id] {
			if msg.Kind == raft.EntrySnapshot {
				if prev, ok := snapTerms[msg.Index]; ok && prev != msg.Term {
					if snapConflicts < maxViolationDetail {
						out = append(out, fmt.Sprintf("snapshot bases diverge at index %d: S%d restored term %d, S%d restored term %d",
							msg.Index, snapOwner[msg.Index], prev, id, msg.Term))
					}
					snapConflicts++
				} else if !ok {
					snapTerms[msg.Index] = msg.Term
					snapOwner[msg.Index] = id
				}
				continue
			}
			f := fingerprint(msg)
			if prev, ok := byIndex[msg.Index]; ok && prev != f {
				if selfConflicts < maxViolationDetail {
					out = append(out, fmt.Sprintf("S%d re-applied index %d as %s after %s", id, msg.Index, f, prev))
				}
				selfConflicts++
			}
			byIndex[msg.Index] = f
		}
		if selfConflicts > maxViolationDetail {
			out = append(out, fmt.Sprintf("S%d: … and %d more re-apply conflicts", id, selfConflicts-maxViolationDetail))
		}
		// Terms nondecreasing along the index order.
		idxs := make([]int, 0, len(byIndex))
		for idx := range byIndex {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		lastTerm := types.Time(0)
		for _, idx := range idxs {
			if t := byIndex[idx].term; t < lastTerm {
				out = append(out, fmt.Sprintf("S%d applied non-monotone terms: index %d has term %d after term %d", id, idx, t, lastTerm))
				break
			} else {
				lastTerm = t
			}
		}
		perNode[id] = byIndex
	}
	// Cross-replica agreement per index.
	crossConflicts := 0
	maxIdx := 0
	for _, byIndex := range perNode {
		for idx := range byIndex {
			if idx > maxIdx {
				maxIdx = idx
			}
		}
	}
	for idx := 1; idx <= maxIdx; idx++ {
		var refID types.NodeID
		var ref entryFP
		haveRef := false
		for i := 1; i <= nodes; i++ {
			id := types.NodeID(i)
			f, ok := perNode[id][idx]
			if !ok {
				continue
			}
			if !haveRef {
				refID, ref, haveRef = id, f, true
				continue
			}
			if f != ref {
				if crossConflicts < maxViolationDetail {
					out = append(out, fmt.Sprintf("committed prefix divergence at index %d: S%d applied %s, S%d applied %s", idx, refID, ref, id, f))
				}
				crossConflicts++
			}
		}
	}
	if crossConflicts > maxViolationDetail {
		out = append(out, fmt.Sprintf("… and %d more divergent indexes", crossConflicts-maxViolationDetail))
	}
	// Snapshot bases against regular entries: a restore at index i and a
	// replica that applied the entry at i must agree on its term.
	snapIdxs := make([]int, 0, len(snapTerms))
	for idx := range snapTerms {
		snapIdxs = append(snapIdxs, idx)
	}
	sort.Ints(snapIdxs)
	for _, idx := range snapIdxs {
		for i := 1; i <= nodes; i++ {
			id := types.NodeID(i)
			if f, ok := perNode[id][idx]; ok && f.term != snapTerms[idx] {
				out = append(out, fmt.Sprintf("snapshot base at index %d has term %d but S%d applied %s there",
					idx, snapTerms[idx], id, f))
				break
			}
		}
	}
	return out
}

// checkLinearizable splits the history per key (linearizability is
// compositional: a history over many keys is linearizable iff each key's
// subhistory is) and runs the Wing & Gong checker on each.
func checkLinearizable(h linear.History) []string {
	byKey := make(map[string]linear.History)
	for _, e := range h {
		byKey[e.Key] = append(byKey[e.Key], e)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		sub := byKey[k]
		if res := linear.Check(sub); !res.Ok {
			msg := fmt.Sprintf("history for key %q is not linearizable (%d events, %d states searched):", k, len(sub), res.Visited)
			for _, e := range sub {
				msg += "\n    " + e.String()
			}
			out = append(out, msg)
		}
	}
	return out
}
