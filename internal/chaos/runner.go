package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"adore/internal/kvstore"
	"adore/internal/linear"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// Report is the outcome of one chaos run. Violations are safety failures
// (the run found a bug); Warnings are liveness observations (the cluster
// did not reconverge in time) that do not fail the run.
type Report struct {
	Seed       int64
	Hash       string // schedule fingerprint: identical for every run of this seed
	Violations []string
	Warnings   []string
	Ops        int // client operations attempted
	Timeouts   int // operations with unknown outcome
	Faults     uint64
	Events     int

	// Stats sums the election-disruption counters across every node (and
	// every incarnation — a restart resets a node's own counters): how
	// hard the run churned leadership and how the robustness guards
	// responded.
	Stats raft.Counters

	// Journal is the deterministic event transcript (simulation runs
	// only); byte-identical across runs of the same seed and options.
	Journal []byte
}

// addStats folds one node's counters into the report sum.
func (r *Report) addStats(c raft.Counters) {
	r.Stats.Elections += c.Elections
	r.Stats.PreVoteRounds += c.PreVoteRounds
	r.Stats.PreVotesWon += c.PreVotesWon
	r.Stats.TimeoutElections += c.TimeoutElections
	r.Stats.TransferElections += c.TransferElections
	r.Stats.TermBumps += c.TermBumps
	r.Stats.StepDowns += c.StepDowns
	r.Stats.TransfersStarted += c.TransfersStarted
	r.Stats.TransfersAborted += c.TransfersAborted
}

// Ok reports whether the run found no safety violation.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String summarizes the report.
func (r *Report) String() string {
	status := "ok"
	if !r.Ok() {
		status = fmt.Sprintf("FAILED (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("seed %d: %s — %d events, %d ops (%d unknown), %d storage faults, %d warnings, %d elections (%d pre-vote rounds, %d step-downs, %d transfers)",
		r.Seed, status, r.Events, r.Ops, r.Timeouts, r.Faults, len(r.Warnings),
		r.Stats.Elections, r.Stats.PreVoteRounds, r.Stats.StepDowns, r.Stats.TransfersStarted)
}

// RunSeed generates the schedule for seed and executes it.
func RunSeed(seed int64, opt Options) (*Report, error) {
	return Run(Generate(seed, opt), opt)
}

// Run executes a schedule against a live cluster: nodes over fault-injectable
// WALs, scripted concurrent clients recording a history, the nemesis timeline
// driving the network and the disks, then a heal-repair-restart epilogue and
// the safety checks.
func Run(sched *Schedule, opt Options) (*Report, error) {
	opt.defaults()
	if sched.Nodes > 0 {
		opt.Nodes = sched.Nodes
	}
	// The linearizability checker's bitmask search caps per-key histories;
	// the generator deals keys round-robin precisely to respect this.
	perKey := map[string]int{}
	for _, script := range sched.Scripts {
		for _, op := range script {
			perKey[op.Key]++
		}
	}
	for k, cnt := range perKey {
		if cnt > 62 {
			return nil, fmt.Errorf("chaos: key %q would see %d ops, beyond the checker's 62-event bound; raise Keys or lower the workload", k, cnt)
		}
	}

	rep := &Report{Seed: sched.Seed, Hash: sched.Hash(), Events: len(sched.Events)}

	// Per-node storage: a FaultStorage over a file WAL (or MemStorage when
	// the run opts out of real files). The same wrapper instance serves
	// every incarnation of the node, so armed faults and durable state
	// carry across crash/restart exactly like a disk does.
	faults := make(map[types.NodeID]*raft.FaultStorage, opt.Nodes)
	if !opt.MemWAL {
		dir := opt.Dir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "raft-chaos-*")
			if err != nil {
				return nil, err
			}
			dir = tmp
			defer os.RemoveAll(tmp)
		}
		defer func() {
			for _, f := range faults {
				f.Close()
			}
		}()
		for i := 1; i <= opt.Nodes; i++ {
			id := types.NodeID(i)
			inner, err := raft.OpenFileStorage(filepath.Join(dir, fmt.Sprintf("wal-%d", id)))
			if err != nil {
				return nil, fmt.Errorf("chaos: open wal for S%d: %w", id, err)
			}
			faults[id] = raft.NewFaultStorage(inner)
		}
	} else {
		for i := 1; i <= opt.Nodes; i++ {
			faults[types.NodeID(i)] = raft.NewFaultStorage(raft.NewMemStorage())
		}
	}

	r := kvstore.NewReplicated(cluster.Options{
		N:                  opt.Nodes,
		Latency:            opt.Latency,
		Jitter:             opt.Jitter,
		ElectionTimeoutMin: opt.ElectionTimeoutMin,
		DisableR2:          opt.DisableR2,
		DisableR3:          opt.DisableR3,
		DisablePreVote:     opt.DisablePreVote,
		DisableCheckQuorum: opt.DisableCheckQuorum,
		DisableLeaseGuard:  opt.DisableLeaseGuard,
		Seed:               sched.Seed,
		StorageFor:         func(id types.NodeID) raft.Storage { return faults[id] },
		SnapshotThreshold:  opt.snapThreshold(),
	})
	defer r.Stop()
	c := r.Cluster
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		return nil, fmt.Errorf("chaos: cluster never elected an initial leader: %w", err)
	}

	start := time.Now()
	mon := startMonitor(c)
	defer mon.stop()

	// Concurrent scripted clients, one kvstore session each (per-client
	// sequence numbers are what make retried requests idempotent).
	hist := &recorder{}
	var wg sync.WaitGroup
	for ci, script := range sched.Scripts {
		wg.Add(1)
		go func(ci int, script []ClientOp) {
			defer wg.Done()
			runClient(r, hist, ci, script, start, opt)
		}(ci, script)
	}

	// The nemesis executes the timeline in schedule order at the planned
	// offsets (a slow action pushes later ones, never reorders them).
	ex := &executor{c: c, faults: faults, members: types.Range(1, types.NodeID(opt.Nodes)).Copy()}
	for _, e := range sched.Events {
		if d := time.Until(start.Add(e.At)); d > 0 {
			time.Sleep(d)
		}
		ex.apply(e)
	}
	if d := time.Until(start.Add(opt.Duration)); d > 0 {
		time.Sleep(d)
	}
	wg.Wait()
	rep.Ops, rep.Timeouts = hist.counts()

	// Epilogue: heal the network, repair every disk, restart every node
	// that is down or fail-stopped, then wait for commit indexes to agree.
	c.Net.Heal()
	c.Net.SetDropRate(0)
	for i := 1; i <= opt.Nodes; i++ {
		id := types.NodeID(i)
		faults[id].ClearFaults()
		if n := c.Node(id); n == nil {
			c.RestartNode(id, ex.members)
		} else if n.StorageErr() != nil {
			c.CrashNode(id)
			c.RestartNode(id, ex.members)
		}
	}
	if w := waitConverged(c, opt.SettleTimeout); w != "" {
		rep.Warnings = append(rep.Warnings, w)
	}
	mon.stop()

	for _, f := range faults {
		rep.Faults += f.Injected()
	}
	rep.Stats = mon.stats()
	rep.Violations = append(rep.Violations, mon.report()...)
	rep.Violations = append(rep.Violations, checkApplied(c, opt.Nodes)...)
	rep.Violations = append(rep.Violations, checkLinearizable(hist.snapshot())...)
	return rep, nil
}

// recorder collects the concurrent history.
type recorder struct {
	mu       sync.Mutex
	events   linear.History // guarded by mu
	ops      int            // guarded by mu
	timeouts int            // guarded by mu
}

func (rc *recorder) add(e linear.Event) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.events = append(rc.events, e)
}

func (rc *recorder) count(timedOut bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.ops++
	if timedOut {
		rc.timeouts++
	}
}

func (rc *recorder) counts() (ops, timeouts int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.ops, rc.timeouts
}

func (rc *recorder) snapshot() linear.History {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return append(linear.History(nil), rc.events...)
}

// runClient walks one script until the horizon, recording every completed
// operation and recording timed-out writes as outcome-unknown (Maybe)
// events — a Put whose ack was lost may still have committed, and the
// checker must be allowed to place it. Timed-out reads are side-effect-free
// and are simply dropped.
func runClient(r *kvstore.Replicated, hist *recorder, ci int, script []ClientOp, start time.Time, opt Options) {
	cl := r.NewClient()
	// Ops are paced across the whole horizon (catching up immediately when
	// a slow op puts the client behind), so the workload overlaps every
	// nemesis event instead of finishing before the first fault lands.
	interval := opt.Duration / time.Duration(len(script)+1)
	for i, op := range script {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		if time.Since(start) >= opt.Duration {
			return
		}
		call := int64(time.Since(start))
		if op.FastRead {
			v, found, err := r.FastGetMode(op.Key, op.Via, opt.OpTimeout)
			hist.count(err != nil)
			if err != nil {
				continue
			}
			hist.add(linear.Event{
				Client: ci, Op: kvstore.OpGet, Key: op.Key,
				Out:  kvstore.Result{Value: v, Found: found},
				Call: call, Return: int64(time.Since(start)),
			})
			continue
		}
		out, err := cl.Do(op.Op, op.Key, op.Value, op.Old, opt.OpTimeout)
		ret := int64(time.Since(start))
		hist.count(err != nil)
		if err != nil {
			if op.Op != kvstore.OpGet {
				hist.add(linear.Event{
					Client: ci, Op: op.Op, Key: op.Key, Value: op.Value, Old: op.Old,
					Call: call, Maybe: true,
				})
			}
			continue
		}
		hist.add(linear.Event{
			Client: ci, Op: op.Op, Key: op.Key, Value: op.Value, Old: op.Old,
			Out: out, Call: call, Return: ret,
		})
	}
}

// executor applies planned events to the live cluster. It runs on a single
// goroutine; the only cross-event state is the active leader-partition (for
// shed events) and the initial member list (for restarts).
type executor struct {
	c       *cluster.Cluster
	faults  map[types.NodeID]*raft.FaultStorage
	members []types.NodeID

	near, far  []types.NodeID // sides of the active leader partition
	partLeader *raft.Node     // the leader cut off by EvPartitionLeader
}

func (ex *executor) apply(e Event) {
	switch e.Kind {
	case EvPartition:
		ex.clearPartition()
		ex.c.Net.Partition(e.A, e.B)
	case EvPartitionLeader:
		ex.partitionLeader(e.Keep)
	case EvHeal:
		ex.clearPartition()
		ex.c.Net.Heal()
	case EvIsolate:
		ex.clearPartition()
		var rest []types.NodeID
		for _, id := range ex.members {
			if id != e.Node {
				rest = append(rest, id)
			}
		}
		ex.c.Net.Partition([]types.NodeID{e.Node}, rest)
	case EvDropRate:
		ex.c.Net.SetDropRate(e.Rate)
	case EvCrash:
		ex.crash(e)
	case EvRestart:
		ex.faults[e.Node].ClearFaults()
		if ex.c.Node(e.Node) == nil {
			ex.c.RestartNode(e.Node, ex.members)
		}
	case EvReconfigRemove, EvReconfigAdd:
		l := ex.c.Leader()
		if l == nil {
			return
		}
		target := l.Members()
		if e.Kind == EvReconfigRemove {
			target = target.Remove(e.Node)
		} else {
			target = target.Add(e.Node)
		}
		if target.Len() == l.Members().Len() {
			return // already applied or already absent
		}
		// Best effort: under faults the change may be rejected (R2/R3) or
		// never commit; both are legitimate outcomes the checkers observe.
		ex.c.Reconfigure(target, 200*time.Millisecond)
	case EvReconfigShed:
		ex.shed()
	case EvPartialPartition:
		ex.c.Net.BlockOneWay(e.A[0], e.B[0])
	case EvIsolateLeader:
		ex.clearPartition()
		if l := ex.c.Leader(); l != nil {
			ex.c.Net.Isolate(l.ID())
		}
	case EvIsolateFollower:
		ex.clearPartition()
		var lid types.NodeID
		if l := ex.c.Leader(); l != nil {
			lid = l.ID()
		}
		for _, id := range ex.members {
			if id != lid && ex.c.Node(id) != nil {
				ex.c.Net.Isolate(id)
				return
			}
		}
	case EvTransferLeader:
		if l := ex.c.Leader(); l != nil {
			l.TransferLeader(types.NoNode) // best effort; no-op on errors
		}
	case EvReconfigDropLeader:
		l := ex.c.Leader()
		if l == nil {
			return
		}
		members := l.Members()
		if !members.Contains(l.ID()) || members.Len() <= 3 {
			return
		}
		// cluster.Reconfigure hands leadership off before proposing a
		// change that sheds the sitting leader.
		ex.c.Reconfigure(members.Remove(l.ID()), 200*time.Millisecond)
	case EvWALWipe:
		// Deterministic-sim only: the live cluster has no hook to destroy
		// one group's storage out from under a node, and the multi-group
		// replay path is RunSim. A live run of a wipe schedule simply skips
		// the wipe — its teeth test would then (correctly) fail to find the
		// expected violation rather than pass vacuously.
	case EvDeafenLeader:
		// Deterministic-sim only, like EvWALWipe: the stale-lease oracle
		// needs the sim's link-state visibility, so the lease teeth run
		// there and a live replay skips the deafening.
	default:
		panic(fmt.Sprintf("chaos: executor saw unknown event kind %v", e.Kind))
	}
}

func (ex *executor) clearPartition() {
	ex.near, ex.far, ex.partLeader = nil, nil, nil
}

// partitionLeader cuts the current leader plus keep followers (lowest IDs
// first, crashed nodes included so restarts come back on the same side)
// off from the rest of the cluster.
func (ex *executor) partitionLeader(keep int) {
	ex.clearPartition()
	l := ex.c.Leader()
	var lid types.NodeID
	if l != nil {
		lid = l.ID()
	} else {
		lid = ex.members[0] // no leader right now: cut the lowest ID off
	}
	near := []types.NodeID{lid}
	var far []types.NodeID
	for _, id := range ex.members {
		if id == lid {
			continue
		}
		if len(near) < 1+keep {
			near = append(near, id)
		} else {
			far = append(far, id)
		}
	}
	ex.c.Net.Partition(near, far)
	ex.near, ex.far, ex.partLeader = near, far, l
}

// shed asks the partitioned stale leader to remove one far-side node from
// the membership — the move R2/R3 must police. With the guards on, at most
// one such change is accepted and it cannot commit from the minority; with
// DisableR2 the second one shrinks the config until the minority becomes a
// quorum of it.
func (ex *executor) shed() {
	if ex.partLeader == nil {
		return
	}
	members := ex.partLeader.Members()
	for _, id := range ex.far {
		if members.Contains(id) {
			ex.partLeader.ProposeConfig(members.Remove(id))
			return
		}
	}
}

// crash takes a node down. Torn/wound modes first arm a storage fault and
// give the node a moment to trip over it (exercising the fail-stop path);
// if no write happens in time the node is crashed the hard way regardless.
func (ex *executor) crash(e Event) {
	fs := ex.faults[e.Node]
	switch e.Mode {
	case CrashClean:
		// No disk fault: just the process dying.
	case CrashTorn:
		fs.TearNextWrite()
	case CrashWound:
		fs.FailNextSaveEntries(fmt.Errorf("chaos: injected write error on S%d", e.Node))
	default:
		panic(fmt.Sprintf("chaos: unknown crash mode %v", e.Mode))
	}
	if e.Mode != CrashClean {
		if n := ex.c.Node(e.Node); n != nil {
			select {
			case <-n.Done():
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	ex.c.CrashNode(e.Node)
}

// waitConverged waits for every member of the leader's configuration to
// report the same commit index, stable across consecutive samples. Failure
// is a liveness warning, not a safety violation.
func waitConverged(c *cluster.Cluster, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	lastMax, stable := -1, 0
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			lo, hi, ok := 0, 0, true
			for i, id := range l.Members().Slice() {
				n := c.Node(id)
				if n == nil {
					ok = false
					break
				}
				ci := n.CommitIndex()
				if i == 0 || ci < lo {
					lo = ci
				}
				if ci > hi {
					hi = ci
				}
			}
			if ok && lo == hi && hi == lastMax {
				stable++
				if stable >= 3 {
					return ""
				}
			} else {
				stable = 0
				lastMax = hi
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Sprintf("cluster did not converge within %s of the run ending", timeout)
}
