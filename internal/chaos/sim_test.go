package chaos

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunSimSmoke replays a handful of generated schedules in the
// deterministic simulator and expects clean reports with real work done.
func TestRunSimSmoke(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rep, err := RunSimSeed(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: violations on a healthy model:\n%s\n--- journal ---\n%s",
				seed, strings.Join(rep.Violations, "\n"), rep.Journal)
		}
		if rep.Ops == 0 {
			t.Fatalf("seed %d: no client operations ran", seed)
		}
		if len(rep.Journal) == 0 {
			t.Fatalf("seed %d: empty journal", seed)
		}
	}
}

// TestRunSimDeterministic is the tentpole's reproducibility contract: the
// same seed replayed twice produces byte-identical journals — not just the
// same fault plan, the same execution.
func TestRunSimDeterministic(t *testing.T) {
	opt := Options{Duration: 1500 * time.Millisecond}
	a, err := RunSimSeed(11, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimSeed(11, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Journal, b.Journal) {
		t.Fatalf("same seed produced different executions:\n--- run A ---\n%s\n--- run B ---\n%s", a.Journal, b.Journal)
	}
	if a.Ops != b.Ops || a.Timeouts != b.Timeouts || a.Faults != b.Faults {
		t.Fatalf("same seed produced different counters: %s vs %s", a, b)
	}
}

// TestSimTeethR2 replays the R2-violation schedule deterministically with
// the guard disabled and expects the oracles — including the executable
// refinement checker — to catch the committed-branch fork. The control run
// with guards on must stay clean.
func TestSimTeethR2(t *testing.T) {
	opt := Options{Duration: 1200 * time.Millisecond}
	sched := R2ViolationSchedule(opt)

	broken := opt
	broken.DisableR2 = true
	rep, err := RunSim(sched, broken)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatalf("R2 disabled and the double-shed schedule executed, but no violation was detected\n--- journal ---\n%s", rep.Journal)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "diverge") || strings.Contains(v, "re-applied") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a committed-branch violation, got:\n%s", strings.Join(rep.Violations, "\n"))
	}
	t.Logf("caught: %s", rep.Violations[0])

	control, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !control.Ok() {
		t.Fatalf("guards on, same schedule: unexpected violations:\n%s\n--- journal ---\n%s",
			strings.Join(control.Violations, "\n"), control.Journal)
	}
}
