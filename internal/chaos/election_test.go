package chaos

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"adore/internal/types"
)

// TestTeethPreVote reintroduces election disruption (Pre-Vote disabled) and
// checks the harness catches it: a follower isolated for ten election
// intervals inflates its term with futile campaigns, rejoins, and deposes a
// perfectly healthy leader — the disruption oracle must flag it. The
// control run — same schedule, Pre-Vote on — must stay clean: the isolated
// node's rounds are term-neutral and the heal is a non-event.
func TestTeethPreVote(t *testing.T) {
	opt := Options{Duration: 1500 * time.Millisecond}
	sched := DisruptionSchedule(opt)

	broken := opt
	broken.DisablePreVote = true
	rep, err := RunSim(sched, broken)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "disruption") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Pre-Vote disabled and the rejoin schedule executed, but the disruption oracle stayed silent; violations:\n%s\n--- journal ---\n%s",
			strings.Join(rep.Violations, "\n"), rep.Journal)
	}
	t.Logf("caught: %s", rep.Violations[0])

	control, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !control.Ok() {
		t.Fatalf("guards on, same schedule: unexpected violations:\n%s\n--- journal ---\n%s",
			strings.Join(control.Violations, "\n"), control.Journal)
	}
	if control.Stats.TermBumps >= rep.Stats.TermBumps {
		t.Fatalf("Pre-Vote on should bump terms less than off: %d (on) vs %d (off)",
			control.Stats.TermBumps, rep.Stats.TermBumps)
	}
}

// TestTeethCheckQuorum reintroduces the immortal minority leader
// (CheckQuorum disabled) and checks the stale-leader oracle catches it: a
// leader cut into a minority keeps claiming leadership long after losing
// quorum contact. The control run steps down within an election interval
// and stays clean.
func TestTeethCheckQuorum(t *testing.T) {
	opt := Options{Duration: 1500 * time.Millisecond}
	sched := StaleLeaderSchedule(opt)

	broken := opt
	broken.DisableCheckQuorum = true
	rep, err := RunSim(sched, broken)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "stale leader") {
			found = true
		}
	}
	if !found {
		t.Fatalf("CheckQuorum disabled and the stale-leader schedule executed, but the oracle stayed silent; violations:\n%s\n--- journal ---\n%s",
			strings.Join(rep.Violations, "\n"), rep.Journal)
	}
	t.Logf("caught: %s", rep.Violations[0])

	control, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !control.Ok() {
		t.Fatalf("guards on, same schedule: unexpected violations:\n%s\n--- journal ---\n%s",
			strings.Join(control.Violations, "\n"), control.Journal)
	}
	if control.Stats.StepDowns == 0 {
		t.Fatal("guards on: the partitioned leader never recorded a CheckQuorum step-down")
	}
}

// TestReconfigShedViaTransfer replays the transfer-under-churn schedule —
// two membership changes that each shed the sitting leader, plus an
// explicit handoff — and requires every leadership change to be a graceful
// transfer: the journal must show transfer campaigns and zero
// timeout-triggered campaigns.
func TestReconfigShedViaTransfer(t *testing.T) {
	opt := Options{Duration: 2 * time.Second}
	sched := TransferDuringReconfigSchedule(opt)
	rep, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations on a healthy model:\n%s\n--- journal ---\n%s",
			strings.Join(rep.Violations, "\n"), rep.Journal)
	}
	if !bytes.Contains(rep.Journal, []byte("campaign (transfer)")) {
		t.Fatalf("no transfer campaign in the journal — the drop-leader reconfigs did not hand off\n--- journal ---\n%s", rep.Journal)
	}
	if bytes.Contains(rep.Journal, []byte("campaign (timeout)")) {
		t.Fatalf("timeout-triggered campaign during graceful handoffs\n--- journal ---\n%s", rep.Journal)
	}
	if rep.Stats.TransfersStarted < 2 {
		t.Fatalf("expected at least 2 transfers (two drop-leader reconfigs), got %d", rep.Stats.TransfersStarted)
	}
	if rep.Ops == 0 {
		t.Fatal("no client operations ran")
	}
}

// TestPartialPartitionStability runs a live cluster through an asymmetric
// link fault — one node can hear the cluster but not be heard — and
// expects a clean report: Pre-Vote and CheckQuorum turn the historical
// disruption scenario into a non-event.
func TestPartialPartitionStability(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos run in -short mode")
	}
	opt := Options{
		Duration:      1200 * time.Millisecond,
		MemWAL:        true,
		OpTimeout:     800 * time.Millisecond, // generous: ops span the fault window
		SettleTimeout: 15 * time.Second,
		Keys:          16,
	}
	opt.defaults()
	d := opt.Duration
	sched := &Schedule{
		Seed:  -9,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: d * 25 / 100, Kind: EvPartialPartition, A: []types.NodeID{2}, B: []types.NodeID{3}},
			{At: d * 70 / 100, Kind: EvHeal},
		},
		Scripts: Generate(3, opt).Scripts,
	}
	rep, err := Run(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations under a one-way link fault:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Ops == 0 {
		t.Fatal("no client operations ran")
	}
	t.Log(rep)
}

// TestDisruptionSweep is the election-robustness regression sweep: 200
// generated schedules — now including partial partitions, leader/follower
// isolation, transfers, and drop-leader reconfigs — replayed in the
// deterministic simulator with all guards on. The disruption and
// stale-leader oracles must stay silent on every seed.
func TestDisruptionSweep(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < seeds; seed++ {
		rep, err := RunSimSeed(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: violations with all guards on:\n%s\n--- journal ---\n%s",
				seed, strings.Join(rep.Violations, "\n"), rep.Journal)
		}
	}
}

// TestTeethLeaseGuard reintroduces the stale-lease hazard (the
// transfer/reconfig lease invalidation removed) and checks the stale-lease
// oracle catches it: a deafened old leader — inbound links cut, outbound
// intact — keeps a "valid" lease on acks banked before the cut while its
// transferred-away successor commits past it. The control run — same
// schedule, guard on — must stay clean: the lease dies the instant the
// transfer starts and cannot revive while deafened.
func TestTeethLeaseGuard(t *testing.T) {
	opt := Options{Duration: 1500 * time.Millisecond}
	sched := LeaseViolationSchedule(opt)

	broken := opt
	broken.DisableLeaseGuard = true
	rep, err := RunSim(sched, broken)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "stale lease") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lease guard disabled and the deafen+transfer schedule executed, but the stale-lease oracle stayed silent; violations:\n%s\n--- journal ---\n%s",
			strings.Join(rep.Violations, "\n"), rep.Journal)
	}
	t.Logf("caught: %s", rep.Violations[0])

	control, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !control.Ok() {
		t.Fatalf("guard on, same schedule: unexpected violations:\n%s\n--- journal ---\n%s",
			strings.Join(control.Violations, "\n"), control.Journal)
	}
}
