// Package chaos is a deterministic fault-injection harness for the
// executable raft runtime: a seeded PRNG generates a nemesis timeline
// (network partitions, drop-rate storms, node crashes with disk faults,
// mid-run reconfigurations) and per-client operation scripts; a runner
// executes the schedule against a live cluster while concurrent clients
// record a history; and a set of checkers validates the run against the
// paper's safety claims — linearizability of the client history,
// committed-prefix agreement across replicas ("all CCaches on one
// branch"), monotonic terms, and at-most-one-leader-per-term.
//
// Everything injected derives from (seed, options) alone: generating a
// schedule twice yields byte-identical event logs, so a failing seed
// printed by CI replays the same fault sequence locally. (The cluster's
// own interleavings stay nondeterministic — the schedule pins down what
// the nemesis does, not what the scheduler does.)
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft"
	"adore/internal/types"
)

// EventKind enumerates nemesis events.
type EventKind uint8

const (
	// EvPartition splits the cluster into two PRNG-chosen halves.
	EvPartition EventKind = iota
	// EvPartitionLeader cuts the current leader plus Keep followers off
	// from the rest (the classic "stale leader in a minority" scenario;
	// sides are resolved at execution time, the plan just records Keep).
	EvPartitionLeader
	// EvHeal removes all partitions.
	EvHeal
	// EvIsolate cuts one node off from everyone.
	EvIsolate
	// EvDropRate sets the network's message-loss probability.
	EvDropRate
	// EvCrash stops a node: cleanly, with a torn final WAL frame, or by
	// wounding its disk (an injected write error the node must fail-stop
	// on).
	EvCrash
	// EvRestart repairs a node's storage faults and restarts it.
	EvRestart
	// EvReconfigRemove / EvReconfigAdd propose single-node membership
	// changes through the current leader.
	EvReconfigRemove
	EvReconfigAdd
	// EvReconfigShed proposes, directly at a partitioned stale leader,
	// the removal of one node outside its partition side. With the
	// paper's guards on this is harmless (R2/R3 reject the dangerous
	// repeat); with DisableR2 it manufactures the disjoint-quorum
	// scenario the guards exist to prevent.
	EvReconfigShed
	// EvPartialPartition blocks the single one-way link A[0]→B[0]: the
	// blocked node can still hear the cluster but cannot be heard. This
	// is the asymmetric fault Pre-Vote and CheckQuorum exist for.
	EvPartialPartition
	// EvIsolateLeader cuts whoever currently leads off from everyone
	// (resolved at execution time); a later EvHeal lets it rejoin — the
	// classic rejoin-disruption scenario Pre-Vote neutralizes.
	EvIsolateLeader
	// EvIsolateFollower isolates a current non-leader. While isolated it
	// times out over and over; with Pre-Vote those rounds are term-neutral
	// and the heal is silent, without it the rejoiner's inflated term
	// deposes a perfectly healthy leader.
	EvIsolateFollower
	// EvTransferLeader asks the current leader to hand off gracefully to
	// its most caught-up voter (a TimeoutNow transfer, not a timeout).
	EvTransferLeader
	// EvReconfigDropLeader proposes a membership change that removes the
	// current leader itself, exercising the transfer-then-propose path
	// cluster.Reconfigure takes when the new config sheds the leader.
	EvReconfigDropLeader
	// EvWALWipe destroys one group's durable raft state on one node (the
	// node must be down). It is never generated — only crafted schedules
	// use it — and it models a bug, not a fault: a flat shared storage
	// layout where one group's compaction unlinks another group's WAL
	// segments. Multi-group runs apply it to Event.Group only; the other
	// groups double as the control arm that must stay violation-free.
	EvWALWipe
	// EvDeafenLeader blocks every inbound link to the current leader
	// (resolved at execution time) while its outbound links stay open: the
	// leader keeps talking but hears no acks, so its lease clock freezes at
	// the cut. Never generated — only the lease-violation teeth schedule
	// uses it, paired with a transfer, to manufacture a window where a
	// deafened old leader would serve a stale lease read if the transfer
	// lease-invalidation guard were missing. Deterministic-sim only.
	EvDeafenLeader
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvPartitionLeader:
		return "partition-leader"
	case EvHeal:
		return "heal"
	case EvIsolate:
		return "isolate"
	case EvDropRate:
		return "drop-rate"
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvReconfigRemove:
		return "reconfig-remove"
	case EvReconfigAdd:
		return "reconfig-add"
	case EvReconfigShed:
		return "reconfig-shed"
	case EvPartialPartition:
		return "partial-partition"
	case EvIsolateLeader:
		return "isolate-leader"
	case EvIsolateFollower:
		return "isolate-follower"
	case EvTransferLeader:
		return "transfer-leader"
	case EvReconfigDropLeader:
		return "reconfig-drop-leader"
	case EvWALWipe:
		return "wal-wipe"
	case EvDeafenLeader:
		return "deafen-leader"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// CrashMode distinguishes how a crash interacts with the node's WAL.
type CrashMode uint8

const (
	// CrashClean stops the node abruptly; the WAL keeps every synced frame.
	CrashClean CrashMode = iota
	// CrashTorn tears the frame being written at crash time: the node
	// fail-stops on the torn write and recovery replays the longest
	// durable prefix.
	CrashTorn
	// CrashWound injects a plain write error first: the node must surface
	// it as an explicit fail-stop (not silent corruption) before the
	// harness takes it down.
	CrashWound
)

// String implements fmt.Stringer.
func (m CrashMode) String() string {
	switch m {
	case CrashClean:
		return "clean"
	case CrashTorn:
		return "torn"
	case CrashWound:
		return "wound"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Event is one planned nemesis action. Fields beyond At/Kind are only
// meaningful for the kinds that use them. String renders the plan — never
// runtime-resolved state — so rendering is deterministic per seed.
type Event struct {
	At   time.Duration // offset from run start
	Kind EventKind
	Node types.NodeID // crash/restart/isolate/reconfig/wipe target
	Mode CrashMode    // EvCrash
	A, B []types.NodeID
	Keep  int          // EvPartitionLeader: followers kept on the leader's side
	Rate  float64      // EvDropRate
	Group raft.GroupID // EvWALWipe: the group whose storage is destroyed
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case EvPartition:
		return fmt.Sprintf("[%6s] partition %v | %v", e.At, e.A, e.B)
	case EvPartitionLeader:
		return fmt.Sprintf("[%6s] partition-leader keep=%d", e.At, e.Keep)
	case EvHeal:
		return fmt.Sprintf("[%6s] heal", e.At)
	case EvIsolate:
		return fmt.Sprintf("[%6s] isolate S%d", e.At, e.Node)
	case EvDropRate:
		return fmt.Sprintf("[%6s] drop-rate %.2f", e.At, e.Rate)
	case EvCrash:
		return fmt.Sprintf("[%6s] crash S%d (%s)", e.At, e.Node, e.Mode)
	case EvRestart:
		return fmt.Sprintf("[%6s] restart S%d", e.At, e.Node)
	case EvReconfigRemove:
		return fmt.Sprintf("[%6s] reconfig-remove S%d", e.At, e.Node)
	case EvReconfigAdd:
		return fmt.Sprintf("[%6s] reconfig-add S%d", e.At, e.Node)
	case EvReconfigShed:
		return fmt.Sprintf("[%6s] reconfig-shed", e.At)
	case EvPartialPartition:
		return fmt.Sprintf("[%6s] partial-partition S%d->S%d", e.At, e.A[0], e.B[0])
	case EvIsolateLeader:
		return fmt.Sprintf("[%6s] isolate-leader", e.At)
	case EvIsolateFollower:
		return fmt.Sprintf("[%6s] isolate-follower", e.At)
	case EvTransferLeader:
		return fmt.Sprintf("[%6s] transfer-leader", e.At)
	case EvReconfigDropLeader:
		return fmt.Sprintf("[%6s] reconfig-drop-leader", e.At)
	case EvWALWipe:
		return fmt.Sprintf("[%6s] wal-wipe S%d g%d", e.At, e.Node, e.Group)
	case EvDeafenLeader:
		return fmt.Sprintf("[%6s] deafen-leader", e.At)
	default:
		return fmt.Sprintf("[%6s] %s", e.At, e.Kind)
	}
}

// ClientOp is one scripted workload operation.
type ClientOp struct {
	Op       kvstore.Op
	Key      string
	Value    string
	Old      string           // CAS expected value
	FastRead bool             // serve this Get without a log write
	Via      kvstore.ReadMode // FastRead only: which fast read path
}

// String implements fmt.Stringer.
func (o ClientOp) String() string {
	if o.FastRead {
		switch o.Via {
		case kvstore.ReadModeLease:
			return fmt.Sprintf("leaseget(%s)", o.Key)
		case kvstore.ReadModeFollower:
			return fmt.Sprintf("followerget(%s)", o.Key)
		default:
			return fmt.Sprintf("fastget(%s)", o.Key)
		}
	}
	switch o.Op {
	case kvstore.OpGet:
		return fmt.Sprintf("get(%s)", o.Key)
	case kvstore.OpPut:
		return fmt.Sprintf("put(%s,%s)", o.Key, o.Value)
	case kvstore.OpAppend:
		return fmt.Sprintf("append(%s,%s)", o.Key, o.Value)
	case kvstore.OpDelete:
		return fmt.Sprintf("delete(%s)", o.Key)
	case kvstore.OpCAS:
		return fmt.Sprintf("cas(%s,%s→%s)", o.Key, o.Old, o.Value)
	default:
		return fmt.Sprintf("%s(%s)", o.Op, o.Key)
	}
}

// Schedule is a fully generated chaos run plan: the nemesis timeline plus
// every client's operation script. It is a pure function of (seed,
// options); Hash() fingerprints it for the determinism test and for replay
// verification.
type Schedule struct {
	Seed    int64
	Nodes   int
	Events  []Event
	Scripts [][]ClientOp
}

// String renders the whole plan (the replayable "event log" of a run).
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d, %d nodes, %d clients\n", s.Seed, s.Nodes, len(s.Scripts))
	for _, e := range s.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	for c, script := range s.Scripts {
		fmt.Fprintf(&b, "client %d:", c)
		for _, op := range script {
			b.WriteByte(' ')
			b.WriteString(op.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash returns a hex SHA-256 of the rendered plan.
func (s *Schedule) Hash() string {
	sum := sha256.Sum256([]byte(s.String()))
	return hex.EncodeToString(sum[:])
}

// Options configures schedule generation and the runner. The zero value
// gets chaos-smoke-friendly defaults.
type Options struct {
	// Nodes, Clients, OpsPerClient, Keys size the cluster and workload.
	// Keys bounds the per-key history (ops are dealt round-robin across
	// keys), which keeps the linearizability checker's per-key windows
	// inside its 62-event limit.
	Nodes        int
	Clients      int
	OpsPerClient int
	Keys         int
	// Groups replays the schedule per raft group (deterministic sim only):
	// the keyspace is hash-partitioned across groups exactly as
	// kvstore.ShardOf routes it, node-level nemesis events hit every group
	// (a crashed node takes all its groups down), group-targeted events
	// (EvWALWipe) hit only theirs, and every oracle runs per group with
	// violations prefixed "gN:". 0 or 1 = the classic single-group run.
	Groups int
	// Duration is the nemesis horizon: events are scheduled inside it and
	// clients stop issuing at it.
	Duration time.Duration
	// EventBudget is the number of nemesis events (0 = scaled from
	// Duration).
	EventBudget int
	// OpTimeout bounds one client operation; a timed-out write is
	// recorded as an outcome-unknown (Maybe) event.
	OpTimeout time.Duration
	// SettleTimeout bounds the post-horizon convergence wait.
	SettleTimeout time.Duration
	// ElectionTimeoutMin scales the protocol timers (0 = 15ms — fast
	// enough that a 2s run sees many elections).
	ElectionTimeoutMin time.Duration
	// Latency/Jitter configure the simulated network.
	Latency, Jitter time.Duration
	// MemWAL backs nodes with in-memory storage instead of file WALs
	// (faster; file WALs are the honest default).
	MemWAL bool
	// Dir is where file WALs live ("" = a fresh temp dir, removed after
	// the run).
	Dir string
	// DisableR2/DisableR3 reintroduce the reconfiguration bugs the
	// paper's guards prevent — used to prove the harness catches them.
	DisableR2 bool
	DisableR3 bool
	// DisablePreVote/DisableCheckQuorum turn off the election-robustness
	// guards — used to prove the disruption oracles catch a rejoining
	// node deposing a healthy leader (Pre-Vote) and a quorumless leader
	// that never steps down (CheckQuorum).
	DisablePreVote     bool
	DisableCheckQuorum bool
	// DisableLeaseGuard removes the transfer/reconfig lease invalidation —
	// used to prove the stale-lease oracle catches a deafened old leader
	// serving lease reads while its transferred-away successor commits.
	DisableLeaseGuard bool
	// SnapshotThreshold is the log-compaction trigger: after this many
	// applied entries above the snapshot base a node captures its state
	// machine and truncates its log. 0 picks a chaos-friendly default
	// (64, low enough that every sweep crosses the snapshot path);
	// negative disables compaction entirely.
	SnapshotThreshold int
}

// snapThreshold resolves the SnapshotThreshold convention (negative =
// off) into the value the runtimes take (0 = off).
func (o *Options) snapThreshold() int {
	if o.SnapshotThreshold < 0 {
		return 0
	}
	return o.SnapshotThreshold
}

func (o *Options) defaults() {
	if o.Nodes <= 0 {
		o.Nodes = 5
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.OpsPerClient <= 0 {
		o.OpsPerClient = 32
	}
	if o.Keys <= 0 {
		o.Keys = 8
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.EventBudget <= 0 {
		// Roughly one nemesis event per 150ms, at least 4.
		o.EventBudget = int(o.Duration / (150 * time.Millisecond))
		if o.EventBudget < 4 {
			o.EventBudget = 4
		}
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 400 * time.Millisecond
	}
	if o.SettleTimeout <= 0 {
		o.SettleTimeout = 10 * time.Second
	}
	if o.ElectionTimeoutMin <= 0 {
		o.ElectionTimeoutMin = 15 * time.Millisecond
	}
	if o.Latency <= 0 {
		o.Latency = 200 * time.Microsecond
	}
	if o.Jitter <= 0 {
		o.Jitter = 300 * time.Microsecond
	}
	if o.SnapshotThreshold == 0 {
		o.SnapshotThreshold = 64
	}
}

// maxCrashed is how many nodes may be down at once: strictly less than
// half, so a quorum of the initial membership stays available.
func maxCrashed(n int) int { return (n - 1) / 2 }

// Generate builds the deterministic plan for one seed. The generator
// tracks which nodes it has crashed and which partition state is active,
// so every emitted event is executable: restarts target crashed nodes,
// partitions never stack, and at most a minority is down at any time.
func Generate(seed int64, opt Options) *Schedule {
	opt.defaults()
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Nodes: opt.Nodes}

	all := make([]types.NodeID, opt.Nodes)
	for i := range all {
		all[i] = types.NodeID(i + 1)
	}

	crashed := map[types.NodeID]bool{}
	removed := map[types.NodeID]bool{} // scheduled membership removals
	memberCount := opt.Nodes
	partitioned := false // one partition active at a time
	dropActive := false
	shedsPending := 0 // reconfig-sheds still owed to an open leader partition

	// Event instants: sorted draws inside [10%, 80%] of the horizon, so
	// the cluster first elects undisturbed and the tail lets clients
	// finish against a faulty-but-unpartitioned cluster before settle.
	span := opt.Duration * 7 / 10
	base := opt.Duration / 10
	step := span / time.Duration(opt.EventBudget)
	at := base

	aliveList := func() []types.NodeID {
		var out []types.NodeID
		for _, id := range all {
			if !crashed[id] {
				out = append(out, id)
			}
		}
		return out
	}
	pick := func(ids []types.NodeID) types.NodeID {
		return ids[rng.Intn(len(ids))]
	}

	for i := 0; i < opt.EventBudget; i++ {
		// Jittered but deterministic spacing.
		at += step/2 + time.Duration(rng.Int63n(int64(step)))
		if at >= base+span {
			break
		}

		// Owed shed events follow their leader-partition immediately.
		if shedsPending > 0 {
			shedsPending--
			s.Events = append(s.Events, Event{At: at, Kind: EvReconfigShed})
			continue
		}

		// Weighted choice among currently-legal kinds.
		type choice struct {
			kind   EventKind
			weight int
		}
		var choices []choice
		if partitioned {
			choices = append(choices, choice{EvHeal, 50})
		} else {
			choices = append(choices, choice{EvPartition, 14}, choice{EvPartitionLeader, 10}, choice{EvIsolate, 8})
			choices = append(choices, choice{EvPartialPartition, 6}, choice{EvIsolateLeader, 5}, choice{EvIsolateFollower, 6})
		}
		choices = append(choices, choice{EvTransferLeader, 6})
		if memberCount > 3 {
			choices = append(choices, choice{EvReconfigDropLeader, 5})
		}
		if dropActive {
			choices = append(choices, choice{EvDropRate, 20}) // lower or clear it
		} else {
			choices = append(choices, choice{EvDropRate, 8})
		}
		if len(crashed) < maxCrashed(opt.Nodes) {
			choices = append(choices, choice{EvCrash, 14})
		}
		if len(crashed) > 0 {
			choices = append(choices, choice{EvRestart, 18})
		}
		if memberCount > 3 {
			choices = append(choices, choice{EvReconfigRemove, 8})
		}
		if len(removed) > 0 {
			choices = append(choices, choice{EvReconfigAdd, 10})
		}
		total := 0
		for _, c := range choices {
			total += c.weight
		}
		roll := rng.Intn(total)
		var kind EventKind
		for _, c := range choices {
			if roll < c.weight {
				kind = c.kind
				break
			}
			roll -= c.weight
		}

		switch kind {
		case EvPartition:
			// Split the full node set (crashed nodes included, so a later
			// restart comes back inside the same partition regime).
			perm := rng.Perm(opt.Nodes)
			cut := 1 + rng.Intn(opt.Nodes-1)
			a := make([]types.NodeID, 0, cut)
			b := make([]types.NodeID, 0, opt.Nodes-cut)
			for i, p := range perm {
				if i < cut {
					a = append(a, all[p])
				} else {
					b = append(b, all[p])
				}
			}
			sortIDs(a)
			sortIDs(b)
			s.Events = append(s.Events, Event{At: at, Kind: EvPartition, A: a, B: b})
			partitioned = true
		case EvPartitionLeader:
			keep := 1
			if opt.Nodes >= 7 && rng.Intn(2) == 0 {
				keep = 2
			}
			s.Events = append(s.Events, Event{At: at, Kind: EvPartitionLeader, Keep: keep})
			partitioned = true
			// Half the leader partitions are followed by a shed pair: the
			// stale minority leader is asked to shrink the cluster toward
			// its own side — exactly the R2/R3 danger zone.
			if rng.Intn(2) == 0 {
				shedsPending = 2
			}
		case EvHeal:
			s.Events = append(s.Events, Event{At: at, Kind: EvHeal})
			partitioned = false
			shedsPending = 0
		case EvIsolate:
			s.Events = append(s.Events, Event{At: at, Kind: EvIsolate, Node: pick(aliveList())})
			partitioned = true
		case EvPartialPartition:
			// One asymmetric link between two distinct alive nodes; cleared
			// by the next heal like every other cut.
			alive := aliveList()
			if len(alive) < 2 {
				continue
			}
			a := pick(alive)
			b := a
			for b == a {
				b = pick(alive)
			}
			s.Events = append(s.Events, Event{At: at, Kind: EvPartialPartition, A: []types.NodeID{a}, B: []types.NodeID{b}})
			partitioned = true
		case EvIsolateLeader:
			s.Events = append(s.Events, Event{At: at, Kind: EvIsolateLeader})
			partitioned = true
		case EvIsolateFollower:
			s.Events = append(s.Events, Event{At: at, Kind: EvIsolateFollower})
			partitioned = true
		case EvTransferLeader:
			s.Events = append(s.Events, Event{At: at, Kind: EvTransferLeader})
		case EvReconfigDropLeader:
			s.Events = append(s.Events, Event{At: at, Kind: EvReconfigDropLeader})
		case EvDropRate:
			rate := 0.0
			if !dropActive || rng.Intn(2) == 0 {
				rate = 0.05 + 0.25*rng.Float64()
			}
			s.Events = append(s.Events, Event{At: at, Kind: EvDropRate, Rate: rate})
			dropActive = rate > 0
		case EvCrash:
			victim := pick(aliveList())
			mode := CrashMode(rng.Intn(3))
			s.Events = append(s.Events, Event{At: at, Kind: EvCrash, Node: victim, Mode: mode})
			crashed[victim] = true
		case EvRestart:
			var down []types.NodeID
			for _, id := range all {
				if crashed[id] {
					down = append(down, id)
				}
			}
			victim := pick(down)
			s.Events = append(s.Events, Event{At: at, Kind: EvRestart, Node: victim})
			delete(crashed, victim)
		case EvReconfigRemove:
			var members []types.NodeID
			for _, id := range all {
				if !removed[id] {
					members = append(members, id)
				}
			}
			victim := pick(members)
			s.Events = append(s.Events, Event{At: at, Kind: EvReconfigRemove, Node: victim})
			removed[victim] = true
			memberCount--
		case EvReconfigAdd:
			var out []types.NodeID
			for _, id := range all {
				if removed[id] {
					out = append(out, id)
				}
			}
			victim := pick(out)
			s.Events = append(s.Events, Event{At: at, Kind: EvReconfigAdd, Node: victim})
			delete(removed, victim)
			memberCount++
		case EvReconfigShed:
			// Only reachable through shedsPending, handled above.
		default:
			panic(fmt.Sprintf("chaos: generator produced unknown event kind %v", kind))
		}
	}

	// The run always ends healed, repaired, and restarted; the runner
	// appends those actions unconditionally at the horizon (they are part
	// of the fixed epilogue, not the plan).

	// Client scripts: keys are dealt round-robin so each key's history is
	// exactly Clients*OpsPerClient/Keys events at most, values are unique
	// per (client, op).
	s.Scripts = make([][]ClientOp, opt.Clients)
	for c := 0; c < opt.Clients; c++ {
		script := make([]ClientOp, opt.OpsPerClient)
		for i := 0; i < opt.OpsPerClient; i++ {
			key := fmt.Sprintf("k%d", (c*opt.OpsPerClient+i)%opt.Keys)
			op := ClientOp{Key: key, Value: fmt.Sprintf("c%d-%d", c, i)}
			// Fast reads are dealt across all three read paths so every
			// sweep's linearizability check covers ReadIndex, lease, and
			// follower-served reads (one PRNG draw either way, keeping
			// older seeds' event streams aligned).
			switch roll := rng.Intn(100); {
			case roll < 30:
				op.Op = kvstore.OpPut
			case roll < 55:
				op.Op = kvstore.OpGet
			case roll < 60:
				op.Op = kvstore.OpGet
				op.FastRead = true
				op.Via = kvstore.ReadModeReadIndex
			case roll < 65:
				op.Op = kvstore.OpGet
				op.FastRead = true
				op.Via = kvstore.ReadModeLease
			case roll < 70:
				op.Op = kvstore.OpGet
				op.FastRead = true
				op.Via = kvstore.ReadModeFollower
			case roll < 85:
				op.Op = kvstore.OpAppend
			case roll < 95:
				op.Op = kvstore.OpCAS
				op.Old = fmt.Sprintf("c%d-%d", rng.Intn(opt.Clients), rng.Intn(opt.OpsPerClient))
			default:
				op.Op = kvstore.OpDelete
			}
			script[i] = op
		}
		s.Scripts[c] = script
	}
	return s
}

func sortIDs(ids []types.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// R2ViolationSchedule is the handcrafted plan the teeth test uses: cut the
// leader plus one follower off, shed the far side twice through the stale
// leader, heal. With the guards on the second shed is rejected (R2) and
// nothing the stale leader appended can commit; with DisableR2 the stale
// minority forms a quorum of its shrunken config and commits on a branch
// the majority never saw — a committed-prefix divergence the checker must
// flag.
//
// The sheds land right after the cut — inside CheckQuorum's one-interval
// grace window. Any later and the stale leader (correctly) steps down
// before the second shed can shrink its config to where the minority is a
// quorum again, and the scenario evaporates.
func R2ViolationSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	return &Schedule{
		Seed:  -1,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: d * 25 / 100, Kind: EvPartitionLeader, Keep: 1},
			{At: d*25/100 + 3*time.Millisecond, Kind: EvReconfigShed},
			{At: d*25/100 + 6*time.Millisecond, Kind: EvReconfigShed},
			{At: d * 60 / 100, Kind: EvHeal},
		},
		Scripts: Generate(1, opt).Scripts,
	}
}

// DisruptionSchedule is the rejoin-disruption plan the Pre-Vote teeth test
// uses: isolate one follower long enough for ten election intervals of
// futile campaigning, then heal. With Pre-Vote the rounds are term-neutral
// and the heal is a non-event; with DisablePreVote the rejoiner comes back
// with an inflated term, deposes the healthy leader, and the disruption
// oracle flags it.
func DisruptionSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	iso := d * 25 / 100
	return &Schedule{
		Seed:  -2,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: iso, Kind: EvIsolateFollower},
			{At: iso + 10*opt.ElectionTimeoutMin, Kind: EvHeal},
		},
		Scripts: Generate(1, opt).Scripts,
	}
}

// StaleLeaderSchedule cuts the leader (plus one follower) into a minority
// and leaves it there for most of the run. With CheckQuorum the stale
// leader steps down within an election interval of losing quorum contact;
// with DisableCheckQuorum it reigns over its minority indefinitely and the
// stale-leader oracle flags it.
func StaleLeaderSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	return &Schedule{
		Seed:  -3,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: d * 25 / 100, Kind: EvPartitionLeader, Keep: 1},
			{At: d * 80 / 100, Kind: EvHeal},
		},
		Scripts: Generate(1, opt).Scripts,
	}
}

// CrossGroupWipeSchedule is the multi-group teeth plan (run with
// Options.Groups >= 2): it manufactures the exact history a cross-group
// WAL-unlink bug would leave behind — the bug the multiraft per-group
// storage subdirectories make impossible by construction — and demands the
// per-group oracles localize it.
//
// Timeline: partition {S1,S2,S3} | {S4,S5} early so the majority side
// commits entries S4/S5 never see; crash S3 cleanly mid-run and destroy
// group 1's (and only group 1's) durable state on it; flip the partition to
// {S3,S4,S5} | {S1,S2} in the same instant it heals (no catch-up window);
// restart S3. In group 1, S3 comes back blank — vote and log gone — so the
// flipped side elects a leader whose log predates the committed entries and
// overwrites a committed prefix: committed-prefix divergence, a refinement
// fork, and commit-index regression, all flagged "g1:". Group 0 runs the
// identical nemesis WITHOUT the wipe, and S3's intact log lets it protect
// the committed prefix through the same partitions: the control arm must
// stay clean. Requires 5 nodes.
func CrossGroupWipeSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	flip := d * 50 / 100
	return &Schedule{
		Seed:  -5,
		Nodes: 5,
		Events: []Event{
			{At: d * 15 / 100, Kind: EvPartition, A: []types.NodeID{1, 2, 3}, B: []types.NodeID{4, 5}},
			{At: d * 45 / 100, Kind: EvCrash, Node: 3, Mode: CrashClean},
			{At: d * 47 / 100, Kind: EvWALWipe, Node: 3, Group: 1},
			// Heal and re-partition at the same instant: zero ticks elapse
			// between them, so {1,2} never get a window to catch {4,5} up.
			{At: flip, Kind: EvHeal},
			{At: flip, Kind: EvPartition, A: []types.NodeID{3, 4, 5}, B: []types.NodeID{1, 2}},
			{At: d * 52 / 100, Kind: EvRestart, Node: 3},
			{At: d * 80 / 100, Kind: EvHeal},
		},
		Scripts: Generate(1, opt).Scripts,
	}
}

// LeaseViolationSchedule is the lease teeth plan (deterministic sim only):
// deafen the sitting leader — every inbound link cut, outbound intact, so
// its lease clock freezes on acks already banked — and in the same instant
// start a graceful transfer. The TimeoutNow still goes out, the successor
// campaigns and commits its term-opening no-op within a few ticks, and the
// deafened old leader never hears the new term. With the guard on, the
// lease dies the moment the transfer starts (and cannot revive: no acks
// arrive while deafened), so the stale-lease oracle stays silent; with
// DisableLeaseGuard the old leader's lease remains "valid" for the rest of
// its ack window while the successor commits past it — exactly the
// stale-read window the oracle must flag.
func LeaseViolationSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	return &Schedule{
		Seed:  -6,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: d * 40 / 100, Kind: EvDeafenLeader},
			{At: d * 40 / 100, Kind: EvTransferLeader},
			{At: d * 70 / 100, Kind: EvHeal},
		},
		Scripts: Generate(1, opt).Scripts,
	}
}

// TransferDuringReconfigSchedule exercises graceful handoff under churn:
// two membership changes that each shed the sitting leader, with an
// explicit transfer between them. A correct run completes every handoff by
// TimeoutNow — the journal shows transfer campaigns and zero timeout
// campaigns.
func TransferDuringReconfigSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	return &Schedule{
		Seed:  -4,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: d * 30 / 100, Kind: EvReconfigDropLeader},
			{At: d * 50 / 100, Kind: EvTransferLeader},
			{At: d * 70 / 100, Kind: EvReconfigDropLeader},
		},
		Scripts: Generate(1, opt).Scripts,
	}
}
