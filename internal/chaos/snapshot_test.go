package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/sim"
	"adore/internal/types"
)

// snapshotCatchupSchedule is the crafted snapshot-path plan: one follower
// crashes early and stays down while the rest of the cluster commits far
// past the compaction threshold (including a reconfiguration, so the
// folded-away prefix carries a config entry); the follower restarts late
// enough that the leader's log no longer reaches back to it and catch-up
// MUST go through InstallSnapshot.
func snapshotCatchupSchedule(opt Options) *Schedule {
	opt.defaults()
	d := opt.Duration
	return &Schedule{
		Seed:  -2,
		Nodes: opt.Nodes,
		Events: []Event{
			{At: d * 15 / 100, Kind: EvCrash, Node: 3, Mode: CrashClean},
			{At: d * 40 / 100, Kind: EvReconfigRemove, Node: 5},
			{At: d * 55 / 100, Kind: EvReconfigAdd, Node: 5},
			{At: d * 75 / 100, Kind: EvRestart, Node: 3},
		},
		Scripts: Generate(2, opt).Scripts,
	}
}

// TestSimSnapshotCatchup replays the crafted plan deterministically and
// requires the rejoin to actually take the snapshot path: nodes compact
// during the run, the restarted follower installs a leader-sent snapshot,
// and every oracle — refinement over the compacted base included — stays
// green.
func TestSimSnapshotCatchup(t *testing.T) {
	opt := Options{
		Nodes:             5,
		Clients:           4,
		OpsPerClient:      24,
		Duration:          2 * time.Second,
		SnapshotThreshold: 16,
	}
	sched := snapshotCatchupSchedule(opt)
	rep, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations on the snapshot catch-up plan:\n%s\n--- journal ---\n%s",
			strings.Join(rep.Violations, "\n"), rep.Journal)
	}
	j := string(rep.Journal)
	if !strings.Contains(j, " snapshot@") {
		t.Fatalf("no node ever compacted its log (threshold %d):\n%s", opt.SnapshotThreshold, j)
	}
	if !strings.Contains(j, "S3 install snapshot@") {
		t.Fatalf("restarted follower caught up without InstallSnapshot — the plan no longer forces the snapshot path:\n%s", j)
	}
	if rep.Ops == 0 {
		t.Fatal("no client operations ran")
	}
}

// TestSimSnapshotPersistFailStop injects a snapshot-write error under the
// leader and requires a fail-stop: truncating the log after the
// replacement image failed to become durable would lose the committed
// prefix, so the node must halt instead.
func TestSimSnapshotPersistFailStop(t *testing.T) {
	s := sim.New(sim.Options{Nodes: 3, Seed: 9, SnapshotThreshold: 8})
	s.OnSnapshot(func(id types.NodeID, index int) []byte { return []byte("image") })

	var lid types.NodeID
	for i := 0; i < 1000 && lid == types.NoNode; i++ {
		s.Step()
		if id, ok := s.Leader(); ok {
			lid = id
		}
	}
	if lid == types.NoNode {
		t.Fatal("no leader elected")
	}
	s.FailNextSaveSnapshot(lid)
	for i := 0; i < 32 && s.Alive(lid); i++ {
		s.Propose(lid, []byte(fmt.Sprintf("cmd-%d", i)))
		for j := 0; j < 20; j++ {
			s.Step()
		}
	}
	err := s.FailStopErr(lid)
	if err == nil {
		t.Fatalf("leader S%d survived a snapshot persist error (still alive: %v):\n%s", lid, s.Alive(lid), s.Journal())
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("fail-stop error does not name the snapshot write: %v", err)
	}
}

// TestRunCorruptSnapshotFailStop is the teeth variant over real files: a
// live run with compaction leaves snapshot files on disk; flipping one
// byte in one of them must make recovery refuse the store loudly instead
// of serving a silently-corrupted state machine.
func TestRunCorruptSnapshotFailStop(t *testing.T) {
	if testing.Short() {
		t.Skip("file-backed chaos run in -short mode")
	}
	dir := t.TempDir()
	opt := Options{
		Nodes:             3,
		Clients:           2,
		OpsPerClient:      20,
		Duration:          800 * time.Millisecond,
		SettleTimeout:     15 * time.Second,
		SnapshotThreshold: 8,
		Dir:               dir,
	}
	sched := &Schedule{Seed: -3, Nodes: 3, Scripts: Generate(3, opt).Scripts}
	rep, err := Run(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("violations on a healthy run:\n%s", strings.Join(rep.Violations, "\n"))
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "wal-*", "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatalf("run with threshold %d left no snapshot files in %s", opt.SnapshotThreshold, dir)
	}
	victim := snaps[0]
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := raft.OpenFileStorage(filepath.Dir(victim)); err == nil {
		t.Fatalf("recovery accepted the corrupted snapshot %s", victim)
	} else {
		t.Logf("recovery refused corrupted snapshot: %v", err)
	}
}
