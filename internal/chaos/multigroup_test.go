package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestRunSimMultiGroupSmoke replays generated schedules with the keyspace
// split across several raft groups. Every per-group oracle set must stay
// clean, every group must do real work (the workload generator's keys hash
// onto all shards), and the merged report must account for each group's
// operations.
func TestRunSimMultiGroupSmoke(t *testing.T) {
	for _, groups := range []int{2, 3} {
		for seed := int64(0); seed < 3; seed++ {
			rep, err := RunSimSeed(seed, Options{Groups: groups})
			if err != nil {
				t.Fatalf("groups=%d seed %d: %v", groups, seed, err)
			}
			if !rep.Ok() {
				t.Fatalf("groups=%d seed %d: violations on a healthy model:\n%s\n--- journal ---\n%s",
					groups, seed, strings.Join(rep.Violations, "\n"), rep.Journal)
			}
			if rep.Ops == 0 {
				t.Fatalf("groups=%d seed %d: no client operations ran", groups, seed)
			}
			for g := 0; g < groups; g++ {
				header := []byte("=== group ")
				if !strings.Contains(string(rep.Journal), string(header)) {
					t.Fatalf("groups=%d seed %d: journal has no per-group sections", groups, seed)
				}
			}
		}
	}
}

// TestRunSimMultiGroupDeterministic: the multi-group replay is as
// reproducible as the single-group one — same seed, same group count,
// byte-identical merged journal.
func TestRunSimMultiGroupDeterministic(t *testing.T) {
	opt := Options{Duration: 1500 * time.Millisecond, Groups: 2}
	a, err := RunSimSeed(11, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimSeed(11, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Journal) != string(b.Journal) {
		t.Fatalf("same seed produced different multi-group executions")
	}
	if a.Ops != b.Ops || a.Timeouts != b.Timeouts || a.Faults != b.Faults {
		t.Fatalf("same seed produced different counters: %s vs %s", a, b)
	}
}

// TestSimTeethCrossGroupWipe is the crafted cross-group storage-corruption
// schedule: node S3 crashes and — modeling the flat-storage-layout bug where
// one group's compaction unlinks another group's WAL segments — loses group
// 1's durable state while group 0's survives. S3 restarts blank in group 1,
// votes for a stale-log candidate behind a flipped partition, and the
// committed prefix is overwritten. The per-group oracles must catch the
// divergence in group 1 and ONLY group 1: group 0, whose storage was intact,
// is the control arm and must stay clean. A harness that ran its oracles
// globally instead of per group could not make this distinction.
func TestSimTeethCrossGroupWipe(t *testing.T) {
	opt := Options{Duration: 1500 * time.Millisecond, Groups: 2}
	sched := CrossGroupWipeSchedule(opt)
	rep, err := RunSim(sched, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatalf("group 1's WAL was wiped under a flipped partition, but no violation was detected — the per-group oracles have no teeth\n--- journal ---\n%s", rep.Journal)
	}
	var g1 int
	for _, v := range rep.Violations {
		switch {
		case strings.HasPrefix(v, "g1: "):
			g1++
		case strings.HasPrefix(v, "g0: "):
			t.Errorf("control group 0 (storage intact) flagged: %s", v)
		default:
			t.Errorf("violation not attributed to a group: %s", v)
		}
	}
	if g1 == 0 {
		t.Fatalf("violations found but none attributed to the wiped group:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if t.Failed() {
		t.Fatalf("all violations:\n%s\n--- journal ---\n%s", strings.Join(rep.Violations, "\n"), rep.Journal)
	}
	t.Logf("caught %d group-1 violations; first: %s", g1, rep.Violations[0])
}
