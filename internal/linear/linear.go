// Package linear checks linearizability of concurrent key-value histories
// against the sequential map specification. The paper's SMR layer promises
// that the replicated object behaves like "a single, atomically-accessible
// object" (§2.2.1); this checker validates that promise end-to-end on the
// runtime: concurrent client operations, recorded with invocation and
// response timestamps, must admit a legal sequential order consistent with
// real time.
//
// The algorithm is Wing & Gong's exhaustive search with memoization on
// (linearized-set, state) pairs, adequate for the bounded histories the
// tests generate (tens of operations).
package linear

import (
	"fmt"
	"sort"
	"strings"

	"adore/internal/kvstore"
)

// Event is one completed client operation.
type Event struct {
	// Client identifies the issuing client (operations of one client are
	// sequential by construction).
	Client int
	// Op, Key, Value, Old describe the operation (kvstore semantics).
	Op    kvstore.Op
	Key   string
	Value string
	Old   string
	// Out is the observed result.
	Out kvstore.Result
	// Call and Return are the invocation and response instants (any
	// monotone clock; only their order matters).
	Call, Return int64
	// Maybe marks an operation whose outcome is unknown: the client timed
	// out, so the op may have taken effect at any point after Call — or
	// never. The checker ignores Out and Return for such events and is
	// free to linearize them anywhere after Call, or to drop them
	// entirely. (This is how timed-out writes under faults are recorded
	// soundly: a Put whose ack was lost but that actually committed must
	// still be available to explain later reads.)
	Maybe bool
}

// String renders the event.
func (e Event) String() string {
	if e.Maybe {
		return fmt.Sprintf("c%d %s(%q,%q)→? [%d,∞]", e.Client, e.Op, e.Key, e.Value, e.Call)
	}
	return fmt.Sprintf("c%d %s(%q,%q)→{%q,%v,%v} [%d,%d]",
		e.Client, e.Op, e.Key, e.Value, e.Out.Value, e.Out.Found, e.Out.Swapped, e.Call, e.Return)
}

// History is a set of completed operations.
type History []Event

// Result reports a linearizability check.
type Result struct {
	// Ok reports whether the history is linearizable.
	Ok bool
	// Witness is a legal sequential order of event indices when Ok.
	Witness []int
	// Visited counts search states (diagnostics).
	Visited int
}

// Check decides whether h is linearizable with respect to the sequential
// key-value specification.
func Check(h History) Result {
	n := len(h)
	if n == 0 {
		return Result{Ok: true}
	}
	if n > 62 {
		panic("linear: history too long for the bitmask search (max 62 events)")
	}
	// Precedence: i must linearize before j if i returned before j was
	// invoked. A Maybe event has no known return instant (treated as +∞),
	// so it precedes nothing; it is still constrained to follow events
	// that returned before its Call.
	precedes := make([][]int, n) // predecessors of each event
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i != j && !h[i].Maybe && h[i].Return < h[j].Call {
				precedes[j] = append(precedes[j], i)
			}
		}
	}
	// The search succeeds once every definite event is linearized; Maybe
	// events are optional (an op whose ack was lost may never have run).
	var definite uint64
	for j := 0; j < n; j++ {
		if !h[j].Maybe {
			definite |= 1 << j
		}
	}

	memo := make(map[string]bool) // (mask, state) → dead end
	res := Result{}
	type frame struct {
		mask  uint64
		state map[string]string
		order []int
	}
	var dfs func(mask uint64, state map[string]string, order []int) bool
	dfs = func(mask uint64, state map[string]string, order []int) bool {
		res.Visited++
		if mask&definite == definite {
			res.Ok = true
			res.Witness = append([]int(nil), order...)
			return true
		}
		key := memoKey(mask, state)
		if memo[key] {
			return false
		}
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			ready := true
			for _, i := range precedes[j] {
				if mask&(1<<i) == 0 {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			out, next := applySeq(state, h[j])
			// A Maybe event's observed output is meaningless — any spec
			// outcome is admissible.
			if !h[j].Maybe && !sameResult(out, h[j].Out, h[j].Op) {
				continue
			}
			if dfs(mask|(1<<j), next, append(order, j)) {
				return true
			}
		}
		memo[key] = true
		return false
	}
	dfs(0, map[string]string{}, nil)
	return res
}

// applySeq runs one operation on the sequential specification, returning
// the expected output and the successor state (copy-on-write).
func applySeq(state map[string]string, e Event) (kvstore.Result, map[string]string) {
	read := func() (string, bool) { v, ok := state[e.Key]; return v, ok }
	write := func(v string, del bool) map[string]string {
		next := make(map[string]string, len(state)+1)
		for k, val := range state {
			next[k] = val
		}
		if del {
			delete(next, e.Key)
		} else {
			next[e.Key] = v
		}
		return next
	}
	switch e.Op {
	case kvstore.OpPut:
		return kvstore.Result{Value: e.Value, Found: true}, write(e.Value, false)
	case kvstore.OpGet:
		v, ok := read()
		return kvstore.Result{Value: v, Found: ok}, state
	case kvstore.OpDelete:
		_, ok := read()
		return kvstore.Result{Found: ok}, write("", true)
	case kvstore.OpCAS:
		v, ok := read()
		if ok && v == e.Old {
			return kvstore.Result{Value: v, Found: true, Swapped: true}, write(e.Value, false)
		}
		return kvstore.Result{Value: v, Found: ok}, state
	case kvstore.OpAppend:
		v, _ := read()
		return kvstore.Result{Value: v + e.Value, Found: true}, write(v+e.Value, false)
	default:
		return kvstore.Result{}, state
	}
}

// sameResult compares the observed and specified outputs, ignoring fields
// the operation does not define.
func sameResult(spec, got kvstore.Result, op kvstore.Op) bool {
	switch op {
	case kvstore.OpPut:
		return true // a put's output carries no information
	case kvstore.OpGet:
		return spec.Found == got.Found && (!spec.Found || spec.Value == got.Value)
	case kvstore.OpDelete:
		return spec.Found == got.Found
	case kvstore.OpCAS:
		return spec.Swapped == got.Swapped
	case kvstore.OpAppend:
		return spec.Value == got.Value
	default:
		return true
	}
}

// memoKey builds the memoization key: the linearized mask plus a canonical
// state rendering.
func memoKey(mask uint64, state map[string]string) string {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%x|", mask)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, state[k])
	}
	return b.String()
}
