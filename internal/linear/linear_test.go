package linear

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft/cluster"
)

func ev(client int, op kvstore.Op, key, value, old string, out kvstore.Result, call, ret int64) Event {
	return Event{Client: client, Op: op, Key: key, Value: value, Old: old, Out: out, Call: call, Return: ret}
}

func TestEmptyHistory(t *testing.T) {
	if !Check(nil).Ok {
		t.Error("empty history must be linearizable")
	}
}

func TestSequentialHistory(t *testing.T) {
	h := History{
		ev(1, kvstore.OpPut, "x", "a", "", kvstore.Result{}, 1, 2),
		ev(1, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 3, 4),
		ev(1, kvstore.OpDelete, "x", "", "", kvstore.Result{Found: true}, 5, 6),
		ev(1, kvstore.OpGet, "x", "", "", kvstore.Result{Found: false}, 7, 8),
	}
	res := Check(h)
	if !res.Ok {
		t.Fatal("sequential history rejected")
	}
	if len(res.Witness) != 4 {
		t.Errorf("witness = %v", res.Witness)
	}
}

func TestConcurrentOverlapAllowsEitherOrder(t *testing.T) {
	// Two overlapping puts followed by a read seeing either is fine.
	h := History{
		ev(1, kvstore.OpPut, "x", "a", "", kvstore.Result{}, 1, 10),
		ev(2, kvstore.OpPut, "x", "b", "", kvstore.Result{}, 2, 9),
		ev(3, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 11, 12),
	}
	if !Check(h).Ok {
		t.Error("read of either concurrent write must linearize")
	}
	h[2].Out.Value = "b"
	if !Check(h).Ok {
		t.Error("read of the other concurrent write must linearize")
	}
}

func TestStaleReadRejected(t *testing.T) {
	// A read that returns a value overwritten strictly earlier in real
	// time is not linearizable.
	h := History{
		ev(1, kvstore.OpPut, "x", "a", "", kvstore.Result{}, 1, 2),
		ev(1, kvstore.OpPut, "x", "b", "", kvstore.Result{}, 3, 4),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 5, 6),
	}
	if Check(h).Ok {
		t.Error("stale read accepted")
	}
}

func TestLostUpdateRejected(t *testing.T) {
	// Two CAS both claiming success from the same expected value, with no
	// interleaving write, cannot both linearize.
	h := History{
		ev(1, kvstore.OpPut, "x", "0", "", kvstore.Result{}, 1, 2),
		ev(1, kvstore.OpCAS, "x", "1", "0", kvstore.Result{Swapped: true}, 3, 6),
		ev(2, kvstore.OpCAS, "x", "2", "0", kvstore.Result{Swapped: true}, 4, 7),
	}
	if Check(h).Ok {
		t.Error("double CAS success accepted")
	}
}

func TestAppendOrdering(t *testing.T) {
	// Appends are order-sensitive through their outputs.
	h := History{
		ev(1, kvstore.OpAppend, "x", "a", "", kvstore.Result{Value: "a", Found: true}, 1, 5),
		ev(2, kvstore.OpAppend, "x", "b", "", kvstore.Result{Value: "ab", Found: true}, 2, 6),
	}
	if !Check(h).Ok {
		t.Error("consistent append outputs rejected")
	}
	h[1].Out.Value = "b" // claims it ran first...
	h[0].Out.Value = "a" // ...but so does the other
	if Check(h).Ok {
		t.Error("contradictory append outputs accepted")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Put completes before a CAS starts: the CAS must see it.
	h := History{
		ev(1, kvstore.OpPut, "x", "new", "", kvstore.Result{}, 1, 2),
		ev(2, kvstore.OpCAS, "x", "y", "old", kvstore.Result{Swapped: true}, 3, 4),
	}
	if Check(h).Ok {
		t.Error("CAS swapped against an overwritten value")
	}
}

func maybeEv(client int, op kvstore.Op, key, value string, call int64) Event {
	return Event{Client: client, Op: op, Key: key, Value: value, Call: call, Maybe: true}
}

func TestMaybeWriteMayHaveTakenEffect(t *testing.T) {
	// A timed-out Put whose value is later observed: the history only
	// linearizes if the checker is allowed to place the maybe-op.
	h := History{
		maybeEv(1, kvstore.OpPut, "x", "a", 1),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 5, 6),
	}
	if !Check(h).Ok {
		t.Error("read of a timed-out write's value rejected")
	}
}

func TestMaybeWriteMayHaveNeverRun(t *testing.T) {
	// The same timed-out Put with a read that never sees it: also fine —
	// the op may simply never have executed.
	h := History{
		maybeEv(1, kvstore.OpPut, "x", "a", 1),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Found: false}, 5, 6),
	}
	if !Check(h).Ok {
		t.Error("maybe-op forced to take effect")
	}
}

func TestMaybeWriteTakesEffectLate(t *testing.T) {
	// The timed-out write lands after an intervening read: read misses it,
	// a later read sees it. Only legal because a maybe-op has no return
	// bound (it may linearize long after the client gave up).
	h := History{
		maybeEv(1, kvstore.OpPut, "x", "a", 1),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Found: false}, 10, 11),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 12, 13),
	}
	if !Check(h).Ok {
		t.Error("late-landing timed-out write rejected")
	}
}

func TestMaybeCannotExcuseContradiction(t *testing.T) {
	// Maybe-ops widen the search but cannot repair a genuinely broken
	// history: two reads observing values no write (definite or maybe)
	// can explain in that order.
	h := History{
		ev(1, kvstore.OpPut, "x", "a", "", kvstore.Result{}, 1, 2),
		maybeEv(1, kvstore.OpPut, "x", "b", 3),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "b", Found: true}, 10, 11),
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 12, 13),
	}
	if Check(h).Ok {
		t.Error("value resurrection accepted")
	}
}

func TestMaybeRespectsCallLowerBound(t *testing.T) {
	// A maybe-op cannot take effect before its invocation: a read that
	// completed before the maybe-Put was even called must not see it.
	h := History{
		ev(2, kvstore.OpGet, "x", "", "", kvstore.Result{Value: "a", Found: true}, 1, 2),
		maybeEv(1, kvstore.OpPut, "x", "a", 5),
	}
	if Check(h).Ok {
		t.Error("maybe-op linearized before its call instant")
	}
}

// TestReplicatedKVIsLinearizable runs concurrent clients against the real
// replicated store — including across a leader failure — and checks the
// recorded history (the end-to-end SMR validation).
func TestReplicatedKVIsLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end linearizability in -short mode")
	}
	r := kvstore.NewReplicated(cluster.Options{N: 3, Latency: 100 * time.Microsecond, Seed: 31})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var clock int64
	now := func() int64 { return atomic.AddInt64(&clock, 1) }
	var mu sync.Mutex
	var h History

	// One session per goroutine: the dedup table assumes at most one
	// outstanding request per client ID, so concurrent goroutines sharing
	// the default session can commit their seqs out of order and read each
	// other's cached results — a contract violation, not a protocol bug.
	sessions := []*kvstore.Client{r.NewClient(), r.NewClient(), r.NewClient()}
	record := func(client int, op kvstore.Op, key, value, old string) {
		call := now()
		out, err := sessions[client].Do(op, key, value, old, 10*time.Second)
		ret := now()
		if err != nil {
			t.Errorf("client %d: %v", client, err)
			return
		}
		mu.Lock()
		h = append(h, Event{Client: client, Op: op, Key: key, Value: value, Old: old, Out: out, Call: call, Return: ret})
		mu.Unlock()
	}

	var wg sync.WaitGroup
	ops := []struct {
		op         kvstore.Op
		key, v, ov string
	}{
		{kvstore.OpPut, "k", "a", ""},
		{kvstore.OpAppend, "k", "b", ""},
		{kvstore.OpGet, "k", "", ""},
		{kvstore.OpCAS, "k", "z", "ab"},
		{kvstore.OpGet, "k", "", ""},
		{kvstore.OpPut, "j", "1", ""},
		{kvstore.OpGet, "j", "", ""},
		{kvstore.OpDelete, "j", "", ""},
	}
	for c := 0; c < 3; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c; i < len(ops); i += 3 {
				o := ops[i]
				record(c, o.op, o.key, o.v, o.ov)
			}
		}()
	}
	// Kill the leader mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		if l := r.Cluster.Leader(); l != nil {
			r.Cluster.Net.Isolate(l.ID())
			time.Sleep(50 * time.Millisecond)
			r.Cluster.Net.Heal()
		}
	}()
	wg.Wait()

	res := Check(h)
	if !res.Ok {
		for _, e := range h {
			t.Logf("  %s", e)
		}
		t.Fatalf("history is not linearizable (%d events, %d states visited)", len(h), res.Visited)
	}
	t.Logf("linearizable: %d events, witness %v, %d states visited", len(h), res.Witness, res.Visited)
}
