package raft_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

// slowStorage delays every SaveEntries so concurrent proposals pile up
// behind the flush in progress — forcing the group-commit path to batch.
type slowStorage struct {
	raft.Storage
	delay time.Duration
}

func (s *slowStorage) SaveEntries(firstIndex int, entries []raft.LogEntry) error {
	time.Sleep(s.delay)
	return s.Storage.SaveEntries(firstIndex, entries)
}

// startSingleNode launches a one-node raft over a zero-latency memory
// network and waits for it to elect itself.
func startSingleNode(t testing.TB, storage raft.Storage) *raft.Node {
	t.Helper()
	net := transport.NewMemNetwork(0, 0, 1)
	inbox := make(chan raft.Message, 64)
	tr := net.Attach(1, inbox)
	n := raft.StartNode(raft.Options{
		ID:        1,
		Members:   []types.NodeID{1},
		Transport: tr,
		Storage:   storage,
	})
	t.Cleanup(n.Stop)
	go func() {
		for range n.ApplyCh() {
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, role, _ := n.Status(); role == raft.Leader {
			return n
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("single node did not elect itself")
	return nil
}

// TestProposeAsyncGroupCommit drives 32 concurrent proposers through the
// batched path over a deliberately slow storage and asserts (a) every
// proposal lands at a distinct contiguous index, and (b) the number of
// WAL frames written is far below the number of proposals — i.e. the
// flush loop actually coalesced concurrent callers into group commits.
func TestProposeAsyncGroupCommit(t *testing.T) {
	cs := &raft.CountingStorage{Inner: &slowStorage{Storage: raft.NewMemStorage(), delay: 2 * time.Millisecond}}
	n := startSingleNode(t, cs)
	base := cs.EntrySaves()

	const workers = 32
	const perWorker = 8
	var mu sync.Mutex
	indexes := make(map[int]string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cmd := fmt.Sprintf("w%d-%d", w, i)
				idx, _, err := n.ProposeAsync([]byte(cmd)).Wait()
				if err != nil {
					t.Errorf("propose %s: %v", cmd, err)
					return
				}
				mu.Lock()
				if prev, dup := indexes[idx]; dup {
					t.Errorf("index %d assigned to both %s and %s", idx, prev, cmd)
				}
				indexes[idx] = cmd
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	total := workers * perWorker
	if len(indexes) != total {
		t.Fatalf("got %d distinct indexes, want %d", len(indexes), total)
	}
	frames := cs.EntrySaves() - base
	if frames >= uint64(total)/2 {
		t.Errorf("%d WAL frames for %d proposals: group commit did not coalesce", frames, total)
	}
	t.Logf("%d proposals in %d WAL frames (%.2f frames/op)", total, frames, float64(frames)/float64(total))
}

// TestProposeAsyncOnFollowerFails mirrors the synchronous contract: a
// non-leader fails the future with ErrNotLeader.
func TestProposeAsyncOnFollowerFails(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.ID() == lid {
			continue
		}
		if _, _, err := n.ProposeAsync([]byte("x")).Wait(); !errors.Is(err, raft.ErrNotLeader) {
			if _, role, _ := n.Status(); role != raft.Leader {
				t.Fatalf("follower %s accepted an async proposal: %v", n.ID(), err)
			}
		}
	}
}

// TestProposeAsyncAfterStop fails fast instead of hanging.
func TestProposeAsyncAfterStop(t *testing.T) {
	n := startSingleNode(t, nil)
	n.Stop()
	_, _, err := n.ProposeAsync([]byte("late")).Wait()
	if !errors.Is(err, raft.ErrStopped) && !errors.Is(err, raft.ErrNotLeader) {
		t.Fatalf("propose after stop: err = %v", err)
	}
}

// TestGroupCommitDurableAfterCrash is the batched-WAL durability contract:
// concurrent proposers stream commands through ProposeAsync while the node
// is stopped mid-flight; on recovery, every proposal that was ACKED must
// be present in the reopened WAL at its assigned index. Proposals failed
// with ErrStopped/ErrNotLeader carry no durability promise.
func TestGroupCommitDurableAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	fs, err := raft.OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	n := startSingleNode(t, fs)

	const workers = 16
	var mu sync.Mutex
	acked := make(map[int]string)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cmd := fmt.Sprintf("w%d-%d", w, i)
				idx, _, err := n.ProposeAsync([]byte(cmd)).Wait()
				if err != nil {
					return // stop raced the proposal: no durability promise
				}
				mu.Lock()
				acked[idx] = cmd
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond) // let batches form and flush
	close(stop)
	n.Stop() // hard stop with proposals in flight
	wg.Wait()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if len(acked) == 0 {
		t.Fatal("no proposals were acked before the crash")
	}

	re, err := raft.OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_, _, log, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	for idx, cmd := range acked {
		if idx > len(log) {
			t.Fatalf("acked index %d (%s) missing: recovered log ends at %d", idx, cmd, len(log))
		}
		if got := string(log[idx-1].Command); got != cmd {
			t.Fatalf("index %d: recovered %q, acked %q", idx, got, cmd)
		}
	}
	t.Logf("%d acked proposals all recovered (log length %d)", len(acked), len(log))
}
