package raft

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTornWrite is returned by a FaultStorage whose next write was scripted
// to tear: the process "crashed" mid-frame, so the frame never became
// durable. The node fail-stops on it, which is exactly the real-world
// behavior a torn final WAL frame models — the write was in flight when the
// machine died, nothing after it was externalized, and recovery replays the
// longest durable prefix.
var ErrTornWrite = errors.New("faultstorage: torn write (simulated crash during fsync)")

// FaultStorage wraps a Storage with deterministic, scripted fault
// injection for the chaos harness:
//
//   - FailNextSaveState / FailNextSaveEntries make the next matching write
//     return an error without reaching the inner store (a failed fsync);
//   - TearNextWrite makes the next write of either kind return ErrTornWrite
//     without reaching the inner store (a crash mid-frame: the final WAL
//     frame is torn and recovery sees only the durable prefix);
//   - SetStall delays every write (a stalling disk).
//
// Faults never corrupt the inner store: an injected failure means the
// bytes never hit the disk, matching FileStorage's recovery contract
// (readFrames ignores a torn tail). The node layer turns any storage error
// into an explicit fail-stop, so a wounded node halts loudly instead of
// running on unpersisted state; the harness distinguishes "crashed as
// designed" (Done closed, StorageErr non-nil) from silent corruption.
//
// The zero fault set is transparent: every call passes straight through.
// ClearFaults re-arms nothing and resets the stall, which is what a
// "repair + restart" chaos event wants before reopening the node.
type FaultStorage struct {
	inner Storage

	mu          sync.Mutex
	failState   error         // next SaveState returns this, one-shot; guarded by mu
	failEntries error         // next SaveEntries returns this, one-shot; guarded by mu
	failSnap    error         // next SaveSnapshot returns this, one-shot; guarded by mu
	tearNext    bool          // next write of any kind tears; guarded by mu
	stall       time.Duration // every write sleeps this long first; guarded by mu

	injected atomic.Uint64 // faults actually delivered
}

// NewFaultStorage wraps inner (e.g. a FileStorage for file-backed WALs, or
// a MemStorage for fast in-process runs).
func NewFaultStorage(inner Storage) *FaultStorage {
	return &FaultStorage{inner: inner}
}

// FailNextSaveState arms a one-shot error for the next SaveState call.
func (f *FaultStorage) FailNextSaveState(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failState = err
}

// FailNextSaveEntries arms a one-shot error for the next SaveEntries call.
func (f *FaultStorage) FailNextSaveEntries(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failEntries = err
}

// FailNextSaveSnapshot arms a one-shot error for the next SaveSnapshot
// call (a failed snapshot fsync: the image never became durable, so the
// log prefix must not be dropped — the node fail-stops).
func (f *FaultStorage) FailNextSaveSnapshot(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSnap = err
}

// TearNextWrite arms a one-shot torn write: the next save of any kind
// fails with ErrTornWrite and persists nothing.
func (f *FaultStorage) TearNextWrite() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearNext = true
}

// SetStall makes every subsequent write sleep d before touching the inner
// store (0 clears it).
func (f *FaultStorage) SetStall(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall = d
}

// ClearFaults disarms every pending fault and stall (repair before restart).
func (f *FaultStorage) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failState = nil
	f.failEntries = nil
	f.failSnap = nil
	f.tearNext = false
	f.stall = 0
}

// Injected returns how many faults have actually fired.
func (f *FaultStorage) Injected() uint64 { return f.injected.Load() }

// writeKind selects which one-shot fault a gate call can consume.
type writeKind uint8

const (
	writeState writeKind = iota
	writeEntries
	writeSnapshot
)

// gate applies the stall and consumes at most one armed fault, returning
// the error to inject (nil = pass through).
func (f *FaultStorage) gate(kind writeKind) error {
	f.mu.Lock()
	stall := f.stall
	var err error
	switch {
	case f.tearNext:
		f.tearNext = false
		err = ErrTornWrite
	case kind == writeState && f.failState != nil:
		err = f.failState
		f.failState = nil
	case kind == writeEntries && f.failEntries != nil:
		err = f.failEntries
		f.failEntries = nil
	case kind == writeSnapshot && f.failSnap != nil:
		err = f.failSnap
		f.failSnap = nil
	}
	f.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	if err != nil {
		f.injected.Add(1)
	}
	return err
}

// SaveState implements Storage.
func (f *FaultStorage) SaveState(hs HardState) error {
	if err := f.gate(writeState); err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	return f.inner.SaveState(hs)
}

// SaveEntries implements Storage.
func (f *FaultStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	if err := f.gate(writeEntries); err != nil {
		return fmt.Errorf("save entries: %w", err)
	}
	return f.inner.SaveEntries(firstIndex, entries)
}

// SaveSnapshot implements Storage.
func (f *FaultStorage) SaveSnapshot(snap LogSnapshot) error {
	if err := f.gate(writeSnapshot); err != nil {
		return fmt.Errorf("save snapshot: %w", err)
	}
	return f.inner.SaveSnapshot(snap)
}

// Load implements Storage: recovery sees exactly what the inner store made
// durable (injected failures never reached it).
func (f *FaultStorage) Load() (HardState, LogSnapshot, []LogEntry, error) {
	return f.inner.Load()
}

// Close implements Storage.
func (f *FaultStorage) Close() error { return f.inner.Close() }
