// Package raft is an executable Raft-like consensus runtime with hot
// single-node reconfiguration — the Go counterpart of the paper's extracted
// OCaml protocol plus its "small, unverified network library wrapper" (§7).
//
// The protocol follows the SRaft specification this repository refines into
// Adore (packages raftnet/sraft/refine), made incremental and practical:
//
//   - randomized election timeouts and heartbeats drive leader election;
//   - log replication uses standard AppendEntries consistency checks
//     instead of whole-log shipping;
//   - a new leader immediately appends a no-op entry in its term, which
//     both lets it commit (Raft's current-term commitment rule) and
//     establishes the R3 precondition for reconfiguration;
//   - configuration changes are special log entries that take effect the
//     moment they are appended ("hot"), guarded by R1 (one node at a
//     time), R2 (no uncommitted config entry), and R3 (a committed entry
//     in the leader's current term) — the certified algorithm of the
//     paper, with the published bug toggleable for experiments.
//
// Transports are pluggable: an in-memory network with injectable latency,
// loss, and partitions (package transport), and a TCP transport over
// encoding/gob for real deployments.
package raft

import (
	"fmt"

	"adore/internal/types"
)

// EntryKind distinguishes runtime log entries.
type EntryKind uint8

const (
	// EntryCommand carries an opaque state-machine command.
	EntryCommand EntryKind = iota
	// EntryNoOp is the leader's term-opening barrier entry.
	EntryNoOp
	// EntryConfig carries a new member list (hot reconfiguration).
	EntryConfig
)

// String implements fmt.Stringer.
func (k EntryKind) String() string {
	switch k {
	case EntryCommand:
		return "cmd"
	case EntryNoOp:
		return "noop"
	case EntryConfig:
		return "config"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// LogEntry is one slot of the replicated log. Index 0 is unused (logs are
// 1-indexed, as in the Raft paper).
type LogEntry struct {
	Term    types.Time
	Kind    EntryKind
	Command []byte
	Members []types.NodeID // EntryConfig only
}

// MessageType enumerates the runtime's RPCs, modeled as asynchronous
// messages.
type MessageType uint8

const (
	// MsgVoteRequest / MsgVoteResponse implement leader election.
	MsgVoteRequest MessageType = iota
	MsgVoteResponse
	// MsgAppendEntries / MsgAppendResponse implement replication and
	// heartbeats.
	MsgAppendEntries
	MsgAppendResponse
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case MsgVoteRequest:
		return "VoteRequest"
	case MsgVoteResponse:
		return "VoteResponse"
	case MsgAppendEntries:
		return "AppendEntries"
	case MsgAppendResponse:
		return "AppendResponse"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(t))
	}
}

// Message is the single wire format for all four RPCs (gob-encodable).
type Message struct {
	Type MessageType
	From types.NodeID
	To   types.NodeID
	Term types.Time

	// Vote requests.
	LastLogIndex int
	LastLogTerm  types.Time

	// Append requests.
	PrevLogIndex int
	PrevLogTerm  types.Time
	Entries      []LogEntry
	LeaderCommit int
	// Seq is a per-leader monotone counter stamped on every AppendEntries
	// and echoed in the response. ReadIndex barriers use it to reject acks
	// generated before the barrier's confirmation round (an in-flight
	// response from an older heartbeat must not confirm a fresh barrier).
	Seq uint64

	// Responses.
	Granted    bool // vote granted
	Success    bool // append accepted
	MatchIndex int  // highest replicated index on success
	HintIndex  int  // on append rejection: where the follower's log ends
}

// ApplyMsg is delivered on the node's apply channel for every committed
// entry, in log order.
type ApplyMsg struct {
	Index   int
	Term    types.Time
	Kind    EntryKind
	Command []byte
	Members []types.NodeID // EntryConfig
}

// Transport sends messages between nodes. Send must not block for long and
// may drop messages silently; the protocol tolerates loss.
type Transport interface {
	// Send transmits m to m.To (best effort).
	Send(m Message)
	// Close releases transport resources for this endpoint.
	Close() error
}
