// Package raft is an executable Raft-like consensus runtime with hot
// single-node reconfiguration — the Go counterpart of the paper's extracted
// OCaml protocol plus its "small, unverified network library wrapper" (§7).
//
// The protocol itself lives in the sans-IO subpackage raftcore: a pure
// state machine stepped by messages and logical ticks that emits its
// effects as Ready batches. This package is the runtime driver around it —
// goroutines, wall-clock timers, the group-commit WAL, and transports.
// Node executes each Ready in the order the core's contract requires:
// persist the hard state and log suffix first, then send messages, resolve
// read barriers, and deliver committed entries. That ordering preserves
// the acked⇒durable invariant (nothing reaches a peer or client before
// the durable write that backs it), and a failed persist fail-stops the
// node before anything from the batch escapes.
//
// The protocol follows the SRaft specification this repository refines into
// Adore (packages raftnet/sraft/refine), made incremental and practical:
//
//   - randomized election timeouts and heartbeats drive leader election;
//   - log replication uses standard AppendEntries consistency checks
//     instead of whole-log shipping;
//   - a new leader immediately appends a no-op entry in its term, which
//     both lets it commit (Raft's current-term commitment rule) and
//     establishes the R3 precondition for reconfiguration;
//   - configuration changes are special log entries that take effect the
//     moment they are appended ("hot"), guarded by R1 (one node at a
//     time), R2 (no uncommitted config entry), and R3 (a committed entry
//     in the leader's current term) — the certified algorithm of the
//     paper, with the published bug toggleable for experiments.
//
// Transports are pluggable: an in-memory network with injectable latency,
// loss, and partitions (package transport), and a TCP transport over
// encoding/gob for real deployments.
package raft

import (
	"adore/internal/raft/raftcore"
)

// The wire and log types are defined in the sans-IO core and re-exported
// here so existing callers (transports, cluster harness, chaos, kvstore)
// keep compiling unchanged.

// Role is a node's protocol role.
type Role = raftcore.Role

const (
	// Follower, Candidate, Leader are the standard Raft roles.
	Follower  = raftcore.Follower
	Candidate = raftcore.Candidate
	Leader    = raftcore.Leader
	// PreCandidate is the Pre-Vote probing role: the node is sounding out
	// whether it could win an election without yet bumping its term.
	PreCandidate = raftcore.PreCandidate
)

// EntryKind distinguishes runtime log entries.
type EntryKind = raftcore.EntryKind

const (
	// EntryCommand carries an opaque state-machine command.
	EntryCommand = raftcore.EntryCommand
	// EntryNoOp is the leader's term-opening barrier entry.
	EntryNoOp = raftcore.EntryNoOp
	// EntryConfig carries a new member list (hot reconfiguration).
	EntryConfig = raftcore.EntryConfig
	// EntrySnapshot is an apply-stream-only kind: restore the state
	// machine from the snapshot image in Command.
	EntrySnapshot = raftcore.EntrySnapshot
)

// LogEntry is one slot of the replicated log. Index 0 is unused (logs are
// 1-indexed, as in the Raft paper).
type LogEntry = raftcore.LogEntry

// MessageType enumerates the runtime's RPCs, modeled as asynchronous
// messages.
type MessageType = raftcore.MessageType

const (
	// MsgVoteRequest / MsgVoteResponse implement leader election.
	MsgVoteRequest  = raftcore.MsgVoteRequest
	MsgVoteResponse = raftcore.MsgVoteResponse
	// MsgAppendEntries / MsgAppendResponse implement replication and
	// heartbeats.
	MsgAppendEntries  = raftcore.MsgAppendEntries
	MsgAppendResponse = raftcore.MsgAppendResponse
	// MsgInstallSnapshot streams a leader snapshot to a laggard follower.
	MsgInstallSnapshot = raftcore.MsgInstallSnapshot
	// MsgPreVoteRequest / MsgPreVoteResponse implement the term-neutral
	// Pre-Vote phase that precedes a real election.
	MsgPreVoteRequest  = raftcore.MsgPreVoteRequest
	MsgPreVoteResponse = raftcore.MsgPreVoteResponse
	// MsgTimeoutNow tells a caught-up transfer target to campaign
	// immediately, bypassing Pre-Vote and leader stickiness.
	MsgTimeoutNow = raftcore.MsgTimeoutNow
)

// Message is the single wire format for all four RPCs (gob-encodable).
type Message = raftcore.Message

// ApplyMsg is delivered on the node's apply channel for every committed
// entry, in log order.
type ApplyMsg = raftcore.ApplyMsg

// HardState is the durable per-node protocol state that Raft requires to
// survive crashes: the current term and the vote cast in it.
type HardState = raftcore.HardState

// Counters are the core's monotonic election-disruption metrics (elections,
// pre-vote rounds, term bumps, step-downs, transfers), exported through
// Node.Snapshot for monitors and experiments.
type Counters = raftcore.Counters

// LogSnapshot is a durable summary of the committed log prefix [1, Index]:
// a state-machine image plus splice metadata. (The name avoids a clash
// with Node.Snapshot, the consistent status view.)
type LogSnapshot = raftcore.Snapshot

// GroupID identifies one raft group (shard) among the many a process can
// host. The sans-IO core is group-oblivious — a Core instance IS one group —
// so the ID lives purely in the infrastructure layers: transports stamp it
// on outgoing envelopes and demultiplex inbound traffic by it, storage
// namespaces WAL directories by it, and the chaos oracles partition their
// checks by it. Single-group deployments use group 0 everywhere.
type GroupID uint32

// Envelope is a group-tagged message: the routing unit of the multiplexing
// transports. One socket (or in-memory link) per peer carries envelopes for
// every group; the per-group endpoint stamps Group on send and the receiver
// strips it when demultiplexing into that group's inbox. The core never
// sees an Envelope — only the bare Message inside.
type Envelope struct {
	Group GroupID
	Msg   Message
}

// Transport sends messages between nodes. Send must not block for long and
// may drop messages silently; the protocol tolerates loss.
type Transport interface {
	// Send transmits m to m.To (best effort).
	Send(m Message)
	// Close releases transport resources for this endpoint.
	Close() error
}
