package raft_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"adore/internal/raft"
)

// TestFaultStorageInjectsOneShotErrors checks that an armed fault fires on
// exactly one call, never reaches the inner store, and then disarms.
func TestFaultStorageInjectsOneShotErrors(t *testing.T) {
	inner := raft.NewMemStorage()
	fs := raft.NewFaultStorage(inner)

	boom := errors.New("disk on fire")
	fs.FailNextSaveEntries(boom)
	if err := fs.SaveEntries(1, []raft.LogEntry{{Term: 1}}); !errors.Is(err, boom) {
		t.Fatalf("SaveEntries error = %v, want %v", err, boom)
	}
	if _, _, log, _ := inner.Load(); len(log) != 0 {
		t.Fatalf("failed write reached the inner store: %d entries", len(log))
	}
	// One-shot: the next write goes through.
	if err := fs.SaveEntries(1, []raft.LogEntry{{Term: 1}}); err != nil {
		t.Fatalf("second SaveEntries: %v", err)
	}

	fs.FailNextSaveState(boom)
	if err := fs.SaveState(raft.HardState{Term: 7}); !errors.Is(err, boom) {
		t.Fatalf("SaveState error = %v, want %v", err, boom)
	}
	if hs, _, _, _ := inner.Load(); hs.Term != 0 {
		t.Fatalf("failed state write reached the inner store: term %d", hs.Term)
	}
	if err := fs.SaveState(raft.HardState{Term: 7}); err != nil {
		t.Fatalf("second SaveState: %v", err)
	}
	if got := fs.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

// TestFaultStorageTornWriteReplaysDurablePrefix writes through to a real
// file WAL, tears the final frame, and checks that recovery (a fresh
// FileStorage over the same path) sees exactly the longest durable prefix.
func TestFaultStorageTornWriteReplaysDurablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	inner, err := raft.OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	fs := raft.NewFaultStorage(inner)

	durable := []raft.LogEntry{
		{Term: 1, Kind: raft.EntryNoOp},
		{Term: 1, Kind: raft.EntryCommand, Command: []byte("a")},
	}
	if err := fs.SaveState(raft.HardState{Term: 1, VotedFor: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveEntries(1, durable); err != nil {
		t.Fatal(err)
	}

	fs.TearNextWrite()
	err = fs.SaveEntries(3, []raft.LogEntry{{Term: 1, Kind: raft.EntryCommand, Command: []byte("torn")}})
	if !errors.Is(err, raft.ErrTornWrite) {
		t.Fatalf("torn SaveEntries error = %v, want ErrTornWrite", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := raft.OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	hs, _, log, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 1 || hs.VotedFor != 1 {
		t.Fatalf("recovered hard state %+v, want term 1 vote 1", hs)
	}
	if len(log) != len(durable) {
		t.Fatalf("recovered %d entries, want the %d durable ones", len(log), len(durable))
	}
	if string(log[1].Command) != "a" {
		t.Fatalf("recovered entry 2 = %q", log[1].Command)
	}
}

// TestStorageErrorFailStopsNode wounds a leader's WAL and checks the node
// fail-stops explicitly: the propose fails with ErrStorageFailed, Done()
// closes, and StorageErr reports the cause — instead of the old behavior
// of panicking the whole process (or, worse, acking unpersisted state).
func TestStorageErrorFailStopsNode(t *testing.T) {
	fs := raft.NewFaultStorage(raft.NewMemStorage())
	n := startSingleNode(t, fs)

	if _, _, err := n.Propose([]byte("healthy")); err != nil {
		t.Fatalf("healthy propose: %v", err)
	}

	fs.FailNextSaveEntries(errors.New("EIO"))
	_, _, err := n.Propose([]byte("doomed"))
	if !errors.Is(err, raft.ErrStorageFailed) {
		t.Fatalf("propose after wound: err = %v, want ErrStorageFailed", err)
	}
	select {
	case <-n.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("wounded node did not halt")
	}
	if n.StorageErr() == nil {
		t.Fatal("StorageErr() = nil after fail-stop")
	}
	// Subsequent client calls fail cleanly rather than hanging.
	if _, _, err := n.Propose([]byte("late")); err == nil {
		t.Fatal("propose on a halted node succeeded")
	}
	if _, _, err := n.ProposeAsync([]byte("late-async")).Wait(); err == nil {
		t.Fatal("async propose on a halted node succeeded")
	}
}

// TestGroupCommitFailStop wounds the WAL under the batched path: every
// future in the doomed batch must resolve with ErrStorageFailed (no waiter
// hangs), and the node must halt.
func TestGroupCommitFailStop(t *testing.T) {
	fs := raft.NewFaultStorage(raft.NewMemStorage())
	n := startSingleNode(t, fs)

	if _, _, err := n.ProposeAsync([]byte("healthy")).Wait(); err != nil {
		t.Fatalf("healthy async propose: %v", err)
	}

	fs.FailNextSaveEntries(errors.New("EIO"))
	props := make([]*raft.Proposal, 4)
	for i := range props {
		props[i] = n.ProposeAsync([]byte(fmt.Sprintf("doomed-%d", i)))
	}
	failed := 0
	for _, p := range props {
		select {
		case <-p.Done():
			if _, _, err := p.Wait(); err != nil {
				failed++
			}
		case <-time.After(2 * time.Second):
			t.Fatal("proposal future never resolved after storage failure")
		}
	}
	if failed == 0 {
		t.Fatal("no proposal failed despite the wounded WAL")
	}
	select {
	case <-n.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("node did not halt after group-commit storage failure")
	}
}

// TestTornCrashNodeRestartsFromDurablePrefix runs a node over a torn WAL:
// the entry whose frame tore is lost, the node halts, and a restart over
// the same file recovers the durable prefix only.
func TestTornCrashNodeRestartsFromDurablePrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	inner, err := raft.OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	fs := raft.NewFaultStorage(inner)
	n := startSingleNode(t, fs)

	var lastIdx int
	for i := 0; i < 3; i++ {
		if lastIdx, _, err = n.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	fs.TearNextWrite()
	if _, _, err := n.Propose([]byte("torn")); !errors.Is(err, raft.ErrStorageFailed) {
		t.Fatalf("torn propose err = %v, want ErrStorageFailed", err)
	}
	n.Stop()
	inner.Close()

	re, err := raft.OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	n2 := startSingleNode(t, re)
	deadline := time.Now().Add(5 * time.Second)
	for n2.CommitIndex() < lastIdx && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := n2.CommitIndex(); got < lastIdx {
		t.Fatalf("restarted node commit index %d, want ≥ %d", got, lastIdx)
	}
	if n2.StorageErr() != nil {
		t.Fatalf("restarted node unexpectedly wounded: %v", n2.StorageErr())
	}
}
