package raft

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adore/internal/types"
)

func TestMemStorageRoundTrip(t *testing.T) {
	st := NewMemStorage()
	if err := st.SaveState(HardState{Term: 3, VotedFor: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveEntries(1, []LogEntry{
		{Term: 1, Kind: EntryNoOp},
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
	}); err != nil {
		t.Fatal(err)
	}
	hs, snap, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != 2 {
		t.Errorf("hard state = %+v", hs)
	}
	if snap.Index != 0 {
		t.Errorf("fresh store has snapshot base %d", snap.Index)
	}
	if len(log) != 2 || string(log[1].Command) != "a" {
		t.Errorf("log = %+v", log)
	}
	// Truncating rewrite.
	if err := st.SaveEntries(2, []LogEntry{{Term: 2, Kind: EntryCommand, Command: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	_, _, log, _ = st.Load()
	if len(log) != 2 || string(log[1].Command) != "b" {
		t.Errorf("log after truncate = %+v", log)
	}
	if err := st.SaveEntries(99, nil); err == nil {
		t.Error("out-of-range SaveEntries accepted")
	}
}

func TestMemStorageSnapshot(t *testing.T) {
	st := NewMemStorage()
	entries := make([]LogEntry, 5)
	for i := range entries {
		entries[i] = LogEntry{Term: 1, Kind: EntryCommand, Command: []byte{byte('a' + i)}}
	}
	if err := st.SaveEntries(1, entries); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(LogSnapshot{Index: 3, Term: 1, Members: []types.NodeID{1, 2, 3}, Data: []byte("img")}); err != nil {
		t.Fatal(err)
	}
	_, snap, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Index != 3 || string(snap.Data) != "img" {
		t.Fatalf("snapshot base = %+v", snap)
	}
	if len(log) != 2 || string(log[0].Command) != "d" || string(log[1].Command) != "e" {
		t.Fatalf("retained suffix = %+v", log)
	}
	// Writes below the base are rejected: that prefix no longer exists.
	if err := st.SaveEntries(2, entries[:1]); err == nil {
		t.Error("SaveEntries below snapshot base accepted")
	}
	// A stale snapshot is a no-op, not a regression of the base.
	if err := st.SaveSnapshot(LogSnapshot{Index: 2, Term: 1}); err != nil {
		t.Fatal(err)
	}
	if _, snap, _, _ := st.Load(); snap.Index != 3 {
		t.Errorf("stale snapshot moved base to %d", snap.Index)
	}
	// A snapshot covering the whole log leaves an empty suffix.
	if err := st.SaveSnapshot(LogSnapshot{Index: 5, Term: 1, Data: []byte("img2")}); err != nil {
		t.Fatal(err)
	}
	if _, snap, log, _ := st.Load(); snap.Index != 5 || len(log) != 0 {
		t.Errorf("full-log snapshot: base=%d suffix=%+v", snap.Index, log)
	}
}

// TestMemStorageLoadBounded is the regression test for the O(history) Load:
// with a snapshot base near the tip, Load must copy (and allocate) only the
// retained suffix, regardless of how many entries ever existed.
func TestMemStorageLoadBounded(t *testing.T) {
	st := NewMemStorage()
	const total = 4096
	entries := make([]LogEntry, total)
	for i := range entries {
		entries[i] = LogEntry{Term: 1, Kind: EntryCommand, Command: []byte("x")}
	}
	if err := st.SaveEntries(1, entries); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(LogSnapshot{Index: total - 8, Term: 1}); err != nil {
		t.Fatal(err)
	}
	_, _, log, _ := st.Load()
	if len(log) != 8 {
		t.Fatalf("suffix length = %d, want 8", len(log))
	}
	allocs := testing.AllocsPerRun(100, func() {
		st.Load()
	})
	if allocs > 4 {
		t.Errorf("Load allocates %.0f times for an 8-entry suffix (history %d): not suffix-bounded", allocs, total)
	}
}

func TestFileStorageSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveState(HardState{Term: 7, VotedFor: 1}); err != nil {
		t.Fatal(err)
	}
	entries := []LogEntry{
		{Term: 7, Kind: EntryNoOp},
		{Term: 7, Kind: EntryConfig, Members: []types.NodeID{1, 2}},
		{Term: 7, Kind: EntryCommand, Command: []byte("x")},
	}
	if err := st.SaveEntries(1, entries); err != nil {
		t.Fatal(err)
	}
	// Truncate-and-replace the tail.
	if err := st.SaveEntries(3, []LogEntry{{Term: 8, Kind: EntryCommand, Command: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hs, snap, log, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 7 || hs.VotedFor != 1 {
		t.Errorf("hard state after reopen = %+v", hs)
	}
	if snap.Index != 0 {
		t.Errorf("uncompacted store has snapshot base %d", snap.Index)
	}
	if len(log) != 3 {
		t.Fatalf("log length = %d, want 3", len(log))
	}
	if log[1].Kind != EntryConfig || len(log[1].Members) != 2 {
		t.Errorf("config entry lost: %+v", log[1])
	}
	if string(log[2].Command) != "y" || log[2].Term != 8 {
		t.Errorf("truncated tail wrong: %+v", log[2])
	}
}

// TestFileStorageTornBatchFrame simulates a crash in the middle of writing
// a group-commit frame: the active WAL segment ends with a partial
// multi-entry record. Replay must keep every frame that was fully written
// (the acked batches — acks only happen after the frame's Sync returns) and
// discard the torn frame whole, leaving the WAL appendable.
func TestFileStorageTornBatchFrame(t *testing.T) {
	for name, cut := range map[string]func(frameStart, frameEnd int64) int64{
		// Torn inside the gob body of the batch frame.
		"mid-body": func(s, e int64) int64 { return s + (e-s)/2 },
		// Torn inside the 4-byte length prefix itself.
		"mid-header": func(s, e int64) int64 { return s + 2 },
	} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wal")
			st, err := OpenFileStorage(dir)
			if err != nil {
				t.Fatal(err)
			}
			seg := segPath(dir, 1) // the first generation's active segment
			// Batch 1: the acked group commit (one frame, three entries).
			if err := st.SaveEntries(1, []LogEntry{
				{Term: 1, Kind: EntryNoOp},
				{Term: 1, Kind: EntryCommand, Command: []byte("a1")},
				{Term: 1, Kind: EntryCommand, Command: []byte("a2")},
			}); err != nil {
				t.Fatal(err)
			}
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			afterBatch1 := info.Size()
			// Batch 2: the in-flight group commit the crash tears.
			batch2 := make([]LogEntry, 5)
			for i := range batch2 {
				batch2[i] = LogEntry{Term: 1, Kind: EntryCommand, Command: []byte(fmt.Sprintf("b%d", i))}
			}
			if err := st.SaveEntries(4, batch2); err != nil {
				t.Fatal(err)
			}
			info, err = os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			afterBatch2 := info.Size()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// Crash: truncate inside batch 2's frame.
			if err := os.Truncate(seg, cut(afterBatch1, afterBatch2)); err != nil {
				t.Fatal(err)
			}

			re, err := OpenFileStorage(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			_, _, log, err := re.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(log) != 3 {
				t.Fatalf("recovered log has %d entries, want 3 (batch 1 only)", len(log))
			}
			if string(log[1].Command) != "a1" || string(log[2].Command) != "a2" {
				t.Fatalf("batch 1 corrupted by torn batch 2: %+v", log)
			}
			// The WAL must remain appendable after discarding the torn tail.
			if err := re.SaveEntries(4, []LogEntry{{Term: 2, Kind: EntryCommand, Command: []byte("c")}}); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenFileStorage(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			_, _, log, err = re2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(log) != 4 || string(log[3].Command) != "c" {
				t.Fatalf("append after torn-frame recovery lost data: %+v", log)
			}
		})
	}
}

func TestFileStorageFreshFile(t *testing.T) {
	st, err := OpenFileStorage(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	hs, snap, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 0 || snap.Index != 0 || len(log) != 0 {
		t.Errorf("fresh store: %+v %+v %v", hs, snap, log)
	}
}

// TestFileStorageSnapshotRecovery covers the compaction contract end to
// end: SaveSnapshot makes the image durable, drops the covered segments,
// and a reopen recovers base + suffix without materializing history.
func TestFileStorageSnapshotRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveState(HardState{Term: 2, VotedFor: 1}); err != nil {
		t.Fatal(err)
	}
	entries := make([]LogEntry, 6)
	for i := range entries {
		entries[i] = LogEntry{Term: 1, Kind: EntryCommand, Command: []byte(fmt.Sprintf("e%d", i+1))}
	}
	if err := st.SaveEntries(1, entries); err != nil {
		t.Fatal(err)
	}
	want := LogSnapshot{Index: 4, Term: 1, Members: []types.NodeID{1, 2, 3}, Data: []byte("state@4")}
	if err := st.SaveSnapshot(want); err != nil {
		t.Fatal(err)
	}
	// The suffix stays writable above the new base.
	if err := st.SaveEntries(7, []LogEntry{{Term: 2, Kind: EntryCommand, Command: []byte("e7")}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	hs, snap, log, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 2 || hs.VotedFor != 1 {
		t.Errorf("hard state = %+v", hs)
	}
	if snap.Index != 4 || snap.Term != 1 || string(snap.Data) != "state@4" || len(snap.Members) != 3 {
		t.Fatalf("recovered snapshot = %+v, want %+v", snap, want)
	}
	if len(log) != 3 || string(log[0].Command) != "e5" || string(log[2].Command) != "e7" {
		t.Fatalf("recovered suffix = %+v", log)
	}
	// Exactly one snapshot file survives; the pre-snapshot segments are
	// unlinked (compaction is an unlink, not a rewrite).
	var snaps, segs int
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		switch {
		case strings.HasSuffix(de.Name(), ".snap"):
			snaps++
		case strings.HasSuffix(de.Name(), ".seg"):
			segs++
		}
	}
	if snaps != 1 {
		t.Errorf("%d snapshot files, want 1", snaps)
	}
	if segs != re.SegmentCount() {
		t.Errorf("%d segment files on disk, SegmentCount reports %d", segs, re.SegmentCount())
	}
}

// TestFileStorageCorruptSnapshotFailStop: a flipped bit in the snapshot
// file must fail recovery loudly — running without the committed state the
// file summarized would be silent divergence.
func TestFileStorageCorruptSnapshotFailStop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveEntries(1, []LogEntry{
		{Term: 1, Kind: EntryNoOp},
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(LogSnapshot{Index: 2, Term: 1, Data: []byte("image-bytes")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := snapPath(dir, 2)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStorage(dir); err == nil {
		t.Fatal("recovery accepted a corrupt snapshot file")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt snapshot error = %v, want checksum mismatch", err)
	}
}

// TestFileStorageMissingSnapshotFailStop: if the WAL's segments build on a
// snapshot whose file is gone, recovery must refuse to fabricate a log.
func TestFileStorageMissingSnapshotFailStop(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveEntries(1, []LogEntry{
		{Term: 1, Kind: EntryNoOp},
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot(LogSnapshot{Index: 2, Term: 1, Data: []byte("img")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(snapPath(dir, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStorage(dir); err == nil {
		t.Fatal("recovery accepted a WAL whose snapshot file is missing")
	}
}

// TestFileStorageTornSnapshotTemp: a crash during the snapshot write leaves
// only a .tmp file; recovery discards it and keeps the full pre-snapshot
// log — the prefix was never dropped because the rename never happened.
func TestFileStorageTornSnapshotTemp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveEntries(1, []LogEntry{
		{Term: 1, Kind: EntryNoOp},
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulated torn snapshot write: partial bytes, no rename.
	if err := os.WriteFile(snapPath(dir, 2)+".tmp", []byte("part"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	_, snap, log, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Index != 0 || len(log) != 2 {
		t.Fatalf("after torn snapshot temp: base=%d suffix=%+v", snap.Index, log)
	}
	if _, err := os.Stat(snapPath(dir, 2) + ".tmp"); !os.IsNotExist(err) {
		t.Error("torn .tmp snapshot not cleaned up on open")
	}
}

// TestFileStorageCompactionUnlinksSegments drives many snapshot cycles and
// asserts the directory stays bounded: old segments are unlinked, not
// rewritten, and only one snapshot file is retained.
func TestFileStorageCompactionUnlinksSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	next := 1
	for round := 0; round < 10; round++ {
		batch := make([]LogEntry, 20)
		for i := range batch {
			batch[i] = LogEntry{Term: 1, Kind: EntryCommand, Command: bytes.Repeat([]byte("p"), 32)}
		}
		if err := st.SaveEntries(next, batch); err != nil {
			t.Fatal(err)
		}
		next += len(batch)
		if err := st.SaveSnapshot(LogSnapshot{Index: next - 1, Term: 1, Data: []byte("img")}); err != nil {
			t.Fatal(err)
		}
	}
	// Each cycle rotates once; everything before the newest snapshot is
	// unlinked, so the live set stays at one active segment (+1 slack for
	// the rotation boundary).
	if n := st.SegmentCount(); n > 2 {
		t.Errorf("SegmentCount = %d after 10 compaction cycles, want <= 2", n)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps int
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".snap") {
			snaps++
		}
	}
	if snaps != 1 {
		t.Errorf("%d snapshot files retained, want 1", snaps)
	}
}
