package raft

import (
	"path/filepath"
	"testing"

	"adore/internal/types"
)

func TestMemStorageRoundTrip(t *testing.T) {
	st := NewMemStorage()
	if err := st.SaveState(HardState{Term: 3, VotedFor: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveEntries(1, []LogEntry{
		{Term: 1, Kind: EntryNoOp},
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
	}); err != nil {
		t.Fatal(err)
	}
	hs, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != 2 {
		t.Errorf("hard state = %+v", hs)
	}
	if len(log) != 3 || string(log[2].Command) != "a" {
		t.Errorf("log = %+v", log)
	}
	// Truncating rewrite.
	if err := st.SaveEntries(2, []LogEntry{{Term: 2, Kind: EntryCommand, Command: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	_, log, _ = st.Load()
	if len(log) != 3 || string(log[2].Command) != "b" {
		t.Errorf("log after truncate = %+v", log)
	}
	if err := st.SaveEntries(99, nil); err == nil {
		t.Error("out-of-range SaveEntries accepted")
	}
}

func TestFileStorageSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveState(HardState{Term: 7, VotedFor: 1}); err != nil {
		t.Fatal(err)
	}
	entries := []LogEntry{
		{Term: 7, Kind: EntryNoOp},
		{Term: 7, Kind: EntryConfig, Members: []types.NodeID{1, 2}},
		{Term: 7, Kind: EntryCommand, Command: []byte("x")},
	}
	if err := st.SaveEntries(1, entries); err != nil {
		t.Fatal(err)
	}
	// Truncate-and-replace the tail.
	if err := st.SaveEntries(3, []LogEntry{{Term: 8, Kind: EntryCommand, Command: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hs, log, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 7 || hs.VotedFor != 1 {
		t.Errorf("hard state after reopen = %+v", hs)
	}
	if len(log) != 4 {
		t.Fatalf("log length = %d, want 4", len(log))
	}
	if log[2].Kind != EntryConfig || len(log[2].Members) != 2 {
		t.Errorf("config entry lost: %+v", log[2])
	}
	if string(log[3].Command) != "y" || log[3].Term != 8 {
		t.Errorf("truncated tail wrong: %+v", log[3])
	}
}

func TestFileStorageFreshFile(t *testing.T) {
	st, err := OpenFileStorage(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	hs, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 0 || len(log) != 1 {
		t.Errorf("fresh store: %+v %v", hs, log)
	}
}
