package raft

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"adore/internal/types"
)

func TestMemStorageRoundTrip(t *testing.T) {
	st := NewMemStorage()
	if err := st.SaveState(HardState{Term: 3, VotedFor: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveEntries(1, []LogEntry{
		{Term: 1, Kind: EntryNoOp},
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
	}); err != nil {
		t.Fatal(err)
	}
	hs, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 3 || hs.VotedFor != 2 {
		t.Errorf("hard state = %+v", hs)
	}
	if len(log) != 3 || string(log[2].Command) != "a" {
		t.Errorf("log = %+v", log)
	}
	// Truncating rewrite.
	if err := st.SaveEntries(2, []LogEntry{{Term: 2, Kind: EntryCommand, Command: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	_, log, _ = st.Load()
	if len(log) != 3 || string(log[2].Command) != "b" {
		t.Errorf("log after truncate = %+v", log)
	}
	if err := st.SaveEntries(99, nil); err == nil {
		t.Error("out-of-range SaveEntries accepted")
	}
}

func TestFileStorageSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	st, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveState(HardState{Term: 7, VotedFor: 1}); err != nil {
		t.Fatal(err)
	}
	entries := []LogEntry{
		{Term: 7, Kind: EntryNoOp},
		{Term: 7, Kind: EntryConfig, Members: []types.NodeID{1, 2}},
		{Term: 7, Kind: EntryCommand, Command: []byte("x")},
	}
	if err := st.SaveEntries(1, entries); err != nil {
		t.Fatal(err)
	}
	// Truncate-and-replace the tail.
	if err := st.SaveEntries(3, []LogEntry{{Term: 8, Kind: EntryCommand, Command: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStorage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	hs, log, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 7 || hs.VotedFor != 1 {
		t.Errorf("hard state after reopen = %+v", hs)
	}
	if len(log) != 4 {
		t.Fatalf("log length = %d, want 4", len(log))
	}
	if log[2].Kind != EntryConfig || len(log[2].Members) != 2 {
		t.Errorf("config entry lost: %+v", log[2])
	}
	if string(log[3].Command) != "y" || log[3].Term != 8 {
		t.Errorf("truncated tail wrong: %+v", log[3])
	}
}

// TestFileStorageTornBatchFrame simulates a crash in the middle of writing
// a group-commit frame: the WAL ends with a partial multi-entry record.
// Replay must keep every frame that was fully written (the acked batches —
// acks only happen after the frame's Sync returns) and discard the torn
// frame whole, leaving the WAL appendable.
func TestFileStorageTornBatchFrame(t *testing.T) {
	for name, cut := range map[string]func(frameStart, frameEnd int64) int64{
		// Torn inside the gob body of the batch frame.
		"mid-body": func(s, e int64) int64 { return s + (e-s)/2 },
		// Torn inside the 4-byte length prefix itself.
		"mid-header": func(s, e int64) int64 { return s + 2 },
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal")
			st, err := OpenFileStorage(path)
			if err != nil {
				t.Fatal(err)
			}
			// Batch 1: the acked group commit (one frame, three entries).
			if err := st.SaveEntries(1, []LogEntry{
				{Term: 1, Kind: EntryNoOp},
				{Term: 1, Kind: EntryCommand, Command: []byte("a1")},
				{Term: 1, Kind: EntryCommand, Command: []byte("a2")},
			}); err != nil {
				t.Fatal(err)
			}
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			afterBatch1 := info.Size()
			// Batch 2: the in-flight group commit the crash tears.
			batch2 := make([]LogEntry, 5)
			for i := range batch2 {
				batch2[i] = LogEntry{Term: 1, Kind: EntryCommand, Command: []byte(fmt.Sprintf("b%d", i))}
			}
			if err := st.SaveEntries(4, batch2); err != nil {
				t.Fatal(err)
			}
			info, err = os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			afterBatch2 := info.Size()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// Crash: truncate inside batch 2's frame.
			if err := os.Truncate(path, cut(afterBatch1, afterBatch2)); err != nil {
				t.Fatal(err)
			}

			re, err := OpenFileStorage(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			_, log, err := re.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(log) != 4 {
				t.Fatalf("recovered log has %d entries, want 3 (batch 1 only)", len(log)-1)
			}
			if string(log[2].Command) != "a1" || string(log[3].Command) != "a2" {
				t.Fatalf("batch 1 corrupted by torn batch 2: %+v", log[1:])
			}
			// The WAL must remain appendable after discarding the torn tail.
			if err := re.SaveEntries(4, []LogEntry{{Term: 2, Kind: EntryCommand, Command: []byte("c")}}); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenFileStorage(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			_, log, err = re2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(log) != 5 || string(log[4].Command) != "c" {
				t.Fatalf("append after torn-frame recovery lost data: %+v", log[1:])
			}
		})
	}
}

func TestFileStorageFreshFile(t *testing.T) {
	st, err := OpenFileStorage(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	hs, log, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if hs.Term != 0 || len(log) != 1 {
		t.Errorf("fresh store: %+v %v", hs, log)
	}
}
