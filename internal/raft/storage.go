package raft

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// Storage persists a node's hard state and log. Implementations must make
// each call durable before returning — the protocol's safety after a crash
// depends on it. A nil Storage in Options means the node is volatile
// (fine for models, benchmarks, and tests that never restart nodes).
type Storage interface {
	// SaveState durably records the term and vote.
	SaveState(hs HardState) error
	// SaveEntries durably replaces the log suffix starting at firstIndex
	// (1-based) with entries; the log is implicitly truncated at
	// firstIndex before the append.
	SaveEntries(firstIndex int, entries []LogEntry) error
	// Load recovers the persisted state. A fresh store returns zero
	// values and an empty log.
	Load() (HardState, []LogEntry, error)
	// Close releases resources.
	Close() error
}

// MemStorage is an in-memory Storage for tests: durable across Node
// restarts within a process, not across process crashes.
type MemStorage struct {
	mu  sync.Mutex
	hs  HardState  // guarded by mu
	log []LogEntry // 1-based: log[0] unused; guarded by mu
}

// NewMemStorage creates an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{log: make([]LogEntry, 1)}
}

// SaveState implements Storage.
func (m *MemStorage) SaveState(hs HardState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hs = hs
	return nil
}

// SaveEntries implements Storage.
func (m *MemStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if firstIndex < 1 || firstIndex > len(m.log) {
		return fmt.Errorf("raft: SaveEntries at %d outside log of length %d", firstIndex, len(m.log)-1)
	}
	m.log = append(m.log[:firstIndex], entries...)
	return nil
}

// Load implements Storage.
func (m *MemStorage) Load() (HardState, []LogEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LogEntry, len(m.log))
	copy(out, m.log)
	return m.hs, out, nil
}

// Close implements Storage.
func (m *MemStorage) Close() error { return nil }

// FileStorage is an append-only write-ahead log: every state change and
// log mutation is one length-prefixed, independently gob-encoded record;
// Load replays them. The file is compacted on every open (the live state
// is rewritten as two records), so it never grows without bound across
// restarts. A torn final record from a crash mid-write is ignored.
type FileStorage struct {
	mu   sync.Mutex
	path string
	f    *os.File // guarded by mu

	// cached live state for compaction
	hs  HardState  // guarded by mu
	log []LogEntry // guarded by mu

	// scratch is the reused frame-encoding buffer: the append hot path
	// encodes each record into it instead of allocating per record.
	scratch bytes.Buffer // guarded by mu
}

// walRecord is one WAL entry.
type walRecord struct {
	Kind       uint8 // 0 = state, 1 = entries
	HS         HardState
	FirstIndex int
	Entries    []LogEntry
}

// frameHeaderLen is the length prefix preceding each record's gob body.
const frameHeaderLen = 4

// encodeFrameInto serializes one record into buf as a length-prefixed
// standalone gob blob (each record carries its own type table, so streams
// survive appends by later process generations). buf is reset first, so
// callers can reuse one buffer across records and avoid the per-record
// allocations of building each frame from scratch.
func encodeFrameInto(buf *bytes.Buffer, rec walRecord) error {
	buf.Reset()
	var pad [frameHeaderLen]byte
	buf.Write(pad[:])
	if err := gob.NewEncoder(buf).Encode(rec); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:frameHeaderLen], uint32(buf.Len()-frameHeaderLen))
	return nil
}

// readFrames replays every complete record in r, ignoring a torn tail.
func readFrames(r io.Reader, apply func(walRecord)) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		body := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(r, body); err != nil {
			return // torn write: the durable prefix stands
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return
		}
		apply(rec)
	}
}

// OpenFileStorage opens (or creates) a WAL at path, replaying its records.
func OpenFileStorage(path string) (*FileStorage, error) {
	fs := &FileStorage{path: path, log: make([]LogEntry, 1)}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("raft: open wal: %w", err)
	}
	readFrames(f, fs.applyRecordLocked)
	if err := f.Close(); err != nil {
		return nil, err
	}
	// Compact: rewrite the live state as two records through one buffered
	// writer (a single kernel write for the whole rewrite).
	tmp := path + ".tmp"
	nf, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("raft: compact wal: %w", err)
	}
	bw := bufio.NewWriter(nf)
	for _, rec := range []walRecord{
		{Kind: 0, HS: fs.hs},
		{Kind: 1, FirstIndex: 1, Entries: fs.log[1:]},
	} {
		if err := encodeFrameInto(&fs.scratch, rec); err != nil {
			return nil, err
		}
		if _, err := bw.Write(fs.scratch.Bytes()); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if err := nf.Sync(); err != nil {
		return nil, err
	}
	if err := nf.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fs.f = f
	return fs, nil
}

func (fs *FileStorage) applyRecordLocked(rec walRecord) {
	switch rec.Kind {
	case 0:
		fs.hs = rec.HS
	case 1:
		if rec.FirstIndex >= 1 && rec.FirstIndex <= len(fs.log) {
			fs.log = append(fs.log[:rec.FirstIndex], rec.Entries...)
		}
	}
}

func (fs *FileStorage) appendLocked(rec walRecord) error {
	if err := encodeFrameInto(&fs.scratch, rec); err != nil {
		return fmt.Errorf("raft: wal append: %w", err)
	}
	if _, err := fs.f.Write(fs.scratch.Bytes()); err != nil {
		return fmt.Errorf("raft: wal append: %w", err)
	}
	return fs.f.Sync()
}

// SaveState implements Storage.
func (fs *FileStorage) SaveState(hs HardState) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hs = hs
	return fs.appendLocked(walRecord{Kind: 0, HS: hs})
}

// SaveEntries implements Storage.
func (fs *FileStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if firstIndex < 1 || firstIndex > len(fs.log) {
		return fmt.Errorf("raft: SaveEntries at %d outside log of length %d", firstIndex, len(fs.log)-1)
	}
	fs.log = append(fs.log[:firstIndex], entries...)
	return fs.appendLocked(walRecord{Kind: 1, FirstIndex: firstIndex, Entries: entries})
}

// Load implements Storage.
func (fs *FileStorage) Load() (HardState, []LogEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]LogEntry, len(fs.log))
	copy(out, fs.log)
	return fs.hs, out, nil
}

// Close implements Storage.
func (fs *FileStorage) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	err := fs.f.Close()
	fs.f = nil
	return err
}

// CountingStorage wraps a Storage and counts persistence calls. FileStorage
// performs exactly one fsync per SaveState/SaveEntries, so with a
// FileStorage inner the Syncs counter measures fsyncs — the group-commit
// benchmarks use it to show fsyncs per proposal ≪ 1 under concurrent load.
type CountingStorage struct {
	Inner Storage

	stateSaves   atomic.Uint64
	entrySaves   atomic.Uint64
	entriesSaved atomic.Uint64
}

// SaveState implements Storage.
func (c *CountingStorage) SaveState(hs HardState) error {
	c.stateSaves.Add(1)
	return c.Inner.SaveState(hs)
}

// SaveEntries implements Storage.
func (c *CountingStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	c.entrySaves.Add(1)
	c.entriesSaved.Add(uint64(len(entries)))
	return c.Inner.SaveEntries(firstIndex, entries)
}

// Load implements Storage.
func (c *CountingStorage) Load() (HardState, []LogEntry, error) { return c.Inner.Load() }

// Close implements Storage.
func (c *CountingStorage) Close() error { return c.Inner.Close() }

// Syncs returns the total durable-write calls so far (state + entry saves).
func (c *CountingStorage) Syncs() uint64 { return c.stateSaves.Load() + c.entrySaves.Load() }

// EntrySaves returns the number of SaveEntries calls (WAL frames written).
func (c *CountingStorage) EntrySaves() uint64 { return c.entrySaves.Load() }

// EntriesSaved returns the total log entries persisted across all frames.
func (c *CountingStorage) EntriesSaved() uint64 { return c.entriesSaved.Load() }
