package raft

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"adore/internal/types"
)

// Storage persists a node's hard state, snapshot, and log suffix.
// Implementations must make each call durable before returning — the
// protocol's safety after a crash depends on it. A nil Storage in Options
// means the node is volatile (fine for models, benchmarks, and tests that
// never restart nodes).
type Storage interface {
	// SaveState durably records the term and vote.
	SaveState(hs HardState) error
	// SaveEntries durably replaces the log suffix starting at the
	// absolute index firstIndex with entries; the log is implicitly
	// truncated at firstIndex before the append (nil entries = pure
	// truncation). firstIndex must lie in (snapshot index, last index+1].
	SaveEntries(firstIndex int, entries []LogEntry) error
	// SaveSnapshot durably records snap and drops the stored log prefix
	// [1, snap.Index]. The snapshot MUST be durable before any prefix is
	// dropped ("snapshot durable before log drop") — a crash between the
	// two must never lose the only copy of committed state. Entries above
	// snap.Index are retained. A snapshot at or below the current base is
	// a no-op.
	SaveSnapshot(snap LogSnapshot) error
	// Load recovers the persisted state: hard state, the snapshot base
	// (zero Index when none), and the retained entries after the base,
	// without any sentinel. A fresh store returns zero values.
	Load() (HardState, LogSnapshot, []LogEntry, error)
	// Close releases resources.
	Close() error
}

// MemStorage is an in-memory Storage for tests: durable across Node
// restarts within a process, not across process crashes.
type MemStorage struct {
	mu   sync.Mutex
	hs   HardState   // guarded by mu
	base LogSnapshot // snapshot base; guarded by mu
	log  []LogEntry  // suffix after base, sentinel at [0]; guarded by mu
}

// NewMemStorage creates an empty in-memory store.
func NewMemStorage() *MemStorage {
	return &MemStorage{log: make([]LogEntry, 1)}
}

// SaveState implements Storage.
func (m *MemStorage) SaveState(hs HardState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hs = hs
	return nil
}

// SaveEntries implements Storage.
func (m *MemStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := firstIndex - m.base.Index
	if p < 1 || p > len(m.log) {
		return fmt.Errorf("raft: SaveEntries at %d outside log (%d, %d]",
			firstIndex, m.base.Index, m.base.Index+len(m.log)-1)
	}
	m.log = append(m.log[:p], entries...)
	return nil
}

// SaveSnapshot implements Storage.
func (m *MemStorage) SaveSnapshot(snap LogSnapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if snap.Index <= m.base.Index {
		return nil // stale
	}
	m.log = spliceSuffix(m.log, m.base.Index, snap)
	m.base = snap
	return nil
}

// Load implements Storage. The returned slice is a copy of the retained
// suffix only — bounded by the compaction threshold, not by history.
func (m *MemStorage) Load() (HardState, LogSnapshot, []LogEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LogEntry, len(m.log)-1)
	copy(out, m.log[1:])
	return m.hs, m.base, out, nil
}

// Close implements Storage.
func (m *MemStorage) Close() error { return nil }

// spliceSuffix rebuilds a sentinel-prefixed log as the suffix above a new
// snapshot base. oldBase is the previous base index of log.
func spliceSuffix(log []LogEntry, oldBase int, snap LogSnapshot) []LogEntry {
	if p := snap.Index - oldBase; p < len(log) {
		out := make([]LogEntry, len(log)-p)
		copy(out, log[p:])
		out[0] = LogEntry{Term: snap.Term}
		return out
	}
	// The snapshot covers (or outruns) the whole log: empty suffix.
	return []LogEntry{{Term: snap.Term}}
}

// FileStorage is a directory of write-ahead-log segments plus snapshot
// files. Every state change and log mutation is one length-prefixed,
// independently gob-encoded record appended to the active segment; Load
// replays the snapshot and then the segments in order. Compaction
// (SaveSnapshot) writes the snapshot file atomically (temp + fsync +
// rename), rotates to a fresh segment, and unlinks the segment files the
// snapshot fully covers — an O(segments) unlink, not a log rewrite. Each
// open starts a new segment, so a torn tail from a crash mid-write is
// simply ignored at the next replay.
type FileStorage struct {
	mu  sync.Mutex
	dir string
	f   *os.File // active segment; guarded by mu

	// cached live state
	hs   HardState   // guarded by mu
	base LogSnapshot // snapshot base; guarded by mu
	log  []LogEntry  // suffix after base, sentinel at [0]; guarded by mu

	// segs are the live segments in sequence order; the last one is
	// active. max is the highest absolute entry index a segment may
	// contain (an overestimate is safe: it only delays its unlink).
	segs []walSegment // guarded by mu

	// scratch is the reused frame-encoding buffer: the append hot path
	// encodes each record into it instead of allocating per record.
	scratch bytes.Buffer // guarded by mu
}

// walSegment is one live segment file.
type walSegment struct {
	seq int
	max int // highest absolute entry index possibly present
}

// walRecord is one WAL entry.
type walRecord struct {
	Kind       uint8 // 0 = state, 1 = entries, 2 = segment base
	HS         HardState
	FirstIndex int
	Entries    []LogEntry
	// Segment base (Kind 2): the snapshot the segment's contents build
	// on. The image itself lives in the snapshot file; replay fails
	// loudly if that file is missing or corrupt.
	SnapIndex int
	SnapTerm  types.Time
}

// frameHeaderLen is the length prefix preceding each record's gob body.
const frameHeaderLen = 4

// encodeFrameInto serializes one record into buf as a length-prefixed
// standalone gob blob (each record carries its own type table, so streams
// survive appends by later process generations). buf is reset first, so
// callers can reuse one buffer across records and avoid the per-record
// allocations of building each frame from scratch.
func encodeFrameInto(buf *bytes.Buffer, rec walRecord) error {
	buf.Reset()
	var pad [frameHeaderLen]byte
	buf.Write(pad[:])
	if err := gob.NewEncoder(buf).Encode(rec); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf.Bytes()[:frameHeaderLen], uint32(buf.Len()-frameHeaderLen))
	return nil
}

// readFrames decodes every complete record in r, ignoring a torn tail.
func readFrames(r io.Reader) []walRecord {
	var recs []walRecord
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return recs
		}
		body := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(r, body); err != nil {
			return recs // torn write: the durable prefix stands
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return recs
		}
		recs = append(recs, rec)
	}
}

func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

func snapPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", index))
}

// syncDir fsyncs a directory so renames/creates/unlinks inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// writeSnapFile writes one snapshot atomically: length + CRC + gob body
// into a temp file, fsync, rename into place, fsync the directory. A
// crash mid-write leaves only an ignored .tmp; a crash after the rename
// leaves a fully valid file — there is no torn intermediate state.
func writeSnapFile(dir string, snap LogSnapshot) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(snap); err != nil {
		return fmt.Errorf("raft: encode snapshot: %w", err)
	}
	buf := make([]byte, 8+body.Len())
	binary.BigEndian.PutUint32(buf[0:4], uint32(body.Len()))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(body.Bytes()))
	copy(buf[8:], body.Bytes())
	path := snapPath(dir, snap.Index)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("raft: write snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("raft: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("raft: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("raft: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("raft: rename snapshot: %w", err)
	}
	return syncDir(dir)
}

// readSnapFile loads and verifies one snapshot file. Any truncation or
// bit-rot fails loudly: snapshot files are written atomically, so unlike
// a WAL tail there is no legitimate torn state to tolerate.
func readSnapFile(path string) (LogSnapshot, error) {
	var snap LogSnapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if len(b) < 8 || int(binary.BigEndian.Uint32(b[0:4])) != len(b)-8 {
		return snap, fmt.Errorf("raft: snapshot %s: corrupt length", path)
	}
	if crc32.ChecksumIEEE(b[8:]) != binary.BigEndian.Uint32(b[4:8]) {
		return snap, fmt.Errorf("raft: snapshot %s: checksum mismatch", path)
	}
	if err := gob.NewDecoder(bytes.NewReader(b[8:])).Decode(&snap); err != nil {
		return snap, fmt.Errorf("raft: snapshot %s: %w", path, err)
	}
	return snap, nil
}

// OpenFileStorage opens (or creates) a WAL directory at dir: it loads the
// newest snapshot file (fail-stop if it is corrupt), replays the retained
// segments on top of it — only the suffix above the snapshot is ever
// materialized — and starts a fresh active segment for this process
// generation.
func OpenFileStorage(dir string) (*FileStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("raft: open wal dir: %w", err)
	}
	fs := &FileStorage{dir: dir, log: make([]LogEntry, 1)}
	fs.mu.Lock()
	defer fs.mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("raft: open wal dir: %w", err)
	}
	var segSeqs []int
	snapIdx := -1
	for _, de := range entries {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")); err == nil {
				segSeqs = append(segSeqs, n)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")); err == nil && n > snapIdx {
				snapIdx = n
			}
		case strings.HasSuffix(name, ".tmp"):
			// Torn snapshot write from a crash: the rename never
			// happened, so it holds nothing durable.
			os.Remove(filepath.Join(dir, name))
		}
	}
	sort.Ints(segSeqs)

	if snapIdx >= 0 {
		snap, err := readSnapFile(snapPath(dir, snapIdx))
		if err != nil {
			return nil, err
		}
		fs.base = snap
		fs.log[0] = LogEntry{Term: snap.Term}
	}
	for _, seq := range segSeqs {
		f, err := os.Open(segPath(dir, seq))
		if err != nil {
			return nil, fmt.Errorf("raft: open wal segment: %w", err)
		}
		recs := readFrames(f)
		if err := f.Close(); err != nil {
			return nil, err
		}
		max := 0
		for _, rec := range recs {
			if err := fs.applyRecordLocked(rec); err != nil {
				return nil, err
			}
			if rec.Kind == 1 && len(rec.Entries) > 0 {
				if end := rec.FirstIndex + len(rec.Entries) - 1; end > max {
					max = end
				}
			}
		}
		fs.segs = append(fs.segs, walSegment{seq: seq, max: max})
	}
	// Never append to an old segment (its tail may be torn): this
	// generation writes to a fresh one.
	next := 1
	if n := len(fs.segs); n > 0 {
		next = fs.segs[n-1].seq + 1
	}
	if err := fs.rotateLocked(next); err != nil {
		return nil, err
	}
	return fs, nil
}

// rotateLocked closes the active segment (if any) and starts segment seq
// with a base record carrying the current hard state and snapshot base.
func (fs *FileStorage) rotateLocked(seq int) error {
	if fs.f != nil {
		if err := fs.f.Close(); err != nil {
			return err
		}
		fs.f = nil
	}
	f, err := os.OpenFile(segPath(fs.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("raft: rotate wal segment: %w", err)
	}
	fs.f = f
	fs.segs = append(fs.segs, walSegment{seq: seq})
	if err := fs.appendLocked(walRecord{
		Kind: 2, HS: fs.hs, SnapIndex: fs.base.Index, SnapTerm: fs.base.Term,
	}); err != nil {
		return err
	}
	return syncDir(fs.dir)
}

// applyRecordLocked folds one replayed record into the cached state.
func (fs *FileStorage) applyRecordLocked(rec walRecord) error {
	switch rec.Kind {
	case 0:
		fs.hs = rec.HS
	case 1:
		first, ents := rec.FirstIndex, rec.Entries
		if first <= fs.base.Index {
			// The snapshot already covers a prefix of this record.
			drop := fs.base.Index + 1 - first
			if drop >= len(ents) {
				return nil // entirely below the base
			}
			ents = ents[drop:]
			first = fs.base.Index + 1
		}
		p := first - fs.base.Index
		if p > len(fs.log) {
			// A gap can only mean a segment was unlinked without its
			// covering snapshot surviving — fail loudly rather than
			// fabricate a log.
			return fmt.Errorf("raft: wal replay: entries at %d leave a gap after %d",
				first, fs.base.Index+len(fs.log)-1)
		}
		fs.log = append(fs.log[:p], ents...)
	case 2:
		fs.hs = rec.HS
		if rec.SnapIndex > fs.base.Index {
			return fmt.Errorf("raft: wal replay: segment base %d but newest snapshot is %d (snapshot file missing or corrupt)",
				rec.SnapIndex, fs.base.Index)
		}
	}
	return nil
}

func (fs *FileStorage) appendLocked(rec walRecord) error {
	if err := encodeFrameInto(&fs.scratch, rec); err != nil {
		return fmt.Errorf("raft: wal append: %w", err)
	}
	if _, err := fs.f.Write(fs.scratch.Bytes()); err != nil {
		return fmt.Errorf("raft: wal append: %w", err)
	}
	return fs.f.Sync()
}

// SaveState implements Storage.
func (fs *FileStorage) SaveState(hs HardState) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.hs = hs
	return fs.appendLocked(walRecord{Kind: 0, HS: hs})
}

// SaveEntries implements Storage.
func (fs *FileStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := firstIndex - fs.base.Index
	if p < 1 || p > len(fs.log) {
		return fmt.Errorf("raft: SaveEntries at %d outside log (%d, %d]",
			firstIndex, fs.base.Index, fs.base.Index+len(fs.log)-1)
	}
	fs.log = append(fs.log[:p], entries...)
	if len(entries) > 0 {
		active := &fs.segs[len(fs.segs)-1]
		if end := firstIndex + len(entries) - 1; end > active.max {
			active.max = end
		}
	}
	return fs.appendLocked(walRecord{Kind: 1, FirstIndex: firstIndex, Entries: entries})
}

// SaveSnapshot implements Storage: write the snapshot file atomically and
// make it durable FIRST, then rotate to a fresh segment and unlink the
// segment files the snapshot fully covers. Compaction cost is O(retained
// suffix + number of segments), independent of history length.
func (fs *FileStorage) SaveSnapshot(snap LogSnapshot) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if snap.Index <= fs.base.Index {
		return nil // stale
	}
	// 1. Snapshot durable before any log prefix is dropped.
	if err := writeSnapFile(fs.dir, snap); err != nil {
		return err
	}
	oldSnap := fs.base.Index
	fs.log = spliceSuffix(fs.log, fs.base.Index, snap)
	fs.base = snap
	// 2. Rotate so the active segment's base record reflects the new
	// snapshot; later segments only ever hold suffix entries.
	if err := fs.rotateLocked(fs.segs[len(fs.segs)-1].seq + 1); err != nil {
		return err
	}
	// 3. Unlink the prefix of segments whose entries are all at or below
	// the base (never the active segment). Their hard-state records are
	// superseded by the base record just written.
	cut := 0
	for cut < len(fs.segs)-1 && fs.segs[cut].max <= snap.Index {
		if err := os.Remove(segPath(fs.dir, fs.segs[cut].seq)); err != nil {
			return fmt.Errorf("raft: drop wal segment: %w", err)
		}
		cut++
	}
	fs.segs = append(fs.segs[:0], fs.segs[cut:]...)
	// 4. Older snapshot files are fully superseded.
	if oldSnap > 0 {
		if err := os.Remove(snapPath(fs.dir, oldSnap)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("raft: drop old snapshot: %w", err)
		}
	}
	return syncDir(fs.dir)
}

// Load implements Storage. The returned slice is a copy of the retained
// suffix only — bounded by the compaction threshold, not by history.
func (fs *FileStorage) Load() (HardState, LogSnapshot, []LogEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]LogEntry, len(fs.log)-1)
	copy(out, fs.log[1:])
	return fs.hs, fs.base, out, nil
}

// SegmentCount returns the number of live WAL segment files (tests use it
// to assert compaction keeps the directory bounded).
func (fs *FileStorage) SegmentCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.segs)
}

// Close implements Storage.
func (fs *FileStorage) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	err := fs.f.Close()
	fs.f = nil
	return err
}

// CountingStorage wraps a Storage and counts persistence calls. FileStorage
// performs exactly one fsync per SaveState/SaveEntries, so with a
// FileStorage inner the Syncs counter measures fsyncs — the group-commit
// benchmarks use it to show fsyncs per proposal ≪ 1 under concurrent load.
type CountingStorage struct {
	Inner Storage

	stateSaves   atomic.Uint64
	entrySaves   atomic.Uint64
	entriesSaved atomic.Uint64
	snapSaves    atomic.Uint64
}

// SaveState implements Storage.
func (c *CountingStorage) SaveState(hs HardState) error {
	c.stateSaves.Add(1)
	return c.Inner.SaveState(hs)
}

// SaveEntries implements Storage.
func (c *CountingStorage) SaveEntries(firstIndex int, entries []LogEntry) error {
	c.entrySaves.Add(1)
	c.entriesSaved.Add(uint64(len(entries)))
	return c.Inner.SaveEntries(firstIndex, entries)
}

// SaveSnapshot implements Storage.
func (c *CountingStorage) SaveSnapshot(snap LogSnapshot) error {
	c.snapSaves.Add(1)
	return c.Inner.SaveSnapshot(snap)
}

// Load implements Storage.
func (c *CountingStorage) Load() (HardState, LogSnapshot, []LogEntry, error) {
	return c.Inner.Load()
}

// Close implements Storage.
func (c *CountingStorage) Close() error { return c.Inner.Close() }

// Syncs returns the total durable-write calls so far (state + entry +
// snapshot saves).
func (c *CountingStorage) Syncs() uint64 {
	return c.stateSaves.Load() + c.entrySaves.Load() + c.snapSaves.Load()
}

// EntrySaves returns the number of SaveEntries calls (WAL frames written).
func (c *CountingStorage) EntrySaves() uint64 { return c.entrySaves.Load() }

// EntriesSaved returns the total log entries persisted across all frames.
func (c *CountingStorage) EntriesSaved() uint64 { return c.entriesSaved.Load() }

// SnapshotSaves returns the number of SaveSnapshot calls.
func (c *CountingStorage) SnapshotSaves() uint64 { return c.snapSaves.Load() }
