// Package sim is the deterministic simulation driver for the sans-IO raft
// core: an N-node cluster stepped single-threaded on a logical clock, with
// a seeded virtual network (latency, jitter, loss, partitions) and
// fault-injectable in-memory WALs. Two runs with the same options produce
// byte-identical event journals — the wall clock, the goroutine scheduler,
// and every other source of nondeterminism is out of the loop, so a chaos
// schedule that finds a violation replays it exactly.
//
// The simulator drives the very same raftcore.Core the runtime Node does,
// through the same Ready contract: persist first, then send, then apply.
// Persistence failures injected through raft.FaultStorage fail-stop the
// simulated node just like the real driver (nothing from the failed batch
// escapes), so crash/recovery behavior is exercised, not approximated.
package sim

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"adore/internal/raft"
	"adore/internal/raft/raftcore"
	"adore/internal/types"
)

// ErrDown reports an operation against a crashed or fail-stopped node.
var ErrDown = errors.New("sim: node is down")

// Options sizes and seeds a simulated cluster. All intervals are counted
// in ticks (the abstract clock unit; one Step advances one tick).
type Options struct {
	// Nodes is the cluster size (IDs 1..Nodes).
	Nodes int
	// Seed drives every random draw: election jitter, network latency
	// jitter, and message loss.
	Seed int64

	// ElectionTicks / JitterTicks / HeartbeatTicks are the protocol
	// timers: a node campaigns after ElectionTicks + rand(JitterTicks)
	// ticks without leader contact; leaders broadcast every
	// HeartbeatTicks. Zero gets 15 / 15 / 5.
	ElectionTicks  int
	JitterTicks    int
	HeartbeatTicks int

	// LatencyTicks / LatencyJitterTicks bound message delivery delay:
	// uniform in [1+LatencyTicks, 1+LatencyTicks+LatencyJitterTicks].
	// Zero gets 0 / 2 (delivery 1–3 ticks after send).
	LatencyTicks       int
	LatencyJitterTicks int

	// MaxEntriesPerAppend is forwarded to the core (0 = default 256).
	MaxEntriesPerAppend int

	// SnapshotThreshold is forwarded to the core: after this many applied
	// entries above the snapshot base the core requests a compaction
	// (answered through the OnSnapshot hook). Zero disables local
	// snapshots; nodes still install leader-sent ones.
	SnapshotThreshold int

	// DisableR2 / DisableR3 reintroduce the reconfiguration bugs.
	DisableR2 bool
	DisableR3 bool

	// DisablePreVote / DisableCheckQuorum turn off the election-robustness
	// guards: rejoining nodes campaign with inflated terms, and minority-
	// side leaders never step down. The chaos harness uses these to prove
	// its disruption oracles bite.
	DisablePreVote     bool
	DisableCheckQuorum bool

	// DisableLeaseRead turns off leader-lease reads (LeaseRead always
	// refuses). DisableLeaseGuard removes the transfer/reconfig lease
	// invalidation; the chaos teeth use it to prove the stale-read oracle
	// catches the resulting lease violations.
	DisableLeaseRead  bool
	DisableLeaseGuard bool
}

func (o *Options) defaults() {
	if o.Nodes <= 0 {
		o.Nodes = 5
	}
	if o.ElectionTicks <= 0 {
		o.ElectionTicks = 15
	}
	if o.JitterTicks <= 0 {
		o.JitterTicks = 15
	}
	if o.HeartbeatTicks <= 0 {
		o.HeartbeatTicks = 5
	}
	if o.LatencyJitterTicks <= 0 {
		o.LatencyJitterTicks = 2
	}
}

// node is one simulated replica: the pure core plus its liveness state.
type node struct {
	id       types.NodeID
	core     *raftcore.Core
	up       bool
	failErr  error // fail-stop cause (nil while healthy)
	lastRole raftcore.Role
	lastCtr  raftcore.Counters // last journaled election-counter values
	doomAt   int64             // scheduled hard crash (0 = none)
}

// packet is one in-flight message.
type packet struct {
	at  int64  // delivery tick
	seq uint64 // FIFO tie-break for equal delivery ticks
	m   raftcore.Message
}

// packetHeap orders packets by (at, seq) — a deterministic delivery order.
type packetHeap []packet

func (h packetHeap) Len() int { return len(h) }
func (h packetHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h packetHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *packetHeap) Push(x any)   { *h = append(*h, x.(packet)) }
func (h *packetHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// Cluster is a simulated raft cluster. Not safe for concurrent use: the
// whole point is that exactly one goroutine steps it.
type Cluster struct {
	opt     Options
	rng     *rand.Rand
	now     int64
	sendSeq uint64

	ids      []types.NodeID // sorted, fixed
	members0 []types.NodeID // initial configuration (for restarts)
	nodes    map[types.NodeID]*node
	storage  map[types.NodeID]*raft.FaultStorage

	inflight packetHeap
	blocked  map[[2]types.NodeID]bool
	dropRate float64

	// reads holds resolved ReadIndex barriers per (node, reqID).
	reads      map[readKey]int // confirmed index, -1 = aborted
	nextReadID uint64

	onApply    func(id types.NodeID, batch []raftcore.ApplyMsg)
	onSnapshot func(id types.NodeID, index int) []byte

	journal bytes.Buffer
}

type readKey struct {
	id  types.NodeID
	req uint64
}

// New builds a cluster of opt.Nodes fresh replicas, all stopped at tick 0.
// Call Step to advance time.
func New(opt Options) *Cluster {
	opt.defaults()
	s := &Cluster{
		opt:     opt,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		nodes:   make(map[types.NodeID]*node, opt.Nodes),
		storage: make(map[types.NodeID]*raft.FaultStorage, opt.Nodes),
		blocked: make(map[[2]types.NodeID]bool),
		reads:   make(map[readKey]int),
	}
	for i := 1; i <= opt.Nodes; i++ {
		id := types.NodeID(i)
		s.ids = append(s.ids, id)
		s.members0 = append(s.members0, id)
	}
	for _, id := range s.ids {
		s.storage[id] = raft.NewFaultStorage(raft.NewMemStorage())
		s.bootNode(id)
	}
	return s
}

// bootNode (re)creates a node's core from its storage. A recovered
// snapshot is re-delivered through the apply hook before any replayed
// suffix entries, exactly like the runtime driver's restart path.
func (s *Cluster) bootNode(id types.NodeID) {
	hs, snap, log, err := s.storage[id].Load()
	if err != nil {
		// MemStorage cannot fail Load; a scripted fault there would be a
		// harness bug, not a protocol scenario.
		panic(fmt.Sprintf("sim: load S%d: %v", id, err))
	}
	core := raftcore.New(raftcore.Config{
		ID:                  id,
		Members:             s.members0,
		ElectionTicks:       s.opt.ElectionTicks,
		Jitter:              s.jitter,
		HeartbeatTicks:      s.opt.HeartbeatTicks,
		MaxEntriesPerAppend: s.opt.MaxEntriesPerAppend,
		SnapshotThreshold:   s.opt.SnapshotThreshold,
		DisableR2:           s.opt.DisableR2,
		DisableR3:           s.opt.DisableR3,
		DisablePreVote:      s.opt.DisablePreVote,
		DisableCheckQuorum:  s.opt.DisableCheckQuorum,
		DisableLeaseRead:    s.opt.DisableLeaseRead,
		DisableLeaseGuard:   s.opt.DisableLeaseGuard,
	}, hs, snap, log)
	s.nodes[id] = &node{id: id, core: core, up: true, lastRole: raftcore.Follower}
	if snap.Index > 0 {
		s.Journalf("S%d recover snapshot@%d", id, snap.Index)
		if s.onApply != nil {
			s.onApply(id, []raftcore.ApplyMsg{restoreApply(&snap)})
		}
	}
}

// restoreApply is the apply-stream representation of a snapshot restore.
func restoreApply(snap *raftcore.Snapshot) raftcore.ApplyMsg {
	return raftcore.ApplyMsg{
		Index: snap.Index, Term: snap.Term, Kind: raftcore.EntrySnapshot,
		Command: snap.Data, Members: snap.Members,
	}
}

func (s *Cluster) jitter() int {
	if s.opt.JitterTicks <= 0 {
		return 0
	}
	return s.rng.Intn(s.opt.JitterTicks)
}

// --- Introspection ---

// Now returns the current tick.
func (s *Cluster) Now() int64 { return s.now }

// IDs returns the node identities in ascending order. Callers must not
// mutate the slice.
func (s *Cluster) IDs() []types.NodeID { return s.ids }

// Alive reports whether the node is running (not crashed, not
// fail-stopped).
func (s *Cluster) Alive(id types.NodeID) bool {
	n := s.nodes[id]
	return n.up && n.failErr == nil
}

// FailStopErr returns the storage error that fail-stopped the node, or nil.
func (s *Cluster) FailStopErr(id types.NodeID) error { return s.nodes[id].failErr }

// Status reports a node's term, role, and known leader. Crashed and
// fail-stopped nodes report followers with no leader (matching the
// runtime driver's post-fail-stop Status).
func (s *Cluster) Status(id types.NodeID) (types.Time, raftcore.Role, types.NodeID) {
	n := s.nodes[id]
	if !s.Alive(id) {
		return n.core.Term(), raftcore.Follower, types.NoNode
	}
	return n.core.Term(), n.core.Role(), n.core.Leader()
}

// CommitIndex returns a node's commit index.
func (s *Cluster) CommitIndex(id types.NodeID) int { return s.nodes[id].core.CommitIndex() }

// LastIndex returns the index of a node's last log entry.
func (s *Cluster) LastIndex(id types.NodeID) int { return s.nodes[id].core.LastIndex() }

// Entry returns a node's log entry at index i (1-based). The index must be
// above the node's snapshot base (see FirstIndex).
func (s *Cluster) Entry(id types.NodeID, i int) raftcore.LogEntry { return s.nodes[id].core.Entry(i) }

// FirstIndex returns the first log index a node still holds as an entry
// (snapshot base + 1). 1 when the node has never compacted.
func (s *Cluster) FirstIndex(id types.NodeID) int { return s.nodes[id].core.FirstIndex() }

// SnapshotIndex returns the node's snapshot base index (0 = no snapshot).
func (s *Cluster) SnapshotIndex(id types.NodeID) int { return s.nodes[id].core.SnapshotIndex() }

// SnapshotTerm returns the term of the entry at the snapshot base.
func (s *Cluster) SnapshotTerm(id types.NodeID) types.Time { return s.nodes[id].core.SnapshotTerm() }

// Members returns a node's effective membership.
func (s *Cluster) Members(id types.NodeID) types.NodeSet { return s.nodes[id].core.Members() }

// Leader returns the alive leader with the highest term, if any.
func (s *Cluster) Leader() (types.NodeID, bool) {
	var best types.NodeID
	var bestTerm types.Time
	found := false
	for _, id := range s.ids {
		if !s.Alive(id) {
			continue
		}
		c := s.nodes[id].core
		if c.Role() == raftcore.Leader && (!found || c.Term() > bestTerm) {
			best, bestTerm, found = id, c.Term(), true
		}
	}
	return best, found
}

// Faults returns the total storage faults injected across all nodes.
func (s *Cluster) Faults() uint64 {
	var total uint64
	for _, id := range s.ids {
		total += s.storage[id].Injected()
	}
	return total
}

// --- Journal ---

// Journalf appends one formatted line to the run journal (the driver
// prefixes the current tick). Chaos runners log nemesis and client events
// here so the whole run is one deterministic transcript.
func (s *Cluster) Journalf(format string, args ...any) {
	fmt.Fprintf(&s.journal, "t=%06d ", s.now)
	fmt.Fprintf(&s.journal, format, args...)
	s.journal.WriteByte('\n')
}

// Journal returns the transcript so far. Two runs with equal Options
// produce byte-identical journals.
func (s *Cluster) Journal() []byte { return s.journal.Bytes() }

// --- Time ---

// Step advances the cluster one tick: scheduled crashes land, due messages
// are delivered (in deterministic (tick, send-order) order), then every
// alive node's clock ticks. Each core interaction is followed by its Ready
// execution, so effects never linger across ticks.
func (s *Cluster) Step() {
	s.now++
	for _, id := range s.ids {
		n := s.nodes[id]
		if n.doomAt != 0 && n.doomAt <= s.now {
			n.doomAt = 0
			if n.up {
				s.Journalf("S%d crash (scheduled)", id)
				n.up = false
			}
		}
	}
	for len(s.inflight) > 0 && s.inflight[0].at <= s.now {
		p := heap.Pop(&s.inflight).(packet)
		n := s.nodes[p.m.To]
		if !n.up || n.failErr != nil {
			continue // dropped on the floor: the receiver is down
		}
		n.core.Step(p.m)
		s.processReady(n)
	}
	for _, id := range s.ids {
		n := s.nodes[id]
		if !n.up || n.failErr != nil {
			continue
		}
		n.core.Tick()
		s.processReady(n)
	}
}

// processReady executes one node's pending effects under the sans-IO
// contract: persist, then send, then apply. A persistence failure
// fail-stops the node with the batch's messages unsent — identical to the
// runtime driver's behavior.
func (s *Cluster) processReady(n *node) {
	rd := n.core.TakeReady()
	st := s.storage[n.id]
	if rd.HardState != nil {
		if err := st.SaveState(*rd.HardState); err != nil {
			s.failStop(n, err)
			return
		}
	}
	if rd.Snapshot != nil {
		// Snapshot durable before the truncating SaveEntries below.
		if err := st.SaveSnapshot(*rd.Snapshot); err != nil {
			s.failStop(n, err)
			return
		}
	}
	if rd.FirstIndex > 0 {
		if err := st.SaveEntries(rd.FirstIndex, rd.Entries); err != nil {
			s.failStop(n, err)
			return
		}
	}
	for _, m := range rd.Messages {
		s.deliver(m)
	}
	for _, rs := range rd.ReadStates {
		s.reads[readKey{n.id, rs.ReqID}] = rs.Index
	}
	committed := rd.Committed
	if rd.RestoreSnapshot && rd.Snapshot != nil {
		s.Journalf("S%d install snapshot@%d", n.id, rd.Snapshot.Index)
		committed = append([]raftcore.ApplyMsg{restoreApply(rd.Snapshot)}, committed...)
	}
	if len(committed) > 0 {
		s.Journalf("S%d commit %d..%d", n.id, committed[0].Index, committed[len(committed)-1].Index)
		if s.onApply != nil {
			s.onApply(n.id, committed)
		}
	}
	if rd.TakeSnapshot != nil {
		// The sim answers the policy synchronously: the apply hook above
		// has already applied through the requested index.
		if s.onSnapshot == nil {
			n.core.AbortSnapshot()
		} else {
			data := s.onSnapshot(n.id, rd.TakeSnapshot.Index)
			if n.core.Compact(rd.TakeSnapshot.Index, data) {
				s.Journalf("S%d snapshot@%d", n.id, rd.TakeSnapshot.Index)
				s.processReady(n) // persist the compaction's effects
			}
		}
	}
	// Election-disruption journal lines, from the core's monotone counters:
	// every campaign records HOW it started (timeout vs. handoff), and a
	// CheckQuorum step-down is its own event. The deltas make questions
	// like "did this reconfiguration trigger a timeout election?" grep-able
	// in the transcript.
	ctr := n.core.Counters()
	if ctr.PreVoteRounds > n.lastCtr.PreVoteRounds {
		s.Journalf("S%d prevote round", n.id)
	}
	if ctr.TimeoutElections > n.lastCtr.TimeoutElections {
		s.Journalf("S%d campaign (timeout)", n.id)
	}
	if ctr.TransferElections > n.lastCtr.TransferElections {
		s.Journalf("S%d campaign (transfer)", n.id)
	}
	if ctr.StepDowns > n.lastCtr.StepDowns {
		s.Journalf("S%d step-down (no quorum)", n.id)
	}
	n.lastCtr = ctr
	if role := n.core.Role(); role != n.lastRole {
		s.Journalf("S%d %s@t%d", n.id, role, n.core.Term())
		n.lastRole = role
	}
}

func (s *Cluster) failStop(n *node, err error) {
	n.failErr = err
	s.Journalf("S%d fail-stop: %v", n.id, err)
}

// deliver enqueues one outbound message, applying partitions and loss at
// send time (like the runtime's in-memory network).
func (s *Cluster) deliver(m raftcore.Message) {
	if s.blocked[[2]types.NodeID{m.From, m.To}] {
		return
	}
	if s.dropRate > 0 && s.rng.Float64() < s.dropRate {
		return
	}
	delay := int64(1 + s.opt.LatencyTicks)
	if s.opt.LatencyJitterTicks > 0 {
		delay += int64(s.rng.Intn(s.opt.LatencyJitterTicks + 1))
	}
	s.sendSeq++
	heap.Push(&s.inflight, packet{at: s.now + delay, seq: s.sendSeq, m: m})
}

// OnApply registers the committed-entry hook (one per cluster): batches
// arrive in commit order per node, including replays after restarts.
func (s *Cluster) OnApply(f func(id types.NodeID, batch []raftcore.ApplyMsg)) { s.onApply = f }

// OnSnapshot registers the state-machine capture hook: given a node and
// the index the policy requested, return the serialized image of that
// node's state machine as applied through exactly that index (the sim's
// apply hook is synchronous, so "current state" is correct). Without a
// hook, TakeSnapshot effects are aborted.
func (s *Cluster) OnSnapshot(f func(id types.NodeID, index int) []byte) { s.onSnapshot = f }

// --- Client-facing operations ---

// Propose appends a command at node id, as if a client called the runtime
// driver's Propose. The entry is persisted and broadcast before return.
func (s *Cluster) Propose(id types.NodeID, cmd []byte) (int, types.Time, error) {
	n := s.nodes[id]
	if !s.Alive(id) {
		return 0, 0, ErrDown
	}
	idx, term, err := n.core.Propose(cmd)
	if err != nil {
		return 0, 0, err
	}
	s.processReady(n)
	if n.failErr != nil {
		return 0, 0, n.failErr
	}
	return idx, term, nil
}

// ProposeConfig proposes a membership change at node id (R1/R2/R3 guards
// apply as configured).
func (s *Cluster) ProposeConfig(id types.NodeID, members types.NodeSet) (int, types.Time, error) {
	n := s.nodes[id]
	if !s.Alive(id) {
		return 0, 0, ErrDown
	}
	idx, term, err := n.core.ProposeConfig(members)
	if err != nil {
		return 0, 0, err
	}
	s.processReady(n)
	if n.failErr != nil {
		return 0, 0, n.failErr
	}
	return idx, term, nil
}

// TransferLeader starts a graceful leadership handoff at node id (which
// must be the leader) to peer to; NoNode picks the most caught-up voter.
func (s *Cluster) TransferLeader(id, to types.NodeID) error {
	n := s.nodes[id]
	if !s.Alive(id) {
		return ErrDown
	}
	if err := n.core.TransferLeader(to); err != nil {
		return err
	}
	s.Journalf("S%d transfer -> S%d", id, n.core.TransferTarget())
	s.processReady(n)
	if n.failErr != nil {
		return n.failErr
	}
	return nil
}

// PickTransferTarget returns node id's most caught-up transfer candidate
// inside target (NoNode unless id is the alive leader).
func (s *Cluster) PickTransferTarget(id types.NodeID, target types.NodeSet) types.NodeID {
	if !s.Alive(id) {
		return types.NoNode
	}
	return s.nodes[id].core.PickTransferTarget(target)
}

// Counters returns a node's election-disruption counters (monotone across
// the node's lifetime, reset by Restart).
func (s *Cluster) Counters(id types.NodeID) raftcore.Counters {
	return s.nodes[id].core.Counters()
}

// ReadIndex starts a linearizable-read barrier at node id. If confirmed is
// true the barrier resolved immediately (single-node quorum) at index idx;
// otherwise poll ReadResult(id, reqID) on subsequent ticks.
func (s *Cluster) ReadIndex(id types.NodeID) (reqID uint64, idx int, confirmed bool, err error) {
	n := s.nodes[id]
	if !s.Alive(id) {
		return 0, 0, false, ErrDown
	}
	s.nextReadID++
	reqID = s.nextReadID
	idx, confirmed, err = n.core.ReadIndex(reqID)
	if err != nil {
		return 0, 0, false, err
	}
	s.processReady(n)
	return reqID, idx, confirmed, nil
}

// ReadResult polls a pending barrier: done reports resolution, and a
// negative idx means the barrier aborted (leadership lost) — retry.
func (s *Cluster) ReadResult(id types.NodeID, reqID uint64) (idx int, done bool) {
	idx, done = s.reads[readKey{id, reqID}]
	if done {
		delete(s.reads, readKey{id, reqID})
	}
	return idx, done
}

// CancelRead abandons a pending barrier.
func (s *Cluster) CancelRead(id types.NodeID, reqID uint64) {
	delete(s.reads, readKey{id, reqID})
	if s.Alive(id) {
		s.nodes[id].core.CancelRead(reqID)
	}
}

// LeaseRead attempts a zero-round leader-lease read at node id: ok reports
// whether the node holds a valid lease, and idx is the confirmed read index
// (serve-after-apply applies, as with ReadIndex). A lease read has no Ready
// effects — nothing to flush.
func (s *Cluster) LeaseRead(id types.NodeID) (idx int, ok bool) {
	if !s.Alive(id) {
		return 0, false
	}
	return s.nodes[id].core.LeaseRead()
}

// LeaseProbe is the side-effect-free lease inspection used by the chaos
// stale-read oracle: same answer as LeaseRead without counting as a served
// read.
func (s *Cluster) LeaseProbe(id types.NodeID) (idx int, ok bool) {
	if !s.Alive(id) {
		return 0, false
	}
	return s.nodes[id].core.LeaseStatus()
}

// ForwardRead starts a follower-served read at node id: the node forwards a
// ReadIndex request to its known leader and the confirmed index arrives as
// a regular ReadState, so callers poll ReadResult(id, reqID) exactly like a
// local barrier (negative idx = leader refused — retry).
func (s *Cluster) ForwardRead(id types.NodeID) (reqID uint64, err error) {
	n := s.nodes[id]
	if !s.Alive(id) {
		return 0, ErrDown
	}
	s.nextReadID++
	reqID = s.nextReadID
	if err := n.core.ForwardReadIndex(reqID); err != nil {
		return 0, err
	}
	s.processReady(n)
	return reqID, nil
}

// --- Nemesis operations ---

// Partition blocks all traffic between the two groups (both directions).
func (s *Cluster) Partition(a, b []types.NodeID) {
	for _, x := range a {
		for _, y := range b {
			s.blocked[[2]types.NodeID{x, y}] = true
			s.blocked[[2]types.NodeID{y, x}] = true
		}
	}
	s.Journalf("partition %v | %v", a, b)
}

// Isolate cuts one node off from everyone else.
func (s *Cluster) Isolate(id types.NodeID) {
	for _, other := range s.ids {
		if other != id {
			s.blocked[[2]types.NodeID{id, other}] = true
			s.blocked[[2]types.NodeID{other, id}] = true
		}
	}
	s.Journalf("isolate S%d", id)
}

// BlockOneWay blocks traffic from a to b only (an asymmetric link fault:
// b still reaches a). One-way faults are what make Pre-Vote and
// CheckQuorum earn their keep — a node that can hear but not be heard.
func (s *Cluster) BlockOneWay(a, b types.NodeID) {
	s.blocked[[2]types.NodeID{a, b}] = true
	s.Journalf("block S%d->S%d", a, b)
}

// Linked reports whether the link between a and b is clean in BOTH
// directions (no partition or one-way block; probabilistic loss does not
// count).
func (s *Cluster) Linked(a, b types.NodeID) bool {
	return !s.blocked[[2]types.NodeID{a, b}] && !s.blocked[[2]types.NodeID{b, a}]
}

// DropRate returns the current message-loss probability.
func (s *Cluster) DropRate() float64 { return s.dropRate }

// Heal removes all partitions.
func (s *Cluster) Heal() {
	s.blocked = make(map[[2]types.NodeID]bool)
	s.Journalf("heal")
}

// SetDropRate sets the probability of dropping each message.
func (s *Cluster) SetDropRate(p float64) {
	s.dropRate = p
	s.Journalf("drop-rate %.2f", p)
}

// Crash stops a node immediately (clean crash: the WAL keeps every synced
// frame; in-flight messages to it are lost).
func (s *Cluster) Crash(id types.NodeID) {
	n := s.nodes[id]
	if n.up {
		s.Journalf("S%d crash (clean)", id)
		n.up = false
	}
	n.doomAt = 0
}

// CrashTorn arms a torn write on the node's next persist and schedules a
// hard crash graceTicks later: if the node writes in the window it
// fail-stops on the torn frame (exercising the fail-stop path), otherwise
// the scheduled crash lands. Mirrors the real-time executor's torn-crash
// sequencing.
func (s *Cluster) CrashTorn(id types.NodeID, graceTicks int64) {
	s.storage[id].TearNextWrite()
	s.nodes[id].doomAt = s.now + graceTicks
	s.Journalf("S%d crash (torn, grace=%d)", id, graceTicks)
}

// CrashWound arms a plain write error and schedules the hard crash, like
// CrashTorn but with a non-torn fault.
func (s *Cluster) CrashWound(id types.NodeID, graceTicks int64) {
	s.storage[id].FailNextSaveEntries(fmt.Errorf("sim: injected write error on S%d", id))
	s.nodes[id].doomAt = s.now + graceTicks
	s.Journalf("S%d crash (wound, grace=%d)", id, graceTicks)
}

// WipeStorage destroys a node's durable raft state while it is down (the
// node is crashed first if needed). This is NOT a raft fault mode — a
// correct single-group deployment can lose a disk but not silently lose
// only its WAL — it models the cross-group storage-corruption bug the
// multiraft per-group subdirectories exist to prevent: another group's
// compaction unlinking this group's segment files. The wiped node restarts
// as a blank follower with its vote and log gone, which is exactly the
// state from which raft can be induced to overwrite a committed prefix;
// the per-group oracles must flag the resulting divergence.
func (s *Cluster) WipeStorage(id types.NodeID) {
	n := s.nodes[id]
	if n.up {
		s.Journalf("S%d crash (for wipe)", id)
		n.up = false
	}
	n.doomAt = 0
	s.storage[id] = raft.NewFaultStorage(raft.NewMemStorage())
	s.Journalf("S%d storage wiped", id)
}

// FailNextSaveSnapshot arms a snapshot-persist fault: the node's next
// snapshot save fails and the node must fail-stop rather than truncate a
// log whose replacement image never became durable.
func (s *Cluster) FailNextSaveSnapshot(id types.NodeID) {
	s.storage[id].FailNextSaveSnapshot(fmt.Errorf("sim: injected snapshot write error on S%d", id))
}

// ClearFaults disarms any armed (not yet tripped) storage faults on the
// node without restarting it — the epilogue's "repair the disk" step.
func (s *Cluster) ClearFaults(id types.NodeID) { s.storage[id].ClearFaults() }

// Restart repairs a node's storage faults and boots a fresh incarnation
// from its durable state. It is a no-op for a node that is still healthy.
func (s *Cluster) Restart(id types.NodeID) {
	n := s.nodes[id]
	if n.up && n.failErr == nil {
		return
	}
	s.storage[id].ClearFaults()
	s.bootNode(id)
	s.Journalf("S%d restart", id)
}
