package sim

import (
	"bytes"
	"fmt"
	"testing"

	"adore/internal/types"
)

// stepUntil advances the cluster until cond holds, failing after maxTicks.
func stepUntil(t *testing.T, s *Cluster, maxTicks int, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < maxTicks; i++ {
		if cond() {
			return
		}
		s.Step()
	}
	t.Fatalf("condition %q not reached within %d ticks", what, maxTicks)
}

// waitLeader steps until some node is leader and returns it.
func waitLeader(t *testing.T, s *Cluster, maxTicks int) types.NodeID {
	t.Helper()
	var leader types.NodeID
	stepUntil(t, s, maxTicks, "leader elected", func() bool {
		id, ok := s.Leader()
		leader = id
		return ok
	})
	return leader
}

func TestSimElectsAndReplicates(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 1})
	leader := waitLeader(t, s, 1000)

	var lastIdx int
	for i := 0; i < 5; i++ {
		idx, _, err := s.Propose(leader, []byte(fmt.Sprintf("cmd-%d", i)))
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		lastIdx = idx
	}
	stepUntil(t, s, 1000, "all nodes committed", func() bool {
		for _, id := range s.IDs() {
			if s.CommitIndex(id) < lastIdx {
				return false
			}
		}
		return true
	})
	// Logs agree entry-for-entry over the committed prefix.
	for _, id := range s.IDs() {
		for i := 1; i <= lastIdx; i++ {
			a, b := s.Entry(s.IDs()[0], i), s.Entry(id, i)
			if a.Term != b.Term || !bytes.Equal(a.Command, b.Command) {
				t.Fatalf("log divergence at index %d between S%d and S%d", i, s.IDs()[0], id)
			}
		}
	}
}

// runScripted drives one fixed nemesis schedule and returns the journal.
// Everything it does is a deterministic function of the seed.
func runScripted(seed int64) []byte {
	s := New(Options{Nodes: 5, Seed: seed, LatencyJitterTicks: 3})
	propose := func(tag int) {
		if id, ok := s.Leader(); ok {
			if idx, _, err := s.Propose(id, []byte(fmt.Sprintf("op-%d", tag))); err == nil {
				s.Journalf("client propose op-%d -> S%d idx=%d", tag, id, idx)
			}
		}
	}
	for tick := 0; tick < 1200; tick++ {
		switch tick {
		case 200:
			if id, ok := s.Leader(); ok {
				s.Isolate(id)
			}
		case 400:
			s.Heal()
		case 500:
			s.CrashTorn(2, 5)
		case 600:
			s.SetDropRate(0.2)
		case 800:
			s.SetDropRate(0)
			s.Restart(2)
		case 900:
			s.Crash(4)
		case 1000:
			s.Restart(4)
		}
		if tick%50 == 17 {
			propose(tick)
		}
		s.Step()
	}
	return append([]byte(nil), s.Journal()...)
}

func TestSimDeterminism(t *testing.T) {
	a := runScripted(42)
	b := runScripted(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different journals:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("journal is empty; the scripted run did nothing observable")
	}
}

func TestSimFailStopAndRecover(t *testing.T) {
	s := New(Options{Nodes: 3, Seed: 7})
	leader := waitLeader(t, s, 1000)

	// Arm a write fault; the next persist (our proposal) must fail-stop the
	// leader and surface the error to the proposer.
	s.CrashWound(leader, 1_000_000) // doom far in the future: only the fault matters
	if _, _, err := s.Propose(leader, []byte("doomed")); err == nil {
		t.Fatal("propose on wounded leader succeeded; want fail-stop error")
	}
	if s.Alive(leader) {
		t.Fatal("leader still alive after injected persist failure")
	}
	if s.FailStopErr(leader) == nil {
		t.Fatal("fail-stop cause not recorded")
	}

	// The survivors re-elect; the wounded node restarts and rejoins.
	var next types.NodeID
	stepUntil(t, s, 2000, "new leader", func() bool {
		id, ok := s.Leader()
		next = id
		return ok && id != leader
	})
	s.Restart(leader)
	idx, _, err := s.Propose(next, []byte("after-recovery"))
	if err != nil {
		t.Fatalf("propose after recovery: %v", err)
	}
	stepUntil(t, s, 2000, "restarted node caught up", func() bool {
		return s.CommitIndex(leader) >= idx
	})
}

func TestSimMinorityLeaderCannotCommit(t *testing.T) {
	s := New(Options{Nodes: 5, Seed: 3})
	old := waitLeader(t, s, 1000)

	// Cut the leader off and propose on it: the entry must never commit
	// there, and the majority side must elect a fresh leader.
	s.Isolate(old)
	idx, _, err := s.Propose(old, []byte("stranded"))
	if err != nil {
		t.Fatalf("propose on isolated leader: %v", err)
	}
	var next types.NodeID
	stepUntil(t, s, 3000, "majority elected new leader", func() bool {
		id, ok := s.Leader()
		next = id
		return ok && id != old
	})
	if s.CommitIndex(old) >= idx {
		t.Fatal("isolated minority leader advanced its commit index")
	}

	// After healing, everyone converges on the majority's history.
	s.Heal()
	idx2, _, err := s.Propose(next, []byte("settled"))
	if err != nil {
		t.Fatalf("propose on new leader: %v", err)
	}
	stepUntil(t, s, 3000, "cluster converged", func() bool {
		for _, id := range s.IDs() {
			if s.CommitIndex(id) < idx2 {
				return false
			}
		}
		return true
	})
	for _, id := range s.IDs() {
		e := s.Entry(id, idx2)
		if !bytes.Equal(e.Command, []byte("settled")) {
			t.Fatalf("S%d has wrong entry at %d after heal", id, idx2)
		}
	}
}
