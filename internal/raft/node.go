package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adore/internal/raft/raftcore"
	"adore/internal/types"
)

// Options configures a node.
type Options struct {
	// ID is this node's identity; Members the initial cluster.
	ID      types.NodeID
	Members []types.NodeID

	// Transport carries messages; required.
	Transport Transport

	// ElectionTimeoutMin/Max bound the randomized election timeout;
	// HeartbeatInterval is the leader's append cadence. Zero values get
	// test-friendly defaults (50–100 ms / 20 ms).
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	HeartbeatInterval  time.Duration

	// Storage persists term, vote, snapshot, and log across restarts. Nil
	// means the node is volatile (models, benchmarks, never-restarted
	// tests).
	Storage Storage

	// StateMachine gives the driver snapshot access to the replicated
	// application. Required for log compaction (SnapshotThreshold > 0):
	// the TakeSnapshot effect is answered by serializing it. Nil disables
	// local snapshots (the node still installs leader-sent ones).
	StateMachine StateMachine

	// SnapshotThreshold is the compaction policy: once this many applied
	// entries accumulate above the snapshot base, the node captures a
	// state-machine image and truncates its WAL. Zero disables
	// compaction. Ignored without a StateMachine.
	SnapshotThreshold int

	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message. The leader streams a lagging follower's log as a pipeline
	// of bounded windows (advancing nextIndex optimistically per send)
	// instead of re-sending the full suffix stop-and-wait. Zero gets a
	// default of 256.
	MaxEntriesPerAppend int

	// DisableR3 reproduces the published single-server bug: reconfig no
	// longer waits for a committed entry in the leader's current term.
	// For experiments only.
	DisableR3 bool

	// DisableR2 drops the "no uncommitted configuration entry" guard, so
	// a second membership change can be proposed while the first is still
	// in flight. Disjoint quorums become reachable — the chaos harness
	// uses this to prove it can catch the resulting divergence. For
	// experiments only.
	DisableR2 bool

	// DisablePreVote skips the term-neutral pre-election, so a partitioned
	// node rejoins with an inflated term and deposes a healthy leader. The
	// chaos harness uses this to prove its disruption oracle bites. For
	// experiments only.
	DisablePreVote bool

	// DisableCheckQuorum keeps a minority-side leader in the Leader role
	// indefinitely instead of stepping down after an election interval
	// without quorum contact. For experiments only.
	DisableCheckQuorum bool

	// DisableLeaseRead turns off the leader-lease fast read path: LeaseRead
	// always reports no lease, so every linearizable read pays a ReadIndex
	// quorum round. For deployments that distrust the lease's bounded-
	// asymmetry timing assumption.
	DisableLeaseRead bool

	// DisableLeaseGuard drops the lease invalidations covering leadership
	// transfer and in-flight reconfiguration, so a deposed leader can keep
	// serving a stale lease. The chaos harness uses this to prove its
	// stale-read oracle bites. For experiments only.
	DisableLeaseGuard bool

	// Seed randomizes election timeouts deterministically (0 = from ID).
	Seed int64

	// ExternalTick disables the node's internal wall-clock ticker; the
	// owner drives the logical clock by calling Tick. A multiraft host
	// hosting many groups uses one shared ticker for all of them instead
	// of one timer goroutine per group.
	ExternalTick bool
}

func (o *Options) defaults() {
	if o.ElectionTimeoutMin == 0 {
		o.ElectionTimeoutMin = 50 * time.Millisecond
	}
	if o.ElectionTimeoutMax == 0 {
		o.ElectionTimeoutMax = 2 * o.ElectionTimeoutMin
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = o.ElectionTimeoutMin / 3
	}
	if o.Seed == 0 {
		o.Seed = int64(o.ID) * 7919
	}
	if o.MaxEntriesPerAppend == 0 {
		o.MaxEntriesPerAppend = 256
	}
}

// StateMachine is the driver's view of the replicated application for
// snapshotting. Implementations must be safe for concurrent use with the
// apply stream (kvstore.Store is the canonical one).
type StateMachine interface {
	// AppliedIndex reports the highest log index applied so far.
	AppliedIndex() int
	// SaveSnapshot atomically serializes the full state — including
	// client-session dedup tables, so exactly-once survives a
	// snapshot-based rejoin — and reports the applied index the image
	// captures.
	SaveSnapshot() (data []byte, appliedIndex int, err error)
}

// Errors returned by the client-facing API. The protocol-level errors are
// defined by the sans-IO core and re-exported so errors.Is keeps working
// across the package split.
var (
	// ErrNotLeader reports that the node cannot serve the request; the
	// caller should retry against the current leader.
	ErrNotLeader = raftcore.ErrNotLeader
	// ErrStopped reports the node has shut down.
	ErrStopped = errors.New("raft: node stopped")
	// ErrReconfigPending rejects a membership change while another is
	// uncommitted (R2).
	ErrReconfigPending = raftcore.ErrReconfigPending
	// ErrReconfigNotReady rejects a membership change before the leader
	// has committed an entry in its current term (R3).
	ErrReconfigNotReady = raftcore.ErrReconfigNotReady
	// ErrBadMembership rejects changes that are not single-node (R1) or
	// would empty the cluster.
	ErrBadMembership = raftcore.ErrBadMembership
	// ErrLeaderStepdown reports that the leader relinquished leadership
	// (CheckQuorum: no quorum contact for an election interval). In-flight
	// ProposeAsync futures fail with it; retryable, and the caller should
	// re-probe for the next leader immediately rather than back off.
	ErrLeaderStepdown = raftcore.ErrLeaderStepdown
	// ErrTransferInProgress rejects proposals while a leadership transfer
	// is pausing the log; retry once the handoff resolves.
	ErrTransferInProgress = raftcore.ErrTransferInProgress
	// ErrBadTransferTarget rejects a transfer to a node outside the
	// effective configuration (or with no eligible target at all).
	ErrBadTransferTarget = raftcore.ErrBadTransferTarget
	// ErrStorageFailed reports that a durable write failed and the node
	// fail-stopped: it halted rather than keep running on state it could
	// not persist (acting on unpersisted state breaks the crash-recovery
	// argument). StorageErr returns the underlying cause.
	ErrStorageFailed = errors.New("raft: storage write failed; node halted")
)

// Node is one Raft runtime instance: the IO driver around a raftcore.Core.
// Create with StartNode; stop with Stop.
//
// The driver's whole job is the Ready loop: every core interaction
// (message, tick, proposal, barrier) ends with processReadyLocked, which
// persists the batch's hard state and log suffix, then sends its messages,
// resolves its read barriers, and delivers its committed entries — in that
// order, so nothing is externalized before it is durable. A failed persist
// fail-stops the node with the batch's outbound effects still unsent.
type Node struct {
	mu sync.Mutex

	id   types.NodeID
	opts Options

	core *raftcore.Core // guarded by mu

	// wasLeader tracks leadership across core interactions so the driver
	// can abort queued proposals the moment the core steps down.
	wasLeader bool // guarded by mu

	applyCh    chan []ApplyMsg
	inbox      chan Message
	stopCh     chan struct{}
	stopOnce   sync.Once
	applyClose sync.Once
	done       sync.WaitGroup

	// Group-commit state (see batch.go): ProposeAsync enqueues proposals
	// here; the flush loop drains them all into one WAL frame (a single
	// fsync) and one AppendEntries broadcast, then acks the futures. The
	// queue lives under its own narrow mutex — never held across I/O — so
	// proposers keep enqueueing while a flush holds mu across the fsync;
	// that overlap is what lets batches grow under load. Lock order:
	// mu before propMu (flushBatch drains under propMu alone, then takes
	// mu; failPropsLocked runs under mu and takes propMu inside).
	propMu       sync.Mutex
	pendingProps []*Proposal // guarded by propMu
	stopping     bool        // guarded by propMu
	flushCh      chan struct{}

	// readWaiters maps a pending read barrier's request id (local
	// ReadIndex or forwarded follower read) to the channel its caller
	// blocks on; the core resolves barriers through ReadStates in a Ready.
	readWaiters map[uint64]chan readResult // guarded by mu
	nextReadID  uint64                     // guarded by mu

	// snapReqCh hands TakeSnapshot effects to the snapshot loop, which
	// serializes the state machine outside mu and answers via
	// core.Compact. Capacity 1: a request arriving while one is queued is
	// dropped (the policy re-fires after the pending capture resolves).
	// Nil when no StateMachine is configured.
	snapReqCh chan raftcore.SnapshotRequest

	// stopErr, when non-nil, records the storage error that fail-stopped
	// the node (see failStopLocked).
	stopErr error // guarded by mu
}

// StartNode launches a node and its background loops.
func StartNode(opts Options) *Node {
	opts.defaults()
	var hs HardState
	var snap LogSnapshot
	var log []LogEntry
	if opts.Storage != nil {
		h, sn, stored, err := opts.Storage.Load()
		if err != nil {
			panic(fmt.Sprintf("raft: storage load: %v", err))
		}
		hs, snap = h, sn
		if len(stored) > 0 {
			log = stored
		}
	}
	// The driver ticks the core every HeartbeatInterval/2 (the historical
	// run-loop cadence): leaders broadcast on every tick, and election
	// timeouts are counted in the same unit. The jitter closure owns the
	// randomness — the core itself is deterministic.
	tickUnit := opts.HeartbeatInterval / 2
	if tickUnit <= 0 {
		tickUnit = time.Millisecond
	}
	electionTicks := int(opts.ElectionTimeoutMin / tickUnit)
	if electionTicks < 1 {
		electionTicks = 1
	}
	jitterSpan := int64((opts.ElectionTimeoutMax - opts.ElectionTimeoutMin) / tickUnit)
	rng := rand.New(rand.NewSource(opts.Seed))
	jitter := func() int {
		if jitterSpan <= 0 {
			return 0
		}
		return int(rng.Int63n(jitterSpan))
	}
	snapThreshold := opts.SnapshotThreshold
	if opts.StateMachine == nil {
		snapThreshold = 0 // nobody to capture an image from
	}
	n := &Node{
		id:   opts.ID,
		opts: opts,
		core: raftcore.New(raftcore.Config{
			ID:                  opts.ID,
			Members:             opts.Members,
			ElectionTicks:       electionTicks,
			Jitter:              jitter,
			HeartbeatTicks:      1,
			MaxEntriesPerAppend: opts.MaxEntriesPerAppend,
			SnapshotThreshold:   snapThreshold,
			DisableR2:           opts.DisableR2,
			DisableR3:           opts.DisableR3,
			DisablePreVote:      opts.DisablePreVote,
			DisableCheckQuorum:  opts.DisableCheckQuorum,
			DisableLeaseRead:    opts.DisableLeaseRead,
			DisableLeaseGuard:   opts.DisableLeaseGuard,
		}, hs, snap, log),
		applyCh:     make(chan []ApplyMsg, 1024),
		inbox:       make(chan Message, 1024),
		stopCh:      make(chan struct{}),
		flushCh:     make(chan struct{}, 1),
		readWaiters: make(map[uint64]chan readResult),
	}
	if opts.StateMachine != nil {
		n.snapReqCh = make(chan raftcore.SnapshotRequest, 1)
	}
	// A recovered snapshot re-seeds the (empty, restarted) state machine
	// through the apply stream before any suffix entries: the consumer's
	// first receive is the restore.
	if snap.Index > 0 {
		n.applyCh <- []ApplyMsg{restoreMsg(&snap)}
	}
	n.done.Add(3)
	go n.run()
	go n.flushLoop()
	go n.snapLoop()
	return n
}

// restoreMsg is the apply-stream representation of a snapshot: the state
// machine discards its state and loads the image.
func restoreMsg(snap *LogSnapshot) ApplyMsg {
	return ApplyMsg{
		Index: snap.Index, Term: snap.Term, Kind: EntrySnapshot,
		Command: snap.Data, Members: snap.Members,
	}
}

// Inbox returns the channel the transport should feed received messages
// into.
func (n *Node) Inbox() chan<- Message { return n.inbox }

// ApplyCh delivers committed entries in order, coalesced into batches: one
// receive drains everything that committed since the previous one, so
// state-machine drains pay one channel operation per commit advance rather
// than per entry.
func (n *Node) ApplyCh() <-chan []ApplyMsg { return n.applyCh }

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.id }

// Done is closed when the node starts shutting down (for pumps and drains
// that would otherwise block on a stopped node's inbox).
func (n *Node) Done() <-chan struct{} { return n.stopCh }

// Stop shuts the node down and waits for its loops to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.done.Wait()
	// Both loops have exited: no sender is left, so closing the apply
	// channel is race-free and lets consumers drain out.
	n.applyClose.Do(func() { close(n.applyCh) })
}

// StorageErr returns the storage error that fail-stopped this node, or nil
// if the node is healthy (or was stopped normally). A fail-stopped node has
// its Done channel closed, so callers can distinguish "crashed as designed"
// (Done closed, StorageErr non-nil) from a clean shutdown.
func (n *Node) StorageErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopErr
}

// failStopLocked halts the node because a durable write failed: continuing
// to vote, ack, or lead on state that is not actually persisted would break
// the crash-recovery argument (a restart would forget promises already sent
// to peers). The node abdicates, aborts waiting clients, and shuts down; it
// sends nothing after the failed write.
func (n *Node) failStopLocked(err error) {
	if n.stopErr != nil {
		return
	}
	n.stopErr = fmt.Errorf("%w: %v", ErrStorageFailed, err)
	for id, ch := range n.readWaiters {
		delete(n.readWaiters, id)
		ch <- readResult{err: ErrNotLeader}
	}
	n.failPropsLocked()
	n.stopOnce.Do(func() { close(n.stopCh) })
}

// Status reports the node's current term, role, and known leader. A
// fail-stopped node reports itself a follower with no leader.
func (n *Node) Status() (types.Time, Role, types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return n.core.Term(), Follower, types.NoNode
	}
	return n.core.Term(), n.core.Role(), n.core.Leader()
}

// Snapshot is one consistent view of a node's externally visible state,
// captured under a single lock acquisition. Chaos oracles use it instead
// of separate Status/CommitIndex/Members calls, which could interleave
// with protocol steps and observe mutually inconsistent values.
type Snapshot struct {
	Term        types.Time
	Role        Role
	Leader      types.NodeID
	CommitIndex int
	LastIndex   int
	Members     types.NodeSet
	Elections   uint64
	// Counters are the election-disruption metrics (pre-vote rounds, term
	// bumps, step-downs, transfers); the chaos monitor samples them.
	Counters Counters
	Err      error // the fail-stop cause, if any
}

// Snapshot returns a consistent snapshot of the node's state.
func (n *Node) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Snapshot{
		Term:        n.core.Term(),
		Role:        n.core.Role(),
		Leader:      n.core.Leader(),
		CommitIndex: n.core.CommitIndex(),
		LastIndex:   n.core.LastIndex(),
		Members:     n.core.Members(),
		Elections:   n.core.Elections(),
		Counters:    n.core.Counters(),
		Err:         n.stopErr,
	}
	if n.stopErr != nil {
		s.Role = Follower
		s.Leader = types.NoNode
	}
	return s
}

// Members returns the node's current effective membership (the latest
// configuration in its log).
func (n *Node) Members() types.NodeSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Members()
}

// CommitIndex returns the node's commit index.
func (n *Node) CommitIndex() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.CommitIndex()
}

// Elections returns how many elections this node has started (metrics).
func (n *Node) Elections() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.core.Elections()
}

// processReadyLocked executes one Ready batch: persist, then externalize.
// Every code path that touches the core ends here; after it returns the
// core's effects are either fully applied or the node has fail-stopped
// with nothing from the batch escaped.
func (n *Node) processReadyLocked() {
	rd := n.core.TakeReady()
	if n.opts.Storage != nil {
		if rd.HardState != nil {
			if err := n.opts.Storage.SaveState(*rd.HardState); err != nil {
				n.failStopLocked(fmt.Errorf("persist state: %w", err))
				return
			}
		}
		if rd.Snapshot != nil {
			// Durability ordering rule: the snapshot image reaches disk
			// before SaveEntries (below) is allowed to truncate the log
			// prefix it summarizes.
			if err := n.opts.Storage.SaveSnapshot(*rd.Snapshot); err != nil {
				n.failStopLocked(fmt.Errorf("persist snapshot: %w", err))
				return
			}
		}
		if rd.FirstIndex > 0 {
			if err := n.opts.Storage.SaveEntries(rd.FirstIndex, rd.Entries); err != nil {
				n.failStopLocked(fmt.Errorf("persist entries: %w", err))
				return
			}
		}
	}
	for _, m := range rd.Messages {
		n.opts.Transport.Send(m)
	}
	for _, rs := range rd.ReadStates {
		ch, ok := n.readWaiters[rs.ReqID]
		if !ok {
			continue // caller already timed out
		}
		delete(n.readWaiters, rs.ReqID)
		if rs.Index < 0 {
			// Leadership lost before confirmation. A CheckQuorum step-down
			// in the same batch means the retryable ErrLeaderStepdown (a
			// successor is likely already up — re-probe immediately);
			// anything else is the generic redirect.
			err := error(ErrNotLeader)
			if rd.SteppedDown {
				err = ErrLeaderStepdown
			}
			ch <- readResult{err: err}
		} else {
			ch <- readResult{idx: rs.Index}
		}
	}
	committed := rd.Committed
	if rd.RestoreSnapshot && rd.Snapshot != nil {
		// A leader-installed snapshot replaces the state machine's world:
		// deliver the restore before any suffix entries committed in the
		// same batch.
		committed = append([]ApplyMsg{restoreMsg(rd.Snapshot)}, committed...)
	}
	if len(committed) > 0 {
		select {
		case n.applyCh <- committed:
		case <-n.stopCh:
		}
	}
	if rd.TakeSnapshot != nil && n.snapReqCh != nil {
		select {
		case n.snapReqCh <- *rd.TakeSnapshot:
		default:
			// A capture is already queued; the policy stays latched until
			// that one resolves, so dropping this request is safe.
		}
	}
	// Leadership lost inside this batch: abort queued (unflushed)
	// proposals — their commands never entered the log. A CheckQuorum
	// step-down fails them with the retryable ErrLeaderStepdown so clients
	// re-probe immediately instead of waiting out a redirect.
	isLeader := n.core.Role() == Leader
	if n.wasLeader && !isLeader {
		if rd.SteppedDown {
			n.failPropsLockedErr(fmt.Errorf("%w (was %s)", ErrLeaderStepdown, n.id))
		} else {
			n.failPropsLocked()
		}
	}
	n.wasLeader = isLeader
}

// snapLoop answers TakeSnapshot effects: wait for the state machine to
// apply through the requested index, serialize it outside mu, then fold
// the image into the core with Compact. Runs for the node's lifetime; with
// no StateMachine the nil snapReqCh never delivers and the loop just waits
// for shutdown.
func (n *Node) snapLoop() {
	defer n.done.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case req := <-n.snapReqCh:
			n.handleSnapshotRequest(req)
		}
	}
}

// handleSnapshotRequest runs one snapshot capture. On any failure the
// request is aborted (the policy re-arms at the next threshold crossing);
// only a successful capture compacts the log.
func (n *Node) handleSnapshotRequest(req raftcore.SnapshotRequest) {
	sm := n.opts.StateMachine
	deadline := time.Now().Add(5 * time.Second)
	for sm.AppliedIndex() < req.Index {
		if time.Now().After(deadline) {
			n.abortSnapshot() // apply stream stalled; try again later
			return
		}
		select {
		case <-n.stopCh:
			return
		case <-time.After(500 * time.Microsecond):
		}
	}
	data, applied, err := sm.SaveSnapshot()
	if err != nil {
		n.abortSnapshot()
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return
	}
	if n.core.Compact(applied, data) {
		n.processReadyLocked()
	}
}

// abortSnapshot clears the core's pending snapshot request so the policy
// can fire again.
func (n *Node) abortSnapshot() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.core.AbortSnapshot()
}

// run is the main event loop: messages, timers, shutdown.
func (n *Node) run() {
	defer n.done.Done()
	var tickCh <-chan time.Time
	if !n.opts.ExternalTick {
		ticker := time.NewTicker(n.opts.HeartbeatInterval / 2)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	for {
		select {
		case <-n.stopCh:
			_ = n.opts.Transport.Close()
			return
		case m := <-n.inbox:
			n.step(m)
		case <-tickCh:
			n.tick()
		}
	}
}

// Tick advances the node's logical clock by one unit. Only meaningful with
// Options.ExternalTick: the owner (e.g. a multiraft host's shared tick
// loop) calls it at the cadence the internal ticker would have used,
// HeartbeatInterval/2.
func (n *Node) Tick() { n.tick() }

// step feeds one incoming message to the core and executes the effects.
func (n *Node) step(m Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return // fail-stopped: send nothing after the lost write
	}
	n.core.Step(m)
	n.processReadyLocked()
}

// tick advances the core's logical clock (heartbeats, election timeouts).
func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return
	}
	n.core.Tick()
	n.processReadyLocked()
}

// Propose appends a client command at the leader. It returns the assigned
// log index and term, or ErrNotLeader.
func (n *Node) Propose(cmd []byte) (int, types.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return 0, 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, types.NoNode)
	}
	idx, term, err := n.core.Propose(cmd)
	if err != nil {
		return 0, 0, err
	}
	n.processReadyLocked()
	if n.stopErr != nil {
		// The WAL write failed: the node fail-stopped and the entry was
		// never durable; the caller must not act on it.
		return 0, 0, n.stopErr
	}
	return idx, term, nil
}

// ProposeConfig appends a membership change at the leader, enforcing the
// paper's guards: the change must add or remove exactly one node (R1),
// no other configuration change may be in flight (R2), and — unless
// DisableR3 — the leader must have committed an entry in its current term
// (R3).
func (n *Node) ProposeConfig(members types.NodeSet) (int, types.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return 0, 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, types.NoNode)
	}
	idx, term, err := n.core.ProposeConfig(members)
	if err != nil {
		return 0, 0, err
	}
	n.processReadyLocked()
	if n.stopErr != nil {
		return 0, 0, n.stopErr
	}
	return idx, term, nil
}

// readResult resolves one blocked read barrier waiter: the confirmed
// index, or the error to retry with (ErrNotLeader, or the retryable
// ErrLeaderStepdown when the barrier died in a CheckQuorum step-down).
type readResult struct {
	idx int
	err error
}

// ReadIndex implements linearizable reads without log writes (the Raft
// ReadIndex optimization): the leader captures its read floor, confirms
// it is still the leader by collecting a round of quorum acknowledgements
// (concurrent barriers coalesce into shared confirmation rounds), and
// returns the index. A caller that waits until its state machine has
// applied up to the returned index may then serve the read locally.
func (n *Node) ReadIndex(timeout time.Duration) (int, error) {
	n.mu.Lock()
	if n.stopErr != nil {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, types.NoNode)
	}
	reqID := n.nextReadID
	n.nextReadID++
	idx, confirmed, err := n.core.ReadIndex(reqID)
	if err != nil {
		n.mu.Unlock()
		return 0, err
	}
	if confirmed {
		n.mu.Unlock()
		return idx, nil
	}
	ch := make(chan readResult, 1)
	n.readWaiters[reqID] = ch
	n.processReadyLocked() // the barrier's confirmation heartbeat
	n.mu.Unlock()

	return n.awaitRead(reqID, ch, timeout)
}

// LeaseRead serves a linearizable read from the leader lease with zero
// network rounds: ok reports that the lease is valid (a strict quorum
// acked within the last election interval, no transfer or uncommitted
// reconfiguration in flight) and idx the index the caller may read at
// once its state machine has applied through it. ok=false means no lease
// — fall back to ReadIndex.
func (n *Node) LeaseRead() (idx int, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return 0, false
	}
	return n.core.LeaseRead()
}

// FollowerReadIndex runs a linearizable read barrier from a non-leader:
// the barrier is forwarded to the known leader, which answers with its
// confirmed read index (from its lease when valid, otherwise after a
// quorum round). A caller that waits until its LOCAL state machine has
// applied through the returned index may then serve the read from its own
// replica — read throughput scales with followers instead of loading the
// leader.
func (n *Node) FollowerReadIndex(timeout time.Duration) (int, error) {
	n.mu.Lock()
	if n.stopErr != nil {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, types.NoNode)
	}
	reqID := n.nextReadID
	n.nextReadID++
	if err := n.core.ForwardReadIndex(reqID); err != nil {
		n.mu.Unlock()
		return 0, err
	}
	ch := make(chan readResult, 1)
	n.readWaiters[reqID] = ch
	n.processReadyLocked() // the forward (or, on a leader, its local barrier)
	n.mu.Unlock()

	return n.awaitRead(reqID, ch, timeout)
}

// awaitRead blocks one read barrier caller on its result channel.
func (n *Node) awaitRead(reqID uint64, ch chan readResult, timeout time.Duration) (int, error) {
	select {
	case r := <-ch:
		if r.err != nil {
			return 0, r.err
		}
		return r.idx, nil
	case <-time.After(timeout):
		n.mu.Lock()
		delete(n.readWaiters, reqID)
		n.core.CancelRead(reqID)
		n.mu.Unlock()
		return 0, fmt.Errorf("raft: read index confirmation timed out")
	case <-n.stopCh:
		return 0, ErrStopped
	}
}

// TransferLeader starts a graceful leadership handoff to peer to (NoNode
// picks the most caught-up voter automatically): proposals pause, the
// target is brought fully up to date, then told to campaign immediately —
// bypassing Pre-Vote and follower stickiness, so leadership moves without
// a disruptive timeout election. Returns once the handoff is initiated;
// the transfer aborts on its own (and proposals resume) if the target
// does not take over within an election interval.
func (n *Node) TransferLeader(to types.NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return fmt.Errorf("%w (known leader: %s)", ErrNotLeader, types.NoNode)
	}
	if err := n.core.TransferLeader(to); err != nil {
		return err
	}
	n.processReadyLocked()
	if n.stopErr != nil {
		return n.stopErr
	}
	return nil
}

// PickTransferTarget returns the most caught-up voter inside target that
// this leader could hand off to (NoNode when none exists, or when this
// node is not the leader). Reconfigurations that shed the leader pass the
// NEW configuration so leadership lands on a surviving node.
func (n *Node) PickTransferTarget(target types.NodeSet) types.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopErr != nil {
		return types.NoNode
	}
	return n.core.PickTransferTarget(target)
}

// AddServer proposes membership ∪ {id}.
func (n *Node) AddServer(id types.NodeID) (int, types.Time, error) {
	return n.ProposeConfig(n.Members().Add(id))
}

// RemoveServer proposes membership \ {id}.
func (n *Node) RemoveServer(id types.NodeID) (int, types.Time, error) {
	return n.ProposeConfig(n.Members().Remove(id))
}
