package raft

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"adore/internal/types"
)

// Role is a node's protocol role.
type Role uint8

const (
	// Follower, Candidate, Leader are the standard Raft roles.
	Follower Role = iota
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Options configures a node.
type Options struct {
	// ID is this node's identity; Members the initial cluster.
	ID      types.NodeID
	Members []types.NodeID

	// Transport carries messages; required.
	Transport Transport

	// ElectionTimeoutMin/Max bound the randomized election timeout;
	// HeartbeatInterval is the leader's append cadence. Zero values get
	// test-friendly defaults (50–100 ms / 20 ms).
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	HeartbeatInterval  time.Duration

	// Storage persists term, vote, and log across restarts. Nil means
	// the node is volatile (models, benchmarks, never-restarted tests).
	Storage Storage

	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message. The leader streams a lagging follower's log as a pipeline
	// of bounded windows (advancing nextIndex optimistically per send)
	// instead of re-sending the full suffix stop-and-wait. Zero gets a
	// default of 256.
	MaxEntriesPerAppend int

	// DisableR3 reproduces the published single-server bug: reconfig no
	// longer waits for a committed entry in the leader's current term.
	// For experiments only.
	DisableR3 bool

	// DisableR2 drops the "no uncommitted configuration entry" guard, so
	// a second membership change can be proposed while the first is still
	// in flight. Disjoint quorums become reachable — the chaos harness
	// uses this to prove it can catch the resulting divergence. For
	// experiments only.
	DisableR2 bool

	// Seed randomizes election timeouts deterministically (0 = from ID).
	Seed int64
}

func (o *Options) defaults() {
	if o.ElectionTimeoutMin == 0 {
		o.ElectionTimeoutMin = 50 * time.Millisecond
	}
	if o.ElectionTimeoutMax == 0 {
		o.ElectionTimeoutMax = 2 * o.ElectionTimeoutMin
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = o.ElectionTimeoutMin / 3
	}
	if o.Seed == 0 {
		o.Seed = int64(o.ID) * 7919
	}
	if o.MaxEntriesPerAppend == 0 {
		o.MaxEntriesPerAppend = 256
	}
}

// Errors returned by the client-facing API.
var (
	// ErrNotLeader reports that the node cannot serve the request; the
	// caller should retry against the current leader.
	ErrNotLeader = errors.New("raft: not the leader")
	// ErrStopped reports the node has shut down.
	ErrStopped = errors.New("raft: node stopped")
	// ErrReconfigPending rejects a membership change while another is
	// uncommitted (R2).
	ErrReconfigPending = errors.New("raft: a configuration change is already in progress (R2)")
	// ErrReconfigNotReady rejects a membership change before the leader
	// has committed an entry in its current term (R3).
	ErrReconfigNotReady = errors.New("raft: no committed entry in the current term yet (R3)")
	// ErrBadMembership rejects changes that are not single-node (R1) or
	// would empty the cluster.
	ErrBadMembership = errors.New("raft: invalid membership change (R1)")
	// ErrStorageFailed reports that a durable write failed and the node
	// fail-stopped: it halted rather than keep running on state it could
	// not persist (acting on unpersisted state breaks the crash-recovery
	// argument). StorageErr returns the underlying cause.
	ErrStorageFailed = errors.New("raft: storage write failed; node halted")
)

// Node is one Raft runtime instance. Create with StartNode; stop with Stop.
type Node struct {
	mu sync.Mutex

	id   types.NodeID
	opts Options
	rng  *rand.Rand // guarded by mu

	term     types.Time   // guarded by mu
	votedFor types.NodeID // guarded by mu
	role     Role         // guarded by mu
	leader   types.NodeID // last known leader; guarded by mu

	// log is 1-indexed: log[0] is a sentinel.
	log         []LogEntry // guarded by mu
	commitIndex int        // guarded by mu
	lastApplied int        // guarded by mu

	// Leader volatile state.
	nextIndex  map[types.NodeID]int // guarded by mu
	matchIndex map[types.NodeID]int // guarded by mu
	votes      types.NodeSet        // guarded by mu

	// conf0 is the initial membership; the effective membership is the
	// latest config entry in the log (hot reconfiguration).
	conf0 types.NodeSet
	// confIdxs caches the positions of EntryConfig entries in the log, in
	// ascending order, so membership lookups cost O(#configs) instead of a
	// backward scan over the whole log (which made every broadcast O(n) on
	// long logs). Every log append/truncation keeps it in sync.
	confIdxs []int // guarded by mu

	applyCh    chan []ApplyMsg
	inbox      chan Message
	stopCh     chan struct{}
	stopOnce   sync.Once
	applyClose sync.Once
	done       sync.WaitGroup

	// Group-commit state (see batch.go): ProposeAsync enqueues proposals
	// here; the flush loop drains them all into one WAL frame (a single
	// fsync) and one AppendEntries broadcast, then acks the futures. The
	// queue lives under its own narrow mutex — never held across I/O — so
	// proposers keep enqueueing while a flush holds mu across the fsync;
	// that overlap is what lets batches grow under load. Lock order:
	// mu before propMu (flushBatch drains under propMu alone, then takes
	// mu; failPropsLocked runs under mu and takes propMu inside).
	propMu       sync.Mutex
	pendingProps []*Proposal // guarded by propMu
	stopping     bool        // guarded by propMu
	flushCh      chan struct{}

	electionDeadline time.Time // guarded by mu

	// pendingReads are ReadIndex barriers awaiting quorum confirmation.
	pendingReads []*pendingRead // guarded by mu

	// appendSeq numbers outgoing AppendEntries; followers echo it in their
	// responses so barriers can tell fresh acks from stale in-flight ones.
	appendSeq uint64 // guarded by mu

	// stopErr, when non-nil, records the storage error that fail-stopped
	// the node (see failStopLocked).
	stopErr error // guarded by mu

	// metrics
	elections uint64 // guarded by mu
}

// pendingRead is one ReadIndex barrier: the commit index captured at
// request time, and the leadership confirmations gathered since.
type pendingRead struct {
	index int
	term  types.Time
	seq   uint64 // only acks echoing a seq beyond this confirm the barrier
	acks  types.NodeSet
	done  chan int // receives the read index once confirmed; closed on failure
}

// StartNode launches a node and its background loops.
func StartNode(opts Options) *Node {
	opts.defaults()
	var hs HardState
	log := make([]LogEntry, 1) // sentinel at index 0
	if opts.Storage != nil {
		h, stored, err := opts.Storage.Load()
		if err != nil {
			panic(fmt.Sprintf("raft: storage load: %v", err))
		}
		hs = h
		if len(stored) > 0 {
			log = stored
		}
	}
	n := &Node{
		id:       opts.ID,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		role:     Follower,
		term:     hs.Term,
		votedFor: hs.VotedFor,
		log:      log,
		conf0:    types.NewNodeSet(opts.Members...),
		applyCh:  make(chan []ApplyMsg, 1024),
		inbox:    make(chan Message, 1024),
		stopCh:   make(chan struct{}),
		flushCh:  make(chan struct{}, 1),
	}
	// Seed the config-index cache from the recovered log (one scan, here
	// only; afterwards every append/truncation maintains it).
	for i := 1; i < len(log); i++ { // 0 is the sentinel
		if log[i].Kind == EntryConfig {
			n.confIdxs = append(n.confIdxs, i)
		}
	}
	n.mu.Lock()
	n.resetElectionDeadlineLocked()
	n.mu.Unlock()
	n.done.Add(2)
	go n.run()
	go n.flushLoop()
	return n
}

// Inbox returns the channel the transport should feed received messages
// into.
func (n *Node) Inbox() chan<- Message { return n.inbox }

// ApplyCh delivers committed entries in order, coalesced into batches: one
// receive drains everything that committed since the previous one, so
// state-machine drains pay one channel operation per commit advance rather
// than per entry.
func (n *Node) ApplyCh() <-chan []ApplyMsg { return n.applyCh }

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.id }

// Done is closed when the node starts shutting down (for pumps and drains
// that would otherwise block on a stopped node's inbox).
func (n *Node) Done() <-chan struct{} { return n.stopCh }

// Stop shuts the node down and waits for its loops to exit.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.done.Wait()
	// Both loops have exited: no sender is left, so closing the apply
	// channel is race-free and lets consumers drain out.
	n.applyClose.Do(func() { close(n.applyCh) })
}

// StorageErr returns the storage error that fail-stopped this node, or nil
// if the node is healthy (or was stopped normally). A fail-stopped node has
// its Done channel closed, so callers can distinguish "crashed as designed"
// (Done closed, StorageErr non-nil) from a clean shutdown.
func (n *Node) StorageErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopErr
}

// failStopLocked halts the node because a durable write failed: continuing
// to vote, ack, or lead on state that is not actually persisted would break
// the crash-recovery argument (a restart would forget promises already sent
// to peers). The node abdicates, aborts waiting clients, and shuts down; it
// sends nothing after the failed write.
func (n *Node) failStopLocked(err error) {
	if n.stopErr != nil {
		return
	}
	n.stopErr = fmt.Errorf("%w: %v", ErrStorageFailed, err)
	n.role = Follower
	n.leader = types.NoNode
	n.failReadsLocked()
	n.failPropsLocked()
	n.stopOnce.Do(func() { close(n.stopCh) })
}

// Status reports the node's current term, role, and known leader.
func (n *Node) Status() (types.Time, Role, types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term, n.role, n.leader
}

// Members returns the node's current effective membership (the latest
// configuration in its log).
func (n *Node) Members() types.NodeSet {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.membersLocked()
}

func (n *Node) membersLocked() types.NodeSet {
	if k := len(n.confIdxs); k > 0 {
		return types.NewNodeSet(n.log[n.confIdxs[k-1]].Members...)
	}
	return n.conf0
}

// committedMembersLocked is the membership ignoring uncommitted config
// entries (used for R2 checks and diagnostics).
func (n *Node) committedMembersLocked() types.NodeSet {
	for i := len(n.confIdxs) - 1; i >= 0; i-- {
		if n.confIdxs[i] <= n.commitIndex {
			return types.NewNodeSet(n.log[n.confIdxs[i]].Members...)
		}
	}
	return n.conf0
}

// trackConfigLocked records a freshly appended entry's position in the
// config-index cache. Call it for every log append.
func (n *Node) trackConfigLocked(idx int, e LogEntry) {
	if e.Kind == EntryConfig {
		n.confIdxs = append(n.confIdxs, idx)
	}
}

// dropConfigsFromLocked evicts cached config positions at or above pos
// (the log is being truncated there).
func (n *Node) dropConfigsFromLocked(pos int) {
	for len(n.confIdxs) > 0 && n.confIdxs[len(n.confIdxs)-1] >= pos {
		n.confIdxs = n.confIdxs[:len(n.confIdxs)-1]
	}
}

// CommitIndex returns the node's commit index.
func (n *Node) CommitIndex() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// Elections returns how many elections this node has started (metrics).
func (n *Node) Elections() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.elections
}

// Propose appends a client command at the leader. It returns the assigned
// log index and term, or ErrNotLeader.
func (n *Node) Propose(cmd []byte) (int, types.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Leader {
		return 0, 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, n.leader)
	}
	idx, ok := n.appendLocked(LogEntry{Term: n.term, Kind: EntryCommand, Command: cmd})
	if !ok {
		return 0, 0, n.stopErr
	}
	n.broadcastAppendLocked()
	return idx, n.term, nil
}

// ProposeConfig appends a membership change at the leader, enforcing the
// paper's guards: the change must add or remove exactly one node (R1),
// no other configuration change may be in flight (R2), and — unless
// DisableR3 — the leader must have committed an entry in its current term
// (R3).
func (n *Node) ProposeConfig(members types.NodeSet) (int, types.Time, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != Leader {
		return 0, 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, n.leader)
	}
	cur := n.membersLocked()
	if members.IsEmpty() {
		return 0, 0, fmt.Errorf("%w: empty membership", ErrBadMembership)
	}
	added := members.Diff(cur).Len()
	removed := cur.Diff(members).Len()
	if added+removed != 1 {
		return 0, 0, fmt.Errorf("%w: %s → %s changes %d nodes", ErrBadMembership, cur, members, added+removed)
	}
	// R2: no uncommitted config entry.
	if !n.opts.DisableR2 {
		for i := n.commitIndex + 1; i < len(n.log); i++ {
			if n.log[i].Kind == EntryConfig {
				return 0, 0, ErrReconfigPending
			}
		}
	}
	// R3: a committed entry with the current term.
	if !n.opts.DisableR3 {
		ok := false
		for i := n.commitIndex; i >= 1; i-- {
			if n.log[i].Term == n.term {
				ok = true
				break
			}
			if n.log[i].Term < n.term {
				break
			}
		}
		if !ok {
			return 0, 0, ErrReconfigNotReady
		}
	}
	idx, ok := n.appendLocked(LogEntry{Term: n.term, Kind: EntryConfig, Members: members.Copy()})
	if !ok {
		return 0, 0, n.stopErr
	}
	n.broadcastAppendLocked()
	return idx, n.term, nil
}

// ReadIndex implements linearizable reads without log writes (the Raft
// ReadIndex optimization): the leader captures its commit index, confirms
// it is still the leader by collecting a round of quorum acknowledgements,
// and returns the index. A caller that waits until its state machine has
// applied up to the returned index may then serve the read locally.
func (n *Node) ReadIndex(timeout time.Duration) (int, error) {
	n.mu.Lock()
	if n.role != Leader {
		leader := n.leader // copy before unlocking: handle() updates it
		n.mu.Unlock()
		return 0, fmt.Errorf("%w (known leader: %s)", ErrNotLeader, leader)
	}
	pr := &pendingRead{
		index: n.commitIndex,
		term:  n.term,
		seq:   n.appendSeq, // acks must echo a later seq: stale in-flight responses don't confirm
		acks:  types.NewNodeSet(n.id),
		done:  make(chan int, 1),
	}
	// A single-node configuration is already a quorum of itself.
	if isMajority(pr.acks, n.membersLocked()) {
		n.mu.Unlock()
		return pr.index, nil
	}
	n.pendingReads = append(n.pendingReads, pr)
	n.broadcastAppendLocked() // heartbeat doubles as the confirmation round
	n.mu.Unlock()

	select {
	case idx, ok := <-pr.done:
		if !ok {
			return 0, ErrNotLeader
		}
		return idx, nil
	case <-time.After(timeout):
		n.mu.Lock()
		n.dropPendingReadLocked(pr)
		n.mu.Unlock()
		return 0, fmt.Errorf("raft: read index confirmation timed out")
	case <-n.stopCh:
		return 0, ErrStopped
	}
}

// isMajority reports whether acks form a strict majority of members.
func isMajority(acks, members types.NodeSet) bool {
	return members.Len() < 2*acks.IntersectLen(members)
}

func (n *Node) dropPendingReadLocked(pr *pendingRead) {
	for i, p := range n.pendingReads {
		if p == pr {
			n.pendingReads = append(n.pendingReads[:i], n.pendingReads[i+1:]...)
			return
		}
	}
}

// confirmReadsLocked credits a leadership confirmation from a peer and
// resolves the barriers that reached a quorum. seq is the append sequence
// the peer echoed: only responses to appends sent after a barrier was
// registered count for it, so a response that was already in flight when
// the barrier (or a partition) arrived cannot confirm leadership.
func (n *Node) confirmReadsLocked(from types.NodeID, seq uint64) {
	if len(n.pendingReads) == 0 {
		return
	}
	members := n.membersLocked()
	kept := n.pendingReads[:0]
	for _, pr := range n.pendingReads {
		if pr.term != n.term || n.role != Leader {
			close(pr.done)
			continue
		}
		if seq > pr.seq {
			pr.acks = pr.acks.Add(from)
		}
		if isMajority(pr.acks, members) {
			pr.done <- pr.index
			continue
		}
		kept = append(kept, pr)
	}
	n.pendingReads = kept
}

// failReadsLocked aborts every pending barrier (leadership lost).
func (n *Node) failReadsLocked() {
	for _, pr := range n.pendingReads {
		close(pr.done)
	}
	n.pendingReads = nil
}

// AddServer proposes membership ∪ {id}.
func (n *Node) AddServer(id types.NodeID) (int, types.Time, error) {
	return n.ProposeConfig(n.Members().Add(id))
}

// RemoveServer proposes membership \ {id}.
func (n *Node) RemoveServer(id types.NodeID) (int, types.Time, error) {
	return n.ProposeConfig(n.Members().Remove(id))
}

// appendLocked appends an entry, persists it, and returns its index. ok is
// false when the durable write failed: the node has fail-stopped and the
// entry must not be acted on (the caller returns an error instead of
// broadcasting).
func (n *Node) appendLocked(e LogEntry) (idx int, ok bool) {
	n.log = append(n.log, e)
	idx = len(n.log) - 1
	n.trackConfigLocked(idx, e)
	n.matchIndex[n.id] = idx
	return idx, n.persistEntriesLocked(idx)
}

// persistStateLocked durably records the current term and vote. On failure
// it fail-stops the node and returns false; the caller must not act on the
// unpersisted state (no votes, no responses, no broadcasts).
func (n *Node) persistStateLocked() bool {
	if n.opts.Storage == nil {
		return true
	}
	if err := n.opts.Storage.SaveState(HardState{Term: n.term, VotedFor: n.votedFor}); err != nil {
		n.failStopLocked(fmt.Errorf("persist state: %w", err))
		return false
	}
	return true
}

// persistEntriesLocked durably replaces the log suffix from firstIndex. On
// failure it fail-stops the node and returns false (see persistStateLocked).
func (n *Node) persistEntriesLocked(firstIndex int) bool {
	if n.opts.Storage == nil {
		return true
	}
	entries := make([]LogEntry, len(n.log)-firstIndex)
	copy(entries, n.log[firstIndex:])
	if err := n.opts.Storage.SaveEntries(firstIndex, entries); err != nil {
		n.failStopLocked(fmt.Errorf("persist entries: %w", err))
		return false
	}
	return true
}

// run is the main event loop: messages, timers, shutdown.
func (n *Node) run() {
	defer n.done.Done()
	ticker := time.NewTicker(n.opts.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			_ = n.opts.Transport.Close()
			return
		case m := <-n.inbox:
			n.handle(m)
		case <-ticker.C:
			n.tick()
		}
	}
}

// tick fires heartbeats (leader) or election timeouts (non-leaders).
func (n *Node) tick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	if n.role == Leader {
		n.broadcastAppendLocked()
		n.applyLocked()
		return
	}
	if now.After(n.electionDeadline) {
		// A node outside its own effective configuration must not
		// disrupt the cluster with elections (it has been removed).
		if !n.membersLocked().Contains(n.id) {
			n.resetElectionDeadlineLocked()
			return
		}
		n.startElectionLocked()
	}
}

func (n *Node) resetElectionDeadlineLocked() {
	span := n.opts.ElectionTimeoutMax - n.opts.ElectionTimeoutMin
	d := n.opts.ElectionTimeoutMin
	if span > 0 {
		d += time.Duration(n.rng.Int63n(int64(span)))
	}
	n.electionDeadline = time.Now().Add(d)
}

// startElectionLocked begins a candidacy for the next term.
func (n *Node) startElectionLocked() {
	n.term++
	n.role = Candidate
	n.votedFor = n.id
	if !n.persistStateLocked() {
		return // fail-stopped: the candidacy was never durable, send nothing
	}
	n.votes = types.NewNodeSet(n.id)
	n.elections++
	n.resetElectionDeadlineLocked()
	lastIdx := len(n.log) - 1
	req := Message{
		Type:         MsgVoteRequest,
		From:         n.id,
		Term:         n.term,
		LastLogIndex: lastIdx,
		LastLogTerm:  n.log[lastIdx].Term,
	}
	for _, to := range n.membersLocked().Slice() {
		if to == n.id {
			continue
		}
		req.To = to
		n.opts.Transport.Send(req)
	}
	n.maybeWinLocked()
}

// maybeWinLocked promotes a candidate with a quorum of votes.
func (n *Node) maybeWinLocked() {
	if n.role != Candidate {
		return
	}
	members := n.membersLocked()
	if members.Len() >= 2*n.votes.IntersectLen(members) {
		return // not a strict majority
	}
	n.role = Leader
	n.leader = n.id
	n.nextIndex = make(map[types.NodeID]int)
	n.matchIndex = make(map[types.NodeID]int)
	for _, id := range members.Slice() {
		n.nextIndex[id] = len(n.log)
		n.matchIndex[id] = 0
	}
	n.matchIndex[n.id] = len(n.log) - 1
	// Term-opening no-op: commits promptly in this term, satisfying both
	// the commitment rule and R3.
	if _, ok := n.appendLocked(LogEntry{Term: n.term, Kind: EntryNoOp}); !ok {
		return // fail-stopped while persisting the no-op
	}
	n.broadcastAppendLocked()
}

// broadcastAppendLocked sends AppendEntries to every peer in the current
// configuration (and to peers being removed that still need the entry that
// removes them — they are reached while they remain in the effective
// membership union with the committed one).
func (n *Node) broadcastAppendLocked() {
	if n.role != Leader {
		return
	}
	targets := n.membersLocked().Union(n.committedMembersLocked())
	for _, to := range targets.Slice() {
		if to == n.id {
			continue
		}
		n.sendAppendLocked(to)
	}
	// A single-member configuration commits on its own append: there are
	// no responses to trigger the usual advance.
	n.advanceCommitLocked()
}

func (n *Node) sendAppendLocked(to types.NodeID) {
	next := n.nextIndex[to]
	if next < 1 {
		next = 1
	}
	if next > len(n.log) {
		next = len(n.log)
	}
	prev := next - 1
	// Bound the window: a lagging follower is streamed in
	// MaxEntriesPerAppend-sized messages instead of one full-suffix
	// resend per round trip.
	end := len(n.log)
	if lim := n.opts.MaxEntriesPerAppend; lim > 0 && end-next > lim {
		end = next + lim
	}
	entries := make([]LogEntry, end-next)
	copy(entries, n.log[next:end])
	n.appendSeq++
	n.opts.Transport.Send(Message{
		Type:         MsgAppendEntries,
		From:         n.id,
		To:           to,
		Term:         n.term,
		PrevLogIndex: prev,
		PrevLogTerm:  n.log[prev].Term,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
		Seq:          n.appendSeq,
	})
	// Pipelining: advance nextIndex optimistically so the next flush tick
	// or heartbeat streams the following window without waiting for this
	// one's response. A rejection resets it via the follower's hint; a
	// lost window is recovered the same way when the next probe fails.
	if len(entries) > 0 {
		n.nextIndex[to] = end
	}
}

// handle dispatches an incoming message.
func (n *Node) handle(m Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Term > n.term {
		n.term = m.Term
		n.role = Follower
		n.votedFor = types.NoNode
		if !n.persistStateLocked() {
			return // fail-stopped: the term bump never became durable
		}
		n.failReadsLocked()
		n.failPropsLocked()
	}
	switch m.Type {
	case MsgVoteRequest:
		n.onVoteRequestLocked(m)
	case MsgVoteResponse:
		n.onVoteResponseLocked(m)
	case MsgAppendEntries:
		n.onAppendEntriesLocked(m)
	case MsgAppendResponse:
		n.onAppendResponseLocked(m)
	}
	n.applyLocked()
}

func (n *Node) onVoteRequestLocked(m Message) {
	granted := false
	if m.Term == n.term && (n.votedFor == types.NoNode || n.votedFor == m.From) {
		lastIdx := len(n.log) - 1
		lastTerm := n.log[lastIdx].Term
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIdx)
		if upToDate {
			granted = true
			n.votedFor = m.From
			if !n.persistStateLocked() {
				return // fail-stopped: never promise a vote that is not durable
			}
			n.resetElectionDeadlineLocked()
		}
	}
	n.opts.Transport.Send(Message{
		Type: MsgVoteResponse, From: n.id, To: m.From, Term: n.term, Granted: granted,
	})
}

func (n *Node) onVoteResponseLocked(m Message) {
	if n.role != Candidate || m.Term != n.term || !m.Granted {
		return
	}
	n.votes = n.votes.Add(m.From)
	n.maybeWinLocked()
}

func (n *Node) onAppendEntriesLocked(m Message) {
	success := false
	matchIdx := 0
	hint := 0
	if m.Term == n.term {
		n.role = Follower
		n.leader = m.From
		n.resetElectionDeadlineLocked()
		if m.PrevLogIndex < len(n.log) && n.log[m.PrevLogIndex].Term == m.PrevLogTerm {
			success = true
			// Append, truncating on conflicts.
			idx := m.PrevLogIndex
			firstChanged := 0
			for i, e := range m.Entries {
				pos := idx + 1 + i
				if pos < len(n.log) {
					if n.log[pos].Term != e.Term {
						n.log = n.log[:pos]
						n.dropConfigsFromLocked(pos)
						n.log = append(n.log, e)
						n.trackConfigLocked(pos, e)
						if firstChanged == 0 {
							firstChanged = pos
						}
					}
				} else {
					n.log = append(n.log, e)
					n.trackConfigLocked(pos, e)
					if firstChanged == 0 {
						firstChanged = pos
					}
				}
			}
			if firstChanged != 0 && !n.persistEntriesLocked(firstChanged) {
				return // fail-stopped: do not ack entries that are not durable
			}
			matchIdx = m.PrevLogIndex + len(m.Entries)
			if m.LeaderCommit > n.commitIndex {
				n.commitIndex = min(m.LeaderCommit, matchIdx)
			}
		} else {
			// Consistency check failed: hint where our log actually ends
			// so a pipelining leader can jump back in one round trip
			// instead of probing one index at a time.
			hint = min(m.PrevLogIndex-1, len(n.log)-1)
		}
	}
	n.opts.Transport.Send(Message{
		Type: MsgAppendResponse, From: n.id, To: m.From, Term: n.term,
		Success: success, MatchIndex: matchIdx, HintIndex: hint, Seq: m.Seq,
	})
}

func (n *Node) onAppendResponseLocked(m Message) {
	if n.role != Leader || m.Term != n.term {
		return
	}
	if !m.Success {
		// Back off below the rejected probe, jumping straight to the
		// follower's hint when it is lower (fast conflict resolution for
		// pipelined windows). No floor at the recorded matchIndex: a
		// volatile follower can restart with an empty log, and resending
		// already-acked entries is harmless (the follower deduplicates).
		next := n.nextIndex[m.From] - 1
		if m.HintIndex+1 < next {
			next = m.HintIndex + 1
		}
		if next < 1 {
			next = 1
		}
		n.nextIndex[m.From] = next
		n.sendAppendLocked(m.From)
		return
	}
	if m.MatchIndex > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.MatchIndex
	}
	if m.MatchIndex >= n.nextIndex[m.From] {
		n.nextIndex[m.From] = m.MatchIndex + 1
	}
	n.confirmReadsLocked(m.From, m.Seq)
	n.advanceCommitLocked()
}

// advanceCommitLocked moves the commit index to the highest current-term
// index replicated on a quorum of the current configuration.
func (n *Node) advanceCommitLocked() {
	members := n.membersLocked()
	for idx := len(n.log) - 1; idx > n.commitIndex; idx-- {
		if n.log[idx].Term != n.term {
			break // commitment rule: only current-term entries directly
		}
		count := 0
		for _, id := range members.Slice() {
			if id == n.id || n.matchIndex[id] >= idx {
				count++
			}
		}
		if members.Len() < 2*count {
			n.commitIndex = idx
			// Stepping stone committed: if this commit finalizes our own
			// removal, step down.
			if !n.committedMembersLocked().Contains(n.id) && !members.Contains(n.id) {
				n.role = Follower
				n.failReadsLocked()
				n.failPropsLocked()
			}
			break
		}
	}
}

// applyLocked delivers newly committed entries to the apply channel as one
// batch: consumers pay a single channel operation per commit advance
// instead of one per entry.
func (n *Node) applyLocked() {
	if n.lastApplied >= n.commitIndex {
		return
	}
	batch := make([]ApplyMsg, 0, n.commitIndex-n.lastApplied)
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		e := n.log[n.lastApplied]
		batch = append(batch, ApplyMsg{Index: n.lastApplied, Term: e.Term, Kind: e.Kind, Command: e.Command, Members: e.Members})
	}
	select {
	case n.applyCh <- batch:
	case <-n.stopCh:
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
