// Package transport provides message transports for the raft runtime: an
// in-memory network with injectable latency, loss, and partitions (the
// repository's stand-in for the paper's EC2 testbed), and a TCP transport
// over encoding/gob for real deployments.
package transport

import (
	"math/rand"
	"sync"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// MemNetwork is a simulated network connecting in-process raft nodes.
// Messages are delivered asynchronously with configurable latency, jitter,
// and drop probability, and partitions can be imposed and healed at
// runtime. All methods are safe for concurrent use.
type MemNetwork struct {
	mu       sync.Mutex
	inboxes  map[types.NodeID]chan<- raft.Message // guarded by mu
	latency  time.Duration                        // guarded by mu
	jitter   time.Duration                        // guarded by mu
	dropRate float64                              // guarded by mu
	blocked  map[[2]types.NodeID]bool             // guarded by mu
	rng      *rand.Rand                           // guarded by mu
	closed   bool                                 // guarded by mu

	// sent and dropped count messages for diagnostics; guarded by mu.
	// Read them through Counters.
	sent    uint64 // guarded by mu
	dropped uint64 // guarded by mu
}

// NewMemNetwork creates an empty network with the given base latency and
// jitter (uniform in [latency, latency+jitter)).
func NewMemNetwork(latency, jitter time.Duration, seed int64) *MemNetwork {
	return &MemNetwork{
		inboxes: make(map[types.NodeID]chan<- raft.Message),
		latency: latency,
		jitter:  jitter,
		blocked: make(map[[2]types.NodeID]bool),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Attach registers a node's inbox and returns the node's transport
// endpoint.
func (n *MemNetwork) Attach(id types.NodeID, inbox chan<- raft.Message) raft.Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inboxes[id] = inbox
	return &memEndpoint{net: n, id: id}
}

// Detach unregisters a node's inbox: subsequent messages to it are dropped
// (the node has crashed). Attach again to restart it.
func (n *MemNetwork) Detach(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.inboxes, id)
}

// SetDropRate sets the probability of dropping each message.
func (n *MemNetwork) SetDropRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate = p
}

// SetLatency adjusts the base latency and jitter.
func (n *MemNetwork) SetLatency(latency, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = latency
	n.jitter = jitter
}

// Partition blocks all traffic between the two groups (in both
// directions). Traffic within a group still flows.
func (n *MemNetwork) Partition(a, b []types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			n.blocked[[2]types.NodeID{x, y}] = true
			n.blocked[[2]types.NodeID{y, x}] = true
		}
	}
}

// BlockOneWay blocks traffic from a to b only (an asymmetric link fault:
// b still reaches a). One-way faults are the election-disruption worst
// case — a node that can hear the cluster but cannot be heard.
func (n *MemNetwork) BlockOneWay(a, b types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.NodeID{a, b}] = true
}

// Isolate cuts a single node off from everyone else.
func (n *MemNetwork) Isolate(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.inboxes {
		if other != id {
			n.blocked[[2]types.NodeID{id, other}] = true
			n.blocked[[2]types.NodeID{other, id}] = true
		}
	}
}

// Heal removes all partitions.
func (n *MemNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]types.NodeID]bool)
}

// Close stops deliveries network-wide.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// Counters returns the number of messages delivered and dropped so far.
func (n *MemNetwork) Counters() (sent, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.dropped
}

// deliver routes one message, applying loss, partitions, and latency.
func (n *MemNetwork) deliver(m raft.Message) {
	n.mu.Lock()
	if n.closed || n.blocked[[2]types.NodeID{m.From, m.To}] {
		n.dropped++
		n.mu.Unlock()
		return
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.dropped++
		n.mu.Unlock()
		return
	}
	inbox, ok := n.inboxes[m.To]
	if !ok {
		n.dropped++
		n.mu.Unlock()
		return
	}
	delay := n.latency
	if n.jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	n.sent++
	n.mu.Unlock()

	if delay <= 0 {
		select {
		case inbox <- m:
		default: // full inbox = congested network; drop
		}
		return
	}
	time.AfterFunc(delay, func() {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case inbox <- m:
		default:
		}
	})
}

// memEndpoint is one node's view of the network.
type memEndpoint struct {
	net *MemNetwork
	id  types.NodeID
}

// Send implements raft.Transport.
func (e *memEndpoint) Send(m raft.Message) {
	m.From = e.id
	e.net.deliver(m)
}

// Close implements raft.Transport (a no-op: the network outlives
// endpoints).
func (e *memEndpoint) Close() error { return nil }
