// Package transport provides message transports for the raft runtime: an
// in-memory network with injectable latency, loss, and partitions (the
// repository's stand-in for the paper's EC2 testbed), and a TCP transport
// over encoding/gob for real deployments.
//
// Both transports are group multiplexers: one link (or socket) per peer
// carries raft.Envelope traffic for every raft group hosted by the process,
// and inbound envelopes are demultiplexed into per-(node, group) inboxes.
// Single-group callers keep the old Attach/NewTCPTransport API, which is
// simply group 0 of the multiplexer.
package transport

import (
	"math/rand"
	"sync"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// epKey addresses one group's inbox on one node.
type epKey struct {
	id    types.NodeID
	group raft.GroupID
}

// MemNetwork is a simulated network connecting in-process raft nodes.
// Messages are delivered asynchronously with configurable latency, jitter,
// and drop probability, and partitions can be imposed and healed at
// runtime. All methods are safe for concurrent use.
//
// The network is a group multiplexer: each (node, group) pair registers its
// own inbox via AttachGroup, while faults (partitions, isolation, loss)
// operate on nodes — a partition severs every group's traffic on the link,
// exactly as cutting one shared socket would.
type MemNetwork struct {
	mu       sync.Mutex
	inboxes  map[epKey]chan<- raft.Message // guarded by mu
	latency  time.Duration                 // guarded by mu
	jitter   time.Duration                 // guarded by mu
	dropRate float64                       // guarded by mu
	blocked  map[[2]types.NodeID]bool      // guarded by mu
	rng      *rand.Rand                    // guarded by mu
	closed   bool                          // guarded by mu

	// sent and dropped count messages for diagnostics, in aggregate and
	// per group. Read them through Counters / GroupCounters.
	sent     uint64                  // guarded by mu
	dropped  uint64                  // guarded by mu
	sentG    map[raft.GroupID]uint64 // guarded by mu
	droppedG map[raft.GroupID]uint64 // guarded by mu
}

// NewMemNetwork creates an empty network with the given base latency and
// jitter (uniform in [latency, latency+jitter)).
func NewMemNetwork(latency, jitter time.Duration, seed int64) *MemNetwork {
	return &MemNetwork{
		inboxes:  make(map[epKey]chan<- raft.Message),
		latency:  latency,
		jitter:   jitter,
		blocked:  make(map[[2]types.NodeID]bool),
		rng:      rand.New(rand.NewSource(seed)),
		sentG:    make(map[raft.GroupID]uint64),
		droppedG: make(map[raft.GroupID]uint64),
	}
}

// Attach registers a node's group-0 inbox and returns the node's transport
// endpoint — the single-group API, unchanged.
func (n *MemNetwork) Attach(id types.NodeID, inbox chan<- raft.Message) raft.Transport {
	return n.AttachGroup(id, 0, inbox)
}

// AttachGroup registers the inbox for one raft group on one node and
// returns that group's transport endpoint. The endpoint stamps From and
// Group on every send; closing it detaches only that group's inbox, never
// the shared network.
func (n *MemNetwork) AttachGroup(id types.NodeID, g raft.GroupID, inbox chan<- raft.Message) raft.Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inboxes[epKey{id, g}] = inbox
	return &memEndpoint{net: n, id: id, group: g}
}

// Detach unregisters every group inbox of a node: subsequent messages to it
// are dropped (the node has crashed — all its groups go down together).
// Attach again to restart it.
func (n *MemNetwork) Detach(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for k := range n.inboxes {
		if k.id == id {
			delete(n.inboxes, k)
		}
	}
}

// SetDropRate sets the probability of dropping each message.
func (n *MemNetwork) SetDropRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropRate = p
}

// SetLatency adjusts the base latency and jitter.
func (n *MemNetwork) SetLatency(latency, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = latency
	n.jitter = jitter
}

// Partition blocks all traffic between the two groups (in both
// directions). Traffic within a group still flows.
func (n *MemNetwork) Partition(a, b []types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			n.blocked[[2]types.NodeID{x, y}] = true
			n.blocked[[2]types.NodeID{y, x}] = true
		}
	}
}

// BlockOneWay blocks traffic from a to b only (an asymmetric link fault:
// b still reaches a). One-way faults are the election-disruption worst
// case — a node that can hear the cluster but cannot be heard.
func (n *MemNetwork) BlockOneWay(a, b types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]types.NodeID{a, b}] = true
}

// Isolate cuts a single node off from everyone else.
func (n *MemNetwork) Isolate(id types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.inboxes {
		if other.id != id {
			n.blocked[[2]types.NodeID{id, other.id}] = true
			n.blocked[[2]types.NodeID{other.id, id}] = true
		}
	}
}

// Heal removes all partitions.
func (n *MemNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[[2]types.NodeID]bool)
}

// Close stops deliveries network-wide.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
}

// Counters returns the number of messages delivered and dropped so far,
// summed over all groups.
func (n *MemNetwork) Counters() (sent, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.dropped
}

// GroupCounters returns the messages delivered and dropped for one group.
func (n *MemNetwork) GroupCounters(g raft.GroupID) (sent, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sentG[g], n.droppedG[g]
}

// deliver routes one envelope, applying loss, partitions, and latency.
func (n *MemNetwork) deliver(env raft.Envelope) {
	m := env.Msg
	n.mu.Lock()
	if n.closed || n.blocked[[2]types.NodeID{m.From, m.To}] {
		n.dropped++
		n.droppedG[env.Group]++
		n.mu.Unlock()
		return
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		n.dropped++
		n.droppedG[env.Group]++
		n.mu.Unlock()
		return
	}
	inbox, ok := n.inboxes[epKey{m.To, env.Group}]
	if !ok {
		n.dropped++
		n.droppedG[env.Group]++
		n.mu.Unlock()
		return
	}
	delay := n.latency
	if n.jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	n.sent++
	n.sentG[env.Group]++
	n.mu.Unlock()

	if delay <= 0 {
		select {
		case inbox <- m:
		default: // full inbox = congested network; drop
		}
		return
	}
	time.AfterFunc(delay, func() {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case inbox <- m:
		default:
		}
	})
}

// memEndpoint is one (node, group)'s view of the network.
type memEndpoint struct {
	net   *MemNetwork
	id    types.NodeID
	group raft.GroupID
}

// Send implements raft.Transport: stamp the sender and the group, then
// route through the shared network.
func (e *memEndpoint) Send(m raft.Message) {
	m.From = e.id
	e.net.deliver(raft.Envelope{Group: e.group, Msg: m})
}

// Close implements raft.Transport (a no-op: the shared network outlives
// per-group endpoints — a node stopping one group must not sever the
// others' traffic).
func (e *memEndpoint) Close() error { return nil }

// HostTransport adapts a MemNetwork to the multiraft host's transport
// contract: Endpoint(g, inbox) attaches one group of a fixed node. It lets
// multiraft.Host run over the in-memory network without the multiraft
// package importing transport (or vice versa) — the interface match is
// structural.
type HostTransport struct {
	Net *MemNetwork
	ID  types.NodeID
}

// Endpoint registers inbox for group g of the fixed node and returns the
// stamping endpoint.
func (h HostTransport) Endpoint(g raft.GroupID, inbox chan<- raft.Message) raft.Transport {
	return h.Net.AttachGroup(h.ID, g, inbox)
}
