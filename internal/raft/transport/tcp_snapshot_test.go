package transport

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// tcpSM is a minimal state machine for the TCP catch-up test: it tracks
// the applied index, serves snapshot images that encode the index they
// were captured at, and records whether it was ever restored from one.
type tcpSM struct {
	mu       sync.Mutex
	applied  int
	restored bool
	imgIndex int // index decoded from the restored image
	restEdge int // index the restore message carried
}

func (s *tcpSM) AppliedIndex() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

func (s *tcpSM) SaveSnapshot() ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return []byte(strconv.Itoa(s.applied)), s.applied, nil
}

func (s *tcpSM) consume(batch []raft.ApplyMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range batch {
		if m.Kind == raft.EntrySnapshot {
			s.restored = true
			s.restEdge = m.Index
			s.imgIndex, _ = strconv.Atoi(string(m.Command))
		}
		s.applied = m.Index
	}
}

func (s *tcpSM) snapshotRestore() (bool, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restored, s.restEdge, s.imgIndex
}

// startTCPNode boots one raft node over a real TCP transport on a
// loopback ephemeral port, pumping the transport inbox and the apply
// stream. Peers are wired up by the caller via SetPeer.
func startTCPNode(t *testing.T, id types.NodeID, members []types.NodeID, sm *tcpSM, storage raft.Storage) (*raft.Node, *TCPTransport) {
	t.Helper()
	inbox := make(chan raft.Message, 1024)
	tr, err := NewTCPTransport(id, "127.0.0.1:0", nil, inbox)
	if err != nil {
		t.Fatalf("S%d: listen: %v", id, err)
	}
	n := raft.StartNode(raft.Options{
		ID:                 id,
		Members:            members,
		Transport:          tr,
		Storage:            storage,
		StateMachine:       sm,
		SnapshotThreshold:  8,
		ElectionTimeoutMin: 50 * time.Millisecond,
	})
	go func() {
		for m := range inbox {
			select {
			case n.Inbox() <- m:
			case <-n.Done():
				return
			}
		}
	}()
	go func() {
		for batch := range n.ApplyCh() {
			sm.consume(batch)
		}
	}()
	return n, tr
}

// TestTCPSnapshotCatchup drives the full snapshot catch-up path over a
// real TCP transport: two nodes commit far past the compaction threshold,
// then a third joins with an empty log — every entry it needs below the
// leader's base is gone, so the leader must stream a chunked
// InstallSnapshot over the wire and the joiner must restore from it and
// converge.
func TestTCPSnapshotCatchup(t *testing.T) {
	members := []types.NodeID{1, 2, 3}
	sm1, sm2, sm3 := &tcpSM{}, &tcpSM{}, &tcpSM{}
	cs1 := &raft.CountingStorage{Inner: raft.NewMemStorage()}
	cs2 := &raft.CountingStorage{Inner: raft.NewMemStorage()}
	n1, t1 := startTCPNode(t, 1, members, sm1, cs1)
	defer n1.Stop()
	n2, t2 := startTCPNode(t, 2, members, sm2, cs2)
	defer n2.Stop()
	t1.SetPeer(2, t2.Addr())
	t2.SetPeer(1, t1.Addr())

	deadline := time.Now().Add(15 * time.Second)
	var leader *raft.Node
	var leaderCS *raft.CountingStorage
	for time.Now().Before(deadline) && leader == nil {
		for i, n := range []*raft.Node{n1, n2} {
			if _, role, _ := n.Status(); role == raft.Leader {
				leader = n
				leaderCS = []*raft.CountingStorage{cs1, cs2}[i]
			}
		}
		time.Sleep(time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader elected over TCP")
	}

	const total = 40 // threshold 8: the leader compacts several times
	for i := 0; i < total; i++ {
		if _, _, err := leader.Propose([]byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	var committed int
	for time.Now().Before(deadline) {
		committed = leader.CommitIndex()
		if committed > total && leaderCS.SnapshotSaves() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if committed <= total {
		t.Fatalf("leader committed only %d of %d proposals", committed, total)
	}
	if leaderCS.SnapshotSaves() == 0 {
		t.Fatal("leader never compacted; the joiner below would catch up through the log")
	}

	// The joiner starts empty: its whole history lives below the leader's
	// base, so catch-up MUST go through InstallSnapshot.
	n3, t3 := startTCPNode(t, 3, members, sm3, raft.NewMemStorage())
	defer n3.Stop()
	t3.SetPeer(1, t1.Addr())
	t3.SetPeer(2, t2.Addr())
	t1.SetPeer(3, t3.Addr())
	t2.SetPeer(3, t3.Addr())

	for time.Now().Before(deadline) {
		if n3.CommitIndex() >= committed && sm3.AppliedIndex() >= committed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := n3.CommitIndex(); got < committed {
		t.Fatalf("joiner commit index %d never reached the leader's %d", got, committed)
	}
	restored, edge, imgIdx := sm3.snapshotRestore()
	if !restored {
		t.Fatal("joiner state machine was never restored from a snapshot")
	}
	if imgIdx != edge {
		t.Fatalf("restored image was captured at index %d but delivered at index %d", imgIdx, edge)
	}
	if sm3.AppliedIndex() < committed {
		t.Fatalf("joiner applied through %d, leader committed %d", sm3.AppliedIndex(), committed)
	}
}
