package transport

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

const (
	// sendQueueSize bounds each peer's outbound queue. When the peer is
	// unreachable the queue fills and further sends are dropped (counted);
	// the protocol's retries make that safe.
	sendQueueSize = 1024
	// dialBackoffMin/Max bound the reconnector's exponential backoff.
	dialBackoffMin = 20 * time.Millisecond
	dialBackoffMax = 2 * time.Second
	// inboxWait is how long an inbound reader waits on a congested inbox
	// before shedding the message. Bounded (not infinite) so one slow node
	// cannot stall a peer's reader goroutine indefinitely; non-zero so a
	// short apply hiccup causes backpressure instead of silent loss.
	inboxWait = 5 * time.Millisecond
)

// TCPTransport carries raft messages over TCP with gob encoding — the
// runtime's real-network deployment path (cmd/raft-kv).
//
// Sends never block on the network: each peer has a background sender
// goroutine that owns the connection, redials with capped exponential
// backoff plus jitter when the peer is down, and drains a bounded queue.
// Send enqueues or — when the queue is full or the peer unknown — drops and
// counts. Inbound messages get a bounded wait on a congested inbox before
// being shed (counted), so transient slowness backpressures the sender
// instead of silently losing traffic, while a wedged node cannot pin the
// reader forever.
type TCPTransport struct {
	id    types.NodeID
	inbox chan<- raft.Message
	ln    net.Listener

	mu      sync.Mutex
	peers   map[types.NodeID]string      // guarded by mu
	senders map[types.NodeID]*peerSender // guarded by mu
	inbound map[net.Conn]struct{}        // guarded by mu
	closed  bool                         // guarded by mu
	wg      sync.WaitGroup

	dropped atomic.Uint64 // outbound: queue full, unknown peer, or write failure
	shed    atomic.Uint64 // inbound: inbox still full after the bounded wait
}

// peerSender owns one peer's connection. All fields are set at construction;
// the loop goroutine is the only user of the connection itself.
type peerSender struct {
	t     *TCPTransport
	addr  string
	queue chan raft.Message
	stop  chan struct{}
	once  sync.Once
}

// NewTCPTransport starts listening on addr and delivers inbound messages to
// inbox. peers maps node IDs to addresses (this node's own entry is
// ignored).
func NewTCPTransport(id types.NodeID, addr string, peers map[types.NodeID]string, inbox chan<- raft.Message) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	peerAddrs := make(map[types.NodeID]string, len(peers))
	for pid, paddr := range peers {
		peerAddrs[pid] = paddr
	}
	t := &TCPTransport{
		id:      id,
		inbox:   inbox,
		ln:      ln,
		peers:   peerAddrs,
		senders: make(map[types.NodeID]*peerSender),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's bound address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Counters returns how many outbound messages were dropped (full queue,
// unknown peer, or write failure) and how many inbound messages were shed
// after the bounded inbox wait.
func (t *TCPTransport) Counters() (dropped, shed uint64) {
	return t.dropped.Load(), t.shed.Load()
}

// SetPeer registers or updates a peer's address (e.g. after AddServer). An
// existing sender for the peer is torn down; the next Send spawns a fresh
// one against the new address.
func (t *TCPTransport) SetPeer(id types.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
	if ps := t.senders[id]; ps != nil {
		ps.shutdown()
		delete(t.senders, id)
	}
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.receive(conn)
	}
}

func (t *TCPTransport) receive(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	timer := time.NewTimer(inboxWait)
	defer timer.Stop()
	for {
		var m raft.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- m:
			continue
		default:
		}
		// Congested inbox: wait a bounded slice — TCP stops reading, the
		// peer backpressures — then shed rather than wedge the reader.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(inboxWait)
		select {
		case t.inbox <- m:
		case <-timer.C:
			t.shed.Add(1)
		}
	}
}

// Send implements raft.Transport: best-effort, never blocking on the
// network. The message is queued to the peer's sender (spawned on first
// use) or dropped with a count if the queue is full.
func (t *TCPTransport) Send(m raft.Message) {
	m.From = t.id
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	ps := t.senders[m.To]
	if ps == nil {
		addr, ok := t.peers[m.To]
		if !ok {
			t.mu.Unlock()
			t.dropped.Add(1)
			return
		}
		ps = &peerSender{
			t:     t,
			addr:  addr,
			queue: make(chan raft.Message, sendQueueSize),
			stop:  make(chan struct{}),
		}
		t.senders[m.To] = ps
		t.wg.Add(1)
		go ps.loop()
	}
	t.mu.Unlock()
	select {
	case ps.queue <- m:
	default:
		t.dropped.Add(1)
	}
}

// shutdown stops the sender's loop (idempotent; safe under t.mu).
func (ps *peerSender) shutdown() {
	ps.once.Do(func() { close(ps.stop) })
}

// loop drains the queue, (re)dialing as needed. Dial failures back off
// exponentially with jitter up to a cap; while disconnected the queue fills
// and Send sheds load at the enqueue side.
func (ps *peerSender) loop() {
	defer ps.t.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := dialBackoffMin
	for {
		select {
		case <-ps.stop:
			return
		case m := <-ps.queue:
			for conn == nil {
				c, err := net.Dial("tcp", ps.addr)
				if err == nil {
					conn, enc = c, gob.NewEncoder(c)
					backoff = dialBackoffMin
					break
				}
				// Full jitter on the current backoff tier: desynchronizes
				// reconnect storms when a node restarts.
				delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
				backoff *= 2
				if backoff > dialBackoffMax {
					backoff = dialBackoffMax
				}
				select {
				case <-ps.stop:
					return
				case <-time.After(delay):
				}
			}
			if err := enc.Encode(m); err != nil {
				conn.Close()
				conn, enc = nil, nil
				ps.t.dropped.Add(1) // this message is lost; the protocol retries
			}
		}
	}
}

// Close implements raft.Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	senders := t.senders
	t.senders = map[types.NodeID]*peerSender{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, ps := range senders {
		ps.shutdown()
	}
	for _, c := range inbound {
		c.Close() // unblocks the receive goroutines' Decode
	}
	t.wg.Wait()
	return err
}
