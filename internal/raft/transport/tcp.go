package transport

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

const (
	// sendQueueSize bounds each peer's outbound queue. When the peer is
	// unreachable the queue fills and further sends are dropped (counted);
	// the protocol's retries make that safe.
	sendQueueSize = 1024
	// dialBackoffMin/Max bound the reconnector's exponential backoff.
	dialBackoffMin = 20 * time.Millisecond
	dialBackoffMax = 2 * time.Second
	// inboxWait is how long an inbound reader waits on a congested inbox
	// before shedding the message. Bounded (not infinite) so one slow node
	// cannot stall a peer's reader goroutine indefinitely; non-zero so a
	// short apply hiccup causes backpressure instead of silent loss.
	inboxWait = 5 * time.Millisecond
)

// TCPTransport carries raft envelopes over TCP with gob encoding — the
// runtime's real-network deployment path (cmd/raft-kv).
//
// The transport is a group multiplexer: one connection and one background
// reconnector per peer carry traffic for every raft group the process
// hosts. Each group registers its inbox via Endpoint(g, inbox); inbound
// envelopes are demultiplexed by their GroupID into that group's inbox.
// The single-inbox NewTCPTransport API registers group 0.
//
// Sends never block on the network: each peer has a background sender
// goroutine that owns the connection, redials with capped exponential
// backoff plus jitter when the peer is down, and drains a bounded queue
// shared by all groups. Send enqueues or — when the queue is full or the
// peer unknown — drops and counts (per group). Inbound messages get a
// bounded wait on a congested inbox before being shed (counted per group),
// so one group's slow consumer backpressures its own sender without
// silently losing the other groups' traffic.
type TCPTransport struct {
	id types.NodeID
	ln net.Listener

	mu      sync.Mutex
	inboxes map[raft.GroupID]chan<- raft.Message // guarded by mu
	peers   map[types.NodeID]string              // guarded by mu
	senders map[types.NodeID]*peerSender         // guarded by mu
	inbound map[net.Conn]struct{}                // guarded by mu
	groups  map[raft.GroupID]*groupCounters      // guarded by mu (counters themselves atomic)
	closed  bool                                 // guarded by mu
	wg      sync.WaitGroup

	dropped    atomic.Uint64 // outbound: queue full, unknown peer, or write failure
	shed       atomic.Uint64 // inbound: inbox still full after the bounded wait
	reconnects atomic.Uint64 // successful re-dials after a connection was lost
}

// groupCounters are the per-group slices of the transport's backpressure
// counters: the reconnector counters split by the group whose traffic they
// charge. A multiplexing bug (one group's congestion or socket loss
// bleeding into another) shows up as the wrong group's counter moving.
type groupCounters struct {
	delivered atomic.Uint64 // inbound envelopes handed to the group's inbox
	dropped   atomic.Uint64 // outbound envelopes dropped for this group
	shed      atomic.Uint64 // inbound envelopes shed after the bounded wait
}

// peerSender owns one peer's connection. All fields are set at construction;
// the loop goroutine is the only user of the connection itself.
type peerSender struct {
	t     *TCPTransport
	addr  string
	queue chan raft.Envelope
	stop  chan struct{}
	once  sync.Once
}

// NewTCPTransport starts listening on addr and delivers inbound group-0
// messages to inbox. peers maps node IDs to addresses (this node's own
// entry is ignored). Additional groups attach via Endpoint.
func NewTCPTransport(id types.NodeID, addr string, peers map[types.NodeID]string, inbox chan<- raft.Message) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	peerAddrs := make(map[types.NodeID]string, len(peers))
	for pid, paddr := range peers {
		peerAddrs[pid] = paddr
	}
	inboxes := make(map[raft.GroupID]chan<- raft.Message)
	if inbox != nil {
		inboxes[0] = inbox
	}
	t := &TCPTransport{
		id:      id,
		ln:      ln,
		inboxes: inboxes,
		peers:   peerAddrs,
		senders: make(map[types.NodeID]*peerSender),
		inbound: make(map[net.Conn]struct{}),
		groups:  make(map[raft.GroupID]*groupCounters),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's bound address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Counters returns how many outbound messages were dropped (full queue,
// unknown peer, or write failure) and how many inbound messages were shed
// after the bounded inbox wait, summed over all groups.
func (t *TCPTransport) Counters() (dropped, shed uint64) {
	return t.dropped.Load(), t.shed.Load()
}

// GroupCounters returns one group's slice of the transport counters:
// inbound envelopes delivered to its inbox, outbound envelopes dropped,
// and inbound envelopes shed on a congested inbox.
func (t *TCPTransport) GroupCounters(g raft.GroupID) (delivered, dropped, shed uint64) {
	gc := t.group(g)
	return gc.delivered.Load(), gc.dropped.Load(), gc.shed.Load()
}

// Reconnects returns how many times a peer sender successfully re-dialed
// after losing an established connection.
func (t *TCPTransport) Reconnects() uint64 { return t.reconnects.Load() }

// group returns g's counter block, creating it on first touch.
func (t *TCPTransport) group(g raft.GroupID) *groupCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	gc := t.groups[g]
	if gc == nil {
		gc = &groupCounters{}
		t.groups[g] = gc
	}
	return gc
}

// Endpoint registers inbox as group g's demux target and returns a
// raft.Transport that stamps g on every send. Closing the endpoint
// unregisters only that group — the shared listener, connections, and the
// other groups' traffic are untouched (a node stopping one group must not
// sever the rest).
func (t *TCPTransport) Endpoint(g raft.GroupID, inbox chan<- raft.Message) raft.Transport {
	t.mu.Lock()
	t.inboxes[g] = inbox
	t.mu.Unlock()
	return &tcpEndpoint{t: t, group: g}
}

// tcpEndpoint is one group's view of the shared transport.
type tcpEndpoint struct {
	t     *TCPTransport
	group raft.GroupID
}

// Send implements raft.Transport.
func (e *tcpEndpoint) Send(m raft.Message) { e.t.send(e.group, m) }

// Close implements raft.Transport: detach this group's inbox only.
func (e *tcpEndpoint) Close() error {
	e.t.mu.Lock()
	delete(e.t.inboxes, e.group)
	e.t.mu.Unlock()
	return nil
}

// SetPeer registers or updates a peer's address (e.g. after AddServer). An
// existing sender for the peer is torn down; the next Send spawns a fresh
// one against the new address.
func (t *TCPTransport) SetPeer(id types.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
	if ps := t.senders[id]; ps != nil {
		ps.shutdown()
		delete(t.senders, id)
	}
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.receive(conn)
	}
}

func (t *TCPTransport) receive(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	timer := time.NewTimer(inboxWait)
	defer timer.Stop()
	for {
		var env raft.Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		inbox, ok := t.inboxes[env.Group]
		t.mu.Unlock()
		if closed {
			return
		}
		gc := t.group(env.Group)
		if !ok {
			// No inbox registered for this group (not hosted here, or its
			// node already stopped): shed, charged to the envelope's group.
			t.shed.Add(1)
			gc.shed.Add(1)
			continue
		}
		select {
		case inbox <- env.Msg:
			gc.delivered.Add(1)
			continue
		default:
		}
		// Congested inbox: wait a bounded slice — TCP stops reading, the
		// peer backpressures — then shed rather than wedge the reader. The
		// wait stalls this connection only; other peers' connections (and
		// so other nodes' traffic) keep flowing.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(inboxWait)
		select {
		case inbox <- env.Msg:
			gc.delivered.Add(1)
		case <-timer.C:
			t.shed.Add(1)
			gc.shed.Add(1)
		}
	}
}

// Send implements raft.Transport for the transport itself: group 0, the
// single-group compatibility path.
func (t *TCPTransport) Send(m raft.Message) { t.send(0, m) }

// send queues one envelope toward m.To: best-effort, never blocking on the
// network. The message is queued to the peer's sender (spawned on first
// use) or dropped with a count if the queue is full.
func (t *TCPTransport) send(g raft.GroupID, m raft.Message) {
	m.From = t.id
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	ps := t.senders[m.To]
	if ps == nil {
		addr, ok := t.peers[m.To]
		if !ok {
			t.mu.Unlock()
			t.dropped.Add(1)
			t.group(g).dropped.Add(1)
			return
		}
		ps = &peerSender{
			t:     t,
			addr:  addr,
			queue: make(chan raft.Envelope, sendQueueSize),
			stop:  make(chan struct{}),
		}
		t.senders[m.To] = ps
		t.wg.Add(1)
		go ps.loop()
	}
	t.mu.Unlock()
	select {
	case ps.queue <- raft.Envelope{Group: g, Msg: m}:
	default:
		t.dropped.Add(1)
		t.group(g).dropped.Add(1)
	}
}

// shutdown stops the sender's loop (idempotent; safe under t.mu).
func (ps *peerSender) shutdown() {
	ps.once.Do(func() { close(ps.stop) })
}

// loop drains the queue, (re)dialing as needed. Dial failures back off
// exponentially with jitter up to a cap; while disconnected the queue fills
// and Send sheds load at the enqueue side.
func (ps *peerSender) loop() {
	defer ps.t.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	everConnected := false
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := dialBackoffMin
	for {
		select {
		case <-ps.stop:
			return
		case env := <-ps.queue:
			for conn == nil {
				c, err := net.Dial("tcp", ps.addr)
				if err == nil {
					conn, enc = c, gob.NewEncoder(c)
					backoff = dialBackoffMin
					if everConnected {
						ps.t.reconnects.Add(1)
					}
					everConnected = true
					break
				}
				// Full jitter on the current backoff tier: desynchronizes
				// reconnect storms when a node restarts.
				delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
				backoff *= 2
				if backoff > dialBackoffMax {
					backoff = dialBackoffMax
				}
				select {
				case <-ps.stop:
					return
				case <-time.After(delay):
				}
			}
			if err := enc.Encode(env); err != nil {
				conn.Close()
				conn, enc = nil, nil
				// This envelope is lost; the protocol retries.
				ps.t.dropped.Add(1)
				ps.t.group(env.Group).dropped.Add(1)
			}
		}
	}
}

// Close shuts the whole multiplexer down: listener, every peer sender, and
// every inbound connection. Per-group endpoints do NOT call this — their
// Close only detaches the group — so it runs once, from whoever owns the
// transport (the host or the serving binary).
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	senders := t.senders
	t.senders = map[types.NodeID]*peerSender{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, ps := range senders {
		ps.shutdown()
	}
	for _, c := range inbound {
		c.Close() // unblocks the receive goroutines' Decode
	}
	t.wg.Wait()
	return err
}
