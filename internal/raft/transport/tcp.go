package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"adore/internal/raft"
	"adore/internal/types"
)

// TCPTransport carries raft messages over TCP with gob encoding — the
// runtime's real-network deployment path (cmd/raft-kv). Each endpoint
// listens on its own address and lazily dials peers, caching connections.
type TCPTransport struct {
	id      types.NodeID
	inbox   chan<- raft.Message
	ln      net.Listener
	mu      sync.Mutex
	peers   map[types.NodeID]string    // guarded by mu
	conns   map[types.NodeID]*peerConn // guarded by mu
	inbound map[net.Conn]struct{}      // guarded by mu
	closed  bool                       // guarded by mu
	wg      sync.WaitGroup
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn     // set at construction; Close is safe concurrently
	enc  *gob.Encoder // guarded by mu
}

// NewTCPTransport starts listening on addr and delivers inbound messages to
// inbox. peers maps node IDs to addresses (this node's own entry is
// ignored).
func NewTCPTransport(id types.NodeID, addr string, peers map[types.NodeID]string, inbox chan<- raft.Message) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	peerAddrs := make(map[types.NodeID]string, len(peers))
	for pid, paddr := range peers {
		peerAddrs[pid] = paddr
	}
	t := &TCPTransport{
		id:      id,
		inbox:   inbox,
		ln:      ln,
		peers:   peerAddrs,
		conns:   make(map[types.NodeID]*peerConn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's bound address (useful with ":0").
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// SetPeer registers or updates a peer's address (e.g. after AddServer).
func (t *TCPTransport) SetPeer(id types.NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
	delete(t.conns, id)
}

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.receive(conn)
	}
}

func (t *TCPTransport) receive(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.inbound[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var m raft.Message
		if err := dec.Decode(&m); err != nil {
			return
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- m:
		default: // congested; drop (the protocol retries)
		}
	}
}

// Send implements raft.Transport: best-effort asynchronous delivery.
func (t *TCPTransport) Send(m raft.Message) {
	m.From = t.id
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	addr, ok := t.peers[m.To]
	pc := t.conns[m.To]
	t.mu.Unlock()
	if !ok {
		return
	}
	if pc == nil {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return // peer down; protocol retries
		}
		pc = &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
		t.mu.Lock()
		if existing := t.conns[m.To]; existing != nil {
			conn.Close()
			pc = existing
		} else {
			t.conns[m.To] = pc
		}
		t.mu.Unlock()
	}
	pc.mu.Lock()
	err := pc.enc.Encode(m)
	pc.mu.Unlock()
	if err != nil {
		t.mu.Lock()
		if t.conns[m.To] == pc {
			delete(t.conns, m.To)
		}
		t.mu.Unlock()
		pc.conn.Close()
	}
}

// Close implements raft.Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[types.NodeID]*peerConn{}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, c := range inbound {
		c.Close() // unblocks the receive goroutines' Decode
	}
	t.wg.Wait()
	return err
}
