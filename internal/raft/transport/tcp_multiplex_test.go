package transport

import (
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// Tag ranges let the test detect misrouting: every message carries its
// group's range in Term, so a group-0 message surfacing in a group-1 inbox
// (or vice versa) is immediately visible no matter which connection,
// reconnect, or demux path it took.
const (
	g0Base = types.Time(10000)
	g1Base = types.Time(20000)
)

func drainTags(ch chan raft.Message) []types.Time {
	var out []types.Time
	for {
		select {
		case m := <-ch:
			out = append(out, m.Term)
		default:
			return out
		}
	}
}

func assertInRange(t *testing.T, tags []types.Time, base types.Time, what string) {
	t.Helper()
	for _, tag := range tags {
		if tag < base || tag >= base+10000 {
			t.Fatalf("%s: message tagged %d misrouted into the %d-range inbox", what, tag, base)
		}
	}
}

// TestTCPMultiplexedReconnect is the satellite-3 pin: one sender
// multiplexes two raft groups over shared per-peer connections to two
// receivers; one receiver's socket is killed mid-burst and restarted on the
// same address. The surviving receiver's traffic — both groups — must
// arrive complete, in order, and never misrouted across groups; the killed
// receiver must come back via the background reconnector (reconnects
// counter advances) with both groups flowing again, and every inbound
// envelope must land in its own group's inbox on every connection
// generation.
func TestTCPMultiplexedReconnect(t *testing.T) {
	const half = 200 // messages per group before the kill, and again after

	// Sender: node 1 hosts groups 0 and 1 over one TCPTransport.
	in1 := make(chan raft.Message, 16)
	t1, err := NewTCPTransport(1, "127.0.0.1:0", nil, in1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	ep0 := t1.Endpoint(0, in1)
	ep1 := t1.Endpoint(1, make(chan raft.Message, 16))

	// Receiver 2: the victim. Groups 0 and 1 registered.
	in2g0 := make(chan raft.Message, 4096)
	in2g1 := make(chan raft.Message, 4096)
	t2, err := NewTCPTransport(2, "127.0.0.1:0", nil, in2g0)
	if err != nil {
		t.Fatal(err)
	}
	t2.Endpoint(1, in2g1)
	victimAddr := t2.Addr()

	// Receiver 3: the survivor. Groups 0 and 1 registered.
	in3g0 := make(chan raft.Message, 4096)
	in3g1 := make(chan raft.Message, 4096)
	t3, err := NewTCPTransport(3, "127.0.0.1:0", nil, in3g0)
	if err != nil {
		t.Fatal(err)
	}
	defer t3.Close()
	t3.Endpoint(1, in3g1)

	t1.SetPeer(2, victimAddr)
	t1.SetPeer(3, t3.Addr())

	sendBoth := func(i int) {
		ep0.Send(raft.Message{Type: raft.MsgAppendEntries, To: 2, Term: g0Base + types.Time(i)})
		ep1.Send(raft.Message{Type: raft.MsgAppendEntries, To: 2, Term: g1Base + types.Time(i)})
		ep0.Send(raft.Message{Type: raft.MsgAppendEntries, To: 3, Term: g0Base + types.Time(i)})
		ep1.Send(raft.Message{Type: raft.MsgAppendEntries, To: 3, Term: g1Base + types.Time(i)})
	}

	for i := 0; i < half; i++ {
		sendBoth(i)
	}
	// Let the first half land so the kill severs an ESTABLISHED connection
	// (exercising the reconnect path, not just first-dial).
	waitCond(t, func() bool {
		d, _, _ := t2.GroupCounters(1)
		return d >= half
	}, "victim's first-half group-1 traffic")

	// Kill the victim's socket mid-burst and restart on the same address.
	if err := t2.Close(); err != nil {
		t.Fatal(err)
	}
	in2bg0 := make(chan raft.Message, 4096)
	in2bg1 := make(chan raft.Message, 4096)
	t2b, err := NewTCPTransport(2, victimAddr, nil, in2bg0)
	if err != nil {
		t.Fatal(err)
	}
	defer t2b.Close()
	t2b.Endpoint(1, in2bg1)

	for i := half; i < 2*half; i++ {
		sendBoth(i)
	}

	// The reconnector must re-establish the victim's connection and deliver
	// post-restart traffic for BOTH groups (keep nudging: envelopes written
	// into the dying socket are legitimately lost, so the second half alone
	// may need a retry to arrive).
	nudge := 2 * half
	waitCond(t, func() bool {
		d0, _, _ := t2b.GroupCounters(0)
		d1, _, _ := t2b.GroupCounters(1)
		if d0 > 0 && d1 > 0 {
			return true
		}
		sendBoth(nudge)
		nudge++
		return false
	}, "post-restart delivery on both groups")
	if t1.Reconnects() == 0 {
		t.Fatal("sender re-established the victim's connection without counting a reconnect")
	}

	// Survivor: every message of both halves arrived, in order, in the
	// right group's inbox — the kill of peer 2's socket must not have
	// dropped or misrouted peer 3's traffic.
	waitCond(t, func() bool {
		d0, _, _ := t3.GroupCounters(0)
		d1, _, _ := t3.GroupCounters(1)
		return d0 >= 2*half && d1 >= 2*half
	}, "survivor's full burst")
	for g, ch := range map[string]chan raft.Message{"g0": in3g0, "g1": in3g1} {
		base := g0Base
		if g == "g1" {
			base = g1Base
		}
		tags := drainTags(ch)
		assertInRange(t, tags, base, "survivor "+g)
		if len(tags) < 2*half {
			t.Fatalf("survivor %s: got %d messages, want %d — traffic dropped on the surviving peer", g, len(tags), 2*half)
		}
		for i, tag := range tags[:2*half] {
			if tag != base+types.Time(i) {
				t.Fatalf("survivor %s: position %d holds tag %d, want %d (reordered)", g, i, tag, base+types.Time(i))
			}
		}
	}
	if _, _, shed := t3.GroupCounters(0); shed != 0 {
		t.Fatalf("survivor shed %d group-0 messages with an uncongested inbox", shed)
	}

	// Victim, both generations: whatever arrived was never misrouted.
	assertInRange(t, drainTags(in2g0), g0Base, "victim gen1 g0")
	assertInRange(t, drainTags(in2g1), g1Base, "victim gen1 g1")
	assertInRange(t, drainTags(in2bg0), g0Base, "victim gen2 g0")
	assertInRange(t, drainTags(in2bg1), g1Base, "victim gen2 g1")
}

// TestTCPEndpointCloseDetachesOneGroup: closing one group's endpoint (what
// Node.run does on stop) sheds only that group's inbound traffic; the other
// group keeps flowing on the shared connection, and sheds are charged to
// the detached group.
func TestTCPEndpointCloseDetachesOneGroup(t *testing.T) {
	in1 := make(chan raft.Message, 16)
	t1, err := NewTCPTransport(1, "127.0.0.1:0", nil, in1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	ep0 := t1.Endpoint(0, in1)
	ep1 := t1.Endpoint(1, make(chan raft.Message, 16))

	in2g0 := make(chan raft.Message, 4096)
	in2g1 := make(chan raft.Message, 4096)
	t2, err := NewTCPTransport(2, "127.0.0.1:0", nil, in2g0)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	rep1 := t2.Endpoint(1, in2g1)
	t1.SetPeer(2, t2.Addr())

	const n = 50
	for i := 0; i < n; i++ {
		ep0.Send(raft.Message{To: 2, Term: g0Base + types.Time(i)})
		ep1.Send(raft.Message{To: 2, Term: g1Base + types.Time(i)})
	}
	waitCond(t, func() bool {
		d0, _, _ := t2.GroupCounters(0)
		d1, _, _ := t2.GroupCounters(1)
		return d0 >= n && d1 >= n
	}, "both groups delivered before the detach")

	// Group 1's node stops: its endpoint closes, group 0 lives on.
	if err := rep1.Close(); err != nil {
		t.Fatal(err)
	}
	for i := n; i < 2*n; i++ {
		ep0.Send(raft.Message{To: 2, Term: g0Base + types.Time(i)})
		ep1.Send(raft.Message{To: 2, Term: g1Base + types.Time(i)})
	}
	waitCond(t, func() bool {
		d0, _, _ := t2.GroupCounters(0)
		return d0 >= 2*n
	}, "group 0 delivery after group 1 detached")
	waitCond(t, func() bool {
		_, _, shed := t2.GroupCounters(1)
		return shed >= n
	}, "group 1 inbound shed after detach")
	if _, _, shed := t2.GroupCounters(0); shed != 0 {
		t.Fatalf("group 1's detach shed %d of group 0's messages", shed)
	}
	tags := drainTags(in2g0)
	assertInRange(t, tags, g0Base, "g0 after detach")
	if len(tags) != 2*n {
		t.Fatalf("group 0 delivered %d messages, want %d", len(tags), 2*n)
	}
}

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
