package transport

import (
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

func TestMemNetworkDelivers(t *testing.T) {
	net := NewMemNetwork(0, 0, 1)
	inbox := make(chan raft.Message, 8)
	net.Attach(2, inbox)
	ep := net.Attach(1, make(chan raft.Message, 8))
	ep.Send(raft.Message{Type: raft.MsgVoteRequest, To: 2, Term: 1})
	select {
	case m := <-inbox:
		if m.From != 1 || m.To != 2 || m.Term != 1 {
			t.Errorf("delivered %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestMemNetworkLatency(t *testing.T) {
	net := NewMemNetwork(20*time.Millisecond, 0, 1)
	inbox := make(chan raft.Message, 8)
	net.Attach(2, inbox)
	ep := net.Attach(1, make(chan raft.Message, 8))
	start := time.Now()
	ep.Send(raft.Message{To: 2})
	select {
	case <-inbox:
		if d := time.Since(start); d < 15*time.Millisecond {
			t.Errorf("delivered after %v, want ≥ ~20ms", d)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestMemNetworkDrop(t *testing.T) {
	net := NewMemNetwork(0, 0, 1)
	net.SetDropRate(1.0)
	inbox := make(chan raft.Message, 8)
	net.Attach(2, inbox)
	ep := net.Attach(1, make(chan raft.Message, 8))
	ep.Send(raft.Message{To: 2})
	select {
	case <-inbox:
		t.Fatal("message delivered despite 100% drop rate")
	case <-time.After(50 * time.Millisecond):
	}
	if _, dropped := net.Counters(); dropped == 0 {
		t.Error("drop not counted")
	}
}

func TestMemNetworkPartitionAndHeal(t *testing.T) {
	net := NewMemNetwork(0, 0, 1)
	inbox := make(chan raft.Message, 8)
	net.Attach(2, inbox)
	ep := net.Attach(1, make(chan raft.Message, 8))
	net.Partition([]types.NodeID{1}, []types.NodeID{2})
	ep.Send(raft.Message{To: 2})
	select {
	case <-inbox:
		t.Fatal("message crossed a partition")
	case <-time.After(30 * time.Millisecond):
	}
	net.Heal()
	ep.Send(raft.Message{To: 2})
	select {
	case <-inbox:
	case <-time.After(time.Second):
		t.Fatal("message not delivered after heal")
	}
}

func TestMemNetworkIsolate(t *testing.T) {
	net := NewMemNetwork(0, 0, 1)
	in2 := make(chan raft.Message, 8)
	in3 := make(chan raft.Message, 8)
	net.Attach(2, in2)
	net.Attach(3, in3)
	ep := net.Attach(1, make(chan raft.Message, 8))
	net.Isolate(1)
	ep.Send(raft.Message{To: 2})
	ep.Send(raft.Message{To: 3})
	time.Sleep(30 * time.Millisecond)
	if len(in2)+len(in3) != 0 {
		t.Fatal("isolated node reached peers")
	}
	// Traffic between the others still flows.
	ep2 := net.Attach(2, in2)
	ep2.Send(raft.Message{To: 3})
	select {
	case <-in3:
	case <-time.After(time.Second):
		t.Fatal("unrelated traffic blocked by Isolate")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	in1 := make(chan raft.Message, 8)
	in2 := make(chan raft.Message, 8)
	t1, err := NewTCPTransport(1, "127.0.0.1:0", nil, in1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := NewTCPTransport(2, "127.0.0.1:0", nil, in2)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	t1.SetPeer(2, t2.Addr())
	t2.SetPeer(1, t1.Addr())

	t1.Send(raft.Message{Type: raft.MsgAppendEntries, To: 2, Term: 3,
		Entries: []raft.LogEntry{{Term: 3, Kind: raft.EntryCommand, Command: []byte("hello")}}})
	select {
	case m := <-in2:
		if m.From != 1 || m.Term != 3 || len(m.Entries) != 1 || string(m.Entries[0].Command) != "hello" {
			t.Errorf("received %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP message not delivered")
	}
	// And the reverse direction.
	t2.Send(raft.Message{Type: raft.MsgAppendResponse, To: 1, Term: 3, Success: true, MatchIndex: 1})
	select {
	case m := <-in1:
		if !m.Success || m.MatchIndex != 1 {
			t.Errorf("received %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TCP response not delivered")
	}
}

func TestTCPTransportUnknownPeerDropsSilently(t *testing.T) {
	in := make(chan raft.Message, 8)
	tr, err := NewTCPTransport(1, "127.0.0.1:0", nil, in)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Send(raft.Message{To: 99}) // no peer registered: must not panic
}

// TestTCPSendNeverBlocks sends a burst at a peer that is not listening:
// Send must return immediately every time (the dial happens on the
// background reconnector, not the caller), and once the per-peer queue
// fills the overflow must be counted, not silently lost and not blocked on.
func TestTCPSendNeverBlocks(t *testing.T) {
	in := make(chan raft.Message, 8)
	tr, err := NewTCPTransport(1, "127.0.0.1:0", nil, in)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Reserve an address with nobody behind it.
	dead, err := NewTCPTransport(9, "127.0.0.1:0", nil, make(chan raft.Message, 1))
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr()
	dead.Close()
	tr.SetPeer(2, addr)

	const burst = 3 * sendQueueSize
	start := time.Now()
	for i := 0; i < burst; i++ {
		tr.Send(raft.Message{To: 2, Term: types.Time(i)})
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("burst of %d sends to a down peer took %v — Send is blocking on the network", burst, d)
	}
	if dropped, _ := tr.Counters(); dropped == 0 {
		t.Fatal("queue overflow to a down peer was not counted")
	}
}

// TestTCPReconnectsAfterPeerRestart kills a peer and brings it back on the
// same address: the background reconnector's backoff loop must pick the
// connection back up without any SetPeer call.
func TestTCPReconnectsAfterPeerRestart(t *testing.T) {
	in1 := make(chan raft.Message, 8)
	t1, err := NewTCPTransport(1, "127.0.0.1:0", nil, in1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	in2 := make(chan raft.Message, 8)
	t2, err := NewTCPTransport(2, "127.0.0.1:0", nil, in2)
	if err != nil {
		t.Fatal(err)
	}
	addr := t2.Addr()
	t1.SetPeer(2, addr)

	t1.Send(raft.Message{To: 2, Term: 1})
	select {
	case <-in2:
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before the restart")
	}

	// Peer goes down; sends queue or drop but never block.
	t2.Close()
	for i := 0; i < 10; i++ {
		t1.Send(raft.Message{To: 2, Term: 2})
		time.Sleep(10 * time.Millisecond)
	}

	// Peer comes back on the same address.
	in2b := make(chan raft.Message, 64)
	t2b, err := NewTCPTransport(2, addr, nil, in2b)
	if err != nil {
		t.Fatal(err)
	}
	defer t2b.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		t1.Send(raft.Message{To: 2, Term: 3})
		select {
		case <-in2b:
			return // reconnected
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("sender never reconnected to the restarted peer")
}

// TestTCPInboxBackpressureShedsAfterBoundedWait wedges the receiving node (a
// full inbox nobody drains): the reader must wait its bounded slice and then
// shed with a count — not block forever, not drop instantly without trace.
func TestTCPInboxBackpressureShedsAfterBoundedWait(t *testing.T) {
	in2 := make(chan raft.Message, 1) // tiny inbox, never drained
	t2, err := NewTCPTransport(2, "127.0.0.1:0", nil, in2)
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	in1 := make(chan raft.Message, 1)
	t1, err := NewTCPTransport(1, "127.0.0.1:0", nil, in1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t1.SetPeer(2, t2.Addr())

	for i := 0; i < 64; i++ {
		t1.Send(raft.Message{To: 2, Term: types.Time(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, shed := t2.Counters(); shed > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, shed := t2.Counters()
	t.Fatalf("wedged inbox: shed = %d, want > 0", shed)
}

// TestTCPCluster runs a real 3-node raft cluster over TCP loopback: the
// executable-protocol deployment path of §7.
func TestTCPCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster test in -short mode")
	}
	ids := []types.NodeID{1, 2, 3}
	inboxes := map[types.NodeID]chan raft.Message{}
	trs := map[types.NodeID]*TCPTransport{}
	for _, id := range ids {
		inboxes[id] = make(chan raft.Message, 1024)
		tr, err := NewTCPTransport(id, "127.0.0.1:0", nil, inboxes[id])
		if err != nil {
			t.Fatal(err)
		}
		trs[id] = tr
	}
	for _, a := range ids {
		for _, b := range ids {
			if a != b {
				trs[a].SetPeer(b, trs[b].Addr())
			}
		}
	}
	nodes := map[types.NodeID]*raft.Node{}
	for _, id := range ids {
		n := raft.StartNode(raft.Options{ID: id, Members: ids, Transport: trs[id], Seed: int64(id)})
		nodes[id] = n
		go func(id types.NodeID, n *raft.Node) {
			for m := range inboxes[id] {
				select {
				case n.Inbox() <- m:
				default:
				}
			}
		}(id, n)
		go func(n *raft.Node) {
			for range n.ApplyCh() {
			}
		}(n)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	var leader *raft.Node
	deadline := time.Now().Add(10 * time.Second)
	for leader == nil && time.Now().Before(deadline) {
		for _, n := range nodes {
			if _, role, _ := n.Status(); role == raft.Leader {
				leader = n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader over TCP")
	}
	var idx int
	for i := 0; i < 10; i++ {
		var err error
		idx, _, err = leader.Propose([]byte(fmt.Sprintf("tcp-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, n := range nodes {
			if n.CommitIndex() < idx {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("commands did not commit on all nodes over TCP")
}
