// Package raftcore is the sans-IO core of the executable raft runtime: a
// pure state machine that the paper's refinement story can reach. Core
// consumes protocol inputs — messages via Step, logical clock ticks via
// Tick, client commands via Propose — mutates only in-memory state, and
// emits its intended effects (durable writes, outbound messages, committed
// entries, read confirmations) as a Ready batch that the caller executes.
//
// The package deliberately contains no goroutines, channels, locks,
// clocks, randomness, or storage calls (adore-lint's pure-core pass
// enforces this): time is a count of abstract ticks supplied by the
// caller, and election-timeout jitter comes in through Config.Jitter.
// That purity is what makes the core deterministically steppable — the
// runtime driver (package raft) replays it against real WALs, transports,
// and wall clocks, while the simulation driver (package raft/sim) replays
// the very same code single-threaded from a seed and checks it against
// the ADORE model's cache tree.
package raftcore

import (
	"fmt"

	"adore/internal/types"
)

// Role is a node's protocol role.
type Role uint8

const (
	// Follower, Candidate, Leader are the standard Raft roles.
	Follower Role = iota
	Candidate
	Leader
	// PreCandidate runs the term-neutral pre-election: it canvasses the
	// cluster with MsgPreVoteRequest at term+1 without touching its own
	// term or vote, and only becomes a real Candidate after a majority
	// says it could win. Flapping links and rejoining nodes therefore
	// stop inflating terms (and deposing healthy leaders).
	PreCandidate
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	case PreCandidate:
		return "pre-candidate"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// EntryKind distinguishes runtime log entries.
type EntryKind uint8

const (
	// EntryCommand carries an opaque state-machine command.
	EntryCommand EntryKind = iota
	// EntryNoOp is the leader's term-opening barrier entry.
	EntryNoOp
	// EntryConfig carries a new member list (hot reconfiguration).
	EntryConfig
	// EntrySnapshot never appears in the log: it is an apply-stream-only
	// kind. An ApplyMsg with this kind tells the state machine to discard
	// its state and restore from the snapshot image in Command, which
	// summarizes every entry up to and including Index.
	EntrySnapshot
)

// String implements fmt.Stringer.
func (k EntryKind) String() string {
	switch k {
	case EntryCommand:
		return "cmd"
	case EntryNoOp:
		return "noop"
	case EntryConfig:
		return "config"
	case EntrySnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// LogEntry is one slot of the replicated log. Index 0 is unused (logs are
// 1-indexed, as in the Raft paper).
type LogEntry struct {
	Term    types.Time
	Kind    EntryKind
	Command []byte
	Members []types.NodeID // EntryConfig only
}

// MessageType enumerates the runtime's RPCs, modeled as asynchronous
// messages.
type MessageType uint8

const (
	// MsgVoteRequest / MsgVoteResponse implement leader election.
	MsgVoteRequest MessageType = iota
	MsgVoteResponse
	// MsgAppendEntries / MsgAppendResponse implement replication and
	// heartbeats.
	MsgAppendEntries
	MsgAppendResponse
	// MsgInstallSnapshot streams the leader's snapshot (in chunks) to a
	// follower whose nextIndex fell behind the leader's compaction point.
	// The follower acknowledges a completed install with an ordinary
	// MsgAppendResponse whose MatchIndex is the snapshot index.
	MsgInstallSnapshot
	// MsgPreVoteRequest / MsgPreVoteResponse implement the Pre-Vote phase:
	// the request proposes Term = candidate's term + 1 but neither side
	// adopts it — the exchange is term-neutral, so a doomed canvass
	// cannot disrupt a stable leader. A granted response echoes the
	// proposed term; a rejection carries the voter's own (possibly
	// higher) term.
	MsgPreVoteRequest
	MsgPreVoteResponse
	// MsgTimeoutNow is the leadership-transfer handoff: the old leader
	// tells a fully caught-up target to campaign immediately, bypassing
	// Pre-Vote; the resulting vote requests carry Transfer so sticky
	// followers accept the deliberate change.
	MsgTimeoutNow
	// MsgReadIndexRequest / MsgReadIndexResponse implement follower-served
	// reads: a follower forwards a linearizable-read barrier to the leader
	// (ReadCtx identifies the waiting local read), and the leader answers
	// with the confirmed read index — from its lease when valid, otherwise
	// after a quorum round. A Success=false response tells the follower to
	// retry against a fresher leader.
	MsgReadIndexRequest
	MsgReadIndexResponse
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case MsgVoteRequest:
		return "VoteRequest"
	case MsgVoteResponse:
		return "VoteResponse"
	case MsgAppendEntries:
		return "AppendEntries"
	case MsgAppendResponse:
		return "AppendResponse"
	case MsgInstallSnapshot:
		return "InstallSnapshot"
	case MsgPreVoteRequest:
		return "PreVoteRequest"
	case MsgPreVoteResponse:
		return "PreVoteResponse"
	case MsgTimeoutNow:
		return "TimeoutNow"
	case MsgReadIndexRequest:
		return "ReadIndexRequest"
	case MsgReadIndexResponse:
		return "ReadIndexResponse"
	default:
		return fmt.Sprintf("MessageType(%d)", uint8(t))
	}
}

// Message is the single wire format for all four RPCs (gob-encodable).
type Message struct {
	Type MessageType
	From types.NodeID
	To   types.NodeID
	Term types.Time

	// Vote requests.
	LastLogIndex int
	LastLogTerm  types.Time
	// Transfer marks a vote request from a campaign the old leader opened
	// deliberately (MsgTimeoutNow): sticky followers that would ignore a
	// disruptive higher-term campaign accept this one.
	Transfer bool

	// Append requests.
	PrevLogIndex int
	PrevLogTerm  types.Time
	Entries      []LogEntry
	LeaderCommit int
	// Seq is a per-leader monotone counter stamped on every AppendEntries
	// and echoed in the response. ReadIndex barriers use it to reject acks
	// generated before the barrier's confirmation round (an in-flight
	// response from an older heartbeat must not confirm a fresh barrier).
	Seq uint64

	// Responses.
	Granted    bool // vote granted
	Success    bool // append accepted (or forwarded read served)
	MatchIndex int  // highest replicated index on success; the confirmed read index on MsgReadIndexResponse
	HintIndex  int  // on append rejection: where the follower's log ends

	// ReadCtx identifies a forwarded read barrier (MsgReadIndexRequest /
	// MsgReadIndexResponse): the follower's local request id, echoed by
	// the leader so the response resolves the right waiter.
	ReadCtx uint64

	// Snapshot transfer (MsgInstallSnapshot). A transfer is a burst of
	// chunks sharing (SnapIndex, SnapTerm, SnapTotal); SnapOffset is the
	// byte offset of this chunk's SnapData within the full image and the
	// follower reassembles strictly in order, restarting on offset 0.
	SnapIndex   int
	SnapTerm    types.Time
	SnapMembers []types.NodeID // effective membership at SnapIndex
	SnapOffset  int
	SnapTotal   int // total image size in bytes
	SnapData    []byte
}

// ApplyMsg is delivered for every committed entry, in log order.
type ApplyMsg struct {
	Index   int
	Term    types.Time
	Kind    EntryKind
	Command []byte
	Members []types.NodeID // EntryConfig
}

// HardState is the durable per-node protocol state that Raft requires to
// survive crashes: the current term and the vote cast in it. (The log is
// persisted separately, entry by entry.)
type HardState struct {
	Term     types.Time
	VotedFor types.NodeID
}

// Snapshot is a durable summary of the committed log prefix [1, Index]:
// an opaque state-machine image plus the metadata needed to splice it
// under the retained log suffix. A zero Index means "no snapshot" (the
// log is complete from index 1).
type Snapshot struct {
	// Index and Term identify the last entry the image covers.
	Index int
	Term  types.Time
	// Members is the effective membership at Index (nil = the initial
	// configuration); recovery needs it because the config entries that
	// established it may be compacted away.
	Members []types.NodeID
	// Data is the opaque state-machine image.
	Data []byte
}

// SnapshotRequest is the core's TakeSnapshot effect: the compaction policy
// asks the application to capture a state-machine image at (or after)
// Index. The driver serializes its state machine once it has applied
// through Index and hands the image back via Core.Compact.
type SnapshotRequest struct {
	// Index is the core's lastApplied when the policy fired.
	Index int
}

// ReadState resolves one ReadIndex barrier. Index is the commit index the
// barrier captured, confirmed by a quorum; a negative Index reports that
// leadership was lost before confirmation and the read must be retried.
type ReadState struct {
	// ReqID echoes the identifier the caller passed to Core.ReadIndex.
	ReqID uint64
	// Index is the confirmed read index, or -1 if the barrier aborted.
	Index int
}

// Ready is one batch of effects the core wants performed. The caller MUST
// externalize in this order: persist HardState, Snapshot, and Entries
// first (in that order), then send Messages, resolve ReadStates, and
// deliver Committed. Nothing in a Ready may reach another node or a client
// before the persistence step succeeds — that ordering is what carries the
// acked⇒durable invariant (a vote or append ack never precedes the durable
// write that backs it), its compaction extension (the snapshot is durable
// before the log prefix it replaces is dropped or its install is acked)
// and the fail-stop discipline (a failed persist means the whole batch,
// messages included, is discarded and the node halts).
type Ready struct {
	// HardState, when non-nil, must be made durable before anything below
	// is externalized.
	HardState *HardState

	// Snapshot, when non-nil, must be made durable before anything below
	// is externalized: persisting it atomically replaces the stored log
	// prefix [1, Snapshot.Index]. RestoreSnapshot marks a leader-installed
	// image (vs. a local compaction of already-applied state): after
	// persisting, the driver must restore its state machine from it by
	// delivering an EntrySnapshot ApplyMsg ahead of Committed.
	Snapshot        *Snapshot
	RestoreSnapshot bool

	// Entries is the dirty log suffix starting at FirstIndex: the durable
	// log must be truncated at FirstIndex and these entries appended.
	// FirstIndex 0 means the log did not change; a positive FirstIndex
	// with no entries is a pure truncation (a snapshot install emptied the
	// suffix). The suffix may include entries that were already durable (a
	// conflict truncation re-persists from the truncation point);
	// re-writing them is harmless.
	FirstIndex int
	Entries    []LogEntry

	// Messages are the outbound messages generated since the last
	// TakeReady, in generation order.
	Messages []Message

	// Committed are the entries whose commitment became known since the
	// last TakeReady, in log order, ready to apply to the state machine.
	Committed []ApplyMsg

	// ReadStates resolve ReadIndex barriers (confirmed or aborted).
	ReadStates []ReadState

	// TakeSnapshot, when non-nil, asks the application to capture a
	// state-machine image (the compaction policy fired). It carries no
	// durability or ordering obligation: the driver answers, possibly much
	// later, by calling Core.Compact with the serialized image.
	TakeSnapshot *SnapshotRequest

	// SteppedDown reports that the leader relinquished leadership because
	// CheckQuorum found no quorum contact within an election interval.
	// The driver should fail in-flight proposals with a retryable
	// ErrLeaderStepdown (the commands may still commit — a Maybe outcome,
	// like any leader change). It carries no persistence obligation: the
	// term did not change.
	SteppedDown bool
}

// Empty reports whether the batch carries no effects at all.
func (rd *Ready) Empty() bool {
	return rd.HardState == nil && rd.Snapshot == nil && rd.FirstIndex == 0 &&
		len(rd.Messages) == 0 && len(rd.Committed) == 0 &&
		len(rd.ReadStates) == 0 && rd.TakeSnapshot == nil && !rd.SteppedDown
}

// Counters are the election-disruption metrics a Core accumulates.
// Monotone over the core's lifetime; drivers expose them through their
// status snapshots so the chaos harness and benchmarks can assert on
// election churn (or the absence of it).
type Counters struct {
	// Elections counts real elections started (term incremented).
	Elections uint64
	// PreVoteRounds counts term-neutral pre-elections started;
	// PreVotesWon counts the rounds that gathered a majority (and so
	// escalated to a real election).
	PreVoteRounds uint64
	PreVotesWon   uint64
	// TimeoutElections counts real elections entered directly from a
	// local timeout (only possible with Pre-Vote disabled);
	// TransferElections counts campaigns opened by a leader's
	// MsgTimeoutNow handoff.
	TimeoutElections  uint64
	TransferElections uint64
	// TermBumps counts adoptions of a higher term from an incoming
	// message — the disruption Pre-Vote exists to minimize.
	TermBumps uint64
	// StepDowns counts CheckQuorum step-downs (leadership relinquished
	// for lack of quorum contact).
	StepDowns uint64
	// TransfersStarted / TransfersAborted count leadership transfers
	// initiated and abandoned (deadline expired or leadership lost
	// before the handoff).
	TransfersStarted uint64
	TransfersAborted uint64
	// ReadBarriers counts ReadIndex quorum barriers opened;
	// ReadsCoalesced counts read requests that shared an already-open
	// barrier instead of opening their own (the coalescing window);
	// LeaseReads counts reads served from the leader lease with zero
	// network rounds.
	ReadBarriers   uint64
	ReadsCoalesced uint64
	LeaseReads     uint64
}
