package raftcore

// Golden tests for the sans-IO core: each case feeds the Core exactly one
// input and asserts the ENTIRE Ready batch field-by-field — HardState,
// changed log suffix, every outbound message (including Seq and HintIndex),
// committed deliveries, and resolved read barriers. The point is to pin the
// effect contract: a behavior change that alters what the driver would
// persist, send, or apply shows up here as a precise diff, not as a flaky
// cluster test.

import (
	"reflect"
	"testing"

	"adore/internal/types"
)

// assertReady compares a drained batch against its golden value.
func assertReady(t *testing.T, got, want Ready) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Ready mismatch\n got: %#v\nwant: %#v", got, want)
	}
}

// follower builds a follower core with recovered state. log entries are
// 1-based (no sentinel); nil means an empty log.
func follower(id types.NodeID, members []types.NodeID, hs HardState, entries []LogEntry) *Core {
	return New(Config{ID: id, Members: members, Jitter: func() int { return 0 }}, hs, Snapshot{}, entries)
}

// leader3 brings node 1 of {1,2,3} to leadership in term 1 and drains the
// three setup batches (the pre-vote round, the vote round, and the no-op
// broadcast). On return: log = [no-op@1], commitIndex = 0, appendSeq = 2
// (seq 1 went to S2, seq 2 to S3), nextIndex = {2:2, 3:2} after optimistic
// pipelining.
func leader3(t *testing.T) *Core {
	t.Helper()
	c := New(Config{
		ID:      1,
		Members: []types.NodeID{1, 2, 3},
		// Campaign on the first tick, deterministically.
		ElectionTicks: 1,
		Jitter:        func() int { return 0 },
	}, HardState{}, Snapshot{}, nil)
	// The timeout opens a term-neutral pre-vote round: nothing persists.
	c.Tick()
	assertReady(t, c.TakeReady(), Ready{
		Messages: []Message{
			{Type: MsgPreVoteRequest, From: 1, To: 2, Term: 1},
			{Type: MsgPreVoteRequest, From: 1, To: 3, Term: 1},
		},
	})
	// A majority of grants escalates to the real election, which persists
	// term+ballot before the vote requests go out.
	c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	assertReady(t, c.TakeReady(), Ready{
		HardState: &HardState{Term: 1, VotedFor: 1},
		Messages: []Message{
			{Type: MsgVoteRequest, From: 1, To: 2, Term: 1},
			{Type: MsgVoteRequest, From: 1, To: 3, Term: 1},
		},
	})
	c.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	if c.Role() != Leader {
		t.Fatalf("quorum of votes but role = %s", c.Role())
	}
	noop := LogEntry{Term: 1, Kind: EntryNoOp}
	assertReady(t, c.TakeReady(), Ready{
		FirstIndex: 1,
		Entries:    []LogEntry{noop},
		Messages: []Message{
			{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, Entries: []LogEntry{noop}, Seq: 1},
			{Type: MsgAppendEntries, From: 1, To: 3, Term: 1, Entries: []LogEntry{noop}, Seq: 2},
		},
	})
	return c
}

// TestGoldenVotes pins the exact Ready for the vote-request decision table:
// what is persisted (term and ballot) and what is answered, per input.
func TestGoldenVotes(t *testing.T) {
	cases := []struct {
		name string
		core func() *Core
		req  Message
		want Ready
	}{
		{
			name: "grant, empty log, new term persists term+vote atomically",
			core: func() *Core { return follower(2, []types.NodeID{1, 2, 3}, HardState{}, nil) },
			req:  Message{Type: MsgVoteRequest, From: 1, To: 2, Term: 1},
			want: Ready{
				HardState: &HardState{Term: 1, VotedFor: 1},
				Messages:  []Message{{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true}},
			},
		},
		{
			name: "deny, candidate log stale: term advances but no vote is cast",
			core: func() *Core {
				return follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1},
					[]LogEntry{{Term: 1, Kind: EntryCommand, Command: []byte("x")}})
			},
			req: Message{Type: MsgVoteRequest, From: 3, To: 2, Term: 2},
			want: Ready{
				HardState: &HardState{Term: 2, VotedFor: types.NoNode},
				Messages:  []Message{{Type: MsgVoteResponse, From: 2, To: 3, Term: 2, Granted: false}},
			},
		},
		{
			name: "deny, ballot already cast this term: nothing to persist",
			core: func() *Core { return follower(1, []types.NodeID{1, 2, 3}, HardState{Term: 3, VotedFor: 3}, nil) },
			req:  Message{Type: MsgVoteRequest, From: 2, To: 1, Term: 3, LastLogIndex: 5, LastLogTerm: 3},
			want: Ready{
				Messages: []Message{{Type: MsgVoteResponse, From: 1, To: 2, Term: 3, Granted: false}},
			},
		},
		{
			name: "deny, stale term: response carries our higher term",
			core: func() *Core { return follower(1, []types.NodeID{1, 2, 3}, HardState{Term: 5}, nil) },
			req:  Message{Type: MsgVoteRequest, From: 2, To: 1, Term: 4},
			want: Ready{
				Messages: []Message{{Type: MsgVoteResponse, From: 1, To: 2, Term: 5, Granted: false}},
			},
		},
		{
			name: "re-grant to the same candidate is idempotent but re-persists",
			core: func() *Core { return follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1, VotedFor: 1}, nil) },
			req:  Message{Type: MsgVoteRequest, From: 1, To: 2, Term: 1},
			want: Ready{
				HardState: &HardState{Term: 1, VotedFor: 1},
				Messages:  []Message{{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.core()
			c.Step(tc.req)
			assertReady(t, c.TakeReady(), tc.want)
		})
	}
}

// TestGoldenAppendFollower pins the follower's append handling: the hint a
// rejection carries (min(PrevLogIndex-1, lastIndex)) and, on the accept
// path, the exact truncation point, persisted suffix, and commit delivery.
func TestGoldenAppendFollower(t *testing.T) {
	// Follower log for every case: [t1, t1, t2] at indexes 1..3, term 2.
	mk := func() *Core {
		return follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 2}, []LogEntry{
			{Term: 1, Kind: EntryNoOp},
			{Term: 1, Kind: EntryCommand, Command: []byte("a")},
			{Term: 2, Kind: EntryCommand, Command: []byte("b")},
		})
	}
	cases := []struct {
		name string
		in   Message
		want Ready
	}{
		{
			name: "probe past end of log: hint = lastIndex, one round trip back",
			in:   Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 2, PrevLogIndex: 5, PrevLogTerm: 2, LeaderCommit: 3, Seq: 9},
			want: Ready{
				Messages: []Message{{Type: MsgAppendResponse, From: 2, To: 1, Term: 2, Success: false, HintIndex: 3, Seq: 9}},
			},
		},
		{
			name: "term mismatch at prev: hint backs off below the probe",
			in:   Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 2, PrevLogIndex: 3, PrevLogTerm: 3, Seq: 10},
			want: Ready{
				Messages: []Message{{Type: MsgAppendResponse, From: 2, To: 1, Term: 2, Success: false, HintIndex: 2, Seq: 10}},
			},
		},
		{
			name: "conflict truncates, suffix persists from first change, commit delivers",
			in: Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 3,
				PrevLogIndex: 1, PrevLogTerm: 1,
				Entries: []LogEntry{
					{Term: 3, Kind: EntryCommand, Command: []byte("c")},
					{Term: 3, Kind: EntryCommand, Command: []byte("d")},
				},
				LeaderCommit: 2, Seq: 4},
			want: Ready{
				HardState:  &HardState{Term: 3, VotedFor: types.NoNode},
				FirstIndex: 2,
				Entries: []LogEntry{
					{Term: 3, Kind: EntryCommand, Command: []byte("c")},
					{Term: 3, Kind: EntryCommand, Command: []byte("d")},
				},
				Messages: []Message{{Type: MsgAppendResponse, From: 2, To: 1, Term: 3, Success: true, MatchIndex: 3, Seq: 4}},
				Committed: []ApplyMsg{
					{Index: 1, Term: 1, Kind: EntryNoOp},
					{Index: 2, Term: 3, Kind: EntryCommand, Command: []byte("c")},
				},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mk()
			c.Step(tc.in)
			assertReady(t, c.TakeReady(), tc.want)
		})
	}
}

// TestGoldenLeaderBackoff pins the leader's reaction to a rejection: the
// next probe jumps to min(nextIndex-1, HintIndex+1) and resends exactly the
// suffix from there.
func TestGoldenLeaderBackoff(t *testing.T) {
	// Extend the fresh leader's log to [no-op@1, a@2, b@3]; after the two
	// pipelined broadcasts nextIndex = {2:4, 3:4} and appendSeq = 6.
	mk := func(t *testing.T) *Core {
		c := leader3(t)
		if _, _, err := c.Propose([]byte("a")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Propose([]byte("b")); err != nil {
			t.Fatal(err)
		}
		c.TakeReady() // drain the two broadcasts (seq 3..6)
		return c
	}
	noop := LogEntry{Term: 1, Kind: EntryNoOp}
	a := LogEntry{Term: 1, Kind: EntryCommand, Command: []byte("a")}
	b := LogEntry{Term: 1, Kind: EntryCommand, Command: []byte("b")}
	cases := []struct {
		name string
		in   Message
		want Ready
	}{
		{
			name: "hint jumps below nextIndex: resend from hint+1 in one hop",
			in:   Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: false, HintIndex: 0, Seq: 3},
			want: Ready{
				Messages: []Message{{Type: MsgAppendEntries, From: 1, To: 2, Term: 1,
					PrevLogIndex: 0, PrevLogTerm: 0, Entries: []LogEntry{noop, a, b}, Seq: 7}},
			},
		},
		{
			name: "hint at nextIndex-1: plain decrement, one-entry resend",
			in:   Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: false, HintIndex: 2, Seq: 4},
			want: Ready{
				Messages: []Message{{Type: MsgAppendEntries, From: 1, To: 3, Term: 1,
					PrevLogIndex: 2, PrevLogTerm: 1, Entries: []LogEntry{b}, Seq: 7}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mk(t)
			c.Step(tc.in)
			assertReady(t, c.TakeReady(), tc.want)
		})
	}
}

// TestGoldenCommitAcrossReconfig pins hot reconfiguration's commit rule:
// the config entry itself is judged by the NEW membership, so a quorum of
// the old config is not enough to commit it.
func TestGoldenCommitAcrossReconfig(t *testing.T) {
	c := leader3(t)
	cfgEntry := LogEntry{Term: 1, Kind: EntryConfig, Members: []types.NodeID{1, 2, 3, 4}}
	steps := []struct {
		name string
		act  func(t *testing.T)
		want Ready
	}{
		{
			name: "S2 acks the no-op: quorum of {1,2,3}, index 1 commits",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
			},
			want: Ready{Committed: []ApplyMsg{{Index: 1, Term: 1, Kind: EntryNoOp}}},
		},
		{
			name: "propose +S4: entry persists and is broadcast to the UNION, S4 bootstrapped from scratch",
			act: func(t *testing.T) {
				if _, _, err := c.ProposeConfig(types.NewNodeSet(1, 2, 3, 4)); err != nil {
					t.Fatal(err)
				}
			},
			want: Ready{
				FirstIndex: 2,
				Entries:    []LogEntry{cfgEntry},
				Messages: []Message{
					{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{cfgEntry}, LeaderCommit: 1, Seq: 3},
					{Type: MsgAppendEntries, From: 1, To: 3, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{cfgEntry}, LeaderCommit: 1, Seq: 4},
					{Type: MsgAppendEntries, From: 1, To: 4, Term: 1, PrevLogIndex: 0, PrevLogTerm: 0,
						Entries: []LogEntry{{Term: 1, Kind: EntryNoOp}, cfgEntry}, LeaderCommit: 1, Seq: 5},
				},
			},
		},
		{
			name: "S2 acks the config entry: 2 of the NEW 4-member config is NOT a quorum",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 3})
			},
			want: Ready{}, // nothing commits, nothing is sent
		},
		{
			name: "S3 acks too: 3 of 4 is a quorum, the boundary entry commits",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 4})
			},
			want: Ready{Committed: []ApplyMsg{{Index: 2, Term: 1, Kind: EntryConfig, Members: []types.NodeID{1, 2, 3, 4}}}},
		},
	}
	for _, s := range steps {
		t.Run(s.name, func(t *testing.T) {
			s.act(t)
			assertReady(t, c.TakeReady(), s.want)
		})
	}
	if got := c.CommitIndex(); got != 2 {
		t.Fatalf("commit index = %d, want 2", got)
	}
}

// TestGoldenReadIndexSeq pins the ReadIndex staleness rule: only an append
// response echoing a Seq issued AFTER the barrier confirms leadership for
// it; an ack that was already in flight does not.
func TestGoldenReadIndexSeq(t *testing.T) {
	c := leader3(t)
	steps := []struct {
		name string
		act  func(t *testing.T)
		want Ready
	}{
		{
			name: "S2 acks the no-op: index 1 commits",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
			},
			want: Ready{Committed: []ApplyMsg{{Index: 1, Term: 1, Kind: EntryNoOp}}},
		},
		{
			name: "ReadIndex registers the barrier at seq 2 and fires a confirmation round",
			act: func(t *testing.T) {
				idx, confirmed, err := c.ReadIndex(77)
				if err != nil {
					t.Fatal(err)
				}
				if confirmed {
					t.Fatalf("3-node barrier confirmed immediately (index %d)", idx)
				}
			},
			want: Ready{
				Messages: []Message{
					{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{}, LeaderCommit: 1, Seq: 3},
					{Type: MsgAppendEntries, From: 1, To: 3, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{}, LeaderCommit: 1, Seq: 4},
				},
			},
		},
		{
			name: "stale ack (seq 2, in flight before the barrier) must NOT confirm",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 2})
			},
			want: Ready{}, // no ReadState: leadership not yet re-proven
		},
		{
			name: "fresh ack (seq 4 > barrier seq 2) confirms and resolves the read",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 4})
			},
			want: Ready{ReadStates: []ReadState{{ReqID: 77, Index: 1}}},
		},
	}
	for _, s := range steps {
		t.Run(s.name, func(t *testing.T) {
			s.act(t)
			assertReady(t, c.TakeReady(), s.want)
		})
	}
}

// TestGoldenReadIndexAbort pins the abort path: losing leadership (a higher
// term arrives) resolves every pending barrier with Index -1 in the same
// batch that persists the new term.
func TestGoldenReadIndexAbort(t *testing.T) {
	c := leader3(t)
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
	c.TakeReady()
	if _, confirmed, err := c.ReadIndex(9); err != nil || confirmed {
		t.Fatalf("ReadIndex: confirmed=%v err=%v", confirmed, err)
	}
	c.TakeReady()

	c.Step(Message{Type: MsgAppendEntries, From: 3, To: 1, Term: 2, PrevLogIndex: 0, PrevLogTerm: 0, Seq: 1})
	assertReady(t, c.TakeReady(), Ready{
		HardState:  &HardState{Term: 2, VotedFor: types.NoNode},
		Messages:   []Message{{Type: MsgAppendResponse, From: 1, To: 3, Term: 2, Success: true, Seq: 1}},
		ReadStates: []ReadState{{ReqID: 9, Index: -1}},
	})
}
