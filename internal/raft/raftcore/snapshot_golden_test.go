package raftcore

// Golden tests for the compaction half of the effect contract: when the
// policy asks for a snapshot, what Compact stages into the next Ready,
// how a leader streams an image to a laggard, and what a follower
// persists, truncates, and acks for each InstallSnapshot shape.

import (
	"reflect"
	"testing"

	"adore/internal/types"
)

// singleLeader boots a single-member cluster with the given snapshot
// threshold; one tick elects it. On return the no-op at index 1 is
// committed and its Ready drained.
func singleLeader(t *testing.T, threshold int) *Core {
	t.Helper()
	c := New(Config{
		ID:                1,
		Members:           []types.NodeID{1},
		ElectionTicks:     1,
		Jitter:            func() int { return 0 },
		SnapshotThreshold: threshold,
	}, HardState{}, Snapshot{}, nil)
	c.Tick()
	if c.Role() != Leader {
		t.Fatalf("single node did not self-elect (role %s)", c.Role())
	}
	noop := LogEntry{Term: 1, Kind: EntryNoOp}
	assertReady(t, c.TakeReady(), Ready{
		HardState:  &HardState{Term: 1, VotedFor: 1},
		FirstIndex: 1,
		Entries:    []LogEntry{noop},
		Committed:  []ApplyMsg{{Index: 1, Term: 1, Kind: EntryNoOp}},
	})
	return c
}

// TestGoldenSnapshotPolicy pins the TakeSnapshot policy: it fires exactly
// when the applied distance reaches the threshold, latches until Compact
// or AbortSnapshot answers it, and Compact stages the durable Snapshot
// (and nothing else) into the following Ready.
func TestGoldenSnapshotPolicy(t *testing.T) {
	c := singleLeader(t, 2)

	// Second applied entry crosses the threshold: the Ready that delivers
	// it also carries the request, pinned at the applied index.
	if _, _, err := c.Propose([]byte("a")); err != nil {
		t.Fatal(err)
	}
	entryA := LogEntry{Term: 1, Kind: EntryCommand, Command: []byte("a")}
	assertReady(t, c.TakeReady(), Ready{
		FirstIndex:   2,
		Entries:      []LogEntry{entryA},
		Committed:    []ApplyMsg{{Index: 2, Term: 1, Kind: EntryCommand, Command: []byte("a")}},
		TakeSnapshot: &SnapshotRequest{Index: 2},
	})

	// Latched: more applied entries do not re-request.
	if _, _, err := c.Propose([]byte("b")); err != nil {
		t.Fatal(err)
	}
	entryB := LogEntry{Term: 1, Kind: EntryCommand, Command: []byte("b")}
	assertReady(t, c.TakeReady(), Ready{
		FirstIndex: 3,
		Entries:    []LogEntry{entryB},
		Committed:  []ApplyMsg{{Index: 3, Term: 1, Kind: EntryCommand, Command: []byte("b")}},
	})

	// Abort re-arms the policy; the distance still crosses, so the next
	// drain re-fires at the new applied index.
	c.AbortSnapshot()
	assertReady(t, c.TakeReady(), Ready{TakeSnapshot: &SnapshotRequest{Index: 3}})

	// Compact folds the prefix and stages the durable image.
	img := []byte("image")
	if !c.Compact(3, img) {
		t.Fatal("Compact(3) rejected a valid request")
	}
	assertReady(t, c.TakeReady(), Ready{
		Snapshot: &Snapshot{Index: 3, Term: 1, Members: []types.NodeID{1}, Data: img},
	})
	if got, want := c.FirstIndex(), 4; got != want {
		t.Fatalf("FirstIndex after compaction = %d, want %d", got, want)
	}

	// Stale and out-of-range answers are rejected.
	if c.Compact(3, img) {
		t.Fatal("Compact accepted an index at the existing base")
	}
	if c.Compact(4, img) {
		t.Fatal("Compact accepted an index beyond lastApplied")
	}
	assertReady(t, c.TakeReady(), Ready{})
}

// TestGoldenInstallSnapshotFollower pins the follower side of a transfer:
// the exact Ready for a full install (image persisted, log truncated to
// the empty suffix, restore flagged, ack at the base), for chunked
// reassembly, and for the two degenerate shapes (already-committed image,
// log already matching the base).
func TestGoldenInstallSnapshotFollower(t *testing.T) {
	install := func(idx int, term types.Time, off int, data, whole []byte, seq uint64) Message {
		return Message{
			Type: MsgInstallSnapshot, From: 1, To: 2, Term: 1,
			SnapIndex: idx, SnapTerm: term,
			SnapMembers: []types.NodeID{1, 2, 3},
			SnapOffset:  off, SnapTotal: len(whole), SnapData: data, Seq: seq,
		}
	}

	t.Run("full install replaces the log", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1},
			[]LogEntry{{Term: 1, Kind: EntryCommand, Command: []byte("stale")}})
		img := []byte("img")
		f.Step(install(5, 1, 0, img, img, 7))
		assertReady(t, f.TakeReady(), Ready{
			Snapshot:        &Snapshot{Index: 5, Term: 1, Members: []types.NodeID{1, 2, 3}, Data: img},
			RestoreSnapshot: true,
			FirstIndex:      6,
			Entries:         []LogEntry{},
			Messages: []Message{
				{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 5, Seq: 7},
			},
		})
		if f.FirstIndex() != 6 || f.CommitIndex() != 5 {
			t.Fatalf("after install: FirstIndex %d, CommitIndex %d", f.FirstIndex(), f.CommitIndex())
		}
	})

	t.Run("chunks reassemble strictly in order", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil)
		img := []byte("img")
		// An out-of-order chunk with no transfer open is dropped cold.
		f.Step(install(5, 1, 2, img[2:], img, 3))
		assertReady(t, f.TakeReady(), Ready{})
		// Offset 0 opens the transfer; the partial image has no effects.
		f.Step(install(5, 1, 0, img[:2], img, 4))
		assertReady(t, f.TakeReady(), Ready{})
		// The closing chunk lands the full install.
		f.Step(install(5, 1, 2, img[2:], img, 5))
		assertReady(t, f.TakeReady(), Ready{
			Snapshot:        &Snapshot{Index: 5, Term: 1, Members: []types.NodeID{1, 2, 3}, Data: img},
			RestoreSnapshot: true,
			FirstIndex:      6,
			Entries:         []LogEntry{},
			Messages: []Message{
				{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 5, Seq: 5},
			},
		})
	})

	t.Run("matching log skips the install, commits the prefix", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, []LogEntry{
			{Term: 1, Kind: EntryCommand, Command: []byte("x")},
			{Term: 1, Kind: EntryCommand, Command: []byte("y")},
			{Term: 1, Kind: EntryCommand, Command: []byte("z")},
		})
		img := []byte("img")
		f.Step(install(2, 1, 0, img, img, 9))
		assertReady(t, f.TakeReady(), Ready{
			Messages: []Message{
				{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 9},
			},
			Committed: []ApplyMsg{
				{Index: 1, Term: 1, Kind: EntryCommand, Command: []byte("x")},
				{Index: 2, Term: 1, Kind: EntryCommand, Command: []byte("y")},
			},
		})

		// A second image at or below the commit index is acked from the
		// commit index without touching anything.
		f.Step(install(1, 1, 0, img, img, 10))
		assertReady(t, f.TakeReady(), Ready{
			Messages: []Message{
				{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 10},
			},
		})
	})
}

// TestGoldenSnapshotTransfer pins the leader side: a rejection that lands
// below the compaction base turns into a chunked InstallSnapshot burst,
// resends are paced to one burst per election interval, and a paced-out
// resend restarts from offset 0.
func TestGoldenSnapshotTransfer(t *testing.T) {
	c := New(Config{
		ID:               1,
		Members:          []types.NodeID{1, 2, 3},
		ElectionTicks:    5,
		HeartbeatTicks:   5,
		Jitter:           func() int { return 0 },
		MaxSnapshotChunk: 2,
	}, HardState{}, Snapshot{}, nil)
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	c.TakeReady()
	c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	c.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	if c.Role() != Leader {
		t.Fatalf("no leadership after quorum vote (role %s)", c.Role())
	}
	c.TakeReady()
	if _, _, err := c.Propose([]byte("aa")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Propose([]byte("bb")); err != nil {
		t.Fatal(err)
	}
	// S2 acks everything: indexes 1..3 commit and apply.
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 3, Seq: 5})
	c.TakeReady()

	img := []byte("imgme") // 5 bytes → chunks of 2, 2, 1
	if !c.Compact(3, img) {
		t.Fatal("Compact(3) rejected")
	}
	c.TakeReady()

	// S3 rejects a probe with a hint below the base: the whole image goes
	// out as one burst of MaxSnapshotChunk-sized messages.
	chunk := func(off int, data []byte, seq uint64) Message {
		return Message{
			Type: MsgInstallSnapshot, From: 1, To: 3, Term: 1,
			SnapIndex: 3, SnapTerm: 1, SnapMembers: []types.NodeID{1, 2, 3},
			SnapOffset: off, SnapTotal: 5, SnapData: data, Seq: seq,
		}
	}
	c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: false, HintIndex: 0, Seq: 2})
	assertReady(t, c.TakeReady(), Ready{
		Messages: []Message{chunk(0, img[0:2], 7), chunk(2, img[2:4], 8), chunk(4, img[4:5], 9)},
	})

	// A second rejection inside the pacing window sends nothing: the
	// previous transfer is assumed in flight.
	c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: false, HintIndex: 0, Seq: 2})
	assertReady(t, c.TakeReady(), Ready{})

	// One election interval later the heartbeat path retries the laggard
	// and the burst restarts from offset 0.
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	rd := c.TakeReady()
	var snaps []Message
	for _, m := range rd.Messages {
		if m.Type == MsgInstallSnapshot {
			snaps = append(snaps, m)
		}
	}
	want := []Message{chunk(0, img[0:2], 11), chunk(2, img[2:4], 12), chunk(4, img[4:5], 13)}
	if !reflect.DeepEqual(snaps, want) {
		t.Fatalf("paced resend mismatch\n got: %#v\nwant: %#v", snaps, want)
	}
}
