package raftcore

// Golden tests for the fast read path: the ReadIndex coalescing window
// (which reads share a barrier, which must not), the term-start read
// floor, the leader lease's grant/expiry/invalidation rules, and the
// follower-forwarded read round trip. Like the other golden files, each
// step pins the ENTIRE Ready batch so a change to what the driver would
// send or resolve shows up as a precise diff.

import (
	"testing"

	"adore/internal/types"
)

// leaderET brings node 1 of {1,2,3} to leadership like leader3, but with
// an election interval of et ticks (the lease window), campaigning after
// exactly et silent ticks. On return ticks = et, the term-1 no-op sits at
// index 1 (uncommitted), and appendSeq = 2.
func leaderET(t *testing.T, et int) *Core {
	t.Helper()
	c := New(Config{
		ID:            1,
		Members:       []types.NodeID{1, 2, 3},
		ElectionTicks: et,
		Jitter:        func() int { return 0 },
	}, HardState{}, Snapshot{}, nil)
	for i := 0; i < et; i++ {
		c.Tick()
	}
	c.TakeReady() // pre-vote round
	c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	c.TakeReady() // vote round
	c.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	if c.Role() != Leader {
		t.Fatalf("quorum of votes but role = %s", c.Role())
	}
	c.TakeReady() // no-op broadcast (seq 1, 2)
	return c
}

// TestGoldenReadCoalescing pins the coalescing window: the first read
// opens a barrier and fires its confirmation round; reads arriving while
// that round is in flight must NOT join it (its acks could predate them)
// but accumulate on ONE follow-up barrier that rides the next heartbeat —
// so any burst between two heartbeat rounds costs at most one extra
// round, and one quorum confirmation resolves the whole batch.
func TestGoldenReadCoalescing(t *testing.T) {
	c := leader3(t)
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
	c.TakeReady() // commit the no-op (index 1)

	steps := []struct {
		name string
		act  func(t *testing.T)
		want Ready
	}{
		{
			name: "read 101 opens barrier 1 and fires its round (seq 3, 4)",
			act: func(t *testing.T) {
				if _, confirmed, err := c.ReadIndex(101); err != nil || confirmed {
					t.Fatalf("ReadIndex: confirmed=%v err=%v", confirmed, err)
				}
			},
			want: Ready{
				Messages: []Message{
					{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{}, LeaderCommit: 1, Seq: 3},
					{Type: MsgAppendEntries, From: 1, To: 3, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{}, LeaderCommit: 1, Seq: 4},
				},
			},
		},
		{
			name: "read 102 arrives mid-round: barrier 2 accumulates, NO new round",
			act: func(t *testing.T) {
				if _, confirmed, err := c.ReadIndex(102); err != nil || confirmed {
					t.Fatalf("ReadIndex: confirmed=%v err=%v", confirmed, err)
				}
			},
			want: Ready{},
		},
		{
			name: "read 103 joins barrier 2 (no send since it registered)",
			act: func(t *testing.T) {
				if _, confirmed, err := c.ReadIndex(103); err != nil || confirmed {
					t.Fatalf("ReadIndex: confirmed=%v err=%v", confirmed, err)
				}
			},
			want: Ready{},
		},
		{
			name: "ack of round 1 (seq 3 > 2) resolves barrier 1 only",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 3})
			},
			want: Ready{ReadStates: []ReadState{{ReqID: 101, Index: 1}}},
		},
		{
			name: "the next heartbeat is barrier 2's round (seq 5, 6)",
			act:  func(t *testing.T) { c.Tick() },
			want: Ready{
				Messages: []Message{
					{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{}, LeaderCommit: 1, Seq: 5},
					{Type: MsgAppendEntries, From: 1, To: 3, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
						Entries: []LogEntry{}, LeaderCommit: 1, Seq: 6},
				},
			},
		},
		{
			name: "one fresh ack (seq 6 > 4) resolves the whole batch",
			act: func(t *testing.T) {
				c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 6})
			},
			want: Ready{ReadStates: []ReadState{{ReqID: 102, Index: 1}, {ReqID: 103, Index: 1}}},
		},
	}
	for _, s := range steps {
		t.Run(s.name, func(t *testing.T) {
			s.act(t)
			assertReady(t, c.TakeReady(), s.want)
		})
	}
	ctr := c.Counters()
	if ctr.ReadBarriers != 2 || ctr.ReadsCoalesced != 1 {
		t.Fatalf("counters: barriers=%d coalesced=%d, want 2 and 1", ctr.ReadBarriers, ctr.ReadsCoalesced)
	}
}

// TestGoldenReadFloorTermStart pins the read floor on a fresh leader: its
// commit index still trails entries the previous leader committed, so the
// barrier must resolve at the term-opening no-op's index (above every
// previously committed entry), never at the stale commit index.
func TestGoldenReadFloorTermStart(t *testing.T) {
	// Node 1 recovers with two term-1 entries (committed cluster-wide by a
	// previous leader, but commitIndex is volatile: locally it is 0) and
	// wins term 2. Its no-op lands at index 3.
	c := New(Config{
		ID:            1,
		Members:       []types.NodeID{1, 2, 3},
		ElectionTicks: 1,
		Jitter:        func() int { return 0 },
	}, HardState{Term: 1}, Snapshot{}, []LogEntry{
		{Term: 1, Kind: EntryCommand, Command: []byte("a")},
		{Term: 1, Kind: EntryCommand, Command: []byte("b")},
	})
	c.Tick()
	c.TakeReady()
	c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 2, Granted: true})
	c.TakeReady()
	c.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: 2, Granted: true})
	c.TakeReady() // no-op broadcast (seq 1, 2); commitIndex still 0

	if _, confirmed, err := c.ReadIndex(7); err != nil || confirmed {
		t.Fatalf("ReadIndex: confirmed=%v err=%v", confirmed, err)
	}
	c.TakeReady() // barrier round (seq 3, 4)

	// S2 catches up fully and acks the barrier round: the read resolves at
	// the no-op's index 3 — NOT at the pre-ack commit index 0 — in the
	// same batch that commits and applies entries 1..3.
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 2, Success: true, MatchIndex: 3, Seq: 3})
	assertReady(t, c.TakeReady(), Ready{
		ReadStates: []ReadState{{ReqID: 7, Index: 3}},
		Committed: []ApplyMsg{
			{Index: 1, Term: 1, Kind: EntryCommand, Command: []byte("a")},
			{Index: 2, Term: 1, Kind: EntryCommand, Command: []byte("b")},
			{Index: 3, Term: 2, Kind: EntryNoOp},
		},
	})
}

// TestGoldenLeaseWindow pins the lease clock: no lease before any quorum
// ack, a lease for strictly less than one election interval after one,
// expiry at exactly the interval, and renewal on the next ack. All in
// logical ticks — the same clock CheckQuorum and stickiness count.
func TestGoldenLeaseWindow(t *testing.T) {
	const et = 5
	c := leaderET(t, et) // ticks = 5
	if _, ok := c.LeaseStatus(); ok {
		t.Fatal("lease granted before any quorum ack")
	}
	// S2's ack (ticks 5) commits the no-op and starts the lease window.
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
	c.TakeReady()
	if idx, ok := c.LeaseRead(); !ok || idx != 1 {
		t.Fatalf("LeaseRead = (%d, %v), want (1, true)", idx, ok)
	}
	// Four more ticks (ticks 9): 9-5 < 5, still inside the window.
	for i := 0; i < et-1; i++ {
		c.Tick()
	}
	c.TakeReady() // heartbeats
	if idx, ok := c.LeaseRead(); !ok || idx != 1 {
		t.Fatalf("LeaseRead at window edge = (%d, %v), want (1, true)", idx, ok)
	}
	// One more tick (ticks 10): 10-5 = et, the window closed.
	c.Tick()
	c.TakeReady()
	if _, ok := c.LeaseStatus(); ok {
		t.Fatal("lease still granted a full election interval after the ack")
	}
	// A fresh ack (echoing the tick-10 heartbeat, seq 11) renews it.
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 11})
	c.TakeReady()
	if idx, ok := c.LeaseRead(); !ok || idx != 1 {
		t.Fatalf("LeaseRead after renewal = (%d, %v), want (1, true)", idx, ok)
	}
	if got := c.Counters().LeaseReads; got != 3 {
		t.Fatalf("LeaseReads = %d, want 3", got)
	}
}

// TestGoldenLeaseTransferGuard pins the transfer invalidation: the moment
// a handoff starts the lease is void — MsgTimeoutNow elects the target
// with no timeout wait, so tick arithmetic proves nothing — and fresh
// acks do NOT revive it until the transfer resolves.
func TestGoldenLeaseTransferGuard(t *testing.T) {
	const et = 5
	c := leaderET(t, et)
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
	c.TakeReady()
	if _, ok := c.LeaseStatus(); !ok {
		t.Fatal("no lease after a quorum ack")
	}
	if err := c.TransferLeader(2); err != nil {
		t.Fatal(err)
	}
	c.TakeReady() // the TimeoutNow handoff
	if _, ok := c.LeaseStatus(); ok {
		t.Fatal("lease survived the start of a leadership transfer")
	}
	// Even a fresh quorum ack must not revive it mid-transfer.
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 2})
	c.TakeReady()
	if _, ok := c.LeaseStatus(); ok {
		t.Fatal("lease revived by an ack while the transfer is pending")
	}
	// The target never campaigns; the transfer dies at its deadline (et
	// ticks) and a fresh ack re-arms the lease.
	for i := 0; i < et; i++ {
		c.Tick()
	}
	c.TakeReady()
	if c.TransferTarget() != types.NoNode {
		t.Fatal("transfer not cancelled at its deadline")
	}
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 12})
	c.TakeReady()
	if _, ok := c.LeaseStatus(); !ok {
		t.Fatal("no lease after the transfer aborted and a fresh ack arrived")
	}
}

// TestGoldenLeaseReconfigGuard pins the Schultz-style reconfiguration
// invalidation: while a configuration entry is uncommitted, the quorum
// the lease was acked under need not intersect the quorums a competing
// leader could use — no lease until the change commits.
func TestGoldenLeaseReconfigGuard(t *testing.T) {
	const et = 5
	c := leaderET(t, et)
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
	c.TakeReady()
	if _, ok := c.LeaseStatus(); !ok {
		t.Fatal("no lease after a quorum ack")
	}
	if _, _, err := c.ProposeConfig(types.NewNodeSet(1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	c.TakeReady() // config entry broadcast (union: S2, S3, S4)
	if _, ok := c.LeaseStatus(); ok {
		t.Fatal("lease survived an uncommitted configuration entry")
	}
	// S2 and S3 ack the config entry: 3 of the new 4-member config commits
	// it, and the same fresh acks satisfy the lease quorum again.
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 3})
	c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 4})
	c.TakeReady()
	if idx, ok := c.LeaseStatus(); !ok || idx != 2 {
		t.Fatalf("LeaseStatus after the change committed = (%d, %v), want (2, true)", idx, ok)
	}
}

// TestGoldenLeaseTogglesOff pins the two escape hatches: DisableLeaseRead
// refuses every lease, and DisableLeaseGuard (the teeth knob) keeps a
// lease alive across the start of a transfer.
func TestGoldenLeaseTogglesOff(t *testing.T) {
	mk := func(t *testing.T, cfg func(*Config)) *Core {
		t.Helper()
		conf := Config{
			ID:            1,
			Members:       []types.NodeID{1, 2, 3},
			ElectionTicks: 5,
			Jitter:        func() int { return 0 },
		}
		cfg(&conf)
		c := New(conf, HardState{}, Snapshot{}, nil)
		for i := 0; i < 5; i++ {
			c.Tick()
		}
		c.TakeReady()
		c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
		c.TakeReady()
		c.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
		c.TakeReady()
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
		c.TakeReady()
		return c
	}

	t.Run("DisableLeaseRead refuses even a fresh quorum", func(t *testing.T) {
		c := mk(t, func(cfg *Config) { cfg.DisableLeaseRead = true })
		if _, ok := c.LeaseStatus(); ok {
			t.Fatal("lease granted with DisableLeaseRead set")
		}
	})
	t.Run("DisableLeaseGuard keeps the lease through a transfer", func(t *testing.T) {
		c := mk(t, func(cfg *Config) { cfg.DisableLeaseGuard = true })
		if err := c.TransferLeader(2); err != nil {
			t.Fatal(err)
		}
		c.TakeReady()
		if _, ok := c.LeaseStatus(); !ok {
			t.Fatal("guard disabled but the transfer still voided the lease")
		}
	})
}

// TestGoldenFollowerForward pins the follower-served read wire protocol:
// the forward to the known leader, resolution through a ReadState keyed
// by ReadCtx, the abort on a Success=false response, and the leader-side
// handling (barrier, lease fast path, and the not-a-leader refusal).
func TestGoldenFollowerForward(t *testing.T) {
	t.Run("follower forwards and resolves on the response", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil)
		f.Step(Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, Seq: 1})
		f.TakeReady() // learn the leader; drain the append response
		if err := f.ForwardReadIndex(7); err != nil {
			t.Fatal(err)
		}
		assertReady(t, f.TakeReady(), Ready{
			Messages: []Message{{Type: MsgReadIndexRequest, From: 2, To: 1, Term: 1, ReadCtx: 7}},
		})
		f.Step(Message{Type: MsgReadIndexResponse, From: 1, To: 2, Term: 1, ReadCtx: 7, Success: true, MatchIndex: 5})
		assertReady(t, f.TakeReady(), Ready{ReadStates: []ReadState{{ReqID: 7, Index: 5}}})
	})
	t.Run("a refusal aborts the local waiter", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil)
		f.Step(Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, Seq: 1})
		f.TakeReady()
		if err := f.ForwardReadIndex(8); err != nil {
			t.Fatal(err)
		}
		f.TakeReady()
		f.Step(Message{Type: MsgReadIndexResponse, From: 1, To: 2, Term: 1, ReadCtx: 8})
		assertReady(t, f.TakeReady(), Ready{ReadStates: []ReadState{{ReqID: 8, Index: -1}}})
	})
	t.Run("no known leader: the forward fails fast", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{}, nil)
		if err := f.ForwardReadIndex(9); err == nil {
			t.Fatal("ForwardReadIndex with no leader: want error")
		}
	})
	t.Run("leader serves a forward through the barrier", func(t *testing.T) {
		c := leader3(t)
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
		c.TakeReady()
		c.Tick() // expire the 1-tick lease so the barrier path runs
		c.TakeReady()
		c.Step(Message{Type: MsgReadIndexRequest, From: 3, To: 1, Term: 1, ReadCtx: 42})
		assertReady(t, c.TakeReady(), Ready{
			Messages: []Message{
				{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
					Entries: []LogEntry{}, LeaderCommit: 1, Seq: 5},
				{Type: MsgAppendEntries, From: 1, To: 3, Term: 1, PrevLogIndex: 1, PrevLogTerm: 1,
					Entries: []LogEntry{}, LeaderCommit: 1, Seq: 6},
			},
		})
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 5})
		assertReady(t, c.TakeReady(), Ready{
			Messages: []Message{{Type: MsgReadIndexResponse, From: 1, To: 3, Term: 1, ReadCtx: 42, Success: true, MatchIndex: 1}},
		})
	})
	t.Run("leader with a valid lease answers a forward instantly", func(t *testing.T) {
		c := leader3(t)
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
		c.TakeReady()
		c.Step(Message{Type: MsgReadIndexRequest, From: 3, To: 1, Term: 1, ReadCtx: 43})
		assertReady(t, c.TakeReady(), Ready{
			Messages: []Message{{Type: MsgReadIndexResponse, From: 1, To: 3, Term: 1, ReadCtx: 43, Success: true, MatchIndex: 1}},
		})
		if got := c.Counters().LeaseReads; got != 1 {
			t.Fatalf("LeaseReads = %d, want 1", got)
		}
	})
	t.Run("a non-leader refuses a forwarded read", func(t *testing.T) {
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil)
		f.Step(Message{Type: MsgReadIndexRequest, From: 3, To: 2, Term: 1, ReadCtx: 9})
		assertReady(t, f.TakeReady(), Ready{
			Messages: []Message{{Type: MsgReadIndexResponse, From: 2, To: 3, Term: 1, ReadCtx: 9}},
		})
	})
}
