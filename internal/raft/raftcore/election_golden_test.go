package raftcore

// Golden tests for the election-robustness layer: the Pre-Vote grant/deny
// matrix (including across a reconfiguration boundary), follower
// stickiness, the CheckQuorum step-down effect, and the leadership-transfer
// handoff and abort paths. Same discipline as golden_test.go: one input,
// the ENTIRE Ready batch asserted field-by-field.

import (
	"errors"
	"testing"

	"adore/internal/types"
)

// TestGoldenPreVoteMatrix pins the pre-vote decision table. The exchange is
// term-neutral: no case persists anything (no HardState in any Ready), a
// grant echoes the PROPOSED term so the candidate can tally it, and a
// denial carries the voter's real term.
func TestGoldenPreVoteMatrix(t *testing.T) {
	cases := []struct {
		name string
		core func(t *testing.T) *Core
		req  Message
		want Ready
	}{
		{
			name: "grant: higher proposed term, up-to-date log, no leader contact",
			core: func(t *testing.T) *Core { return follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil) },
			req:  Message{Type: MsgPreVoteRequest, From: 3, To: 2, Term: 2},
			want: Ready{
				Messages: []Message{{Type: MsgPreVoteResponse, From: 2, To: 3, Term: 2, Granted: true}},
			},
		},
		{
			name: "deny: proposed term does not beat ours",
			core: func(t *testing.T) *Core { return follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 2}, nil) },
			req:  Message{Type: MsgPreVoteRequest, From: 3, To: 2, Term: 2},
			want: Ready{
				Messages: []Message{{Type: MsgPreVoteResponse, From: 2, To: 3, Term: 2, Granted: false}},
			},
		},
		{
			name: "deny: candidate log is stale",
			core: func(t *testing.T) *Core {
				return follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1},
					[]LogEntry{{Term: 1, Kind: EntryCommand, Command: []byte("x")}})
			},
			req: Message{Type: MsgPreVoteRequest, From: 3, To: 2, Term: 2},
			want: Ready{
				Messages: []Message{{Type: MsgPreVoteResponse, From: 2, To: 3, Term: 1, Granted: false}},
			},
		},
		{
			name: "deny: sticky follower with recent leader contact",
			core: func(t *testing.T) *Core {
				f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil)
				f.Step(Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, Seq: 1})
				f.TakeReady()
				return f
			},
			req: Message{Type: MsgPreVoteRequest, From: 3, To: 2, Term: 2},
			want: Ready{
				Messages: []Message{{Type: MsgPreVoteResponse, From: 2, To: 3, Term: 1, Granted: false}},
			},
		},
		{
			name: "deny: a live leader never endorses a competing campaign",
			core: func(t *testing.T) *Core { return leader3(t) },
			req:  Message{Type: MsgPreVoteRequest, From: 3, To: 1, Term: 2},
			want: Ready{
				Messages: []Message{{Type: MsgPreVoteResponse, From: 1, To: 3, Term: 1, Granted: false}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.core(t)
			term, voted := c.Term(), c.votedFor
			c.Step(tc.req)
			assertReady(t, c.TakeReady(), tc.want)
			if c.Term() != term || c.votedFor != voted {
				t.Fatalf("pre-vote mutated durable state: term %d→%d, votedFor %s→%s",
					term, c.Term(), voted, c.votedFor)
			}
		})
	}
}

// TestGoldenPreVoteAcrossReconfig pins the tally rule at a reconfiguration
// boundary: a pre-candidate whose log carries an UNCOMMITTED config entry
// canvasses — and is judged by — the new membership, so a majority of the
// old configuration is not enough to escalate.
func TestGoldenPreVoteAcrossReconfig(t *testing.T) {
	// Node 1's log holds a pending widen {1..5}; conf0 was {1,2,3}.
	c := New(Config{
		ID:            1,
		Members:       []types.NodeID{1, 2, 3},
		ElectionTicks: 1,
		Jitter:        func() int { return 0 },
	}, HardState{Term: 1}, Snapshot{},
		[]LogEntry{{Term: 1, Kind: EntryConfig, Members: []types.NodeID{1, 2, 3, 4, 5}}})

	// The timeout canvasses all four peers of the NEW config, term-neutrally.
	c.Tick()
	preReq := func(to types.NodeID) Message {
		return Message{Type: MsgPreVoteRequest, From: 1, To: to, Term: 2, LastLogIndex: 1, LastLogTerm: 1}
	}
	assertReady(t, c.TakeReady(), Ready{
		Messages: []Message{preReq(2), preReq(3), preReq(4), preReq(5)},
	})

	// Two grants (self + S2) are a majority of the old {1,2,3} but NOT of
	// the effective {1..5}: no escalation.
	c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 2, Granted: true})
	assertReady(t, c.TakeReady(), Ready{})
	if c.Role() != PreCandidate {
		t.Fatalf("escalated on a stale-config majority (role %s)", c.Role())
	}

	// The third grant reaches a majority of the new config: the real
	// election persists term+ballot before any vote request leaves.
	c.Step(Message{Type: MsgPreVoteResponse, From: 3, To: 1, Term: 2, Granted: true})
	voteReq := func(to types.NodeID) Message {
		return Message{Type: MsgVoteRequest, From: 1, To: to, Term: 2, LastLogIndex: 1, LastLogTerm: 1}
	}
	assertReady(t, c.TakeReady(), Ready{
		HardState: &HardState{Term: 2, VotedFor: 1},
		Messages:  []Message{voteReq(2), voteReq(3), voteReq(4), voteReq(5)},
	})
	want := Counters{PreVoteRounds: 1, PreVotesWon: 1, Elections: 1}
	if got := c.Counters(); got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
}

// TestGoldenStickyFollower pins stickiness against REAL vote requests: a
// follower with fresh leader contact ignores a disruptive higher-term
// campaign outright (no term bump, no response), but a Transfer-flagged
// request — the old leader's deliberate handoff — goes straight through.
func TestGoldenStickyFollower(t *testing.T) {
	f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1}, nil)
	f.Step(Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 1, Seq: 1})
	f.TakeReady()

	// A rejoining node's campaign: dead silence.
	f.Step(Message{Type: MsgVoteRequest, From: 3, To: 2, Term: 2})
	assertReady(t, f.TakeReady(), Ready{})
	if f.Term() != 1 {
		t.Fatalf("sticky follower bumped its term to %d", f.Term())
	}

	// The same request under a transfer bypasses stickiness entirely.
	f.Step(Message{Type: MsgVoteRequest, From: 3, To: 2, Term: 2, Transfer: true})
	assertReady(t, f.TakeReady(), Ready{
		HardState: &HardState{Term: 2, VotedFor: 3},
		Messages:  []Message{{Type: MsgVoteResponse, From: 2, To: 3, Term: 2, Granted: true}},
	})
}

// TestGoldenCheckQuorumStepDown pins the step-down effect: a leader that
// hears from no quorum within an election interval (after one interval of
// grace for never-seen peers) drops to follower in the SAME term, latching
// Ready.SteppedDown for the driver — no HardState change, since nothing
// durable moved.
func TestGoldenCheckQuorumStepDown(t *testing.T) {
	c := leader3(t) // ElectionTicks = 1: every tick is a quorum check

	// First check seeds the never-heard peers (grace): still leader. The
	// tick's heartbeat goes out first.
	c.Tick()
	hb := func(to types.NodeID, seq uint64) Message {
		return Message{Type: MsgAppendEntries, From: 1, To: to, Term: 1,
			PrevLogIndex: 1, PrevLogTerm: 1, Entries: []LogEntry{}, Seq: seq}
	}
	assertReady(t, c.TakeReady(), Ready{Messages: []Message{hb(2, 3), hb(3, 4)}})
	if c.Role() != Leader {
		t.Fatalf("stepped down inside the grace interval (role %s)", c.Role())
	}

	// Grace expired with total silence: the next check steps down.
	c.Tick()
	assertReady(t, c.TakeReady(), Ready{
		Messages:    []Message{hb(2, 5), hb(3, 6)},
		SteppedDown: true,
	})
	if c.Role() != Follower || c.Leader() != types.NoNode {
		t.Fatalf("after step-down: role %s, leader %s", c.Role(), c.Leader())
	}
	if got := c.Counters().StepDowns; got != 1 {
		t.Fatalf("StepDowns = %d, want 1", got)
	}
}

// TestGoldenCheckQuorumKeepAlive is the contact-path counterpart: a leader
// whose followers keep acking never steps down. (ElectionTicks = 2: with a
// 1-tick interval no ack can land inside the contact window.)
func TestGoldenCheckQuorumKeepAlive(t *testing.T) {
	c := New(Config{
		ID:            1,
		Members:       []types.NodeID{1, 2, 3},
		ElectionTicks: 2,
		Jitter:        func() int { return 0 },
	}, HardState{}, Snapshot{}, nil)
	c.Tick()
	c.Tick() // timeout → pre-vote round
	c.Step(Message{Type: MsgPreVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	c.Step(Message{Type: MsgVoteResponse, From: 2, To: 1, Term: 1, Granted: true})
	if c.Role() != Leader {
		t.Fatalf("bootstrap failed (role %s)", c.Role())
	}
	c.TakeReady()
	for i := 0; i < 8; i++ {
		c.Tick()
		if rd := c.TakeReady(); rd.SteppedDown {
			t.Fatalf("tick %d: stepped down despite live followers", i)
		}
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
		c.Step(Message{Type: MsgAppendResponse, From: 3, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 2})
		c.TakeReady()
	}
	if c.Role() != Leader {
		t.Fatalf("role = %s, want Leader", c.Role())
	}
	if got := c.Counters().StepDowns; got != 0 {
		t.Fatalf("StepDowns = %d, want 0", got)
	}
}

// TestGoldenTransferHandoff pins the happy path end to end: proposals
// pause, a laggard target is caught up first, the ack at the full log
// triggers MsgTimeoutNow, and the target's Transfer-flagged vote request
// completes the handoff at the old leader without counting as an abort.
func TestGoldenTransferHandoff(t *testing.T) {
	t.Run("caught-up target gets TimeoutNow immediately", func(t *testing.T) {
		c := leader3(t)
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
		c.TakeReady() // commits the no-op
		// NoNode auto-picks the most caught-up voter: S2.
		if err := c.TransferLeader(types.NoNode); err != nil {
			t.Fatal(err)
		}
		assertReady(t, c.TakeReady(), Ready{
			Messages: []Message{{Type: MsgTimeoutNow, From: 1, To: 2, Term: 1}},
		})
		if got := c.TransferTarget(); got != 2 {
			t.Fatalf("TransferTarget = %s, want S2", got)
		}
	})

	t.Run("laggard target is caught up, ack triggers the handoff", func(t *testing.T) {
		c := leader3(t)
		if _, _, err := c.Propose([]byte("a")); err != nil {
			t.Fatal(err)
		}
		c.TakeReady() // drain the broadcast (seq 3, 4); lastIndex = 2
		if err := c.TransferLeader(2); err != nil {
			t.Fatal(err)
		}
		// The target's pipelined nextIndex already covers the log: the
		// catch-up probe is an empty append awaiting its ack.
		assertReady(t, c.TakeReady(), Ready{
			Messages: []Message{{Type: MsgAppendEntries, From: 1, To: 2, Term: 1,
				PrevLogIndex: 2, PrevLogTerm: 1, Entries: []LogEntry{}, Seq: 5}},
		})

		// Proposals pause while the handoff is in flight.
		if _, _, err := c.Propose([]byte("b")); !errors.Is(err, ErrTransferInProgress) {
			t.Fatalf("Propose during transfer: %v, want ErrTransferInProgress", err)
		}
		if _, _, err := c.ProposeConfig(types.NewNodeSet(1, 2)); !errors.Is(err, ErrTransferInProgress) {
			t.Fatalf("ProposeConfig during transfer: %v, want ErrTransferInProgress", err)
		}

		// The ack that shows the target holding the whole log triggers
		// TimeoutNow (and, being a quorum ack, commits indexes 1-2).
		c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 2, Seq: 3})
		assertReady(t, c.TakeReady(), Ready{
			Messages: []Message{{Type: MsgTimeoutNow, From: 1, To: 2, Term: 1}},
			Committed: []ApplyMsg{
				{Index: 1, Term: 1, Kind: EntryNoOp},
				{Index: 2, Term: 1, Kind: EntryCommand, Command: []byte("a")},
			},
		})

		// The target's transfer campaign reaches the old leader: the
		// Transfer flag from the expected target resolves the handoff as a
		// SUCCESS (no abort tally), and the old leader votes for it.
		c.Step(Message{Type: MsgVoteRequest, From: 2, To: 1, Term: 2, Transfer: true, LastLogIndex: 2, LastLogTerm: 1})
		assertReady(t, c.TakeReady(), Ready{
			HardState: &HardState{Term: 2, VotedFor: 2},
			Messages:  []Message{{Type: MsgVoteResponse, From: 1, To: 2, Term: 2, Granted: true}},
		})
		ctr := c.Counters()
		if ctr.TransfersStarted != 1 || ctr.TransfersAborted != 0 {
			t.Fatalf("transfers started/aborted = %d/%d, want 1/0", ctr.TransfersStarted, ctr.TransfersAborted)
		}
	})
}

// TestGoldenTransferAbort pins the two abort paths — deadline expiry and
// deposition — plus the argument checks.
func TestGoldenTransferAbort(t *testing.T) {
	t.Run("deadline expiry resumes proposals", func(t *testing.T) {
		c := leader3(t) // ElectionTicks = 1: the transfer gets one tick
		if err := c.TransferLeader(2); err != nil {
			t.Fatal(err)
		}
		c.TakeReady()
		c.Tick() // deadline passes with no ack from the target
		c.TakeReady()
		if got := c.TransferTarget(); got != types.NoNode {
			t.Fatalf("transfer still pending at %s after the deadline", got)
		}
		if _, _, err := c.Propose([]byte("x")); err != nil {
			t.Fatalf("Propose after abort: %v", err)
		}
		ctr := c.Counters()
		if ctr.TransfersStarted != 1 || ctr.TransfersAborted != 1 {
			t.Fatalf("transfers started/aborted = %d/%d, want 1/1", ctr.TransfersStarted, ctr.TransfersAborted)
		}
	})

	t.Run("deposition cancels the transfer", func(t *testing.T) {
		c := leader3(t)
		if err := c.TransferLeader(2); err != nil {
			t.Fatal(err)
		}
		c.TakeReady()
		// A NEW leader's append at a higher term folds us — and kills the
		// transfer with it.
		c.Step(Message{Type: MsgAppendEntries, From: 3, To: 1, Term: 2, Seq: 1})
		c.TakeReady()
		if got := c.TransferTarget(); got != types.NoNode {
			t.Fatalf("transfer survived deposition (target %s)", got)
		}
		if got := c.Counters().TransfersAborted; got != 1 {
			t.Fatalf("TransfersAborted = %d, want 1", got)
		}
	})

	t.Run("argument checks", func(t *testing.T) {
		c := leader3(t)
		if err := c.TransferLeader(9); !errors.Is(err, ErrBadTransferTarget) {
			t.Fatalf("transfer to a non-member: %v, want ErrBadTransferTarget", err)
		}
		if err := c.TransferLeader(1); err != nil || c.TransferTarget() != types.NoNode {
			t.Fatalf("transfer to self: err %v, target %s (want nil no-op)", err, c.TransferTarget())
		}
		f := follower(2, []types.NodeID{1, 2, 3}, HardState{}, nil)
		if err := f.TransferLeader(1); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("transfer at a follower: %v, want ErrNotLeader", err)
		}
	})
}

// TestGoldenTimeoutNowTarget pins the receiving side: a current-term
// MsgTimeoutNow makes even a sticky follower campaign immediately — real
// election, no pre-vote — with Transfer-flagged requests; stale ones and
// removed nodes ignore it.
func TestGoldenTimeoutNowTarget(t *testing.T) {
	f := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 2}, nil)
	f.Step(Message{Type: MsgAppendEntries, From: 1, To: 2, Term: 2, Seq: 1})
	f.TakeReady() // sticky from here

	// A stale handoff (the old leader's term already passed) is a no-op.
	f.Step(Message{Type: MsgTimeoutNow, From: 1, To: 2, Term: 1})
	assertReady(t, f.TakeReady(), Ready{})

	f.Step(Message{Type: MsgTimeoutNow, From: 1, To: 2, Term: 2})
	voteReq := func(to types.NodeID) Message {
		return Message{Type: MsgVoteRequest, From: 2, To: to, Term: 3, Transfer: true}
	}
	assertReady(t, f.TakeReady(), Ready{
		HardState: &HardState{Term: 3, VotedFor: 2},
		Messages:  []Message{voteReq(1), voteReq(3)},
	})
	ctr := f.Counters()
	if ctr.TransferElections != 1 || ctr.PreVoteRounds != 0 {
		t.Fatalf("transfer elections/pre-vote rounds = %d/%d, want 1/0", ctr.TransferElections, ctr.PreVoteRounds)
	}

	// A node outside its own effective configuration never campaigns, even
	// when told to.
	out := follower(2, []types.NodeID{1, 2, 3}, HardState{Term: 1},
		[]LogEntry{{Term: 1, Kind: EntryConfig, Members: []types.NodeID{1, 3}}})
	out.Step(Message{Type: MsgTimeoutNow, From: 1, To: 2, Term: 1})
	assertReady(t, out.TakeReady(), Ready{})
}

// TestGoldenPickTransferTarget pins target selection: most caught-up wins,
// the chooser itself and non-members are excluded, and only a leader picks.
func TestGoldenPickTransferTarget(t *testing.T) {
	c := leader3(t)
	c.Step(Message{Type: MsgAppendResponse, From: 2, To: 1, Term: 1, Success: true, MatchIndex: 1, Seq: 1})
	c.TakeReady()
	if got := c.PickTransferTarget(types.NewNodeSet(2, 3)); got != 2 {
		t.Fatalf("pick of {2,3} = %s, want the caught-up S2", got)
	}
	if got := c.PickTransferTarget(types.NewNodeSet(3)); got != 3 {
		t.Fatalf("pick of {3} = %s, want S3", got)
	}
	if got := c.PickTransferTarget(types.NewNodeSet(1)); got != types.NoNode {
		t.Fatalf("pick of {self} = %s, want NoNode", got)
	}
	if got := c.PickTransferTarget(types.NewNodeSet(9)); got != types.NoNode {
		t.Fatalf("pick of a non-member = %s, want NoNode", got)
	}
	f := follower(2, []types.NodeID{1, 2, 3}, HardState{}, nil)
	if got := f.PickTransferTarget(types.NewNodeSet(1, 3)); got != types.NoNode {
		t.Fatalf("pick at a follower = %s, want NoNode", got)
	}
}
