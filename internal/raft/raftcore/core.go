package raftcore

import (
	"errors"
	"fmt"

	"adore/internal/config"
	"adore/internal/types"
)

// Errors returned by the client-facing API. The runtime driver (package
// raft) re-exports them unchanged.
var (
	// ErrNotLeader reports that the node cannot serve the request; the
	// caller should retry against the current leader.
	ErrNotLeader = errors.New("raft: not the leader")
	// ErrReconfigPending rejects a membership change while another is
	// uncommitted (R2).
	ErrReconfigPending = errors.New("raft: a configuration change is already in progress (R2)")
	// ErrReconfigNotReady rejects a membership change before the leader
	// has committed an entry in its current term (R3).
	ErrReconfigNotReady = errors.New("raft: no committed entry in the current term yet (R3)")
	// ErrBadMembership rejects changes that are not single-node (R1) or
	// would empty the cluster.
	ErrBadMembership = errors.New("raft: invalid membership change (R1)")
	// ErrLeaderStepdown reports that the leader relinquished leadership
	// because CheckQuorum saw no quorum contact for an election interval.
	// Retryable: the proposal may or may not commit (a Maybe outcome) and
	// the caller should re-probe for the next leader immediately.
	ErrLeaderStepdown = errors.New("raft: leader stepped down (no quorum contact)")
	// ErrTransferInProgress rejects proposals while a leadership transfer
	// is pausing the log; retry once the handoff resolves.
	ErrTransferInProgress = errors.New("raft: leadership transfer in progress")
	// ErrBadTransferTarget rejects a transfer to a node outside the
	// effective configuration (or with no eligible target at all).
	ErrBadTransferTarget = errors.New("raft: no eligible leadership-transfer target")
)

// Config parameterizes a Core. Time is abstract: the caller advances the
// core with Tick calls, and all intervals are counted in those ticks.
type Config struct {
	// ID is this node's identity; Members the initial cluster.
	ID      types.NodeID
	Members []types.NodeID

	// ElectionTicks is the minimum number of ticks without leader contact
	// before a node campaigns; each timer arm adds Jitter() extra ticks.
	// Zero gets a default of 10.
	ElectionTicks int

	// Jitter supplies the randomized share of each election timeout, in
	// ticks. The core itself contains no randomness — the caller owns the
	// seed (the runtime driver closes over a seeded rand; the simulator
	// hands out deterministic values). Nil means no jitter.
	Jitter func() int

	// HeartbeatTicks is the leader's broadcast cadence in ticks. Zero
	// gets a default of 1 (broadcast every tick).
	HeartbeatTicks int

	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message. The leader streams a lagging follower's log as a pipeline
	// of bounded windows (advancing nextIndex optimistically per send)
	// instead of re-sending the full suffix stop-and-wait. Zero gets a
	// default of 256.
	MaxEntriesPerAppend int

	// SnapshotThreshold is the compaction policy: once at least this many
	// applied entries sit above the snapshot base, TakeReady emits a
	// TakeSnapshot effect asking the application to capture a
	// state-machine image (answered via Compact). Zero disables local
	// snapshotting; the node still accepts InstallSnapshot from leaders.
	SnapshotThreshold int

	// MaxSnapshotChunk caps the snapshot-image bytes carried by one
	// InstallSnapshot message. Zero gets a default of 64 KiB.
	MaxSnapshotChunk int

	// DisableR3 reproduces the published single-server bug: reconfig no
	// longer waits for a committed entry in the leader's current term.
	// For experiments only.
	DisableR3 bool

	// DisableR2 drops the "no uncommitted configuration entry" guard, so
	// a second membership change can be proposed while the first is still
	// in flight. Disjoint quorums become reachable — the chaos harness
	// uses this to prove it can catch the resulting divergence. For
	// experiments only.
	DisableR2 bool

	// DisablePreVote skips the term-neutral pre-election: a timed-out
	// node increments its term and campaigns directly, so a partitioned
	// node rejoins with an inflated term and deposes a healthy leader.
	// The chaos harness uses this to prove its disruption oracle bites.
	// For experiments only.
	DisablePreVote bool

	// DisableCheckQuorum keeps a leader that cannot reach a quorum in
	// the Leader role indefinitely (it silently stalls on the minority
	// side of a partition instead of stepping down and failing in-flight
	// proposals with a retryable error). For experiments only.
	DisableCheckQuorum bool

	// DisableLeaseRead turns off the leader-lease fast read path: every
	// LeaseRead reports no lease, so reads always pay a ReadIndex quorum
	// round. The lease rests on the same bounded-asymmetry assumption as
	// CheckQuorum and follower stickiness (all three count the same
	// election-interval clock in the same tick units); deployments that
	// distrust it can disable leases alone without losing ReadIndex.
	DisableLeaseRead bool

	// DisableLeaseGuard drops the lease invalidations that protect reads
	// across leadership transfer (MsgTimeoutNow elects a successor without
	// waiting out any timeout) and in-flight reconfiguration (the quorum
	// the lease counted may not intersect the new configuration's — the
	// Schultz-style hazard). With the guard off a deposed leader can keep
	// serving a stale lease; the chaos harness uses this to prove its
	// stale-read oracle bites. For experiments only.
	DisableLeaseGuard bool
}

func (c *Config) defaults() {
	if c.ElectionTicks <= 0 {
		c.ElectionTicks = 10
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 1
	}
	if c.MaxEntriesPerAppend <= 0 {
		c.MaxEntriesPerAppend = 256
	}
	if c.MaxSnapshotChunk <= 0 {
		c.MaxSnapshotChunk = 64 << 10
	}
}

// Core is the pure raft state machine. It is not safe for concurrent use:
// the caller serializes Step/Tick/Propose/... and executes each TakeReady
// batch (persist, then send/apply) before externalizing anything.
type Core struct {
	id  types.NodeID
	cfg Config

	term     types.Time
	votedFor types.NodeID
	role     Role
	leader   types.NodeID // last known leader

	// The log is compacted: entries [1, snapIndex] are summarized by a
	// snapshot and only the suffix is held. log[0] is a sentinel carrying
	// the base term, so absolute index i lives at log[i-snapIndex] and
	// the first retained entry is snapIndex+1. A fresh node has
	// snapIndex 0 and the classic 1-indexed log.
	log         []LogEntry
	snapIndex   int
	snapTerm    types.Time
	snapMembers []types.NodeID // effective membership at snapIndex (nil = conf0)
	snapData    []byte         // latest snapshot image, kept to catch up laggards
	commitIndex int
	lastApplied int

	// Leader volatile state.
	nextIndex  map[types.NodeID]int
	matchIndex map[types.NodeID]int
	votes      types.NodeSet // vote or pre-vote tally (role disambiguates)
	// snapSent records, per peer, the tick of the last snapshot transfer,
	// pacing resends to one per election interval.
	snapSent map[types.NodeID]int64
	// peerActive records, per peer, the tick of the last current-term
	// response; CheckQuorum steps the leader down when a majority of the
	// configuration has been silent for an election interval.
	peerActive    map[types.NodeID]int64
	quorumElapsed int
	// ackTick records, per peer, the tick of the last current-term append
	// response — the lease clock. Unlike peerActive it is never grace-
	// seeded (CheckQuorum's benefit-of-the-doubt for unheard peers would
	// fabricate the very freshness a lease must prove), so a lease is
	// granted only on quorum acks actually observed.
	ackTick map[types.NodeID]int64
	// termStart is the index of this leader's term-opening no-op: the
	// floor for every read barrier (see readFloor).
	termStart int
	// transferTarget, while non-zero, is the peer an in-flight leadership
	// transfer is handing off to; proposals pause until the handoff
	// completes or transferDeadline passes.
	transferTarget   types.NodeID
	transferDeadline int64

	// conf0 is the initial membership; the effective membership is the
	// latest config entry in the log (hot reconfiguration), falling back
	// to the snapshot's membership once config entries are compacted.
	conf0 types.NodeSet
	// confIdxs caches the absolute positions of EntryConfig entries in
	// the retained log, in ascending order, so membership lookups cost
	// O(#configs) instead of a backward scan over the whole log. Every
	// log append/truncation/compaction keeps it in sync.
	confIdxs []int

	// Logical clock: electionElapsed ticks since the last timer arm,
	// against a timeout of ElectionTicks + the jitter drawn at arm time.
	// ticks counts every Tick since boot (snapshot resend pacing).
	// leaderContact is the tick of the last accepted append/install from
	// the current-term leader; a follower with contact fresher than an
	// election interval is "sticky" and refuses disruptive (pre-)votes.
	electionElapsed  int
	electionTimeout  int
	heartbeatElapsed int
	ticks            int64
	leaderContact    int64

	// pendingReads are ReadIndex barriers awaiting quorum confirmation.
	pendingReads []*pendingRead

	// appendSeq numbers outgoing AppendEntries; followers echo it in
	// their responses so barriers can tell fresh acks from stale
	// in-flight ones.
	appendSeq uint64

	// inSnap is the in-progress inbound snapshot transfer (follower side).
	inSnap *inboundSnap
	// snapRequested is set while a TakeSnapshot effect is outstanding, so
	// the policy fires once per threshold crossing.
	snapRequested bool

	// Pending effects, drained by TakeReady.
	hsDirty    bool        // term/votedFor changed since last TakeReady
	dirtyFrom  int         // lowest absolute log index changed since last TakeReady (0 = clean)
	msgs       []Message   // outbound, in generation order
	readStates []ReadState // resolved ReadIndex barriers
	// pendingSnap is a snapshot awaiting durable persistence in the next
	// Ready; pendingRestore marks it leader-installed (the driver must
	// restore the state machine from it).
	pendingSnap    *Snapshot
	pendingRestore bool
	// steppedDown latches a CheckQuorum step-down for the next Ready.
	steppedDown bool

	// metrics
	ctr Counters
}

// pendingRead is one ReadIndex barrier: the read floor captured at
// request time, the leadership confirmations gathered since, and every
// waiter sharing the barrier — local request ids (resolved as ReadStates)
// and forwarded follower reads (answered with MsgReadIndexResponse).
type pendingRead struct {
	reqIDs  []uint64
	remotes []readOrigin
	index   int
	term    types.Time
	seq     uint64 // only acks echoing a seq beyond this confirm the barrier
	acks    types.NodeSet
}

// readOrigin identifies a forwarded read waiting at a follower: the node
// to answer and the ReadCtx it keyed its local waiter under.
type readOrigin struct {
	node types.NodeID
	ctx  uint64
}

// inboundSnap reassembles one chunked snapshot transfer on the follower.
type inboundSnap struct {
	index   int
	term    types.Time
	members []types.NodeID
	total   int
	buf     []byte
}

// New builds a core from a configuration and recovered durable state: hs,
// the snapshot base (zero Index when none), and the retained log suffix —
// entries holds the entries after snap.Index, without any sentinel, as
// returned by the driver's storage Load.
func New(cfg Config, hs HardState, snap Snapshot, entries []LogEntry) *Core {
	cfg.defaults()
	log := make([]LogEntry, 1, len(entries)+1)
	log[0] = LogEntry{Term: snap.Term} // sentinel carries the base term
	log = append(log, entries...)
	c := &Core{
		id:          cfg.ID,
		cfg:         cfg,
		role:        Follower,
		term:        hs.Term,
		votedFor:    hs.VotedFor,
		log:         log,
		snapIndex:   snap.Index,
		snapTerm:    snap.Term,
		snapMembers: snap.Members,
		snapData:    snap.Data,
		commitIndex: snap.Index, // everything a snapshot covers was committed
		lastApplied: snap.Index, // the driver restores the SM from the image
		conf0:       types.NewNodeSet(cfg.Members...),
	}
	// Seed the config-index cache from the recovered suffix (one scan,
	// here only; afterwards every append/truncation maintains it).
	for i := 1; i < len(log); i++ { // 0 is the sentinel
		if log[i].Kind == EntryConfig {
			c.confIdxs = append(c.confIdxs, snap.Index+i)
		}
	}
	c.resetElectionTimer()
	return c
}

// --- Accessors (all cheap; the caller holds whatever lock guards the core) ---

// ID returns the node's identity.
func (c *Core) ID() types.NodeID { return c.id }

// Term returns the current term.
func (c *Core) Term() types.Time { return c.term }

// Role returns the current protocol role.
func (c *Core) Role() Role { return c.role }

// Leader returns the last known leader (possibly NoNode).
func (c *Core) Leader() types.NodeID { return c.leader }

// CommitIndex returns the commit index.
func (c *Core) CommitIndex() int { return c.commitIndex }

// LastIndex returns the absolute index of the last log entry (0 when the
// log is empty and nothing was ever compacted).
func (c *Core) LastIndex() int { return c.lastIndex() }

// FirstIndex returns the absolute index of the first retained log entry,
// snapIndex+1: entries below it live only in the snapshot.
func (c *Core) FirstIndex() int { return c.snapIndex + 1 }

// SnapshotIndex returns the snapshot base index (0 = no snapshot).
func (c *Core) SnapshotIndex() int { return c.snapIndex }

// SnapshotTerm returns the term of the entry at the snapshot base.
func (c *Core) SnapshotTerm() types.Time { return c.snapTerm }

// Entry returns the log entry at absolute index i, which must be in
// [FirstIndex, LastIndex]. The returned value shares the underlying
// command/member slices; callers must not mutate.
func (c *Core) Entry(i int) LogEntry { return c.entryAt(i) }

// Elections returns how many elections this node has started (metrics).
func (c *Core) Elections() uint64 { return c.ctr.Elections }

// Counters returns the election-disruption metrics (monotone).
func (c *Core) Counters() Counters { return c.ctr }

// TransferTarget returns the peer an in-flight leadership transfer is
// handing off to (NoNode when no transfer is pending).
func (c *Core) TransferTarget() types.NodeID { return c.transferTarget }

func (c *Core) lastIndex() int { return c.snapIndex + len(c.log) - 1 }

func (c *Core) entryAt(i int) LogEntry { return c.log[i-c.snapIndex] }

// termAt returns the term at absolute index i, valid for
// i in [snapIndex, lastIndex] (the sentinel holds the base term).
func (c *Core) termAt(i int) types.Time { return c.log[i-c.snapIndex].Term }

// baseMembers is the membership at the snapshot base (conf0 when nothing
// was ever compacted or the snapshot predates any reconfiguration).
func (c *Core) baseMembers() types.NodeSet {
	if c.snapMembers != nil {
		return types.NewNodeSet(c.snapMembers...)
	}
	return c.conf0
}

// Members returns the current effective membership (the latest
// configuration in the log, committed or not — hot reconfiguration).
func (c *Core) Members() types.NodeSet {
	if k := len(c.confIdxs); k > 0 {
		return types.NewNodeSet(c.entryAt(c.confIdxs[k-1]).Members...)
	}
	return c.baseMembers()
}

// CommittedMembers is the membership ignoring uncommitted config entries
// (used for R2 checks and diagnostics).
func (c *Core) CommittedMembers() types.NodeSet {
	for i := len(c.confIdxs) - 1; i >= 0; i-- {
		if c.confIdxs[i] <= c.commitIndex {
			return types.NewNodeSet(c.entryAt(c.confIdxs[i]).Members...)
		}
	}
	return c.baseMembers()
}

// membersAt returns a copy of the effective membership at absolute index
// idx, which must be committed (compaction only covers committed
// prefixes, so every config at or below idx is final).
func (c *Core) membersAt(idx int) []types.NodeID {
	for i := len(c.confIdxs) - 1; i >= 0; i-- {
		if c.confIdxs[i] <= idx {
			return copyIDs(c.entryAt(c.confIdxs[i]).Members)
		}
	}
	if c.snapMembers != nil {
		return copyIDs(c.snapMembers)
	}
	return c.conf0.Slice()
}

// copyIDs returns a fresh copy of a member list.
func copyIDs(src []types.NodeID) []types.NodeID {
	out := make([]types.NodeID, len(src))
	copy(out, src)
	return out
}

// --- Effect bookkeeping ---

func (c *Core) markHardState() { c.hsDirty = true }

func (c *Core) markEntries(from int) {
	if c.dirtyFrom == 0 || from < c.dirtyFrom {
		c.dirtyFrom = from
	}
}

func (c *Core) send(m Message) { c.msgs = append(c.msgs, m) }

// TakeReady drains the effects accumulated since the last call. The
// caller must persist HardState, Snapshot, and Entries before sending
// Messages, resolving ReadStates, or delivering Committed (see the Ready
// contract).
func (c *Core) TakeReady() Ready {
	var rd Ready
	if c.hsDirty {
		hs := HardState{Term: c.term, VotedFor: c.votedFor}
		rd.HardState = &hs
		c.hsDirty = false
	}
	if c.pendingSnap != nil {
		rd.Snapshot = c.pendingSnap
		rd.RestoreSnapshot = c.pendingRestore
		c.pendingSnap = nil
		c.pendingRestore = false
	}
	if c.dirtyFrom != 0 {
		rd.FirstIndex = c.dirtyFrom
		rd.Entries = make([]LogEntry, len(c.log)-(c.dirtyFrom-c.snapIndex))
		copy(rd.Entries, c.log[c.dirtyFrom-c.snapIndex:])
		c.dirtyFrom = 0
	}
	rd.Messages = c.msgs
	c.msgs = nil
	rd.ReadStates = c.readStates
	c.readStates = nil
	rd.SteppedDown = c.steppedDown
	c.steppedDown = false
	if c.lastApplied < c.commitIndex {
		rd.Committed = make([]ApplyMsg, 0, c.commitIndex-c.lastApplied)
		for c.lastApplied < c.commitIndex {
			c.lastApplied++
			e := c.entryAt(c.lastApplied)
			rd.Committed = append(rd.Committed, ApplyMsg{
				Index: c.lastApplied, Term: e.Term, Kind: e.Kind, Command: e.Command, Members: e.Members,
			})
		}
	}
	// Compaction policy: enough applied entries above the base ⇒ ask the
	// application for a state-machine image (once per crossing).
	if c.cfg.SnapshotThreshold > 0 && !c.snapRequested &&
		c.lastApplied-c.snapIndex >= c.cfg.SnapshotThreshold {
		c.snapRequested = true
		rd.TakeSnapshot = &SnapshotRequest{Index: c.lastApplied}
	}
	return rd
}

// --- Compaction ---

// Compact answers a TakeSnapshot request: data is the state machine's
// serialized image with everything through absolute index idx applied.
// The committed prefix [1, idx] is folded into the snapshot base and the
// in-memory log truncated to the suffix; the durable counterpart is the
// Snapshot carried by the next Ready (persist it before externalizing
// anything, which is what makes dropping the WAL prefix safe). Stale or
// out-of-range indexes are rejected with false.
func (c *Core) Compact(idx int, data []byte) bool {
	c.snapRequested = false
	if idx <= c.snapIndex || idx > c.lastApplied {
		return false
	}
	term := c.termAt(idx)
	members := c.membersAt(idx)
	suffix := c.log[idx-c.snapIndex:]
	log := make([]LogEntry, len(suffix))
	copy(log, suffix)
	log[0] = LogEntry{Term: term} // new sentinel for the new base
	c.log = log
	c.snapIndex, c.snapTerm = idx, term
	c.snapMembers = members
	c.snapData = data
	for len(c.confIdxs) > 0 && c.confIdxs[0] <= idx {
		c.confIdxs = c.confIdxs[1:]
	}
	// Dirty entries at or below the base are superseded by the snapshot
	// persist; only a surviving dirty suffix still needs a log write.
	if c.dirtyFrom != 0 && c.dirtyFrom <= idx {
		if idx < c.lastIndex() {
			c.dirtyFrom = idx + 1
		} else {
			c.dirtyFrom = 0
		}
	}
	c.pendingSnap = &Snapshot{Index: idx, Term: term, Members: members, Data: data}
	c.pendingRestore = false
	return true
}

// AbortSnapshot withdraws an outstanding TakeSnapshot request (the
// application could not produce an image); the policy re-fires on the
// next TakeReady whose applied distance still crosses the threshold.
func (c *Core) AbortSnapshot() { c.snapRequested = false }

// --- Clock ---

func (c *Core) resetElectionTimer() {
	c.electionElapsed = 0
	c.electionTimeout = c.cfg.ElectionTicks
	if c.cfg.Jitter != nil {
		c.electionTimeout += c.cfg.Jitter()
	}
}

// Tick advances the logical clock by one unit: leaders fire heartbeats on
// their cadence (and run the CheckQuorum and transfer-deadline timers),
// non-leaders count toward an election timeout.
func (c *Core) Tick() {
	c.ticks++
	if c.role == Leader {
		c.heartbeatElapsed++
		if c.heartbeatElapsed >= c.cfg.HeartbeatTicks {
			c.heartbeatElapsed = 0
			c.broadcastAppend()
		}
		// An unacknowledged transfer dies at its deadline: the target was
		// unreachable (or its campaign lost); resume serving proposals.
		if c.transferTarget != types.NoNode && c.ticks >= c.transferDeadline {
			c.cancelTransfer()
		}
		// CheckQuorum: every election interval, verify a majority of the
		// configuration responded within the last interval; a minority-
		// side leader steps down instead of stalling silently.
		if !c.cfg.DisableCheckQuorum {
			c.quorumElapsed++
			if c.quorumElapsed >= c.cfg.ElectionTicks {
				c.quorumElapsed = 0
				if !c.hasQuorumContact() {
					c.stepDown()
				}
			}
		}
		return
	}
	c.electionElapsed++
	if c.electionElapsed >= c.electionTimeout {
		// A node outside its own effective configuration must not
		// disrupt the cluster with elections (it has been removed).
		if !c.Members().Contains(c.id) {
			c.resetElectionTimer()
			return
		}
		if c.cfg.DisablePreVote {
			c.ctr.TimeoutElections++
			c.startElection(false)
			return
		}
		c.startPreVote()
	}
}

// hasQuorumContact reports whether a majority of the configuration
// (counting this leader) responded within the last election interval.
// A peer never heard from is granted one interval of grace from first
// check — covers both a fresh leadership and a just-added member.
func (c *Core) hasQuorumContact() bool {
	members := c.Members()
	count := 0
	for _, id := range members.Slice() {
		if id == c.id {
			count++
			continue
		}
		last, ok := c.peerActive[id]
		if !ok {
			c.peerActive[id] = c.ticks
			count++
			continue
		}
		if c.ticks-last < int64(c.cfg.ElectionTicks) {
			count++
		}
	}
	return config.MajorityCount(count, members)
}

// stepDown relinquishes leadership without a term change (CheckQuorum):
// pending reads abort, any transfer dies, and the driver learns of it via
// Ready.SteppedDown so in-flight proposals fail retryably.
func (c *Core) stepDown() {
	c.role = Follower
	c.leader = types.NoNode
	c.ctr.StepDowns++
	c.steppedDown = true
	c.abortReads()
	c.cancelTransfer()
	c.resetElectionTimer()
}

// --- Elections ---

// stickyLeader reports whether this follower heard from a current-term
// leader within the last election interval; while it did, disruptive
// (pre-)vote requests are refused so a healthy leader is not deposed.
func (c *Core) stickyLeader() bool {
	return c.role == Follower && c.leader != types.NoNode &&
		c.ticks-c.leaderContact < int64(c.cfg.ElectionTicks)
}

// startPreVote opens a term-neutral pre-election: canvass the effective
// configuration at term+1 without changing term or vote (nothing here
// needs persistence), and only campaign for real once a majority grants.
func (c *Core) startPreVote() {
	c.role = PreCandidate
	c.votes = types.NewNodeSet(c.id)
	c.ctr.PreVoteRounds++
	c.resetElectionTimer()
	lastIdx := c.lastIndex()
	req := Message{
		Type:         MsgPreVoteRequest,
		From:         c.id,
		Term:         c.term + 1,
		LastLogIndex: lastIdx,
		LastLogTerm:  c.termAt(lastIdx),
	}
	for _, to := range c.Members().Slice() {
		if to == c.id {
			continue
		}
		req.To = to
		c.send(req)
	}
	c.maybePreVoteWin()
}

// maybePreVoteWin escalates a pre-candidate with a majority of pre-vote
// grants (judged against the current, possibly mid-reconfig, config)
// into a real election.
func (c *Core) maybePreVoteWin() {
	if c.role != PreCandidate {
		return
	}
	if !config.Majority(c.votes, c.Members()) {
		return
	}
	c.ctr.PreVotesWon++
	c.startElection(false)
}

// startElection begins a candidacy for the next term. transfer marks a
// campaign the old leader opened deliberately (MsgTimeoutNow): its vote
// requests bypass follower stickiness.
func (c *Core) startElection(transfer bool) {
	c.term++
	c.role = Candidate
	c.votedFor = c.id
	c.markHardState()
	c.votes = types.NewNodeSet(c.id)
	c.ctr.Elections++
	c.resetElectionTimer()
	lastIdx := c.lastIndex()
	req := Message{
		Type:         MsgVoteRequest,
		From:         c.id,
		Term:         c.term,
		LastLogIndex: lastIdx,
		LastLogTerm:  c.termAt(lastIdx),
		Transfer:     transfer,
	}
	for _, to := range c.Members().Slice() {
		if to == c.id {
			continue
		}
		req.To = to
		c.send(req)
	}
	c.maybeWin()
}

// maybeWin promotes a candidate with a quorum of votes.
func (c *Core) maybeWin() {
	if c.role != Candidate {
		return
	}
	members := c.Members()
	if !config.Majority(c.votes, members) {
		return // not a strict majority
	}
	c.role = Leader
	c.leader = c.id
	c.heartbeatElapsed = 0
	c.quorumElapsed = 0
	c.nextIndex = make(map[types.NodeID]int)
	c.matchIndex = make(map[types.NodeID]int)
	c.snapSent = make(map[types.NodeID]int64)
	c.peerActive = make(map[types.NodeID]int64)
	c.ackTick = make(map[types.NodeID]int64)
	for _, id := range members.Slice() {
		c.nextIndex[id] = c.lastIndex() + 1
		c.matchIndex[id] = 0
	}
	c.matchIndex[c.id] = c.lastIndex()
	// Term-opening no-op: commits promptly in this term, satisfying both
	// the commitment rule and R3. Its index also floors every read in
	// this term (readFloor): it sits above everything any earlier term
	// could have committed.
	c.termStart = c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryNoOp})
	c.broadcastAppend()
}

// --- Client-facing operations ---

// errNotLeader builds the standard redirect error.
func (c *Core) errNotLeader() error {
	return fmt.Errorf("%w (known leader: %s)", ErrNotLeader, c.leader)
}

// TransferLeader starts a graceful leadership handoff to peer to (NoNode
// picks the most caught-up voter automatically): proposals pause, the
// target is brought fully up to date, and a MsgTimeoutNow tells it to
// campaign immediately — bypassing Pre-Vote and follower stickiness, so
// the handoff completes without a disruptive timeout election. The
// transfer aborts (and proposals resume) if the target does not take over
// within an election interval. Transferring to self is a no-op.
func (c *Core) TransferLeader(to types.NodeID) error {
	if c.role != Leader {
		return c.errNotLeader()
	}
	if c.transferTarget != types.NoNode {
		return ErrTransferInProgress
	}
	if to == types.NoNode {
		to = c.PickTransferTarget(c.Members())
	}
	if to == c.id {
		return nil
	}
	if to == types.NoNode || !c.Members().Contains(to) {
		return fmt.Errorf("%w: %s not in %s", ErrBadTransferTarget, to, c.Members())
	}
	c.transferTarget = to
	c.transferDeadline = c.ticks + int64(c.cfg.ElectionTicks)
	c.voidLeaseAcks()
	c.ctr.TransfersStarted++
	if c.matchIndex[to] >= c.lastIndex() {
		c.sendTimeoutNow(to)
	} else {
		c.sendAppend(to) // catch it up; the ack triggers the handoff
	}
	return nil
}

// PickTransferTarget returns the most caught-up eligible peer inside
// target ∩ Members(), excluding this node (NoNode when none exists).
// Reconfigurations that shed the leader pass the NEW configuration here,
// so leadership lands on a node that survives the change.
func (c *Core) PickTransferTarget(target types.NodeSet) types.NodeID {
	if c.role != Leader {
		return types.NoNode
	}
	best := types.NoNode
	bestMatch := -1
	members := c.Members()
	for _, id := range target.Slice() {
		if id == c.id || !members.Contains(id) {
			continue
		}
		if m := c.matchIndex[id]; m > bestMatch {
			best, bestMatch = id, m
		}
	}
	return best
}

// cancelTransfer abandons an in-flight transfer (deadline, step-down).
func (c *Core) cancelTransfer() {
	if c.transferTarget != types.NoNode {
		c.transferTarget = types.NoNode
		c.voidLeaseAcks()
		c.ctr.TransfersAborted++
	}
}

// voidLeaseAcks discards every banked lease ack. Called at both edges of
// a leadership transfer: the MsgTimeoutNow it launches stays live until
// consumed, and the election it triggers bypasses follower stickiness —
// so an ack observed before the transfer ended proves nothing about the
// voter's election timer. Only acks that postdate the transfer may re-arm
// the lease. The wipe is part of the lease guard (the teeth knob must be
// able to reintroduce the stale-lease bug it prevents).
func (c *Core) voidLeaseAcks() {
	if !c.cfg.DisableLeaseGuard {
		c.ackTick = make(map[types.NodeID]int64)
	}
}

func (c *Core) sendTimeoutNow(to types.NodeID) {
	c.send(Message{Type: MsgTimeoutNow, From: c.id, To: to, Term: c.term})
}

// Propose appends a client command at the leader. It returns the assigned
// log index and term, or ErrNotLeader.
func (c *Core) Propose(cmd []byte) (int, types.Time, error) {
	if c.role != Leader {
		return 0, 0, c.errNotLeader()
	}
	if c.transferTarget != types.NoNode {
		return 0, 0, ErrTransferInProgress
	}
	idx := c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryCommand, Command: cmd})
	c.broadcastAppend()
	return idx, c.term, nil
}

// ProposeBatch appends several client commands as one log suffix with a
// single broadcast — the group-commit path. It returns the index of the
// first command; command i landed at first+i.
func (c *Core) ProposeBatch(cmds [][]byte) (first int, term types.Time, err error) {
	if c.role != Leader {
		return 0, 0, c.errNotLeader()
	}
	if c.transferTarget != types.NoNode {
		return 0, 0, ErrTransferInProgress
	}
	first = c.lastIndex() + 1
	for _, cmd := range cmds {
		c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryCommand, Command: cmd})
	}
	c.broadcastAppend()
	return first, c.term, nil
}

// ProposeConfig appends a membership change at the leader, enforcing the
// paper's guards: the change must add or remove exactly one node (R1),
// no other configuration change may be in flight (R2), and — unless
// DisableR3 — the leader must have committed an entry in its current term
// (R3).
func (c *Core) ProposeConfig(members types.NodeSet) (int, types.Time, error) {
	if c.role != Leader {
		return 0, 0, c.errNotLeader()
	}
	if c.transferTarget != types.NoNode {
		return 0, 0, ErrTransferInProgress
	}
	cur := c.Members()
	if members.IsEmpty() {
		return 0, 0, fmt.Errorf("%w: empty membership", ErrBadMembership)
	}
	added := members.Diff(cur).Len()
	removed := cur.Diff(members).Len()
	if added+removed != 1 {
		return 0, 0, fmt.Errorf("%w: %s → %s changes %d nodes", ErrBadMembership, cur, members, added+removed)
	}
	// R2: no uncommitted config entry. Compacted configs are committed by
	// construction, so the cache (which survives compaction) is enough.
	if !c.cfg.DisableR2 {
		if k := len(c.confIdxs); k > 0 && c.confIdxs[k-1] > c.commitIndex {
			return 0, 0, ErrReconfigPending
		}
	}
	// R3: a committed entry with the current term. The scan stops at the
	// snapshot base; the base entry itself (term snapTerm) was committed,
	// so it can satisfy the guard when the suffix cannot.
	if !c.cfg.DisableR3 {
		ok := false
		for i := c.commitIndex; i > c.snapIndex; i-- {
			if c.termAt(i) == c.term {
				ok = true
				break
			}
			if c.termAt(i) < c.term {
				break
			}
		}
		if !ok && c.snapIndex > 0 && c.snapTerm == c.term {
			ok = true
		}
		if !ok {
			return 0, 0, ErrReconfigNotReady
		}
	}
	idx := c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryConfig, Members: members.Copy()})
	c.broadcastAppend()
	return idx, c.term, nil
}

// readFloor is the lowest index a linearizable read may be served at: the
// commit index, floored at the current term's opening no-op. A freshly
// elected leader's commit index can briefly trail entries the previous
// leader already committed; the no-op's index sits above every entry any
// earlier term could have committed, so waiting for apply to reach it
// closes the gap (the classic "no reads before the first commit of the
// term" rule, expressed as an index).
func (c *Core) readFloor() int {
	if c.termStart > c.commitIndex {
		return c.termStart
	}
	return c.commitIndex
}

// barrierFor returns the barrier a read registered now may ride, creating
// one when none qualifies (opened=true). Joining the newest pending
// barrier is safe exactly when no append has been sent since it
// registered (pr.seq still equals appendSeq): every ack able to confirm
// it then echoes a seq from a send that postdates this read. Joining a
// barrier whose round is already in flight would be UNSAFE — its quorum
// of acks could all have been generated before this read was invoked,
// proving nothing about leaders elected (and entries committed) since.
func (c *Core) barrierFor(idx int) (pr *pendingRead, opened bool) {
	if n := len(c.pendingReads); n > 0 {
		if pr := c.pendingReads[n-1]; pr.term == c.term && pr.seq == c.appendSeq {
			if idx > pr.index {
				pr.index = idx
			}
			c.ctr.ReadsCoalesced++
			return pr, false
		}
	}
	pr = &pendingRead{
		index: idx,
		term:  c.term,
		seq:   c.appendSeq, // acks must echo a later seq: stale in-flight responses don't confirm
		acks:  types.NewNodeSet(c.id),
	}
	c.pendingReads = append(c.pendingReads, pr)
	c.ctr.ReadBarriers++
	return pr, true
}

// openBarrier fires the confirmation round for a barrier fresh out of
// barrierFor, once its waiter is attached. Only the FIRST pending barrier
// opens a round of its own; one registered while another round is in
// flight accumulates waiters and rides the next broadcast (heartbeat or
// proposal) — that is what bounds the protocol to at most one
// read-triggered round per coalescing window under load.
func (c *Core) openBarrier() {
	if len(c.pendingReads) == 1 {
		c.broadcastAppend() // heartbeat doubles as the confirmation round
	}
}

// ReadIndex registers a linearizable-read barrier (the Raft ReadIndex
// optimization): the leader captures its read floor and confirms it is
// still the leader by collecting a round of quorum acknowledgements.
// Concurrent barriers coalesce — requests arriving before the next append
// round share one barrier and resolve on one quorum confirmation. If the
// quorum is immediately satisfied (single-node configurations) the
// confirmed index is returned with confirmed=true; otherwise the barrier
// resolves through a ReadState in a later Ready, keyed by reqID.
func (c *Core) ReadIndex(reqID uint64) (index int, confirmed bool, err error) {
	if c.role != Leader {
		return 0, false, c.errNotLeader()
	}
	idx := c.readFloor()
	// A single-node configuration is already a quorum of itself.
	if config.Majority(types.NewNodeSet(c.id), c.Members()) {
		return idx, true, nil
	}
	pr, opened := c.barrierFor(idx)
	pr.reqIDs = append(pr.reqIDs, reqID)
	if opened {
		c.openBarrier()
	}
	return 0, false, nil
}

// LeaseStatus probes the leader lease without serving a read: ok reports
// a currently valid lease and idx the floor a lease read would use. The
// lease holds while a strict quorum of the configuration (counting this
// leader) acked an append within the last election interval: under the
// same bounded-asymmetry assumption CheckQuorum and follower stickiness
// already make, none of those voters can have elected a successor yet —
// their election timers reset more recently than any timeout could have
// expired. Two hazards evade that clock and void the lease explicitly
// (unless DisableLeaseGuard): a leadership transfer, whose MsgTimeoutNow
// elects the target with no timeout wait at all, and an uncommitted
// configuration entry, whose new quorums need not intersect the set the
// lease was acked under.
func (c *Core) LeaseStatus() (idx int, ok bool) {
	if c.role != Leader || c.cfg.DisableLeaseRead {
		return 0, false
	}
	if !c.cfg.DisableLeaseGuard {
		if c.transferTarget != types.NoNode {
			return 0, false
		}
		if k := len(c.confIdxs); k > 0 && c.confIdxs[k-1] > c.commitIndex {
			return 0, false
		}
	}
	members := c.Members()
	count := 0
	for _, id := range members.Slice() {
		if id == c.id {
			count++
			continue
		}
		if last, acked := c.ackTick[id]; acked && c.ticks-last < int64(c.cfg.ElectionTicks) {
			count++
		}
	}
	if !config.MajorityCount(count, members) {
		return 0, false
	}
	return c.readFloor(), true
}

// LeaseRead serves one linearizable read from the leader lease: when the
// lease is valid the returned index is safe to read at as soon as the
// local state machine has applied through it — zero network rounds.
// ok=false means no lease; fall back to a ReadIndex barrier.
func (c *Core) LeaseRead() (idx int, ok bool) {
	idx, ok = c.LeaseStatus()
	if ok {
		c.ctr.LeaseReads++
	}
	return idx, ok
}

// ForwardReadIndex starts a follower-served read: the barrier is forwarded
// to the last known leader, whose MsgReadIndexResponse resolves here as a
// ReadState keyed by ctx. The caller then waits for the LOCAL apply index
// to reach the returned index and serves from its own state machine. On a
// node that is itself the leader the forward degenerates to a local lease
// read or barrier, resolving through the same ReadState path.
func (c *Core) ForwardReadIndex(ctx uint64) error {
	if c.role == Leader {
		if idx, ok := c.LeaseRead(); ok {
			c.readStates = append(c.readStates, ReadState{ReqID: ctx, Index: idx})
			return nil
		}
		idx, confirmed, err := c.ReadIndex(ctx)
		if err != nil {
			return err
		}
		if confirmed {
			c.readStates = append(c.readStates, ReadState{ReqID: ctx, Index: idx})
		}
		return nil
	}
	if c.leader == types.NoNode {
		return c.errNotLeader()
	}
	c.send(Message{Type: MsgReadIndexRequest, From: c.id, To: c.leader, Term: c.term, ReadCtx: ctx})
	return nil
}

// CancelRead abandons a pending barrier waiter (the caller timed out).
// The barrier itself stays pending for its remaining waiters.
func (c *Core) CancelRead(reqID uint64) {
	for _, pr := range c.pendingReads {
		for i, id := range pr.reqIDs {
			if id == reqID {
				pr.reqIDs = append(pr.reqIDs[:i], pr.reqIDs[i+1:]...)
				return
			}
		}
	}
}

// resolveRead delivers a barrier's outcome to every waiter sharing it:
// local request ids as ReadStates, forwarded follower reads as
// MsgReadIndexResponse. idx -1 aborts (the waiters retry).
func (c *Core) resolveRead(pr *pendingRead, idx int) {
	for _, id := range pr.reqIDs {
		c.readStates = append(c.readStates, ReadState{ReqID: id, Index: idx})
	}
	for _, o := range pr.remotes {
		m := Message{Type: MsgReadIndexResponse, From: c.id, To: o.node, Term: c.term, ReadCtx: o.ctx}
		if idx >= 0 {
			m.Success = true
			m.MatchIndex = idx
		}
		c.send(m)
	}
}

// confirmReads credits a leadership confirmation from a peer and resolves
// the barriers that reached a quorum. seq is the append sequence the peer
// echoed: only responses to appends sent after a barrier was registered
// count for it, so a response that was already in flight when the barrier
// (or a partition) arrived cannot confirm leadership.
func (c *Core) confirmReads(from types.NodeID, seq uint64) {
	if len(c.pendingReads) == 0 {
		return
	}
	members := c.Members()
	kept := c.pendingReads[:0]
	for _, pr := range c.pendingReads {
		if pr.term != c.term || c.role != Leader {
			c.resolveRead(pr, -1)
			continue
		}
		if seq > pr.seq {
			pr.acks = pr.acks.Add(from)
		}
		if config.Majority(pr.acks, members) {
			c.resolveRead(pr, pr.index)
			continue
		}
		kept = append(kept, pr)
	}
	c.pendingReads = kept
}

// abortReads aborts every pending barrier (leadership lost).
func (c *Core) abortReads() {
	for _, pr := range c.pendingReads {
		c.resolveRead(pr, -1)
	}
	c.pendingReads = nil
}

// onReadIndexRequest serves a follower's forwarded read barrier. A node
// that cannot serve it (not the leader, or a term mismatch either way)
// answers Success=false so the follower's waiter aborts and retries with
// a fresher leader hint. A valid lease answers immediately; otherwise the
// forward joins the same coalescing barriers local reads use.
func (c *Core) onReadIndexRequest(m Message) {
	if c.role != Leader || m.Term != c.term {
		c.send(Message{Type: MsgReadIndexResponse, From: c.id, To: m.From, Term: c.term, ReadCtx: m.ReadCtx})
		return
	}
	if idx, ok := c.LeaseRead(); ok {
		c.send(Message{
			Type: MsgReadIndexResponse, From: c.id, To: m.From, Term: c.term,
			ReadCtx: m.ReadCtx, Success: true, MatchIndex: idx,
		})
		return
	}
	idx := c.readFloor()
	if config.Majority(types.NewNodeSet(c.id), c.Members()) {
		c.send(Message{
			Type: MsgReadIndexResponse, From: c.id, To: m.From, Term: c.term,
			ReadCtx: m.ReadCtx, Success: true, MatchIndex: idx,
		})
		return
	}
	pr, opened := c.barrierFor(idx)
	pr.remotes = append(pr.remotes, readOrigin{node: m.From, ctx: m.ReadCtx})
	if opened {
		c.openBarrier()
	}
}

// onReadIndexResponse resolves a forwarded read on the follower that
// originated it, as a ReadState keyed by the echoed ReadCtx. Gating on
// Success alone (not the response term) is safe: the index the leader
// confirmed was backed by a quorum round or lease in ITS term, and quorum
// intersection means any newer leader's log contains everything committed
// at or below it — the follower still waits for its local apply to reach
// the index before serving. A ctx with no waiter (the caller timed out)
// resolves into a ReadState the driver ignores.
func (c *Core) onReadIndexResponse(m Message) {
	if !m.Success {
		c.readStates = append(c.readStates, ReadState{ReqID: m.ReadCtx, Index: -1})
		return
	}
	c.readStates = append(c.readStates, ReadState{ReqID: m.ReadCtx, Index: m.MatchIndex})
}

// --- Log maintenance ---

// appendAsLeader appends an entry at the leader and returns its index.
func (c *Core) appendAsLeader(e LogEntry) int {
	c.log = append(c.log, e)
	idx := c.lastIndex()
	c.trackConfig(idx, e)
	c.matchIndex[c.id] = idx
	c.markEntries(idx)
	return idx
}

// trackConfig records a freshly appended entry's position in the
// config-index cache. Call it for every log append.
func (c *Core) trackConfig(idx int, e LogEntry) {
	if e.Kind == EntryConfig {
		c.confIdxs = append(c.confIdxs, idx)
	}
}

// dropConfigsFrom evicts cached config positions at or above pos (the log
// is being truncated there).
func (c *Core) dropConfigsFrom(pos int) {
	for len(c.confIdxs) > 0 && c.confIdxs[len(c.confIdxs)-1] >= pos {
		c.confIdxs = c.confIdxs[:len(c.confIdxs)-1]
	}
}

// --- Replication ---

// broadcastAppend sends AppendEntries to every peer in the current
// configuration (and to peers being removed that still need the entry
// that removes them — they are reached while they remain in the effective
// membership union with the committed one).
func (c *Core) broadcastAppend() {
	if c.role != Leader {
		return
	}
	targets := c.Members().Union(c.CommittedMembers())
	for _, to := range targets.Slice() {
		if to == c.id {
			continue
		}
		c.sendAppend(to)
	}
	// A single-member configuration commits on its own append: there are
	// no responses to trigger the usual advance.
	c.advanceCommit()
}

func (c *Core) sendAppend(to types.NodeID) {
	next := c.nextIndex[to]
	if next <= c.snapIndex {
		// The follower needs entries we compacted away: catch it up with
		// the snapshot instead of the log.
		if c.snapIndex > 0 {
			c.sendSnapshot(to)
			return
		}
		next = 1
	}
	if next > c.lastIndex()+1 {
		next = c.lastIndex() + 1
	}
	prev := next - 1 // >= snapIndex: prev's term is known
	// Bound the window: a lagging follower is streamed in
	// MaxEntriesPerAppend-sized messages instead of one full-suffix
	// resend per round trip.
	end := c.lastIndex() + 1
	if lim := c.cfg.MaxEntriesPerAppend; lim > 0 && end-next > lim {
		end = next + lim
	}
	entries := make([]LogEntry, end-next)
	copy(entries, c.log[next-c.snapIndex:end-c.snapIndex])
	c.appendSeq++
	c.send(Message{
		Type:         MsgAppendEntries,
		From:         c.id,
		To:           to,
		Term:         c.term,
		PrevLogIndex: prev,
		PrevLogTerm:  c.termAt(prev),
		Entries:      entries,
		LeaderCommit: c.commitIndex,
		Seq:          c.appendSeq,
	})
	// Pipelining: advance nextIndex optimistically so the next flush tick
	// or heartbeat streams the following window without waiting for this
	// one's response. A rejection resets it via the follower's hint; a
	// lost window is recovered the same way when the next probe fails.
	if len(entries) > 0 {
		c.nextIndex[to] = end
	}
}

// sendSnapshot streams the snapshot image to a laggard follower as a
// burst of MaxSnapshotChunk-sized InstallSnapshot messages. The transfer
// is paced: at most one burst per election interval per peer, so a slow
// or unreachable follower is not flooded with full images on every
// heartbeat. nextIndex advances optimistically past the base; a rejection
// of the follow-up append hints the leader back here if the install was
// lost.
func (c *Core) sendSnapshot(to types.NodeID) {
	if last, ok := c.snapSent[to]; ok && c.ticks-last < int64(c.cfg.ElectionTicks) {
		return // a transfer is (likely) still in flight
	}
	c.snapSent[to] = c.ticks
	total := len(c.snapData)
	for off := 0; ; off += c.cfg.MaxSnapshotChunk {
		n := total - off
		if n > c.cfg.MaxSnapshotChunk {
			n = c.cfg.MaxSnapshotChunk
		}
		c.appendSeq++
		c.send(Message{
			Type:        MsgInstallSnapshot,
			From:        c.id,
			To:          to,
			Term:        c.term,
			SnapIndex:   c.snapIndex,
			SnapTerm:    c.snapTerm,
			SnapMembers: c.snapMembers,
			SnapOffset:  off,
			SnapTotal:   total,
			SnapData:    c.snapData[off : off+n],
			Seq:         c.appendSeq,
		})
		if off+n >= total {
			break
		}
	}
	c.nextIndex[to] = c.snapIndex + 1
}

// --- Message handling ---

// Step consumes one incoming message.
func (c *Core) Step(m Message) {
	if m.Term > c.term {
		// Higher terms usually fold us to a follower of that term — but
		// the Pre-Vote exchange is term-neutral by design, and a sticky
		// follower ignores a disruptive campaign outright.
		switch m.Type {
		case MsgPreVoteRequest:
			// A canvass, not a campaign: never adopt the proposed term.
		case MsgPreVoteResponse:
			if !m.Granted {
				// A rejection carries the voter's real (higher) term.
				c.adoptTerm(m.Term)
			}
			// A grant echoes the proposed term — not a real term.
		case MsgVoteRequest:
			if m.Transfer && m.From == c.transferTarget {
				c.transferTarget = types.NoNode // handoff landed, not an abort
				c.voidLeaseAcks()
			}
			if !m.Transfer && c.stickyLeader() {
				// Recent leader contact: ignore the disruptive campaign
				// entirely (no term bump, no response) so a rejoining
				// node cannot depose a healthy leader.
				return
			}
			c.adoptTerm(m.Term)
		default:
			c.adoptTerm(m.Term)
		}
	}
	switch m.Type {
	case MsgVoteRequest:
		c.onVoteRequest(m)
	case MsgVoteResponse:
		c.onVoteResponse(m)
	case MsgAppendEntries:
		c.onAppendEntries(m)
	case MsgAppendResponse:
		c.onAppendResponse(m)
	case MsgInstallSnapshot:
		c.onInstallSnapshot(m)
	case MsgPreVoteRequest:
		c.onPreVoteRequest(m)
	case MsgPreVoteResponse:
		c.onPreVoteResponse(m)
	case MsgTimeoutNow:
		c.onTimeoutNow(m)
	case MsgReadIndexRequest:
		c.onReadIndexRequest(m)
	case MsgReadIndexResponse:
		c.onReadIndexResponse(m)
	}
}

// adoptTerm folds the node to a follower of a higher term.
func (c *Core) adoptTerm(term types.Time) {
	c.term = term
	c.role = Follower
	c.votedFor = types.NoNode
	c.markHardState()
	c.abortReads()
	c.cancelTransfer()
	c.ctr.TermBumps++
}

func (c *Core) onVoteRequest(m Message) {
	granted := false
	if m.Term == c.term && (c.votedFor == types.NoNode || c.votedFor == m.From) {
		lastIdx := c.lastIndex()
		lastTerm := c.termAt(lastIdx)
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIdx)
		if upToDate {
			granted = true
			c.votedFor = m.From
			c.markHardState()
			c.resetElectionTimer()
		}
	}
	c.send(Message{
		Type: MsgVoteResponse, From: c.id, To: m.From, Term: c.term, Granted: granted,
	})
}

func (c *Core) onVoteResponse(m Message) {
	if c.role != Candidate || m.Term != c.term || !m.Granted {
		return
	}
	c.votes = c.votes.Add(m.From)
	c.maybeWin()
}

// onPreVoteRequest answers a term-neutral canvass: grant iff the proposed
// term beats ours, the candidate's log is up to date, and neither recent
// leader contact (stickiness) nor our own live leadership says the
// cluster already has a leader. Nothing here changes term or vote, so no
// persistence is needed before the response.
func (c *Core) onPreVoteRequest(m Message) {
	granted := false
	if m.Term > c.term && c.role != Leader && !c.stickyLeader() {
		lastIdx := c.lastIndex()
		lastTerm := c.termAt(lastIdx)
		granted = m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIdx)
	}
	term := c.term
	if granted {
		term = m.Term // echo the proposed term so the candidate can tally it
	}
	c.send(Message{
		Type: MsgPreVoteResponse, From: c.id, To: m.From, Term: term, Granted: granted,
	})
}

func (c *Core) onPreVoteResponse(m Message) {
	if c.role != PreCandidate || !m.Granted || m.Term != c.term+1 {
		return
	}
	c.votes = c.votes.Add(m.From)
	c.maybePreVoteWin()
}

// onTimeoutNow executes the old leader's handoff: campaign immediately at
// the next term, skipping Pre-Vote, with Transfer-flagged vote requests
// that bypass follower stickiness.
func (c *Core) onTimeoutNow(m Message) {
	if m.Term != c.term || c.role == Leader || !c.Members().Contains(c.id) {
		return
	}
	c.ctr.TransferElections++
	c.startElection(true)
}

func (c *Core) onAppendEntries(m Message) {
	success := false
	matchIdx := 0
	hint := 0
	if m.Term == c.term {
		c.role = Follower
		c.leader = m.From
		c.leaderContact = c.ticks
		c.resetElectionTimer()
		prev, prevTerm, entries := m.PrevLogIndex, m.PrevLogTerm, m.Entries
		if prev < c.snapIndex {
			// The message overlaps our compacted prefix. Everything at or
			// below the base is committed here, and committed prefixes
			// agree, so that part of the message matches by construction:
			// skip it and check consistency at the base instead.
			if drop := c.snapIndex - prev; drop < len(entries) {
				entries = entries[drop:]
			} else {
				entries = nil
			}
			prev, prevTerm = c.snapIndex, c.snapTerm
		}
		if prev <= c.lastIndex() && c.termAt(prev) == prevTerm {
			success = true
			// Append, truncating on conflicts.
			firstChanged := 0
			for i, e := range entries {
				pos := prev + 1 + i     // absolute index
				sp := pos - c.snapIndex // slot in the retained suffix
				if sp < len(c.log) {
					if c.log[sp].Term != e.Term {
						c.log = c.log[:sp]
						c.dropConfigsFrom(pos)
						c.log = append(c.log, e)
						c.trackConfig(pos, e)
						if firstChanged == 0 {
							firstChanged = pos
						}
					}
				} else {
					c.log = append(c.log, e)
					c.trackConfig(pos, e)
					if firstChanged == 0 {
						firstChanged = pos
					}
				}
			}
			if firstChanged != 0 {
				c.markEntries(firstChanged)
			}
			matchIdx = prev + len(entries)
			if m.LeaderCommit > c.commitIndex {
				c.commitIndex = min(m.LeaderCommit, matchIdx)
			}
		} else {
			// Consistency check failed: hint where our log actually ends
			// so a pipelining leader can jump back in one round trip
			// instead of probing one index at a time.
			hint = min(m.PrevLogIndex-1, c.lastIndex())
		}
	}
	c.send(Message{
		Type: MsgAppendResponse, From: c.id, To: m.From, Term: c.term,
		Success: success, MatchIndex: matchIdx, HintIndex: hint, Seq: m.Seq,
	})
}

// onInstallSnapshot handles one chunk of a leader's snapshot transfer,
// installing the image once the final chunk lands.
func (c *Core) onInstallSnapshot(m Message) {
	if m.Term != c.term {
		// Stale leader: the response carries our higher term (m.Term >
		// c.term was already folded by Step).
		c.send(Message{
			Type: MsgAppendResponse, From: c.id, To: m.From, Term: c.term, Seq: m.Seq,
		})
		return
	}
	c.role = Follower
	c.leader = m.From
	c.leaderContact = c.ticks
	c.resetElectionTimer()
	// Reassemble strictly in order; offset 0 (re)starts a transfer. A
	// mismatched or out-of-order chunk is dropped — the leader resends
	// the whole image after its pacing interval.
	if m.SnapOffset == 0 {
		c.inSnap = &inboundSnap{
			index: m.SnapIndex, term: m.SnapTerm,
			members: m.SnapMembers, total: m.SnapTotal,
		}
	}
	s := c.inSnap
	if s == nil || s.index != m.SnapIndex || s.term != m.SnapTerm ||
		s.total != m.SnapTotal || len(s.buf) != m.SnapOffset {
		return
	}
	s.buf = append(s.buf, m.SnapData...)
	if len(s.buf) < s.total {
		return
	}
	c.inSnap = nil
	if s.index <= c.commitIndex {
		// Stale image: our committed prefix already covers it.
		c.ackSnapshot(m, c.commitIndex)
		return
	}
	if s.index <= c.lastIndex() && c.termAt(s.index) == s.term {
		// Our log already matches through the snapshot point: no install
		// needed, the transfer just taught us the prefix is committed.
		c.commitIndex = s.index
		c.ackSnapshot(m, s.index)
		return
	}
	// Full install: the snapshot replaces the log wholesale. The suffix
	// is discarded even if non-empty — it conflicts at or before the
	// base, or we would have matched above.
	c.log = []LogEntry{{Term: s.term}}
	c.snapIndex, c.snapTerm = s.index, s.term
	c.snapMembers = copyIDs(s.members)
	c.snapData = s.buf
	c.confIdxs = nil
	c.commitIndex = s.index
	c.lastApplied = s.index // the restore delivery stands in for applying [.., s.index]
	c.dirtyFrom = 0
	c.markEntries(s.index + 1) // durable log: truncate to the empty suffix
	c.pendingSnap = &Snapshot{Index: s.index, Term: s.term, Members: c.snapMembers, Data: s.buf}
	c.pendingRestore = true
	c.ackSnapshot(m, s.index)
}

// ackSnapshot acknowledges an InstallSnapshot transfer as an ordinary
// successful append response at match, echoing the transfer's Seq.
func (c *Core) ackSnapshot(m Message, match int) {
	c.send(Message{
		Type: MsgAppendResponse, From: c.id, To: m.From, Term: c.term,
		Success: true, MatchIndex: match, Seq: m.Seq,
	})
}

func (c *Core) onAppendResponse(m Message) {
	if c.role != Leader || m.Term != c.term {
		return
	}
	c.peerActive[m.From] = c.ticks // CheckQuorum: the peer is reachable
	// Lease clock: any current-term append response proves the peer reset
	// its election timer when it received our append moments ago — it
	// cannot start (or vote in) a timeout election for a full election
	// interval from then.
	c.ackTick[m.From] = c.ticks
	if !m.Success {
		// Back off below the rejected probe, jumping straight to the
		// follower's hint when it is lower (fast conflict resolution for
		// pipelined windows). No floor at the recorded matchIndex: a
		// volatile follower can restart with an empty log, and resending
		// already-acked entries is harmless (the follower deduplicates).
		next := c.nextIndex[m.From] - 1
		if m.HintIndex+1 < next {
			next = m.HintIndex + 1
		}
		if next < 1 {
			next = 1
		}
		c.nextIndex[m.From] = next
		c.sendAppend(m.From)
		return
	}
	if m.MatchIndex > c.matchIndex[m.From] {
		c.matchIndex[m.From] = m.MatchIndex
	}
	if m.MatchIndex >= c.nextIndex[m.From] {
		c.nextIndex[m.From] = m.MatchIndex + 1
	}
	// Transfer handoff: the moment the target holds our whole log, tell
	// it to campaign. Re-sending on later acks is harmless — a stale
	// TimeoutNow (its term already passed) is ignored by the target.
	if m.From == c.transferTarget {
		if c.matchIndex[m.From] >= c.lastIndex() {
			c.sendTimeoutNow(m.From)
		} else {
			c.sendAppend(m.From)
		}
	}
	c.confirmReads(m.From, m.Seq)
	c.advanceCommit()
}

// advanceCommit moves the commit index to the highest current-term index
// replicated on a quorum of the current configuration. The quorum test is
// the model's (config.MajorityCount): the executable commit rule and the
// verified one share a single predicate.
func (c *Core) advanceCommit() {
	members := c.Members()
	for idx := c.lastIndex(); idx > c.commitIndex; idx-- {
		if c.termAt(idx) != c.term {
			break // commitment rule: only current-term entries directly
		}
		count := 0
		for _, id := range members.Slice() {
			if id == c.id || c.matchIndex[id] >= idx {
				count++
			}
		}
		if config.MajorityCount(count, members) {
			c.commitIndex = idx
			// Stepping stone committed: if this commit finalizes our own
			// removal, step down.
			if !c.CommittedMembers().Contains(c.id) && !members.Contains(c.id) {
				c.role = Follower
				c.abortReads()
				c.cancelTransfer()
			}
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
