package raftcore

import (
	"errors"
	"fmt"

	"adore/internal/config"
	"adore/internal/types"
)

// Errors returned by the client-facing API. The runtime driver (package
// raft) re-exports them unchanged.
var (
	// ErrNotLeader reports that the node cannot serve the request; the
	// caller should retry against the current leader.
	ErrNotLeader = errors.New("raft: not the leader")
	// ErrReconfigPending rejects a membership change while another is
	// uncommitted (R2).
	ErrReconfigPending = errors.New("raft: a configuration change is already in progress (R2)")
	// ErrReconfigNotReady rejects a membership change before the leader
	// has committed an entry in its current term (R3).
	ErrReconfigNotReady = errors.New("raft: no committed entry in the current term yet (R3)")
	// ErrBadMembership rejects changes that are not single-node (R1) or
	// would empty the cluster.
	ErrBadMembership = errors.New("raft: invalid membership change (R1)")
)

// Config parameterizes a Core. Time is abstract: the caller advances the
// core with Tick calls, and all intervals are counted in those ticks.
type Config struct {
	// ID is this node's identity; Members the initial cluster.
	ID      types.NodeID
	Members []types.NodeID

	// ElectionTicks is the minimum number of ticks without leader contact
	// before a node campaigns; each timer arm adds Jitter() extra ticks.
	// Zero gets a default of 10.
	ElectionTicks int

	// Jitter supplies the randomized share of each election timeout, in
	// ticks. The core itself contains no randomness — the caller owns the
	// seed (the runtime driver closes over a seeded rand; the simulator
	// hands out deterministic values). Nil means no jitter.
	Jitter func() int

	// HeartbeatTicks is the leader's broadcast cadence in ticks. Zero
	// gets a default of 1 (broadcast every tick).
	HeartbeatTicks int

	// MaxEntriesPerAppend caps the entries carried by one AppendEntries
	// message. The leader streams a lagging follower's log as a pipeline
	// of bounded windows (advancing nextIndex optimistically per send)
	// instead of re-sending the full suffix stop-and-wait. Zero gets a
	// default of 256.
	MaxEntriesPerAppend int

	// DisableR3 reproduces the published single-server bug: reconfig no
	// longer waits for a committed entry in the leader's current term.
	// For experiments only.
	DisableR3 bool

	// DisableR2 drops the "no uncommitted configuration entry" guard, so
	// a second membership change can be proposed while the first is still
	// in flight. Disjoint quorums become reachable — the chaos harness
	// uses this to prove it can catch the resulting divergence. For
	// experiments only.
	DisableR2 bool
}

func (c *Config) defaults() {
	if c.ElectionTicks <= 0 {
		c.ElectionTicks = 10
	}
	if c.HeartbeatTicks <= 0 {
		c.HeartbeatTicks = 1
	}
	if c.MaxEntriesPerAppend <= 0 {
		c.MaxEntriesPerAppend = 256
	}
}

// Core is the pure raft state machine. It is not safe for concurrent use:
// the caller serializes Step/Tick/Propose/... and executes each TakeReady
// batch (persist, then send/apply) before externalizing anything.
type Core struct {
	id  types.NodeID
	cfg Config

	term     types.Time
	votedFor types.NodeID
	role     Role
	leader   types.NodeID // last known leader

	// log is 1-indexed: log[0] is a sentinel.
	log         []LogEntry
	commitIndex int
	lastApplied int

	// Leader volatile state.
	nextIndex  map[types.NodeID]int
	matchIndex map[types.NodeID]int
	votes      types.NodeSet

	// conf0 is the initial membership; the effective membership is the
	// latest config entry in the log (hot reconfiguration).
	conf0 types.NodeSet
	// confIdxs caches the positions of EntryConfig entries in the log, in
	// ascending order, so membership lookups cost O(#configs) instead of
	// a backward scan over the whole log. Every log append/truncation
	// keeps it in sync.
	confIdxs []int

	// Logical clock: electionElapsed ticks since the last timer arm,
	// against a timeout of ElectionTicks + the jitter drawn at arm time.
	electionElapsed  int
	electionTimeout  int
	heartbeatElapsed int

	// pendingReads are ReadIndex barriers awaiting quorum confirmation.
	pendingReads []*pendingRead

	// appendSeq numbers outgoing AppendEntries; followers echo it in
	// their responses so barriers can tell fresh acks from stale
	// in-flight ones.
	appendSeq uint64

	// Pending effects, drained by TakeReady.
	hsDirty    bool        // term/votedFor changed since last TakeReady
	dirtyFrom  int         // lowest log index changed since last TakeReady (0 = clean)
	msgs       []Message   // outbound, in generation order
	readStates []ReadState // resolved ReadIndex barriers

	// metrics
	elections uint64
}

// pendingRead is one ReadIndex barrier: the commit index captured at
// request time, and the leadership confirmations gathered since.
type pendingRead struct {
	reqID uint64
	index int
	term  types.Time
	seq   uint64 // only acks echoing a seq beyond this confirm the barrier
	acks  types.NodeSet
}

// New builds a core from a configuration and recovered durable state: hs
// and log as returned by the driver's storage Load (log may be nil or the
// 1-indexed slice with its sentinel at 0).
func New(cfg Config, hs HardState, log []LogEntry) *Core {
	cfg.defaults()
	if len(log) == 0 {
		log = make([]LogEntry, 1) // sentinel at index 0
	}
	c := &Core{
		id:       cfg.ID,
		cfg:      cfg,
		role:     Follower,
		term:     hs.Term,
		votedFor: hs.VotedFor,
		log:      log,
		conf0:    types.NewNodeSet(cfg.Members...),
	}
	// Seed the config-index cache from the recovered log (one scan, here
	// only; afterwards every append/truncation maintains it).
	for i := 1; i < len(log); i++ { // 0 is the sentinel
		if log[i].Kind == EntryConfig {
			c.confIdxs = append(c.confIdxs, i)
		}
	}
	c.resetElectionTimer()
	return c
}

// --- Accessors (all cheap; the caller holds whatever lock guards the core) ---

// ID returns the node's identity.
func (c *Core) ID() types.NodeID { return c.id }

// Term returns the current term.
func (c *Core) Term() types.Time { return c.term }

// Role returns the current protocol role.
func (c *Core) Role() Role { return c.role }

// Leader returns the last known leader (possibly NoNode).
func (c *Core) Leader() types.NodeID { return c.leader }

// CommitIndex returns the commit index.
func (c *Core) CommitIndex() int { return c.commitIndex }

// LastIndex returns the index of the last log entry (0 when empty).
func (c *Core) LastIndex() int { return len(c.log) - 1 }

// Entry returns the log entry at index i (1-based). The returned value
// shares the underlying command/member slices; callers must not mutate.
func (c *Core) Entry(i int) LogEntry { return c.log[i] }

// Elections returns how many elections this node has started (metrics).
func (c *Core) Elections() uint64 { return c.elections }

// Members returns the current effective membership (the latest
// configuration in the log, committed or not — hot reconfiguration).
func (c *Core) Members() types.NodeSet {
	if k := len(c.confIdxs); k > 0 {
		return types.NewNodeSet(c.log[c.confIdxs[k-1]].Members...)
	}
	return c.conf0
}

// CommittedMembers is the membership ignoring uncommitted config entries
// (used for R2 checks and diagnostics).
func (c *Core) CommittedMembers() types.NodeSet {
	for i := len(c.confIdxs) - 1; i >= 0; i-- {
		if c.confIdxs[i] <= c.commitIndex {
			return types.NewNodeSet(c.log[c.confIdxs[i]].Members...)
		}
	}
	return c.conf0
}

// --- Effect bookkeeping ---

func (c *Core) markHardState() { c.hsDirty = true }

func (c *Core) markEntries(from int) {
	if c.dirtyFrom == 0 || from < c.dirtyFrom {
		c.dirtyFrom = from
	}
}

func (c *Core) send(m Message) { c.msgs = append(c.msgs, m) }

// TakeReady drains the effects accumulated since the last call. The
// caller must persist HardState and Entries before sending Messages,
// resolving ReadStates, or delivering Committed (see the Ready contract).
func (c *Core) TakeReady() Ready {
	var rd Ready
	if c.hsDirty {
		hs := HardState{Term: c.term, VotedFor: c.votedFor}
		rd.HardState = &hs
		c.hsDirty = false
	}
	if c.dirtyFrom != 0 {
		rd.FirstIndex = c.dirtyFrom
		rd.Entries = make([]LogEntry, len(c.log)-c.dirtyFrom)
		copy(rd.Entries, c.log[c.dirtyFrom:])
		c.dirtyFrom = 0
	}
	rd.Messages = c.msgs
	c.msgs = nil
	rd.ReadStates = c.readStates
	c.readStates = nil
	if c.lastApplied < c.commitIndex {
		rd.Committed = make([]ApplyMsg, 0, c.commitIndex-c.lastApplied)
		for c.lastApplied < c.commitIndex {
			c.lastApplied++
			e := c.log[c.lastApplied]
			rd.Committed = append(rd.Committed, ApplyMsg{
				Index: c.lastApplied, Term: e.Term, Kind: e.Kind, Command: e.Command, Members: e.Members,
			})
		}
	}
	return rd
}

// --- Clock ---

func (c *Core) resetElectionTimer() {
	c.electionElapsed = 0
	c.electionTimeout = c.cfg.ElectionTicks
	if c.cfg.Jitter != nil {
		c.electionTimeout += c.cfg.Jitter()
	}
}

// Tick advances the logical clock by one unit: leaders fire heartbeats on
// their cadence, non-leaders count toward an election timeout.
func (c *Core) Tick() {
	if c.role == Leader {
		c.heartbeatElapsed++
		if c.heartbeatElapsed >= c.cfg.HeartbeatTicks {
			c.heartbeatElapsed = 0
			c.broadcastAppend()
		}
		return
	}
	c.electionElapsed++
	if c.electionElapsed >= c.electionTimeout {
		// A node outside its own effective configuration must not
		// disrupt the cluster with elections (it has been removed).
		if !c.Members().Contains(c.id) {
			c.resetElectionTimer()
			return
		}
		c.startElection()
	}
}

// --- Elections ---

// startElection begins a candidacy for the next term.
func (c *Core) startElection() {
	c.term++
	c.role = Candidate
	c.votedFor = c.id
	c.markHardState()
	c.votes = types.NewNodeSet(c.id)
	c.elections++
	c.resetElectionTimer()
	lastIdx := len(c.log) - 1
	req := Message{
		Type:         MsgVoteRequest,
		From:         c.id,
		Term:         c.term,
		LastLogIndex: lastIdx,
		LastLogTerm:  c.log[lastIdx].Term,
	}
	for _, to := range c.Members().Slice() {
		if to == c.id {
			continue
		}
		req.To = to
		c.send(req)
	}
	c.maybeWin()
}

// maybeWin promotes a candidate with a quorum of votes.
func (c *Core) maybeWin() {
	if c.role != Candidate {
		return
	}
	members := c.Members()
	if !config.Majority(c.votes, members) {
		return // not a strict majority
	}
	c.role = Leader
	c.leader = c.id
	c.heartbeatElapsed = 0
	c.nextIndex = make(map[types.NodeID]int)
	c.matchIndex = make(map[types.NodeID]int)
	for _, id := range members.Slice() {
		c.nextIndex[id] = len(c.log)
		c.matchIndex[id] = 0
	}
	c.matchIndex[c.id] = len(c.log) - 1
	// Term-opening no-op: commits promptly in this term, satisfying both
	// the commitment rule and R3.
	c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryNoOp})
	c.broadcastAppend()
}

// --- Client-facing operations ---

// errNotLeader builds the standard redirect error.
func (c *Core) errNotLeader() error {
	return fmt.Errorf("%w (known leader: %s)", ErrNotLeader, c.leader)
}

// Propose appends a client command at the leader. It returns the assigned
// log index and term, or ErrNotLeader.
func (c *Core) Propose(cmd []byte) (int, types.Time, error) {
	if c.role != Leader {
		return 0, 0, c.errNotLeader()
	}
	idx := c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryCommand, Command: cmd})
	c.broadcastAppend()
	return idx, c.term, nil
}

// ProposeBatch appends several client commands as one log suffix with a
// single broadcast — the group-commit path. It returns the index of the
// first command; command i landed at first+i.
func (c *Core) ProposeBatch(cmds [][]byte) (first int, term types.Time, err error) {
	if c.role != Leader {
		return 0, 0, c.errNotLeader()
	}
	first = len(c.log)
	for _, cmd := range cmds {
		c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryCommand, Command: cmd})
	}
	c.broadcastAppend()
	return first, c.term, nil
}

// ProposeConfig appends a membership change at the leader, enforcing the
// paper's guards: the change must add or remove exactly one node (R1),
// no other configuration change may be in flight (R2), and — unless
// DisableR3 — the leader must have committed an entry in its current term
// (R3).
func (c *Core) ProposeConfig(members types.NodeSet) (int, types.Time, error) {
	if c.role != Leader {
		return 0, 0, c.errNotLeader()
	}
	cur := c.Members()
	if members.IsEmpty() {
		return 0, 0, fmt.Errorf("%w: empty membership", ErrBadMembership)
	}
	added := members.Diff(cur).Len()
	removed := cur.Diff(members).Len()
	if added+removed != 1 {
		return 0, 0, fmt.Errorf("%w: %s → %s changes %d nodes", ErrBadMembership, cur, members, added+removed)
	}
	// R2: no uncommitted config entry.
	if !c.cfg.DisableR2 {
		for i := c.commitIndex + 1; i < len(c.log); i++ {
			if c.log[i].Kind == EntryConfig {
				return 0, 0, ErrReconfigPending
			}
		}
	}
	// R3: a committed entry with the current term.
	if !c.cfg.DisableR3 {
		ok := false
		for i := c.commitIndex; i >= 1; i-- {
			if c.log[i].Term == c.term {
				ok = true
				break
			}
			if c.log[i].Term < c.term {
				break
			}
		}
		if !ok {
			return 0, 0, ErrReconfigNotReady
		}
	}
	idx := c.appendAsLeader(LogEntry{Term: c.term, Kind: EntryConfig, Members: members.Copy()})
	c.broadcastAppend()
	return idx, c.term, nil
}

// ReadIndex registers a linearizable-read barrier (the Raft ReadIndex
// optimization): the leader captures its commit index and confirms it is
// still the leader by collecting a round of quorum acknowledgements. If
// the quorum is immediately satisfied (single-node configurations) the
// confirmed index is returned with confirmed=true; otherwise the barrier
// resolves through a ReadState in a later Ready, keyed by reqID.
func (c *Core) ReadIndex(reqID uint64) (index int, confirmed bool, err error) {
	if c.role != Leader {
		return 0, false, c.errNotLeader()
	}
	pr := &pendingRead{
		reqID: reqID,
		index: c.commitIndex,
		term:  c.term,
		seq:   c.appendSeq, // acks must echo a later seq: stale in-flight responses don't confirm
		acks:  types.NewNodeSet(c.id),
	}
	// A single-node configuration is already a quorum of itself.
	if config.Majority(pr.acks, c.Members()) {
		return pr.index, true, nil
	}
	c.pendingReads = append(c.pendingReads, pr)
	c.broadcastAppend() // heartbeat doubles as the confirmation round
	return 0, false, nil
}

// CancelRead abandons a pending barrier (the caller timed out).
func (c *Core) CancelRead(reqID uint64) {
	for i, pr := range c.pendingReads {
		if pr.reqID == reqID {
			c.pendingReads = append(c.pendingReads[:i], c.pendingReads[i+1:]...)
			return
		}
	}
}

// confirmReads credits a leadership confirmation from a peer and resolves
// the barriers that reached a quorum. seq is the append sequence the peer
// echoed: only responses to appends sent after a barrier was registered
// count for it, so a response that was already in flight when the barrier
// (or a partition) arrived cannot confirm leadership.
func (c *Core) confirmReads(from types.NodeID, seq uint64) {
	if len(c.pendingReads) == 0 {
		return
	}
	members := c.Members()
	kept := c.pendingReads[:0]
	for _, pr := range c.pendingReads {
		if pr.term != c.term || c.role != Leader {
			c.readStates = append(c.readStates, ReadState{ReqID: pr.reqID, Index: -1})
			continue
		}
		if seq > pr.seq {
			pr.acks = pr.acks.Add(from)
		}
		if config.Majority(pr.acks, members) {
			c.readStates = append(c.readStates, ReadState{ReqID: pr.reqID, Index: pr.index})
			continue
		}
		kept = append(kept, pr)
	}
	c.pendingReads = kept
}

// abortReads aborts every pending barrier (leadership lost).
func (c *Core) abortReads() {
	for _, pr := range c.pendingReads {
		c.readStates = append(c.readStates, ReadState{ReqID: pr.reqID, Index: -1})
	}
	c.pendingReads = nil
}

// --- Log maintenance ---

// appendAsLeader appends an entry at the leader and returns its index.
func (c *Core) appendAsLeader(e LogEntry) int {
	c.log = append(c.log, e)
	idx := len(c.log) - 1
	c.trackConfig(idx, e)
	c.matchIndex[c.id] = idx
	c.markEntries(idx)
	return idx
}

// trackConfig records a freshly appended entry's position in the
// config-index cache. Call it for every log append.
func (c *Core) trackConfig(idx int, e LogEntry) {
	if e.Kind == EntryConfig {
		c.confIdxs = append(c.confIdxs, idx)
	}
}

// dropConfigsFrom evicts cached config positions at or above pos (the log
// is being truncated there).
func (c *Core) dropConfigsFrom(pos int) {
	for len(c.confIdxs) > 0 && c.confIdxs[len(c.confIdxs)-1] >= pos {
		c.confIdxs = c.confIdxs[:len(c.confIdxs)-1]
	}
}

// --- Replication ---

// broadcastAppend sends AppendEntries to every peer in the current
// configuration (and to peers being removed that still need the entry
// that removes them — they are reached while they remain in the effective
// membership union with the committed one).
func (c *Core) broadcastAppend() {
	if c.role != Leader {
		return
	}
	targets := c.Members().Union(c.CommittedMembers())
	for _, to := range targets.Slice() {
		if to == c.id {
			continue
		}
		c.sendAppend(to)
	}
	// A single-member configuration commits on its own append: there are
	// no responses to trigger the usual advance.
	c.advanceCommit()
}

func (c *Core) sendAppend(to types.NodeID) {
	next := c.nextIndex[to]
	if next < 1 {
		next = 1
	}
	if next > len(c.log) {
		next = len(c.log)
	}
	prev := next - 1
	// Bound the window: a lagging follower is streamed in
	// MaxEntriesPerAppend-sized messages instead of one full-suffix
	// resend per round trip.
	end := len(c.log)
	if lim := c.cfg.MaxEntriesPerAppend; lim > 0 && end-next > lim {
		end = next + lim
	}
	entries := make([]LogEntry, end-next)
	copy(entries, c.log[next:end])
	c.appendSeq++
	c.send(Message{
		Type:         MsgAppendEntries,
		From:         c.id,
		To:           to,
		Term:         c.term,
		PrevLogIndex: prev,
		PrevLogTerm:  c.log[prev].Term,
		Entries:      entries,
		LeaderCommit: c.commitIndex,
		Seq:          c.appendSeq,
	})
	// Pipelining: advance nextIndex optimistically so the next flush tick
	// or heartbeat streams the following window without waiting for this
	// one's response. A rejection resets it via the follower's hint; a
	// lost window is recovered the same way when the next probe fails.
	if len(entries) > 0 {
		c.nextIndex[to] = end
	}
}

// --- Message handling ---

// Step consumes one incoming message.
func (c *Core) Step(m Message) {
	if m.Term > c.term {
		c.term = m.Term
		c.role = Follower
		c.votedFor = types.NoNode
		c.markHardState()
		c.abortReads()
	}
	switch m.Type {
	case MsgVoteRequest:
		c.onVoteRequest(m)
	case MsgVoteResponse:
		c.onVoteResponse(m)
	case MsgAppendEntries:
		c.onAppendEntries(m)
	case MsgAppendResponse:
		c.onAppendResponse(m)
	}
}

func (c *Core) onVoteRequest(m Message) {
	granted := false
	if m.Term == c.term && (c.votedFor == types.NoNode || c.votedFor == m.From) {
		lastIdx := len(c.log) - 1
		lastTerm := c.log[lastIdx].Term
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIdx)
		if upToDate {
			granted = true
			c.votedFor = m.From
			c.markHardState()
			c.resetElectionTimer()
		}
	}
	c.send(Message{
		Type: MsgVoteResponse, From: c.id, To: m.From, Term: c.term, Granted: granted,
	})
}

func (c *Core) onVoteResponse(m Message) {
	if c.role != Candidate || m.Term != c.term || !m.Granted {
		return
	}
	c.votes = c.votes.Add(m.From)
	c.maybeWin()
}

func (c *Core) onAppendEntries(m Message) {
	success := false
	matchIdx := 0
	hint := 0
	if m.Term == c.term {
		c.role = Follower
		c.leader = m.From
		c.resetElectionTimer()
		if m.PrevLogIndex < len(c.log) && c.log[m.PrevLogIndex].Term == m.PrevLogTerm {
			success = true
			// Append, truncating on conflicts.
			idx := m.PrevLogIndex
			firstChanged := 0
			for i, e := range m.Entries {
				pos := idx + 1 + i
				if pos < len(c.log) {
					if c.log[pos].Term != e.Term {
						c.log = c.log[:pos]
						c.dropConfigsFrom(pos)
						c.log = append(c.log, e)
						c.trackConfig(pos, e)
						if firstChanged == 0 {
							firstChanged = pos
						}
					}
				} else {
					c.log = append(c.log, e)
					c.trackConfig(pos, e)
					if firstChanged == 0 {
						firstChanged = pos
					}
				}
			}
			if firstChanged != 0 {
				c.markEntries(firstChanged)
			}
			matchIdx = m.PrevLogIndex + len(m.Entries)
			if m.LeaderCommit > c.commitIndex {
				c.commitIndex = min(m.LeaderCommit, matchIdx)
			}
		} else {
			// Consistency check failed: hint where our log actually ends
			// so a pipelining leader can jump back in one round trip
			// instead of probing one index at a time.
			hint = min(m.PrevLogIndex-1, len(c.log)-1)
		}
	}
	c.send(Message{
		Type: MsgAppendResponse, From: c.id, To: m.From, Term: c.term,
		Success: success, MatchIndex: matchIdx, HintIndex: hint, Seq: m.Seq,
	})
}

func (c *Core) onAppendResponse(m Message) {
	if c.role != Leader || m.Term != c.term {
		return
	}
	if !m.Success {
		// Back off below the rejected probe, jumping straight to the
		// follower's hint when it is lower (fast conflict resolution for
		// pipelined windows). No floor at the recorded matchIndex: a
		// volatile follower can restart with an empty log, and resending
		// already-acked entries is harmless (the follower deduplicates).
		next := c.nextIndex[m.From] - 1
		if m.HintIndex+1 < next {
			next = m.HintIndex + 1
		}
		if next < 1 {
			next = 1
		}
		c.nextIndex[m.From] = next
		c.sendAppend(m.From)
		return
	}
	if m.MatchIndex > c.matchIndex[m.From] {
		c.matchIndex[m.From] = m.MatchIndex
	}
	if m.MatchIndex >= c.nextIndex[m.From] {
		c.nextIndex[m.From] = m.MatchIndex + 1
	}
	c.confirmReads(m.From, m.Seq)
	c.advanceCommit()
}

// advanceCommit moves the commit index to the highest current-term index
// replicated on a quorum of the current configuration. The quorum test is
// the model's (config.MajorityCount): the executable commit rule and the
// verified one share a single predicate.
func (c *Core) advanceCommit() {
	members := c.Members()
	for idx := len(c.log) - 1; idx > c.commitIndex; idx-- {
		if c.log[idx].Term != c.term {
			break // commitment rule: only current-term entries directly
		}
		count := 0
		for _, id := range members.Slice() {
			if id == c.id || c.matchIndex[id] >= idx {
				count++
			}
		}
		if config.MajorityCount(count, members) {
			c.commitIndex = idx
			// Stepping stone committed: if this commit finalizes our own
			// removal, step down.
			if !c.CommittedMembers().Contains(c.id) && !members.Contains(c.id) {
				c.role = Follower
				c.abortReads()
			}
			break
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
