package raft_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

const waitLeader = 5 * time.Second

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c := cluster.New(cluster.Options{N: n, Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond, Seed: 42})
	t.Cleanup(c.Stop)
	return c
}

func TestElectsLeader(t *testing.T) {
	c := newCluster(t, 3)
	id, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if id == types.NoNode {
		t.Fatal("no leader id")
	}
	// Exactly one leader at the highest term once things settle.
	time.Sleep(50 * time.Millisecond)
	leaders := 0
	var topTerm types.Time
	for _, n := range c.Nodes() {
		term, role, _ := n.Status()
		if term > topTerm {
			topTerm = term
			leaders = 0
		}
		if role == raft.Leader && term == topTerm {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders at the top term", leaders)
	}
}

func TestReplicatesCommands(t *testing.T) {
	c := newCluster(t, 3)
	if _, err := c.WaitForLeader(waitLeader); err != nil {
		t.Fatal(err)
	}
	var lastIdx int
	for i := 0; i < 5; i++ {
		idx, err := c.Propose([]byte(fmt.Sprintf("cmd-%d", i)), waitLeader)
		if err != nil {
			t.Fatal(err)
		}
		lastIdx = idx
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if err := c.WaitCommit(id, lastIdx, waitLeader); err != nil {
			t.Fatal(err)
		}
	}
	// Applied command streams agree across nodes.
	ref := commandsOf(c.Applied(1))
	if len(ref) != 5 {
		t.Fatalf("leader applied %d commands, want 5", len(ref))
	}
	for _, id := range []types.NodeID{2, 3} {
		got := commandsOf(c.Applied(id))
		if len(got) != len(ref) {
			t.Fatalf("%s applied %d commands, want %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s applied %q at %d, want %q", id, got[i], i, ref[i])
			}
		}
	}
}

func commandsOf(msgs []raft.ApplyMsg) []string {
	var out []string
	for _, m := range msgs {
		if m.Kind == raft.EntryCommand {
			out = append(out, string(m.Command))
		}
	}
	return out
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if n.ID() == lid {
			continue
		}
		if _, _, err := n.Propose([]byte("x")); !errors.Is(err, raft.ErrNotLeader) {
			// The follower may have just won a newer election; accept that.
			if _, role, _ := n.Status(); role != raft.Leader {
				t.Fatalf("follower %s accepted a proposal: %v", n.ID(), err)
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.Propose([]byte("before"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if err := c.WaitCommit(id, idx, waitLeader); err != nil {
			t.Fatal(err)
		}
	}
	// Cut the leader off; a new leader must emerge among the rest.
	c.Net.Isolate(lid)
	deadline := time.Now().Add(waitLeader)
	var newLeader types.NodeID
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes() {
			if n.ID() == lid {
				continue
			}
			if _, role, _ := n.Status(); role == raft.Leader {
				newLeader = n.ID()
			}
		}
		if newLeader != types.NoNode {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if newLeader == types.NoNode {
		t.Fatal("no new leader after isolating the old one")
	}
	// The new leader still has the committed command and can extend.
	idx2, _, err := c.Node(newLeader).Propose([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if id == lid {
			continue
		}
		if err := c.WaitCommit(id, idx2, waitLeader); err != nil {
			t.Fatal(err)
		}
	}
	// Heal: the old leader catches up.
	c.Net.Heal()
	if err := c.WaitCommit(lid, idx2, waitLeader); err != nil {
		t.Fatal(err)
	}
	a, b := commandsOf(c.Applied(lid)), commandsOf(c.Applied(newLeader))
	if len(a) != len(b) {
		t.Fatalf("logs diverged after heal: %v vs %v", a, b)
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	c := newCluster(t, 3)
	c.Net.SetDropRate(0.15)
	if _, err := c.WaitForLeader(waitLeader); err != nil {
		t.Fatal(err)
	}
	idx, err := c.Propose([]byte("lossy"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if err := c.WaitCommit(id, idx, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReconfigAddServer(t *testing.T) {
	c := newCluster(t, 3)
	if _, err := c.WaitForLeader(waitLeader); err != nil {
		t.Fatal(err)
	}
	// Start the fresh node first so it can receive traffic.
	c.StartNode(4, []types.NodeID{1, 2, 3, 4})
	idx, err := c.Reconfigure(types.Range(1, 4), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 2, 3, 4} {
		if err := c.WaitCommit(id, idx, waitLeader); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Leader().Members(); !got.Equal(types.Range(1, 4)) {
		t.Fatalf("membership = %v, want {S1..S4}", got)
	}
	// Commands still flow in the larger cluster.
	idx2, err := c.Propose([]byte("post-grow"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(4, idx2, waitLeader); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigRemoveServer(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a follower.
	var victim types.NodeID
	for _, id := range []types.NodeID{1, 2, 3} {
		if id != lid {
			victim = id
			break
		}
	}
	idx, err := c.Reconfigure(types.Range(1, 3).Remove(victim), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(lid, idx, waitLeader); err != nil {
		t.Fatal(err)
	}
	// The two-node cluster still commits.
	idx2, err := c.Propose([]byte("post-shrink"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(lid, idx2, waitLeader); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigGuardsRuntime(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	leader := c.Node(lid)
	// R1: multi-node change rejected outright.
	if _, _, err := leader.ProposeConfig(types.NewNodeSet(1, 4, 5)); !errors.Is(err, raft.ErrBadMembership) {
		t.Errorf("multi-node change: %v", err)
	}
	if _, _, err := leader.ProposeConfig(types.NodeSet{}); !errors.Is(err, raft.ErrBadMembership) {
		t.Errorf("empty membership: %v", err)
	}
	// Wait for the no-op to commit so R3 passes, then test R2.
	if _, err := c.Reconfigure(types.Range(1, 4), waitLeader); err != nil {
		t.Fatal(err)
	}
	// Immediately propose another change: R2 must reject until committed.
	_, _, err = leader.ProposeConfig(types.Range(1, 5))
	if err != nil && !errors.Is(err, raft.ErrReconfigPending) && !errors.Is(err, raft.ErrNotLeader) {
		t.Errorf("second reconfig error = %v, want ErrReconfigPending (or already committed)", err)
	}
}

func TestRemovedLeaderStepsDown(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	// The leader removes itself.
	idx, err := c.Reconfigure(types.Range(1, 3).Remove(lid), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	_ = idx
	// A different leader must eventually emerge.
	deadline := time.Now().Add(waitLeader)
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil && l.ID() != lid {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no replacement leader after self-removal")
}

func TestR3DisabledAllowsEarlyReconfig(t *testing.T) {
	// With R3 disabled (the buggy algorithm), a fresh leader may
	// reconfigure before committing anything in its term.
	c := cluster.New(cluster.Options{N: 3, DisableR3: true, Seed: 7})
	defer c.Stop()
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	// Immediately after winning, commit index may lag the no-op; R3 off
	// means the proposal goes straight in (R1/R2 still enforced).
	_, _, err = c.Node(lid).ProposeConfig(types.Range(1, 4).Remove(4).Add(4))
	if err != nil && !errors.Is(err, raft.ErrReconfigPending) {
		t.Fatalf("reconfig with R3 disabled failed: %v", err)
	}
}

func TestReadIndexLinearizationBarrier(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	leader := c.Node(lid)
	idx, err := c.Propose([]byte("x"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(lid, idx, waitLeader); err != nil {
		t.Fatal(err)
	}
	ri, err := leader.ReadIndex(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if ri < idx {
		t.Fatalf("read index %d below committed %d", ri, idx)
	}
	// Followers refuse.
	for _, n := range c.Nodes() {
		if n.ID() == lid {
			continue
		}
		if _, err := n.ReadIndex(100 * time.Millisecond); err == nil {
			if _, role, _ := n.Status(); role != raft.Leader {
				t.Fatalf("follower %s served a ReadIndex", n.ID())
			}
		}
	}
}

func TestReadIndexFailsWhenIsolated(t *testing.T) {
	c := newCluster(t, 3)
	lid, err := c.WaitForLeader(waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	c.Net.Isolate(lid)
	// The isolated leader cannot confirm leadership: the barrier must not
	// succeed (it times out or fails once the node learns of a new term).
	if _, err := c.Node(lid).ReadIndex(300 * time.Millisecond); err == nil {
		t.Fatal("isolated leader confirmed a ReadIndex barrier")
	}
	c.Net.Heal()
}

// TestSingleNodeClusterCommits is a regression test: a one-member
// configuration must commit without any append responses (there are no
// peers to respond).
func TestSingleNodeClusterCommits(t *testing.T) {
	c := newCluster(t, 1)
	if _, err := c.WaitForLeader(waitLeader); err != nil {
		t.Fatal(err)
	}
	idx, err := c.Propose([]byte("solo"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(1, idx, waitLeader); err != nil {
		t.Fatal(err)
	}
	// ReadIndex on a singleton is immediate (it is its own quorum).
	if _, err := c.Node(1).ReadIndex(time.Second); err != nil {
		t.Fatal(err)
	}
	// And it can grow into a real cluster.
	c.StartNode(2, []types.NodeID{1, 2})
	if _, err := c.Reconfigure(types.Range(1, 2), waitLeader); err != nil {
		t.Fatal(err)
	}
	idx2, err := c.Propose([]byte("pair"), waitLeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(2, idx2, waitLeader); err != nil {
		t.Fatal(err)
	}
}
