package raft

import (
	"fmt"
	"runtime"

	"adore/internal/types"
)

// This file is the group-commit hot path. Propose fsyncs one WAL record
// per call; under concurrent load that makes throughput scale with fsync
// count. ProposeAsync instead enqueues the command and returns a future;
// the node's flush loop drains every pending proposal into a single log
// suffix — one SaveEntries call (one WAL frame, one fsync), one
// AppendEntries broadcast per peer — and only then acks the futures. The
// commit rules are untouched: entries enter the log, are made durable,
// and are broadcast under the same mutex and in the same order as the
// synchronous path; batching only coalesces the persistence and network
// operations.

// Proposal is the future returned by ProposeAsync. Wait blocks until the
// command has been appended to the leader's log and made durable (or the
// proposal failed), mirroring Propose's post-conditions.
type Proposal struct {
	cmd  []byte
	done chan struct{}

	// idx, term, and err are written once before done is closed and may
	// be read only after it (Wait establishes the happens-before edge).
	idx  int
	term types.Time
	err  error
}

// Wait blocks until the proposal is flushed (durably appended and
// broadcast) or failed, and returns the assigned index and term.
func (p *Proposal) Wait() (int, types.Time, error) {
	<-p.done
	return p.idx, p.term, p.err
}

// Done is closed once the proposal has resolved; use Wait for the result.
func (p *Proposal) Done() <-chan struct{} { return p.done }

func (p *Proposal) complete(idx int, term types.Time) {
	p.idx, p.term = idx, term
	close(p.done)
}

func (p *Proposal) fail(err error) {
	p.err = err
	close(p.done)
}

// ProposeAsync submits a client command for group commit and returns a
// future. Concurrent proposals are coalesced: the flush loop appends all
// pending commands as one WAL frame with a single fsync and one broadcast
// per peer, so fsyncs per operation fall toward 1/batch-size under load.
// The future fails with ErrNotLeader if this node is not (or stops being)
// the leader before the batch is flushed, and with ErrStopped on shutdown.
func (n *Node) ProposeAsync(cmd []byte) *Proposal {
	p := &Proposal{cmd: cmd, done: make(chan struct{})}
	// Only propMu here — NOT the state mutex. A flush holds mu across its
	// fsync; enqueueing must not contend with that, or batches can never
	// grow beyond whatever slipped in between flushes. Leadership is
	// checked at flush time under mu (the future fails with ErrNotLeader
	// if this node is not the leader when the batch reaches the log).
	n.propMu.Lock()
	if n.stopping {
		n.propMu.Unlock()
		p.fail(ErrStopped)
		return p
	}
	n.pendingProps = append(n.pendingProps, p)
	n.propMu.Unlock()
	// Wake the flush loop; a pending signal already covers this proposal.
	select {
	case n.flushCh <- struct{}{}:
	default:
	}
	return p
}

// flushLoop is the leader's group-commit loop: each wakeup drains the
// whole pending buffer as one batch. On shutdown it fails whatever is
// still queued so no waiter hangs.
func (n *Node) flushLoop() {
	defer n.done.Done()
	for {
		select {
		case <-n.stopCh:
			n.propMu.Lock()
			n.stopping = true
			batch := n.pendingProps
			n.pendingProps = nil
			n.propMu.Unlock()
			for _, p := range batch {
				p.fail(ErrStopped)
			}
			return
		case <-n.flushCh:
			// Let the batch form before flushing: yield while the queue is
			// still growing so proposers that are runnable (woken by the
			// previous flush, or arriving concurrently) join this frame
			// instead of forcing one fsync each. Bounded and timer-free: a
			// lone proposer costs at most two scheduler yields, and on a
			// single-CPU box — where a blocking fsync can monopolize the
			// only P — this is what lets batches grow at all.
			prev := -1
			for i := 0; i < 4; i++ {
				n.propMu.Lock()
				l := len(n.pendingProps)
				n.propMu.Unlock()
				if l == prev {
					break
				}
				prev = l
				runtime.Gosched()
			}
			n.flushBatch()
		}
	}
}

// flushBatch appends every pending proposal as one log suffix: a single
// SaveEntries call (one WAL frame, one Sync) and a single broadcast cover
// the whole batch. Proposers are acked only after the batch is durable,
// so an acked proposal is always recoverable from the WAL.
func (n *Node) flushBatch() {
	// Drain the queue under propMu alone, then do the protocol work under
	// mu. Proposals enqueued after the drain are covered by their own
	// flushCh signal and land in the next frame.
	n.propMu.Lock()
	batch := n.pendingProps
	n.pendingProps = nil
	n.propMu.Unlock()
	if len(batch) == 0 {
		return
	}
	n.mu.Lock()
	if n.stopErr != nil {
		err := n.stopErr
		n.mu.Unlock()
		for _, p := range batch {
			p.fail(err)
		}
		return
	}
	cmds := make([][]byte, len(batch))
	for i, p := range batch {
		cmds[i] = p.cmd
	}
	first, term, err := n.core.ProposeBatch(cmds)
	if err != nil {
		n.mu.Unlock()
		for _, p := range batch {
			p.fail(err)
		}
		return
	}
	// One Ready covers the whole batch: a single SaveEntries frame (one
	// fsync) and one broadcast, entries durable before anything escapes.
	n.processReadyLocked()
	if n.stopErr != nil {
		// The WAL write failed: the node fail-stopped and the batch was
		// never durable (this batch was already drained, so failStopLocked's
		// own sweep did not cover it).
		err := n.stopErr
		n.mu.Unlock()
		for _, p := range batch {
			p.fail(err)
		}
		return
	}
	n.mu.Unlock()
	for i, p := range batch {
		p.complete(first+i, term)
	}
}

// failPropsLocked aborts every pending (not yet flushed) proposal:
// leadership was lost before the batch could be appended, so the commands
// never entered the log. The caller holds mu (for n.leader); the queue
// itself is drained under propMu, keeping the mu → propMu lock order.
func (n *Node) failPropsLocked() {
	n.failPropsLockedErr(fmt.Errorf("%w (known leader: %s)", ErrNotLeader, n.core.Leader()))
}

// failPropsLockedErr is failPropsLocked with a caller-chosen cause (a
// CheckQuorum step-down fails futures with the retryable ErrLeaderStepdown
// instead of a plain redirect).
func (n *Node) failPropsLockedErr(err error) {
	n.propMu.Lock()
	batch := n.pendingProps
	n.pendingProps = nil
	n.propMu.Unlock()
	for _, p := range batch {
		p.fail(err)
	}
}
