package raft_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

// startSnapshotNode launches a one-node raft with a state machine wired
// for compaction: the apply stream feeds the store, and the node captures
// it whenever the applied distance crosses threshold.
func startSnapshotNode(t testing.TB, storage raft.Storage, st *kvstore.Store, threshold int) *raft.Node {
	t.Helper()
	net := transport.NewMemNetwork(0, 0, 1)
	inbox := make(chan raft.Message, 64)
	tr := net.Attach(1, inbox)
	n := raft.StartNode(raft.Options{
		ID:                1,
		Members:           []types.NodeID{1},
		Transport:         tr,
		Storage:           storage,
		StateMachine:      st,
		SnapshotThreshold: threshold,
	})
	t.Cleanup(n.Stop)
	go func() {
		for batch := range n.ApplyCh() {
			for _, msg := range batch {
				st.Apply(msg)
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, role, _ := n.Status(); role == raft.Leader {
			return n
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("single node did not elect itself")
	return nil
}

// TestWALBoundedBySnapshots is the tentpole's acceptance bound: with
// SnapshotThreshold=1000, a long proposal history must leave a WAL whose
// replay is bounded by the threshold, not by history length — restart
// loads one snapshot plus at most ~threshold entries, and compacted
// segments are actually unlinked from disk.
func TestWALBoundedBySnapshots(t *testing.T) {
	total := 50000
	if testing.Short() {
		total = 5000
	}
	const threshold = 1000

	dir := t.TempDir()
	fs, err := raft.OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := kvstore.NewStore()
	n := startSnapshotNode(t, fs, st, threshold)

	// Waves of concurrent async proposals: the flush loop group-commits
	// them, so this runs at fsync-per-batch, not fsync-per-entry.
	const wave = 512
	handles := make([]*raft.Proposal, 0, wave)
	for done := 0; done < total; {
		handles = handles[:0]
		for i := 0; i < wave && done+i < total; i++ {
			handles = append(handles, n.ProposeAsync([]byte(fmt.Sprintf("op-%d", done+i))))
		}
		for _, h := range handles {
			if _, _, err := h.Wait(); err != nil {
				t.Fatalf("propose: %v", err)
			}
		}
		done += len(handles)
	}

	// Let the apply stream and the final compactions settle: the policy
	// keeps firing until fewer than threshold entries sit above the base.
	deadline := time.Now().Add(60 * time.Second)
	settled := false
	for time.Now().Before(deadline) {
		_, _, log, err := fs.Load()
		if err != nil {
			t.Fatal(err)
		}
		if st.AppliedIndex() >= total+1 && len(log) < threshold {
			settled = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !settled {
		_, snap, log, _ := fs.Load()
		t.Fatalf("WAL never settled below the threshold: applied %d, base %d, %d live entries",
			st.AppliedIndex(), snap.Index, len(log))
	}

	n.Stop()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery is one snapshot load plus a bounded suffix replay.
	re, err := raft.OpenFileStorage(dir)
	if err != nil {
		t.Fatalf("recovery after %d proposals: %v", total, err)
	}
	defer re.Close()
	_, snap, log, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(log) >= threshold {
		t.Fatalf("restart replays %d entries; want < %d (snapshots did not bound the WAL)", len(log), threshold)
	}
	if snap.Index+len(log) < total+1 {
		t.Fatalf("history truncated: base %d + %d entries < %d committed", snap.Index, len(log), total+1)
	}
	if snap.Index < total+1-threshold {
		t.Fatalf("snapshot base %d lags the tail by more than the threshold (%d committed)", snap.Index, total+1)
	}

	// Disk-level bound: compacted segments are unlinked, not retained.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	// Live suffix spans at most 2 pre-compaction segments, plus the
	// snapshot rotation and the reopen rotation.
	if len(segs) > 4 {
		t.Fatalf("%d WAL segments on disk after compaction: %v", len(segs), segs)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("want exactly one live snapshot file, got %v", snaps)
	}
}

// TestNodeSnapshotPersistFailStop injects a write error into the
// snapshot persist underneath a live node: the driver must fail-stop
// (surface the error, halt the node) instead of dropping the error and
// truncating a WAL whose replacement image never landed.
func TestNodeSnapshotPersistFailStop(t *testing.T) {
	fa := raft.NewFaultStorage(raft.NewMemStorage())
	st := kvstore.NewStore()
	n := startSnapshotNode(t, fa, st, 8)

	fa.FailNextSaveSnapshot(fmt.Errorf("injected snapshot error"))
	for i := 0; i < 32; i++ {
		if _, _, err := n.Propose([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			break // node already failed stopped: proposals are rejected
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && n.StorageErr() == nil {
		time.Sleep(time.Millisecond)
	}
	err := n.StorageErr()
	if err == nil {
		t.Fatal("node survived a snapshot persist failure")
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("fail-stop error does not name the snapshot persist: %v", err)
	}
}
