package raft_test

import (
	"path/filepath"
	"testing"

	"adore/internal/raft"
)

// BenchmarkWALAppend measures the FileStorage hot path: one SaveEntries
// call (one frame, one fsync) per operation. Run with -benchmem; the
// allocs/op column is the target of the encodeFrame/appendLocked
// scratch-buffer reuse.
func BenchmarkWALAppend(b *testing.B) {
	st, err := raft.OpenFileStorage(filepath.Join(b.TempDir(), "wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	entry := []raft.LogEntry{{Term: 1, Kind: raft.EntryCommand, Command: []byte("benchmark-payload-0123456789")}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.SaveEntries(i+1, entry); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendBatch64 is the group-commit shape: 64 entries per
// frame, amortizing the fsync and the per-frame overhead.
func BenchmarkWALAppendBatch64(b *testing.B) {
	st, err := raft.OpenFileStorage(filepath.Join(b.TempDir(), "wal"))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	batch := make([]raft.LogEntry, 64)
	for i := range batch {
		batch[i] = raft.LogEntry{Term: 1, Kind: raft.EntryCommand, Command: []byte("benchmark-payload-0123456789")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	first := 1
	for i := 0; i < b.N; i++ {
		if err := st.SaveEntries(first, batch); err != nil {
			b.Fatal(err)
		}
		first += len(batch)
	}
}
