package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// TestConcurrentProposeCrashReconfigStress hammers one cluster from four
// directions at once — two proposer goroutines, a crash/restart loop, and
// a reconfiguration loop — while the race detector watches. It is the
// regression net for the locking discipline the guarded-field annotations
// document: any unguarded access to node, store, or network state shows up
// here under `go test -race`.
func TestConcurrentProposeCrashReconfigStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test: skipped with -short")
	}

	var storeMu sync.Mutex
	stores := map[types.NodeID]*raft.MemStorage{}
	c := New(Options{N: 5, Seed: 77, StorageFor: func(id types.NodeID) raft.Storage {
		storeMu.Lock()
		defer storeMu.Unlock()
		if stores[id] == nil {
			stores[id] = raft.NewMemStorage()
		}
		return stores[id]
	}})
	defer c.Stop()

	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}

	all := []types.NodeID{1, 2, 3, 4, 5}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Two proposer goroutines: Propose retries internally across leader
	// changes, so failures during crashes are expected and tolerated.
	proposed := make([]int, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := c.Propose([]byte(fmt.Sprintf("g%d-%d", g, i)), time.Second); err == nil {
					proposed[g]++
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}

	// Crash/restart loop: repeatedly kill a non-leader and bring it back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			lid, err := c.WaitForLeader(timeout)
			if err != nil {
				return
			}
			var victim types.NodeID
			for _, id := range all {
				if id != lid && c.Node(id) != nil {
					victim = id
					break
				}
			}
			if victim == types.NoNode {
				continue
			}
			c.CrashNode(victim)
			time.Sleep(30 * time.Millisecond)
			c.RestartNode(victim, all)
			time.Sleep(30 * time.Millisecond)
		}
	}()

	// Reconfiguration loop: shrink to a quorum-preserving majority and
	// grow back, exercising config entries interleaved with commands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 2; round++ {
			if _, err := c.Reconfigure(types.NewNodeSet(1, 2, 3, 4), time.Second); err != nil {
				continue
			}
			time.Sleep(20 * time.Millisecond)
			_, _ = c.Reconfigure(types.NewNodeSet(all...), time.Second)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)

	if proposed[0]+proposed[1] == 0 {
		t.Fatal("no proposal succeeded despite a running cluster")
	}

	// Let in-flight commits settle, then check log-prefix agreement on the
	// applied command streams of every surviving node.
	time.Sleep(300 * time.Millisecond)
	type entry struct {
		index int
		cmd   []byte
	}
	applied := make(map[types.NodeID][]entry)
	for _, id := range all {
		if c.Node(id) == nil {
			continue
		}
		for _, m := range c.Applied(id) {
			if m.Kind == raft.EntryCommand {
				applied[id] = append(applied[id], entry{m.Index, m.Command})
			}
		}
	}
	for _, a := range all {
		for _, b := range all {
			if a >= b || applied[a] == nil || applied[b] == nil {
				continue
			}
			n := len(applied[a])
			if len(applied[b]) < n {
				n = len(applied[b])
			}
			for i := 0; i < n; i++ {
				ea, eb := applied[a][i], applied[b][i]
				if ea.index != eb.index || !bytes.Equal(ea.cmd, eb.cmd) {
					t.Fatalf("applied streams diverge between %s and %s at position %d: (%d,%q) vs (%d,%q)",
						a, b, i, ea.index, ea.cmd, eb.index, eb.cmd)
				}
			}
		}
	}
}
