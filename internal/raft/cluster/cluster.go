// Package cluster assembles in-process raft clusters over the simulated
// in-memory network — the harness used by the integration tests, the
// examples, and the Fig. 16 benchmark.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

// Options configures a cluster.
type Options struct {
	// N is the initial cluster size (members S1..SN).
	N int
	// Latency/Jitter configure the simulated network.
	Latency time.Duration
	Jitter  time.Duration
	// ElectionTimeoutMin scales all protocol timers (0 = default).
	ElectionTimeoutMin time.Duration
	// DisableR2/DisableR3 reintroduce the reconfiguration bugs the paper's
	// guards prevent (used by the chaos harness to prove it catches them).
	DisableR2 bool
	DisableR3 bool
	// DisablePreVote/DisableCheckQuorum turn off the election-robustness
	// guards (rejoin disruption, minority-leader step-down) for experiments.
	DisablePreVote     bool
	DisableCheckQuorum bool
	// Seed drives all randomness.
	Seed int64
	// OnApply, when set, is called synchronously from each node's apply
	// drain for every committed entry (state machines hook in here).
	OnApply func(types.NodeID, raft.ApplyMsg)
	// StorageFor, when set, supplies per-node persistent storage, which
	// makes CrashNode/RestartNode meaningful (state survives).
	StorageFor func(types.NodeID) raft.Storage
	// StateMachineFor, when set, gives each node snapshot access to its
	// application state machine (required for SnapshotThreshold > 0).
	StateMachineFor func(types.NodeID) raft.StateMachine
	// SnapshotThreshold enables log compaction: after this many applied
	// entries above the snapshot base a node captures its state machine
	// and truncates its WAL (0 = disabled).
	SnapshotThreshold int
	// InboxSize is the per-node transport inbox capacity (0 = 4096).
	// Small values exercise back-pressure: the inbox pump blocks instead
	// of dropping when a node falls behind.
	InboxSize int
}

// Cluster is a set of raft nodes joined by a MemNetwork.
type Cluster struct {
	Net  *transport.MemNetwork
	opts Options

	mu      sync.Mutex
	nodes   map[types.NodeID]*raft.Node      // guarded by mu
	applied map[types.NodeID][]raft.ApplyMsg // guarded by mu
	drains  sync.WaitGroup
}

// New starts a cluster of opts.N nodes and returns it.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		opts.N = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := &Cluster{
		Net:     transport.NewMemNetwork(opts.Latency, opts.Jitter, opts.Seed),
		opts:    opts,
		nodes:   make(map[types.NodeID]*raft.Node),
		applied: make(map[types.NodeID][]raft.ApplyMsg),
	}
	members := types.Range(1, types.NodeID(opts.N)).Copy()
	for _, id := range members {
		c.StartNode(id, members)
	}
	return c
}

// StartNode launches (or restarts) a node with the given initial
// membership and attaches it to the network.
func (c *Cluster) StartNode(id types.NodeID, members []types.NodeID) *raft.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.opts.InboxSize
	if size <= 0 {
		size = 4096
	}
	inbox := make(chan raft.Message, size)
	tr := c.Net.Attach(id, inbox)
	var storage raft.Storage
	if c.opts.StorageFor != nil {
		storage = c.opts.StorageFor(id)
	}
	var sm raft.StateMachine
	if c.opts.StateMachineFor != nil {
		sm = c.opts.StateMachineFor(id)
	}
	n := raft.StartNode(raft.Options{
		ID:                 id,
		Members:            members,
		Transport:          tr,
		Storage:            storage,
		StateMachine:       sm,
		SnapshotThreshold:  c.opts.SnapshotThreshold,
		ElectionTimeoutMin: c.opts.ElectionTimeoutMin,
		DisableR2:          c.opts.DisableR2,
		DisableR3:          c.opts.DisableR3,
		DisablePreVote:     c.opts.DisablePreVote,
		DisableCheckQuorum: c.opts.DisableCheckQuorum,
		Seed:               c.opts.Seed + int64(id),
	})
	// Pump the transport inbox into the node. Delivery blocks when the
	// node's own queue is full (back-pressure, not silent loss); the
	// stop-channel select releases the pump once the node shuts down.
	go func() {
		for m := range inbox {
			select {
			case n.Inbox() <- m:
			case <-n.Done():
				return
			}
		}
	}()
	// Drain and record the apply stream, one lock acquisition per batch.
	c.drains.Add(1)
	go func() {
		defer c.drains.Done()
		for batch := range n.ApplyCh() {
			c.mu.Lock()
			c.applied[id] = append(c.applied[id], batch...)
			c.mu.Unlock()
			if c.opts.OnApply != nil {
				for _, msg := range batch {
					c.opts.OnApply(id, msg)
				}
			}
		}
	}()
	c.nodes[id] = n
	return n
}

// Node returns the node with the given ID (nil if absent).
func (c *Cluster) Node(id types.NodeID) *raft.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// Nodes returns a snapshot of all running nodes.
func (c *Cluster) Nodes() []*raft.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*raft.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	return out
}

// Applied returns a copy of the entries a node has applied so far.
func (c *Cluster) Applied(id types.NodeID) []raft.ApplyMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]raft.ApplyMsg(nil), c.applied[id]...)
}

// ErrNoLeader reports that no leader emerged within the deadline.
var ErrNoLeader = errors.New("cluster: no leader elected within the deadline")

// WaitForLeader blocks until some node is leader and returns its ID.
func (c *Cluster) WaitForLeader(timeout time.Duration) (types.NodeID, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes() {
			if _, role, _ := n.Status(); role == raft.Leader {
				return n.ID(), nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return types.NoNode, ErrNoLeader
}

// Leader returns the leader at the highest term, or nil. (During
// partitions a deposed leader may still believe in itself; the highest
// term wins.)
func (c *Cluster) Leader() *raft.Node {
	var best *raft.Node
	var bestTerm types.Time
	for _, n := range c.Nodes() {
		if term, role, _ := n.Status(); role == raft.Leader && (best == nil || term > bestTerm) {
			best, bestTerm = n, term
		}
	}
	return best
}

// Propose submits a command via the current leader, retrying across leader
// changes until the deadline. It returns the index the command was
// proposed at (commitment is observed via WaitApplied or the KV layer).
func (c *Cluster) Propose(cmd []byte, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			if idx, _, err := l.Propose(cmd); err == nil {
				return idx, nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: propose timed out")
}

// WaitCommit blocks until the given node's commit index reaches idx AND
// the entries up to idx have landed in the cluster's applied record. The
// second condition closes the gap between the node advancing its commit
// index and the drain goroutine recording the (batched) apply stream;
// without it a caller could read Applied() while the batch is still in
// flight on the channel.
func (c *Cluster) WaitCommit(id types.NodeID, idx int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n := c.Node(id); n != nil && n.CommitIndex() >= idx && c.appliedThrough(id) >= idx {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("cluster: %s did not reach commit index %d", id, idx)
}

// appliedThrough reports the highest index in the node's recorded apply
// stream (0 if nothing has been recorded).
func (c *Cluster) appliedThrough(id types.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.applied[id]; len(a) > 0 {
		return a[len(a)-1].Index
	}
	return 0
}

// Reconfigure retries a membership change against the current leader until
// it is accepted (R3 needs the term-opening no-op to commit first) and
// returns the config entry's index. When the new membership sheds the
// current leader, leadership is first handed off gracefully to the most
// caught-up surviving voter (a TimeoutNow transfer instead of waiting for
// the removed leader's silence to time out an election), then the change
// is proposed at the new leader.
func (c *Cluster) Reconfigure(members types.NodeSet, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if l := c.Leader(); l != nil {
			if !members.Contains(l.ID()) {
				// The change removes the leader itself: move leadership into
				// the surviving set first so the cluster never waits out a
				// timeout election on the removed node's silence.
				if to := l.PickTransferTarget(members); to != types.NoNode {
					if err := l.TransferLeader(to); err != nil &&
						!errors.Is(err, raft.ErrTransferInProgress) {
						lastErr = err
					}
					time.Sleep(time.Millisecond)
					continue
				}
			}
			idx, _, err := l.ProposeConfig(members)
			if err == nil {
				return idx, nil
			}
			lastErr = err
		}
		time.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: reconfigure timed out (last error: %v)", lastErr)
}

// CrashNode stops a node abruptly and detaches it from the network; its
// volatile state is lost. With Options.StorageFor set, RestartNode
// recovers the persisted term, vote, and log.
func (c *Cluster) CrashNode(id types.NodeID) {
	c.mu.Lock()
	n := c.nodes[id]
	delete(c.nodes, id)
	c.mu.Unlock()
	c.Net.Detach(id)
	if n != nil {
		n.Stop()
	}
}

// RestartNode relaunches a previously crashed node with the given initial
// membership (its persisted log's configuration entries take precedence).
func (c *Cluster) RestartNode(id types.NodeID, members []types.NodeID) *raft.Node {
	return c.StartNode(id, members)
}

// Stop shuts down every node and the network.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes() {
		n.Stop()
	}
	c.Net.Close()
	c.drains.Wait()
}
