// Package cluster assembles in-process raft clusters over the simulated
// in-memory network — the harness used by the integration tests, the
// examples, and the Fig. 16 benchmark.
//
// Every node in the cluster is a multiraft.Host: with Options.Groups > 1
// it runs that many independent raft groups multiplexed over the shared
// MemNetwork, one WaitCommit/Leader/Propose surface per group (the *G
// methods). The original single-group API is unchanged — it is simply
// group 0.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"adore/internal/backoff"
	"adore/internal/multiraft"
	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

// Options configures a cluster.
type Options struct {
	// N is the initial cluster size (members S1..SN).
	N int
	// Groups is how many raft groups each node hosts (0 or 1 = one). All
	// groups start with the same membership and diverge through their own
	// reconfigurations.
	Groups int
	// Latency/Jitter configure the simulated network.
	Latency time.Duration
	Jitter  time.Duration
	// ElectionTimeoutMin scales all protocol timers (0 = default).
	ElectionTimeoutMin time.Duration
	// DisableR2/DisableR3 reintroduce the reconfiguration bugs the paper's
	// guards prevent (used by the chaos harness to prove it catches them).
	DisableR2 bool
	DisableR3 bool
	// DisablePreVote/DisableCheckQuorum turn off the election-robustness
	// guards (rejoin disruption, minority-leader step-down) for experiments.
	DisablePreVote     bool
	DisableCheckQuorum bool
	// DisableLeaseRead turns off leader-lease reads (every read pays a full
	// ReadIndex barrier); DisableLeaseGuard removes the transfer/reconfig
	// lease invalidation (experiments — the chaos teeth catch its absence).
	DisableLeaseRead  bool
	DisableLeaseGuard bool
	// Seed drives all randomness.
	Seed int64
	// OnApply, when set, is called synchronously from each node's apply
	// drain for every committed entry of group 0 (state machines hook in
	// here; single-group API). Multi-group callers use OnApplyG.
	OnApply func(types.NodeID, raft.ApplyMsg)
	// OnApplyG, when set, receives every group's committed entries.
	OnApplyG func(raft.GroupID, types.NodeID, raft.ApplyMsg)
	// StorageFor, when set, supplies per-node persistent storage for
	// single-group clusters, which makes CrashNode/RestartNode meaningful
	// (state survives). Multi-group clusters use StorageForG.
	StorageFor func(types.NodeID) raft.Storage
	// StorageForG, when set, supplies per-(group, node) storage and takes
	// precedence over StorageFor.
	StorageForG func(raft.GroupID, types.NodeID) raft.Storage
	// StateMachineFor, when set, gives each node snapshot access to its
	// application state machine (required for SnapshotThreshold > 0).
	// Single-group API; multi-group callers use StateMachineForG.
	StateMachineFor func(types.NodeID) raft.StateMachine
	// StateMachineForG supplies per-(group, node) state machines and takes
	// precedence over StateMachineFor.
	StateMachineForG func(raft.GroupID, types.NodeID) raft.StateMachine
	// SnapshotThreshold enables log compaction: after this many applied
	// entries above the snapshot base a node captures its state machine
	// and truncates its WAL (0 = disabled).
	SnapshotThreshold int
	// InboxSize is the per-(node, group) transport inbox capacity
	// (0 = 4096). Small values exercise back-pressure: the inbox pump
	// blocks instead of dropping when a node falls behind.
	InboxSize int
	// NoApplyRecord disables the in-memory applied-stream record. The
	// record exists for the test and chaos oracles; throughput benchmarks
	// turn it off so the cluster-wide mutex on it doesn't serialize the
	// groups' apply drains (and the history doesn't accumulate).
	NoApplyRecord bool
}

// groups returns the effective group count.
func (o *Options) groups() int {
	if o.Groups <= 0 {
		return 1
	}
	return o.Groups
}

// gkey addresses one group's stream on one node.
type gkey struct {
	g  raft.GroupID
	id types.NodeID
}

// Cluster is a set of multiraft hosts joined by a MemNetwork.
type Cluster struct {
	Net  *transport.MemNetwork
	opts Options

	mu      sync.Mutex
	hosts   map[types.NodeID]*multiraft.Host // guarded by mu
	applied map[gkey][]raft.ApplyMsg         // guarded by mu
}

// New starts a cluster of opts.N nodes and returns it.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		opts.N = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := &Cluster{
		Net:     transport.NewMemNetwork(opts.Latency, opts.Jitter, opts.Seed),
		opts:    opts,
		hosts:   make(map[types.NodeID]*multiraft.Host),
		applied: make(map[gkey][]raft.ApplyMsg),
	}
	members := types.Range(1, types.NodeID(opts.N)).Copy()
	for _, id := range members {
		c.StartNode(id, members)
	}
	return c
}

// StartNode launches (or restarts) a node — a host running every group —
// with the given initial membership and attaches it to the network.
// It returns the node's group-0 raft instance (the single-group API).
func (c *Cluster) StartNode(id types.NodeID, members []types.NodeID) *raft.Node {
	host, err := multiraft.Start(multiraft.Options{
		ID:                 id,
		Members:            members,
		Groups:             c.opts.groups(),
		Transport:          transport.HostTransport{Net: c.Net, ID: id},
		ElectionTimeoutMin: c.opts.ElectionTimeoutMin,
		StorageFor: func(g raft.GroupID) raft.Storage {
			return c.storageFor(g, id)
		},
		StateMachineFor: func(g raft.GroupID) raft.StateMachine {
			return c.stateMachineFor(g, id)
		},
		OnApply: func(g raft.GroupID, batch []raft.ApplyMsg) {
			c.record(g, id, batch)
		},
		SnapshotThreshold:  c.opts.SnapshotThreshold,
		DisableR2:          c.opts.DisableR2,
		DisableR3:          c.opts.DisableR3,
		DisablePreVote:     c.opts.DisablePreVote,
		DisableCheckQuorum: c.opts.DisableCheckQuorum,
		DisableLeaseRead:   c.opts.DisableLeaseRead,
		DisableLeaseGuard:  c.opts.DisableLeaseGuard,
		Seed:               c.opts.Seed + int64(id),
		InboxSize:          c.opts.InboxSize,
	})
	if err != nil {
		// Only file storage opened from a root can fail, and the cluster
		// harness always routes through StorageFor — unreachable.
		panic(fmt.Sprintf("cluster: start node %s: %v", id, err))
	}
	c.mu.Lock()
	c.hosts[id] = host
	c.mu.Unlock()
	return host.Node(0)
}

// storageFor resolves one group's storage on one node from the options.
func (c *Cluster) storageFor(g raft.GroupID, id types.NodeID) raft.Storage {
	if c.opts.StorageForG != nil {
		return c.opts.StorageForG(g, id)
	}
	if c.opts.StorageFor != nil && g == 0 {
		return c.opts.StorageFor(id)
	}
	return nil
}

// stateMachineFor resolves one group's state machine on one node.
func (c *Cluster) stateMachineFor(g raft.GroupID, id types.NodeID) raft.StateMachine {
	if c.opts.StateMachineForG != nil {
		return c.opts.StateMachineForG(g, id)
	}
	if c.opts.StateMachineFor != nil && g == 0 {
		return c.opts.StateMachineFor(id)
	}
	return nil
}

// record captures one group's apply batch and fans it out to the hooks.
func (c *Cluster) record(g raft.GroupID, id types.NodeID, batch []raft.ApplyMsg) {
	if !c.opts.NoApplyRecord {
		k := gkey{g, id}
		c.mu.Lock()
		c.applied[k] = append(c.applied[k], batch...)
		c.mu.Unlock()
	}
	if c.opts.OnApplyG != nil {
		for _, msg := range batch {
			c.opts.OnApplyG(g, id, msg)
		}
	}
	if c.opts.OnApply != nil && g == 0 {
		for _, msg := range batch {
			c.opts.OnApply(id, msg)
		}
	}
}

// Host returns the multiraft host for the given node (nil if crashed).
func (c *Cluster) Host(id types.NodeID) *multiraft.Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hosts[id]
}

// Node returns the group-0 node with the given ID (nil if absent).
func (c *Cluster) Node(id types.NodeID) *raft.Node { return c.NodeG(0, id) }

// NodeG returns group g's node with the given ID (nil if absent).
func (c *Cluster) NodeG(g raft.GroupID, id types.NodeID) *raft.Node {
	c.mu.Lock()
	h := c.hosts[id]
	c.mu.Unlock()
	if h == nil {
		return nil
	}
	return h.Node(g)
}

// Nodes returns a snapshot of all running group-0 nodes.
func (c *Cluster) Nodes() []*raft.Node { return c.NodesG(0) }

// NodesG returns a snapshot of all running nodes of group g.
func (c *Cluster) NodesG(g raft.GroupID) []*raft.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*raft.Node, 0, len(c.hosts))
	for _, h := range c.hosts {
		if n := h.Node(g); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Applied returns a copy of the group-0 entries a node has applied so far.
func (c *Cluster) Applied(id types.NodeID) []raft.ApplyMsg { return c.AppliedG(0, id) }

// AppliedG returns a copy of the entries a node has applied in group g.
func (c *Cluster) AppliedG(g raft.GroupID, id types.NodeID) []raft.ApplyMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]raft.ApplyMsg(nil), c.applied[gkey{g, id}]...)
}

// ErrNoLeader reports that no leader emerged within the deadline.
var ErrNoLeader = errors.New("cluster: no leader elected within the deadline")

// WaitForLeader blocks until some group-0 node is leader and returns its ID.
func (c *Cluster) WaitForLeader(timeout time.Duration) (types.NodeID, error) {
	return c.WaitForLeaderG(0, timeout)
}

// WaitForLeaderG blocks until some node leads group g and returns its ID.
func (c *Cluster) WaitForLeaderG(g raft.GroupID, timeout time.Duration) (types.NodeID, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range c.NodesG(g) {
			if _, role, _ := n.Status(); role == raft.Leader {
				return n.ID(), nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return types.NoNode, ErrNoLeader
}

// Leader returns group 0's leader at the highest term, or nil.
func (c *Cluster) Leader() *raft.Node { return c.LeaderG(0) }

// LeaderG returns group g's leader at the highest term, or nil. (During
// partitions a deposed leader may still believe in itself; the highest
// term wins.)
func (c *Cluster) LeaderG(g raft.GroupID) *raft.Node {
	var best *raft.Node
	var bestTerm types.Time
	for _, n := range c.NodesG(g) {
		if term, role, _ := n.Status(); role == raft.Leader && (best == nil || term > bestTerm) {
			best, bestTerm = n, term
		}
	}
	return best
}

// Propose submits a command via group 0's current leader, retrying across
// leader changes until the deadline. It returns the index the command was
// proposed at (commitment is observed via WaitCommit or the KV layer).
func (c *Cluster) Propose(cmd []byte, timeout time.Duration) (int, error) {
	return c.ProposeG(0, cmd, timeout)
}

// ProposeG submits a command via group g's current leader.
func (c *Cluster) ProposeG(g raft.GroupID, cmd []byte, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l := c.LeaderG(g); l != nil {
			if idx, _, err := l.Propose(cmd); err == nil {
				return idx, nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: propose timed out")
}

// WaitCommit blocks until the given node's group-0 commit index reaches
// idx AND the entries up to idx have landed in the cluster's applied
// record. The second condition closes the gap between the node advancing
// its commit index and the drain goroutine recording the (batched) apply
// stream; without it a caller could read Applied() while the batch is
// still in flight on the channel.
//
// The poll uses the same capped jittered backoff helper as the kvstore
// client (internal/backoff, the single definition): commits that land in
// microseconds are seen after a sub-millisecond first slice, while a
// genuinely stalled cluster is polled a handful of times per interval
// instead of once per fixed millisecond.
func (c *Cluster) WaitCommit(id types.NodeID, idx int, timeout time.Duration) error {
	return c.WaitCommitG(0, id, idx, timeout)
}

// WaitCommitG is WaitCommit against group g.
func (c *Cluster) WaitCommitG(g raft.GroupID, id types.NodeID, idx int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	bo := backoff.New(200*time.Microsecond, 10*time.Millisecond, backoff.NextSeed())
	for time.Now().Before(deadline) {
		if n := c.NodeG(g, id); n != nil && n.CommitIndex() >= idx && c.appliedThrough(g, id) >= idx {
			return nil
		}
		bo.Sleep(deadline)
	}
	return fmt.Errorf("cluster: %s did not reach commit index %d in group %d", id, idx, g)
}

// appliedThrough reports the highest index in the node's recorded apply
// stream for group g (0 if nothing has been recorded).
func (c *Cluster) appliedThrough(g raft.GroupID, id types.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.applied[gkey{g, id}]; len(a) > 0 {
		return a[len(a)-1].Index
	}
	return 0
}

// Reconfigure retries a group-0 membership change against the current
// leader until it is accepted (R3 needs the term-opening no-op to commit
// first) and returns the config entry's index. When the new membership
// sheds the current leader, leadership is first handed off gracefully to
// the most caught-up surviving voter (a TimeoutNow transfer instead of
// waiting for the removed leader's silence to time out an election), then
// the change is proposed at the new leader.
func (c *Cluster) Reconfigure(members types.NodeSet, timeout time.Duration) (int, error) {
	return c.ReconfigureG(0, members, timeout)
}

// ReconfigureG is Reconfigure against group g: each group reconfigures on
// its own schedule, independent of the others.
func (c *Cluster) ReconfigureG(g raft.GroupID, members types.NodeSet, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if l := c.LeaderG(g); l != nil {
			if !members.Contains(l.ID()) {
				// The change removes the leader itself: move leadership into
				// the surviving set first so the cluster never waits out a
				// timeout election on the removed node's silence.
				if to := l.PickTransferTarget(members); to != types.NoNode {
					if err := l.TransferLeader(to); err != nil &&
						!errors.Is(err, raft.ErrTransferInProgress) {
						lastErr = err
					}
					time.Sleep(time.Millisecond)
					continue
				}
			}
			idx, _, err := l.ProposeConfig(members)
			if err == nil {
				return idx, nil
			}
			lastErr = err
		}
		time.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("cluster: reconfigure timed out (last error: %v)", lastErr)
}

// CrashNode stops a node abruptly — every group it hosts — and detaches it
// from the network; its volatile state is lost. With Options.StorageFor
// (or StorageForG) set, RestartNode recovers the persisted term, vote, and
// log per group.
func (c *Cluster) CrashNode(id types.NodeID) {
	c.mu.Lock()
	h := c.hosts[id]
	delete(c.hosts, id)
	c.mu.Unlock()
	c.Net.Detach(id)
	if h != nil {
		h.Stop()
	}
}

// RestartNode relaunches a previously crashed node with the given initial
// membership (its persisted log's configuration entries take precedence).
func (c *Cluster) RestartNode(id types.NodeID, members []types.NodeID) *raft.Node {
	return c.StartNode(id, members)
}

// Stop shuts down every node and the network.
func (c *Cluster) Stop() {
	c.mu.Lock()
	hosts := make([]*multiraft.Host, 0, len(c.hosts))
	for _, h := range c.hosts {
		hosts = append(hosts, h)
	}
	c.mu.Unlock()
	for _, h := range hosts {
		h.Stop()
	}
	c.Net.Close()
}
