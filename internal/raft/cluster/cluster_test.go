package cluster

import (
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

const timeout = 5 * time.Second

func TestClusterElectionAndPropose(t *testing.T) {
	c := New(Options{N: 3, Seed: 5})
	defer c.Stop()
	id, err := c.WaitForLeader(timeout)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node(id) == nil {
		t.Fatal("leader node not found")
	}
	idx, err := c.Propose([]byte("hello"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(id, idx, timeout); err != nil {
		t.Fatal(err)
	}
	// The applied stream records the command.
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		msgs := c.Applied(id)
		for _, m := range msgs {
			if m.Kind == raft.EntryCommand && string(m.Command) == "hello" {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("command never applied")
}

func TestClusterOnApplyHook(t *testing.T) {
	got := make(chan raft.ApplyMsg, 64)
	c := New(Options{N: 3, Seed: 6, OnApply: func(id types.NodeID, m raft.ApplyMsg) {
		if m.Kind == raft.EntryCommand {
			select {
			case got <- m:
			default:
			}
		}
	}})
	defer c.Stop()
	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Propose([]byte("x"), timeout); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Command) != "x" {
			t.Errorf("hook saw %q", m.Command)
		}
	case <-time.After(timeout):
		t.Fatal("OnApply hook never fired")
	}
}

func TestClusterDefaults(t *testing.T) {
	c := New(Options{}) // N and Seed default
	defer c.Stop()
	if len(c.Nodes()) != 3 {
		t.Errorf("%d nodes, want default 3", len(c.Nodes()))
	}
}

func TestClusterReconfigureHelper(t *testing.T) {
	c := New(Options{N: 3, Seed: 8})
	defer c.Stop()
	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}
	c.StartNode(4, []types.NodeID{1, 2, 3, 4})
	idx, err := c.Reconfigure(types.Range(1, 4), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(4, idx, timeout); err != nil {
		t.Fatal(err)
	}
	if got := c.Leader().Members(); !got.Equal(types.Range(1, 4)) {
		t.Errorf("members = %v", got)
	}
}

func TestWaitCommitTimesOut(t *testing.T) {
	c := New(Options{N: 3, Seed: 9})
	defer c.Stop()
	if err := c.WaitCommit(1, 9999, 50*time.Millisecond); err == nil {
		t.Error("WaitCommit should time out for an unreachable index")
	}
}
