package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// TestNoLossUnderInboxPressure overloads a cluster whose per-node inboxes
// are tiny (8 messages) with hundreds of concurrent proposals. Before the
// pump fix, cluster.StartNode silently discarded messages whenever a
// node's queue was momentarily full; now delivery blocks (back-pressure)
// and releases only on node shutdown. The assertion is the replication
// contract: every acked proposal commits, and all nodes apply identical
// command sequences with nothing missing.
func TestNoLossUnderInboxPressure(t *testing.T) {
	c := New(Options{N: 3, Seed: 77, InboxSize: 8})
	defer c.Stop()
	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const perWorker = 20
	total := workers * perWorker
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxIdx := 0
	acked := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cmd := []byte(fmt.Sprintf("w%d-%d", w, i))
				deadline := time.Now().Add(timeout)
				for {
					l := c.Leader()
					if l == nil {
						if !time.Now().Before(deadline) {
							t.Errorf("no leader for %s", cmd)
							return
						}
						time.Sleep(time.Millisecond)
						continue
					}
					idx, _, err := l.ProposeAsync(cmd).Wait()
					if err == nil {
						mu.Lock()
						acked++
						if idx > maxIdx {
							maxIdx = idx
						}
						mu.Unlock()
						break
					}
					if !time.Now().Before(deadline) {
						t.Errorf("propose %s: %v", cmd, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if acked != total {
		t.Fatalf("acked %d of %d proposals", acked, total)
	}

	for _, id := range []types.NodeID{1, 2, 3} {
		if err := c.WaitCommit(id, maxIdx, timeout); err != nil {
			t.Fatal(err)
		}
	}
	// All nodes applied the same commands in the same order, none lost.
	ref := commandStream(c.Applied(1), maxIdx)
	if len(ref) != total {
		t.Fatalf("node 1 applied %d commands up to index %d, want %d", len(ref), maxIdx, total)
	}
	for _, id := range []types.NodeID{2, 3} {
		got := commandStream(c.Applied(id), maxIdx)
		if len(got) != len(ref) {
			t.Fatalf("%s applied %d commands, node 1 applied %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s diverges at position %d: %q vs %q", id, i, got[i], ref[i])
			}
		}
	}
}

// commandStream extracts the applied command payloads up to and including
// index bound (committed entries past the bound may still be in flight on
// some nodes when the check runs).
func commandStream(msgs []raft.ApplyMsg, bound int) []string {
	var out []string
	for _, m := range msgs {
		if m.Index <= bound && m.Kind == raft.EntryCommand {
			out = append(out, string(m.Command))
		}
	}
	return out
}
