package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// TestCrashDuringPendingReconfig crashes the leader while a configuration
// entry is appended but not yet committed (the exact window R2 polices) and
// checks the cluster recovers to the committed configuration: the pending
// change dies with the deposed leader, every replica — including the
// restarted one — converges on the same membership, and the guards still
// accept a fresh, legitimate reconfiguration afterwards.
//
// The "remove" case leaves a pending shrink of the initial five nodes; the
// "add" case first commits a removal and leaves a pending re-add, so both
// directions of the single-node delta cross the crash.
func TestCrashDuringPendingReconfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		add  bool
	}{
		{name: "pending-remove", add: false},
		{name: "pending-add", add: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stores := map[types.NodeID]*raft.MemStorage{}
			// DisableCheckQuorum: the test deliberately isolates the leader and
			// then examines R2 at that stale leader; CheckQuorum would step it
			// down (correctly) before the assertion could run.
			c := New(Options{N: 5, Seed: 77, DisableCheckQuorum: true, StorageFor: func(id types.NodeID) raft.Storage {
				if stores[id] == nil {
					stores[id] = raft.NewMemStorage()
				}
				return stores[id]
			}})
			defer c.Stop()

			lid, err := c.WaitForLeader(timeout)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Propose([]byte("warmup"), timeout); err != nil {
				t.Fatal(err)
			}

			// victim is the node the pending change adds or removes: the
			// highest ID that is not the leader.
			victim := types.NodeID(5)
			if victim == lid {
				victim = 4
			}
			if tc.add {
				// Commit the removal first so the pending change can re-add.
				idx, err := c.Reconfigure(c.Leader().Members().Remove(victim), timeout)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.WaitCommit(lid, idx, timeout); err != nil {
					t.Fatal(err)
				}
			}

			// Cut the leader off alone, then propose the config change at
			// it: R1–R3 accept it (nothing else in flight, current-term
			// entry committed), but a quorum is unreachable, so the entry
			// stays pending in the deposed leader's log forever.
			leader := c.Node(lid)
			var rest []types.NodeID
			for id := types.NodeID(1); id <= 5; id++ {
				if id != lid {
					rest = append(rest, id)
				}
			}
			c.Net.Partition([]types.NodeID{lid}, rest)
			target := leader.Members()
			if tc.add {
				target = target.Add(victim)
			} else {
				target = target.Remove(victim)
			}
			pendingIdx, _, err := leader.ProposeConfig(target)
			if err != nil {
				t.Fatalf("pending config rejected: %v", err)
			}
			time.Sleep(100 * time.Millisecond)
			if ci := leader.CommitIndex(); ci >= pendingIdx {
				t.Fatalf("config entry committed (index %d ≥ %d) despite the partition", ci, pendingIdx)
			}
			// R2 must hold at the stale leader: a second change is rejected
			// while the first is uncommitted.
			if _, _, err := leader.ProposeConfig(leader.Members().Remove(rest[0])); !errors.Is(err, raft.ErrReconfigPending) {
				t.Fatalf("second config while pending: err = %v, want ErrReconfigPending", err)
			}

			// The leader dies with the change still pending; the majority
			// side moves on without ever seeing it.
			c.CrashNode(lid)
			c.Net.Heal()
			deadline := time.Now().Add(timeout)
			for c.Leader() == nil && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			newLeader := c.Leader()
			if newLeader == nil {
				t.Fatal("no replacement leader after the crash")
			}
			idx, err := c.Propose([]byte("after-crash"), timeout)
			if err != nil {
				t.Fatal(err)
			}

			// The restarted ex-leader must abandon its pending change and
			// converge to the committed configuration.
			c.RestartNode(lid, []types.NodeID{1, 2, 3, 4, 5})
			if err := c.WaitCommit(lid, idx, timeout); err != nil {
				t.Fatal(err)
			}
			committed := newLeader.Members()
			if tc.add && committed.Contains(victim) {
				t.Fatalf("pending add of S%d leaked into the committed config %s", victim, committed)
			}
			if !tc.add && !committed.Contains(victim) {
				t.Fatalf("pending remove of S%d leaked into the committed config %s", victim, committed)
			}
			if got := c.Node(lid).Members(); !got.Equal(committed) {
				t.Fatalf("restarted node's config %s != committed config %s", got, committed)
			}

			// R2/R3 still function after recovery: a fresh change is
			// accepted, commits, and every member converges on it.
			final := committed.Remove(victim)
			if tc.add {
				final = committed.Add(victim)
			}
			fidx, err := c.Reconfigure(final, timeout)
			if err != nil {
				t.Fatalf("post-recovery reconfigure: %v", err)
			}
			for _, id := range final.Slice() {
				if err := c.WaitCommit(id, fidx, timeout); err != nil {
					t.Fatal(err)
				}
				if got := c.Node(id).Members(); !got.Equal(final) {
					t.Fatalf("S%d config %s != %s after recovery reconfig", id, got, final)
				}
			}
		})
	}
}

// TestFollowerCrashDuringPendingReconfig crashes a follower while a config
// entry is in flight: the change must still commit (the follower was not
// needed for quorum), and the restarted follower must catch up to it.
func TestFollowerCrashDuringPendingReconfig(t *testing.T) {
	stores := map[types.NodeID]*raft.MemStorage{}
	c := New(Options{N: 5, Seed: 79, StorageFor: func(id types.NodeID) raft.Storage {
		if stores[id] == nil {
			stores[id] = raft.NewMemStorage()
		}
		return stores[id]
	}})
	defer c.Stop()

	lid, err := c.WaitForLeader(timeout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Propose([]byte("warmup"), timeout); err != nil {
		t.Fatal(err)
	}
	var follower types.NodeID = 5
	if follower == lid {
		follower = 4
	}
	var removed types.NodeID = 1
	for removed == lid || removed == follower {
		removed++
	}

	// Crash the follower, then run the reconfiguration while it is down.
	c.CrashNode(follower)
	target := c.Node(lid).Members().Remove(removed)
	idx, err := c.Reconfigure(target, timeout)
	if err != nil {
		t.Fatalf("reconfigure with a crashed follower: %v", err)
	}
	if err := c.WaitCommit(lid, idx, timeout); err != nil {
		t.Fatal(err)
	}

	c.RestartNode(follower, []types.NodeID{1, 2, 3, 4, 5})
	if err := c.WaitCommit(follower, idx, timeout); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(follower).Members(); !got.Equal(target) {
		t.Fatalf("restarted follower's config %s != committed %s", got, target)
	}
	// And the cluster still makes progress with it back.
	if _, err := c.Propose([]byte(fmt.Sprintf("post-%d", idx)), timeout); err != nil {
		t.Fatal(err)
	}
}
