package cluster

import (
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// TestCrashRestartRecoversState crashes a follower and the leader in turn;
// with persistent storage both recover their logs and the cluster's
// committed data survives.
func TestCrashRestartRecoversState(t *testing.T) {
	stores := map[types.NodeID]*raft.MemStorage{}
	c := New(Options{N: 3, Seed: 21, StorageFor: func(id types.NodeID) raft.Storage {
		if stores[id] == nil {
			stores[id] = raft.NewMemStorage()
		}
		return stores[id]
	}})
	defer c.Stop()

	lid, err := c.WaitForLeader(timeout)
	if err != nil {
		t.Fatal(err)
	}
	var idx int
	for i := 0; i < 5; i++ {
		idx, err = c.Propose([]byte(fmt.Sprintf("v%d", i)), timeout)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if err := c.WaitCommit(id, idx, timeout); err != nil {
			t.Fatal(err)
		}
	}

	// Crash a follower, keep writing, restart it: it must catch up from
	// its persisted log rather than from scratch.
	var follower types.NodeID
	for _, id := range []types.NodeID{1, 2, 3} {
		if id != lid {
			follower = id
			break
		}
	}
	c.CrashNode(follower)
	idx2, err := c.Propose([]byte("while-down"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCommit(lid, idx2, timeout); err != nil {
		t.Fatal(err)
	}
	n := c.RestartNode(follower, []types.NodeID{1, 2, 3})
	if err := c.WaitCommit(follower, idx2, timeout); err != nil {
		t.Fatal(err)
	}
	if term, _, _ := n.Status(); term == 0 {
		t.Error("restarted node lost its persisted term")
	}

	// Crash the leader: a replacement emerges, commits survive, and the
	// restarted ex-leader rejoins as a follower with its log intact.
	c.CrashNode(lid)
	deadline := time.Now().Add(timeout)
	for c.Leader() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.Leader() == nil {
		t.Fatal("no replacement leader after crash")
	}
	idx3, err := c.Propose([]byte("after-leader-crash"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	c.RestartNode(lid, []types.NodeID{1, 2, 3})
	if err := c.WaitCommit(lid, idx3, timeout); err != nil {
		t.Fatal(err)
	}
}

// TestRestartWithoutStorageStartsFresh documents the volatile default.
func TestRestartWithoutStorageStartsFresh(t *testing.T) {
	c := New(Options{N: 3, Seed: 25})
	defer c.Stop()
	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}
	idx, err := c.Propose([]byte("x"), timeout)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []types.NodeID{1, 2, 3} {
		if err := c.WaitCommit(id, idx, timeout); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashNode(3)
	n := c.RestartNode(3, []types.NodeID{1, 2, 3})
	// Volatile restart: empty log until re-replicated, but it must still
	// converge via normal replication.
	if err := c.WaitCommit(3, idx, timeout); err != nil {
		t.Fatal(err)
	}
	_ = n
}
