package cluster

import (
	"fmt"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// rejoinScenario isolates a follower for ten election intervals, runs
// proposals through the stable majority, heals, and keeps proposing. It
// returns the leader's (id, term) before the isolation and after the heal
// settles. With Pre-Vote + sticky leaders the rejoin must be a non-event;
// with Pre-Vote disabled the rejoining node's inflated term deposes the
// leader (the contrast subtest below).
func rejoinScenario(t *testing.T, disablePreVote bool) (before, after struct {
	id   types.NodeID
	term types.Time
}) {
	t.Helper()
	const et = 15 * time.Millisecond
	c := New(Options{
		N:                  5,
		Seed:               61,
		ElectionTimeoutMin: et,
		DisablePreVote:     disablePreVote,
	})
	defer c.Stop()
	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}
	// Let the leader establish itself before we measure its term.
	time.Sleep(4 * et)
	l := c.Leader()
	if l == nil {
		t.Fatal("no leader after settle")
	}
	before.id = l.ID()
	before.term, _, _ = l.Status()

	// Isolate a follower and let it stew for ten election intervals —
	// plenty of futile campaigns (term-bumping ones if Pre-Vote is off).
	victim := types.NodeID(1)
	if victim == before.id {
		victim = 2
	}
	c.Net.Isolate(victim)
	time.Sleep(10 * et)

	// The 4-node majority must keep serving throughout the heal window:
	// proposals spanning the rejoin must not time out.
	c.Net.Heal()
	for i := 0; i < 8; i++ {
		if _, err := c.Propose([]byte(fmt.Sprintf("heal-%d", i)), timeout); err != nil {
			t.Fatalf("proposal %d across the rejoin failed: %v", i, err)
		}
		time.Sleep(et / 3)
	}
	// Give any disruption (or its repair) time to play out, then read the
	// final leader.
	time.Sleep(6 * et)
	deadline := time.Now().Add(timeout)
	for {
		if l := c.Leader(); l != nil {
			after.id = l.ID()
			after.term, _, _ = l.Status()
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatal("no leader after heal")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerRejoinDoesNotDisrupt is the cluster-level Pre-Vote regression:
// a follower cut off for ten election intervals rejoins without deposing
// the leader — same leader, same term, and no proposal timed out while it
// rejoined.
func TestFollowerRejoinDoesNotDisrupt(t *testing.T) {
	before, after := rejoinScenario(t, false)
	if after.id != before.id || after.term != before.term {
		t.Fatalf("rejoin disrupted leadership: S%d term %d -> S%d term %d",
			before.id, before.term, after.id, after.term)
	}
}

// TestFollowerRejoinDisruptsWithoutPreVote is the contrast run: the same
// scenario with Pre-Vote disabled must show the historical disruption — the
// isolated follower's term-bumping campaigns force a term change on rejoin.
// (It proves the regression test above is load-bearing, not vacuous.)
func TestFollowerRejoinDisruptsWithoutPreVote(t *testing.T) {
	if testing.Short() {
		t.Skip("contrast run in -short mode")
	}
	before, after := rejoinScenario(t, true)
	if after.term == before.term {
		t.Fatalf("Pre-Vote disabled but the rejoin left term %d unchanged — the scenario no longer exercises disruption", before.term)
	}
	t.Logf("disruption reproduced: S%d term %d -> S%d term %d", before.id, before.term, after.id, after.term)
}

// TestTransferLeader exercises the explicit handoff at cluster level: the
// leader transfers to a named voter, the target wins a transfer election
// within an election interval or two, and proposals keep working.
func TestTransferLeader(t *testing.T) {
	c := New(Options{N: 3, Seed: 67, ElectionTimeoutMin: 15 * time.Millisecond})
	defer c.Stop()
	if _, err := c.WaitForLeader(timeout); err != nil {
		t.Fatal(err)
	}
	l := c.Leader()
	if l == nil {
		t.Fatal("no leader")
	}
	// Commit something so followers can be caught up.
	if _, err := c.Propose([]byte("pre"), timeout); err != nil {
		t.Fatal(err)
	}
	to := l.PickTransferTarget(l.Members())
	if to == types.NoNode || to == l.ID() {
		t.Fatalf("bad transfer target %v (leader S%d)", to, l.ID())
	}
	if err := l.TransferLeader(to); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(timeout)
	for {
		if nl := c.Leader(); nl != nil && nl.ID() == to {
			if _, role, _ := nl.Status(); role == raft.Leader {
				break
			}
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("S%d never took over leadership from S%d", to, l.ID())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Propose([]byte("post"), timeout); err != nil {
		t.Fatalf("proposal after transfer: %v", err)
	}
}
