package raft_test

import (
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
)

// TestReadIndexNotLeaderRace hammers ReadIndex on followers while the
// leader's heartbeats update their last-known-leader field. The not-leader
// error path used to read n.leader after releasing the mutex, which the
// race detector flags the moment a heartbeat lands mid-format; this test
// fails under -race on that code path.
func TestReadIndexNotLeaderRace(t *testing.T) {
	c := newCluster(t, 3)
	if _, err := c.WaitForLeader(waitLeader); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, n := range c.Nodes() {
		if _, role, _ := n.Status(); role == raft.Leader {
			continue
		}
		wg.Add(1)
		go func(n *raft.Node) {
			defer wg.Done()
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				// Followers always take the not-leader error path.
				_, _ = n.ReadIndex(time.Millisecond)
			}
		}(n)
	}
	// Keep the leader proposing so heartbeats (which rewrite each
	// follower's leader field) flow continuously.
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		_, _ = c.Propose([]byte("tick"), 50*time.Millisecond)
	}
	wg.Wait()
}
