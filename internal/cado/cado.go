// Package cado implements the CADO model: Adore with every
// reconfiguration-related part removed (the paper's "configuration-aware
// ADO", §3 — delete the boxed blue definitions). It is useful for
// reasoning about protocols with static configurations, and serves as the
// baseline in the proof-effort comparison (experiment E2): the paper
// reports 1.3k lines of Coq for CADO's safety versus 4.5k for Adore's.
//
// The implementation wraps core.State with reconfiguration disabled, so the
// CADO transition relation is by construction the restriction of Adore's —
// the relationship the paper establishes by erasing the boxed rules.
package cado

import (
	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/types"
)

// State is Σ_CADO: an Adore state whose rules forbid reconfig. The
// configuration fixed at construction never changes.
type State struct {
	inner *core.State
}

// NewState builds a CADO instance over a static majority-quorum
// configuration with the given members.
func NewState(members types.NodeSet) *State {
	return &State{inner: core.NewState(config.RaftSingleNode, members, core.StaticRules())}
}

// NewStateWithConfig builds a CADO instance over any static configuration
// family (the quorum definition still matters; the R1⁺ relation does not,
// since reconfig is disabled).
func NewStateWithConfig(scheme config.Scheme, members types.NodeSet) *State {
	return &State{inner: core.NewState(scheme, members, core.StaticRules())}
}

// Inner exposes the underlying Adore state for the invariant checkers and
// the model explorer, which operate uniformly on core.State.
func (s *State) Inner() *core.State { return s.inner }

// Pull performs the election phase (see core.State.Pull).
func (s *State) Pull(nid types.NodeID, ch core.PullChoice) (core.PullResult, error) {
	return s.inner.Pull(nid, ch)
}

// Invoke performs method invocation (see core.State.Invoke).
func (s *State) Invoke(nid types.NodeID, m types.MethodID) (*core.Cache, error) {
	return s.inner.Invoke(nid, m)
}

// Push performs the commit phase (see core.State.Push).
func (s *State) Push(nid types.NodeID, ch core.PushChoice) (core.PushResult, error) {
	return s.inner.Push(nid, ch)
}

// CommittedMethods returns the committed log (the SMR view).
func (s *State) CommittedMethods() []types.MethodID {
	return s.inner.CommittedMethods()
}

// Config returns the (static) configuration.
func (s *State) Config() config.Config { return s.inner.Tree.Root().Conf }

// Clone deep-copies the state.
func (s *State) Clone() *State { return &State{inner: s.inner.Clone()} }

// Key returns the canonical state signature.
func (s *State) Key() string { return s.inner.Key() }
