package cado

import (
	"errors"
	"reflect"
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/explore"
	"adore/internal/invariant"
	"adore/internal/types"
)

func TestBasicRoundTrip(t *testing.T) {
	s := NewState(types.Range(1, 3))
	if _, err := s.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := s.Invoke(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Push(1, core.PushChoice{Q: types.NewNodeSet(1, 2), CM: m.ID})
	if err != nil || !res.Quorum {
		t.Fatalf("push: %v %+v", err, res)
	}
	if got := s.CommittedMethods(); !reflect.DeepEqual(got, []types.MethodID{42}) {
		t.Errorf("committed = %v", got)
	}
}

func TestReconfigIsUnreachable(t *testing.T) {
	s := NewState(types.Range(1, 3))
	if _, err := s.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Inner().Reconfig(1, config.NewMajorityConfig(types.Range(1, 4)))
	if !errors.Is(err, core.ErrReconfigDisabled) {
		t.Errorf("want ErrReconfigDisabled, got %v", err)
	}
	if got := core.EnumerateReconfigs(s.Inner(), 1); len(got) != 0 {
		t.Errorf("explorer enumerates reconfigs in CADO: %v", got)
	}
}

func TestConfigIsStatic(t *testing.T) {
	s := NewState(types.Range(1, 3))
	want := s.Config()
	if _, err := s.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Inner().Tree.All() {
		if !c.Conf.Equal(want) {
			t.Errorf("cache %v has a different configuration", c)
		}
	}
}

func TestCloneAndKey(t *testing.T) {
	s := NewState(types.Range(1, 3))
	c := s.Clone()
	if s.Key() != c.Key() {
		t.Error("clone key differs")
	}
	if _, err := c.Pull(1, core.PullChoice{Q: types.NewNodeSet(1, 2), T: 1}); err != nil {
		t.Fatal(err)
	}
	if s.Key() == c.Key() {
		t.Error("mutating the clone changed the original")
	}
}

// TestCADOExhaustivelySafe is the CADO side of experiment E2: exhaustive
// exploration of the static-configuration model finds no violations, and
// its state space is markedly smaller than Adore's at the same bound.
func TestCADOExhaustivelySafe(t *testing.T) {
	s := NewState(types.Range(1, 3)).Inner()
	res := explore.BFS(s, explore.Options{MaxDepth: 5, MaxStates: 60000})
	if res.Violation != nil {
		t.Fatalf("violation in CADO: %v\ntrace: %v", res.Violation, res.Trace)
	}
	full := core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
	resFull := explore.BFS(full, explore.Options{MaxDepth: 4, MaxStates: 60000})
	if resFull.Violation != nil {
		t.Fatalf("violation in Adore: %v", resFull.Violation)
	}
	t.Logf("CADO depth 5: %d states; Adore depth 4: %d states", res.States, resFull.States)
}

// TestCADOMatchesAdoreWithoutReconfig replays identical operation schedules
// on a CADO state and an Adore state that never reconfigures: the resulting
// canonical state keys must be identical at every step (CADO is the
// restriction of Adore).
func TestCADOMatchesAdoreWithoutReconfig(t *testing.T) {
	cadoSt := NewState(types.Range(1, 3))
	adoreSt := core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
	o := core.NewOracle(99)
	for i := 0; i < 40; i++ {
		nid := types.NodeID(o.Intn(3) + 1)
		switch o.Intn(3) {
		case 0:
			if ch, ok := o.PullChoice(adoreSt, nid, 0); ok {
				if _, err := adoreSt.Pull(nid, ch); err != nil {
					t.Fatal(err)
				}
				if _, err := cadoSt.Pull(nid, ch); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			_, errA := adoreSt.Invoke(nid, types.MethodID(i))
			_, errC := cadoSt.Invoke(nid, types.MethodID(i))
			if (errA == nil) != (errC == nil) {
				t.Fatalf("invoke diverged: adore=%v cado=%v", errA, errC)
			}
		case 2:
			if ch, ok := o.PushChoice(adoreSt, nid, 0); ok {
				if _, err := adoreSt.Push(nid, ch); err != nil {
					t.Fatal(err)
				}
				if _, err := cadoSt.Push(nid, ch); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Keys differ only in the Rules-independent parts; the trees and
		// times must match exactly.
		if cadoSt.Inner().Tree.Key() != adoreSt.Tree.Key() {
			t.Fatalf("step %d: trees diverged", i)
		}
	}
	if vs := invariant.CheckAll(cadoSt.Inner()); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestNewStateWithConfigSchemes(t *testing.T) {
	// A CADO instance works over any static quorum family: the scheme's
	// R1⁺ is irrelevant (reconfig is off), only isQuorum matters.
	s := NewStateWithConfig(config.PrimaryBackup, types.Range(1, 3))
	// Primary-backup: the primary (S1) alone is a quorum.
	res, err := s.Pull(1, core.PullChoice{Q: types.NewNodeSet(1), T: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quorum {
		t.Fatal("primary alone must form a quorum under primary-backup")
	}
	m, err := s.Invoke(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(1, core.PushChoice{Q: types.NewNodeSet(1), CM: m.ID}); err != nil {
		t.Fatal(err)
	}
	if got := s.CommittedMethods(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("committed = %v", got)
	}
}
