package raftnet

import (
	"fmt"
	"math/rand"
	"sort"

	"adore/internal/config"
	"adore/internal/types"
)

// ActionKind enumerates the operations of Op_net plus message delivery.
type ActionKind uint8

const (
	// ActElect / ActInvoke / ActReconfig / ActCommit are the four
	// node-initiated operations; ActDeliver is a network event.
	ActElect ActionKind = iota
	ActInvoke
	ActReconfig
	ActCommit
	ActDeliver
	// ActDuplicate re-enqueues a copy of an in-flight message: the
	// asynchronous network may deliver a message any number of times.
	ActDuplicate
)

// Action is one step of a network-level execution trace. Deliveries are
// content-addressed: Msg must match a message in the sent bag at replay
// time.
type Action struct {
	Kind   ActionKind
	NID    types.NodeID
	Method types.MethodID
	Conf   config.Config
	Msg    Msg
}

// String renders the action.
func (a Action) String() string {
	switch a.Kind {
	case ActDuplicate:
		return fmt.Sprintf("duplicate %s", a.Msg)
	case ActElect:
		return fmt.Sprintf("elect %s", a.NID)
	case ActInvoke:
		return fmt.Sprintf("invoke %s %s", a.NID, a.Method)
	case ActReconfig:
		return fmt.Sprintf("reconfig %s → %s", a.NID, a.Conf)
	case ActCommit:
		return fmt.Sprintf("commit %s", a.NID)
	case ActDeliver:
		return fmt.Sprintf("deliver %s", a.Msg)
	default:
		return fmt.Sprintf("action(%d)", a.Kind)
	}
}

// Apply executes the action on the state.
func (st *State) Apply(a Action) error {
	switch a.Kind {
	case ActElect:
		return st.Elect(a.NID)
	case ActInvoke:
		return st.Invoke(a.NID, a.Method)
	case ActReconfig:
		return st.Reconfig(a.NID, a.Conf)
	case ActCommit:
		return st.Commit(a.NID)
	case ActDeliver:
		return st.Deliver(a.Msg)
	case ActDuplicate:
		return st.Duplicate(a.Msg)
	default:
		return fmt.Errorf("raftnet: unknown action kind %d", a.Kind)
	}
}

// Replay executes a trace from a fresh state built by mk and returns the
// final state. It fails fast on the first rejected action.
func Replay(mk func() *State, trace []Action) (*State, error) {
	st := mk()
	for i, a := range trace {
		if err := st.Apply(a); err != nil {
			return st, fmt.Errorf("raftnet: replay step %d (%s): %w", i, a, err)
		}
	}
	return st, nil
}

// RandomExecution drives a random asynchronous execution of n steps with
// the given seed, returning the trace and final state. Message deliveries,
// elections, commits, invocations, and (when the guards permit)
// reconfigurations interleave arbitrarily — the fully asynchronous Raft of
// §5. Actions that the state rejects are simply not chosen.
func RandomExecution(mk func() *State, seed int64, n int) ([]Action, *State) {
	r := rand.New(rand.NewSource(seed))
	st := mk()
	var trace []Action
	methodID := types.MethodID(1)
	for len(trace) < n {
		var candidates []Action
		// Deliveries — and occasional duplications — of any in-flight
		// message.
		for i, m := range st.Sent {
			candidates = append(candidates, Action{Kind: ActDeliver, Msg: m})
			if i%5 == 0 {
				candidates = append(candidates, Action{Kind: ActDuplicate, Msg: m})
			}
		}
		// Iterate nodes in ID order: the candidate list feeds a seeded
		// random pick, so its order must not depend on map iteration.
		ids := make([]types.NodeID, 0, len(st.Nodes))
		for id := range st.Nodes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			s := st.Nodes[id]
			candidates = append(candidates, Action{Kind: ActElect, NID: id})
			if s.IsLeader {
				candidates = append(candidates, Action{Kind: ActInvoke, NID: id, Method: methodID})
				candidates = append(candidates, Action{Kind: ActCommit, NID: id})
				for _, ncf := range st.Scheme.Successors(s.CurrentConfig(), st.universe()) {
					if st.reconfigOK(s, ncf) {
						candidates = append(candidates, Action{Kind: ActReconfig, NID: id, Conf: ncf})
					}
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		a := candidates[r.Intn(len(candidates))]
		if err := st.Apply(a); err != nil {
			continue // racing enablement; pick again
		}
		if a.Kind == ActInvoke {
			methodID++
		}
		trace = append(trace, a)
	}
	return trace, st
}

// universe returns every node ID known to the state.
func (st *State) universe() types.NodeSet {
	u := st.Conf0.Members()
	for id := range st.Nodes {
		u = u.Add(id)
	}
	return u
}

// reconfigOK predicts whether Reconfig would accept ncf (used to enumerate
// enabled actions without mutating the state).
func (st *State) reconfigOK(s *Server, ncf config.Config) bool {
	if !st.Rules.AllowReconfig || !s.IsLeader {
		return false
	}
	if st.Rules.R1 && !st.Scheme.R1Plus(s.CurrentConfig(), ncf) {
		return false
	}
	if st.Rules.R2 {
		for i := s.CommitLen; i < len(s.Log); i++ {
			if s.Log[i].Kind == EntryConfig {
				return false
			}
		}
	}
	if st.Rules.R3 {
		ok := false
		for i := 0; i < s.CommitLen; i++ {
			if s.Log[i].Time == s.Time {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
