package raftnet

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/types"
)

func newNet(n types.NodeID, rules core.Rules) *State {
	return New(config.RaftSingleNode, types.Range(1, n), rules)
}

// deliverAll drains the sent bag (including messages generated while
// draining), delivering in FIFO order.
func deliverAll(t *testing.T, st *State) {
	t.Helper()
	for len(st.Sent) > 0 {
		if err := st.Deliver(st.Sent[0]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestElectionRoundTrip(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	if st.Nodes[1].IsLeader {
		t.Fatal("candidate won with only its own vote")
	}
	if len(st.Sent) != 2 {
		t.Fatalf("%d election requests in flight, want 2", len(st.Sent))
	}
	deliverAll(t, st)
	if !st.Nodes[1].IsLeader {
		t.Fatal("candidate did not win after all votes arrived")
	}
	if id, ok := st.Leader(); !ok || id != 1 {
		t.Errorf("Leader() = %v %v", id, ok)
	}
	if st.Nodes[2].Time != 1 || st.Nodes[3].Time != 1 {
		t.Error("voters did not advance their terms")
	}
}

func TestStaleElectionRejected(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	// S2 calls an election for term 1 too — but everyone is at term 1
	// already, so no votes arrive. (Elect bumps S2 to term 2 actually;
	// force the stale case by electing S2 then S3 twice.)
	if err := st.Elect(2); err != nil { // term 2
		t.Fatal(err)
	}
	if err := st.Elect(3); err != nil { // term 1 → ... S3 was at term 1, so term 2 as well
		t.Fatal(err)
	}
	// Both candidates broadcast term-2 requests; whoever's messages land
	// first wins, the other's become invalid.
	deliverAll(t, st)
	leaders := 0
	for _, s := range st.Nodes {
		if s.IsLeader && s.Time == 2 {
			leaders++
		}
	}
	if leaders > 1 {
		t.Fatalf("two leaders at the same term:\n%s", st)
	}
}

func TestInvokeRequiresLeadership(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Invoke(1, 1); !errors.Is(err, ErrNotLeader) {
		t.Errorf("want ErrNotLeader, got %v", err)
	}
}

func TestCommitReplicatesAndCommits(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if err := st.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := st.Invoke(1, 11); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if st.Nodes[1].CommitLen != 2 {
		t.Fatalf("leader commit length = %d, want 2", st.Nodes[1].CommitLen)
	}
	for _, id := range []types.NodeID{2, 3} {
		if len(st.Nodes[id].Log) != 2 {
			t.Errorf("%s log = %v", id, st.Nodes[id].Log)
		}
	}
	// Followers learn the commit length from the next round.
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if got := st.CommittedMethods(2); !reflect.DeepEqual(got, []types.MethodID{10, 11}) {
		t.Errorf("follower committed view = %v", got)
	}
}

func TestUpToDateCheckBlocksStaleCandidate(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if err := st.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	// S2's log now contains the entry; S3 too. Wipe S3's log to make it
	// stale, then let it campaign: nobody with the entry votes for it.
	st.Nodes[3].Log = nil
	st.Nodes[3].CommitLen = 0
	if err := st.Elect(3); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if st.Nodes[3].IsLeader {
		t.Fatal("stale candidate won an election against up-to-date voters")
	}
}

func TestReconfigGuardsInNet(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	ncf := config.NewMajorityConfig(types.Range(1, 4))
	// R3 first: no committed entry at term 1 yet.
	if err := st.Reconfig(1, ncf); !errors.Is(err, ErrGuard) {
		t.Fatalf("want guard rejection, got %v", err)
	}
	if err := st.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if err := st.Reconfig(1, ncf); err != nil {
		t.Fatalf("reconfig after commit: %v", err)
	}
	// R2: another reconfig while the first is uncommitted.
	if err := st.Reconfig(1, config.NewMajorityConfig(types.Range(1, 5))); !errors.Is(err, ErrGuard) {
		t.Errorf("want R2 rejection, got %v", err)
	}
	// The new configuration takes effect immediately: commit requests go
	// to 4 nodes, and S4 is materialized on demand.
	if err := st.Commit(1); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, st)
	if st.Nodes[4] == nil || len(st.Nodes[4].Log) != 2 {
		t.Errorf("fresh member did not receive the log: %v", st.Nodes[4])
	}
	if st.Nodes[1].CommitLen != 2 {
		t.Errorf("reconfig entry not committed: commit=%d", st.Nodes[1].CommitLen)
	}
	// R1: a two-node jump is rejected.
	if err := st.Reconfig(1, config.NewMajorityConfig(types.NewNodeSet(1, 2, 5, 6))); !errors.Is(err, ErrGuard) {
		t.Errorf("want R1 rejection, got %v", err)
	}
}

func TestDeliverUnknownMessage(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	err := st.Deliver(Msg{Kind: ElectReq, From: 1, To: 2, Time: 1})
	if !errors.Is(err, ErrNoSuchMessage) {
		t.Errorf("want ErrNoSuchMessage, got %v", err)
	}
}

func TestValidPredicate(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	req := st.Sent[0]
	if !st.Valid(req) {
		t.Error("fresh election request should be valid")
	}
	// After the recipient advances past the term, the request is stale.
	st.Nodes[req.To].Time = 9
	if st.Valid(req) {
		t.Error("stale election request should be invalid")
	}
}

func TestRNetEqual(t *testing.T) {
	a := newNet(3, core.DefaultRules())
	b := newNet(3, core.DefaultRules())
	if !RNetEqual(a, b) {
		t.Error("fresh states must be R_net-equal")
	}
	if err := a.Elect(1); err != nil {
		t.Fatal(err)
	}
	if RNetEqual(a, b) {
		t.Error("states with different terms reported equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	cp := st.Clone()
	deliverAll(t, st)
	if cp.Nodes[1].IsLeader {
		t.Error("clone shares state with original")
	}
	if len(cp.Sent) == 0 {
		t.Error("clone lost in-flight messages")
	}
}

func TestRandomExecutionsTerminateAndReplay(t *testing.T) {
	mk := func() *State { return newNet(3, core.DefaultRules()) }
	for seed := int64(0); seed < 10; seed++ {
		trace, final := RandomExecution(mk, seed, 60)
		if len(trace) == 0 {
			t.Fatalf("seed %d: empty execution", seed)
		}
		replayed, err := Replay(mk, trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !RNetEqual(final, replayed) {
			t.Fatalf("seed %d: replay diverged", seed)
		}
	}
}

// TestCommittedPrefixAgreement is the protocol-level safety property on the
// network spec: any two replicas' committed prefixes agree (one is a prefix
// of the other), across random executions with the full guards.
func TestCommittedPrefixAgreement(t *testing.T) {
	mk := func() *State { return newNet(4, core.DefaultRules()) }
	for seed := int64(0); seed < 40; seed++ {
		_, st := RandomExecution(mk, seed, 120)
		checkPrefixAgreement(t, st, seed)
	}
}

func TestDuplicateRequiresInFlightCopy(t *testing.T) {
	st := newNet(3, core.DefaultRules())
	if err := st.Duplicate(Msg{Kind: ElectReq, From: 1, To: 2, Time: 1}); !errors.Is(err, ErrNoSuchMessage) {
		t.Errorf("want ErrNoSuchMessage, got %v", err)
	}
	if err := st.Elect(1); err != nil {
		t.Fatal(err)
	}
	m := st.Sent[0]
	if err := st.Duplicate(m); err != nil {
		t.Fatal(err)
	}
	if len(st.Sent) != 3 {
		t.Errorf("%d messages in flight, want 3 (2 requests + 1 duplicate)", len(st.Sent))
	}
}

// TestHandlersIdempotentUnderDuplication delivers every message twice: the
// final state must equal the duplicate-free execution's.
func TestHandlersIdempotentUnderDuplication(t *testing.T) {
	run := func(dup bool) *State {
		st := newNet(3, core.DefaultRules())
		if err := st.Elect(1); err != nil {
			t.Fatal(err)
		}
		for len(st.Sent) > 0 {
			m := st.Sent[0]
			if dup {
				if err := st.Duplicate(m); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Deliver(m); err != nil {
				t.Fatal(err)
			}
			if dup {
				if err := st.Deliver(m); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.Invoke(1, 7); err != nil {
			t.Fatal(err)
		}
		if err := st.Commit(1); err != nil {
			t.Fatal(err)
		}
		for len(st.Sent) > 0 {
			if err := st.Deliver(st.Sent[0]); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	if !RNetEqual(run(false), run(true)) {
		t.Fatal("duplication changed the outcome")
	}
}

func checkPrefixAgreement(t *testing.T, st *State, seed int64) {
	t.Helper()
	type view struct {
		id  types.NodeID
		log []Entry
	}
	var views []view
	for id, s := range st.Nodes {
		views = append(views, view{id, s.Log[:s.CommitLen]})
	}
	sort.Slice(views, func(i, j int) bool { return views[i].id < views[j].id })
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			a, b := views[i], views[j]
			n := len(a.log)
			if len(b.log) < n {
				n = len(b.log)
			}
			for k := 0; k < n; k++ {
				if !a.log[k].Equal(b.log[k]) {
					t.Fatalf("seed %d: committed logs diverge at %d between %s and %s:\n%s",
						seed, k, a.id, b.id, st)
				}
			}
		}
	}
}

// TestElectionSafety checks the classic per-term uniqueness property on
// random asynchronous executions: at most one leader ever exists per term.
func TestElectionSafety(t *testing.T) {
	mk := func() *State { return newNet(4, core.DefaultRules()) }
	for seed := int64(0); seed < 40; seed++ {
		leaders := map[types.Time]types.NodeID{}
		st := mk()
		r := rand.New(rand.NewSource(seed))
		methodID := types.MethodID(1)
		for step := 0; step < 120; step++ {
			var candidates []Action
			for _, m := range st.Sent {
				candidates = append(candidates, Action{Kind: ActDeliver, Msg: m})
			}
			ids := make([]types.NodeID, 0, len(st.Nodes))
			for id := range st.Nodes {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				s := st.Nodes[id]
				candidates = append(candidates, Action{Kind: ActElect, NID: id})
				if s.IsLeader {
					candidates = append(candidates, Action{Kind: ActInvoke, NID: id, Method: methodID})
					candidates = append(candidates, Action{Kind: ActCommit, NID: id})
				}
			}
			a := candidates[r.Intn(len(candidates))]
			if err := st.Apply(a); err != nil {
				continue
			}
			if a.Kind == ActInvoke {
				methodID++
			}
			for id, s := range st.Nodes {
				if !s.IsLeader {
					continue
				}
				if prev, ok := leaders[s.Time]; ok && prev != id {
					t.Fatalf("seed %d: two leaders at term %d: %s and %s\n%s", seed, s.Time, prev, id, st)
				}
				leaders[s.Time] = id
			}
		}
	}
}
