// Package raftnet is the asynchronous network-based specification of the
// paper's Raft-like protocol (§5, Fig. 13). The distributed state is a set
// of servers plus a bag of in-flight messages; the operations are elect,
// commit, invoke, reconfig, and deliver. Like the paper's specification it
// is simplified Raft: commit requests carry the leader's whole log, and
// replicas adopt it wholesale.
//
// The protocol is parameterized by the same isQuorum and R1⁺ predicates as
// the Adore model (via config.Scheme), and by core.Rules so the published
// buggy variants remain expressible. Package sraft adds the scheduling
// disciplines (valid/ordered/atomic deliveries) of Appendix C; package
// refine relates executions of this specification to Adore via logMatch.
package raftnet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/types"
)

// EntryKind distinguishes regular commands from configuration changes.
type EntryKind uint8

const (
	// EntryMethod is a client command.
	EntryMethod EntryKind = iota
	// EntryConfig is a reconfiguration command; it takes effect the
	// moment it enters a log ("hot" reconfiguration).
	EntryConfig
)

// Entry is one log slot: List(ℕ_time * Method * Config) in Fig. 13, plus
// the version number that orders entries within a term.
type Entry struct {
	Time   types.Time
	Vrsn   types.Vrsn
	Kind   EntryKind
	Method types.MethodID
	Conf   config.Config // for EntryConfig
}

// Equal reports semantic equality of entries.
func (e Entry) Equal(o Entry) bool {
	if e.Time != o.Time || e.Vrsn != o.Vrsn || e.Kind != o.Kind {
		return false
	}
	if e.Kind == EntryMethod {
		return e.Method == o.Method
	}
	return e.Conf.Equal(o.Conf)
}

// String renders the entry.
func (e Entry) String() string {
	if e.Kind == EntryConfig {
		return fmt.Sprintf("cfg%s@%d.%d", e.Conf, e.Time, e.Vrsn)
	}
	return fmt.Sprintf("%s@%d.%d", e.Method, e.Time, e.Vrsn)
}

// Server is one replica's local state (Fig. 13's Server, with the
// bookkeeping fields spelled out).
type Server struct {
	ID        types.NodeID
	Time      types.Time // current term
	Vrsn      types.Vrsn // last version used by this leader in this term
	Log       []Entry
	CommitLen int // length of the known-committed prefix

	IsLeader    bool
	IsCandidate bool
	Votes       types.NodeSet         // votes gathered while a candidate
	Acks        map[int]types.NodeSet // commit acks per target length

	conf0 config.Config
}

// CurrentConfig returns the latest configuration in the server's log (hot
// reconfiguration: uncommitted entries count), or conf₀.
func (s *Server) CurrentConfig() config.Config {
	for i := len(s.Log) - 1; i >= 0; i-- {
		if s.Log[i].Kind == EntryConfig {
			return s.Log[i].Conf
		}
	}
	return s.conf0
}

// LastEntry returns the final log entry and ok=false for an empty log.
func (s *Server) LastEntry() (Entry, bool) {
	if len(s.Log) == 0 {
		return Entry{}, false
	}
	return s.Log[len(s.Log)-1], true
}

// upToDate reports whether a candidate log (described by its last entry and
// length) is at least as current as the server's, per Raft's comparison:
// later last-entry stamp wins; equal stamps compare lengths.
func (s *Server) upToDate(candLast Entry, candLen int) bool {
	last, ok := s.LastEntry()
	if !ok {
		return true
	}
	cl, sl := candLast.Stamp(), last.Stamp()
	if cl != sl {
		return !cl.Less(sl)
	}
	return candLen >= len(s.Log)
}

// Stamp returns the entry's (time, vrsn) pair.
func (e Entry) Stamp() types.Stamp { return types.Stamp{Time: e.Time, Vrsn: e.Vrsn} }

// MsgKind enumerates the four message types.
type MsgKind uint8

const (
	// ElectReq is an election request from a candidate.
	ElectReq MsgKind = iota
	// ElectAck is a vote.
	ElectAck
	// CommitReq is a log-replication/commit request from a leader.
	CommitReq
	// CommitAck is a replication acknowledgement.
	CommitAck
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case ElectReq:
		return "ElectReq"
	case ElectAck:
		return "ElectAck"
	case CommitReq:
		return "CommitReq"
	case CommitAck:
		return "CommitAck"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Msg is a network message. Requests carry the sender's log; acks carry the
// request's identifying stamp and a positive/negative flag.
type Msg struct {
	Kind      MsgKind
	From, To  types.NodeID
	Time      types.Time
	Vrsn      types.Vrsn
	Log       []Entry
	CommitLen int
	UpTo      int  // CommitReq/CommitAck: target committed length
	Ok        bool // acks: vote granted / entry accepted
}

// Stamp returns the message's logical (time, vrsn) for the global ordering
// of Definition C.4.
func (m Msg) Stamp() types.Stamp { return types.Stamp{Time: m.Time, Vrsn: m.Vrsn} }

// Equal reports full semantic equality (used for content-addressed
// delivery).
func (m Msg) Equal(o Msg) bool {
	if m.Kind != o.Kind || m.From != o.From || m.To != o.To ||
		m.Time != o.Time || m.Vrsn != o.Vrsn ||
		m.CommitLen != o.CommitLen || m.UpTo != o.UpTo || m.Ok != o.Ok {
		return false
	}
	if len(m.Log) != len(o.Log) {
		return false
	}
	for i := range m.Log {
		if !m.Log[i].Equal(o.Log[i]) {
			return false
		}
	}
	return true
}

// String renders the message compactly.
func (m Msg) String() string {
	return fmt.Sprintf("%s %s→%s @%d.%d ok=%v len=%d", m.Kind, m.From, m.To, m.Time, m.Vrsn, m.Ok, len(m.Log))
}

// State is Σ_net: all servers plus the network's sent and delivered bags.
type State struct {
	Nodes     map[types.NodeID]*Server
	Sent      []Msg
	Delivered []Msg

	Scheme config.Scheme
	Rules  core.Rules
	Conf0  config.Config
}

// New builds the initial network state over the scheme's initial
// configuration of members.
func New(scheme config.Scheme, members types.NodeSet, rules core.Rules) *State {
	conf0 := scheme.Initial(members)
	st := &State{
		Nodes:  make(map[types.NodeID]*Server),
		Scheme: scheme,
		Rules:  rules,
		Conf0:  conf0,
	}
	for _, id := range members.Slice() {
		st.Nodes[id] = &Server{ID: id, Acks: make(map[int]types.NodeSet), conf0: conf0}
	}
	return st
}

// Errors returned by the operations.
var (
	ErrUnknownNode   = errors.New("raftnet: unknown node")
	ErrNotLeader     = errors.New("raftnet: node is not a leader")
	ErrNoSuchMessage = errors.New("raftnet: message not in the sent bag")
	ErrGuard         = errors.New("raftnet: reconfiguration guard rejected the proposal")
)

// AddNode registers a fresh, empty replica (used when a configuration grows
// beyond the initial membership).
func (st *State) AddNode(id types.NodeID) *Server {
	if s, ok := st.Nodes[id]; ok {
		return s
	}
	s := &Server{ID: id, Acks: make(map[int]types.NodeSet), conf0: st.Conf0}
	st.Nodes[id] = s
	return s
}

// node returns the server, creating it on demand for configured-but-fresh
// IDs.
func (st *State) node(id types.NodeID) *Server { return st.AddNode(id) }

// send places a message in the sent bag (self-sends are delivered here and
// now, matching the usual "a candidate votes for itself" shortcut).
func (st *State) send(m Msg) {
	if m.From == m.To {
		st.handle(m)
		return
	}
	st.Sent = append(st.Sent, m)
}

// Elect makes nid a candidate for its next term and broadcasts election
// requests to its current configuration.
func (st *State) Elect(nid types.NodeID) error {
	s, ok := st.Nodes[nid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, nid)
	}
	s.Time++
	s.Vrsn = 0
	s.IsCandidate = true
	s.IsLeader = false
	s.Votes = types.NewNodeSet(nid)
	last, _ := s.LastEntry()
	for _, to := range s.CurrentConfig().Members().Slice() {
		if to == nid {
			continue
		}
		st.send(Msg{Kind: ElectReq, From: nid, To: to, Time: s.Time,
			Log: append([]Entry(nil), s.Log...), UpTo: len(s.Log), Vrsn: last.Vrsn})
	}
	st.maybeWin(s)
	return nil
}

// maybeWin promotes a candidate whose votes form a quorum of its current
// configuration.
func (st *State) maybeWin(s *Server) {
	if s.IsCandidate && s.CurrentConfig().IsQuorum(s.Votes) {
		s.IsCandidate = false
		s.IsLeader = true
		s.Acks = make(map[int]types.NodeSet)
	}
}

// Invoke appends a client command to the leader's log (a local operation).
func (st *State) Invoke(nid types.NodeID, m types.MethodID) error {
	s, ok := st.Nodes[nid]
	if !ok || !s.IsLeader {
		return fmt.Errorf("%w: %s", ErrNotLeader, nid)
	}
	s.Vrsn++
	s.Log = append(s.Log, Entry{Time: s.Time, Vrsn: s.Vrsn, Kind: EntryMethod, Method: m})
	return nil
}

// Reconfig appends a configuration change to the leader's log, subject to
// the enabled guards:
//
//	R1⁺ — the scheme's relation between the current and new configuration,
//	R2  — no uncommitted configuration entry in the log,
//	R3  — a committed entry with the leader's current term.
func (st *State) Reconfig(nid types.NodeID, ncf config.Config) error {
	s, ok := st.Nodes[nid]
	if !ok || !s.IsLeader {
		return fmt.Errorf("%w: %s", ErrNotLeader, nid)
	}
	if !st.Rules.AllowReconfig {
		return fmt.Errorf("%w: reconfiguration disabled", ErrGuard)
	}
	if st.Rules.R1 && !st.Scheme.R1Plus(s.CurrentConfig(), ncf) {
		return fmt.Errorf("%w: R1⁺ rejects %s → %s", ErrGuard, s.CurrentConfig(), ncf)
	}
	if st.Rules.R2 {
		for i := s.CommitLen; i < len(s.Log); i++ {
			if s.Log[i].Kind == EntryConfig {
				return fmt.Errorf("%w: R2: uncommitted config entry at %d", ErrGuard, i)
			}
		}
	}
	if st.Rules.R3 {
		ok := false
		for i := 0; i < s.CommitLen; i++ {
			if s.Log[i].Time == s.Time {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: R3: no committed entry at term %d", ErrGuard, s.Time)
		}
	}
	s.Vrsn++
	s.Log = append(s.Log, Entry{Time: s.Time, Vrsn: s.Vrsn, Kind: EntryConfig, Conf: ncf})
	// Ensure fresh members exist so they can receive traffic.
	for _, id := range ncf.Members().Slice() {
		st.AddNode(id)
	}
	return nil
}

// Commit broadcasts the leader's log to its current configuration, asking
// the replicas to adopt it and acknowledge up to its full length.
func (st *State) Commit(nid types.NodeID) error {
	s, ok := st.Nodes[nid]
	if !ok || !s.IsLeader {
		return fmt.Errorf("%w: %s", ErrNotLeader, nid)
	}
	upTo := len(s.Log)
	if s.Acks[upTo].IsEmpty() {
		s.Acks[upTo] = types.NewNodeSet(nid)
	}
	last, _ := s.LastEntry()
	for _, to := range s.CurrentConfig().Members().Slice() {
		if to == nid {
			continue
		}
		st.send(Msg{Kind: CommitReq, From: nid, To: to, Time: s.Time, Vrsn: last.Vrsn,
			Log: append([]Entry(nil), s.Log...), CommitLen: s.CommitLen, UpTo: upTo})
	}
	st.maybeCommit(s, upTo)
	return nil
}

// maybeCommit advances the leader's commit length once a quorum has acked.
// Per Raft's commitment rule, a leader only counts replication of entries
// from its own current term (committing an old-term entry directly is the
// classic Figure-8 safety hazard; Adore encodes the same restriction in
// canCommit's isLeader(st, nid, time(C_M)) premise). Old entries commit
// transitively once a current-term entry on top of them commits.
func (st *State) maybeCommit(s *Server, upTo int) {
	if !s.IsLeader || upTo <= s.CommitLen {
		return
	}
	if upTo < 1 || upTo > len(s.Log) || s.Log[upTo-1].Time != s.Time {
		return
	}
	if s.CurrentConfig().IsQuorum(s.Acks[upTo]) {
		s.CommitLen = upTo
	}
}

// Deliver removes the first message equal to m from the sent bag and runs
// its handler. It implements the deliver operation: any sent message may
// arrive at any time.
func (st *State) Deliver(m Msg) error {
	idx := -1
	for i, sent := range st.Sent {
		if sent.Equal(m) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %s", ErrNoSuchMessage, m)
	}
	st.Sent = append(st.Sent[:idx], st.Sent[idx+1:]...)
	st.Delivered = append(st.Delivered, m)
	st.handle(m)
	return nil
}

// Duplicate re-enqueues a copy of a message currently in flight (network
// duplication). The protocol's handlers are idempotent against duplicates.
func (st *State) Duplicate(m Msg) error {
	for _, sent := range st.Sent {
		if sent.Equal(m) {
			st.Sent = append(st.Sent, m)
			return nil
		}
	}
	return fmt.Errorf("%w: %s", ErrNoSuchMessage, m)
}

// Valid reports whether delivering m now would have any effect (Definition
// C.2): invalid messages are ignored by their recipients.
func (st *State) Valid(m Msg) bool {
	s, ok := st.Nodes[m.To]
	if !ok {
		return false
	}
	switch m.Kind {
	case ElectReq:
		last := Entry{}
		if len(m.Log) > 0 {
			last = m.Log[len(m.Log)-1]
		}
		return m.Time > s.Time && s.upToDate(last, len(m.Log))
	case ElectAck:
		return m.Ok && s.IsCandidate && m.Time == s.Time
	case CommitReq:
		return m.Time >= s.Time
	case CommitAck:
		return m.Ok && s.IsLeader && m.Time == s.Time
	default:
		return false
	}
}

// handle dispatches a delivered message.
func (st *State) handle(m Msg) {
	s := st.node(m.To)
	switch m.Kind {
	case ElectReq:
		last := Entry{}
		if len(m.Log) > 0 {
			last = m.Log[len(m.Log)-1]
		}
		if m.Time > s.Time && s.upToDate(last, len(m.Log)) {
			s.Time = m.Time
			s.IsLeader = false
			s.IsCandidate = false
			st.send(Msg{Kind: ElectAck, From: m.To, To: m.From, Time: m.Time, Vrsn: m.Vrsn, Ok: true})
		}
	case ElectAck:
		if m.Ok && s.IsCandidate && m.Time == s.Time {
			s.Votes = s.Votes.Add(m.From)
			st.maybeWin(s)
		}
	case CommitReq:
		if m.Time >= s.Time {
			s.Time = m.Time
			if m.From != s.ID {
				s.IsLeader = false
				s.IsCandidate = false
			}
			s.Log = append([]Entry(nil), m.Log...)
			if m.CommitLen > s.CommitLen {
				s.CommitLen = m.CommitLen
			}
			st.send(Msg{Kind: CommitAck, From: m.To, To: m.From, Time: m.Time, Vrsn: m.Vrsn, UpTo: m.UpTo, Ok: true})
		}
	case CommitAck:
		if m.Ok && s.IsLeader && m.Time == s.Time {
			if s.Acks[m.UpTo].IsEmpty() {
				s.Acks[m.UpTo] = types.NewNodeSet(s.ID)
			}
			s.Acks[m.UpTo] = s.Acks[m.UpTo].Add(m.From)
			st.maybeCommit(s, m.UpTo)
		}
	}
}

// CommittedMethods returns the methods in nid's known-committed prefix.
func (st *State) CommittedMethods(nid types.NodeID) []types.MethodID {
	s, ok := st.Nodes[nid]
	if !ok {
		return nil
	}
	var out []types.MethodID
	for _, e := range s.Log[:s.CommitLen] {
		if e.Kind == EntryMethod {
			out = append(out, e.Method)
		}
	}
	return out
}

// Leader returns the unique leader at the highest term, or ok=false.
func (st *State) Leader() (types.NodeID, bool) {
	var best *Server
	for _, s := range st.Nodes {
		if s.IsLeader && (best == nil || s.Time > best.Time) {
			best = s
		}
	}
	if best == nil {
		return types.NoNode, false
	}
	return best.ID, true
}

// Clone deep-copies the state.
func (st *State) Clone() *State {
	out := &State{
		Sent:      append([]Msg(nil), st.Sent...),
		Delivered: append([]Msg(nil), st.Delivered...),
		Scheme:    st.Scheme,
		Rules:     st.Rules,
		Conf0:     st.Conf0,
		Nodes:     make(map[types.NodeID]*Server, len(st.Nodes)),
	}
	for id, s := range st.Nodes {
		cp := *s
		cp.Log = append([]Entry(nil), s.Log...)
		cp.Acks = make(map[int]types.NodeSet, len(s.Acks))
		for k, v := range s.Acks {
			cp.Acks[k] = v
		}
		out.Nodes[id] = &cp
	}
	return out
}

// RNetEqual implements ℝ_net (Fig. 18): per-node log and term equality.
func RNetEqual(a, b *State) bool {
	ids := make(map[types.NodeID]bool)
	for id := range a.Nodes {
		ids[id] = true
	}
	for id := range b.Nodes {
		ids[id] = true
	}
	for id := range ids {
		sa, oka := a.Nodes[id]
		sb, okb := b.Nodes[id]
		if !oka || !okb {
			// A node that exists on one side only must be pristine.
			s := sa
			if s == nil {
				s = sb
			}
			if s == nil || len(s.Log) != 0 || s.Time != 0 {
				return false
			}
			continue
		}
		if sa.Time != sb.Time || len(sa.Log) != len(sb.Log) {
			return false
		}
		for i := range sa.Log {
			if !sa.Log[i].Equal(sb.Log[i]) {
				return false
			}
		}
	}
	return true
}

// String renders all server states.
func (st *State) String() string {
	ids := make([]types.NodeID, 0, len(st.Nodes))
	for id := range st.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for _, id := range ids {
		s := st.Nodes[id]
		role := " "
		if s.IsLeader {
			role = "L"
		} else if s.IsCandidate {
			role = "C"
		}
		fmt.Fprintf(&b, "%s%s t=%d commit=%d log=%v\n", s.ID, role, s.Time, s.CommitLen, s.Log)
	}
	fmt.Fprintf(&b, "in flight: %d\n", len(st.Sent))
	return b.String()
}
