package config

import (
	"adore/internal/types"
)

// JointConfig is the configuration of Raft's joint consensus scheme (§6,
// "Raft Joint Consensus"): an old member set plus an optional incoming set.
// While the incoming set is present (the "joint" state), quorums require
// strict majorities of both sets.
//
//	Config              ≜ Set(ℕ_nid) * Option(Set(ℕ_nid))
//	isQuorum(S,(o,n))   ≜ |o| < 2·|S ∩ o| ∧ (n = ⊥ ∨ |n| < 2·|S ∩ n|)
type JointConfig struct {
	old   types.NodeSet
	new   types.NodeSet
	joint bool // whether the incoming set is present (n ≠ ⊥)
}

// NewJointConfig builds a stable (non-joint) configuration over members.
func NewJointConfig(members types.NodeSet) JointConfig {
	return JointConfig{old: members}
}

// NewJointTransition builds a joint configuration transitioning from old to
// incoming.
func NewJointTransition(old, incoming types.NodeSet) JointConfig {
	return JointConfig{old: old, new: incoming, joint: true}
}

// Joint reports whether the configuration is in the joint (transition) state.
func (c JointConfig) Joint() bool { return c.joint }

// Old returns the outgoing member set.
func (c JointConfig) Old() types.NodeSet { return c.old }

// Incoming returns the incoming member set; meaningful only when Joint().
func (c JointConfig) Incoming() types.NodeSet { return c.new }

// Members implements Config: the union of both sets.
func (c JointConfig) Members() types.NodeSet {
	if !c.joint {
		return c.old
	}
	return c.old.Union(c.new)
}

// IsQuorum implements Config: majorities of both sets, not of their union.
func (c JointConfig) IsQuorum(q types.NodeSet) bool {
	if !Majority(q, c.old) {
		return false
	}
	return !c.joint || Majority(q, c.new)
}

// Equal implements Config.
func (c JointConfig) Equal(other Config) bool {
	o, ok := other.(JointConfig)
	return ok && c.joint == o.joint && c.old.Equal(o.old) && (!c.joint || c.new.Equal(o.new))
}

// Key implements Config.
func (c JointConfig) Key() string {
	if !c.joint {
		return "joint:" + c.old.Key() + ":⊥"
	}
	return "joint:" + c.old.Key() + ":" + c.new.Key()
}

// String implements Config.
func (c JointConfig) String() string {
	if !c.joint {
		return c.old.String()
	}
	return c.old.String() + "⋈" + c.new.String()
}

// JointScheme is Raft's joint consensus reconfiguration:
//
//	R1⁺(C,C') ≜ ∃old. (C = (old,⊥) ∧ C' = (old,_)) ∨ ∃new. (C = (_,new) ∧ C' = (new,⊥))
//
// That is: a stable configuration may enter a joint state keeping its old
// set, and a joint configuration may settle into its incoming set.
type JointScheme struct{}

// RaftJoint is the canonical instance of the joint consensus scheme.
var RaftJoint Scheme = JointScheme{}

// Name implements Scheme.
func (JointScheme) Name() string { return "raft-joint" }

// Initial implements Scheme.
func (JointScheme) Initial(members types.NodeSet) Config { return NewJointConfig(members) }

// R1Plus implements Scheme.
func (JointScheme) R1Plus(old, new Config) bool {
	o, ok := old.(JointConfig)
	if !ok {
		return false
	}
	n, ok := new.(JointConfig)
	if !ok {
		return false
	}
	if o.Equal(n) {
		return true // REFLEXIVE
	}
	if !o.joint && n.joint && o.old.Equal(n.old) {
		return true // (old, ⊥) → (old, new)
	}
	if o.joint && !n.joint && o.new.Equal(n.old) {
		return true // (old, new) → (new, ⊥)
	}
	return false
}

// Successors implements Scheme. From a stable configuration it proposes
// joint transitions to every non-empty subset of universe; from a joint
// configuration the only move is settling into the incoming set.
func (JointScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c, ok := cf.(JointConfig)
	if !ok {
		return nil
	}
	var out []Config
	if c.joint {
		settled := NewJointConfig(c.new)
		if !settled.Equal(c) {
			out = append(out, settled)
		}
		return out
	}
	universe.Subsets(func(target types.NodeSet) bool {
		if !target.IsEmpty() && !target.Equal(c.old) {
			out = append(out, NewJointTransition(c.old, target))
		}
		return true
	})
	return out
}
