package config

import (
	"adore/internal/types"
)

// MajorityConfig is the configuration of the Raft single-node scheme (§6,
// "Raft Single-Node"): a plain set of replicas with strict-majority quorums.
//
//	Config        ≜ Set(ℕ_nid)
//	isQuorum(S,C) ≜ |C| < 2·|S ∩ C|
type MajorityConfig struct {
	members types.NodeSet
}

// NewMajorityConfig builds a majority-quorum configuration over the members.
func NewMajorityConfig(members types.NodeSet) MajorityConfig {
	return MajorityConfig{members: members}
}

// Members implements Config.
func (c MajorityConfig) Members() types.NodeSet { return c.members }

// IsQuorum implements Config with the strict-majority rule.
func (c MajorityConfig) IsQuorum(q types.NodeSet) bool { return Majority(q, c.members) }

// Equal implements Config.
func (c MajorityConfig) Equal(other Config) bool {
	o, ok := other.(MajorityConfig)
	return ok && c.members.Equal(o.members)
}

// Key implements Config.
func (c MajorityConfig) Key() string { return "maj:" + c.members.Key() }

// String implements Config.
func (c MajorityConfig) String() string { return c.members.String() }

// SingleNodeScheme is Raft's single-node membership change algorithm: a new
// configuration may add or remove at most one replica.
//
//	R1⁺(C,C') ≜ C = C' ∨ ∃s. C = C' ∪ {s} ∨ C' = C ∪ {s}
type SingleNodeScheme struct{}

// RaftSingleNode is the canonical instance of the single-node scheme.
var RaftSingleNode Scheme = SingleNodeScheme{}

// Name implements Scheme.
func (SingleNodeScheme) Name() string { return "raft-single" }

// Initial implements Scheme.
func (SingleNodeScheme) Initial(members types.NodeSet) Config {
	return NewMajorityConfig(members)
}

// R1Plus implements Scheme: configurations may differ by at most one node.
func (SingleNodeScheme) R1Plus(old, new Config) bool {
	o, ok := old.(MajorityConfig)
	if !ok {
		return false
	}
	n, ok := new.(MajorityConfig)
	if !ok {
		return false
	}
	a, b := o.members, n.members
	if a.Equal(b) {
		return true
	}
	if a.Len() == b.Len()+1 && b.SubsetOf(a) {
		return true // removal of one node
	}
	if b.Len() == a.Len()+1 && a.SubsetOf(b) {
		return true // addition of one node
	}
	return false
}

// Successors implements Scheme: every single-node addition from universe and
// every single-node removal that leaves the configuration non-empty.
func (SingleNodeScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c, ok := cf.(MajorityConfig)
	if !ok {
		return nil
	}
	var out []Config
	for _, id := range universe.Diff(c.members).Slice() {
		out = append(out, NewMajorityConfig(c.members.Add(id)))
	}
	if c.members.Len() > 1 {
		for _, id := range c.members.Slice() {
			out = append(out, NewMajorityConfig(c.members.Remove(id)))
		}
	}
	return out
}
