package config

import (
	"adore/internal/types"
)

// UnanimousConfig is one of the two extra schemes beyond §6 (the artifact
// ships six in total): quorums are unanimous, so any two configurations that
// share even a single member have overlapping quorums. This is the extreme
// point of the dynamic-quorum trade-off: maximal reconfiguration freedom,
// minimal fault tolerance.
//
//	Config        ≜ Set(ℕ_nid)
//	isQuorum(S,C) ≜ C ⊆ S
type UnanimousConfig struct {
	members types.NodeSet
}

// NewUnanimousConfig builds a unanimous-quorum configuration.
func NewUnanimousConfig(members types.NodeSet) UnanimousConfig {
	return UnanimousConfig{members: members}
}

// Members implements Config.
func (c UnanimousConfig) Members() types.NodeSet { return c.members }

// IsQuorum implements Config: all members must support.
func (c UnanimousConfig) IsQuorum(q types.NodeSet) bool {
	return !c.members.IsEmpty() && c.members.SubsetOf(q)
}

// Equal implements Config.
func (c UnanimousConfig) Equal(other Config) bool {
	o, ok := other.(UnanimousConfig)
	return ok && c.members.Equal(o.members)
}

// Key implements Config.
func (c UnanimousConfig) Key() string { return "unan:" + c.members.Key() }

// String implements Config.
func (c UnanimousConfig) String() string { return "∀" + c.members.String() }

// UnanimousScheme permits any reconfiguration that keeps at least one shared
// member:
//
//	R1⁺(C,C') ≜ C ∩ C' ≠ ∅
//
// Since every quorum is the entire member set, overlapping member sets imply
// overlapping quorums.
type UnanimousScheme struct{}

// Unanimous is the canonical instance of the unanimous-quorum scheme.
var Unanimous Scheme = UnanimousScheme{}

// Name implements Scheme.
func (UnanimousScheme) Name() string { return "unanimous" }

// Initial implements Scheme.
func (UnanimousScheme) Initial(members types.NodeSet) Config {
	return NewUnanimousConfig(members)
}

// R1Plus implements Scheme.
func (UnanimousScheme) R1Plus(old, new Config) bool {
	o, ok := old.(UnanimousConfig)
	if !ok {
		return false
	}
	n, ok := new.(UnanimousConfig)
	if !ok {
		return false
	}
	return o.members.Intersects(n.members)
}

// Successors implements Scheme: every non-empty subset of universe that
// intersects the current members.
func (UnanimousScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c, ok := cf.(UnanimousConfig)
	if !ok {
		return nil
	}
	var out []Config
	universe.Subsets(func(target types.NodeSet) bool {
		if !target.IsEmpty() && target.Intersects(c.members) && !target.Equal(c.members) {
			out = append(out, NewUnanimousConfig(target))
		}
		return true
	})
	return out
}
