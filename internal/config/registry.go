package config

// AllSchemes lists every reconfiguration scheme shipped with the repository,
// mirroring the six examples in the paper's artifact (§7: the four from §6
// plus two others). The model checker, benchmarks, and the scheme property
// report iterate over this list.
func AllSchemes() []Scheme {
	return []Scheme{
		RaftSingleNode,
		RaftJoint,
		PrimaryBackup,
		DynamicQuorum,
		Unanimous,
		Learners,
	}
}

// SchemeByName returns the shipped scheme with the given Name, or nil.
func SchemeByName(name string) Scheme {
	for _, s := range AllSchemes() {
		if s.Name() == name {
			return s
		}
	}
	return nil
}
