// Package config implements Adore's parameterized configuration layer
// (paper Fig. 7 / §6).
//
// The safety proof of the Adore model is independent of what a configuration
// is, provided the R1⁺ relation and the quorum predicate satisfy two
// assumptions:
//
//	REFLEXIVE:  R1⁺(cf, cf)
//	OVERLAP:    R1⁺(cf, cf') ∧ isQuorum(Q, cf) ∧ isQuorum(Q', cf') ⟹ Q ∩ Q' ≠ ∅
//
// This package defines the Config and Scheme interfaces corresponding to the
// paper's opaque parameters, six concrete instantiations (the four from §6
// plus two more, matching the artifact's "six examples"), and an executable
// checker for the two assumptions (CheckAssumptions) that replaces the
// paper's per-scheme Coq obligations.
package config

import (
	"fmt"
	"sort"

	"adore/internal/types"
)

// Config is the opaque configuration parameter (paper Fig. 7). A Config
// knows its member set (mbrs) and which supporter sets count as quorums
// (isQuorum). Implementations must be immutable value types.
type Config interface {
	// Members returns mbrs(cf): the replicas participating in the
	// configuration. Supporter sets are always subsets of Members.
	Members() types.NodeSet

	// IsQuorum reports isQuorum(q, cf). Callers are expected to pass
	// q ⊆ Members(); implementations may ignore non-members.
	IsQuorum(q types.NodeSet) bool

	// Equal reports whether two configurations are identical. Configs of
	// different schemes are never equal.
	Equal(other Config) bool

	// Key returns a canonical string representation used for state
	// hashing by the model explorer. Equal configs have equal keys.
	Key() string

	// String renders the configuration for humans.
	String() string
}

// Scheme bundles a family of configurations with its R1⁺ relation and, for
// the model explorer, an enumerator of candidate reconfiguration targets.
// It corresponds to one instantiation of the paper's parameters.
type Scheme interface {
	// Name identifies the scheme ("raft-single", "joint", ...).
	Name() string

	// Initial builds the starting configuration conf₀ over the members.
	Initial(members types.NodeSet) Config

	// R1Plus reports R1⁺(old, new): whether the scheme permits proposing
	// new as the immediate successor of old.
	R1Plus(old, new Config) bool

	// Successors enumerates configurations cf' with R1Plus(cf, cf') that
	// draw their members from universe. The result is used by the model
	// explorer to enumerate reconfig operations; it need not be complete
	// for infinite families but must cover the interesting cases and must
	// not contain cf itself or configs with empty member sets.
	Successors(cf Config, universe types.NodeSet) []Config
}

// Majority reports whether q contains a strict majority of members:
// |members| < 2·|q ∩ members|. It is the quorum rule shared by several
// schemes (and by the paper's running examples), and the one the
// executable core (internal/raft/raftcore) calls, so the model and the
// implementation cannot diverge on what a quorum is.
func Majority(q, members types.NodeSet) bool {
	return MajorityCount(q.IntersectLen(members), members)
}

// MajorityCount is Majority for callers that already hold the count of
// acknowledgers inside members: it reports |members| < 2·count. The
// executable core's commit rule counts matchIndex entries against this
// predicate instead of materializing an ack set per index.
func MajorityCount(count int, members types.NodeSet) bool {
	return members.Len() < 2*count
}

// CheckAssumptions verifies REFLEXIVE and OVERLAP for a scheme over all
// configurations reachable from Initial(members) within depth reconfiguration
// steps, drawing members from universe. It enumerates every quorum pair of
// every R1⁺-related config pair, so it is exponential in |universe|; keep
// universes at or below ~6 nodes.
//
// It returns the number of (cf, cf', Q, Q') cases checked, or an error
// describing the first violated assumption. This is the executable
// counterpart of the paper's per-scheme proof obligations (§6).
func CheckAssumptions(s Scheme, members, universe types.NodeSet, depth int) (int, error) {
	configs := ReachableConfigs(s, members, universe, depth)
	cases := 0
	for _, cf := range configs {
		if !s.R1Plus(cf, cf) {
			return cases, fmt.Errorf("scheme %s: REFLEXIVE violated for %s", s.Name(), cf)
		}
	}
	for _, cf := range configs {
		quorums := Quorums(cf)
		for _, cf2 := range configs {
			if !s.R1Plus(cf, cf2) {
				continue
			}
			quorums2 := Quorums(cf2)
			for _, q := range quorums {
				for _, q2 := range quorums2 {
					cases++
					if !q.Intersects(q2) {
						return cases, fmt.Errorf(
							"scheme %s: OVERLAP violated: R1⁺(%s, %s) but quorums %s and %s are disjoint",
							s.Name(), cf, cf2, q, q2)
					}
				}
			}
		}
	}
	return cases, nil
}

// ReachableConfigs returns the configurations reachable from Initial(members)
// in at most depth applications of Successors, deduplicated by Key.
func ReachableConfigs(s Scheme, members, universe types.NodeSet, depth int) []Config {
	init := s.Initial(members)
	seen := map[string]Config{init.Key(): init}
	frontier := []Config{init}
	for d := 0; d < depth; d++ {
		var next []Config
		for _, cf := range frontier {
			for _, succ := range s.Successors(cf, universe) {
				if _, ok := seen[succ.Key()]; !ok {
					seen[succ.Key()] = succ
					next = append(next, succ)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	out := make([]Config, 0, len(seen))
	for _, cf := range seen {
		out = append(out, cf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Quorums enumerates every quorum of cf (every subset Q ⊆ mbrs(cf) with
// IsQuorum(Q)). Exponential in |mbrs(cf)|; intended for property checks on
// small configurations.
func Quorums(cf Config) []types.NodeSet {
	var out []types.NodeSet
	cf.Members().Subsets(func(q types.NodeSet) bool {
		if cf.IsQuorum(q) {
			out = append(out, q)
		}
		return true
	})
	return out
}
