package config

import (
	"adore/internal/types"
)

// PrimaryConfig is the configuration of the primary-backup scheme (§6,
// "Primary Backup", in the style of Chain Replication): one distinguished
// primary plus a set of passive backups. A quorum is any supporter set
// containing the primary, so backups can change arbitrarily.
//
//	Config             ≜ ℕ_nid * Set(ℕ_nid)
//	isQuorum(S,(P,_))  ≜ P ∈ S
type PrimaryConfig struct {
	primary types.NodeID
	backups types.NodeSet
}

// NewPrimaryConfig builds a primary-backup configuration.
func NewPrimaryConfig(primary types.NodeID, backups types.NodeSet) PrimaryConfig {
	return PrimaryConfig{primary: primary, backups: backups.Remove(primary)}
}

// Primary returns the distinguished primary replica.
func (c PrimaryConfig) Primary() types.NodeID { return c.primary }

// Backups returns the passive backup set.
func (c PrimaryConfig) Backups() types.NodeSet { return c.backups }

// Members implements Config.
func (c PrimaryConfig) Members() types.NodeSet { return c.backups.Add(c.primary) }

// IsQuorum implements Config: any set containing the primary.
func (c PrimaryConfig) IsQuorum(q types.NodeSet) bool { return q.Contains(c.primary) }

// Equal implements Config.
func (c PrimaryConfig) Equal(other Config) bool {
	o, ok := other.(PrimaryConfig)
	return ok && c.primary == o.primary && c.backups.Equal(o.backups)
}

// Key implements Config.
func (c PrimaryConfig) Key() string {
	return "prim:" + c.primary.String() + ":" + c.backups.Key()
}

// String implements Config.
func (c PrimaryConfig) String() string {
	return c.primary.String() + "*+" + c.backups.String()
}

// PrimaryBackupScheme allows arbitrary backup changes but never changes the
// primary:
//
//	R1⁺((P,_),(P',_)) ≜ P = P'
//
// All quorums contain the (constant) primary, so OVERLAP is immediate. The
// paper notes the liveness limitation (a crashed primary blocks progress)
// and suggests layering a primary-set manager on top; that composition is
// demonstrated in the examples.
type PrimaryBackupScheme struct{}

// PrimaryBackup is the canonical instance of the primary-backup scheme.
var PrimaryBackup Scheme = PrimaryBackupScheme{}

// Name implements Scheme.
func (PrimaryBackupScheme) Name() string { return "primary-backup" }

// Initial implements Scheme: the smallest member becomes the primary.
func (PrimaryBackupScheme) Initial(members types.NodeSet) Config {
	ids := members.Slice()
	if len(ids) == 0 {
		return NewPrimaryConfig(types.NoNode, types.NodeSet{})
	}
	return NewPrimaryConfig(ids[0], members)
}

// R1Plus implements Scheme: the primary must not change.
func (PrimaryBackupScheme) R1Plus(old, new Config) bool {
	o, ok := old.(PrimaryConfig)
	if !ok {
		return false
	}
	n, ok := new.(PrimaryConfig)
	if !ok {
		return false
	}
	return o.primary == n.primary
}

// Successors implements Scheme: every backup set drawn from universe.
func (PrimaryBackupScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c, ok := cf.(PrimaryConfig)
	if !ok {
		return nil
	}
	var out []Config
	universe.Remove(c.primary).Subsets(func(backups types.NodeSet) bool {
		next := NewPrimaryConfig(c.primary, backups)
		if !next.Equal(c) {
			out = append(out, next)
		}
		return true
	})
	return out
}
