package config

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adore/internal/types"
)

func TestSingleNodeR1Plus(t *testing.T) {
	c123 := NewMajorityConfig(types.Range(1, 3))
	c1234 := NewMajorityConfig(types.Range(1, 4))
	c12 := NewMajorityConfig(types.Range(1, 2))
	c124 := NewMajorityConfig(types.NewNodeSet(1, 2, 4))
	s := RaftSingleNode
	if !s.R1Plus(c123, c123) {
		t.Error("R1+ not reflexive")
	}
	if !s.R1Plus(c123, c1234) || !s.R1Plus(c1234, c123) {
		t.Error("single addition/removal rejected")
	}
	if !s.R1Plus(c123, c12) {
		t.Error("single removal rejected")
	}
	if s.R1Plus(c1234, c12) {
		t.Error("two-node removal accepted")
	}
	if !s.R1Plus(c12, c124) {
		t.Error("{1,2} → {1,2,4} is a single addition and must be accepted")
	}
	if s.R1Plus(c123, c124) {
		// {1,2,3} → {1,2,4} swaps a node: a two-node difference.
		t.Error("node swap accepted; Fig. 4's bug relies on rejecting this")
	}
}

func TestJointQuorum(t *testing.T) {
	old := types.Range(1, 3)
	incoming := types.Range(3, 5)
	joint := NewJointTransition(old, incoming)
	// {1,2,3,4} holds majorities of both {1,2,3} and {3,4,5}.
	if !joint.IsQuorum(types.NewNodeSet(1, 2, 3, 4)) {
		t.Error("valid joint quorum rejected")
	}
	// {1,2} is a majority of old only.
	if joint.IsQuorum(types.NewNodeSet(1, 2)) {
		t.Error("old-only majority accepted in joint state")
	}
	// {3,4,5} is a majority of both ({3} is not a majority of {1,2,3}...).
	if joint.IsQuorum(types.NewNodeSet(4, 5)) {
		t.Error("incoming-only majority accepted in joint state")
	}
	if !joint.IsQuorum(types.NewNodeSet(2, 3, 4)) {
		t.Error("{2,3,4} is a majority of both sets and must be a quorum")
	}
	stable := NewJointConfig(old)
	if !stable.IsQuorum(types.NewNodeSet(1, 2)) {
		t.Error("stable config must use plain majority")
	}
}

func TestJointR1PlusTransitions(t *testing.T) {
	s := RaftJoint
	old := types.Range(1, 3)
	incoming := types.Range(3, 5)
	stable := NewJointConfig(old)
	joint := NewJointTransition(old, incoming)
	settled := NewJointConfig(incoming)
	if !s.R1Plus(stable, joint) {
		t.Error("stable → joint rejected")
	}
	if !s.R1Plus(joint, settled) {
		t.Error("joint → settled rejected")
	}
	if s.R1Plus(stable, settled) {
		t.Error("stable → settled skips the joint state and must be rejected")
	}
	if s.R1Plus(joint, NewJointConfig(old)) {
		t.Error("joint may only settle into the incoming set")
	}
	if !s.R1Plus(joint, joint) || !s.R1Plus(stable, stable) {
		t.Error("R1+ not reflexive")
	}
}

func TestPrimaryBackup(t *testing.T) {
	cf := NewPrimaryConfig(1, types.Range(2, 4))
	if !cf.IsQuorum(types.NewNodeSet(1)) {
		t.Error("primary alone must be a quorum")
	}
	if cf.IsQuorum(types.Range(2, 4)) {
		t.Error("backups without the primary must not be a quorum")
	}
	s := PrimaryBackup
	other := NewPrimaryConfig(1, types.NewNodeSet(7, 8))
	if !s.R1Plus(cf, other) {
		t.Error("backup-only change rejected")
	}
	if s.R1Plus(cf, NewPrimaryConfig(2, types.Range(3, 4))) {
		t.Error("primary change accepted")
	}
	if got := NewPrimaryConfig(1, types.Range(1, 3)); got.Backups().Contains(1) {
		t.Error("primary leaked into backups")
	}
}

func TestDynamicQuorum(t *testing.T) {
	cf := NewDynamicConfig(3, types.Range(1, 4))
	if !cf.IsQuorum(types.NewNodeSet(1, 2, 3)) {
		t.Error("3-subset rejected with q=3")
	}
	if cf.IsQuorum(types.NewNodeSet(1, 2)) {
		t.Error("2-subset accepted with q=3")
	}
	s := DynamicQuorum
	// Growing {1,2,3,4} (q=3) to {1..6} needs q' with 6 < 3+q', so q' ≥ 4.
	grown := NewDynamicConfig(4, types.Range(1, 6))
	if !s.R1Plus(cf, grown) {
		t.Error("valid growth rejected")
	}
	tooSmall := NewDynamicConfig(3, types.Range(1, 6))
	if s.R1Plus(cf, tooSmall) {
		t.Error("growth with insufficient quorum size accepted")
	}
	// Incomparable member sets are never R1⁺-related.
	if s.R1Plus(cf, NewDynamicConfig(4, types.NewNodeSet(1, 2, 5))) {
		t.Error("incomparable member sets accepted")
	}
	if s.R1Plus(cf, NewDynamicConfig(0, types.Range(1, 4))) {
		t.Error("q=0 accepted; empty quorums break OVERLAP")
	}
}

func TestUnanimous(t *testing.T) {
	cf := NewUnanimousConfig(types.Range(1, 3))
	if !cf.IsQuorum(types.Range(1, 3)) {
		t.Error("full set rejected")
	}
	if cf.IsQuorum(types.Range(1, 2)) {
		t.Error("partial set accepted under unanimity")
	}
	if NewUnanimousConfig(types.NodeSet{}).IsQuorum(types.NodeSet{}) {
		t.Error("empty config must have no quorums")
	}
	s := Unanimous
	if !s.R1Plus(cf, NewUnanimousConfig(types.NewNodeSet(3, 7, 8, 9))) {
		t.Error("overlapping replacement rejected")
	}
	if s.R1Plus(cf, NewUnanimousConfig(types.NewNodeSet(7, 8))) {
		t.Error("disjoint replacement accepted")
	}
}

func TestLearners(t *testing.T) {
	cf := NewLearnerConfig(types.Range(1, 3), types.NewNodeSet(4, 5))
	if !cf.IsQuorum(types.NewNodeSet(1, 2)) {
		t.Error("voter majority rejected")
	}
	if cf.IsQuorum(types.NewNodeSet(1, 4, 5)) {
		t.Error("learners counted toward quorum")
	}
	if !cf.Members().Equal(types.Range(1, 5)) {
		t.Error("members must include learners")
	}
	s := Learners
	// Learner changes are free.
	if !s.R1Plus(cf, NewLearnerConfig(types.Range(1, 3), types.NewNodeSet(6, 7, 8))) {
		t.Error("arbitrary learner change rejected")
	}
	// Voter changes follow the single-node rule.
	if s.R1Plus(cf, NewLearnerConfig(types.NewNodeSet(1, 4, 5), types.NodeSet{})) {
		t.Error("multi-voter change accepted")
	}
	if !s.R1Plus(cf, NewLearnerConfig(types.Range(1, 4), types.NewNodeSet(5))) {
		t.Error("learner promotion (single voter addition) rejected")
	}
	overlap := NewLearnerConfig(types.Range(1, 3), types.Range(1, 5))
	if overlap.Learners().Intersects(overlap.Voters()) {
		t.Error("voters leaked into learners")
	}
}

func TestSuccessorsAreR1Related(t *testing.T) {
	universe := types.Range(1, 5)
	for _, s := range AllSchemes() {
		cf := s.Initial(types.Range(1, 3))
		succs := s.Successors(cf, universe)
		if len(succs) == 0 {
			t.Errorf("scheme %s: no successors from initial config", s.Name())
		}
		for _, succ := range succs {
			if !s.R1Plus(cf, succ) {
				t.Errorf("scheme %s: successor %s not R1⁺-related to %s", s.Name(), succ, cf)
			}
			if succ.Equal(cf) {
				t.Errorf("scheme %s: successor equals the current config", s.Name())
			}
			if succ.Members().IsEmpty() {
				t.Errorf("scheme %s: empty successor config", s.Name())
			}
		}
	}
}

// TestQuickQuorumsAreQuorums cross-checks the Quorums enumerator against
// IsQuorum on random configurations.
func TestQuickQuorumsAreQuorums(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(4) + 1
		ids := make([]types.NodeID, n)
		for i := range ids {
			ids[i] = types.NodeID(r.Intn(6) + 1)
		}
		cf := NewMajorityConfig(types.NewNodeSet(ids...))
		for _, q := range Quorums(cf) {
			if !cf.IsQuorum(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickMajorityOverlap is the classic pigeonhole fact used throughout
// the paper: two majorities of the same set always intersect.
func TestQuickMajorityOverlap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		members := types.Range(1, types.NodeID(r.Intn(5)+1))
		cf := NewMajorityConfig(members)
		qs := Quorums(cf)
		for _, a := range qs {
			for _, b := range qs {
				if !a.Intersects(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
