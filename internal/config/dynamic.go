package config

import (
	"fmt"

	"adore/internal/types"
)

// DynamicConfig is the configuration of the dynamic quorum size scheme (§6,
// "Dynamic Quorum Sizes", in the style of Vertical Paxos): an explicit
// quorum size q alongside the member set.
//
//	Config            ≜ ℕ * Set(ℕ_nid)
//	isQuorum(S,(q,C)) ≜ q ≤ |S ∩ C|
type DynamicConfig struct {
	q       int
	members types.NodeSet
}

// NewDynamicConfig builds a configuration with quorum size q over members.
func NewDynamicConfig(q int, members types.NodeSet) DynamicConfig {
	return DynamicConfig{q: q, members: members}
}

// QuorumSize returns the configured quorum size.
func (c DynamicConfig) QuorumSize() int { return c.q }

// Members implements Config.
func (c DynamicConfig) Members() types.NodeSet { return c.members }

// IsQuorum implements Config.
func (c DynamicConfig) IsQuorum(qs types.NodeSet) bool {
	return c.q <= qs.IntersectLen(c.members)
}

// Equal implements Config.
func (c DynamicConfig) Equal(other Config) bool {
	o, ok := other.(DynamicConfig)
	return ok && c.q == o.q && c.members.Equal(o.members)
}

// Key implements Config.
func (c DynamicConfig) Key() string {
	return fmt.Sprintf("dyn:%d:%s", c.q, c.members.Key())
}

// String implements Config.
func (c DynamicConfig) String() string {
	return fmt.Sprintf("⟨q=%d,%s⟩", c.q, c.members)
}

// DynamicQuorumScheme trades reconfiguration speed against fault tolerance
// by letting quorum sizes change:
//
//	R1⁺((q,C),(q',C')) ≜ (C ⊆ C' ∧ |C'| < q + q') ∨ (C' ⊆ C ∧ |C| < q + q')
//
// By the pigeonhole principle any q-quorum of the smaller set and q'-quorum
// of the larger set must share a member when the sizes sum past the larger
// set's cardinality.
type DynamicQuorumScheme struct{}

// DynamicQuorum is the canonical instance of the dynamic quorum size scheme.
var DynamicQuorum Scheme = DynamicQuorumScheme{}

// Name implements Scheme.
func (DynamicQuorumScheme) Name() string { return "dynamic-quorum" }

// Initial implements Scheme: majority-sized quorums to start.
func (DynamicQuorumScheme) Initial(members types.NodeSet) Config {
	return NewDynamicConfig(members.Len()/2+1, members)
}

// R1Plus implements Scheme.
func (DynamicQuorumScheme) R1Plus(old, new Config) bool {
	o, ok := old.(DynamicConfig)
	if !ok {
		return false
	}
	n, ok := new.(DynamicConfig)
	if !ok {
		return false
	}
	if o.q < 1 || n.q < 1 {
		return false
	}
	if o.members.SubsetOf(n.members) && n.members.Len() < o.q+n.q {
		return true
	}
	if n.members.SubsetOf(o.members) && o.members.Len() < o.q+n.q {
		return true
	}
	return false
}

// Successors implements Scheme: every superset/subset of the members drawn
// from universe, with every quorum size that keeps R1⁺ satisfied and the
// configuration usable (1 ≤ q' ≤ |C'|).
func (s DynamicQuorumScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c, ok := cf.(DynamicConfig)
	if !ok {
		return nil
	}
	var out []Config
	universe.Subsets(func(target types.NodeSet) bool {
		if target.IsEmpty() {
			return true
		}
		// Valid configurations need |C| < 2q (REFLEXIVE: two quorums of
		// the *same* config must overlap), so start at the majority size.
		for q := target.Len()/2 + 1; q <= target.Len(); q++ {
			next := NewDynamicConfig(q, target)
			if !next.Equal(c) && s.R1Plus(c, next) {
				out = append(out, next)
			}
		}
		return true
	})
	return out
}
