package config

import (
	"adore/internal/types"
)

// LearnerConfig is the second extra scheme: Raft single-node voting changes
// plus freely reconfigurable non-voting learners (as in etcd). Learners
// receive replicated data but never count toward quorums, so adding or
// removing them cannot affect safety; voters change one at a time exactly as
// in the single-node scheme.
//
//	Config               ≜ Set(ℕ_nid) * Set(ℕ_nid)        (voters, learners)
//	isQuorum(S,(V,_))    ≜ |V| < 2·|S ∩ V|
type LearnerConfig struct {
	voters   types.NodeSet
	learners types.NodeSet
}

// NewLearnerConfig builds a configuration with the given voters and
// learners. Overlapping IDs are treated as voters.
func NewLearnerConfig(voters, learners types.NodeSet) LearnerConfig {
	return LearnerConfig{voters: voters, learners: learners.Diff(voters)}
}

// Voters returns the voting member set.
func (c LearnerConfig) Voters() types.NodeSet { return c.voters }

// Learners returns the non-voting member set.
func (c LearnerConfig) Learners() types.NodeSet { return c.learners }

// Members implements Config: voters and learners both receive traffic.
func (c LearnerConfig) Members() types.NodeSet { return c.voters.Union(c.learners) }

// IsQuorum implements Config: strict majority of voters only.
func (c LearnerConfig) IsQuorum(q types.NodeSet) bool { return Majority(q, c.voters) }

// Equal implements Config.
func (c LearnerConfig) Equal(other Config) bool {
	o, ok := other.(LearnerConfig)
	return ok && c.voters.Equal(o.voters) && c.learners.Equal(o.learners)
}

// Key implements Config.
func (c LearnerConfig) Key() string {
	return "lrn:" + c.voters.Key() + ":" + c.learners.Key()
}

// String implements Config.
func (c LearnerConfig) String() string {
	return c.voters.String() + "+L" + c.learners.String()
}

// LearnerScheme changes voters one node at a time (single-node rule) and
// learners arbitrarily:
//
//	R1⁺((V,L),(V',L')) ≜ V = V' ∨ ∃s. V = V' ∪ {s} ∨ V' = V ∪ {s}
//
// OVERLAP reduces to the single-node argument because quorums ignore
// learners entirely.
type LearnerScheme struct{}

// Learners is the canonical instance of the learner scheme.
var Learners Scheme = LearnerScheme{}

// Name implements Scheme.
func (LearnerScheme) Name() string { return "learners" }

// Initial implements Scheme: all members start as voters.
func (LearnerScheme) Initial(members types.NodeSet) Config {
	return NewLearnerConfig(members, types.NodeSet{})
}

// R1Plus implements Scheme.
func (LearnerScheme) R1Plus(old, new Config) bool {
	o, ok := old.(LearnerConfig)
	if !ok {
		return false
	}
	n, ok := new.(LearnerConfig)
	if !ok {
		return false
	}
	return SingleNodeScheme{}.R1Plus(NewMajorityConfig(o.voters), NewMajorityConfig(n.voters))
}

// Successors implements Scheme: single-node voter changes crossed with
// learner promotion/demotion/addition/removal of one node at a time (the
// enumeration is deliberately bounded; R1⁺ itself permits arbitrary learner
// changes).
func (LearnerScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c, ok := cf.(LearnerConfig)
	if !ok {
		return nil
	}
	var out []Config
	add := func(next LearnerConfig) {
		if !next.Equal(c) {
			out = append(out, next)
		}
	}
	outside := universe.Diff(c.Members())
	// Voter changes (single-node rule).
	for _, id := range outside.Slice() {
		add(NewLearnerConfig(c.voters.Add(id), c.learners))
	}
	for _, id := range c.learners.Slice() {
		add(NewLearnerConfig(c.voters.Add(id), c.learners.Remove(id))) // promote
	}
	if c.voters.Len() > 1 {
		for _, id := range c.voters.Slice() {
			add(NewLearnerConfig(c.voters.Remove(id), c.learners))         // remove voter
			add(NewLearnerConfig(c.voters.Remove(id), c.learners.Add(id))) // demote
		}
	}
	// Learner-only changes (voters constant).
	for _, id := range outside.Slice() {
		add(NewLearnerConfig(c.voters, c.learners.Add(id)))
	}
	for _, id := range c.learners.Slice() {
		add(NewLearnerConfig(c.voters, c.learners.Remove(id)))
	}
	return out
}
