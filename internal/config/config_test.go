package config

import (
	"testing"

	"adore/internal/types"
)

func TestMajorityHelper(t *testing.T) {
	members := types.Range(1, 3)
	cases := []struct {
		q    types.NodeSet
		want bool
	}{
		{types.NewNodeSet(1, 2), true},
		{types.NewNodeSet(1), false},
		{types.NewNodeSet(1, 2, 3), true},
		{types.NewNodeSet(), false},
		{types.NewNodeSet(4, 5), false},         // non-members don't count
		{types.NewNodeSet(1, 4, 5), false},      // one member is not a majority
		{types.NewNodeSet(1, 2, 4, 5, 6), true}, // extra non-members are harmless
	}
	for _, c := range cases {
		if got := Majority(c.q, members); got != c.want {
			t.Errorf("Majority(%v, %v) = %v, want %v", c.q, members, got, c.want)
		}
	}
}

func TestQuorumsMajorityOfThree(t *testing.T) {
	cf := NewMajorityConfig(types.Range(1, 3))
	qs := Quorums(cf)
	// Majorities of {1,2,3}: the three 2-subsets and the full set.
	if len(qs) != 4 {
		t.Fatalf("got %d quorums, want 4: %v", len(qs), qs)
	}
	for _, q := range qs {
		if q.Len() < 2 {
			t.Errorf("quorum %v too small", q)
		}
	}
}

func TestReachableConfigsSingleNode(t *testing.T) {
	universe := types.Range(1, 4)
	cfgs := ReachableConfigs(RaftSingleNode, types.Range(1, 3), universe, 1)
	// From {1,2,3}: itself, add 4, remove each of 1..3 → 5 configs.
	if len(cfgs) != 5 {
		t.Errorf("got %d reachable configs at depth 1, want 5: %v", len(cfgs), cfgs)
	}
}

// TestAllSchemesAssumptions is the executable counterpart of the paper's §6
// proof obligations: every shipped scheme must satisfy REFLEXIVE and
// OVERLAP on all configurations reachable within a few reconfigurations.
func TestAllSchemesAssumptions(t *testing.T) {
	universe := types.Range(1, 5)
	start := types.Range(1, 3)
	for _, s := range AllSchemes() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			depth := 3
			if s.Name() == "dynamic-quorum" || s.Name() == "unanimous" || s.Name() == "primary-backup" {
				depth = 2 // branchier successor sets; depth 2 already covers the family
			}
			cases, err := CheckAssumptions(s, start, universe, depth)
			if err != nil {
				t.Fatal(err)
			}
			if cases == 0 {
				t.Fatal("no quorum pairs checked; enumeration is broken")
			}
			t.Logf("scheme %s: %d quorum-pair cases checked", s.Name(), cases)
		})
	}
}

// TestBrokenSchemeCaught shows CheckAssumptions has teeth: a scheme that
// allows two-node changes under majority quorums must be rejected.
func TestBrokenSchemeCaught(t *testing.T) {
	if _, err := CheckAssumptions(doubleHopScheme{}, types.Range(1, 4), types.Range(1, 6), 1); err == nil {
		t.Fatal("CheckAssumptions accepted a scheme that permits disjoint quorums")
	}
}

// doubleHopScheme deliberately violates OVERLAP: it permits configurations
// that differ by two nodes, so {S1,S2,S3,S4} → {S1,S2} and → {S3,S4} lead to
// disjoint majorities.
type doubleHopScheme struct{}

func (doubleHopScheme) Name() string { return "broken-double-hop" }
func (doubleHopScheme) Initial(members types.NodeSet) Config {
	return NewMajorityConfig(members)
}
func (doubleHopScheme) R1Plus(old, new Config) bool {
	o := old.(MajorityConfig)
	n := new.(MajorityConfig)
	return o.members.Diff(n.members).Len()+n.members.Diff(o.members).Len() <= 2
}
func (doubleHopScheme) Successors(cf Config, universe types.NodeSet) []Config {
	c := cf.(MajorityConfig)
	var out []Config
	universe.Subsets(func(target types.NodeSet) bool {
		if !target.IsEmpty() && !target.Equal(c.members) &&
			(doubleHopScheme{}).R1Plus(cf, NewMajorityConfig(target)) {
			out = append(out, NewMajorityConfig(target))
		}
		return true
	})
	return out
}

func TestSchemeByName(t *testing.T) {
	for _, s := range AllSchemes() {
		if got := SchemeByName(s.Name()); got == nil || got.Name() != s.Name() {
			t.Errorf("SchemeByName(%q) = %v", s.Name(), got)
		}
	}
	if SchemeByName("no-such-scheme") != nil {
		t.Error("SchemeByName of unknown name should be nil")
	}
}

func TestConfigKeysCanonical(t *testing.T) {
	// Equal configs must have equal keys; distinct configs distinct keys.
	a := NewMajorityConfig(types.NewNodeSet(1, 2))
	b := NewMajorityConfig(types.NewNodeSet(2, 1))
	if a.Key() != b.Key() {
		t.Errorf("equal configs with different keys: %q vs %q", a.Key(), b.Key())
	}
	c := NewUnanimousConfig(types.NewNodeSet(1, 2))
	if a.Key() == c.Key() {
		t.Errorf("configs of different schemes share key %q", a.Key())
	}
	if a.Equal(c) {
		t.Errorf("cross-scheme configs reported equal")
	}
}
