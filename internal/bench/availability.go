package bench

import (
	"fmt"
	"io"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// The paper's future work (§9) names liveness and availability — which "can
// also be compromised by an incorrect reconfiguration scheme" — as the
// natural next targets. This experiment probes them on the executable
// runtime: a client hammers the store while the harness injects a leader
// crash and a reconfiguration, and we measure the unavailability windows
// (the longest stretch with no successful request) around each fault.

// AvailabilityOptions parameterizes the probe.
type AvailabilityOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// Requests per phase (steady, post-crash, post-reconfig).
	PhaseRequests int
	// NetLatency simulates the network.
	NetLatency time.Duration
	// Seed drives all randomness.
	Seed int64
	// Timeout bounds each client request.
	Timeout time.Duration
}

// AvailabilityDefaults returns laptop-scale defaults.
func AvailabilityDefaults() AvailabilityOptions {
	return AvailabilityOptions{
		Nodes:         5,
		PhaseRequests: 300,
		NetLatency:    200 * time.Microsecond,
		Seed:          1,
		Timeout:       30 * time.Second,
	}
}

// Outage describes one fault injection and the observed recovery.
type Outage struct {
	// Fault labels the injection ("leader crash", "reconfiguration").
	Fault string
	// Stall is the longest inter-success gap in the fault's phase.
	Stall time.Duration
	// FirstAfter is the latency of the first request issued after the
	// fault (it absorbs the election/propagation delay).
	FirstAfter time.Duration
}

// AvailabilityResult carries the probe's measurements.
type AvailabilityResult struct {
	Steady   Summary  // latency with no faults
	Outages  []Outage // one per injected fault
	Recorder *LatencyRecorder
}

// RunAvailability executes the probe: a steady phase, a leader-crash phase,
// and a reconfiguration phase, all on one cluster.
func RunAvailability(opts AvailabilityOptions) (*AvailabilityResult, error) {
	if opts.Nodes == 0 {
		opts = AvailabilityDefaults()
	}
	r := kvstore.NewReplicated(cluster.Options{
		N:       opts.Nodes,
		Latency: opts.NetLatency,
		Seed:    opts.Seed,
	})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opts.Timeout); err != nil {
		return nil, err
	}

	rec := NewLatencyRecorder(3 * opts.PhaseRequests)
	res := &AvailabilityResult{Recorder: rec}

	runPhase := func() (Summary, time.Duration, time.Duration, error) {
		phase := NewLatencyRecorder(opts.PhaseRequests)
		var maxGap, first time.Duration
		last := time.Now()
		for i := 0; i < opts.PhaseRequests; i++ {
			t0 := time.Now()
			if err := r.Put(fmt.Sprintf("a%d", i%32), "v", opts.Timeout); err != nil {
				return Summary{}, 0, 0, err
			}
			d := time.Since(t0)
			phase.Record(d)
			rec.Record(d)
			if gap := time.Since(last); gap > maxGap {
				maxGap = gap
			}
			last = time.Now()
			if i == 0 {
				first = d
			}
		}
		return phase.Summarize(), maxGap, first, nil
	}

	// Phase 1: steady state.
	steady, _, _, err := runPhase()
	if err != nil {
		return nil, fmt.Errorf("bench: steady phase: %w", err)
	}
	res.Steady = steady

	// Phase 2: crash the leader (isolate it — equivalent from the
	// cluster's viewpoint), keep the client running.
	if l := r.Cluster.Leader(); l != nil {
		rec.Annotate("leader crash")
		r.Cluster.Net.Isolate(l.ID())
	}
	_, stall, first, err := runPhase()
	if err != nil {
		return nil, fmt.Errorf("bench: crash phase: %w", err)
	}
	res.Outages = append(res.Outages, Outage{Fault: "leader crash", Stall: stall, FirstAfter: first})
	r.Cluster.Net.Heal()

	// Phase 3: live reconfiguration (remove one follower).
	members := r.Cluster.Leader().Members()
	var victim types.NodeID
	for _, id := range members.Slice() {
		if id != r.Cluster.Leader().ID() {
			victim = id
		}
	}
	rec.Annotate(fmt.Sprintf("reconfiguration: remove %s", victim))
	if _, err := r.Cluster.Reconfigure(members.Remove(victim), opts.Timeout); err != nil {
		return nil, fmt.Errorf("bench: reconfigure: %w", err)
	}
	_, stall, first, err = runPhase()
	if err != nil {
		return nil, fmt.Errorf("bench: reconfig phase: %w", err)
	}
	res.Outages = append(res.Outages, Outage{Fault: "reconfiguration", Stall: stall, FirstAfter: first})
	return res, nil
}

// Print writes the availability report.
func (a *AvailabilityResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Availability probe (liveness extension, paper §9 future work)\n\n")
	fmt.Fprintf(w, "steady state: mean=%s p99=%s\n", fmtDur(a.Steady.Mean), fmtDur(a.Steady.P99))
	for _, o := range a.Outages {
		fmt.Fprintf(w, "%-16s stall=%s first-request-after=%s\n", o.Fault+":", fmtDur(o.Stall), fmtDur(o.FirstAfter))
	}
}
