// Package bench contains the workload generators, latency recorders, and
// report printers that regenerate the paper's evaluation (§7): the Fig. 16
// latency-under-reconfiguration experiment and the effort-comparison
// tables. The cmd/raft-bench and cmd/adore-verify binaries and the root
// bench_test.go drive these.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// LatencyRecorder collects per-request latencies with event annotations.
// It is safe for concurrent use: the multi-client Fig. 16 mode records
// from many goroutines at once.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	events  map[int]string // request index → annotation ("reconfig → 4 nodes")
}

// NewLatencyRecorder creates an empty recorder.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	return &LatencyRecorder{
		samples: make([]time.Duration, 0, capacity),
		events:  make(map[int]string),
	}
}

// Record appends one request latency.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Annotate marks the next request index with an event label.
func (r *LatencyRecorder) Annotate(label string) {
	r.mu.Lock()
	r.events[len(r.samples)] = label
	r.mu.Unlock()
}

// Len returns the number of samples.
func (r *LatencyRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Samples returns a copy of the raw latencies.
func (r *LatencyRecorder) Samples() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.samples...)
}

// snapshot copies the recorded state for lock-free aggregation.
func (r *LatencyRecorder) snapshot() ([]time.Duration, map[int]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	samples := append([]time.Duration(nil), r.samples...)
	events := make(map[int]string, len(r.events))
	for k, v := range r.events {
		events[k] = v
	}
	return samples, events
}

// Window summarizes a bucket of consecutive requests.
type Window struct {
	Start, End     int // request index range [Start, End)
	Min, Mean, Max time.Duration
	Events         []string
}

// Windows buckets the samples (the per-window max/mean/min series of
// Fig. 16).
func (r *LatencyRecorder) Windows(size int) []Window {
	if size <= 0 {
		size = 100
	}
	samples, events := r.snapshot()
	var out []Window
	for lo := 0; lo < len(samples); lo += size {
		hi := lo + size
		if hi > len(samples) {
			hi = len(samples)
		}
		w := Window{Start: lo, End: hi}
		var sum time.Duration
		w.Min = samples[lo]
		for i := lo; i < hi; i++ {
			d := samples[i]
			sum += d
			if d < w.Min {
				w.Min = d
			}
			if d > w.Max {
				w.Max = d
			}
			if ev, ok := events[i]; ok {
				w.Events = append(w.Events, ev)
			}
		}
		w.Mean = sum / time.Duration(hi-lo)
		out = append(out, w)
	}
	return out
}

// Percentile returns the p-th percentile latency (p in [0,100]).
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	sorted := r.Samples()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Summary aggregates the full run.
type Summary struct {
	Count          int
	Min, Mean, Max time.Duration
	P50, P95, P99  time.Duration
}

// Summarize computes the run summary.
func (r *LatencyRecorder) Summarize() Summary {
	samples := r.Samples()
	s := Summary{Count: len(samples)}
	if s.Count == 0 {
		return s
	}
	var sum time.Duration
	s.Min = samples[0]
	for _, d := range samples {
		sum += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = sum / time.Duration(s.Count)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) time.Duration { return samples[int(p/100*float64(len(samples)-1))] }
	s.P50 = pct(50)
	s.P95 = pct(95)
	s.P99 = pct(99)
	return s
}

// PrintSeries writes the Fig. 16 series: one row per window with min, mean,
// max latency and any reconfiguration events, plus an ASCII sparkline of
// the mean.
func (r *LatencyRecorder) PrintSeries(w io.Writer, windowSize int) {
	windows := r.Windows(windowSize)
	var peak time.Duration
	for _, win := range windows {
		if win.Max > peak {
			peak = win.Max
		}
	}
	fmt.Fprintf(w, "%-12s %10s %10s %10s  %-24s %s\n", "requests", "min", "mean", "max", "events", "mean (bar)")
	for _, win := range windows {
		bar := ""
		if peak > 0 {
			n := int(win.Mean * 40 / peak)
			bar = strings.Repeat("▇", n+1)
		}
		fmt.Fprintf(w, "%5d-%-6d %10s %10s %10s  %-24s %s\n",
			win.Start, win.End, fmtDur(win.Min), fmtDur(win.Mean), fmtDur(win.Max),
			strings.Join(win.Events, "; "), bar)
	}
	s := r.Summarize()
	fmt.Fprintf(w, "\noverall: n=%d min=%s mean=%s p50=%s p95=%s p99=%s max=%s\n",
		s.Count, fmtDur(s.Min), fmtDur(s.Mean), fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.P99), fmtDur(s.Max))
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// Table is a simple aligned text table for the effort reports (E2–E4).
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}
