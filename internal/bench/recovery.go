package bench

// This file measures what ISSUE 7's compaction buys: restart recovery
// bounded by the snapshot threshold instead of history length, and
// follower catch-up that streams one state-machine image instead of
// replaying the whole log. Each grid point runs the same history twice —
// compacted and full — so the evidence file shows the O(history) vs
// O(threshold) split directly.

import (
	"fmt"
	"io"
	"os"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/raftcore"
	"adore/internal/types"
)

// RecoveryOptions parameterizes the recovery/catch-up grid.
type RecoveryOptions struct {
	// Histories are the committed-entry counts to sweep.
	Histories []int
	// RetainTail is how many entries stay above the snapshot base in the
	// compacted variant — the model's SnapshotThreshold.
	RetainTail int
	// Payload is the per-command payload size in bytes.
	Payload int
	// Image is the state-machine image size used for compaction and
	// InstallSnapshot transfers.
	Image int
}

// RecoveryDefaults mirrors the acceptance bound: a threshold of 1000
// against histories up to 50k entries.
func RecoveryDefaults() RecoveryOptions {
	return RecoveryOptions{
		Histories:  []int{5000, 20000, 50000},
		RetainTail: 1000,
		Payload:    28,
		Image:      64 << 10,
	}
}

// RecoveryPoint is one grid cell: a history length run either compacted
// (snapshot + bounded suffix) or full (replay everything).
type RecoveryPoint struct {
	Name          string  `json:"name"`
	History       int     `json:"history"`
	Compacted     bool    `json:"compacted"`
	ReplayEntries int     `json:"replay_entries"`
	OpenMS        float64 `json:"open_ms"`
	CatchupRounds int     `json:"catchup_rounds"`
	CatchupMS     float64 `json:"catchup_ms"`
}

// RecoveryResult is the full grid, one point per (history, compacted).
type RecoveryResult struct {
	RetainTail int             `json:"retain_tail"`
	Points     []RecoveryPoint `json:"points"`
}

// RunRecovery sweeps the grid. For each point it measures (a) restart:
// wall time of OpenFileStorage over a real WAL directory plus the entry
// count the replay materializes, and (b) catch-up: message rounds and
// wall time for a fresh follower to converge with a leader holding that
// history, pumped deterministically through the pure core.
func RunRecovery(opts RecoveryOptions) (*RecoveryResult, error) {
	if len(opts.Histories) == 0 {
		opts = RecoveryDefaults()
	}
	res := &RecoveryResult{RetainTail: opts.RetainTail}
	for _, h := range opts.Histories {
		for _, compacted := range []bool{false, true} {
			p := RecoveryPoint{History: h, Compacted: compacted}
			p.Name = fmt.Sprintf("h%d-full", h)
			if compacted {
				p.Name = fmt.Sprintf("h%d-compacted", h)
			}
			if err := measureRestart(&p, opts); err != nil {
				return nil, err
			}
			if err := measureCatchup(&p, opts); err != nil {
				return nil, err
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// buildRecoveryWAL writes history entries into a WAL directory and, for
// the compacted variant, folds everything but the retained tail into a
// snapshot — the on-disk shape a long-lived node leaves behind.
func buildRecoveryWAL(dir string, history int, compacted bool, opts RecoveryOptions) error {
	fs, err := raft.OpenFileStorage(dir)
	if err != nil {
		return err
	}
	payload := make([]byte, opts.Payload)
	const batch = 512
	for first := 1; first <= history; first += batch {
		n := batch
		if first+n > history+1 {
			n = history + 1 - first
		}
		entries := make([]raft.LogEntry, n)
		for i := range entries {
			entries[i] = raft.LogEntry{Term: 1, Kind: raft.EntryCommand, Command: payload}
		}
		if err := fs.SaveEntries(first, entries); err != nil {
			return err
		}
	}
	if compacted {
		if err := fs.SaveSnapshot(raft.LogSnapshot{
			Index:   history - opts.RetainTail,
			Term:    1,
			Members: []types.NodeID{1},
			Data:    make([]byte, opts.Image),
		}); err != nil {
			return err
		}
	}
	return fs.Close()
}

// measureRestart builds a WAL with p.History entries (compacting to the
// retained tail if asked), then times a cold open of the directory.
func measureRestart(p *RecoveryPoint, opts RecoveryOptions) error {
	dir, err := os.MkdirTemp("", "adore-bench-recovery-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := buildRecoveryWAL(dir, p.History, p.Compacted, opts); err != nil {
		return err
	}

	start := time.Now()
	re, err := raft.OpenFileStorage(dir)
	if err != nil {
		return err
	}
	_, _, log, err := re.Load()
	if err != nil {
		return err
	}
	p.OpenMS = float64(time.Since(start).Nanoseconds()) / 1e6
	p.ReplayEntries = len(log)
	return re.Close()
}

func catchupConfig(id types.NodeID) raftcore.Config {
	return raftcore.Config{
		ID:            id,
		Members:       []types.NodeID{1, 2},
		ElectionTicks: 5,
		Jitter:        func() int { return 0 },
	}
}

// catchupRelay cross-delivers pending messages between the leader and
// the follower until both are quiet.
func catchupRelay(lead, f *raftcore.Core) {
	for i := 0; i < 1000; i++ {
		rdL, rdF := lead.TakeReady(), f.TakeReady()
		if len(rdL.Messages) == 0 && len(rdF.Messages) == 0 {
			return
		}
		for _, m := range rdL.Messages {
			if m.To == 2 {
				f.Step(m)
			}
		}
		for _, m := range rdF.Messages {
			if m.To == 1 {
				lead.Step(m)
			}
		}
	}
}

// newCatchupLeader builds a two-member leader with history committed
// entries applied (compacted to a single image if asked) and returns it
// with the commit index a joining follower must reach.
func newCatchupLeader(history int, compacted bool, opts RecoveryOptions) (*raftcore.Core, int, error) {
	lead := raftcore.New(catchupConfig(1), raftcore.HardState{}, raftcore.Snapshot{}, nil)
	warm := raftcore.New(catchupConfig(2), raftcore.HardState{}, raftcore.Snapshot{}, nil)
	for i := 0; i < 5; i++ {
		lead.Tick()
	}
	catchupRelay(lead, warm)
	if lead.Role() != raftcore.Leader {
		return nil, 0, fmt.Errorf("bench: catch-up leader never elected (role %s)", lead.Role())
	}
	payload := make([]byte, opts.Payload)
	for i := 0; i < history; i++ {
		if _, _, err := lead.Propose(payload); err != nil {
			return nil, 0, err
		}
		if i%256 == 0 {
			catchupRelay(lead, warm)
		}
	}
	catchupRelay(lead, warm)
	target := history + 1 // entries plus the term-1 no-op
	if got := lead.CommitIndex(); got != target {
		return nil, 0, fmt.Errorf("bench: leader committed %d of %d", got, target)
	}
	if compacted {
		if !lead.Compact(target, make([]byte, opts.Image)) {
			return nil, 0, fmt.Errorf("bench: leader rejected Compact(%d)", target)
		}
		lead.TakeReady()
	}
	return lead, target, nil
}

// runCatchup boots a cold follower on ID 2 and pumps tick/exchange
// rounds until its commit index reaches target. The follower's empty log
// rejects the leader's optimistic appends, which either walks the probe
// back through the whole log (full) or falls below the base and streams
// the image (compacted).
func runCatchup(lead *raftcore.Core, target int) (int, error) {
	fresh := raftcore.New(catchupConfig(2), raftcore.HardState{}, raftcore.Snapshot{}, nil)
	rounds := 0
	for fresh.CommitIndex() < target {
		rounds++
		if rounds > 4*target+10000 {
			return rounds, fmt.Errorf("bench: follower stuck at commit %d of %d after %d rounds",
				fresh.CommitIndex(), target, rounds)
		}
		lead.Tick()
		catchupRelay(lead, fresh)
	}
	return rounds, nil
}

// measureCatchup pumps a leader holding p.History committed entries
// against a fresh, empty follower through the pure core — no goroutines,
// no clocks — and counts the tick/exchange rounds until the follower's
// commit index reaches the leader's.
func measureCatchup(p *RecoveryPoint, opts RecoveryOptions) error {
	lead, target, err := newCatchupLeader(p.History, p.Compacted, opts)
	if err != nil {
		return err
	}
	start := time.Now()
	rounds, err := runCatchup(lead, target)
	if err != nil {
		return err
	}
	p.CatchupMS = float64(time.Since(start).Nanoseconds()) / 1e6
	p.CatchupRounds = rounds
	return nil
}

// Print renders the grid as a table.
func (r *RecoveryResult) Print(w io.Writer) {
	t := &Table{Header: []string{
		"point", "history", "replayed", "open ms", "catchup rounds", "catchup ms",
	}}
	for _, p := range r.Points {
		t.Add(p.Name,
			fmt.Sprintf("%d", p.History),
			fmt.Sprintf("%d", p.ReplayEntries),
			fmt.Sprintf("%.2f", p.OpenMS),
			fmt.Sprintf("%d", p.CatchupRounds),
			fmt.Sprintf("%.2f", p.CatchupMS))
	}
	fmt.Fprintf(w, "restart recovery and follower catch-up (retained tail %d)\n", r.RetainTail)
	t.Print(w)
}
