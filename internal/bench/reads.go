package bench

// This file measures what ISSUE 10's three-tier read path buys. The mode
// grid drives the SAME mixed workload (reads dominating, writes paying a
// WAL latency) through each read path — leader ReadIndex barrier, leader
// lease, follower-served — across a closed-loop client sweep, and reports
// per-mode read throughput and latency plus the core's coalescing
// counters (barriers opened vs reads that shared one). The follower
// sweep then scales the replica count with a fixed per-replica
// read-execution cost (see kvstore.ReadServeCost): leader-served reads
// funnel through one replica's serialized lane no matter how many
// replicas exist, while follower-served reads spread across the replica
// set — aggregate read throughput should scale with the follower count.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// ReadsOptions parameterizes the read-path sweeps.
type ReadsOptions struct {
	// Nodes is the cluster size for the mode grid (default 5).
	Nodes int
	// ClientCounts is the closed-loop client sweep for the mode grid
	// (default 4, 16, 32).
	ClientCounts []int
	// Requests is the operation count per point (default 4000).
	Requests int
	// ReadFraction of operations are FastGets; the rest are Puts
	// (default 0.9). Writes matter twice: they are the freshness the
	// barriers must prove, and their broadcasts are the rounds pending
	// read barriers ride.
	ReadFraction float64
	// Keys bounds the keyspace (default 64); it is preloaded so every
	// read finds a value.
	Keys int
	// WALLatency backs every node with an in-memory WAL whose appends
	// block for this long — the same storage substitution the shard
	// sweep uses (default 150µs). Writes pay it; reads must not.
	WALLatency time.Duration
	// NetLatency/NetJitter simulate the network (default 200µs/20µs).
	// The barrier modes pay round trips on this network per confirmation
	// round; lease reads pay none — the gap under measurement.
	NetLatency time.Duration
	NetJitter  time.Duration
	// FollowerNodes is the replica-count sweep for the follower-scaling
	// grid (default 3, 5, 7).
	FollowerNodes []int
	// FollowerClients is the client population for the scaling grid
	// (default 32): enough offered load that the per-replica serve lane,
	// not the client count, is the bottleneck.
	FollowerClients int
	// ServeCost is the per-read execution cost charged on the serving
	// replica's serialized lane in the scaling grid (default 150µs).
	// Like WALLatency, only the wait is simulated; the serialization is
	// the architecture under test.
	ServeCost time.Duration
	// Seed drives all randomness.
	Seed int64
	// Timeout bounds each client request.
	Timeout time.Duration
}

// ReadsDefaults returns the committed-evidence parameters.
func ReadsDefaults() ReadsOptions {
	return ReadsOptions{
		Nodes:           5,
		ClientCounts:    []int{4, 16, 32},
		Requests:        4000,
		ReadFraction:    0.9,
		Keys:            64,
		WALLatency:      150 * time.Microsecond,
		NetLatency:      200 * time.Microsecond,
		NetJitter:       20 * time.Microsecond,
		FollowerNodes:   []int{3, 5, 7},
		FollowerClients: 32,
		ServeCost:       150 * time.Microsecond,
		Seed:            1,
		Timeout:         30 * time.Second,
	}
}

// ReadsPoint is one grid point: one read mode, one cluster, one client
// population, the same mixed workload.
type ReadsPoint struct {
	Mode          string  `json:"mode"`
	Nodes         int     `json:"nodes"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	Reads         int     `json:"reads"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputOPS float64 `json:"throughput_ops"`
	// ReadThroughputOPS is reads completed per second — the figure the
	// speedup and scaling columns compare.
	ReadThroughputOPS float64 `json:"read_throughput_ops"`
	ReadMeanUS        float64 `json:"read_mean_us"`
	ReadP50US         float64 `json:"read_p50_us"`
	ReadP95US         float64 `json:"read_p95_us"`
	ReadP99US         float64 `json:"read_p99_us"`
	// Core counters summed over the cluster: barriers opened, reads that
	// coalesced into an already-open barrier, reads served from the
	// lease with zero rounds.
	ReadBarriers   uint64 `json:"read_barriers"`
	ReadsCoalesced uint64 `json:"reads_coalesced"`
	LeaseReads     uint64 `json:"lease_reads"`
	// LeaseSpeedup (mode grid, lease rows) is this point's read
	// throughput over the ReadIndex mode's at the same client count.
	LeaseSpeedup float64 `json:"lease_speedup,omitempty"`
	// Scaling (follower grid) is this point's read throughput over the
	// same mode's at the smallest replica count.
	Scaling float64 `json:"scaling,omitempty"`
}

// ReadsResult is the full pair of sweeps.
type ReadsResult struct {
	Nodes        int          `json:"nodes"`
	ReadFraction float64      `json:"read_fraction"`
	WALLatencyUS float64      `json:"wal_latency_us"`
	NetLatencyUS float64      `json:"net_latency_us"`
	ServeCostUS  float64      `json:"serve_cost_us"`
	Seed         int64        `json:"seed"`
	Modes        []ReadsPoint `json:"modes"`
	Follower     []ReadsPoint `json:"follower"`
}

// RunReads executes both sweeps: the mode grid over the client counts,
// then the follower-scaling grid over the replica counts.
func RunReads(opts ReadsOptions) (*ReadsResult, error) {
	if opts.Nodes == 0 {
		opts = ReadsDefaults()
	}
	res := &ReadsResult{
		Nodes:        opts.Nodes,
		ReadFraction: opts.ReadFraction,
		WALLatencyUS: us(opts.WALLatency),
		NetLatencyUS: us(opts.NetLatency),
		ServeCostUS:  us(opts.ServeCost),
		Seed:         opts.Seed,
	}
	modes := []kvstore.ReadMode{
		kvstore.ReadModeReadIndex, kvstore.ReadModeLease, kvstore.ReadModeFollower,
	}
	for _, clients := range opts.ClientCounts {
		base := -1.0
		for _, mode := range modes {
			p, err := runReadsPoint(mode, opts.Nodes, clients, 0, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%d clients: %w", mode, clients, err)
			}
			if mode == kvstore.ReadModeReadIndex {
				base = p.ReadThroughputOPS
			} else if mode == kvstore.ReadModeLease && base > 0 {
				p.LeaseSpeedup = p.ReadThroughputOPS / base
			}
			res.Modes = append(res.Modes, *p)
		}
	}
	for _, mode := range []kvstore.ReadMode{kvstore.ReadModeReadIndex, kvstore.ReadModeFollower} {
		base := -1.0
		for _, nodes := range opts.FollowerNodes {
			p, err := runReadsPoint(mode, nodes, opts.FollowerClients, opts.ServeCost, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%d nodes: %w", mode, nodes, err)
			}
			if base < 0 {
				base = p.ReadThroughputOPS
			}
			if base > 0 {
				p.Scaling = p.ReadThroughputOPS / base
			}
			res.Follower = append(res.Follower, *p)
		}
	}
	return res, nil
}

func runReadsPoint(mode kvstore.ReadMode, nodes, clients int, serveCost time.Duration, opts ReadsOptions) (*ReadsPoint, error) {
	clOpts := cluster.Options{
		N:             nodes,
		Latency:       opts.NetLatency,
		Jitter:        opts.NetJitter,
		Seed:          opts.Seed,
		NoApplyRecord: true,
	}
	if opts.WALLatency > 0 {
		clOpts.StorageFor = func(types.NodeID) raft.Storage {
			return &delayStorage{inner: raft.NewMemStorage(), delay: opts.WALLatency}
		}
	}
	r := kvstore.NewReplicated(clOpts)
	r.ReadServeCost = serveCost
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opts.Timeout); err != nil {
		return nil, err
	}
	for k := 0; k < opts.Keys; k++ {
		if err := r.Put(fmt.Sprintf("key-%d", k), "seed", opts.Timeout); err != nil {
			return nil, fmt.Errorf("preload: %w", err)
		}
	}

	// Every writeEvery-th operation is a Put; the rest are FastGets.
	writeEvery := 0
	if opts.ReadFraction < 1 {
		writeEvery = int(1/(1-opts.ReadFraction) + 0.5)
	}
	rec := NewLatencyRecorder(opts.Requests)
	var ctr, reads atomic.Int64
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		cl := r.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(ctr.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				key := fmt.Sprintf("key-%d", i%opts.Keys)
				if writeEvery > 0 && i%writeEvery == 0 {
					if _, err := cl.Do(kvstore.OpPut, key, fmt.Sprintf("value-%d", i), "", opts.Timeout); err != nil {
						errCh <- fmt.Errorf("put %d: %w", i, err)
						return
					}
					continue
				}
				t0 := time.Now()
				if _, _, err := r.FastGetMode(key, mode, opts.Timeout); err != nil {
					errCh <- fmt.Errorf("read %d (%s): %w", i, mode, err)
					return
				}
				rec.Record(time.Since(t0))
				reads.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	p := &ReadsPoint{
		Mode:     mode.String(),
		Nodes:    nodes,
		Clients:  clients,
		Requests: opts.Requests,
		Reads:    int(reads.Load()),
	}
	for _, n := range r.Cluster.Nodes() {
		c := n.Snapshot().Counters
		p.ReadBarriers += c.ReadBarriers
		p.ReadsCoalesced += c.ReadsCoalesced
		p.LeaseReads += c.LeaseReads
	}
	sum := rec.Summarize()
	p.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	p.ReadMeanUS = us(sum.Mean)
	p.ReadP50US = us(sum.P50)
	p.ReadP95US = us(sum.P95)
	p.ReadP99US = us(sum.P99)
	if elapsed > 0 {
		p.ThroughputOPS = float64(opts.Requests) / elapsed.Seconds()
		p.ReadThroughputOPS = float64(p.Reads) / elapsed.Seconds()
	}
	return p, nil
}

// Print renders both sweeps as tables.
func (r *ReadsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "read modes — %d replicas, %.0f%% reads, wal %s, net %s\n",
		r.Nodes, r.ReadFraction*100, time.Duration(r.WALLatencyUS*1e3), time.Duration(r.NetLatencyUS*1e3))
	t := &Table{Header: []string{
		"mode", "clients", "reads/s", "mean us", "p50 us", "p99 us", "barriers", "coalesced", "lease", "speedup",
	}}
	for _, p := range r.Modes {
		speedup := ""
		if p.LeaseSpeedup > 0 {
			speedup = fmt.Sprintf("%.2fx", p.LeaseSpeedup)
		}
		t.Add(
			p.Mode,
			fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%.0f", p.ReadThroughputOPS),
			fmt.Sprintf("%.1f", p.ReadMeanUS),
			fmt.Sprintf("%.1f", p.ReadP50US),
			fmt.Sprintf("%.1f", p.ReadP99US),
			fmt.Sprintf("%d", p.ReadBarriers),
			fmt.Sprintf("%d", p.ReadsCoalesced),
			fmt.Sprintf("%d", p.LeaseReads),
			speedup,
		)
	}
	t.Print(w)
	if len(r.Follower) == 0 {
		return
	}
	fmt.Fprintf(w, "\nfollower scaling — %d clients, serve cost %s per read per replica\n",
		r.Follower[0].Clients, time.Duration(r.ServeCostUS*1e3))
	t = &Table{Header: []string{
		"mode", "nodes", "reads/s", "mean us", "p99 us", "scaling",
	}}
	for _, p := range r.Follower {
		t.Add(
			p.Mode,
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.0f", p.ReadThroughputOPS),
			fmt.Sprintf("%.1f", p.ReadMeanUS),
			fmt.Sprintf("%.1f", p.ReadP99US),
			fmt.Sprintf("%.2fx", p.Scaling),
		)
	}
	t.Print(w)
}
