package bench

// This file measures what ISSUE 9's multi-raft sharding buys: aggregate
// propose throughput that scales with the number of raft groups. Each
// group is an independent consensus pipeline — its own leader, WAL, fsync
// stream, and apply loop — so with the keyspace hash-partitioned across
// groups, the per-group serial bottleneck parallelizes. The sweep runs the
// SAME closed-loop client population against 1, 2, 4, and 8 shards and
// reports the speedup over the single-group baseline.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/kvstore"
	"adore/internal/multiraft"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// ShardsOptions parameterizes the shard-scaling sweep.
type ShardsOptions struct {
	// ShardCounts are the group counts to sweep (default 1, 2, 4, 8).
	ShardCounts []int
	// Nodes is the replica count per group; every node hosts every group
	// (default 3).
	Nodes int
	// Clients is the closed-loop client population, identical at every
	// point — the sweep measures what sharding does for a FIXED offered
	// load, not more clients (default 16).
	Clients int
	// Requests is the total operation count per point (default 3000).
	Requests int
	// Keys bounds the keyspace; keys hash across shards (default 256).
	Keys int
	// Durable backs every (group, node) pair with a file WAL in its own
	// group-%04d subdirectory — the storage layout whose namespacing the
	// multiraft layer guarantees. Real files share the host's one disk, so
	// on single-device machines the sweep measures that disk, not the
	// architecture; see WALLatency for the evidence configuration.
	Durable bool
	// WALLatency, when nonzero (and Durable is off), backs each (group,
	// node) pair with an in-memory WAL whose appends block for this long —
	// the storage row of DESIGN.md's substitution table. It models each
	// group's log on its own device (the multi-raft deployment premise:
	// shards scale because their WAL pipelines are independent), which a
	// single shared benchmark-host disk cannot exhibit: every group's
	// fsync funnels into one device queue there. The serialized section —
	// the node holds its lock across the append, exactly as with a real
	// fsync — is the architecture under test; only the device wait is
	// simulated.
	WALLatency time.Duration
	// Unbatched routes proposals through the synchronous Propose path, one
	// fsync per command, so the per-group WAL pipeline is the bottleneck
	// being parallelized. With group commit a single group coalesces the
	// whole client population into shared frames and the sweep instead
	// measures apply-loop and leader-CPU parallelism.
	Unbatched bool
	// NetLatency/NetJitter simulate the network; the defaults keep them
	// near zero so the serial per-group pipeline, not request RTT,
	// dominates (a closed loop over a pure-latency network cannot scale
	// with shards: throughput = clients / RTT regardless of groups).
	NetLatency time.Duration
	NetJitter  time.Duration
	// Seed drives all randomness.
	Seed int64
	// Timeout bounds each client request.
	Timeout time.Duration
}

// ShardsDefaults returns the committed-evidence parameters.
func ShardsDefaults() ShardsOptions {
	return ShardsOptions{
		ShardCounts: []int{1, 2, 4, 8},
		Nodes:       3,
		Clients:     16,
		Requests:    3000,
		Keys:        256,
		WALLatency:  150 * time.Microsecond,
		Unbatched:   true,
		NetLatency:  10 * time.Microsecond,
		Seed:        1,
		Timeout:     30 * time.Second,
	}
}

// ShardsPoint is one sweep point: the same workload against one shard count.
type ShardsPoint struct {
	Shards        int     `json:"shards"`
	Requests      int     `json:"requests"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputOPS float64 `json:"throughput_ops"`
	MeanUS        float64 `json:"mean_us"`
	P50US         float64 `json:"p50_us"`
	P95US         float64 `json:"p95_us"`
	P99US         float64 `json:"p99_us"`
	// Speedup is this point's throughput over the 1-shard baseline's.
	Speedup float64 `json:"speedup"`
}

// ShardsResult is the full sweep.
type ShardsResult struct {
	Nodes        int           `json:"nodes"`
	Clients      int           `json:"clients"`
	Durable      bool          `json:"durable"`
	WALLatencyUS float64       `json:"wal_latency_us"`
	Unbatched    bool          `json:"unbatched"`
	Seed         int64         `json:"seed"`
	Points       []ShardsPoint `json:"points"`
}

// RunShards executes the sweep: for each shard count, start a fresh
// cluster hosting that many groups over one shared transport, drive the
// same closed-loop client population through the hash-partitioned
// keyspace, and measure aggregate throughput.
func RunShards(opts ShardsOptions) (*ShardsResult, error) {
	if len(opts.ShardCounts) == 0 {
		opts = ShardsDefaults()
	}
	res := &ShardsResult{
		Nodes:        opts.Nodes,
		Clients:      opts.Clients,
		Durable:      opts.Durable,
		WALLatencyUS: us(opts.WALLatency),
		Unbatched:    opts.Unbatched,
		Seed:         opts.Seed,
	}
	for _, shards := range opts.ShardCounts {
		p, err := runShardsPoint(shards, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: %d shards: %w", shards, err)
		}
		res.Points = append(res.Points, *p)
	}
	if len(res.Points) > 0 && res.Points[0].Shards == 1 && res.Points[0].ThroughputOPS > 0 {
		base := res.Points[0].ThroughputOPS
		for i := range res.Points {
			res.Points[i].Speedup = res.Points[i].ThroughputOPS / base
		}
	}
	return res, nil
}

func runShardsPoint(shards int, opts ShardsOptions) (*ShardsPoint, error) {
	clOpts := cluster.Options{
		N:       opts.Nodes,
		Latency: opts.NetLatency,
		Jitter:  opts.NetJitter,
		Seed:    opts.Seed,
		// The applied-stream record grows with every command on every
		// (group, node) pair; it exists for the chaos oracles, not for
		// throughput measurement.
		NoApplyRecord: true,
	}
	if opts.Durable {
		dir, err := os.MkdirTemp("", "shards-wal-")
		if err != nil {
			return nil, fmt.Errorf("wal dir: %w", err)
		}
		defer os.RemoveAll(dir)
		clOpts.StorageForG = func(g raft.GroupID, id types.NodeID) raft.Storage {
			root := filepath.Join(dir, fmt.Sprintf("node-%s", id))
			fs, err := raft.OpenFileStorage(multiraft.GroupStorageDir(root, g))
			if err != nil {
				panic(fmt.Sprintf("bench: open wal for %s/g%d: %v", id, g, err))
			}
			return fs
		}
	} else if opts.WALLatency > 0 {
		clOpts.StorageForG = func(raft.GroupID, types.NodeID) raft.Storage {
			return &delayStorage{inner: raft.NewMemStorage(), delay: opts.WALLatency}
		}
	}
	s := kvstore.NewSharded(shards, clOpts)
	s.Unbatched = opts.Unbatched
	defer s.Stop()
	for g := raft.GroupID(0); g < raft.GroupID(shards); g++ {
		if _, err := s.Cluster.WaitForLeaderG(g, opts.Timeout); err != nil {
			return nil, err
		}
	}

	rec := NewLatencyRecorder(opts.Requests)
	var ctr atomic.Int64
	errCh := make(chan error, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		cl := s.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(ctr.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				key := fmt.Sprintf("key-%d", i%opts.Keys)
				t0 := time.Now()
				if _, err := cl.Do(kvstore.OpPut, key, fmt.Sprintf("value-%d", i), "", opts.Timeout); err != nil {
					errCh <- fmt.Errorf("request %d: %w", i, err)
					return
				}
				rec.Record(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	sum := rec.Summarize()
	p := &ShardsPoint{
		Shards:    shards,
		Requests:  sum.Count,
		ElapsedMS: float64(elapsed.Nanoseconds()) / 1e6,
		MeanUS:    us(sum.Mean),
		P50US:     us(sum.P50),
		P95US:     us(sum.P95),
		P99US:     us(sum.P99),
	}
	if elapsed > 0 {
		p.ThroughputOPS = float64(sum.Count) / elapsed.Seconds()
	}
	return p, nil
}

// delayStorage is the storage row of the substitution table: an in-memory
// WAL whose append path blocks for a fixed device latency, standing in for
// one dedicated log device per (group, node). The caller (the node, holding
// its lock) blocks exactly as it would on a real fsync; waits on DIFFERENT
// groups' devices overlap, which is the independence the sweep measures.
type delayStorage struct {
	inner *raft.MemStorage
	delay time.Duration
}

func (d *delayStorage) SaveState(hs raft.HardState) error {
	time.Sleep(d.delay)
	return d.inner.SaveState(hs)
}

func (d *delayStorage) SaveEntries(firstIndex int, entries []raft.LogEntry) error {
	time.Sleep(d.delay)
	return d.inner.SaveEntries(firstIndex, entries)
}

func (d *delayStorage) SaveSnapshot(snap raft.LogSnapshot) error {
	time.Sleep(d.delay)
	return d.inner.SaveSnapshot(snap)
}

func (d *delayStorage) Load() (raft.HardState, raft.LogSnapshot, []raft.LogEntry, error) {
	return d.inner.Load()
}

func (d *delayStorage) Close() error { return d.inner.Close() }

// Print renders the sweep as a table.
func (r *ShardsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "shard scaling — %d clients, %d replicas/group, durable=%v, wal latency %s, unbatched=%v\n",
		r.Clients, r.Nodes, r.Durable, time.Duration(r.WALLatencyUS*1e3), r.Unbatched)
	t := &Table{Header: []string{
		"shards", "requests", "elapsed ms", "ops/s", "mean us", "p50 us", "p99 us", "speedup",
	}}
	for _, p := range r.Points {
		t.Add(
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%.1f", p.ElapsedMS),
			fmt.Sprintf("%.0f", p.ThroughputOPS),
			fmt.Sprintf("%.1f", p.MeanUS),
			fmt.Sprintf("%.1f", p.P50US),
			fmt.Sprintf("%.1f", p.P99US),
			fmt.Sprintf("%.2fx", p.Speedup),
		)
	}
	t.Print(w)
}
