package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// Fig16Options parameterizes the Fig. 16 reproduction: "the experiment
// reconfigures after every 1000 client requests, starting with five nodes,
// dropping to three, then increasing back to five" (§7). The paper ran on
// EC2 m4.xlarge; we run on a latency-injecting in-memory network (see
// DESIGN.md's substitution table).
type Fig16Options struct {
	// Requests is the total client request count (paper: 5000).
	Requests int
	// ReconfigEvery triggers a membership change after this many requests
	// (paper: 1000).
	ReconfigEvery int
	// StartNodes is the initial cluster size (paper: 5). The schedule
	// shrinks one node at a time to StartNodes-2, then grows back.
	StartNodes int
	// NetLatency/NetJitter simulate the network RTT contribution.
	NetLatency time.Duration
	NetJitter  time.Duration
	// Seed drives all randomness.
	Seed int64
	// Timeout bounds each client request.
	Timeout time.Duration
	// Clients is the number of concurrent closed-loop clients (0 or 1:
	// the paper's single sequential client). With several clients the
	// group-commit path coalesces their proposals into shared WAL frames
	// and broadcasts — the batching ablation's load generator.
	Clients int
	// Unbatched routes proposals through the synchronous Propose path
	// (one fsync and one broadcast per command) instead of group commit,
	// isolating what batching buys under the same workload.
	Unbatched bool
	// Durable backs every node with a real file WAL in a temporary
	// directory (removed afterwards). Without it appends are memory-only,
	// so the batching ablation would measure only broadcast coalescing —
	// with it, fsync amortization dominates, as on real hardware.
	Durable bool
	// DisablePreVote/DisableCheckQuorum turn off the election-robustness
	// guards, so the reconfiguration latency spikes can be measured with
	// and without graceful leadership handling.
	DisablePreVote     bool
	DisableCheckQuorum bool
}

// Fig16Defaults returns the paper's parameters (scaled to run in seconds on
// a laptop rather than minutes on EC2).
func Fig16Defaults() Fig16Options {
	return Fig16Options{
		Requests:      5000,
		ReconfigEvery: 1000,
		StartNodes:    5,
		NetLatency:    200 * time.Microsecond,
		NetJitter:     300 * time.Microsecond,
		Seed:          1,
		Timeout:       30 * time.Second,
	}
}

// Fig16Result carries the recorded series.
type Fig16Result struct {
	Recorder *LatencyRecorder
	// Schedule lists the applied membership changes as "(n) → (m)".
	Schedule []string
	Elapsed  time.Duration
}

// RunFig16 executes the experiment: a client issues Requests sequential
// put/get operations against a replicated KV store while the membership
// follows the 5 → 3 → 5 schedule, one node per change. Per-request
// latencies are recorded with reconfiguration events annotated.
func RunFig16(opts Fig16Options) (*Fig16Result, error) {
	if opts.Requests == 0 {
		opts = Fig16Defaults()
	}
	clOpts := cluster.Options{
		N:                  opts.StartNodes,
		Latency:            opts.NetLatency,
		Jitter:             opts.NetJitter,
		Seed:               opts.Seed,
		DisablePreVote:     opts.DisablePreVote,
		DisableCheckQuorum: opts.DisableCheckQuorum,
	}
	if opts.Durable {
		dir, err := os.MkdirTemp("", "fig16-wal-")
		if err != nil {
			return nil, fmt.Errorf("bench: wal dir: %w", err)
		}
		defer os.RemoveAll(dir)
		clOpts.StorageFor = func(id types.NodeID) raft.Storage {
			fs, err := raft.OpenFileStorage(filepath.Join(dir, fmt.Sprintf("wal-%s", id)))
			if err != nil {
				panic(fmt.Sprintf("bench: open wal for %s: %v", id, err))
			}
			return fs
		}
	}
	r := kvstore.NewReplicated(clOpts)
	r.Unbatched = opts.Unbatched
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opts.Timeout); err != nil {
		return nil, err
	}

	// Membership schedule: remove one node per step down to
	// StartNodes-2, then add them back, at every ReconfigEvery requests.
	type change struct {
		target types.NodeSet
		label  string
	}
	full := types.Range(1, types.NodeID(opts.StartNodes))
	var schedule []change
	cur := full
	// Shrink (remove the two highest IDs one at a time)...
	for i := 0; i < 2; i++ {
		victim := cur.Slice()[cur.Len()-1]
		next := cur.Remove(victim)
		schedule = append(schedule, change{next, fmt.Sprintf("(%d) → (%d) remove %s", cur.Len(), next.Len(), victim)})
		cur = next
	}
	// ...then grow back.
	for i := 0; i < 2; i++ {
		missing := full.Diff(cur).Slice()[0]
		next := cur.Add(missing)
		schedule = append(schedule, change{next, fmt.Sprintf("(%d) → (%d) add %s", cur.Len(), next.Len(), missing)})
		cur = next
	}

	rec := NewLatencyRecorder(opts.Requests)
	res := &Fig16Result{Recorder: rec}
	start := time.Now()

	// One request by its global sequence number i; used by both modes.
	doRequest := func(i int) error {
		t0 := time.Now()
		key := fmt.Sprintf("key-%d", i%64)
		var err error
		if i%4 == 3 {
			_, _, err = r.Get(key, opts.Timeout)
		} else {
			err = r.Put(key, fmt.Sprintf("value-%d", i), opts.Timeout)
		}
		if err != nil {
			return fmt.Errorf("bench: request %d: %w", i, err)
		}
		rec.Record(time.Since(t0))
		return nil
	}

	var schedMu sync.Mutex
	nextChange := 0
	// maybeReconfig applies the next scheduled membership change when the
	// request counter crosses a boundary. Exactly one client owns each
	// request number, so each boundary fires once; schedMu orders the
	// schedule bookkeeping among clients.
	maybeReconfig := func(i int) error {
		if opts.ReconfigEvery <= 0 || i == 0 || i%opts.ReconfigEvery != 0 {
			return nil
		}
		schedMu.Lock()
		if nextChange >= len(schedule) {
			schedMu.Unlock()
			return nil
		}
		ch := schedule[nextChange]
		nextChange++
		rec.Annotate(ch.label)
		res.Schedule = append(res.Schedule, ch.label)
		schedMu.Unlock()
		if _, err := r.Cluster.Reconfigure(ch.target, opts.Timeout); err != nil {
			return fmt.Errorf("bench: reconfig %q: %w", ch.label, err)
		}
		return nil
	}

	if opts.Clients <= 1 {
		// The paper's sequential closed loop.
		for i := 0; i < opts.Requests; i++ {
			if err := maybeReconfig(i); err != nil {
				return nil, err
			}
			if err := doRequest(i); err != nil {
				return nil, err
			}
		}
	} else {
		// Concurrent closed-loop clients share a global request counter;
		// whichever client draws a boundary number performs the reconfig
		// before its request.
		var ctr atomic.Int64
		errCh := make(chan error, opts.Clients)
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(ctr.Add(1)) - 1
					if i >= opts.Requests {
						return
					}
					if err := maybeReconfig(i); err != nil {
						errCh <- err
						return
					}
					if err := doRequest(i); err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Print writes the Fig. 16 report.
func (r *Fig16Result) Print(w io.Writer, windowSize int) {
	fmt.Fprintf(w, "Fig. 16 — Raft performance under reconfiguration (Go runtime, simulated network)\n")
	fmt.Fprintf(w, "schedule: %v\nelapsed: %s\n\n", r.Schedule, r.Elapsed.Round(time.Millisecond))
	r.Recorder.PrintSeries(w, windowSize)
}
