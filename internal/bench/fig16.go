package bench

import (
	"fmt"
	"io"
	"time"

	"adore/internal/kvstore"
	"adore/internal/raft/cluster"
	"adore/internal/types"
)

// Fig16Options parameterizes the Fig. 16 reproduction: "the experiment
// reconfigures after every 1000 client requests, starting with five nodes,
// dropping to three, then increasing back to five" (§7). The paper ran on
// EC2 m4.xlarge; we run on a latency-injecting in-memory network (see
// DESIGN.md's substitution table).
type Fig16Options struct {
	// Requests is the total client request count (paper: 5000).
	Requests int
	// ReconfigEvery triggers a membership change after this many requests
	// (paper: 1000).
	ReconfigEvery int
	// StartNodes is the initial cluster size (paper: 5). The schedule
	// shrinks one node at a time to StartNodes-2, then grows back.
	StartNodes int
	// NetLatency/NetJitter simulate the network RTT contribution.
	NetLatency time.Duration
	NetJitter  time.Duration
	// Seed drives all randomness.
	Seed int64
	// Timeout bounds each client request.
	Timeout time.Duration
}

// Fig16Defaults returns the paper's parameters (scaled to run in seconds on
// a laptop rather than minutes on EC2).
func Fig16Defaults() Fig16Options {
	return Fig16Options{
		Requests:      5000,
		ReconfigEvery: 1000,
		StartNodes:    5,
		NetLatency:    200 * time.Microsecond,
		NetJitter:     300 * time.Microsecond,
		Seed:          1,
		Timeout:       30 * time.Second,
	}
}

// Fig16Result carries the recorded series.
type Fig16Result struct {
	Recorder *LatencyRecorder
	// Schedule lists the applied membership changes as "(n) → (m)".
	Schedule []string
	Elapsed  time.Duration
}

// RunFig16 executes the experiment: a client issues Requests sequential
// put/get operations against a replicated KV store while the membership
// follows the 5 → 3 → 5 schedule, one node per change. Per-request
// latencies are recorded with reconfiguration events annotated.
func RunFig16(opts Fig16Options) (*Fig16Result, error) {
	if opts.Requests == 0 {
		opts = Fig16Defaults()
	}
	r := kvstore.NewReplicated(cluster.Options{
		N:       opts.StartNodes,
		Latency: opts.NetLatency,
		Jitter:  opts.NetJitter,
		Seed:    opts.Seed,
	})
	defer r.Stop()
	if _, err := r.Cluster.WaitForLeader(opts.Timeout); err != nil {
		return nil, err
	}

	// Membership schedule: remove one node per step down to
	// StartNodes-2, then add them back, at every ReconfigEvery requests.
	type change struct {
		target types.NodeSet
		label  string
	}
	full := types.Range(1, types.NodeID(opts.StartNodes))
	var schedule []change
	cur := full
	// Shrink (remove the two highest IDs one at a time)...
	for i := 0; i < 2; i++ {
		victim := cur.Slice()[cur.Len()-1]
		next := cur.Remove(victim)
		schedule = append(schedule, change{next, fmt.Sprintf("(%d) → (%d) remove %s", cur.Len(), next.Len(), victim)})
		cur = next
	}
	// ...then grow back.
	for i := 0; i < 2; i++ {
		missing := full.Diff(cur).Slice()[0]
		next := cur.Add(missing)
		schedule = append(schedule, change{next, fmt.Sprintf("(%d) → (%d) add %s", cur.Len(), next.Len(), missing)})
		cur = next
	}

	rec := NewLatencyRecorder(opts.Requests)
	res := &Fig16Result{Recorder: rec}
	start := time.Now()
	nextChange := 0
	for i := 0; i < opts.Requests; i++ {
		if opts.ReconfigEvery > 0 && i > 0 && i%opts.ReconfigEvery == 0 && nextChange < len(schedule) {
			ch := schedule[nextChange]
			nextChange++
			rec.Annotate(ch.label)
			res.Schedule = append(res.Schedule, ch.label)
			if _, err := r.Cluster.Reconfigure(ch.target, opts.Timeout); err != nil {
				return nil, fmt.Errorf("bench: reconfig %q: %w", ch.label, err)
			}
		}
		t0 := time.Now()
		key := fmt.Sprintf("key-%d", i%64)
		var err error
		if i%4 == 3 {
			_, _, err = r.Get(key, opts.Timeout)
		} else {
			err = r.Put(key, fmt.Sprintf("value-%d", i), opts.Timeout)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: request %d: %w", i, err)
		}
		rec.Record(time.Since(t0))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Print writes the Fig. 16 report.
func (r *Fig16Result) Print(w io.Writer, windowSize int) {
	fmt.Fprintf(w, "Fig. 16 — Raft performance under reconfiguration (Go runtime, simulated network)\n")
	fmt.Fprintf(w, "schedule: %v\nelapsed: %s\n\n", r.Schedule, r.Elapsed.Round(time.Millisecond))
	r.Recorder.PrintSeries(w, windowSize)
}
