package bench

import (
	"bytes"
	"testing"
	"time"
)

// The report printers must be pure functions of their inputs: rendering the
// same recorder or table twice yields byte-identical output. The events map
// inside LatencyRecorder is the one piece of state that could leak iteration
// order, so the fixture below annotates several windows.

func fixtureRecorder() *LatencyRecorder {
	r := NewLatencyRecorder(64)
	for i := 0; i < 250; i++ {
		if i%60 == 0 {
			r.Annotate("reconfig")
		}
		if i == 130 {
			r.Annotate("leader change")
		}
		r.Record(time.Duration(500+(i*37)%400) * time.Microsecond)
	}
	return r
}

// TestPrintSeriesByteIdentical renders the Fig. 16 series twice from the
// same recorder and requires identical bytes.
func TestPrintSeriesByteIdentical(t *testing.T) {
	r := fixtureRecorder()
	var a, b bytes.Buffer
	r.PrintSeries(&a, 50)
	r.PrintSeries(&b, 50)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("PrintSeries output differs between renders:\nfirst:\n%s\nsecond:\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("PrintSeries produced no output")
	}
}

// TestTablePrintByteIdentical renders an effort table twice and requires
// identical bytes.
func TestTablePrintByteIdentical(t *testing.T) {
	tb := &Table{Header: []string{"scheme", "states", "result"}}
	tb.Add("raft-single", "1204", "ok")
	tb.Add("paxos-style", "877", "ok")
	tb.Add("primary-backup", "93", "violation")
	var a, b bytes.Buffer
	tb.Print(&a)
	tb.Print(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("Table output differs between renders:\nfirst:\n%s\nsecond:\n%s", a.String(), b.String())
	}
}

// TestWindowsEventOrderStable checks that window event annotations come out
// in request order regardless of how the events map is populated.
func TestWindowsEventOrderStable(t *testing.T) {
	r := fixtureRecorder()
	first := r.Windows(50)
	for i := 0; i < 10; i++ {
		again := r.Windows(50)
		if len(again) != len(first) {
			t.Fatalf("window count changed: %d vs %d", len(again), len(first))
		}
		for w := range first {
			if len(first[w].Events) != len(again[w].Events) {
				t.Fatalf("window %d events changed", w)
			}
			for e := range first[w].Events {
				if first[w].Events[e] != again[w].Events[e] {
					t.Fatalf("window %d event %d differs: %q vs %q", w, e, first[w].Events[e], again[w].Events[e])
				}
			}
		}
	}
}
