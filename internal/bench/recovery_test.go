package bench

import (
	"os"
	"path/filepath"
	"testing"

	"adore/internal/raft"
)

// openAndLoad performs one cold recovery: open the directory, replay the
// retained suffix, and report how many entries materialized.
func openAndLoad(dir string) (int, error) {
	re, err := raft.OpenFileStorage(dir)
	if err != nil {
		return 0, err
	}
	_, _, log, err := re.Load()
	if err != nil {
		re.Close()
		return 0, err
	}
	return len(log), re.Close()
}

// TestRunRecoveryGrid runs a small grid end to end and checks the shape
// of the evidence: the compacted variant must replay a bounded suffix and
// converge in strictly fewer catch-up rounds than the full variant.
func TestRunRecoveryGrid(t *testing.T) {
	opts := RecoveryOptions{
		Histories:  []int{2000},
		RetainTail: 500,
		Payload:    16,
		Image:      4 << 10,
	}
	res, err := RunRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("want 2 grid points, got %d", len(res.Points))
	}
	full, comp := res.Points[0], res.Points[1]
	if full.Compacted || !comp.Compacted {
		t.Fatalf("grid order changed: %+v / %+v", full, comp)
	}
	if full.ReplayEntries != 2000 {
		t.Fatalf("full variant replayed %d entries, want the whole history", full.ReplayEntries)
	}
	if comp.ReplayEntries != opts.RetainTail {
		t.Fatalf("compacted variant replayed %d entries, want the retained tail %d",
			comp.ReplayEntries, opts.RetainTail)
	}
	if comp.CatchupRounds >= full.CatchupRounds {
		t.Fatalf("compacted catch-up took %d rounds, full took %d — the snapshot path is not shorter",
			comp.CatchupRounds, full.CatchupRounds)
	}
}

// benchRestart times one cold WAL open over a prebuilt directory; new
// files from each open (the fresh active segment) are removed between
// iterations so every open sees the identical on-disk state.
func benchRestart(b *testing.B, history int, compacted bool) {
	opts := RecoveryDefaults()
	dir := b.TempDir()
	if err := buildRecoveryWAL(dir, history, compacted, opts); err != nil {
		b.Fatal(err)
	}
	baseline := map[string]bool{}
	names, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	for _, de := range names {
		baseline[de.Name()] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := openAndLoad(dir)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(fs), "entries/replay")
		b.StopTimer()
		now, err := os.ReadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		for _, de := range now {
			if !baseline[de.Name()] {
				os.Remove(filepath.Join(dir, de.Name()))
			}
		}
		b.StartTimer()
	}
}

// BenchmarkRestartRecovery measures cold-open recovery time for the same
// history with and without compaction: the compacted WAL replays the
// retained tail, the full WAL replays everything.
func BenchmarkRestartRecovery(b *testing.B) {
	const history = 20000
	b.Run("full", func(b *testing.B) { benchRestart(b, history, false) })
	b.Run("compacted", func(b *testing.B) { benchRestart(b, history, true) })
}

// BenchmarkFollowerCatchup measures how long a cold follower takes to
// converge with a leader holding 20k committed entries: a full log walks
// the append pipeline through the whole history, a compacted one streams
// a single snapshot image.
func BenchmarkFollowerCatchup(b *testing.B) {
	const history = 20000
	for _, variant := range []struct {
		name      string
		compacted bool
	}{{"full", false}, {"compacted", true}} {
		b.Run(variant.name, func(b *testing.B) {
			lead, target, err := newCatchupLeader(history, variant.compacted, RecoveryDefaults())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rounds, err := runCatchup(lead, target)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rounds), "rounds/op")
			}
		})
	}
}
