package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// This file serializes benchmark results for committed evidence files
// (BENCH_*.json) and CI artifacts: machine-readable Fig. 16 series with
// enough run metadata to reproduce them.

// WindowJSON is one Fig. 16 report window in microseconds.
type WindowJSON struct {
	Start  int      `json:"start"`
	End    int      `json:"end"`
	MinUS  float64  `json:"min_us"`
	MeanUS float64  `json:"mean_us"`
	MaxUS  float64  `json:"max_us"`
	Events []string `json:"events,omitempty"`
}

// SummaryJSON aggregates one run in microseconds.
type SummaryJSON struct {
	Count  int     `json:"count"`
	MinUS  float64 `json:"min_us"`
	MeanUS float64 `json:"mean_us"`
	MaxUS  float64 `json:"max_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// Fig16JSON is one Fig. 16 run: options, schedule, summary, and the
// windowed latency series.
type Fig16JSON struct {
	Name          string       `json:"name"`
	Requests      int          `json:"requests"`
	ReconfigEvery int          `json:"reconfig_every"`
	StartNodes    int          `json:"start_nodes"`
	Clients       int          `json:"clients"`
	Unbatched     bool         `json:"unbatched"`
	Durable       bool         `json:"durable"`
	NetLatencyUS  float64      `json:"net_latency_us"`
	NetJitterUS   float64      `json:"net_jitter_us"`
	Seed          int64        `json:"seed"`
	Schedule      []string     `json:"schedule"`
	ElapsedMS     float64      `json:"elapsed_ms"`
	ThroughputOPS float64      `json:"throughput_ops"`
	Summary       SummaryJSON  `json:"summary"`
	Windows       []WindowJSON `json:"windows"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// JSON converts the result into its serializable form.
func (r *Fig16Result) JSON(name string, opts Fig16Options, windowSize int) Fig16JSON {
	s := r.Recorder.Summarize()
	out := Fig16JSON{
		Name:          name,
		Requests:      opts.Requests,
		ReconfigEvery: opts.ReconfigEvery,
		StartNodes:    opts.StartNodes,
		Clients:       opts.Clients,
		Unbatched:     opts.Unbatched,
		Durable:       opts.Durable,
		NetLatencyUS:  us(opts.NetLatency),
		NetJitterUS:   us(opts.NetJitter),
		Seed:          opts.Seed,
		Schedule:      r.Schedule,
		ElapsedMS:     float64(r.Elapsed.Nanoseconds()) / 1e6,
		Summary: SummaryJSON{
			Count: s.Count, MinUS: us(s.Min), MeanUS: us(s.Mean), MaxUS: us(s.Max),
			P50US: us(s.P50), P95US: us(s.P95), P99US: us(s.P99),
		},
	}
	if r.Elapsed > 0 {
		out.ThroughputOPS = float64(s.Count) / r.Elapsed.Seconds()
	}
	for _, w := range r.Recorder.Windows(windowSize) {
		out.Windows = append(out.Windows, WindowJSON{
			Start: w.Start, End: w.End,
			MinUS: us(w.Min), MeanUS: us(w.Mean), MaxUS: us(w.Max),
			Events: w.Events,
		})
	}
	return out
}

// WriteJSON writes v to path as indented JSON.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
