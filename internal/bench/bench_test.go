package bench

import (
	"strings"
	"testing"
	"time"
)

func TestLatencyRecorderWindows(t *testing.T) {
	r := NewLatencyRecorder(10)
	for i := 1; i <= 10; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	wins := r.Windows(5)
	if len(wins) != 2 {
		t.Fatalf("%d windows, want 2", len(wins))
	}
	w := wins[0]
	if w.Min != time.Millisecond || w.Max != 5*time.Millisecond || w.Mean != 3*time.Millisecond {
		t.Errorf("window 0 = %+v", w)
	}
	if wins[1].Start != 5 || wins[1].End != 10 {
		t.Errorf("window 1 bounds = %d-%d", wins[1].Start, wins[1].End)
	}
}

func TestLatencyRecorderAnnotations(t *testing.T) {
	r := NewLatencyRecorder(4)
	r.Record(time.Millisecond)
	r.Annotate("reconfig")
	r.Record(time.Millisecond)
	wins := r.Windows(2)
	if len(wins[0].Events) != 1 || wins[0].Events[0] != "reconfig" {
		t.Errorf("events = %v", wins[0].Events)
	}
}

func TestPercentileAndSummary(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if got := r.Percentile(50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	s := r.Summarize()
	if s.Count != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewLatencyRecorder(0)
	if r.Percentile(99) != 0 {
		t.Error("percentile of empty recorder")
	}
	if s := r.Summarize(); s.Count != 0 {
		t.Error("summary of empty recorder")
	}
	if wins := r.Windows(10); len(wins) != 0 {
		t.Error("windows of empty recorder")
	}
}

func TestPrintSeries(t *testing.T) {
	r := NewLatencyRecorder(4)
	r.Annotate("start")
	for i := 0; i < 4; i++ {
		r.Record(time.Duration(i+1) * time.Millisecond)
	}
	var b strings.Builder
	r.PrintSeries(&b, 2)
	out := b.String()
	if !strings.Contains(out, "start") || !strings.Contains(out, "overall:") {
		t.Errorf("series output missing pieces:\n%s", out)
	}
}

func TestTablePrint(t *testing.T) {
	tb := &Table{Header: []string{"a", "bbbb"}}
	tb.Add("x", "y")
	tb.Add("long-cell", "z")
	var b strings.Builder
	tb.Print(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "a          bbbb") {
		t.Errorf("header misaligned: %q", lines[0])
	}
}

// TestRunFig16Small is the end-to-end smoke of the headline experiment at
// reduced scale (the full run lives in cmd/raft-bench and the root bench).
func TestRunFig16Small(t *testing.T) {
	if testing.Short() {
		t.Skip("fig16 in -short mode")
	}
	res, err := RunFig16(Fig16Options{
		Requests:      240,
		ReconfigEvery: 60,
		StartNodes:    5,
		NetLatency:    100 * time.Microsecond,
		Seed:          3,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder.Len() != 240 {
		t.Errorf("recorded %d samples, want 240", res.Recorder.Len())
	}
	if len(res.Schedule) != 3 {
		t.Errorf("schedule = %v, want 3 changes (4th coincides with the end)", res.Schedule)
	}
	var b strings.Builder
	res.Print(&b, 60)
	if !strings.Contains(b.String(), "remove") {
		t.Errorf("report missing reconfig events:\n%s", b.String())
	}
}

// TestRunAvailabilitySmall smokes the liveness probe at reduced scale.
func TestRunAvailabilitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("availability probe in -short mode")
	}
	res, err := RunAvailability(AvailabilityOptions{
		Nodes:         3,
		PhaseRequests: 40,
		NetLatency:    100 * time.Microsecond,
		Seed:          5,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outages) != 2 {
		t.Fatalf("outages = %v", res.Outages)
	}
	if res.Outages[0].Stall == 0 {
		t.Error("leader crash produced no measurable stall")
	}
	var b strings.Builder
	res.Print(&b)
	if !strings.Contains(b.String(), "leader crash") {
		t.Errorf("report missing fault:\n%s", b.String())
	}
}
