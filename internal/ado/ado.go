// Package ado implements the original atomic distributed object (ADO)
// model of Honoré et al. (OOPSLA '21), as formalized in Appendix D.1 of the
// Adore paper. Adore builds on this model; the package exists both as the
// historical baseline and to test the conceptual correspondence between the
// two (package cado bridges the gap from the other side).
//
// Unlike Adore, the ADO model keeps an explicit persistent log of committed
// methods separate from the cache tree of uncommitted ones, tracks each
// client's active cache in a CIDMap, and enforces leader uniqueness with an
// OwnerMap rather than supporter sets. Its semantics are event-based: each
// operation appends an event (Fig. 21) which an interpreter folds into the
// state (Fig. 22).
package ado

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"adore/internal/types"
)

// CID identifies a cache (Fig. 19): a linked triple ⟨nid, time, parent⟩
// with nil representing Root. CIDs are immutable; share freely.
type CID struct {
	NID    types.NodeID
	Time   types.Time
	Parent *CID // nil = Root
}

// Root is the distinguished root CID (represented as nil; the functions
// below treat a nil *CID as Root).
var Root *CID

// NextCID returns nextCID(cid) = ⟨nid, time, cid⟩: a fresh child slot for
// the same owner and timestamp (Fig. 23).
func NextCID(cid *CID) *CID {
	return &CID{NID: nidOf(cid), Time: timeOf(cid), Parent: cid}
}

func nidOf(cid *CID) types.NodeID {
	if cid == nil {
		return types.NoNode
	}
	return cid.NID
}

func timeOf(cid *CID) types.Time {
	if cid == nil {
		return 0
	}
	return cid.Time
}

// Key returns a canonical string for map keys.
func (c *CID) Key() string {
	if c == nil {
		return "⊥"
	}
	return fmt.Sprintf("%s/%d:%d", c.Parent.Key(), c.NID, c.Time)
}

// Depth returns the number of links to Root.
func (c *CID) Depth() int {
	d := 0
	for cur := c; cur != nil; cur = cur.Parent {
		d++
	}
	return d
}

// Less reports cid1 < cid2: cid1 is a strict ancestor of cid2 (Fig. 23).
func Less(a, b *CID) bool {
	if b == nil {
		return false
	}
	for cur := b.Parent; ; cur = cur.Parent {
		if sameCID(a, cur) {
			return true
		}
		if cur == nil {
			return false
		}
	}
}

// LessEq reports cid1 ≤ cid2.
func LessEq(a, b *CID) bool { return sameCID(a, b) || Less(a, b) }

func sameCID(a, b *CID) bool {
	for {
		if a == nil || b == nil {
			return a == nil && b == nil
		}
		if a.NID != b.NID || a.Time != b.Time {
			return false
		}
		a, b = a.Parent, b.Parent
	}
}

// Cache is an uncommitted (or, once in the persistent log, committed)
// method tagged with its CID.
type Cache struct {
	CID    *CID
	Method types.MethodID
}

// Owner is an OwnerMap entry: a node ID or NoOwn.
type Owner struct {
	NID   types.NodeID
	NoOwn bool
}

// Sigma is Σ_ADO (Fig. 19): persistent log, cache tree, per-client active
// CIDs, and the owner of each timestamp.
type Sigma struct {
	Log    []Cache
	Caches map[string]Cache
	CIDs   map[types.NodeID]*CID
	Owners map[types.Time]Owner
}

func initState() Sigma {
	return Sigma{
		Caches: make(map[string]Cache),
		CIDs:   make(map[types.NodeID]*CID),
		Owners: make(map[types.Time]Owner),
	}
}

// clone deep-copies the interpreted state.
func (s Sigma) clone() Sigma {
	out := Sigma{Log: append([]Cache(nil), s.Log...)}
	out.Caches = make(map[string]Cache, len(s.Caches))
	for k, v := range s.Caches {
		out.Caches[k] = v
	}
	out.CIDs = make(map[types.NodeID]*CID, len(s.CIDs))
	for k, v := range s.CIDs {
		out.CIDs[k] = v
	}
	out.Owners = make(map[types.Time]Owner, len(s.Owners))
	for k, v := range s.Owners {
		out.Owners[k] = v
	}
	return out
}

// EvKind enumerates Ev_ADO (Fig. 19).
type EvKind uint8

const (
	// PullOK is Pull⁺: a successful election.
	PullOK EvKind = iota
	// PullPreempt is Pull*: a failed election that still blocked earlier
	// timestamps.
	PullPreempt
	// PullFail is Pull⁻.
	PullFail
	// InvokeOK is Invoke⁺; InvokeFail is Invoke⁻.
	InvokeOK
	InvokeFail
	// PushOK is Push⁺; PushFail is Push⁻.
	PushOK
	PushFail
)

// Ev is one event of the log-generation semantics.
type Ev struct {
	Kind   EvKind
	NID    types.NodeID
	Time   types.Time
	CID    *CID
	Method types.MethodID
}

// Interp applies interp_ADO (Fig. 22) for one event.
func Interp(ev Ev, s Sigma) Sigma {
	switch ev.Kind {
	case PullOK:
		// ev.CID is the fresh slot ⟨nid, time, chosen⟩ built by PullOk;
		// it becomes the caller's active cache.
		out := s.clone()
		out.CIDs[ev.NID] = ev.CID
		out.Owners[ev.Time] = Owner{NID: ev.NID}
		voteNoOwn(out.Owners, ev.Time-1)
		return out
	case PullPreempt:
		out := s.clone()
		voteNoOwn(out.Owners, ev.Time)
		return out
	case InvokeOK:
		out := s.clone()
		cid := s.CIDs[ev.NID]
		out.Caches[cid.Key()] = Cache{CID: cid, Method: ev.Method}
		out.CIDs[ev.NID] = NextCID(cid)
		return out
	case PushOK:
		out := s.clone()
		committed, rest := partition(s.Caches, ev.CID)
		out.Log = append(out.Log, committed...)
		out.Caches = rest
		return out
	default: // PullFail, InvokeFail, PushFail are no-ops.
		return s
	}
}

// voteNoOwn marks every unowned timestamp ≤ limit as NoOwn (Fig. 23),
// blocking smaller elections.
func voteNoOwn(owners map[types.Time]Owner, limit types.Time) {
	// The domain of interest is 1..limit; mark only unclaimed entries.
	for t := types.Time(1); t <= limit; t++ {
		if _, ok := owners[t]; !ok {
			owners[t] = Owner{NoOwn: true}
		}
	}
}

// partition splits the cache tree at ccid (Fig. 23): ancestors-or-equal are
// committed (in root-to-leaf order); strict descendants stay; siblings are
// discarded as stale.
func partition(caches map[string]Cache, ccid *CID) ([]Cache, map[string]Cache) {
	var committed []Cache
	rest := make(map[string]Cache)
	for _, c := range caches {
		switch {
		case LessEq(c.CID, ccid):
			committed = append(committed, c)
		case Less(ccid, c.CID):
			rest[c.CID.Key()] = c
		}
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].CID.Depth() < committed[j].CID.Depth() })
	return committed, rest
}

// InterpAll folds the events from the initial state (Fig. 19's
// interpAll_ADO).
func InterpAll(evs []Ev) Sigma {
	s := initState()
	for _, ev := range evs {
		s = Interp(ev, s)
	}
	return s
}

// Errors returned when an oracle outcome violates Fig. 20's validity rules.
var (
	ErrStaleTime   = errors.New("ado: chosen time not greater than the active cache's")
	ErrOwnedTime   = errors.New("ado: timestamp already owned")
	ErrUnknownCID  = errors.New("ado: chosen cache not in the tree")
	ErrNoActive    = errors.New("ado: caller's active cache is gone; pull first")
	ErrNotMaxOwner = errors.New("ado: caller is not the most recent leader")
	ErrBadCommit   = errors.New("ado: commit target is not the caller's current-timestamp cache")
)

// Object is an atomic distributed object: an event log plus its cached
// interpretation. The zero value is not usable; call New.
type Object struct {
	evs []Ev
	st  Sigma
}

// New creates an empty object.
func New() *Object {
	return &Object{st: initState()}
}

// Events returns the event history. Callers must not mutate it.
func (o *Object) Events() []Ev { return o.evs }

// State returns the current interpreted state. Callers must not mutate it.
func (o *Object) State() Sigma { return o.st }

// Root returns root(evs): the CID of the last committed cache, or Root.
func (o *Object) Root() *CID {
	if n := len(o.st.Log); n > 0 {
		return o.st.Log[n-1].CID
	}
	return Root
}

func (o *Object) append(ev Ev) {
	o.evs = append(o.evs, ev)
	o.st = Interp(ev, o.st)
}

// noOwnerAt implements noOwnerAt(evs, time).
func (o *Object) noOwnerAt(t types.Time) bool {
	own, ok := o.st.Owners[t]
	return !ok || own.NoOwn
}

// maxOwner implements maxOwner(evs): the entry at the largest timestamp in
// the owner map's domain. If that entry is NoOwn — a preempting failed pull
// — there is no current leader and every push is blocked until a newer
// successful pull claims a larger timestamp. This is exactly how the ADO
// model encodes "a failed pull may still block leaders with smaller
// timestamps from committing new methods" (§2.2.3).
func (o *Object) maxOwner() (types.NodeID, types.Time, bool) {
	var best types.Time
	found := false
	for t := range o.st.Owners {
		if !found || t > best {
			best = t
			found = true
		}
	}
	if !found {
		return types.NoNode, 0, false
	}
	own := o.st.Owners[best]
	if own.NoOwn {
		return types.NoNode, best, false
	}
	return own.NID, best, true
}

// PullOk performs a successful pull (VALIDPULLORACLE + PULLSUCCESS): the
// oracle chose timestamp t and parent cache cid (which must be in the tree
// or be the current root). On success the caller's next active cache is a
// fresh child of cid.
func (o *Object) PullOk(nid types.NodeID, t types.Time, cid *CID) error {
	if timeOf(cid) >= t {
		return fmt.Errorf("%w: timeOf(%s)=%d ≥ %d", ErrStaleTime, cid.Key(), timeOf(cid), t)
	}
	if !o.noOwnerAt(t) {
		return fmt.Errorf("%w: %d", ErrOwnedTime, t)
	}
	if _, ok := o.st.Caches[cid.Key()]; !ok && !sameCID(cid, o.Root()) {
		return fmt.Errorf("%w: %s", ErrUnknownCID, cid.Key())
	}
	// The fresh child must carry the new timestamp, so rebuild it with t.
	o.append(Ev{Kind: PullOK, NID: nid, Time: t, CID: &CID{NID: nid, Time: t, Parent: cid}})
	return nil
}

// PullPreempt records a partially failed pull that still blocks timestamps
// up to t.
func (o *Object) PullPreempt(nid types.NodeID, t types.Time) {
	o.append(Ev{Kind: PullPreempt, NID: nid, Time: t})
}

// PullFail records a failed pull (no effect).
func (o *Object) PullFail(nid types.NodeID) {
	o.append(Ev{Kind: PullFail, NID: nid})
}

// Invoke performs method invocation: the caller's active cache must still
// be reachable (present in the tree or the empty slot created by its pull).
func (o *Object) Invoke(nid types.NodeID, m types.MethodID) error {
	cid, ok := o.st.CIDs[nid]
	if !ok {
		return ErrNoActive
	}
	// The active cache is valid if its parent chain is rooted in the
	// current tree/root; a push that discarded the caller's branch
	// severs it.
	if !o.reachable(cid) {
		o.append(Ev{Kind: InvokeFail, NID: nid})
		return ErrNoActive
	}
	o.append(Ev{Kind: InvokeOK, NID: nid, Method: m})
	return nil
}

// reachable reports whether cid's parent chain is intact: every ancestor
// is either still in the cache tree or is the current root (the last
// committed cache). A chain that passes through a discarded or superseded
// cache is stale — its owner must pull again before invoking.
func (o *Object) reachable(cid *CID) bool {
	for cur := cid.Parent; cur != nil; cur = cur.Parent {
		if sameCID(cur, o.Root()) {
			return true
		}
		if _, ok := o.st.Caches[cur.Key()]; !ok {
			return false
		}
	}
	// The chain bottoms out at Root: valid only while nothing has been
	// committed (otherwise the branch predates the committed prefix).
	return len(o.st.Log) == 0
}

// PushOk commits the caller's branch up to ccid (VALIDPUSHORACLE +
// PUSHSUCCESS): the caller must be the most recent leader and ccid must be
// one of its caches at its current timestamp.
func (o *Object) PushOk(nid types.NodeID, ccid *CID) error {
	owner, _, ok := o.maxOwner()
	if !ok || owner != nid {
		return ErrNotMaxOwner
	}
	c, ok := o.st.Caches[ccid.Key()]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCID, ccid.Key())
	}
	active, ok := o.st.CIDs[nid]
	if !ok || nidOf(c.CID) != nid || timeOf(c.CID) != timeOf(active) {
		return ErrBadCommit
	}
	o.append(Ev{Kind: PushOK, NID: nid, CID: ccid})
	return nil
}

// PushFail records a failed push (no effect).
func (o *Object) PushFail(nid types.NodeID) {
	o.append(Ev{Kind: PushFail, NID: nid})
}

// CommittedMethods returns the methods of the persistent log in order.
func (o *Object) CommittedMethods() []types.MethodID {
	out := make([]types.MethodID, len(o.st.Log))
	for i, c := range o.st.Log {
		out[i] = c.Method
	}
	return out
}

// String renders the state for diagnostics.
func (o *Object) String() string {
	var b strings.Builder
	b.WriteString("log:")
	for _, c := range o.st.Log {
		fmt.Fprintf(&b, " %s", c.Method)
	}
	fmt.Fprintf(&b, "\ncaches: %d, owners: %d\n", len(o.st.Caches), len(o.st.Owners))
	return b.String()
}
