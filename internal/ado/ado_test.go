package ado

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"adore/internal/types"
)

func TestCIDOrder(t *testing.T) {
	a := &CID{NID: 1, Time: 1}
	b := NextCID(a)
	c := NextCID(b)
	if !Less(a, b) || !Less(a, c) || !Less(b, c) {
		t.Error("ancestors must be Less than descendants")
	}
	if Less(b, a) || Less(a, a) {
		t.Error("Less must be irreflexive and asymmetric")
	}
	if !Less(Root, a) {
		t.Error("Root must be Less than everything")
	}
	if !LessEq(a, a) {
		t.Error("LessEq must be reflexive")
	}
	sibling := &CID{NID: 2, Time: 2, Parent: a}
	if Less(b, sibling) || Less(sibling, b) {
		t.Error("siblings must be incomparable")
	}
}

func TestCIDKeyDistinct(t *testing.T) {
	a := &CID{NID: 1, Time: 1}
	b := &CID{NID: 1, Time: 2}
	if a.Key() == b.Key() {
		t.Error("distinct CIDs share a key")
	}
	if Root.Key() != "⊥" {
		t.Errorf("Root key = %q", Root.Key())
	}
}

func TestPullInvokePushRoundTrip(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 11); err != nil {
		t.Fatal(err)
	}
	// Commit the first method only (partial push).
	first := o.State().CIDs[1].Parent.Parent // active → slot of M11 → slot of M10
	if err := o.PushOk(1, first); err != nil {
		t.Fatal(err)
	}
	if got := o.CommittedMethods(); !reflect.DeepEqual(got, []types.MethodID{10}) {
		t.Fatalf("committed = %v, want [M10]", got)
	}
	// The uncommitted suffix survives and can be committed later.
	second := o.State().CIDs[1].Parent
	if err := o.PushOk(1, second); err != nil {
		t.Fatal(err)
	}
	if got := o.CommittedMethods(); !reflect.DeepEqual(got, []types.MethodID{10, 11}) {
		t.Fatalf("committed = %v, want [M10 M11]", got)
	}
}

func TestInvokeWithoutPull(t *testing.T) {
	o := New()
	if err := o.Invoke(1, 1); !errors.Is(err, ErrNoActive) {
		t.Errorf("want ErrNoActive, got %v", err)
	}
}

func TestPullRejectsOwnedTime(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.PullOk(2, 1, Root); !errors.Is(err, ErrOwnedTime) {
		t.Errorf("want ErrOwnedTime, got %v", err)
	}
}

func TestPullPreemptBlocksPushes(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	// A candidate fails its election at time 5 but took supporters with
	// it: the NoOwn entry at 5 dethrones S1, blocking its push.
	o.PullPreempt(2, 5)
	if err := o.PushOk(1, o.State().CIDs[1].Parent); !errors.Is(err, ErrNotMaxOwner) {
		t.Errorf("preempted leader's push accepted: %v", err)
	}
	// Pulling at a NoOwn timestamp is permitted (the slot was never won)
	// and restores a pushable leader.
	if err := o.PullOk(1, 5, o.State().CIDs[1].Parent); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.PushOk(1, o.State().CIDs[1].Parent); err != nil {
		t.Errorf("re-elected leader's push rejected: %v", err)
	}
}

func TestPullRejectsStaleParentTime(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 5, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	parent := o.State().CIDs[1].Parent // the M1 cache, at time 5
	if err := o.PullOk(2, 3, parent); !errors.Is(err, ErrStaleTime) {
		t.Errorf("want ErrStaleTime, got %v", err)
	}
}

func TestPushRequiresMaxOwner(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	target := o.State().CIDs[1].Parent
	// S2 takes over leadership.
	if err := o.PullOk(2, 2, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.PushOk(1, target); !errors.Is(err, ErrNotMaxOwner) {
		t.Errorf("want ErrNotMaxOwner, got %v", err)
	}
}

func TestStaleBranchDiscardedAfterPush(t *testing.T) {
	o := New()
	// Two leaders build divergent branches from Root.
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.PullOk(2, 2, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(2, 2); err != nil {
		t.Fatal(err)
	}
	// S2 (the max owner) commits; S1's branch becomes stale.
	if err := o.PushOk(2, o.State().CIDs[2].Parent); err != nil {
		t.Fatal(err)
	}
	if got := o.CommittedMethods(); !reflect.DeepEqual(got, []types.MethodID{2}) {
		t.Fatalf("committed = %v, want [M2]", got)
	}
	if err := o.Invoke(1, 3); !errors.Is(err, ErrNoActive) {
		t.Errorf("stale leader's invoke must fail, got %v", err)
	}
	// S1 recovers by pulling from the new root.
	if err := o.PullOk(1, 3, o.Root()); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPushTargetMustBeCallersCurrent(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	old := o.State().CIDs[1].Parent
	// S1 is re-elected at a later time; its old cache is no longer
	// committable by the letter of the oracle rule (stale timestamp).
	if err := o.PullOk(1, 4, old); err != nil {
		t.Fatal(err)
	}
	if err := o.PushOk(1, old); !errors.Is(err, ErrBadCommit) {
		t.Errorf("want ErrBadCommit, got %v", err)
	}
}

func TestFailureEventsAreNoOps(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	before := len(o.State().Caches)
	o.PullFail(2)
	o.PushFail(1)
	if len(o.State().Caches) != before || len(o.CommittedMethods()) != 0 {
		t.Error("failure events changed the state")
	}
	if got := len(o.Events()); got != 3 {
		t.Errorf("event log has %d entries, want 3", got)
	}
}

func TestInterpAllMatchesIncremental(t *testing.T) {
	o := New()
	if err := o.PullOk(1, 1, Root); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := o.PushOk(1, o.State().CIDs[1].Parent); err != nil {
		t.Fatal(err)
	}
	replayed := InterpAll(o.Events())
	if !reflect.DeepEqual(replayed.Log, o.State().Log) {
		t.Error("replayed log differs from incremental state")
	}
	if len(replayed.Caches) != len(o.State().Caches) {
		t.Error("replayed cache tree differs from incremental state")
	}
}

// TestQuickCommittedLogIsStable is the ADO model's core safety property:
// the persistent log only ever grows by appending — a committed prefix is
// never rewritten — under arbitrary valid operation sequences.
func TestQuickCommittedLogIsStable(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		o := New()
		var prev []types.MethodID
		nextTime := types.Time(1)
		for i := 0; i < 60; i++ {
			nid := types.NodeID(r.Intn(3) + 1)
			switch r.Intn(4) {
			case 0:
				// Pull from a random known cache or the root.
				parent := o.Root()
				for _, c := range o.State().Caches {
					if r.Intn(3) == 0 {
						parent = c.CID
						break
					}
				}
				if timeOf(parent) >= nextTime {
					continue
				}
				_ = o.PullOk(nid, nextTime, parent)
				nextTime++
			case 1:
				_ = o.Invoke(nid, types.MethodID(i))
			case 2:
				if active, ok := o.State().CIDs[nid]; ok && active.Parent != nil {
					_ = o.PushOk(nid, active.Parent)
				}
			case 3:
				o.PullFail(nid)
			}
			cur := o.CommittedMethods()
			if len(cur) < len(prev) {
				t.Fatalf("seed %d step %d: committed log shrank: %v → %v", seed, i, prev, cur)
			}
			for j := range prev {
				if cur[j] != prev[j] {
					t.Fatalf("seed %d step %d: committed log rewritten: %v → %v", seed, i, prev, cur)
				}
			}
			prev = cur
		}
	}
}
