package sraft

import (
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/raftnet"
	"adore/internal/types"
)

func mk3() *raftnet.State {
	return raftnet.New(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
}

func mk4() *raftnet.State {
	return raftnet.New(config.RaftSingleNode, types.Range(1, 4), core.DefaultRules())
}

func TestSchedulerElectCommit(t *testing.T) {
	sc := NewScheduler(mk3())
	won, err := sc.AtomicElect(1, types.NewNodeSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("quorum election did not win")
	}
	if err := sc.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	n, err := sc.AtomicCommit(1, types.NewNodeSet(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("commit length = %d, want 1", n)
	}
	if len(sc.St.Sent) != 0 {
		t.Errorf("atomic rounds left %d messages in flight", len(sc.St.Sent))
	}
}

func TestSchedulerMinorityElectionLoses(t *testing.T) {
	sc := NewScheduler(mk3())
	won, err := sc.AtomicElect(1, types.NewNodeSet(1))
	if err != nil {
		t.Fatal(err)
	}
	if won {
		t.Fatal("minority election won")
	}
}

func TestSchedulerReconfig(t *testing.T) {
	sc := NewScheduler(mk3())
	if _, err := sc.AtomicElect(1, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Invoke(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AtomicCommit(1, types.Range(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Reconfig(1, config.NewMajorityConfig(types.Range(1, 4))); err != nil {
		t.Fatal(err)
	}
	if n, err := sc.AtomicCommit(1, types.Range(1, 4)); err != nil || n != 2 {
		t.Fatalf("commit after reconfig: n=%d err=%v", n, err)
	}
}

// TestSchedulerTraceReplaysOnRaft witnesses SRaft ⊑ Raft: the scheduler's
// fine-grained trace, replayed on the raw asynchronous semantics, produces
// an ℝ_net-equal state.
func TestSchedulerTraceReplaysOnRaft(t *testing.T) {
	sc := NewScheduler(mk3())
	if _, err := sc.AtomicElect(1, types.NewNodeSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AtomicCommit(1, types.NewNodeSet(1, 3)); err != nil {
		t.Fatal(err)
	}
	replayed, err := raftnet.Replay(mk3, sc.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if !raftnet.RNetEqual(sc.St, replayed) {
		t.Error("scheduler trace does not replay to an equal state")
	}
}

// TestLemmaC3FilterInvalid: dropping invalid deliveries preserves ℝ_net on
// random asynchronous executions.
func TestLemmaC3FilterInvalid(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		trace, final := raftnet.RandomExecution(mk4, seed, 80)
		filtered, err := FilterInvalid(mk4, trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refinal, err := raftnet.Replay(mk4, filtered)
		if err != nil {
			t.Fatalf("seed %d: filtered trace does not replay: %v", seed, err)
		}
		if !raftnet.RNetEqual(final, refinal) {
			t.Fatalf("seed %d: filtering changed the state\noriginal:\n%srewritten:\n%s", seed, final, refinal)
		}
	}
}

// TestLemmaC7SortDelivers: sorting valid deliveries into global logical
// order preserves ℝ_net.
func TestLemmaC7SortDelivers(t *testing.T) {
	okCount := 0
	for seed := int64(0); seed < 25; seed++ {
		trace, _ := raftnet.RandomExecution(mk4, seed, 80)
		filtered, err := FilterInvalid(mk4, trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sorted, ok, err := SortDelivers(mk4, filtered)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			continue // replay detected a non-commuting rewrite; allowed but rare
		}
		okCount++
		if len(sorted) != len(filtered) {
			t.Fatalf("seed %d: sort changed the trace length", seed)
		}
	}
	if okCount < 20 {
		t.Errorf("global sort succeeded on only %d/25 executions", okCount)
	}
}

// TestLemmaC9GroupRounds: grouping each round's deliveries adjacently
// preserves ℝ_net.
func TestLemmaC9GroupRounds(t *testing.T) {
	okCount := 0
	for seed := int64(0); seed < 25; seed++ {
		trace, _ := raftnet.RandomExecution(mk4, seed, 80)
		normalized, ok, err := Normalize(mk4, trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			continue
		}
		okCount++
		if normalized == nil {
			t.Fatalf("seed %d: nil normalized trace", seed)
		}
	}
	if okCount < 20 {
		t.Errorf("normalization succeeded on only %d/25 executions", okCount)
	}
}

// TestNormalizeIdempotentOnSchedulerTraces: a trace produced by the SRaft
// scheduler is already normal — filtering and reordering change nothing.
func TestNormalizeIdempotentOnSchedulerTraces(t *testing.T) {
	sc := NewScheduler(mk3())
	if _, err := sc.AtomicElect(1, types.NewNodeSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Invoke(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.AtomicCommit(1, types.NewNodeSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	normalized, ok, err := Normalize(mk3, sc.Trace)
	if err != nil || !ok {
		t.Fatalf("normalize: ok=%v err=%v", ok, err)
	}
	if len(normalized) != len(sc.Trace) {
		t.Errorf("normalization changed a scheduler trace: %d → %d actions", len(sc.Trace), len(normalized))
	}
}
