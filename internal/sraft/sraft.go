// Package sraft implements SRaft: the paper's simplified network-based
// specification (§5) that differs from the asynchronous Raft of package
// raftnet only in its scheduling assumptions — messages are delivered
// (1) only when valid, (2) in global logical-time order, and (3) atomically
// per request round.
//
// The package provides two artifacts:
//
//   - Scheduler: a constructive SRaft driver whose AtomicElect/AtomicCommit
//     execute a whole round (request broadcast, deliveries, acks) as one
//     step on top of the raw raftnet semantics, recording the underlying
//     fine-grained trace. Replaying that trace on plain raftnet reproduces
//     the same state, witnessing SRaft ⊑ Raft.
//
//   - The trace transformations of Appendix C as executable functions:
//     FilterInvalid (Lemma C.3), SortDelivers (Lemma C.7), and GroupRounds
//     (Lemma C.9). Each rewrites an asynchronous trace into a more
//     disciplined one; the accompanying tests replay both and assert
//     ℝ_net-equivalence, which is the executable content of the lemmas.
package sraft

import (
	"fmt"
	"sort"

	"adore/internal/config"
	"adore/internal/raftnet"
	"adore/internal/types"
)

// Scheduler drives SRaft atomic rounds over a raftnet state.
type Scheduler struct {
	// St is the underlying network state.
	St *raftnet.State
	// Trace is the fine-grained raftnet action sequence executed so far.
	Trace []raftnet.Action
}

// NewScheduler wraps a fresh raftnet state.
func NewScheduler(st *raftnet.State) *Scheduler {
	return &Scheduler{St: st}
}

func (sc *Scheduler) apply(a raftnet.Action) error {
	if err := sc.St.Apply(a); err != nil {
		return err
	}
	sc.Trace = append(sc.Trace, a)
	return nil
}

// AtomicElect runs an entire election round: nid campaigns, the chosen
// voters receive the request and their votes are delivered back, all in one
// atomic step. Voters outside the set never receive the request (their
// copies are dropped, modeling message loss). It returns whether nid won.
//
// Voters whose state makes the request invalid (already past the term, or
// more up-to-date) simply don't vote — exactly SRaft's "only valid messages
// are delivered".
func (sc *Scheduler) AtomicElect(nid types.NodeID, voters types.NodeSet) (bool, error) {
	if err := sc.apply(raftnet.Action{Kind: raftnet.ActElect, NID: nid}); err != nil {
		return false, err
	}
	if err := sc.deliverRound(nid, raftnet.ElectReq, voters); err != nil {
		return false, err
	}
	s := sc.St.Nodes[nid]
	return s != nil && s.IsLeader, nil
}

// Invoke appends a method at the leader (local, already atomic).
func (sc *Scheduler) Invoke(nid types.NodeID, m types.MethodID) error {
	return sc.apply(raftnet.Action{Kind: raftnet.ActInvoke, NID: nid, Method: m})
}

// Reconfig appends a configuration change at the leader (local).
func (sc *Scheduler) Reconfig(nid types.NodeID, ncf config.Config) error {
	return sc.apply(raftnet.Action{Kind: raftnet.ActReconfig, NID: nid, Conf: ncf})
}

// AtomicCommit runs an entire commit round to the chosen ackers and returns
// the leader's resulting commit length.
func (sc *Scheduler) AtomicCommit(nid types.NodeID, ackers types.NodeSet) (int, error) {
	if err := sc.apply(raftnet.Action{Kind: raftnet.ActCommit, NID: nid}); err != nil {
		return 0, err
	}
	if err := sc.deliverRound(nid, raftnet.CommitReq, ackers); err != nil {
		return 0, err
	}
	s := sc.St.Nodes[nid]
	if s == nil {
		return 0, fmt.Errorf("sraft: leader %s vanished", nid)
	}
	return s.CommitLen, nil
}

// deliverRound delivers the coordinator's outstanding requests of the given
// kind to the chosen recipients (when valid), drops the rest, then delivers
// all resulting acks back to the coordinator (when valid).
func (sc *Scheduler) deliverRound(coord types.NodeID, kind raftnet.MsgKind, recipients types.NodeSet) error {
	// Deliver or drop the requests.
	for _, m := range snapshot(sc.St.Sent) {
		if m.Kind != kind || m.From != coord {
			continue
		}
		if recipients.Contains(m.To) && sc.St.Valid(m) {
			if err := sc.apply(raftnet.Action{Kind: raftnet.ActDeliver, Msg: m}); err != nil {
				return err
			}
		} else {
			sc.drop(m)
		}
	}
	// Deliver the acks.
	ackKind := raftnet.ElectAck
	if kind == raftnet.CommitReq {
		ackKind = raftnet.CommitAck
	}
	for _, m := range snapshot(sc.St.Sent) {
		if m.Kind != ackKind || m.To != coord {
			continue
		}
		if sc.St.Valid(m) {
			if err := sc.apply(raftnet.Action{Kind: raftnet.ActDeliver, Msg: m}); err != nil {
				return err
			}
		} else {
			sc.drop(m)
		}
	}
	return nil
}

// drop removes a message from the sent bag without delivering it (message
// loss, always permitted by the asynchronous network).
func (sc *Scheduler) drop(m raftnet.Msg) {
	for i, sent := range sc.St.Sent {
		if sent.Equal(m) {
			sc.St.Sent = append(sc.St.Sent[:i], sc.St.Sent[i+1:]...)
			return
		}
	}
}

func snapshot(ms []raftnet.Msg) []raftnet.Msg {
	return append([]raftnet.Msg(nil), ms...)
}

// FilterInvalid implements Lemma C.3: it removes deliveries of invalid
// messages from a trace. Replaying the filtered trace yields an
// ℝ_net-equivalent state because invalid messages are ignored by their
// recipients anyway.
func FilterInvalid(mk func() *raftnet.State, trace []raftnet.Action) ([]raftnet.Action, error) {
	st := mk()
	var out []raftnet.Action
	for i, a := range trace {
		if a.Kind == raftnet.ActDeliver && !st.Valid(a.Msg) {
			// Still consume the message so later duplicates resolve the
			// same way, but record nothing: the recipient ignores it.
			_ = st.Deliver(a.Msg)
			continue
		}
		if err := st.Apply(a); err != nil {
			return nil, fmt.Errorf("sraft: filter step %d (%s): %w", i, a, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// deliverRun identifies maximal runs of consecutive deliveries in a trace;
// the reordering lemmas permute messages only within runs (deliveries never
// move across the operation that sent them).
type deliverRun struct{ lo, hi int } // trace[lo:hi] are all ActDeliver

func runs(trace []raftnet.Action) []deliverRun {
	var out []deliverRun
	i := 0
	for i < len(trace) {
		if trace[i].Kind != raftnet.ActDeliver {
			i++
			continue
		}
		j := i
		for j < len(trace) && trace[j].Kind == raftnet.ActDeliver {
			j++
		}
		out = append(out, deliverRun{i, j})
		i = j
	}
	return out
}

// reorderRuns rewrites each delivery run with a stable sort by key, then
// verifies the rewrite by replaying both traces and comparing ℝ_net. The
// replay is the ground truth for the commutation arguments in the paper's
// proofs (deliveries to different recipients commute; same-recipient
// deliveries are already locally ordered once invalid messages are gone).
func reorderRuns(mk func() *raftnet.State, trace []raftnet.Action, key func(raftnet.Msg) []int) ([]raftnet.Action, bool, error) {
	out := append([]raftnet.Action(nil), trace...)
	for _, r := range runs(out) {
		run := append([]raftnet.Action(nil), out[r.lo:r.hi]...)
		sort.SliceStable(run, func(a, b int) bool {
			ka, kb := key(run[a].Msg), key(run[b].Msg)
			for i := range ka {
				if ka[i] != kb[i] {
					return ka[i] < kb[i]
				}
			}
			return false
		})
		copy(out[r.lo:r.hi], run)
	}
	orig, err := raftnet.Replay(mk, trace)
	if err != nil {
		return nil, false, fmt.Errorf("sraft: original trace does not replay: %w", err)
	}
	rewritten, err := raftnet.Replay(mk, out)
	if err != nil {
		return nil, false, nil // rewrite not applicable to this trace
	}
	if !raftnet.RNetEqual(orig, rewritten) {
		return nil, false, nil
	}
	return out, true, nil
}

// SortDelivers implements Lemma C.7: within each delivery run, messages are
// rearranged into global (time, vrsn) order, verified by replay. For traces
// containing only valid messages this always succeeds: such traces are
// already locally ordered (Definition C.5), so the sort only commutes
// deliveries to different recipients.
func SortDelivers(mk func() *raftnet.State, trace []raftnet.Action) ([]raftnet.Action, bool, error) {
	return reorderRuns(mk, trace, func(m raftnet.Msg) []int {
		return []int{int(m.Time), int(m.Vrsn)}
	})
}

// GroupRounds implements Lemma C.9: within each delivery run, messages are
// additionally grouped by their round — the coordinator that initiated the
// request — with requests before acknowledgements, making every round's
// deliveries adjacent ("atomic"). Verified by replay.
func GroupRounds(mk func() *raftnet.State, trace []raftnet.Action) ([]raftnet.Action, bool, error) {
	return reorderRuns(mk, trace, func(m raftnet.Msg) []int {
		coord := m.From
		isAck := 0
		if m.Kind == raftnet.ElectAck || m.Kind == raftnet.CommitAck {
			coord = m.To
			isAck = 1
		}
		reqKind := 0
		if m.Kind == raftnet.CommitReq || m.Kind == raftnet.CommitAck {
			reqKind = 1
		}
		return []int{int(m.Time), int(m.Vrsn), reqKind, int(coord), isAck}
	})
}

// Normalize chains the three transformations: filter invalid deliveries,
// sort into global logical order, and group rounds atomically — the
// composite rewriting of Lemma C.10 (Raft refines SRaft).
func Normalize(mk func() *raftnet.State, trace []raftnet.Action) ([]raftnet.Action, bool, error) {
	filtered, err := FilterInvalid(mk, trace)
	if err != nil {
		return nil, false, err
	}
	sorted, ok, err := SortDelivers(mk, filtered)
	if !ok || err != nil {
		return nil, false, err
	}
	grouped, ok, err := GroupRounds(mk, sorted)
	if !ok || err != nil {
		return nil, false, err
	}
	return grouped, true, nil
}
