// Package multiraft hosts many independent raft groups inside one process
// over shared infrastructure — the deployment shape of a sharded store
// (one replica set per shard, all multiplexed over the same sockets and
// the same disk), as studied for MongoDB's per-replica-set logless
// reconfiguration.
//
// A Host owns one raft.Node per group. What is shared:
//
//   - Transport: one multiplexing transport (one connection/reconnector
//     per peer) carries every group's envelopes; each group registers a
//     per-group endpoint that stamps its GroupID on send.
//   - Tick loop: one wall-clock ticker drives every group's logical clock
//     (nodes run with Options.ExternalTick), instead of one timer
//     goroutine per group.
//   - Storage: one root directory, with each group confined to its own
//     subdirectory (GroupStorageDir). Segment and snapshot names are
//     namespaced by that subdirectory, so compaction in one group can
//     never unlink another group's files — the isolation is physical
//     (distinct directories), not a naming convention inside one.
//
// What is NOT shared: the consensus state. Each group elects its own
// leader, reconfigures on its own schedule, and fail-stops independently —
// a storage fault in one group halts that group's node while the rest of
// the host keeps serving.
package multiraft

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"adore/internal/raft"
	"adore/internal/types"
)

// Transport is the host's view of a multiplexing transport: it can mint
// one stamping endpoint per group. transport.TCPTransport and
// transport.HostTransport (the MemNetwork adapter) both satisfy it.
type Transport interface {
	// Endpoint registers inbox as group g's demux target and returns the
	// raft.Transport that group's node sends through. The endpoint's
	// Close must detach only that group, never the shared transport.
	Endpoint(g raft.GroupID, inbox chan<- raft.Message) raft.Transport
}

// Options configures a Host.
type Options struct {
	// ID is this node's identity; Members the initial membership of every
	// group (each group can diverge later via its own reconfigurations).
	ID      types.NodeID
	Members []types.NodeID

	// Groups is how many raft groups the host runs (0 = 1).
	Groups int

	// Transport is the shared multiplexer all groups send through.
	Transport Transport

	// ElectionTimeoutMin/Max and HeartbeatInterval scale every group's
	// protocol timers (zero values get the raft package defaults).
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	HeartbeatInterval  time.Duration

	// StorageRoot, when non-empty, backs each group with a FileStorage in
	// its own subdirectory (GroupStorageDir(root, g)). StorageFor, when
	// set, overrides it per group (nil return = volatile group).
	StorageRoot string
	StorageFor  func(raft.GroupID) raft.Storage

	// StateMachineFor supplies each group's state machine for snapshot
	// capture (required for SnapshotThreshold > 0).
	StateMachineFor func(raft.GroupID) raft.StateMachine

	// OnApply, when set, receives every group's committed batches from
	// that group's apply drain (one goroutine per group; calls for the
	// same group are ordered, calls across groups are concurrent).
	OnApply func(raft.GroupID, []raft.ApplyMsg)

	// SnapshotThreshold / MaxEntriesPerAppend are passed to every group.
	SnapshotThreshold   int
	MaxEntriesPerAppend int

	// DisableR2/R3/PreVote/CheckQuorum toggle the protocol guards in
	// every group (experiments only).
	DisableR2          bool
	DisableR3          bool
	DisablePreVote     bool
	DisableCheckQuorum bool

	// DisableLeaseRead turns off leader-lease reads in every group (reads
	// fall back to full ReadIndex barriers). DisableLeaseGuard removes the
	// transfer/reconfig lease-invalidation guard (experiments only — the
	// chaos teeth prove removing it is caught).
	DisableLeaseRead  bool
	DisableLeaseGuard bool

	// Seed derives each group's election-jitter seed (0 = from ID). Groups
	// get distinct offsets so their election timers never align by
	// construction.
	Seed int64

	// InboxSize is each group's transport inbox capacity (0 = 4096).
	InboxSize int
}

// GroupStorageDir is the per-group WAL directory under a host's storage
// root. Keeping each group in its own subdirectory — rather than prefixing
// file names in a shared one — makes cross-group unlinks impossible by
// construction: FileStorage compaction enumerates and removes files only
// inside its own dir.
func GroupStorageDir(root string, g raft.GroupID) string {
	return filepath.Join(root, fmt.Sprintf("group-%04d", g))
}

// Host is a set of raft groups sharing one process, one transport, one
// tick loop, and one storage root.
type Host struct {
	opts  Options
	nodes []*raft.Node // group g at index g; fixed after Start

	owned []raft.Storage // file storages Start opened and Stop must close

	stopCh   chan struct{}
	stopOnce sync.Once
	loops    sync.WaitGroup // tick loop + inbox pumps
	drains   sync.WaitGroup // apply fan-out goroutines
}

// Start launches every group's node. On error (a group's storage failed to
// open) nothing is left running.
func Start(opts Options) (*Host, error) {
	if opts.Groups <= 0 {
		opts.Groups = 1
	}
	if opts.Seed == 0 {
		opts.Seed = int64(opts.ID) * 7919
	}
	h := &Host{opts: opts, stopCh: make(chan struct{})}
	inboxSize := opts.InboxSize
	if inboxSize <= 0 {
		inboxSize = 4096
	}
	for g := raft.GroupID(0); int(g) < opts.Groups; g++ {
		storage, err := h.storageFor(g)
		if err != nil {
			h.Stop()
			return nil, err
		}
		var sm raft.StateMachine
		if opts.StateMachineFor != nil {
			sm = opts.StateMachineFor(g)
		}
		inbox := make(chan raft.Message, inboxSize)
		ep := opts.Transport.Endpoint(g, inbox)
		n := raft.StartNode(raft.Options{
			ID:                  opts.ID,
			Members:             opts.Members,
			Transport:           ep,
			ElectionTimeoutMin:  opts.ElectionTimeoutMin,
			ElectionTimeoutMax:  opts.ElectionTimeoutMax,
			HeartbeatInterval:   opts.HeartbeatInterval,
			Storage:             storage,
			StateMachine:        sm,
			SnapshotThreshold:   opts.SnapshotThreshold,
			MaxEntriesPerAppend: opts.MaxEntriesPerAppend,
			DisableR2:           opts.DisableR2,
			DisableR3:           opts.DisableR3,
			DisablePreVote:      opts.DisablePreVote,
			DisableCheckQuorum:  opts.DisableCheckQuorum,
			DisableLeaseRead:    opts.DisableLeaseRead,
			DisableLeaseGuard:   opts.DisableLeaseGuard,
			// Distinct per-group offsets keep group clocks de-phased.
			Seed:         opts.Seed + 1000003*int64(g),
			ExternalTick: true,
		})
		h.nodes = append(h.nodes, n)
		// Pump the transport inbox into the node. Delivery blocks when the
		// node's own queue is full (back-pressure, not silent loss); the
		// done-channel select releases the pump once the node shuts down.
		h.loops.Add(1)
		go func(n *raft.Node) {
			defer h.loops.Done()
			for {
				select {
				case m := <-inbox:
					select {
					case n.Inbox() <- m:
					case <-n.Done():
						return
					}
				case <-n.Done():
					return
				}
			}
		}(n)
		// Fan the group's apply stream out to the shared hook.
		if opts.OnApply != nil {
			h.drains.Add(1)
			go func(g raft.GroupID, n *raft.Node) {
				defer h.drains.Done()
				for batch := range n.ApplyCh() {
					opts.OnApply(g, batch)
				}
			}(g, n)
		}
	}
	h.loops.Add(1)
	go h.tickLoop()
	return h, nil
}

// storageFor opens (or fetches) group g's storage per the options.
func (h *Host) storageFor(g raft.GroupID) (raft.Storage, error) {
	if h.opts.StorageFor != nil {
		return h.opts.StorageFor(g), nil
	}
	if h.opts.StorageRoot == "" {
		return nil, nil
	}
	fs, err := raft.OpenFileStorage(GroupStorageDir(h.opts.StorageRoot, g))
	if err != nil {
		return nil, fmt.Errorf("multiraft: group %d storage: %w", g, err)
	}
	h.owned = append(h.owned, fs)
	return fs, nil
}

// tickLoop is the shared clock: one wall-clock ticker advancing every
// group's logical time at the cadence each node's internal ticker would
// have used (HeartbeatInterval/2, after defaults).
func (h *Host) tickLoop() {
	defer h.loops.Done()
	hb := h.opts.HeartbeatInterval
	if hb == 0 {
		etMin := h.opts.ElectionTimeoutMin
		if etMin == 0 {
			etMin = 50 * time.Millisecond
		}
		hb = etMin / 3
	}
	unit := hb / 2
	if unit <= 0 {
		unit = time.Millisecond
	}
	ticker := time.NewTicker(unit)
	defer ticker.Stop()
	for {
		select {
		case <-h.stopCh:
			return
		case <-ticker.C:
			for _, n := range h.nodes {
				n.Tick()
			}
		}
	}
}

// ID returns the host's node identity.
func (h *Host) ID() types.NodeID { return h.opts.ID }

// Groups returns how many groups the host runs.
func (h *Host) Groups() int { return len(h.nodes) }

// Node returns group g's raft node (nil if g is out of range).
func (h *Host) Node(g raft.GroupID) *raft.Node {
	if int(g) >= len(h.nodes) {
		return nil
	}
	return h.nodes[g]
}

// Stop shuts every group down, waits for the apply fan-out to drain, and
// closes the storages the host opened. The shared transport is NOT closed:
// the host does not own it (per-group endpoints detach themselves as their
// nodes stop).
func (h *Host) Stop() {
	h.stopOnce.Do(func() { close(h.stopCh) })
	for _, n := range h.nodes {
		n.Stop()
	}
	h.loops.Wait()
	h.drains.Wait()
	for _, s := range h.owned {
		_ = s.Close()
	}
	h.owned = nil
}
