package multiraft

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adore/internal/raft"
	"adore/internal/raft/transport"
	"adore/internal/types"
)

// startHosts brings up an n-node cluster of hosts, each running groups
// raft groups over one shared MemNetwork, recording every group's apply
// stream.
func startHosts(t *testing.T, n, groups int, rec *applyRecorder) (*transport.MemNetwork, map[types.NodeID]*Host) {
	t.Helper()
	net := transport.NewMemNetwork(0, 0, 1)
	members := types.Range(1, types.NodeID(n)).Copy()
	hosts := make(map[types.NodeID]*Host)
	for _, id := range members {
		id := id
		h, err := Start(Options{
			ID:        id,
			Members:   members,
			Groups:    groups,
			Transport: transport.HostTransport{Net: net, ID: id},
			// Fast timers keep the test snappy.
			ElectionTimeoutMin: 10 * time.Millisecond,
			Seed:               int64(id),
			OnApply: func(g raft.GroupID, batch []raft.ApplyMsg) {
				rec.add(g, id, batch)
			},
		})
		if err != nil {
			t.Fatalf("start host %s: %v", id, err)
		}
		hosts[id] = h
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.Stop()
		}
		net.Close()
	})
	return net, hosts
}

// applyRecorder collects each (group, node)'s apply stream.
type applyRecorder struct {
	mu sync.Mutex
	by map[string][]raft.ApplyMsg // guarded by mu
}

func newApplyRecorder() *applyRecorder {
	return &applyRecorder{by: make(map[string][]raft.ApplyMsg)}
}

func (r *applyRecorder) add(g raft.GroupID, id types.NodeID, batch []raft.ApplyMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := fmt.Sprintf("%d/%s", g, id)
	r.by[k] = append(r.by[k], batch...)
}

func (r *applyRecorder) commands(g raft.GroupID, id types.NodeID) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, m := range r.by[fmt.Sprintf("%d/%s", g, id)] {
		if m.Kind == raft.EntryCommand {
			out = append(out, string(m.Command))
		}
	}
	return out
}

// leaderOf polls for group g's leader across the hosts.
func leaderOf(t *testing.T, hosts map[types.NodeID]*Host, g raft.GroupID) *raft.Node {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, h := range hosts {
			n := h.Node(g)
			if n == nil {
				continue
			}
			if _, role, _ := n.Status(); role == raft.Leader {
				return n
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no leader for group %d", g)
	return nil
}

// TestHostGroupsAreIndependent runs three groups on three hosts over one
// shared network: every group elects its own leader (driven by the shared
// tick loop), commands proposed to one group commit in that group on every
// node and never leak into another group's apply stream.
func TestHostGroupsAreIndependent(t *testing.T) {
	const nodes, groups = 3, 3
	rec := newApplyRecorder()
	net, hosts := startHosts(t, nodes, groups, rec)

	// Propose distinct commands in each group via its own leader.
	for g := raft.GroupID(0); g < groups; g++ {
		lead := leaderOf(t, hosts, g)
		want := fmt.Sprintf("cmd-for-group-%d", g)
		var idx int
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for {
			idx, _, err = lead.Propose([]byte(want))
			if err == nil {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("group %d: propose: %v", g, err)
			}
			time.Sleep(time.Millisecond)
			lead = leaderOf(t, hosts, g)
		}
		// Wait for the command to apply on every node of the group.
		for id := types.NodeID(1); id <= nodes; id++ {
			waitFor(t, func() bool {
				for _, c := range rec.commands(g, id) {
					if c == want {
						return true
					}
				}
				return false
			}, fmt.Sprintf("group %d index %d applied on %s", g, idx, id))
		}
	}

	// Isolation: each node's per-group stream holds exactly its own
	// group's command, never a neighbor's.
	for g := raft.GroupID(0); g < groups; g++ {
		for id := types.NodeID(1); id <= nodes; id++ {
			for _, c := range rec.commands(g, id) {
				if c != fmt.Sprintf("cmd-for-group-%d", g) {
					t.Fatalf("group %d on %s applied foreign command %q", g, id, c)
				}
			}
		}
	}

	// The multiplexer really carried distinct per-group traffic.
	for g := raft.GroupID(0); g < groups; g++ {
		if sent, _ := net.GroupCounters(g); sent == 0 {
			t.Fatalf("group %d moved no traffic through the shared network", g)
		}
	}
}

// TestHostStopsCleanly: stopping a host detaches every group without
// wedging the others' hosts (their groups re-elect if the stopped node led).
func TestHostStopsCleanly(t *testing.T) {
	rec := newApplyRecorder()
	net, hosts := startHosts(t, 3, 2, rec)
	_ = net
	lead := leaderOf(t, hosts, 1)
	victim := lead.ID()
	hosts[victim].Stop()
	net.Detach(victim)
	delete(hosts, victim)
	// Both groups must still elect among the survivors.
	for g := raft.GroupID(0); g < 2; g++ {
		n := leaderOf(t, hosts, g)
		if n.ID() == victim {
			t.Fatalf("group %d still led by stopped node %s", g, victim)
		}
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGroupStorageNamespacing pins the cross-group compaction isolation:
// with each group confined to GroupStorageDir, one group's SaveSnapshot
// (which unlinks covered WAL segments) cannot touch a neighbor group's
// files — and the neighbor reloads its full state afterwards.
func TestGroupStorageNamespacing(t *testing.T) {
	root := t.TempDir()
	open := func(g raft.GroupID) *raft.FileStorage {
		fs, err := raft.OpenFileStorage(GroupStorageDir(root, g))
		if err != nil {
			t.Fatalf("open group %d: %v", g, err)
		}
		return fs
	}
	entry := func(i int) raft.LogEntry {
		return raft.LogEntry{Term: 1, Kind: raft.EntryCommand, Command: []byte(fmt.Sprintf("e%d", i))}
	}

	g0, g1 := open(0), open(1)
	for i := 1; i <= 20; i++ {
		if err := g0.SaveEntries(i, []raft.LogEntry{entry(i)}); err != nil {
			t.Fatal(err)
		}
		if err := g1.SaveEntries(i, []raft.LogEntry{entry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := listDir(t, GroupStorageDir(root, 1))

	// Group 0 compacts: snapshot at 15, segments below it unlinked.
	if err := g0.SaveSnapshot(raft.LogSnapshot{Index: 15, Term: 1, Members: []types.NodeID{1}}); err != nil {
		t.Fatal(err)
	}
	after := listDir(t, GroupStorageDir(root, 1))
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("group 0 compaction changed group 1's files:\n before %v\n after  %v", before, after)
	}
	if err := g0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}

	// Group 1 reloads every entry untouched.
	re := open(1)
	defer re.Close()
	_, base, log, err := re.Load()
	if err != nil {
		t.Fatal(err)
	}
	if base.Index != 0 || len(log) != 20 {
		t.Fatalf("group 1 after neighbor compaction: base %d, %d entries (want 0, 20)", base.Index, len(log))
	}
}

// TestCrossGroupUnlinkIsCaught is the storage half of the teeth argument:
// if a buggy flat-layout compactor DID unlink another group's segment (the
// bug the per-group subdirectories make impossible), the victim's next
// reload must fail loudly — never silently fabricate a shorter log.
func TestCrossGroupUnlinkIsCaught(t *testing.T) {
	root := t.TempDir()
	dir := GroupStorageDir(root, 1)
	entry := func(i int) raft.LogEntry {
		return raft.LogEntry{Term: 1, Kind: raft.EntryCommand, Command: []byte(fmt.Sprintf("e%d", i))}
	}
	// Two process generations → two segments: entries 1..10 in the first,
	// 11..20 in the second.
	fs, err := raft.OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := fs.SaveEntries(i, []raft.LogEntry{entry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs, err = raft.OpenFileStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		if err := fs.SaveEntries(i, []raft.LogEntry{entry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// The "cross-group compaction" unlinks the victim's oldest segment
	// without a covering snapshot.
	segs := listDir(t, dir)
	if len(segs) < 2 {
		t.Fatalf("expected ≥2 segments, got %v", segs)
	}
	if err := os.Remove(filepath.Join(dir, segs[0])); err != nil {
		t.Fatal(err)
	}

	// Reload must detect the gap, not fabricate a log starting at 11.
	if _, err := raft.OpenFileStorage(dir); err == nil {
		t.Fatal("reload after a foreign unlink succeeded silently — the gap went undetected")
	} else {
		t.Logf("caught as expected: %v", err)
	}
}

// listDir returns the sorted names of WAL artifacts in dir.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}
