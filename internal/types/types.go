// Package types defines the primitive identifier and ordering types shared
// by every model in this repository: node identifiers, logical timestamps,
// version numbers, method identifiers, and cache identifiers.
//
// These correspond to the ℕ_nid, ℕ_time, ℕ_vrsn, Method, and ℕ_cid sorts of
// the Adore paper (Fig. 6). They are deliberately thin named types so the
// compiler keeps the many different kinds of natural number apart.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeID identifies a replica (ℕ_nid). The zero value is reserved to mean
// "no node" (for example the caller of the root cache).
type NodeID uint32

// NoNode is the reserved NodeID meaning "no node".
const NoNode NodeID = 0

// String renders the node ID in the paper's S₁, S₂, ... style.
func (n NodeID) String() string {
	if n == NoNode {
		return "S∅"
	}
	return "S" + strconv.FormatUint(uint64(n), 10)
}

// Time is a logical timestamp (ℕ_time): a Paxos ballot number or Raft term.
type Time uint64

// Vrsn is a per-term version number (ℕ_vrsn). It resets to zero at the start
// of each term and increments on every invoke/reconfig call.
type Vrsn uint64

// MethodID names an application method (the Method sort). The paper treats
// methods as opaque identifiers because their payloads have no bearing on
// protocol safety; we do the same.
type MethodID uint64

// String renders the method in the paper's M₁, M₂, ... style.
func (m MethodID) String() string { return "M" + strconv.FormatUint(uint64(m), 10) }

// CID identifies a cache in the cache tree (ℕ_cid). CID 0 is reserved for
// "parent of the root" per the paper's convention.
type CID uint64

// NoCID is the reserved parent pointer of the root cache.
const NoCID CID = 0

// Stamp is a (time, version) pair, the lexicographic core of the paper's
// strict order on caches (Fig. 9).
type Stamp struct {
	Time Time
	Vrsn Vrsn
}

// Less reports whether s is lexicographically smaller than t.
func (s Stamp) Less(t Stamp) bool {
	if s.Time != t.Time {
		return s.Time < t.Time
	}
	return s.Vrsn < t.Vrsn
}

// Compare returns -1, 0, or +1 according to the lexicographic order.
func (s Stamp) Compare(t Stamp) int {
	switch {
	case s.Less(t):
		return -1
	case t.Less(s):
		return 1
	default:
		return 0
	}
}

// String renders the stamp as "t.v".
func (s Stamp) String() string {
	return fmt.Sprintf("%d.%d", s.Time, s.Vrsn)
}

// FormatNodes renders a slice of node IDs as "{S1,S2}". It is shared by the
// pretty-printers of several packages.
func FormatNodes(ids []NodeID) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(id.String())
	}
	b.WriteByte('}')
	return b.String()
}
