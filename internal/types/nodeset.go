package types

import (
	"sort"
)

// NodeSet is an immutable, sorted, duplicate-free set of node IDs. It is the
// Set(ℕ_nid) sort used for configuration memberships, quorums, and cache
// supporter sets.
//
// The zero value is the empty set. All operations return new sets; a NodeSet
// is safe to share between goroutines and to use as a map key via Key().
type NodeSet struct {
	ids []NodeID // sorted ascending, no duplicates
}

// NewNodeSet builds a set from the given IDs, discarding duplicates and the
// reserved NoNode value.
func NewNodeSet(ids ...NodeID) NodeSet {
	out := make([]NodeID, 0, len(ids))
	for _, id := range ids {
		if id != NoNode {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	out = dedupSorted(out)
	return NodeSet{ids: out}
}

// Range returns the set {lo, lo+1, ..., hi}. It is a convenience for tests
// and examples that name replicas S1..Sn.
func Range(lo, hi NodeID) NodeSet {
	if hi < lo {
		return NodeSet{}
	}
	ids := make([]NodeID, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		ids = append(ids, id)
	}
	return NewNodeSet(ids...)
}

func dedupSorted(ids []NodeID) []NodeID {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the cardinality of the set.
func (s NodeSet) Len() int { return len(s.ids) }

// IsEmpty reports whether the set has no members.
func (s NodeSet) IsEmpty() bool { return len(s.ids) == 0 }

// Contains reports whether id is a member.
func (s NodeSet) Contains(id NodeID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// Slice returns the members in ascending order. The caller must not mutate
// the returned slice.
func (s NodeSet) Slice() []NodeID { return s.ids }

// Copy returns the members in ascending order in a fresh slice.
func (s NodeSet) Copy() []NodeID {
	out := make([]NodeID, len(s.ids))
	copy(out, s.ids)
	return out
}

// Add returns s ∪ {id}.
func (s NodeSet) Add(id NodeID) NodeSet {
	if id == NoNode || s.Contains(id) {
		return s
	}
	out := make([]NodeID, 0, len(s.ids)+1)
	out = append(out, s.ids...)
	out = append(out, id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return NodeSet{ids: out}
}

// Remove returns s \ {id}.
func (s NodeSet) Remove(id NodeID) NodeSet {
	if !s.Contains(id) {
		return s
	}
	out := make([]NodeID, 0, len(s.ids)-1)
	for _, x := range s.ids {
		if x != id {
			out = append(out, x)
		}
	}
	return NodeSet{ids: out}
}

// Union returns s ∪ t.
func (s NodeSet) Union(t NodeSet) NodeSet {
	out := make([]NodeID, 0, len(s.ids)+len(t.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			out = append(out, s.ids[i])
			i++
		case s.ids[i] > t.ids[j]:
			out = append(out, t.ids[j])
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, t.ids[j:]...)
	return NodeSet{ids: out}
}

// Intersect returns s ∩ t.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	out := make([]NodeID, 0, min(len(s.ids), len(t.ids)))
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			i++
		case s.ids[i] > t.ids[j]:
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	return NodeSet{ids: out}
}

// Diff returns s \ t.
func (s NodeSet) Diff(t NodeSet) NodeSet {
	out := make([]NodeID, 0, len(s.ids))
	for _, id := range s.ids {
		if !t.Contains(id) {
			out = append(out, id)
		}
	}
	return NodeSet{ids: out}
}

// Intersects reports whether s ∩ t ≠ ∅ without allocating.
func (s NodeSet) Intersects(t NodeSet) bool {
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			i++
		case s.ids[i] > t.ids[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// IntersectLen returns |s ∩ t| without allocating.
func (s NodeSet) IntersectLen(t NodeSet) int {
	n := 0
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			i++
		case s.ids[i] > t.ids[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SubsetOf reports whether s ⊆ t.
func (s NodeSet) SubsetOf(t NodeSet) bool {
	return s.IntersectLen(t) == len(s.ids)
}

// Equal reports whether s and t have the same members.
func (s NodeSet) Equal(t NodeSet) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical comparable representation, suitable for use as a
// map key or inside state hashes.
func (s NodeSet) Key() string { return s.String() }

// String renders the set in the paper's {S1,S2} style.
func (s NodeSet) String() string { return FormatNodes(s.ids) }

// Subsets calls fn with every subset of s, including the empty set and s
// itself. It is used by the model explorer to enumerate oracle choices.
// Enumeration stops early if fn returns false.
func (s NodeSet) Subsets(fn func(NodeSet) bool) {
	n := len(s.ids)
	if n > 20 {
		panic("types: refusing to enumerate subsets of a set with more than 20 members")
	}
	for mask := 0; mask < 1<<n; mask++ {
		sub := make([]NodeID, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, s.ids[i])
			}
		}
		if !fn(NodeSet{ids: sub}) {
			return
		}
	}
}

// SubsetsContaining enumerates the subsets of s that contain id.
func (s NodeSet) SubsetsContaining(id NodeID, fn func(NodeSet) bool) {
	if !s.Contains(id) {
		return
	}
	s.Subsets(func(sub NodeSet) bool {
		if !sub.Contains(id) {
			return true
		}
		return fn(sub)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
