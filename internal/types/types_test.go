package types

import (
	"testing"
)

func TestStampLess(t *testing.T) {
	cases := []struct {
		a, b Stamp
		want bool
	}{
		{Stamp{1, 0}, Stamp{2, 0}, true},
		{Stamp{2, 0}, Stamp{1, 0}, false},
		{Stamp{1, 1}, Stamp{1, 2}, true},
		{Stamp{1, 2}, Stamp{1, 1}, false},
		{Stamp{1, 5}, Stamp{2, 0}, true},
		{Stamp{1, 1}, Stamp{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("Stamp%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStampCompare(t *testing.T) {
	if got := (Stamp{1, 0}).Compare(Stamp{1, 0}); got != 0 {
		t.Errorf("equal stamps compare to %d, want 0", got)
	}
	if got := (Stamp{1, 0}).Compare(Stamp{1, 1}); got != -1 {
		t.Errorf("smaller stamp compares to %d, want -1", got)
	}
	if got := (Stamp{2, 0}).Compare(Stamp{1, 9}); got != 1 {
		t.Errorf("larger stamp compares to %d, want 1", got)
	}
}

func TestStampString(t *testing.T) {
	if got := (Stamp{3, 2}).String(); got != "3.2" {
		t.Errorf("Stamp{3,2}.String() = %q, want %q", got, "3.2")
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(3).String(); got != "S3" {
		t.Errorf("NodeID(3).String() = %q", got)
	}
	if got := NoNode.String(); got != "S∅" {
		t.Errorf("NoNode.String() = %q", got)
	}
}

func TestMethodIDString(t *testing.T) {
	if got := MethodID(7).String(); got != "M7" {
		t.Errorf("MethodID(7).String() = %q", got)
	}
}
