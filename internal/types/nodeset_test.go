package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewNodeSetDedupAndSort(t *testing.T) {
	s := NewNodeSet(3, 1, 2, 3, 1)
	want := []NodeID{1, 2, 3}
	if !reflect.DeepEqual(s.Copy(), want) {
		t.Errorf("NewNodeSet(3,1,2,3,1) = %v, want %v", s.Slice(), want)
	}
}

func TestNewNodeSetDropsNoNode(t *testing.T) {
	s := NewNodeSet(NoNode, 1)
	if s.Len() != 1 || !s.Contains(1) {
		t.Errorf("NewNodeSet(NoNode,1) = %v, want {S1}", s)
	}
}

func TestRange(t *testing.T) {
	s := Range(2, 4)
	if !s.Equal(NewNodeSet(2, 3, 4)) {
		t.Errorf("Range(2,4) = %v", s)
	}
	if !Range(5, 2).IsEmpty() {
		t.Errorf("Range(5,2) should be empty")
	}
}

func TestAddRemove(t *testing.T) {
	s := NewNodeSet(1, 3)
	s2 := s.Add(2)
	if !s2.Equal(NewNodeSet(1, 2, 3)) {
		t.Errorf("Add(2) = %v", s2)
	}
	if !s.Equal(NewNodeSet(1, 3)) {
		t.Errorf("Add mutated receiver: %v", s)
	}
	s3 := s2.Remove(1)
	if !s3.Equal(NewNodeSet(2, 3)) {
		t.Errorf("Remove(1) = %v", s3)
	}
	if got := s3.Remove(99); !got.Equal(s3) {
		t.Errorf("Remove of absent member changed the set: %v", got)
	}
	if got := s3.Add(2); !got.Equal(s3) {
		t.Errorf("Add of present member changed the set: %v", got)
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a := NewNodeSet(1, 2, 3)
	b := NewNodeSet(3, 4)
	if got := a.Union(b); !got.Equal(NewNodeSet(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewNodeSet(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewNodeSet(1, 2)) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Intersects(b) {
		t.Errorf("Intersects should be true")
	}
	if a.Intersects(NewNodeSet(9)) {
		t.Errorf("Intersects({9}) should be false")
	}
	if got := a.IntersectLen(b); got != 1 {
		t.Errorf("IntersectLen = %d, want 1", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := NewNodeSet(1, 2)
	b := NewNodeSet(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Errorf("{1,2} should be subset of {1,2,3}")
	}
	if b.SubsetOf(a) {
		t.Errorf("{1,2,3} should not be subset of {1,2}")
	}
	if !NewNodeSet().SubsetOf(a) {
		t.Errorf("empty set should be subset of anything")
	}
	if !a.Equal(NewNodeSet(2, 1)) {
		t.Errorf("Equal should ignore construction order")
	}
	if a.Equal(b) {
		t.Errorf("unequal sets reported equal")
	}
}

func TestSubsetsEnumeration(t *testing.T) {
	s := NewNodeSet(1, 2, 3)
	var count int
	seen := map[string]bool{}
	s.Subsets(func(sub NodeSet) bool {
		count++
		if seen[sub.Key()] {
			t.Errorf("duplicate subset %v", sub)
		}
		seen[sub.Key()] = true
		if !sub.SubsetOf(s) {
			t.Errorf("enumerated non-subset %v", sub)
		}
		return true
	})
	if count != 8 {
		t.Errorf("enumerated %d subsets of a 3-set, want 8", count)
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := NewNodeSet(1, 2, 3)
	count := 0
	s.Subsets(func(NodeSet) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d calls, want 3", count)
	}
}

func TestSubsetsContaining(t *testing.T) {
	s := NewNodeSet(1, 2, 3)
	count := 0
	s.SubsetsContaining(2, func(sub NodeSet) bool {
		count++
		if !sub.Contains(2) {
			t.Errorf("subset %v missing required member", sub)
		}
		return true
	})
	if count != 4 {
		t.Errorf("enumerated %d subsets containing 2, want 4", count)
	}
	s.SubsetsContaining(9, func(NodeSet) bool {
		t.Errorf("should not enumerate subsets containing a non-member")
		return true
	})
}

func TestNodeSetString(t *testing.T) {
	if got := NewNodeSet(2, 1).String(); got != "{S1,S2}" {
		t.Errorf("String = %q", got)
	}
	if got := NewNodeSet().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// randomSet draws a small random NodeSet for the property tests.
func randomSet(r *rand.Rand) NodeSet {
	n := r.Intn(6)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(r.Intn(8) + 1)
	}
	return NewNodeSet(ids...)
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		i := a.Intersect(b)
		return i.SubsetOf(a) && i.SubsetOf(b) && i.Len() == a.IntersectLen(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		d := a.Diff(b)
		return !d.Intersects(b) && d.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	u := Range(1, 8)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		left := u.Diff(a.Union(b))
		right := u.Diff(a).Intersect(u.Diff(b))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
