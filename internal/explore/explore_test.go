package explore

import (
	"strings"
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/invariant"
	"adore/internal/types"
)

func initial(scheme config.Scheme, n types.NodeID, rules core.Rules) *core.State {
	return core.NewState(scheme, types.Range(1, n), rules)
}

// TestBFSSafeModelNoViolations is the headline check (Theorem 4.5 on a
// bounded instance): with all guards enabled, exhaustive exploration finds
// no invariant violations.
func TestBFSSafeModelNoViolations(t *testing.T) {
	s := initial(config.RaftSingleNode, 3, core.DefaultRules())
	res := BFS(s, Options{MaxDepth: 4, MaxStates: 4000})
	if res.Violation != nil {
		t.Fatalf("violation in safe model: %v\ntrace: %v\n%s", res.Violation, res.Trace, res.ViolationState)
	}
	if res.States < 100 {
		t.Errorf("suspiciously small state space: %d states", res.States)
	}
	t.Logf("explored %d states, %d transitions, depth %d", res.States, res.Transitions, res.DepthReached)
}

// TestBFSFindsFig4ViolationWithoutR3 is E5: the checker must rediscover the
// published Raft single-server bug when R3 is disabled.
func TestBFSFindsFig4ViolationWithoutR3(t *testing.T) {
	if testing.Short() {
		t.Skip("bug search is slow in -short mode")
	}
	s := initial(config.RaftSingleNode, 4, core.WithoutR3())
	res := BFS(s, Options{
		MaxDepth:     6,
		MaxStates:    300000,
		MinimalTimes: true,
		Actors:       types.NewNodeSet(1, 2), // two competing leaders suffice
		Invariants:   BugHuntCheckers(),
	})
	if res.Violation == nil {
		t.Fatalf("no violation found without R3 (states=%d, truncated=%v)", res.States, res.Truncated)
	}
	t.Logf("violation after %d states:\n  %s\n  trace: %s",
		res.States, res.Violation, strings.Join(res.Trace, " ; "))
}

func TestRandomWalkSafeModel(t *testing.T) {
	s := initial(config.RaftSingleNode, 3, core.DefaultRules())
	res := RandomWalk(s, 7, 60, 25, Options{WithFailures: true})
	if res.Violation != nil {
		t.Fatalf("violation on random walk of safe model: %v\ntrace: %v", res.Violation, res.Trace)
	}
	if res.Transitions == 0 {
		t.Error("random walk made no transitions")
	}
}

// TestRandomWalkAllSchemesSafe sweeps every shipped reconfiguration scheme:
// the parameterized safety claim (§6: "the safety proof holds for free").
func TestRandomWalkAllSchemesSafe(t *testing.T) {
	for _, scheme := range config.AllSchemes() {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			t.Parallel()
			s := initial(scheme, 3, core.DefaultRules())
			res := RandomWalk(s, 11, 25, 20, Options{})
			if res.Violation != nil {
				t.Fatalf("violation under scheme %s: %v\ntrace: %v\n%s",
					scheme.Name(), res.Violation, res.Trace, res.ViolationState)
			}
		})
	}
}

// TestBFSCADOSafe explores the reconfiguration-free CADO model (E2's
// baseline): a deeper bound is feasible because the space is smaller.
func TestBFSCADOSafe(t *testing.T) {
	s := initial(config.RaftSingleNode, 3, core.StaticRules())
	res := BFS(s, Options{MaxDepth: 5, MaxStates: 4000})
	if res.Violation != nil {
		t.Fatalf("violation in CADO: %v\ntrace: %v", res.Violation, res.Trace)
	}
	t.Logf("CADO: %d states, %d transitions", res.States, res.Transitions)
}

func TestSuccessorsOnlyValidSteps(t *testing.T) {
	s := initial(config.RaftSingleNode, 3, core.DefaultRules())
	// Drive a couple of steps, then check every enumerated successor
	// applies cleanly (Successors panics internally otherwise).
	steps := Successors(s, true)
	if len(steps) == 0 {
		t.Fatal("no successors from the initial state")
	}
	for _, step := range steps {
		next := s.Clone()
		if err := step.Apply(next); err != nil {
			t.Errorf("step %q rejected: %v", step.Desc, err)
		}
	}
}

func TestBFSTruncation(t *testing.T) {
	s := initial(config.RaftSingleNode, 3, core.DefaultRules())
	res := BFS(s, Options{MaxDepth: 10, MaxStates: 50})
	if !res.Truncated {
		t.Error("MaxStates=50 should truncate the search")
	}
	if res.States > 50 {
		t.Errorf("visited %d states beyond the cap", res.States)
	}
}

// TestTheoremLadder runs the rdist-stratified theorem variants (B.2–B.7) on
// every state reachable within the bound, mirroring the paper's proof
// structure: base cases at rdist 0 and 1.
func TestTheoremLadder(t *testing.T) {
	mk := func(name string, check func(*core.State) *invariant.Violation) invariant.Checker {
		return invariant.Checker{
			Name:      name,
			AppliesTo: func(core.Rules) bool { return true },
			Check:     check,
		}
	}
	checkers := []invariant.Checker{
		mk("B.2 LeaderTimeUnique rdist0", func(s *core.State) *invariant.Violation {
			return invariant.LeaderTimeUniquenessAtRDist(s, 0)
		}),
		mk("B.5 LeaderTimeUnique rdist1", func(s *core.State) *invariant.Violation {
			return invariant.LeaderTimeUniquenessAtRDist(s, 1)
		}),
		mk("B.3/B.6 ElectionCommitOrder rdist≤1", func(s *core.State) *invariant.Violation {
			return invariant.ElectionCommitOrderAtRDist(s, 1)
		}),
		mk("Thm4.3 Safety rdist≤1", func(s *core.State) *invariant.Violation {
			return invariant.SafetyAtRDist(s, 1)
		}),
	}
	s := initial(config.RaftSingleNode, 3, core.DefaultRules())
	res := BFS(s, Options{MaxDepth: 4, MaxStates: 4000, Invariants: checkers})
	if res.Violation != nil {
		t.Fatalf("theorem violated: %v\ntrace: %v\n%s", res.Violation, res.Trace, res.ViolationState)
	}
}

func TestScenarioFig5(t *testing.T) {
	tr, err := Fig5().Run()
	if err != nil {
		t.Fatalf("%v\n%s", err, tr.Output)
	}
	// The final tree must show the fork of Fig. 5e: the competing
	// election under the CCache while the RCache branch is abandoned.
	if len(tr.Final.Tree.RCaches()) != 1 {
		t.Error("Fig. 5 run must contain exactly one RCache")
	}
	ccs := tr.Final.Tree.CCaches()
	if len(ccs) != 2 { // root + one committed prefix
		t.Errorf("Fig. 5 run has %d CCaches, want 2", len(ccs))
	}
}

func TestScenarioFig4Bug(t *testing.T) {
	tr, err := Fig4Bug().Run()
	if err != nil {
		t.Fatalf("%v\n%s", err, tr.Output)
	}
	found := false
	for _, v := range tr.Violations {
		if v.Invariant == "Safety" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Fig. 4 scenario did not violate Safety:\n%s", tr.Output)
	}
}

func TestScenarioFig4Fixed(t *testing.T) {
	tr, err := Fig4Fixed().Run()
	if err != nil {
		t.Fatalf("%v\n%s", err, tr.Output)
	}
	if len(tr.Violations) != 0 {
		t.Fatalf("fixed scenario has violations: %v", tr.Violations)
	}
}

// TestScenarioGuardBugs runs the per-guard counterexample scenarios: each
// disabled guard yields a Safety violation, and re-enabling the guard makes
// the dangerous step impossible.
func TestScenarioGuardBugs(t *testing.T) {
	for _, name := range []string{"no-r1-bug", "no-r2-bug"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := ScenarioByName(name)
			if !ok {
				t.Fatal("scenario missing")
			}
			tr, err := sc.Run()
			if err != nil {
				t.Fatalf("%v\n%s", err, tr.Output)
			}
			found := false
			for _, v := range tr.Violations {
				if v.Invariant == "Safety" {
					found = true
				}
			}
			if !found {
				t.Fatalf("no Safety violation:\n%s", tr.Output)
			}
			// With full guards the dangerous reconfig step is rejected.
			fixed := sc
			fixed.Build = func() *core.State {
				return core.NewState(config.RaftSingleNode, types.Range(1, 3), core.DefaultRules())
			}
			if _, err := fixed.Run(); err == nil {
				t.Fatal("the schedule went through despite the guard")
			}
		})
	}
}

func TestScenarioByName(t *testing.T) {
	for _, sc := range Scenarios() {
		if got, ok := ScenarioByName(sc.Name); !ok || got.Name != sc.Name {
			t.Errorf("ScenarioByName(%q) failed", sc.Name)
		}
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("unknown scenario resolved")
	}
}
