// Package explore quantifies the invariant checkers of package invariant
// over the reachable state space of the Adore model. It is this
// repository's substitute for the paper's Coq proofs: where the paper
// proves "for all reachable states, safety holds", this package checks the
// same property exhaustively on bounded instances (BFS with canonical state
// deduplication) and statistically on unbounded ones (seeded random walks).
//
// The explorer enumerates exactly the valid oracle outcomes of Fig. 27, so
// the transition relation it explores is the paper's operational semantics.
package explore

import (
	"fmt"

	"adore/internal/core"
	"adore/internal/invariant"
	"adore/internal/types"
)

// Step is one labeled transition of the model.
type Step struct {
	// Desc is a human-readable description ("pull S1 Q={S1,S2} T=2").
	Desc string
	// Apply performs the transition on a state; it must only be given
	// (clones of) the state the step was enumerated from.
	Apply func(*core.State) error
}

// Successors enumerates every enabled transition from s, following the
// valid-oracle rules. Non-quorum pulls/pushes are included only when
// withFailures is true; they change only the time map but can block other
// leaders, which matters for completeness of the search.
func Successors(s *core.State, withFailures bool) []Step {
	return successors(s, Options{WithFailures: withFailures})
}

func successors(s *core.State, opts Options) []Step {
	withFailures, minimalTimes := opts.WithFailures, opts.MinimalTimes
	var steps []Step
	universe := s.Universe()
	for _, nid := range universe.Slice() {
		nid := nid
		if !opts.Actors.IsEmpty() && !opts.Actors.Contains(nid) {
			continue
		}
		for _, ch := range core.EnumeratePullsOpt(s, nid, !withFailures, minimalTimes) {
			ch := ch
			steps = append(steps, Step{
				Desc: fmt.Sprintf("pull %s Q=%s T=%d", nid, ch.Q, ch.T),
				Apply: func(st *core.State) error {
					_, err := st.Pull(nid, ch)
					return err
				},
			})
		}
		if s.CanInvoke(nid) == nil {
			steps = append(steps, Step{
				Desc: fmt.Sprintf("invoke %s", nid),
				Apply: func(st *core.State) error {
					_, err := st.Invoke(nid, 1)
					return err
				},
			})
		}
		for _, ncf := range core.EnumerateReconfigs(s, nid) {
			ncf := ncf
			steps = append(steps, Step{
				Desc: fmt.Sprintf("reconfig %s → %s", nid, ncf),
				Apply: func(st *core.State) error {
					_, err := st.Reconfig(nid, ncf)
					return err
				},
			})
		}
		for _, ch := range core.EnumeratePushes(s, nid, !withFailures) {
			ch := ch
			steps = append(steps, Step{
				Desc: fmt.Sprintf("push %s Q=%s CM=%d", nid, ch.Q, ch.CM),
				Apply: func(st *core.State) error {
					_, err := st.Push(nid, ch)
					return err
				},
			})
		}
	}
	return steps
}

// Options bounds a search.
type Options struct {
	// MaxDepth bounds the number of transitions from the initial state.
	MaxDepth int
	// MaxStates caps the number of distinct states visited (0 = no cap).
	MaxStates int
	// WithFailures includes non-quorum pulls and pushes in the
	// transition relation.
	WithFailures bool
	// MinimalTimes restricts pull enumeration to the smallest admissible
	// timestamp per supporter set — a frontier reduction for violation
	// hunting.
	MinimalTimes bool
	// Actors, when non-empty, restricts which replicas may *initiate*
	// operations (pull/invoke/reconfig/push); any replica may still vote
	// or acknowledge. Bug hunts exploit this: the Fig. 4 class of
	// violations needs only two competing leaders, so restricting the
	// initiators cuts the frontier without losing the counterexamples.
	Actors types.NodeSet
	// Invariants are the checkers to run on every visited state; nil
	// means invariant.All() filtered by the state's rules.
	Invariants []invariant.Checker
	// OnState, when set, is called once for every newly visited state
	// (metrics, coverage accounting).
	OnState func(*core.State)
}

// Result summarizes a search.
type Result struct {
	// States is the number of distinct states visited (after canonical
	// deduplication); Transitions counts edges explored.
	States      int
	Transitions int
	// DepthReached is the deepest level fully or partially expanded.
	DepthReached int
	// Truncated reports whether MaxStates stopped the search early.
	Truncated bool
	// Violation is the first invariant violation found, if any, and
	// Trace the step descriptions leading to it from the initial state.
	Violation *invariant.Violation
	// ViolationState renders the offending state's cache tree.
	ViolationState string
	Trace          []string
}

// node is a BFS queue entry.
type node struct {
	state *core.State
	trace []string
	depth int
}

// BFS exhaustively explores the state space of s up to the given bounds,
// running the invariants on every state including the initial one. It
// returns as soon as a violation is found.
func BFS(s *core.State, opts Options) Result {
	checkers := opts.Invariants
	if checkers == nil {
		checkers = applicable(s.Rules)
	}
	res := Result{}
	visited := map[string]bool{s.Key(): true}
	queue := []node{{state: s.Clone(), depth: 0}}
	res.States = 1

	if v := runCheckers(checkers, s); v != nil {
		res.Violation = v
		res.ViolationState = s.Tree.Render()
		return res
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth > res.DepthReached {
			res.DepthReached = cur.depth
		}
		if cur.depth >= opts.MaxDepth {
			continue
		}
		for _, step := range successors(cur.state, opts) {
			next := cur.state.Clone()
			if err := step.Apply(next); err != nil {
				// Enumerations should only produce valid steps;
				// surface violations of that contract loudly.
				panic(fmt.Sprintf("explore: enumerated step %q rejected: %v", step.Desc, err))
			}
			res.Transitions++
			key := next.Key()
			if visited[key] {
				continue
			}
			visited[key] = true
			res.States++
			if opts.OnState != nil {
				opts.OnState(next)
			}
			trace := append(append([]string(nil), cur.trace...), step.Desc)
			if v := runCheckers(checkers, next); v != nil {
				res.Violation = v
				res.Trace = trace
				res.ViolationState = next.Tree.Render()
				return res
			}
			if opts.MaxStates > 0 && res.States >= opts.MaxStates {
				res.Truncated = true
				return res
			}
			queue = append(queue, node{state: next, trace: trace, depth: cur.depth + 1})
		}
	}
	return res
}

// RandomWalk performs walks random trajectories of length steps each from
// s, drawing operations from a seeded oracle, and checks the invariants
// after every transition. It complements BFS beyond exhaustive bounds.
func RandomWalk(s *core.State, seed int64, walks, steps int, opts Options) Result {
	checkers := opts.Invariants
	if checkers == nil {
		checkers = applicable(s.Rules)
	}
	res := Result{}
	o := core.NewOracle(seed)
	for w := 0; w < walks; w++ {
		cur := s.Clone()
		var trace []string
		for i := 0; i < steps; i++ {
			succ := successors(cur, opts)
			if len(succ) == 0 {
				break
			}
			step := succ[o.Intn(len(succ))]
			if err := step.Apply(cur); err != nil {
				panic(fmt.Sprintf("explore: enumerated step %q rejected: %v", step.Desc, err))
			}
			res.Transitions++
			trace = append(trace, step.Desc)
			res.States++
			if v := runCheckers(checkers, cur); v != nil {
				res.Violation = v
				res.Trace = trace
				res.ViolationState = cur.Tree.Render()
				return res
			}
		}
	}
	return res
}

func runCheckers(checkers []invariant.Checker, s *core.State) *invariant.Violation {
	for _, c := range checkers {
		if v := c.Check(s); v != nil {
			return v
		}
	}
	return nil
}

func applicable(rules core.Rules) []invariant.Checker {
	var out []invariant.Checker
	for _, c := range invariant.All() {
		if c.AppliesTo(rules) {
			out = append(out, c)
		}
	}
	return out
}

// BugHuntCheckers returns the checkers used to hunt the Fig. 4 class of
// bugs: replicated state safety plus election-commit order. The latter is
// the first observable breach (a leader elected with a quorum that has not
// seen a committed reconfiguration), reachable two steps before the actual
// divergent commit, which keeps the exhaustive search shallow.
func BugHuntCheckers() []invariant.Checker {
	return []invariant.Checker{
		{
			Name:      "Safety",
			AppliesTo: func(core.Rules) bool { return true },
			Check:     invariant.CheckSafety,
		},
		{
			Name:      "ElectionCommitOrder",
			AppliesTo: func(core.Rules) bool { return true },
			Check:     invariant.CheckElectionCommitOrder,
		},
	}
}

// SafetyOnly returns just the replicated-state-safety checker, for searches
// that hunt the Fig. 4 violation.
func SafetyOnly() []invariant.Checker {
	return []invariant.Checker{{
		Name:      "Safety",
		AppliesTo: func(core.Rules) bool { return true },
		Check:     invariant.CheckSafety,
	}}
}
