package explore

import (
	"reflect"
	"testing"

	"adore/internal/config"
	"adore/internal/core"
	"adore/internal/types"
)

// These tests pin down the replayability guarantee the deterministic-model
// lint pass enforces statically: the same inputs must yield byte-identical
// outputs across runs. A regression here usually means map-iteration order
// leaked into successor enumeration or report rendering.

// TestBFSDeterministic runs the same bounded search twice and requires
// identical results — state counts, depth, and (when a violation exists)
// the exact trace.
func TestBFSDeterministic(t *testing.T) {
	run := func() Result {
		s := initial(config.RaftSingleNode, 3, core.DefaultRules())
		return BFS(s, Options{MaxDepth: 3, MaxStates: 4000, WithFailures: true})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("BFS is not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestBFSViolationTraceDeterministic repeats a search that does find a
// violation (the Fig. 4 bug with R3 disabled) and requires the identical
// counterexample trace both times — the property that makes bug reports
// reproducible.
func TestBFSViolationTraceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("bug search is slow in -short mode")
	}
	run := func() Result {
		s := initial(config.RaftSingleNode, 4, core.WithoutR3())
		return BFS(s, Options{
			MaxDepth:     6,
			MaxStates:    300000,
			MinimalTimes: true,
			Actors:       types.NewNodeSet(1, 2),
			Invariants:   BugHuntCheckers(),
		})
	}
	a, b := run(), run()
	if a.Violation == nil || b.Violation == nil {
		t.Fatalf("no violation found at these bounds (states=%d)", a.States)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("violation traces differ between runs:\nfirst:  %v\nsecond: %v", a.Trace, b.Trace)
	}
	if a.ViolationState != b.ViolationState {
		t.Fatalf("violation state renderings differ:\nfirst:\n%s\nsecond:\n%s", a.ViolationState, b.ViolationState)
	}
}

// TestRandomWalkSeedDeterministic requires that the same seed replays the
// same trajectory.
func TestRandomWalkSeedDeterministic(t *testing.T) {
	run := func() Result {
		s := initial(config.RaftSingleNode, 3, core.DefaultRules())
		return RandomWalk(s, 42, 20, 15, Options{WithFailures: true})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RandomWalk with a fixed seed is not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestScenarioTranscriptsByteIdentical runs every built-in scenario twice
// and requires byte-identical transcripts.
func TestScenarioTranscriptsByteIdentical(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr1, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			tr2, err := sc.Run()
			if err != nil {
				t.Fatal(err)
			}
			if tr1.Output != tr2.Output {
				t.Fatalf("transcript differs between runs:\nfirst:\n%s\nsecond:\n%s", tr1.Output, tr2.Output)
			}
		})
	}
}
